(* sgr — command-line interface to the Stackelberg price-of-optimum
   library.

   Instances are plain-text files (see Sgr_io.Instance_file for the
   format); `sgr catalog NAME` materializes the named instances from the
   paper so they can be piped into files and edited. *)

open Cmdliner
module Links = Sgr_links.Links
module Net = Sgr_network.Network
module Eq = Sgr_network.Equilibrate
module Obj = Sgr_network.Objective
module W = Sgr_workloads.Workloads
module IF = Sgr_io.Instance_file
module Vec = Sgr_numerics.Vec
module Obs = Sgr_obs.Obs
module Export = Sgr_obs.Export

(* When a machine-readable output is active (--csv, --trace) human
   diagnostics move to stderr so stdout stays pipeable. *)
let machine_mode = ref false

let diag fmt = if !machine_mode then Format.eprintf fmt else Format.printf fmt

(* Run [f] under the observability flags: reset counters, record events
   while [f] runs, then export the trace file (Chrome trace format, or
   JSONL when FILE ends in .jsonl) and/or print the stats summary to
   stderr. With neither flag this is just [f ()]: no sink is installed
   and solver results are bit-identical. *)
let with_obs ?(machine = false) ~trace ~stats f =
  machine_mode := machine || trace <> None || stats;
  if trace = None && not stats then f ()
  else begin
    Obs.reset_counters ();
    let r = Obs.Recorder.create () in
    Obs.Recorder.install r;
    Fun.protect
      ~finally:(fun () ->
        Obs.set_sink None;
        let events = Obs.Recorder.events r in
        (match trace with
        | Some path -> (
            try
              Out_channel.with_open_text path (fun oc ->
                  if Filename.check_suffix path ".jsonl" then Export.jsonl oc events
                  else Export.chrome_trace oc ~counters:(Obs.counters ()) events);
              Format.eprintf "trace: wrote %s@." path
            with Sys_error m ->
              Format.eprintf "error: cannot write trace: %s@." m;
              exit 2)
        | None -> ());
        if stats then Export.stats Format.err_formatter ~counters:(Obs.counters ()) events)
      f
  end

let load_instance path =
  match IF.load path with
  | Ok t -> t
  | Error m ->
      Format.eprintf "error: %s@." m;
      exit 2

let require_links = function
  | IF.Links t -> t
  | IF.Network _ ->
      Format.eprintf "error: this command needs a parallel-links instance@.";
      exit 2

let require_network = function
  | IF.Network n -> n
  | IF.Links _ ->
      Format.eprintf "error: this command needs a network instance@.";
      exit 2

(* ---------------- arguments ---------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.")

let alpha_arg =
  Arg.(
    required
    & opt (some float) None
    & info [ "alpha"; "a" ] ~docv:"ALPHA" ~doc:"Leader's share of the flow, in [0, 1].")

let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit machine-readable CSV.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record counters, spans and solver-convergence traces, and write them to $(docv) \
           (Chrome chrome://tracing JSON, or JSONL when $(docv) ends in .jsonl).")

let stats_arg =
  Arg.(
    value
    & flag
    & info [ "stats" ]
        ~doc:"Print the observability summary (counters, span totals) to stderr on exit.")

let solver_arg =
  let engine =
    Arg.enum [ ("column-gen", Eq.Column_generation); ("exhaustive", Eq.Exhaustive) ]
  in
  Arg.(
    value
    & opt engine Eq.Column_generation
    & info [ "solver" ] ~docv:"ENGINE"
        ~doc:
          "Path-equilibration engine: $(b,column-gen) (default) prices paths on demand and \
           scales to networks with exponentially many paths; $(b,exhaustive) enumerates every \
           simple path up front (oracle for small instances; capped at 20,000 paths).")

let links_solver_arg =
  let engine =
    Arg.enum [ ("auto", `Auto); ("closed-form", `Closed_form); ("bisection", `Bisection) ]
  in
  Arg.(
    value
    & opt engine `Auto
    & info [ "links-engine" ] ~docv:"ENGINE"
        ~doc:
          "Parallel-links water-filling engine: $(b,auto) (default) solves instances whose \
           latencies are all affine/constant in closed form (O(m log m), no bisection) and \
           bisects on the common level otherwise; $(b,closed-form) and $(b,bisection) force one \
           side (closed-form still falls back on links with no affine reduction).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~env:(Cmd.Env.info "SGR_JOBS")
        ~doc:
          "Number of worker domains for parallel stages (alpha-sweep points, per-commodity \
           pricing). Defaults to 1 (sequential). Results are byte-identical at any job count.")

let fixed_clock_arg =
  Arg.(
    value
    & flag
    & info [ "fixed-clock" ]
        ~doc:
          "Replace the wall clock with a deterministic tick (every reading advances 1ms), making \
           latency output — notably the $(b,metrics) histogram section — reproducible. Meant for \
           golden tests at $(b,--jobs 1); at higher job counts worker domains race on the tick.")

let obs_term =
  Term.(
    const (fun trace stats engine links_engine jobs fixed_clock ->
        Eq.set_default_engine engine;
        Links.set_default_engine links_engine;
        Option.iter Sgr_par.Pool.set_default_jobs jobs;
        if fixed_clock then begin
          let ticks = ref 0.0 in
          Obs.set_clock (fun () ->
              ticks := !ticks +. 0.001;
              !ticks)
        end;
        (trace, stats))
    $ trace_arg $ stats_arg $ solver_arg $ links_solver_arg $ jobs_arg $ fixed_clock_arg)

(* ---------------- solve ---------------- *)

let solve_links t =
  let nash = Links.nash t and opt = Links.opt t in
  diag "instance: %d parallel links, r = %g@." (Links.num_links t) t.Links.demand;
  Format.printf "nash     = %a  (common latency %.6g)@." Vec.pp nash.assignment nash.level;
  Format.printf "optimum  = %a  (marginal level %.6g)@." Vec.pp opt.assignment opt.level;
  Format.printf "C(N) = %.6g, C(O) = %.6g, price of anarchy = %.6g@."
    (Links.cost t nash.assignment) (Links.cost t opt.assignment) (Links.price_of_anarchy t)

let solve_network net =
  let nash = Eq.solve Obj.Wardrop net in
  let opt = Eq.solve Obj.System_optimum net in
  let cn = Net.cost net nash.edge_flow and co = Net.cost net opt.edge_flow in
  diag "instance: %d nodes, %d edges, %d commodities, r = %g@."
    (Sgr_graph.Digraph.num_nodes net.Net.graph)
    (Sgr_graph.Digraph.num_edges net.Net.graph)
    (Array.length net.Net.commodities) (Net.total_demand net);
  (* Free-flow shortest distances: a cheap sanity baseline for the
     equilibrium latencies below. *)
  let m = Sgr_graph.Digraph.num_edges net.Net.graph in
  let free_weights = Net.edge_latencies net (Array.make m 0.0) in
  Array.iteri
    (fun i (c : Net.commodity) ->
      let d = Sgr_graph.Dijkstra.run net.Net.graph ~weights:free_weights ~source:c.Net.src in
      diag "commodity %d: free-flow shortest distance %.6g@." i d.Sgr_graph.Dijkstra.dist.(c.Net.dst))
    net.Net.commodities;
  Format.printf "nash edge flow    = %a@." Vec.pp nash.edge_flow;
  Format.printf "optimum edge flow = %a@." Vec.pp opt.edge_flow;
  Format.printf "C(N) = %.6g, C(O) = %.6g, price of anarchy = %.6g@." cn co (cn /. co)

let solve_cmd =
  let run path (trace, stats) =
    with_obs ~trace ~stats (fun () ->
        match load_instance path with
        | IF.Links t -> solve_links t
        | IF.Network n -> solve_network n)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Compute the Nash equilibrium, the optimum and the price of anarchy.")
    Term.(const run $ file_arg $ obs_term)

(* ---------------- assign ---------------- *)

let assign_cmd =
  let run path obj method_ tol max_iter paths_k (trace, stats) =
    with_obs ~trace ~stats @@ fun () ->
    let net = require_network (load_instance path) in
    let o = match obj with `Nash -> Obj.Wardrop | `Opt -> Obj.System_optimum in
    diag "instance: %d nodes, %d edges, %d commodities, r = %g@."
      (Sgr_graph.Digraph.num_nodes net.Net.graph)
      (Sgr_graph.Digraph.num_edges net.Net.graph)
      (Array.length net.Net.commodities) (Net.total_demand net);
    let sol, flows =
      (* Per-commodity flow tracking costs k extra arrays; only pay for
         it when a path decomposition was asked for. Either way the
         aggregate solution is byte-identical. *)
      if paths_k > 0 then
        let sol, flows = Sgr_assign.Solver.solve_flows ~tol ~max_iter ~method_ o net in
        (sol, Some flows)
      else (Sgr_assign.Solver.solve ~tol ~max_iter ~method_ o net, None)
    in
    Format.printf "method     = %s@." (Sgr_assign.Solver.method_name method_);
    Format.printf "objective  = %s@." (match obj with `Nash -> "nash" | `Opt -> "opt");
    Format.printf "iterations = %d@." sol.Sgr_assign.Solver.iterations;
    Format.printf "gap        = %.9g@." sol.relative_gap;
    Format.printf "value      = %.9g@." sol.objective;
    Format.printf "cost       = %.9g@." (Net.cost net sol.edge_flow);
    if paths_k > 0 then begin
      (* Paths exist only on demand: decompose the edge flow and show
         the largest path flows. *)
      let d = Sgr_assign.Decompose.run ?flows net ~edge_flow:sol.edge_flow in
      let flows =
        List.stable_sort
          (fun (a : Sgr_assign.Decompose.path_flow) b -> Float.compare b.amount a.amount)
          d.Sgr_assign.Decompose.path_flows
      in
      Format.printf "paths      = %d  (max residual %.3g)@." (List.length flows)
        (Sgr_assign.Decompose.max_residual d);
      List.iteri
        (fun i (pf : Sgr_assign.Decompose.path_flow) ->
          if i < paths_k then
            Format.printf "  k%d  %.6g  %a@." pf.commodity pf.amount
              (Sgr_graph.Paths.pp net.Net.graph) pf.path)
        flows
    end
  in
  let obj =
    Arg.(
      value
      & opt (enum [ ("nash", `Nash); ("opt", `Opt) ]) `Nash
      & info [ "objective"; "o" ] ~docv:"OBJ"
          ~doc:"$(b,nash) (Wardrop equilibrium, default) or $(b,opt) (system optimum).")
  in
  let method_ =
    Arg.(
      value
      & opt
          (enum
             [ ("fw", Sgr_assign.Solver.Frank_wolfe); ("msa", Sgr_assign.Solver.Msa) ])
          Sgr_assign.Solver.Frank_wolfe
      & info [ "method" ] ~docv:"M"
          ~doc:
            "$(b,fw) (Frank–Wolfe with exact line search, default) or $(b,msa) (method of \
             successive averages).")
  in
  let tol =
    Arg.(
      value
      & opt float 1e-4
      & info [ "tol" ] ~docv:"EPS" ~doc:"Relative-gap convergence threshold (default 1e-4).")
  in
  let max_iter =
    Arg.(
      value
      & opt int 10_000
      & info [ "max-iter" ] ~docv:"N" ~doc:"Iteration budget (default 10000).")
  in
  let paths_k =
    Arg.(
      value
      & opt int 0
      & info [ "paths" ] ~docv:"K"
          ~doc:
            "Decompose the edge flow into path flows (Dijkstra-tree peeling) and print the \
             $(docv) largest.")
  in
  Cmd.v
    (Cmd.info "assign"
       ~doc:
         "City-scale traffic assignment over per-edge flows (no path enumeration): Frank–Wolfe \
          or MSA to the Wardrop equilibrium or the system optimum, deterministic at any \
          $(b,--jobs).")
    Term.(const run $ file_arg $ obj $ method_ $ tol $ max_iter $ paths_k $ obs_term)

(* ---------------- tntp ---------------- *)

let tntp_cmd =
  let run net_path trips_path (trace, stats) =
    with_obs ~trace ~stats @@ fun () ->
    let slurp p =
      match In_channel.with_open_text p In_channel.input_all with
      | s -> s
      | exception Sys_error m ->
          Format.eprintf "error: %s@." m;
          exit 2
    in
    match Sgr_workloads.Tntp.parse ~net:(slurp net_path) ~trips:(slurp trips_path) with
    | Ok net -> print_string (IF.print_network net)
    | Error m ->
        Format.eprintf "error: %s@." m;
        exit 2
  in
  let net_file =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"NET" ~doc:"TNTP link table (_net.tntp).")
  in
  let trips_file =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"TRIPS" ~doc:"TNTP origin–destination matrix (_trips.tntp).")
  in
  Cmd.v
    (Cmd.info "tntp"
       ~doc:
         "Import a TNTP-style instance (link table + trips matrix) and print it in the native \
          instance-file format, ready for $(b,sgr assign) or the serving layer.")
    Term.(const run $ net_file $ trips_file $ obs_term)

(* ---------------- optop ---------------- *)

let optop_cmd =
  let run path rounds (trace, stats) =
    with_obs ~trace ~stats (fun () ->
        let t = require_links (load_instance path) in
        let r = Stackelberg.Optop.run t in
        if rounds then
          List.iteri
            (fun i (round : Stackelberg.Optop.round) ->
              diag "round %d: r = %.6g, frozen = {%s}@." (i + 1) round.demand
                (String.concat ","
                   (Array.to_list (Array.map (fun j -> string_of_int (j + 1)) round.frozen))))
            r.rounds;
        Format.printf "beta      = %.9g@." r.beta;
        Format.printf "strategy  = %a@." Vec.pp r.strategy;
        Format.printf "C(N)      = %.9g@." r.nash_cost;
        Format.printf "C(O)      = %.9g@." r.optimum_cost;
        Format.printf "C(S+T)    = %.9g@." r.induced_cost)
  in
  let rounds = Arg.(value & flag & info [ "rounds" ] ~doc:"Print OpTop's per-round trace.") in
  Cmd.v
    (Cmd.info "optop"
       ~doc:
         "Compute the price of optimum β and the Leader's optimal strategy on parallel links \
          (Corollary 2.2).")
    Term.(const run $ file_arg $ rounds $ obs_term)

(* ---------------- mop ---------------- *)

let mop_cmd =
  let run path dot_out (trace, stats) =
    with_obs ~trace ~stats @@ fun () ->
    let net = require_network (load_instance path) in
    let r = Stackelberg.Mop.run net in
    Format.printf "beta (strong) = %.9g@." r.beta;
    Format.printf "beta (weak)   = %.9g@." r.beta_weak;
    Format.printf "C(N)          = %.9g@." r.nash_cost;
    Format.printf "C(O)          = %.9g@." r.opt_cost;
    Format.printf "C(S+T)        = %.9g@." r.induced.cost;
    Array.iter
      (fun (rep : Stackelberg.Mop.commodity_report) ->
        Format.printf "commodity %d: free flow %.6g, controlled %.6g, %d leader paths@."
          rep.index rep.free_flow rep.controlled
          (List.length rep.leader_paths))
      r.per_commodity;
    match dot_out with
    | None -> ()
    | Some path ->
        let dot =
          Sgr_graph.Dot.export ~name:"mop"
            ~edge_label:(fun e ->
              Printf.sprintf "o=%.3f s=%.3f" r.opt_edge_flow.(e.Sgr_graph.Digraph.id)
                r.leader_edge_flow.(e.Sgr_graph.Digraph.id))
            ~edge_highlight:(fun e -> r.leader_edge_flow.(e.Sgr_graph.Digraph.id) > 1e-9)
            net.Net.graph
        in
        Out_channel.with_open_text path (fun oc -> output_string oc dot);
        diag "wrote %s@." path
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"OUT.dot"
          ~doc:"Export the network in Graphviz format with the Leader's edges highlighted.")
  in
  Cmd.v
    (Cmd.info "mop"
       ~doc:"Compute the price of optimum and the optimal strategy on a network (Theorem 2.1).")
    Term.(const run $ file_arg $ dot $ obs_term)

(* ---------------- heuristics ---------------- *)

let heuristic_cmd name doc links_play net_play =
  let run path alpha (trace, stats) =
    if not (0.0 <= alpha && alpha <= 1.0) then begin
      Format.eprintf "error: alpha must be in [0, 1]@.";
      exit 2
    end;
    with_obs ~trace ~stats @@ fun () ->
    match load_instance path with
    | IF.Links t ->
        let o : Stackelberg.Strategies.outcome = links_play t ~alpha in
        Format.printf "strategy  = %a@." Vec.pp o.strategy;
        Format.printf "C(S+T)    = %.9g@." o.induced_cost;
        Format.printf "ratio     = %.9g@." o.ratio_to_opt
    | IF.Network n ->
        let o : Stackelberg.Net_strategies.outcome = net_play n ~alpha in
        Format.printf "leader edge flow = %a@." Vec.pp o.leader_edge_flow;
        Format.printf "C(S+T)    = %.9g@." o.induced.cost;
        Format.printf "ratio     = %.9g@." o.ratio_to_opt
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ file_arg $ alpha_arg $ obs_term)

let llf_cmd =
  heuristic_cmd "llf"
    "Play the Largest-Latency-First heuristic with budget ALPHA·r and report the induced cost."
    Stackelberg.Strategies.llf
    (fun n ~alpha -> Stackelberg.Net_strategies.llf n ~alpha)

let scale_cmd =
  heuristic_cmd "scale" "Play SCALE (ALPHA times the optimum) and report the induced cost."
    Stackelberg.Strategies.scale
    (fun n ~alpha -> Stackelberg.Net_strategies.scale n ~alpha)

(* ---------------- thm24 ---------------- *)

let thm24_cmd =
  let run path alpha (trace, stats) =
    with_obs ~trace ~stats @@ fun () ->
    let t = require_links (load_instance path) in
    if not (Stackelberg.Linear_exact.is_common_slope t) then begin
      Format.eprintf "error: Theorem 2.4 needs common-slope linear latencies@.";
      exit 2
    end;
    let r = Stackelberg.Linear_exact.solve t ~alpha in
    Format.printf "strategy   = %a@." Vec.pp r.strategy;
    Format.printf "C(S+T)     = %.9g@." r.induced_cost;
    Format.printf "partition  = prefix of %d links, epsilon = %.9g@." r.best.i0 r.best.epsilon
  in
  Cmd.v
    (Cmd.info "thm24"
       ~doc:
         "Compute the exact optimal strategy on a hard instance (ALPHA < β) with common-slope \
          linear latencies (Theorem 2.4).")
    Term.(const run $ file_arg $ alpha_arg $ obs_term)

(* ---------------- sweep ---------------- *)

let sweep_cmd =
  let run path samples csv (trace, stats) =
    with_obs ~machine:csv ~trace ~stats @@ fun () ->
    let t = require_links (load_instance path) in
    let curve = Stackelberg.Alpha_sweep.run ~samples t in
    if csv then begin
      Format.printf "alpha,ratio,method@.";
      List.iter
        (fun (p : Stackelberg.Alpha_sweep.point) ->
          let m =
            match p.method_used with
            | Stackelberg.Alpha_sweep.Exact_threshold -> "threshold"
            | Linear_exact -> "thm2.4"
            | Grid_search -> "grid"
            | Heuristic_upper_bound -> "heuristic"
          in
          Format.printf "%.6f,%.9f,%s@." p.alpha p.ratio m)
        curve.points
    end
    else begin
      Format.printf "beta = %.6f@." curve.beta;
      List.iter
        (fun (p : Stackelberg.Alpha_sweep.point) ->
          Format.printf "alpha %.3f -> ratio %.6f@." p.alpha p.ratio)
        curve.points
    end
  in
  let samples =
    Arg.(value & opt int 21 & info [ "samples" ] ~docv:"N" ~doc:"Number of α samples.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Trace the a-posteriori anarchy cost (M,r,α) as a function of α (Expression (2)).")
    Term.(const run $ file_arg $ samples $ csv_arg $ obs_term)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let run path samples r_lo r_hi csv (trace, stats) =
    with_obs ~machine:csv ~trace ~stats @@ fun () ->
    let t = require_links (load_instance path) in
    let points = Stackelberg.Beta_profile.run ~samples t ~r_lo ~r_hi in
    if csv then begin
      Format.printf "demand,beta,poa@.";
      List.iter
        (fun (p : Stackelberg.Beta_profile.point) ->
          Format.printf "%.6f,%.9f,%.9f@." p.demand p.beta p.poa)
        points
    end
    else
      List.iter
        (fun (p : Stackelberg.Beta_profile.point) ->
          Format.printf "r = %-8.4f β = %-10.6f PoA = %.6f@." p.demand p.beta p.poa)
        points
  in
  let samples =
    Arg.(value & opt int 21 & info [ "samples" ] ~docv:"N" ~doc:"Number of demand samples.")
  in
  let r_lo = Arg.(value & opt float 0.1 & info [ "from" ] ~docv:"R" ~doc:"Lowest demand.") in
  let r_hi = Arg.(value & opt float 3.0 & info [ "to" ] ~docv:"R" ~doc:"Highest demand.") in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Trace the price of optimum β_M and the price of anarchy as the total demand varies.")
    Term.(const run $ file_arg $ samples $ r_lo $ r_hi $ csv_arg $ obs_term)

(* ---------------- info ---------------- *)

let info_cmd =
  let run path (trace, stats) =
    with_obs ~trace ~stats @@ fun () ->
    match load_instance path with
    | IF.Links t ->
        Format.printf "kind: parallel links@.";
        Format.printf "links: %d, demand: %g@." (Links.num_links t) t.Links.demand;
        Array.iteri
          (fun i lat ->
            Format.printf "  M%d: %s%s@." (i + 1)
              (Sgr_latency.Latency.to_string lat)
              (if Sgr_latency.Latency.is_constant lat then "  (constant)" else ""))
          t.Links.latencies;
        Format.printf "common-slope linear (Thm 2.4 class): %b@."
          (Stackelberg.Linear_exact.is_common_slope t)
    | IF.Network net ->
        let g = net.Net.graph in
        Format.printf "kind: network@.";
        Format.printf "nodes: %d, edges: %d, commodities: %d, total demand: %g@."
          (Sgr_graph.Digraph.num_nodes g) (Sgr_graph.Digraph.num_edges g)
          (Array.length net.Net.commodities) (Net.total_demand net);
        Format.printf "acyclic: %b@." (Sgr_graph.Topology.is_dag g);
        Array.iteri
          (fun i c ->
            (* Saturating count (no path lists are materialized), so the
               report stays exact far past the enumeration cap and never
               overflows on city-scale grids. *)
            match Sgr_graph.Paths.count g ~src:c.Net.src ~dst:c.Net.dst with
            | `Exact n ->
                Format.printf "commodity %d: %d -> %d, demand %g, %d simple paths@." i c.Net.src
                  c.Net.dst c.Net.demand n
            | `At_least n ->
                Format.printf
                  "commodity %d: %d -> %d, demand %g, >= %d simple paths (count capped)@." i
                  c.Net.src c.Net.dst c.Net.demand n)
          net.Net.commodities
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Describe an instance file: sizes, latencies, structure.")
    Term.(const run $ file_arg $ obs_term)

(* ---------------- tolls ---------------- *)

let tolls_cmd =
  let run path (trace, stats) =
    with_obs ~trace ~stats @@ fun () ->
    match load_instance path with
    | IF.Links t ->
        let tolls = Stackelberg.Tolls.links_tolls t in
        let eq, cost = Stackelberg.Tolls.links_outcome t in
        Format.printf "tolls           = %a@." Vec.pp tolls;
        Format.printf "tolled flow     = %a@." Vec.pp eq;
        Format.printf "latency cost    = %.9g@." cost;
        Format.printf "optimum C(O)    = %.9g@." (Links.cost t (Links.opt t).assignment)
    | IF.Network net ->
        let tolls = Stackelberg.Tolls.network_tolls net in
        let flow, cost = Stackelberg.Tolls.network_outcome net in
        let opt = Eq.solve Obj.System_optimum net in
        Format.printf "tolls           = %a@." Vec.pp tolls;
        Format.printf "tolled flow     = %a@." Vec.pp flow;
        Format.printf "latency cost    = %.9g@." cost;
        Format.printf "optimum C(O)    = %.9g@." (Net.cost net opt.edge_flow)
  in
  Cmd.v
    (Cmd.info "tolls"
       ~doc:
         "Compute marginal-cost (Pigouvian) tolls and the tolled equilibrium — the first-best \
          pricing benchmark the paper's introduction contrasts with Stackelberg control.")
    Term.(const run $ file_arg $ obs_term)

(* ---------------- pricing ---------------- *)

let pricing_cmd =
  let rounds_arg =
    Arg.(
      value
      & opt int 64
      & info [ "rounds" ] ~docv:"N" ~doc:"Best-response round budget (default 64).")
  in
  let run path rounds (trace, stats) =
    with_obs ~trace ~stats @@ fun () ->
    let t = require_links (load_instance path) in
    match Sgr_links.Pricing.best_response ~max_rounds:rounds t with
    | r ->
        Format.printf "%a@." Sgr_links.Pricing.pp r;
        Format.printf "optimum C(O)    = %.9g@." (Links.cost t (Links.opt t).assignment);
        Format.printf "price of pricing = %.6g@." (Sgr_links.Pricing.price_of_pricing t r)
    | exception Invalid_argument m ->
        Format.eprintf "error: %s@." m;
        exit 2
  in
  Cmd.v
    (Cmd.info "pricing"
       ~doc:
         "Best-response toll pricing on parallel affine links: each link's profit-maximizing \
          owner sets a toll, users route selfishly under latency + toll, and the dynamics run \
          to a pricing equilibrium (Goldberg-Polpinit) — every payoff probe is one closed-form \
          water-fill.")
    Term.(const run $ file_arg $ rounds_arg $ obs_term)

(* ---------------- bound ---------------- *)

let bound_cmd =
  let run path (trace, stats) =
    with_obs ~trace ~stats @@ fun () ->
    let lats, poa =
      match load_instance path with
      | IF.Links t -> (t.Links.latencies, Links.price_of_anarchy t)
      | IF.Network net ->
          let nash = Eq.solve Obj.Wardrop net in
          let opt = Eq.solve Obj.System_optimum net in
          (net.Net.latencies, Net.cost net nash.edge_flow /. Net.cost net opt.edge_flow)
    in
    let worst = ref 1.0 in
    Array.iteri
      (fun i lat ->
        let b = Stackelberg.Bounds.pigou_bound lat in
        worst := Float.max !worst b;
        Format.printf "latency %d: %-24s pigou bound %.6f@." i
          (Sgr_latency.Latency.to_string lat) b)
      lats;
    Format.printf "worst pigou bound (topology-free PoA bound) = %.6f@." !worst;
    Format.printf "measured price of anarchy                   = %.6f@." poa
  in
  Cmd.v
    (Cmd.info "bound"
       ~doc:
         "Compute each latency's Pigou bound (Roughgarden's anarchy value) and compare the \
          topology-independent PoA bound with the instance's measured price of anarchy.")
    Term.(const run $ file_arg $ obs_term)

(* ---------------- catalog ---------------- *)

let catalog =
  [
    ("pigou", fun () -> IF.Links W.pigou);
    ("fig456", fun () -> IF.Links W.fig456);
    ("fig7", fun () -> IF.Network (W.fig7 ()));
    ("braess", fun () -> IF.Network (W.braess_classic ()));
    ("two-commodity", fun () -> IF.Network (W.two_commodity ()));
    ("pigou-degree-4", fun () -> IF.Links (W.pigou_degree 4));
  ]

let catalog_cmd =
  let run name (trace, stats) =
    with_obs ~trace ~stats @@ fun () ->
    match name with
    | None ->
        Format.printf "available instances:@.";
        List.iter (fun (n, _) -> Format.printf "  %s@." n) catalog
    | Some n -> (
        match List.assoc_opt n catalog with
        | None ->
            Format.eprintf "error: unknown instance %S (try `sgr catalog`)@." n;
            exit 2
        | Some make -> (
            match make () with
            | IF.Links t -> print_string (IF.print_links t)
            | IF.Network net -> print_string (IF.print_network net)))
  in
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Catalog instance name.")
  in
  Cmd.v
    (Cmd.info "catalog"
       ~doc:"List the paper's named instances, or print one in instance-file format.")
    Term.(const run $ name_arg $ obs_term)

(* ---------------- random ---------------- *)

let random_cmd =
  let run kind seed m (trace, stats) =
    with_obs ~trace ~stats @@ fun () ->
    let rng = Sgr_numerics.Prng.create seed in
    match kind with
    | "links" -> print_string (IF.print_links (W.random_affine_links rng ~m ()))
    | "common-slope" -> print_string (IF.print_links (W.random_common_slope_links rng ~m ()))
    | "poly" -> print_string (IF.print_links (W.random_polynomial_links rng ~m ()))
    | "mm1" -> print_string (IF.print_links (W.random_mm1_links rng ~m ()))
    | "grid" -> print_string (IF.print_network (W.grid_network rng ~rows:m ~cols:m ()))
    | "layered" ->
        print_string (IF.print_network (W.random_layered_network rng ~layers:m ~width:m ()))
    | "city" ->
        (* rings = m, radials = 4m: 16·m² edges, so --size 25 is the
           10^4-edge benchmark tier and --size 79 is ~10^5. *)
        print_string (IF.print_network (W.synthetic_city rng ~rings:m ~radials:(4 * m) ()))
    | k ->
        Format.eprintf
          "error: unknown kind %S (links|common-slope|poly|mm1|grid|layered|city)@." k;
        exit 2
  in
  let kind =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KIND" ~doc:"links | common-slope | poly | mm1 | grid | layered | city")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let size = Arg.(value & opt int 5 & info [ "size"; "m" ] ~docv:"M" ~doc:"Instance size.") in
  Cmd.v
    (Cmd.info "random" ~doc:"Generate a random instance and print it in instance-file format.")
    Term.(const run $ kind $ seed $ size $ obs_term)

(* ---------------- batch / serve ---------------- *)

let cache_arg =
  Arg.(
    value
    & opt int 32
    & info [ "cache" ] ~docv:"N"
        ~doc:
          "Capacity of the instance LRU cache (parsed instances plus their memoized solutions). \
           Least-recently-used instances are evicted and transparently reloaded from their bound \
           file path on next use.")

let batch_cmd =
  let run path connect cache_cap (trace, stats) =
    with_obs ~machine:true ~trace ~stats @@ fun () ->
    let lines =
      if path = "-" then In_channel.input_lines In_channel.stdin
      else
        match In_channel.with_open_text path In_channel.input_lines with
        | lines -> lines
        | exception Sys_error m ->
            Format.eprintf "error: %s@." m;
            exit 2
    in
    match connect with
    | Some socket -> (
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        let c =
          try Sgr_serve.Client.connect socket
          with Unix.Unix_error (e, _, _) ->
            Format.eprintf "error: cannot connect to %s: %s@." socket (Unix.error_message e);
            exit 2
        in
        Fun.protect ~finally:(fun () -> Sgr_serve.Client.close c) @@ fun () ->
        (* Mirror the in-process semantics: nothing after [quit] runs. *)
        let live = ref true in
        try
          List.iter
            (fun raw ->
              if !live then
                match Sgr_serve.Client.rpc c raw with
                | None -> ()
                | Some reply ->
                    print_endline reply;
                    if String.equal reply "ok bye" then live := false)
            lines
        with Sgr_serve.Client.Disconnected | Unix.Unix_error _ ->
          Format.eprintf "error: server closed the connection@.";
          exit 2)
    | None ->
        let cache = Sgr_serve.Cache.create ~capacity:cache_cap in
        List.iter print_endline (Sgr_serve.Engine.run_batch cache lines)
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Request file, one request per line ($(b,-) for stdin); see docs/serving.md for the \
             grammar.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"SOCKET"
          ~doc:
            "Send the requests to a running $(b,sgr serve) over this Unix-domain socket instead \
             of solving in-process.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Execute a request file against the query engine and print one reply line per request. \
          Output is byte-identical at any $(b,--jobs); the latency-histogram section of \
          $(b,metrics) replies is the documented exception (counts and gauges stay exact).")
    Term.(const run $ file $ connect $ cache_arg $ obs_term)

let serve_cmd =
  let run socket cache_cap (trace, stats) =
    with_obs ~machine:true ~trace ~stats @@ fun () ->
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let cache = Sgr_serve.Cache.create ~capacity:cache_cap in
    let log msg = Format.eprintf "sgr serve: %s@." msg in
    let server = Sgr_serve.Server.create ~socket_path:socket ~cache ~log in
    let stop _ = Sgr_serve.Server.request_stop server in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    match Sgr_serve.Server.run server with
    | () -> ()
    | exception Sgr_serve.Server.Busy path ->
        Format.eprintf "error: a server is already answering on %s (stop it first)@." path;
        exit 2
    | exception Unix.Unix_error (e, fn, _) ->
        Format.eprintf "error: %s: %s@." fn (Unix.error_message e);
        exit 2
  in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket path to listen on (created at startup, removed on shutdown).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived query engine on a Unix-domain socket (concurrent pipelined sessions \
          over one select loop; SIGINT drains gracefully; refuses to steal a socket another \
          server answers on).")
    Term.(const run $ socket $ cache_arg $ obs_term)

(* ---------------- bench ---------------- *)

let bench_serve_cmd =
  let run requests instances reuse seed connect clients quick json cache_cap (trace, stats) =
    with_obs ~machine:true ~trace ~stats @@ fun () ->
    let requests, instances = if quick then (300, 6) else (requests, instances) in
    if clients < 1 then begin
      Format.eprintf "error: --clients must be >= 1@.";
      exit 2
    end;
    let dir = Filename.temp_dir "sgr_bench_serve" "" in
    let rm_rf () =
      (try Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    in
    (* [Stdlib.exit] does not run [Fun.protect] finalizers, so every
       failure inside the protected region is carried out as a value
       and the exits below happen only after the scratch directory is
       removed — gate failures and connect errors included. *)
    let outcome =
      Fun.protect ~finally:rm_rf @@ fun () ->
      let streams =
        if clients = 1 then
          [| Sgr_serve.Loadgen.generate ~dir ~seed ~instances ~requests ~reuse |]
        else Sgr_serve.Loadgen.generate_multi ~dir ~seed ~instances ~requests ~reuse ~clients
      in
      let conns = ref [] in
      let server_thread = ref None in
      let stop_server () =
        match !server_thread with
        | None -> ()
        | Some (server, th) ->
            Sgr_serve.Server.request_stop server;
            Thread.join th;
            server_thread := None
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter Sgr_serve.Client.close !conns;
          stop_server ())
      @@ fun () ->
      let connect_clients socket =
        match
          Array.init clients (fun _ ->
              let c = Sgr_serve.Client.connect socket in
              conns := c :: !conns;
              c)
        with
        | arr -> `Ok (Sgr_serve.Loadgen.Sockets arr)
        | exception Unix.Unix_error (e, _, _) ->
            `Error (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))
      in
      let target =
        match connect with
        | Some socket ->
            Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
            connect_clients socket
        | None when clients = 1 ->
            `Ok
              (Sgr_serve.Loadgen.In_process
                 { cache = Sgr_serve.Cache.create ~capacity:cache_cap; jobs = None })
        | None ->
            (* Several clients but no --connect: spin the server up
               inside this process on a scratch socket so the bench
               still exercises real concurrent sessions. *)
            Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
            let socket = Filename.concat dir "bench.sock" in
            let server =
              Sgr_serve.Server.create ~socket_path:socket
                ~cache:(Sgr_serve.Cache.create ~capacity:cache_cap)
                ~log:(fun _ -> ())
            in
            let th = Thread.create Sgr_serve.Server.run server in
            server_thread := Some (server, th);
            let rec wait n =
              if Sys.file_exists socket then connect_clients socket
              else if n = 0 then `Error "internal server did not come up"
              else begin
                Thread.delay 0.01;
                wait (n - 1)
              end
            in
            wait 500
      in
      match target with
      | `Error _ as e -> e
      | `Ok target ->
          let r = Sgr_serve.Loadgen.run target streams in
          let open Sgr_serve.Loadgen in
          Format.printf "target        = %s@."
            (match (connect, !server_thread) with
            | Some s, _ -> "socket " ^ s
            | None, Some _ -> "internal server"
            | None, None -> "in-process");
          Format.printf "clients       = %d@." clients;
          Format.printf "requests      = %d  (errors %d)@." r.requests r.errors;
          Format.printf "wall          = %.6g s@." r.wall_s;
          Format.printf "throughput    = %.6g req/s@." r.rps;
          Format.printf "p50 / p95 / p99 = %.6g / %.6g / %.6g ms@." (1e3 *. r.p50_s)
            (1e3 *. r.p95_s) (1e3 *. r.p99_s);
          Format.printf "memo hit rate = %.6g@." r.memo_hit_rate;
          (match json with
          | None -> ()
          | Some path ->
              Out_channel.with_open_text path (fun oc ->
                  Printf.fprintf oc
                    "{\"group\":\"T11-serve\",\"requests\":%d,\"errors\":%d,\"wall_s\":%.6g,\
                     \"rps\":%.6g,\"p50_s\":%.6g,\"p95_s\":%.6g,\"p99_s\":%.6g,\
                     \"memo_hit_rate\":%.6g}\n"
                    r.requests r.errors r.wall_s r.rps r.p50_s r.p95_s r.p99_s r.memo_hit_rate);
              Format.eprintf "bench: wrote %s@." path);
          if quick then begin
            (* With N pipelined clients on one engine a request's
               latency legitimately includes up to N-1 foreign requests
               of queue wait, so the tail bound scales with N. *)
            let p99_max_s = 0.25 *. float_of_int clients in
            match gate r ~p99_max_s ~rps_min:20.0 ~hit_rate_min:0.2 with
            | [] ->
                Format.printf "gate          = ok (p99 <= %gms, >= 20 req/s, hit rate >= 0.2)@."
                  (1e3 *. p99_max_s);
                `Done
            | fails -> `Gate_failures fails
          end
          else `Done
    in
    match outcome with
    | `Error msg ->
        Format.eprintf "error: %s@." msg;
        exit 2
    | `Done -> ()
    | `Gate_failures fails ->
        List.iter (fun m -> Format.eprintf "gate failure: %s@." m) fails;
        exit 1
  in
  let requests =
    Arg.(
      value
      & opt int 2000
      & info [ "requests" ; "n" ] ~docv:"N" ~doc:"Number of verb requests to replay.")
  in
  let instances =
    Arg.(
      value
      & opt int 12
      & info [ "instances" ] ~docv:"K"
          ~doc:"Size of the synthetic instance pool (mixed parallel-links and grid networks).")
  in
  let reuse =
    Arg.(
      value
      & opt float 0.6
      & info [ "reuse" ] ~docv:"R"
          ~doc:
            "Probability in [0, 1] that a request sticks with the previous instance: high values \
             hammer the memo, low values churn the LRU.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for the stream.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"SOCKET"
          ~doc:
            "Replay against a running $(b,sgr serve) on this Unix-domain socket (latency measured \
             client-side) instead of the in-process engine.")
  in
  let clients =
    Arg.(
      value
      & opt int 1
      & info [ "clients" ] ~docv:"N"
          ~doc:
            "Number of concurrent socket clients, each replaying its own deterministic stream \
             with pipelined requests. With $(b,--connect) they all attach to that server; \
             without it (and N > 1) an in-process server is spun up on a scratch socket.")
  in
  let quick =
    Arg.(
      value
      & flag
      & info [ "quick" ]
          ~doc:
            "CI gate: a small fixed workload (300 requests over 6 instances) that exits 1 unless \
             p99 latency, throughput and memo hit rate meet the T11 thresholds.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the report as a JSON object to $(docv).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Load-generate against the serving layer: replay a deterministic synthetic request \
          stream (see docs/performance.md, T11) and report p50/p95/p99 latency, throughput and \
          memo hit rate.")
    Term.(
      const run $ requests $ instances $ reuse $ seed $ connect $ clients $ quick $ json
      $ cache_arg $ obs_term)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench" ~doc:"Benchmark harnesses (see docs/performance.md).")
    [ bench_serve_cmd ]

(* ---------------- main ---------------- *)

let () =
  let doc = "Stackelberg routing: the price of optimum (Kaporis & Spirakis, SPAA'06)" in
  let info = Cmd.info "sgr" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd; assign_cmd; tntp_cmd; optop_cmd; mop_cmd; llf_cmd; scale_cmd; thm24_cmd;
            sweep_cmd; profile_cmd;
            bound_cmd; tolls_cmd; pricing_cmd; info_cmd; catalog_cmd; random_cmd; batch_cmd;
            serve_cmd;
            bench_cmd;
          ]))
