(** Minimal binary min-heap of [(priority, payload)] pairs for Dijkstra.

    Stale entries are handled by the caller (lazy deletion), so only
    [insert] and [pop_min] are needed. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val insert : 'a t -> float -> 'a -> unit

val pop_min : 'a t -> (float * 'a) option
(** Removes and returns the pair with the smallest priority. *)
