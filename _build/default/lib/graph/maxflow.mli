(** Maximum flow with real capacities (Edmonds–Karp).

    MOP's "free flow" (footnote 5 of the paper) is the largest amount of
    demand routable *inside the shortest-path subgraph* when every edge is
    capacitated by its optimal flow; that is exactly a max-flow problem.
    Capacities here are floats produced by a convex solver, so augmenting
    stops when the residual bottleneck falls below a tolerance. *)

type result = {
  value : float;  (** Value of the maximum flow. *)
  flow : float array;  (** Per-edge flow, indexed by edge id. *)
}

val solve : ?eps:float -> Digraph.t -> capacities:float array -> src:int -> dst:int -> result
(** BFS augmentation on the residual graph (no reverse residual arcs are
    needed beyond the standard construction, which is included). Paths with
    bottleneck [< eps] (default [1e-12]) are treated as exhausted.
    Capacities must be [>= 0]. *)
