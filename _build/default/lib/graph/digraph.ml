type edge = { id : int; src : int; dst : int }

type t = {
  num_nodes : int;
  edges : edge array;
  out_adj : edge list array;
  in_adj : edge list array;
}

type builder = { n : int; mutable rev_edges : edge list; mutable count : int }

let builder ~num_nodes =
  if num_nodes <= 0 then invalid_arg "Digraph.builder: need at least one node";
  { n = num_nodes; rev_edges = []; count = 0 }

let add_edge b ~src ~dst =
  if src < 0 || src >= b.n || dst < 0 || dst >= b.n then
    invalid_arg "Digraph.add_edge: endpoint out of range";
  if src = dst then invalid_arg "Digraph.add_edge: self loops are not allowed";
  let e = { id = b.count; src; dst } in
  b.rev_edges <- e :: b.rev_edges;
  b.count <- b.count + 1;
  e.id

let freeze b =
  let edges = Array.of_list (List.rev b.rev_edges) in
  let out_adj = Array.make b.n [] and in_adj = Array.make b.n [] in
  (* Build adjacency in reverse so the lists end up in insertion order. *)
  for i = Array.length edges - 1 downto 0 do
    let e = edges.(i) in
    out_adj.(e.src) <- e :: out_adj.(e.src);
    in_adj.(e.dst) <- e :: in_adj.(e.dst)
  done;
  { num_nodes = b.n; edges; out_adj; in_adj }

let of_edges ~num_nodes pairs =
  let b = builder ~num_nodes in
  List.iter (fun (src, dst) -> ignore (add_edge b ~src ~dst)) pairs;
  freeze b

let num_nodes t = t.num_nodes
let num_edges t = Array.length t.edges

let edge t i =
  if i < 0 || i >= Array.length t.edges then invalid_arg "Digraph.edge: id out of range";
  t.edges.(i)

let edges t = t.edges
let out_edges t v = t.out_adj.(v)
let in_edges t v = t.in_adj.(v)
let fold_edges f t init = Array.fold_left (fun acc e -> f e acc) init t.edges

let pp ppf t =
  Format.fprintf ppf "@[<v>digraph: %d nodes, %d edges" t.num_nodes (Array.length t.edges);
  Array.iter (fun e -> Format.fprintf ppf "@,  e%d: %d -> %d" e.id e.src e.dst) t.edges;
  Format.fprintf ppf "@]"
