lib/graph/maxflow.mli: Digraph
