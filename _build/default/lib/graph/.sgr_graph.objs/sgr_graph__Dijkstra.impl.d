lib/graph/dijkstra.ml: Array Digraph Float Heap List Sgr_numerics
