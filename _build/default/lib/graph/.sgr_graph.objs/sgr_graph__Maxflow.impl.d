lib/graph/maxflow.ml: Array Digraph Float List Queue
