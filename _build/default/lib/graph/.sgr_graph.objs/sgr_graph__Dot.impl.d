lib/graph/dot.ml: Array Buffer Digraph List Printf String
