lib/graph/topology.mli: Digraph
