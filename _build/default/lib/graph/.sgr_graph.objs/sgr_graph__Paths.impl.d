lib/graph/paths.ml: Array Digraph Format List
