lib/graph/paths.mli: Digraph Format
