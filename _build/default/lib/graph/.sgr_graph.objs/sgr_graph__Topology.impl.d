lib/graph/topology.ml: Array Digraph Int List Option Queue Set
