lib/graph/flow.mli: Digraph Paths
