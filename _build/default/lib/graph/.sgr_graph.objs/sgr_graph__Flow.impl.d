lib/graph/flow.ml: Array Digraph Float List Sgr_numerics
