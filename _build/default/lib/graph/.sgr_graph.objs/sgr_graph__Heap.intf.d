lib/graph/heap.mli:
