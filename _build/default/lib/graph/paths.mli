(** Simple paths as edge-id lists.

    Path enumeration is intentionally exhaustive (the path-equilibration
    solver and the experiments run on small/medium networks); callers that
    need scalability use the edge-based Frank–Wolfe solver instead. *)

type t = int list
(** Edge ids in path order (head edge leaves the path's source). *)

val source : Digraph.t -> t -> int
(** First node of a nonempty path. @raise Invalid_argument on []. *)

val target : Digraph.t -> t -> int
(** Last node of a nonempty path. @raise Invalid_argument on []. *)

val nodes : Digraph.t -> t -> int list
(** Node sequence visited, source first. *)

val is_valid : Digraph.t -> src:int -> dst:int -> t -> bool
(** Edges are consecutive, start at [src], end at [dst], and no node
    repeats. *)

val enumerate : ?limit:int -> Digraph.t -> src:int -> dst:int -> t list
(** All simple [src]–[dst] paths by DFS, in lexicographic edge-id order.
    @raise Failure when more than [limit] (default [20_000]) paths exist. *)

val cost : t -> float array -> float
(** Sum of per-edge costs along the path. *)

val pp : Digraph.t -> Format.formatter -> t -> unit
(** Prints the node sequence, e.g. ["0→2→3"]. *)
