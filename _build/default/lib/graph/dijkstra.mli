(** Single-source shortest paths with nonnegative edge weights.

    MOP (the paper's algorithm for networks) needs, for each commodity,
    both the distance labels under optimum-induced edge costs and the
    subgraph of edges lying on *some* shortest s–t path (footnote 5).
    The latter is characterized by
    [dist_from_s(src e) + w e + dist_to_t(dst e) = dist_from_s(t)]. *)

type result = {
  dist : float array;  (** [dist.(v)] — distance from the source; [infinity] if unreachable. *)
  pred : int option array;
      (** [pred.(v)] — id of the edge entering [v] on one shortest path. *)
}

val run : Digraph.t -> weights:float array -> source:int -> result
(** Dijkstra from [source]. [weights] is indexed by edge id; all weights
    must be [>= 0] (asserted). *)

val run_reverse : Digraph.t -> weights:float array -> sink:int -> result
(** Distances *to* [sink] (Dijkstra on the reversed graph);
    [pred.(v)] is the edge leaving [v] on a shortest path to the sink. *)

val shortest_path : Digraph.t -> weights:float array -> src:int -> dst:int -> int list option
(** Edge ids of one shortest [src]–[dst] path (in path order), or [None]
    if unreachable. *)

val shortest_edge_subgraph :
  ?eps:float -> Digraph.t -> weights:float array -> src:int -> dst:int -> bool array
(** [b.(e)] is true iff edge [e] lies on some shortest [src]–[dst] path,
    up to additive slack [eps] (default {!Sgr_numerics.Tolerance.check_eps})
    to absorb solver noise in the weights. *)
