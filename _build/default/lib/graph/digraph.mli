(** Directed multigraphs with integer node ids and dense edge ids.

    Nodes are [0 .. num_nodes-1]; edges get consecutive ids in insertion
    order, so per-edge data (latencies, flows, weights, capacities) lives in
    plain arrays indexed by edge id. Parallel edges and antiparallel pairs
    are allowed; self loops are rejected (the paper's model forbids them). *)

type edge = private { id : int; src : int; dst : int }

type t

(** {1 Construction} *)

type builder

val builder : num_nodes:int -> builder
(** Fresh builder over nodes [0 .. num_nodes-1]. *)

val add_edge : builder -> src:int -> dst:int -> int
(** Adds an edge and returns its id.
    @raise Invalid_argument on out-of-range endpoints or a self loop. *)

val freeze : builder -> t
(** Finalize into an immutable graph. The builder must not be reused. *)

val of_edges : num_nodes:int -> (int * int) list -> t
(** [of_edges ~num_nodes [(s1,d1); ...]] builds a graph whose edge ids
    follow the list order. *)

(** {1 Access} *)

val num_nodes : t -> int
val num_edges : t -> int

val edge : t -> int -> edge
(** Edge by id. @raise Invalid_argument if out of range. *)

val edges : t -> edge array
(** All edges by id (do not mutate). *)

val out_edges : t -> int -> edge list
(** Outgoing edges of a node, in insertion order. *)

val in_edges : t -> int -> edge list
(** Incoming edges of a node, in insertion order. *)

val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a

val pp : Format.formatter -> t -> unit
