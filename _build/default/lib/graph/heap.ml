type 'a entry = { prio : float; payload : 'a }
type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }
let is_empty h = h.len = 0
let size h = h.len

let grow h e =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap e in
    Array.blit h.data 0 nd 0 h.len;
    h.data <- nd
  end

let insert h prio payload =
  let e = { prio; payload } in
  grow h e;
  let i = ref h.len in
  h.len <- h.len + 1;
  h.data.(!i) <- e;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if h.data.(parent).prio > h.data.(!i).prio then begin
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop_min h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && h.data.(l).prio < h.data.(!smallest).prio then smallest := l;
        if r < h.len && h.data.(r).prio < h.data.(!smallest).prio then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.prio, top.payload)
  end
