let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let export ?(name = "G") ?node_label ?edge_label ?edge_highlight g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=LR;\n" (escape name));
  for v = 0 to Digraph.num_nodes g - 1 do
    let label = match node_label with Some f -> f v | None -> string_of_int v in
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (escape label))
  done;
  Array.iter
    (fun (e : Digraph.edge) ->
      let label = match edge_label with Some f -> escape (f e) | None -> "" in
      let hot = match edge_highlight with Some f -> f e | None -> false in
      let attrs =
        String.concat ", "
          (List.filter
             (fun s -> s <> "")
             [
               (if label = "" then "" else Printf.sprintf "label=\"%s\"" label);
               (if hot then "color=red, penwidth=2.0" else "");
             ])
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d%s;\n" e.src e.dst
           (if attrs = "" then "" else " [" ^ attrs ^ "]")))
    (Digraph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_channel ?name ?node_label ?edge_label ?edge_highlight oc g =
  output_string oc (export ?name ?node_label ?edge_label ?edge_highlight g)
