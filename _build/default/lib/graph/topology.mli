(** Topological structure queries on directed graphs. *)

val topological_order : Digraph.t -> int array option
(** A topological ordering of the nodes, or [None] when the graph has a
    directed cycle. Kahn's algorithm; ties resolved by node id. *)

val is_dag : Digraph.t -> bool

val has_cycle_in_support : Digraph.t -> support:bool array -> bool
(** Whether the subgraph of edges with [support.(e)] true contains a
    directed cycle — used to sanity-check flow supports before path
    decomposition. *)

val reachable_from : Digraph.t -> int -> bool array
(** Nodes reachable from the given node (BFS over out-edges). *)

val co_reachable_to : Digraph.t -> int -> bool array
(** Nodes from which the given node is reachable (BFS over in-edges). *)
