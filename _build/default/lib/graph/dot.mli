(** Graphviz DOT export, for inspecting instances and flows. *)

val export :
  ?name:string ->
  ?node_label:(int -> string) ->
  ?edge_label:(Digraph.edge -> string) ->
  ?edge_highlight:(Digraph.edge -> bool) ->
  Digraph.t ->
  string
(** [export g] renders the graph as a DOT digraph. [edge_highlight]ed
    edges are drawn bold red (e.g. the Leader's edges in a Stackelberg
    strategy). *)

val to_channel :
  ?name:string ->
  ?node_label:(int -> string) ->
  ?edge_label:(Digraph.edge -> string) ->
  ?edge_highlight:(Digraph.edge -> bool) ->
  out_channel ->
  Digraph.t ->
  unit
