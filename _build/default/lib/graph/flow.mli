(** Edge-flow utilities: conservation checks and path decomposition. *)

val excess : Digraph.t -> flow:float array -> int -> float
(** Net outflow minus inflow at a node. *)

val is_feasible :
  ?eps:float -> Digraph.t -> flow:float array -> src:int -> dst:int -> demand:float -> bool
(** Nonnegative flow shipping [demand] from [src] to [dst] with
    conservation elsewhere (up to [eps], default
    {!Sgr_numerics.Tolerance.check_eps}). *)

val decompose :
  ?eps:float -> Digraph.t -> flow:float array -> src:int -> dst:int -> (Paths.t * float) list
(** Greedy path decomposition of a feasible [src]–[dst] flow: repeatedly
    follow positive-flow edges from [src] to [dst], subtract the
    bottleneck. Flow units below [eps] (default [1e-9]) are dropped.

    @raise Failure if the positive-flow subgraph contains a cycle
    reachable while tracing (the optima produced by this library have
    acyclic support, so a cycle indicates a solver bug). *)

val of_paths : Digraph.t -> (Paths.t * float) list -> float array
(** Accumulate path flows into per-edge flows. *)
