lib/links/links.mli: Format Sgr_latency
