lib/links/links.ml: Array Float Format List Option Sgr_latency Sgr_numerics
