(** Unsplittable atomic congestion games on parallel links.

    The discrete cousin of the paper's model, studied for Stackelberg
    control by Fotakis [12] (cited in Section 1.1): [n] unit-demand
    players each pick {e one} link; link [i] under integer load [k] costs
    each of its users [ℓᵢ(k)]. These are exact potential games
    (Rosenthal): best-response dynamics strictly decrease
    [Φ(state) = Σᵢ Σ_{k=1..loadᵢ} ℓᵢ(k)], so a pure Nash equilibrium
    always exists and dynamics terminate.

    The module provides the game, exact optima (by dynamic programming
    over integer link loads), pure-equilibrium computation, and the
    Largest-Latency-First Stackelberg scheme: a Leader dictates the
    choices of [k] of the [n] players — placing them on their
    optimal-assignment links from the slowest down — and the remaining
    players best-respond to equilibrium. *)

type t = private {
  latencies : Sgr_latency.Latency.t array;
  players : int;  (** Number of unit-demand players. *)
}

type state = int array
(** [state.(p)] — the link chosen by player [p]. *)

val make : Sgr_latency.Latency.t array -> players:int -> t
(** @raise Invalid_argument without links or with [players < 1]. *)

val loads : t -> state -> int array
(** Number of players per link. *)

val social_cost : t -> state -> float
(** [Σᵢ loadᵢ·ℓᵢ(loadᵢ)]. *)

val potential : t -> state -> float
(** Rosenthal's potential [Σᵢ Σ_{k<=loadᵢ} ℓᵢ(k)]. *)

val player_latency : t -> state -> int -> float
(** The latency player [p] currently experiences. *)

val is_equilibrium : ?eps:float -> t -> state -> bool
(** No player can strictly reduce its latency by moving alone. *)

val best_response_dynamics : ?max_steps:int -> t -> state -> state * int
(** Iteratively move any improving player to its best link until no one
    improves; returns the state and the number of single-player moves.
    Termination is guaranteed by the potential; [max_steps] (default
    [1_000_000]) is a safety net. *)

val nash : t -> state
(** Equilibrium reached from the empty-greedy initial state (players
    inserted one by one on the currently best link — already a common
    equilibrium construction for parallel links). *)

val optimum_loads : t -> int array
(** Integer link loads minimizing the social cost (exact DP, O(m·n²)). *)

val optimum_cost : t -> float

val stackelberg_llf : t -> controlled:int -> state
(** LLF with [controlled] dictated players: they are pinned to the links
    of the optimal assignment in decreasing order of optimal latency;
    the free players then best-respond to equilibrium (the pinned players
    never move).
    @raise Invalid_argument unless [0 <= controlled <= players]. *)

val price_of_anarchy : t -> float
(** [social_cost (nash t) / optimum_cost t] (for the equilibrium reached
    by {!nash}; pure equilibria need not be unique). *)
