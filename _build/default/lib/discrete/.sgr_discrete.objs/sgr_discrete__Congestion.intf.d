lib/discrete/congestion.mli: Sgr_latency
