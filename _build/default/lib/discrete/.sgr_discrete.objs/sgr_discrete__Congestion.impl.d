lib/discrete/congestion.ml: Array Float List Sgr_latency Sgr_numerics
