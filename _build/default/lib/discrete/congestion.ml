module L = Sgr_latency.Latency

type t = { latencies : L.t array; players : int }
type state = int array

let make latencies ~players =
  if Array.length latencies = 0 then invalid_arg "Congestion.make: no links";
  if players < 1 then invalid_arg "Congestion.make: need at least one player";
  { latencies; players }

let num_links t = Array.length t.latencies

let loads t state =
  let counts = Array.make (num_links t) 0 in
  Array.iter (fun i -> counts.(i) <- counts.(i) + 1) state;
  counts

let eval_at t i k = L.eval t.latencies.(i) (float_of_int k)

let social_cost t state =
  let counts = loads t state in
  let acc = ref 0.0 in
  Array.iteri (fun i k -> if k > 0 then acc := !acc +. (float_of_int k *. eval_at t i k)) counts;
  !acc

let potential t state =
  let counts = loads t state in
  let acc = ref 0.0 in
  Array.iteri
    (fun i k ->
      for j = 1 to k do
        acc := !acc +. eval_at t i j
      done)
    counts;
  !acc

let player_latency t state p =
  let counts = loads t state in
  eval_at t state.(p) counts.(state.(p))

(* Best deviation for player [p] given the current loads: the link
   minimizing its latency after the move (its own link keeps the current
   load). Returns (link, latency-after-move). *)
let best_move t counts current =
  let best = ref current and best_lat = ref (eval_at t current counts.(current)) in
  for j = 0 to num_links t - 1 do
    if j <> current then begin
      let lat = eval_at t j (counts.(j) + 1) in
      if lat < !best_lat -. 1e-12 then begin
        best := j;
        best_lat := lat
      end
    end
  done;
  (!best, !best_lat)

let is_equilibrium ?(eps = Sgr_numerics.Tolerance.check_eps) t state =
  let counts = loads t state in
  let ok = ref true in
  Array.iter
    (fun link ->
      let current = eval_at t link counts.(link) in
      let _, best = best_move t counts link in
      if current > best +. eps then ok := false)
    state;
  !ok

let dynamics ?(max_steps = 1_000_000) ~movable t state =
  let state = Array.copy state in
  let counts = loads t state in
  let steps = ref 0 in
  let improved = ref true in
  while !improved && !steps < max_steps do
    improved := false;
    for p = 0 to t.players - 1 do
      if movable.(p) then begin
        let here = state.(p) in
        let target, lat = best_move t counts here in
        if target <> here && lat < eval_at t here counts.(here) -. 1e-12 then begin
          counts.(here) <- counts.(here) - 1;
          counts.(target) <- counts.(target) + 1;
          state.(p) <- target;
          incr steps;
          improved := true
        end
      end
    done
  done;
  (state, !steps)

let best_response_dynamics ?max_steps t state =
  dynamics ?max_steps ~movable:(Array.make t.players true) t state

(* Greedy insertion: each player in turn takes the link with the lowest
   latency after joining. *)
let greedy_fill t ~state ~counts ~players =
  List.iter
    (fun p ->
      let best = ref 0 and best_lat = ref Float.infinity in
      for j = 0 to num_links t - 1 do
        let lat = eval_at t j (counts.(j) + 1) in
        if lat < !best_lat then begin
          best := j;
          best_lat := lat
        end
      done;
      state.(p) <- !best;
      counts.(!best) <- counts.(!best) + 1)
    players

let nash t =
  let state = Array.make t.players 0 in
  let counts = Array.make (num_links t) 0 in
  greedy_fill t ~state ~counts ~players:(List.init t.players (fun p -> p));
  fst (best_response_dynamics t state)

let optimum_loads t =
  let m = num_links t and n = t.players in
  (* dp.(i).(k): cheapest way to place k players on links 0..i-1. *)
  let dp = Array.make_matrix (m + 1) (n + 1) Float.infinity in
  let choice = Array.make_matrix (m + 1) (n + 1) 0 in
  dp.(0).(0) <- 0.0;
  for i = 1 to m do
    for k = 0 to n do
      for c = 0 to k do
        if dp.(i - 1).(k - c) < Float.infinity then begin
          let cost =
            dp.(i - 1).(k - c) +. if c = 0 then 0.0 else float_of_int c *. eval_at t (i - 1) c
          in
          if cost < dp.(i).(k) then begin
            dp.(i).(k) <- cost;
            choice.(i).(k) <- c
          end
        end
      done
    done
  done;
  let counts = Array.make m 0 in
  let k = ref n in
  for i = m downto 1 do
    counts.(i - 1) <- choice.(i).(!k);
    k := !k - choice.(i).(!k)
  done;
  counts

let optimum_cost t =
  let counts = optimum_loads t in
  let acc = ref 0.0 in
  Array.iteri (fun i k -> if k > 0 then acc := !acc +. (float_of_int k *. eval_at t i k)) counts;
  !acc

let stackelberg_llf t ~controlled =
  if controlled < 0 || controlled > t.players then
    invalid_arg "Congestion.stackelberg_llf: controlled out of range";
  let opt = optimum_loads t in
  (* Pin the controlled players on the optimal links, slowest first. *)
  let order = Array.init (num_links t) (fun i -> i) in
  let latency_at_opt i = if opt.(i) = 0 then Float.neg_infinity else eval_at t i opt.(i) in
  Array.sort (fun a b -> compare (latency_at_opt b, a) (latency_at_opt a, b)) order;
  let state = Array.make t.players 0 in
  let counts = Array.make (num_links t) 0 in
  let movable = Array.make t.players true in
  let next_player = ref 0 in
  Array.iter
    (fun i ->
      let want = opt.(i) in
      let take = min want (controlled - !next_player) in
      for _ = 1 to take do
        state.(!next_player) <- i;
        counts.(i) <- counts.(i) + 1;
        movable.(!next_player) <- false;
        incr next_player
      done)
    order;
  (* Any leftover budget (optimum smaller than the pinned count cannot
     happen: Σ opt = players >= controlled) — fill the free players
     greedily, then settle them. *)
  greedy_fill t ~state ~counts
    ~players:(List.init (t.players - !next_player) (fun k -> !next_player + k));
  fst (dynamics ~movable t state)

let price_of_anarchy t =
  let c_opt = optimum_cost t in
  if c_opt <= 0.0 then 1.0 else social_cost t (nash t) /. c_opt
