(** Atomic splittable routing on parallel links.

    The paper's model has an *infinite* population of users, each with
    infinitesimal flow; the Stackelberg literature it builds on (Korilis–
    Lazar–Orda [20, 21]) starts from finitely many players, each routing a
    non-negligible demand it may split across links. This module implements
    that finite game as a substrate:

    - a player's best response, given the others' link loads [o], is the
      minimizer of [Σᵢ xᵢ·ℓᵢ(oᵢ + xᵢ)] — computed exactly by reusing the
      water-filling optimum of the [o]-shifted instance;
    - equilibria are found by round-robin best-response dynamics, which
      converge for the convex latency classes used here;
    - as the number of players grows (fixed total demand split evenly),
      the atomic equilibrium converges to the paper's Wardrop equilibrium
      — the classical justification for the infinite-user model, checked
      in the tests and in experiment E19.

    Latencies must be convex and strictly increasing (or constant); this
    makes each best response a convex program. *)

type t = private {
  latencies : Sgr_latency.Latency.t array;
  demands : float array;  (** One demand per player, all [>= 0]. *)
}

type profile = float array array
(** [profile.(k).(i)] — player [k]'s flow on link [i]. *)

val make : Sgr_latency.Latency.t array -> demands:float array -> t
(** @raise Invalid_argument on an empty system or a negative demand. *)

val split_evenly : Sgr_latency.Latency.t array -> total:float -> players:int -> t
(** Total demand divided equally among [players] identical players. *)

val total_load : t -> profile -> float array
(** Per-link load summed over players. *)

val social_cost : t -> profile -> float
(** [Σᵢ Xᵢ·ℓᵢ(Xᵢ)] at the profile's total load. *)

val player_cost : t -> profile -> int -> float
(** [Σᵢ xᵢ·ℓᵢ(Xᵢ)] — what player [k]'s flow experiences. *)

val best_response : t -> profile -> player:int -> float array
(** Player [k]'s exact best response to the others' current loads. *)

val equilibrium : ?tol:float -> ?max_rounds:int -> t -> profile * int
(** Round-robin best-response dynamics from the empty profile until no
    player moves more than [tol] (default [1e-9]) in max-norm, or
    [max_rounds] (default [10_000]) sweeps. Returns the profile and the
    number of sweeps used. *)

val is_equilibrium : ?eps:float -> t -> profile -> bool
(** Every player's strategy is within [eps] (default
    {!Sgr_numerics.Tolerance.check_eps}) of the cost of its exact best
    response. *)
