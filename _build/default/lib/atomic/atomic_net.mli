(** Atomic splittable routing on networks.

    The network analogue of {!Atomic_links}: finitely many players, each
    owning one commodity's demand, split their flow over paths. A player's
    best response to the others' edge loads [o] minimizes
    [Σ_e x_e·ℓ_e(o_e + x_e)] — the *system optimum* of the [o]-shifted
    network, solved by path equilibration on marginal costs. Round-robin
    best responses converge for the convex latency classes used here.

    Includes the atomic version of the Braess story: with few players the
    shortcut is used less aggressively than in the Wardrop limit, and the
    equilibrium cost interpolates between [C(O)] (one player) and [C(N)]
    (many players). *)

type t = private {
  network : Sgr_network.Network.t;
      (** One commodity per player; the commodity's demand is the player's. *)
}

type profile = float array array
(** [profile.(k)] — player [k]'s edge flow. *)

val make : Sgr_network.Network.t -> t
(** Each commodity of the network becomes one atomic player.
    @raise Invalid_argument if the network has no commodities. *)

val replicate : Sgr_network.Network.t -> players:int -> t
(** Single-commodity convenience: split the (single) commodity's demand
    evenly among [players] identical players.
    @raise Invalid_argument unless the network has exactly one commodity
    and [players >= 1]. *)

val total_load : t -> profile -> float array
val social_cost : t -> profile -> float

val player_cost : t -> profile -> int -> float
(** [Σ_e x_e·ℓ_e(X_e)] for player [k]'s own edge flow [x]. *)

val best_response : ?tol:float -> t -> profile -> player:int -> float array
(** Exact best response (system optimum of the shifted network). *)

val equilibrium : ?tol:float -> ?max_rounds:int -> t -> profile * int
(** Round-robin best responses from the empty profile; stops when no
    player moves more than [tol] (default [1e-8]) in max-norm. *)

val is_equilibrium : ?eps:float -> t -> profile -> bool
(** Every player is within [eps] (default [1e-5]) of its best-response
    cost. *)
