module Net = Sgr_network.Network
module Eq = Sgr_network.Equilibrate
module Obj = Sgr_network.Objective
module L = Sgr_latency.Latency
module G = Sgr_graph
module Vec = Sgr_numerics.Vec
module Tol = Sgr_numerics.Tolerance

type t = { network : Net.t }
type profile = float array array

let make network =
  if Array.length network.Net.commodities = 0 then invalid_arg "Atomic_net.make: no commodities";
  { network }

let replicate network ~players =
  if players < 1 then invalid_arg "Atomic_net.replicate: need at least one player";
  match network.Net.commodities with
  | [| c |] ->
      let share = c.Net.demand /. float_of_int players in
      make (Net.with_commodities network (Array.make players { c with Net.demand = share }))
  | _ -> invalid_arg "Atomic_net.replicate: network must have exactly one commodity"

let num_edges t = G.Digraph.num_edges t.network.Net.graph
let num_players t = Array.length t.network.Net.commodities

let total_load t profile =
  let load = Array.make (num_edges t) 0.0 in
  Array.iter (fun x -> Vec.axpy 1.0 x load) profile;
  load

let social_cost t profile = Net.cost t.network (total_load t profile)

let player_cost t profile k =
  let load = total_load t profile in
  let acc = ref 0.0 in
  Array.iteri
    (fun e load_e -> acc := !acc +. (profile.(k).(e) *. L.eval t.network.Net.latencies.(e) load_e))
    load;
  !acc

(* Best response = system optimum of the others-shifted network,
   restricted to player k's own commodity. *)
let best_response ?tol t profile ~player =
  let others = Array.make (num_edges t) 0.0 in
  Array.iteri (fun k x -> if k <> player then Vec.axpy 1.0 x others) profile;
  for e = 0 to num_edges t - 1 do
    others.(e) <- Tol.clamp_nonneg others.(e)
  done;
  let shifted = Net.shift t.network others in
  let solo = Net.with_commodities shifted [| t.network.Net.commodities.(player) |] in
  (Eq.solve ?tol Obj.System_optimum solo).Eq.edge_flow

let equilibrium ?(tol = 1e-8) ?(max_rounds = 2_000) t =
  let m = num_edges t and n = num_players t in
  let profile = Array.init n (fun _ -> Array.make m 0.0) in
  let rounds = ref 0 in
  let moved = ref Float.infinity in
  while !moved > tol && !rounds < max_rounds do
    incr rounds;
    moved := 0.0;
    for k = 0 to n - 1 do
      let br = best_response ~tol:(tol /. 10.0) t profile ~player:k in
      moved := Float.max !moved (Vec.linf_dist br profile.(k));
      profile.(k) <- br
    done
  done;
  (profile, !rounds)

let is_equilibrium ?(eps = 1e-5) t profile =
  let n = num_players t in
  let ok = ref true in
  for k = 0 to n - 1 do
    let current = player_cost t profile k in
    let br = best_response t profile ~player:k in
    let trial = Array.map Array.copy profile in
    trial.(k) <- br;
    let best = player_cost t trial k in
    if current > best +. (eps *. Float.max 1.0 (Float.abs best)) then ok := false
  done;
  !ok
