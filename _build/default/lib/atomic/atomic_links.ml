module L = Sgr_latency.Latency
module Links = Sgr_links.Links
module Vec = Sgr_numerics.Vec
module Tol = Sgr_numerics.Tolerance

type t = { latencies : L.t array; demands : float array }
type profile = float array array

let make latencies ~demands =
  if Array.length latencies = 0 then invalid_arg "Atomic_links.make: no links";
  if Array.length demands = 0 then invalid_arg "Atomic_links.make: no players";
  if Array.exists (fun d -> d < 0.0) demands then
    invalid_arg "Atomic_links.make: negative demand";
  { latencies; demands }

let split_evenly latencies ~total ~players =
  if players <= 0 then invalid_arg "Atomic_links.split_evenly: need at least one player";
  if total < 0.0 then invalid_arg "Atomic_links.split_evenly: negative total";
  make latencies ~demands:(Array.make players (total /. float_of_int players))

let num_links t = Array.length t.latencies
let num_players t = Array.length t.demands

let total_load t profile =
  let load = Array.make (num_links t) 0.0 in
  Array.iter (fun x -> Vec.axpy 1.0 x load) profile;
  ignore t;
  load

let social_cost t profile =
  let load = total_load t profile in
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. L.cost t.latencies.(i) x) load;
  !acc

let player_cost t profile k =
  let load = total_load t profile in
  let acc = ref 0.0 in
  Array.iteri
    (fun i load_i -> acc := !acc +. (profile.(k).(i) *. L.eval t.latencies.(i) load_i))
    load;
  !acc

(* The best response to others' loads [o] minimizes Σ x_i·ℓ_i(o_i + x_i):
   exactly the system optimum of the o-shifted instance, so the
   water-filling optimum solver applies verbatim. *)
let best_response t profile ~player =
  let others = Array.make (num_links t) 0.0 in
  Array.iteri (fun k x -> if k <> player then Vec.axpy 1.0 x others) profile;
  let shifted = Array.mapi (fun i lat -> L.shift (Tol.clamp_nonneg others.(i)) lat) t.latencies in
  (Links.opt (Links.make shifted ~demand:t.demands.(player))).assignment

let equilibrium ?(tol = 1e-9) ?(max_rounds = 10_000) t =
  let m = num_links t and n = num_players t in
  let profile = Array.init n (fun _ -> Array.make m 0.0) in
  let rounds = ref 0 in
  let moved = ref Float.infinity in
  while !moved > tol && !rounds < max_rounds do
    incr rounds;
    moved := 0.0;
    for k = 0 to n - 1 do
      let br = best_response t profile ~player:k in
      moved := Float.max !moved (Vec.linf_dist br profile.(k));
      profile.(k) <- br
    done
  done;
  (profile, !rounds)

let is_equilibrium ?(eps = Tol.check_eps) t profile =
  let n = num_players t in
  let ok = ref true in
  for k = 0 to n - 1 do
    let current = player_cost t profile k in
    let br = best_response t profile ~player:k in
    let trial = Array.map Array.copy profile in
    trial.(k) <- br;
    let best = player_cost t trial k in
    if current > best +. (eps *. Float.max 1.0 (Float.abs best)) then ok := false
  done;
  !ok
