lib/atomic/atomic_net.mli: Sgr_network
