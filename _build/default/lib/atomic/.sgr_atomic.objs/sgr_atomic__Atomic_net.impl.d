lib/atomic/atomic_net.ml: Array Float Sgr_graph Sgr_latency Sgr_network Sgr_numerics
