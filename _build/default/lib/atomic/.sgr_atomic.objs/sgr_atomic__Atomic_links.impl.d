lib/atomic/atomic_links.ml: Array Float Sgr_latency Sgr_links Sgr_numerics
