lib/atomic/atomic_links.mli: Sgr_latency
