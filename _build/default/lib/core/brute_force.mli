(** Exhaustive grid search over Leader strategies on parallel links.

    Exponential in the number of links — usable only on tiny instances.
    Exists to *cross-validate* the paper's polynomial algorithms:
    [Linear_exact] must match it on hard instances (Theorem 2.4), and no
    grid point may beat [C(O)] when [α < β_M] (Corollary 2.2's converse). *)

type result = {
  strategy : float array;  (** Best grid strategy found. *)
  induced_cost : float;  (** Its [C(S+T)]. *)
  evaluated : int;  (** Number of grid points tried. *)
}

val optimal_strategy :
  ?resolution:int -> Sgr_links.Links.t -> alpha:float -> result
(** [optimal_strategy t ~alpha] enumerates all decompositions of [α·r]
    into [resolution] (default 40) equal chunks over the links and
    returns the cheapest.
    @raise Invalid_argument when [alpha ∉ [0,1]] or the instance has more
    than 6 links (the grid would explode). *)

val can_reach_optimum :
  ?resolution:int -> ?eps:float -> Sgr_links.Links.t -> alpha:float -> bool
(** Whether some grid strategy induces cost within [eps] of [C(O)]. *)
