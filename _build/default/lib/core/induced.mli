(** Induced equilibria on networks (Section 4, multicommodity model).

    Once a Leader fixes edge flows [s], every Follower sees the
    a-posteriori latency [ℓ̃_e(x) = ℓ_e(s_e + x)]; the Followers'
    equilibrium [T] is the Wardrop equilibrium of the remaining demands on
    the shifted network, and the outcome of the game is the flow [S + T]
    priced by the *original* latencies. *)

type outcome = {
  follower_edge_flow : float array;  (** The induced equilibrium [T]. *)
  combined_edge_flow : float array;  (** [S + T]. *)
  cost : float;  (** [C(S+T)] under the original latencies. *)
  wardrop_gap : float;
      (** Residual equilibrium gap of the Follower solve (should be ~0). *)
}

val equilibrium :
  ?tol:float ->
  Sgr_network.Network.t ->
  leader_edge_flow:float array ->
  follower_demands:float array ->
  outcome
(** [equilibrium net ~leader_edge_flow ~follower_demands] solves the
    Followers' game. [follower_demands.(i)] is commodity [i]'s uncontrolled
    demand; it need not equal the commodity's original demand minus the
    leader's share — MOP computes it per commodity.
    @raise Invalid_argument on size mismatches or negative values. *)

val cost_of_strategy :
  ?tol:float ->
  Sgr_network.Network.t ->
  leader_edge_flow:float array ->
  follower_demands:float array ->
  float
(** Shorthand for [(equilibrium ...).cost]. *)
