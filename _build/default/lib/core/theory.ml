module Links = Sgr_links.Links
module Vec = Sgr_numerics.Vec
module Tol = Sgr_numerics.Tolerance

type load_class = Under_loaded | Over_loaded | Optimum_loaded

let classify ?(eps = Tol.check_eps) ~nash ~opt i =
  if nash.(i) < opt.(i) -. eps then Under_loaded
  else if nash.(i) > opt.(i) +. eps then Over_loaded
  else Optimum_loaded

let frozen_links ?(eps = Tol.check_eps) ~nash strategy =
  Array.mapi (fun i s -> s >= nash.(i) -. eps) strategy

let is_useless ?(eps = Tol.check_eps) ~nash strategy =
  Array.length strategy = Array.length nash
  && Array.for_all2 (fun s n -> s <= n +. eps) strategy nash

let useless_strategy_fixed_point ?(eps = Tol.check_eps) instance ~strategy =
  let nash = (Links.nash instance).assignment in
  if not (is_useless ~eps ~nash strategy) then
    invalid_arg "Theory.useless_strategy_fixed_point: strategy is not useless";
  let induced = (Links.induced instance ~strategy).assignment in
  let combined = Vec.add strategy induced in
  Vec.linf_dist combined nash <= eps *. Float.max 1.0 instance.Links.demand

let frozen_receive_nothing ?(eps = Tol.check_eps) instance ~strategy =
  let nash = (Links.nash instance).assignment in
  let frozen = frozen_links ~eps:(eps /. 10.0) ~nash strategy in
  let induced = (Links.induced instance ~strategy).assignment in
  let ok = ref true in
  Array.iteri
    (fun i f ->
      (* Links the strategy does not load are trivially "frozen" only when
         n_i = 0; the theorems concern links with s_i >= n_i. *)
      if f && induced.(i) > eps *. Float.max 1.0 instance.Links.demand then ok := false)
    frozen;
  !ok

let nash_monotone ?(eps = Tol.check_eps) instance ~r' =
  if r' > instance.Links.demand then invalid_arg "Theory.nash_monotone: r' exceeds r";
  let n = (Links.nash instance).assignment in
  let n' = (Links.nash (Links.with_demand instance r')).assignment in
  let slack = eps *. Float.max 1.0 instance.Links.demand in
  Array.for_all2 (fun a b -> a <= b +. slack) n' n

type swap_witness = {
  cost_before : float;
  cost_after : float;
  epsilon : float;
  loads_after : float * float;
}

let swap ~slope ~b1 ~b2 ~s1 ~s2 ~t2 =
  if slope <= 0.0 then invalid_arg "Theory.swap: slope must be positive";
  if b1 > b2 then invalid_arg "Theory.swap: requires b1 <= b2";
  if s1 < 0.0 || s2 < 0.0 || t2 <= 0.0 then invalid_arg "Theory.swap: bad loads";
  let l1 x = (slope *. x) +. b1 and l2 x = (slope *. x) +. b2 in
  let u = s2 +. t2 in
  if l1 s1 < l2 u -. 1e-12 then
    invalid_arg "Theory.swap: requires ℓ1(s1) >= ℓ2(s2+t2)";
  let cost_before = (s1 *. l1 s1) +. (u *. l2 u) in
  (* Swap: M1 gets u, M2 gets s1; slide ε back so that M2 drops to the old
     ℓ1(s1) and M1 rises to the old ℓ2(u) (parallel plots). *)
  let epsilon = (b2 -. b1) /. slope in
  let epsilon = Float.min epsilon s1 in
  let load1 = u +. epsilon and load2 = s1 -. epsilon in
  let cost_after = (load1 *. l1 load1) +. (load2 *. l2 load2) in
  { cost_before; cost_after; epsilon; loads_after = (load1, load2) }

let sharma_williamson_threshold ?(eps = Tol.check_eps) instance =
  let nash = (Links.nash instance).assignment in
  let opt = (Links.opt instance).assignment in
  let best = ref Float.infinity in
  Array.iteri (fun i n -> if n < opt.(i) -. eps then best := Float.min !best n) nash;
  !best
