(** Stackelberg heuristics on networks.

    After the paper's publication, SCALE and LLF-style strategies were
    analyzed on general networks (Karakostas–Kolliopoulos; Swamy; Bonifaci–
    Harks–Schäfer — see Section 1.1(ii)). This module implements both so
    the library can compare MOP's exact β-threshold behaviour against the
    budget-parameterized heuristics the literature studies:

    - [SCALE]: the Leader routes [α·O] — the optimum scaled down.
    - [LLF]: per commodity, saturate optimal *path* flows to their optimal
      value in decreasing order of path latency at the optimum, until the
      budget [α·rᵢ] is exhausted (the natural path analogue of
      Roughgarden's Largest Latency First). *)

type outcome = {
  leader_edge_flow : float array;
  induced : Induced.outcome;  (** The Followers' reaction and [C(S+T)]. *)
  ratio_to_opt : float;  (** [C(S+T)/C(O)] — the a-posteriori anarchy cost. *)
}

val scale : ?tol:float -> Sgr_network.Network.t -> alpha:float -> outcome
(** Weak strategy: every commodity gives up the same fraction [α].
    @raise Invalid_argument unless [0 <= alpha <= 1]. *)

val llf : ?tol:float -> Sgr_network.Network.t -> alpha:float -> outcome
(** Path-based LLF with per-commodity budget [α·rᵢ].
    @raise Invalid_argument unless [0 <= alpha <= 1]. *)

val aloof : ?tol:float -> Sgr_network.Network.t -> outcome
(** The empty strategy: Followers produce the plain Wardrop flow. *)
