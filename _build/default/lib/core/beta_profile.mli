(** The price of optimum as a function of the total demand.

    Each scheduling instance [(M, r)] has its own [β_M]; sweeping [r]
    shows how much control a Leader needs across load regimes — the
    quantity behind the paper's remark that M/M/1 systems with a few
    strong links or many identical links have small [β]. On Pigou's
    example the curve has the closed form [max(0, 1 - 1/(2r))], used to
    validate the machinery. *)

type point = {
  demand : float;
  beta : float;  (** [β_M] of [(M, demand)]. *)
  poa : float;  (** Price of anarchy at this demand. *)
}

val run :
  ?samples:int -> Sgr_links.Links.t -> r_lo:float -> r_hi:float -> point list
(** [run t ~r_lo ~r_hi] evaluates [samples] (default 21) evenly spaced
    demands in [[r_lo, r_hi]]. [r_lo >= 0] and [r_lo <= r_hi] required.
    Demands an M/M/1 system cannot carry raise [Failure] (from the
    solver), as they have no equilibrium. *)

val pigou_closed_form : float -> float
(** [β_M] of Pigou's example at demand [r]: [max 0 (1 - 1/(2r))]. *)
