module Links = Sgr_links.Links

type point = { demand : float; beta : float; poa : float }

let run ?(samples = 21) instance ~r_lo ~r_hi =
  if not (0.0 <= r_lo && r_lo <= r_hi) then invalid_arg "Beta_profile.run: bad demand range";
  if samples < 2 then invalid_arg "Beta_profile.run: need at least two samples";
  List.init samples (fun k ->
      let demand =
        r_lo +. ((r_hi -. r_lo) *. float_of_int k /. float_of_int (samples - 1))
      in
      if demand <= 0.0 then { demand; beta = 0.0; poa = 1.0 }
      else begin
        let t = Links.with_demand instance demand in
        let r = Optop.run t in
        { demand; beta = r.Optop.beta; poa = Links.price_of_anarchy t }
      end)

let pigou_closed_form r = if r <= 0.5 then 0.0 else 1.0 -. (1.0 /. (2.0 *. r))
