(** Algorithm [OpTop] (paper, Section 2 & 7.4; Corollary 2.2).

    Computes, on an s–t parallel-links instance [(M, r)], the *price of
    optimum* [β_M] — the minimum portion of the total flow a Stackelberg
    Leader must control to induce the optimum cost [C(O)] — together with
    the Leader's optimal strategy.

    The algorithm: compute the optimum [O] once; repeatedly compute the
    Nash assignment of the remaining free flow on the remaining links,
    freeze every *under-loaded* link (Definition 4.3: [nᵢ < oᵢ]) at its
    optimal load [oᵢ], discard it, and recurse; stop when no link is
    under-loaded. The discarded optimal loads are exactly the Leader's
    strategy and their total is [β_M·r]. Correctness rests on Theorems 7.2
    and 7.4 / Lemma 7.5. *)

type round = {
  active : int array;  (** Original link indices alive in this round. *)
  demand : float;  (** Free flow assigned in this round. *)
  nash : float array;  (** Nash on the subsystem (aligned with [active]). *)
  optimum : float array;  (** Optimum restriction (aligned with [active]). *)
  frozen : int array;  (** Original indices frozen (under-loaded) this round. *)
}

type result = {
  beta : float;  (** The price of optimum [β_M ∈ [0, 1]]. *)
  strategy : float array;  (** Leader flow per link; sums to [β_M·r]. *)
  rounds : round list;  (** Per-round trace, first round first. *)
  optimum : float array;  (** The global optimum assignment [O]. *)
  optimum_cost : float;  (** [C(O)]. *)
  nash_cost : float;  (** [C(N)] of the unaided equilibrium. *)
  induced_cost : float;
      (** [C(S + T)] of the returned strategy — equals [C(O)] up to solver
          tolerance (checked by the test suite). *)
}

val run : ?eps:float -> Sgr_links.Links.t -> result
(** [eps] is the relative tolerance for the under-loaded test
    [nᵢ < oᵢ] (default [1e-8]). *)

val beta : ?eps:float -> Sgr_links.Links.t -> float
(** Just the price of optimum. *)
