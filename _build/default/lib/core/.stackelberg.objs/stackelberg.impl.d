lib/core/stackelberg.ml: Alpha_sweep Beta_profile Bounds Brute_force Induced Linear_exact Mop Net_strategies Optop Partition_heuristic Strategies Theory Tolls
