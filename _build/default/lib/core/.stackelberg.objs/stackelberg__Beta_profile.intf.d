lib/core/beta_profile.mli: Sgr_links
