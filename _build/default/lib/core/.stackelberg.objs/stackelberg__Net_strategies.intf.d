lib/core/net_strategies.mli: Induced Sgr_network
