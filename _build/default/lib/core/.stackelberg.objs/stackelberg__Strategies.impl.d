lib/core/strategies.ml: Array Float Sgr_latency Sgr_links
