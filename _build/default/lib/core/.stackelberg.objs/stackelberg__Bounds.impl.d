lib/core/bounds.ml: Float Sgr_latency Sgr_numerics
