lib/core/beta_profile.ml: List Optop Sgr_links
