lib/core/induced.ml: Array Sgr_graph Sgr_network Sgr_numerics
