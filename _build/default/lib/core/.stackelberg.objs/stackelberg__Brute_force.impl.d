lib/core/brute_force.ml: Array Float Sgr_links Sgr_numerics
