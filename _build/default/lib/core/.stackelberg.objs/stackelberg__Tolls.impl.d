lib/core/tolls.ml: Array Format Sgr_latency Sgr_links Sgr_network
