lib/core/tolls.mli: Sgr_links Sgr_network
