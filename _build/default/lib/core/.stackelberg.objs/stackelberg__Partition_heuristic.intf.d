lib/core/partition_heuristic.mli: Sgr_links
