lib/core/theory.ml: Array Float Sgr_links Sgr_numerics
