lib/core/partition_heuristic.ml: Array Float List Sgr_latency Sgr_links Sgr_numerics
