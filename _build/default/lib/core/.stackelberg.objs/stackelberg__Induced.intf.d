lib/core/induced.mli: Sgr_network
