lib/core/brute_force.mli: Sgr_links
