lib/core/strategies.mli: Sgr_links
