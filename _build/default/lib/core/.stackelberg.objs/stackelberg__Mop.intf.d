lib/core/mop.mli: Induced Sgr_graph Sgr_network
