lib/core/optop.mli: Sgr_links
