lib/core/linear_exact.ml: Array Float List Option Sgr_latency Sgr_links Sgr_numerics
