lib/core/mop.ml: Array Float Induced List Sgr_graph Sgr_network Sgr_numerics
