lib/core/theory.mli: Sgr_links
