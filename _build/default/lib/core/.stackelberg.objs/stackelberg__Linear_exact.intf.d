lib/core/linear_exact.mli: Sgr_links
