lib/core/alpha_sweep.mli: Sgr_links
