lib/core/optop.ml: Array Float List Sgr_links Sgr_numerics
