lib/core/bounds.mli: Sgr_latency
