lib/core/alpha_sweep.ml: Brute_force Float Linear_exact List Optop Sgr_links Strategies
