module Links = Sgr_links.Links
module Net = Sgr_network.Network
module Eq = Sgr_network.Equilibrate
module Obj = Sgr_network.Objective
module L = Sgr_latency.Latency

let add_toll lat toll =
  if toll <= 0.0 then lat
  else
    (* ℓ(x) + τ keeps derivative and shifts the primitive linearly; the
       sum is again a valid latency value. *)
    L.custom
      ~label:(Format.asprintf "%a + toll %.4g" L.pp lat toll)
      ~eval:(fun x -> L.eval lat x +. toll)
      ~deriv:(L.deriv lat)
      ~primitive:(fun x -> L.primitive lat x +. (toll *. x))
      ()

(* Adding a constant toll to an affine/constant/polynomial latency stays in
   closed form; prefer that so solvers keep their fast inverses. *)
let add_toll_exact lat toll =
  if toll <= 0.0 then lat
  else
    match L.kind lat with
    | L.Constant c -> L.constant (c +. toll)
    | L.Affine { slope; intercept } -> L.affine ~slope ~intercept:(intercept +. toll)
    | L.Polynomial coeffs ->
        let coeffs = Array.copy coeffs in
        if Array.length coeffs = 0 then L.constant toll
        else begin
          coeffs.(0) <- coeffs.(0) +. toll;
          L.polynomial coeffs
        end
    | L.Mm1 _ | L.Bpr _ | L.Shifted _ | L.Custom _ -> add_toll lat toll

let links_tolls instance =
  let opt = (Links.opt instance).assignment in
  Array.mapi (fun i o -> o *. L.deriv instance.Links.latencies.(i) o) opt

let tolled_links instance =
  let tolls = links_tolls instance in
  let latencies = Array.mapi (fun i lat -> add_toll_exact lat tolls.(i)) instance.Links.latencies in
  Links.make latencies ~demand:instance.Links.demand

let links_outcome instance =
  let tolled = tolled_links instance in
  let eq = (Links.nash tolled).assignment in
  (eq, Links.cost instance eq)

let network_tolls ?tol net =
  let opt = (Eq.solve ?tol Obj.System_optimum net).Eq.edge_flow in
  Array.mapi (fun e o -> o *. L.deriv net.Net.latencies.(e) o) opt

let tolled_network ?tol net =
  let tolls = network_tolls ?tol net in
  let latencies = Array.mapi (fun e lat -> add_toll_exact lat tolls.(e)) net.Net.latencies in
  Net.make net.Net.graph ~latencies ~commodities:net.Net.commodities

let network_outcome ?tol net =
  let tolled = tolled_network ?tol net in
  let eq = (Eq.solve ?tol Obj.Wardrop tolled).Eq.edge_flow in
  (eq, Net.cost net eq)
