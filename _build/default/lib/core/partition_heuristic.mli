(** A Theorem-2.4-shaped heuristic for hard instances with {e arbitrary}
    latencies.

    Theorem 2.4's exactness rests on Lemma 6.1, whose swap argument needs
    common-slope linear latencies. The same *search* still makes sense for
    any instance: order the links (by latency at zero flow — the natural
    generalization of the intercept order), try every prefix/suffix split
    [(M>0, M=0)], let the suffix be frozen at the optimum of [αr - ε]
    while the prefix absorbs the Followers plus [ε], and minimize over the
    one-dimensional [ε] by golden search.

    The result is a feasible Leader strategy whose induced cost:
    - equals the exact optimum when the instance {e is} in Theorem 2.4's
      class (checked against {!Linear_exact} in the tests);
    - is an upper bound elsewhere — empirically much tighter than LLF or
      SCALE on hard instances (experiment E18). It is still only a
      heuristic: unimodality of the inner search and optimality of the
      prefix ordering are not guaranteed outside the linear class. *)

type result = {
  strategy : float array;  (** Feasible Leader assignment (original order). *)
  induced_cost : float;  (** Verified [C(S+T)] of the strategy. *)
  i0 : int;  (** Chosen split: prefix size in the zero-latency order. *)
  epsilon : float;  (** Leader flow merged into the prefix. *)
}

val solve : ?grid:int -> Sgr_links.Links.t -> alpha:float -> result
(** [solve t ~alpha] searches all splits; [grid] (default 64) seeds the
    inner ε-search. Always returns a feasible strategy (worst case: the
    useless proportional-to-Nash strategy, costing [C(N)]).
    @raise Invalid_argument when [alpha ∉ [0,1]]. *)
