(** The paper's algorithms and their companions — the library's main
    entry point.

    Reproduction of Kaporis & Spirakis, "The price of optimum in
    Stackelberg games on arbitrary single commodity networks and latency
    functions" (SPAA 2006 / TCS 410:745–755, 2009). A Leader controlling a
    portion of the traffic can pull the selfish (Wardrop) equilibrium
    toward the system optimum; these modules compute how much control is
    needed and what to do with it.

    - {!Optop} — the minimum Leader share [β_M] and optimal strategy on
      parallel links (Corollary 2.2).
    - {!Mop} — the same on arbitrary k-commodity networks (Theorem 2.1 /
      Corollary 2.3), with strong and weak Leader variants.
    - {!Linear_exact} — exact optimal strategies on hard instances
      ([α < β]) with common-slope linear latencies (Theorem 2.4).
    - {!Partition_heuristic} — Theorem 2.4's search as a heuristic for
      arbitrary latencies.
    - {!Strategies} / {!Net_strategies} — the LLF / SCALE / Aloof
      baselines on links and networks.
    - {!Induced} — Followers' equilibria under a fixed Leader flow on
      networks.
    - {!Alpha_sweep} — the a-posteriori anarchy cost [(M,r,α)] as a
      function of the Leader's share (Expression (2)).
    - {!Theory} — executable forms of the structure results (Theorems
      7.2/7.4, Lemma 6.1 and 7.5, Proposition 7.1, the Sharma–Williamson
      threshold).
    - {!Bounds} — the quoted performance bounds and the numerically
      evaluated Pigou bound (anarchy value) of a latency.
    - {!Tolls} — marginal-cost pricing, the first-best benchmark.
    - {!Brute_force} — grid-search cross-validation on tiny instances.

    The substrates live in sibling libraries: [Sgr_links] (parallel-link
    water-filling), [Sgr_network] (network equilibrium solvers),
    [Sgr_latency], [Sgr_graph], [Sgr_atomic] (finitely many players),
    [Sgr_workloads] (instances) and [Sgr_io] (file formats). *)

module Optop = Optop
module Mop = Mop
module Linear_exact = Linear_exact
module Partition_heuristic = Partition_heuristic
module Strategies = Strategies
module Net_strategies = Net_strategies
module Induced = Induced
module Alpha_sweep = Alpha_sweep
module Theory = Theory
module Bounds = Bounds
module Tolls = Tolls
module Beta_profile = Beta_profile
module Brute_force = Brute_force
