let one_over_alpha alpha = if alpha <= 0.0 then Float.infinity else 1.0 /. alpha
let linear_llf alpha = 4.0 /. (3.0 +. alpha)
let poa_linear = 4.0 /. 3.0

let poa_polynomial d =
  if d < 1 then invalid_arg "Bounds.poa_polynomial: degree must be >= 1";
  let d = float_of_int d in
  1.0 /. (1.0 -. (d *. ((d +. 1.0) ** (-.(d +. 1.0) /. d))))

let pigou_bound ?(r_max = 10.0) ?(samples = 64) lat =
  let module L = Sgr_latency.Latency in
  if r_max <= 0.0 then invalid_arg "Bounds.pigou_bound: r_max must be positive";
  (* Ratio at a fixed r: the denominator x ↦ x·ℓ(x) + (r-x)·ℓ(r) is
     convex, so its minimum over [0, r] is found by golden section. *)
  let ratio_at r =
    let lr = L.eval lat r in
    let numerator = r *. lr in
    if numerator <= 0.0 then 1.0
    else begin
      let denom x = L.cost lat x +. ((r -. x) *. lr) in
      let _, dmin = Sgr_numerics.Minimize.golden ~f:denom ~lo:0.0 ~hi:r () in
      if dmin <= 0.0 then Float.infinity else numerator /. dmin
    end
  in
  (* The outer sup over r need not be unimodal: scan a grid, then refine
     around the best grid point. *)
  let best_r = ref (r_max /. float_of_int samples) in
  let best = ref (ratio_at !best_r) in
  for k = 1 to samples do
    let r = r_max *. float_of_int k /. float_of_int samples in
    let v = ratio_at r in
    if v > !best then begin
      best := v;
      best_r := r
    end
  done;
  let step = r_max /. float_of_int samples in
  let lo = Float.max 1e-9 (!best_r -. step) and hi = Float.min r_max (!best_r +. step) in
  let _, refined = Sgr_numerics.Minimize.golden ~f:(fun r -> -.ratio_at r) ~lo ~hi () in
  Float.max 1.0 (Float.max !best (-.refined))
