module Links = Sgr_links.Links
module L = Sgr_latency.Latency
module Tol = Sgr_numerics.Tolerance
module Minimize = Sgr_numerics.Minimize
module Vec = Sgr_numerics.Vec

type result = { strategy : float array; induced_cost : float; i0 : int; epsilon : float }

let solve ?(grid = 64) instance ~alpha =
  if not (0.0 <= alpha && alpha <= 1.0) then
    invalid_arg "Partition_heuristic.solve: alpha must be in [0, 1]";
  let m = Links.num_links instance in
  let r = instance.Links.demand in
  let budget = alpha *. r in
  (* Order by free-flow latency: the generalization of the intercept
     order Lemma 6.1 justifies in the linear case. *)
  let order = Array.init m (fun i -> i) in
  let zero_lat i = L.eval instance.Links.latencies.(i) 0.0 in
  Array.sort (fun i j -> compare (zero_lat i, i) (zero_lat j, j)) order;
  let sorted_lats = Array.map (fun i -> instance.Links.latencies.(i)) order in
  let tiny = 1e-10 *. Float.max 1.0 r in
  (* Build the candidate strategy for a split (i0, eps) and price it via
     the real induced game; None when the configuration is incoherent
     (an unloaded prefix link or Followers that would invade the suffix). *)
  let strategy_of_nash i0 eps (pn : Links.solution) =
    if not (Array.for_all (fun x -> x > tiny) pn.assignment) then None
    else begin
      let strategy = Array.make m 0.0 in
      let prefix_total = ((1.0 -. alpha) *. r) +. eps in
      Array.iteri
        (fun j x ->
          if prefix_total > 0.0 then strategy.(order.(j)) <- eps *. x /. prefix_total)
        pn.assignment;
      let feasible =
        if i0 = m then true
        else begin
          let suffix = Array.sub sorted_lats i0 (m - i0) in
          let suffix_inst = Links.make suffix ~demand:(Tol.clamp_nonneg (budget -. eps)) in
          match Links.opt suffix_inst with
          | exception Failure _ -> false
          | so ->
              Array.iteri (fun j x -> strategy.(order.(i0 + j)) <- x) so.assignment;
              let min_suffix_latency =
                Array.mapi (fun j x -> L.eval suffix.(j) x) so.assignment
                |> Array.fold_left Float.min Float.infinity
              in
              pn.level <= min_suffix_latency +. (Tol.check_eps *. Float.max 1.0 pn.level)
        end
      in
      if feasible then Some strategy else None
    end
  in
  let strategy_of i0 eps =
    let prefix = Array.sub sorted_lats 0 i0 in
    let prefix_inst = Links.make prefix ~demand:(((1.0 -. alpha) *. r) +. eps) in
    (* Bounded-capacity prefixes (e.g. M/M/1 subsystems) may be unable to
       absorb the Followers at all: that split is simply infeasible. *)
    match Links.nash prefix_inst with
    | exception Failure _ -> None
    | pn -> strategy_of_nash i0 eps pn
  in
  let cost_of i0 eps =
    match strategy_of i0 eps with
    | None -> Float.infinity
    | Some strategy -> Links.stackelberg_cost instance ~strategy
  in
  (* Baseline: the useless proportional strategy (cost C(N)). *)
  let nash = Links.nash instance in
  let baseline_strategy =
    if r > 0.0 then Vec.scale (budget /. r) nash.assignment else Array.make m 0.0
  in
  let best = ref (m, budget, Links.stackelberg_cost instance ~strategy:baseline_strategy) in
  let best_strategy = ref baseline_strategy in
  for i0 = 1 to m do
    (* Seed the inner search on a grid, then refine around the best seed
       with golden section (the cost is unimodal in the linear class;
       elsewhere the grid guards against local dips). *)
    let seeds = List.init (grid + 1) (fun k -> budget *. float_of_int k /. float_of_int grid) in
    let seed_best =
      List.fold_left
        (fun acc eps ->
          let c = cost_of i0 eps in
          match acc with Some (_, c') when c' <= c -> acc | _ -> Some (eps, c))
        None seeds
    in
    match seed_best with
    | None -> ()
    | Some (_, c) when c = Float.infinity -> ()
    | Some (seed, _) ->
        let step = if grid > 0 then budget /. float_of_int grid else 0.0 in
        let lo = Float.max 0.0 (seed -. step) and hi = Float.min budget (seed +. step) in
        let eps, cost =
          if hi -. lo <= 1e-14 then (seed, cost_of i0 seed)
          else Minimize.golden ~f:(cost_of i0) ~lo ~hi ()
        in
        let _, _, best_cost = !best in
        if cost < best_cost then begin
          match strategy_of i0 eps with
          | Some strategy ->
              best := (i0, eps, cost);
              best_strategy := strategy
          | None -> ()
        end
  done;
  let i0, epsilon, induced_cost = !best in
  { strategy = !best_strategy; induced_cost; i0; epsilon }
