(** Optimal Stackelberg strategies on hard instances [(M, r, α < β_M)]
    with common-slope linear latencies (Theorem 2.4, Section 6).

    Setting: [m] parallel links with [ℓᵢ(x) = a·x + bᵢ], [a > 0],
    [bᵢ >= 0]. Lemma 6.1 shows some optimal Leader strategy splits the
    links (sorted by intercept) into a prefix [M>0] that receives induced
    selfish flow and a suffix [M=0] that does not. Conditioned on the split
    position [i₀] and on the amount [ε] of Leader flow placed inside the
    prefix, the induced cost is

    [Nash-cost(M>0, (1-α)r + ε) + Opt-cost(M=0, αr - ε)],

    feasible when the prefix's common Nash latency does not exceed any
    suffix latency (otherwise Followers would invade the suffix) and every
    prefix link is loaded. The first summand increases and the second
    decreases in [ε], so the sum is minimized by a one-dimensional convex
    search; minimizing over the [m] split positions gives the optimum. *)

type candidate = {
  i0 : int;  (** Split position: prefix = sorted links [0..i0-1]. *)
  epsilon : float;  (** Leader flow merged into the prefix. *)
  cost : float;  (** Induced cost of this candidate. *)
}

type result = {
  strategy : float array;  (** Optimal Leader assignment, original indexing. *)
  induced_cost : float;  (** Its [C(S+T)], recomputed via the induced game. *)
  predicted_cost : float;  (** The partition formula's value (should agree). *)
  best : candidate;
  candidates : candidate list;  (** Best candidate per feasible split. *)
}

val solve : ?grid:int -> Sgr_links.Links.t -> alpha:float -> result
(** [solve t ~alpha] requires every latency affine with one common
    positive slope.
    @raise Invalid_argument otherwise, or when [alpha ∉ [0,1]].

    [grid] (default 64) is the number of seed points for the convex
    search in [ε] (each refined by golden section), guarding against
    flat/boundary degeneracies. *)

val is_common_slope : ?eps:float -> Sgr_links.Links.t -> bool
(** Whether the instance is in Theorem 2.4's class. *)
