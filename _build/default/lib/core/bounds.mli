(** Published performance bounds quoted by the paper (Section 1.1). *)

val one_over_alpha : float -> float
(** [1/α] — the a-posteriori anarchy-cost guarantee of LLF on parallel
    links with arbitrary latencies ([41, Th. 6.4.4]). [infinity] at 0. *)

val linear_llf : float -> float
(** [4/(3+α)] — LLF's guarantee on linear latencies ([41, Th. 6.4.5]). *)

val poa_linear : float
(** [4/3] — price of anarchy for linear latencies (Roughgarden–Tardos). *)

val poa_polynomial : int -> float
(** Price-of-anarchy bound for latencies that are polynomials of degree
    [<= d] with nonnegative coefficients:
    [(1 - d·(d+1)^(-(d+1)/d))^{-1}]. Equals [4/3] at [d = 1]. *)

val pigou_bound :
  ?r_max:float -> ?samples:int -> Sgr_latency.Latency.t -> float
(** The numerically evaluated Pigou bound of one latency function,

    [α(ℓ) = sup_{0 <= x <= r <= r_max} r·ℓ(r) / (x·ℓ(x) + (r-x)·ℓ(r))],

    Roughgarden's anarchy value: the price of anarchy of any instance
    whose latencies all have Pigou bound [<= α] is itself [<= α],
    regardless of topology ("the price of anarchy is independent of the
    network topology"). The inner minimization over [x] is convex and
    solved by golden section; the outer supremum over [r] is located on a
    [samples]-point grid (default 64) and refined. [r_max] defaults to
    [10.]. Evaluates to [4/3] for linear and to {!poa_polynomial}[ d] for
    [x^d] latencies (validated in the test suite). *)
