(** Executable counterparts of the paper's structural results (Sections 6
    and 7). Each function either performs the construction a proof uses or
    decides the predicate a theorem is about; the test suite and the
    experiment harness check the theorems' conclusions on random instances
    through these. *)

(** {1 Definitions 4.3 / 4.4} *)

type load_class = Under_loaded | Over_loaded | Optimum_loaded

val classify : ?eps:float -> nash:float array -> opt:float array -> int -> load_class
(** Classification of link [i] (Definition 4.3): under-loaded when
    [nᵢ < oᵢ], over-loaded when [nᵢ > oᵢ]. *)

val frozen_links : ?eps:float -> nash:float array -> float array -> bool array
(** [frozen_links ~nash strategy]: [frozen.(i)] iff [sᵢ >= nᵢ]
    (Definition 4.4). *)

(** {1 Theorem 7.2 — useless strategies} *)

val is_useless : ?eps:float -> nash:float array -> float array -> bool
(** [is_useless ~nash strategy]: the strategy has [sᵢ <= nᵢ] on every link
    (Definition 7.3 via Theorem 7.2) and so cannot move the equilibrium —
    [S + T = N]. *)

val useless_strategy_fixed_point :
  ?eps:float -> Sgr_links.Links.t -> strategy:float array -> bool
(** Checks Theorem 7.2's conclusion on an instance: for a useless
    strategy, [S + T] coincides with [N] (and hence costs [C(N)]). *)

(** {1 Theorem 7.4 / Lemma 7.5 — frozen links receive nothing} *)

val frozen_receive_nothing :
  ?eps:float -> Sgr_links.Links.t -> strategy:float array -> bool
(** Computes the induced equilibrium [T] and checks [tᵢ = 0] on every
    frozen link. (Theorem 7.4 when the strategy freezes every link it
    loads; Lemma 7.5 in general.) *)

(** {1 Proposition 7.1 — Nash monotonicity} *)

val nash_monotone : ?eps:float -> Sgr_links.Links.t -> r':float -> bool
(** For [r' <= r]: the equilibrium of [(M, r')] is pointwise below the
    equilibrium of [(M, r)]. *)

(** {1 Lemma 6.1 — the swap construction (Figs. 8–10)} *)

type swap_witness = {
  cost_before : float;  (** Partial cost of the two-link system before. *)
  cost_after : float;  (** After swapping and sliding ε — never larger. *)
  epsilon : float;  (** The slid amount [(b₂ - b₁)/a]. *)
  loads_after : float * float;  (** New loads of (M₁, M₂). *)
}

val swap :
  slope:float -> b1:float -> b2:float -> s1:float -> s2:float -> t2:float -> swap_witness
(** The proof's reassignment on two common-slope links [ℓᵢ = a·x + bᵢ],
    [b₁ <= b₂], where the Leader's flow [s₁] sits alone on [M₁]
    (so [t₁ = 0]) while [M₂] carries [s₂ + t₂] with
    [ℓ₁(s₁) >= ℓ₂(s₂+t₂)]: swap the loads, then slide
    [ε = (b₂-b₁)/a] back from [M₂] to [M₁]. The construction restores the
    ordering property of Lemma 6.1 at no extra cost.
    @raise Invalid_argument if the preconditions fail. *)

(** {1 Footnote 6 — the Sharma–Williamson threshold} *)

val sharma_williamson_threshold : ?eps:float -> Sgr_links.Links.t -> float
(** [min {nᵢ : nᵢ < oᵢ}] — any strategy improving on [C(N)] must control
    at least this much flow. [infinity] when no link is under-loaded
    (then [N = O] and nothing can be improved). *)
