(** Marginal-cost pricing (Pigouvian tolls).

    The paper's introduction lists pricing policies as the other classical
    way to fight selfishness (Cocchi et al. [4]); Stackelberg routing was
    invented for settings where tolls are unavailable. This module
    implements the textbook benchmark so the two levers can be compared:

    with tolls [τ = o·ℓ'(o)] charged at the optimum flow [o], the
    tolled selfish equilibrium (users minimize latency + toll) is exactly
    the system optimum — the first-best result Stackelberg control only
    achieves when the Leader owns [β] of the flow.

    Tolls enter as constants added to latencies, which the water-filling
    and path solvers already support; the "tolled cost" reported here is
    the *latency* cost [Σ x·ℓ(x)] of the tolled equilibrium (tolls are
    transfers, not social cost). *)

(** {1 Parallel links} *)

val links_tolls : Sgr_links.Links.t -> float array
(** Per-link marginal-cost toll [oᵢ·ℓᵢ'(oᵢ)] at the optimum [O]. *)

val tolled_links : Sgr_links.Links.t -> Sgr_links.Links.t
(** The instance users actually play: [ℓᵢ(x) + τᵢ]. *)

val links_outcome : Sgr_links.Links.t -> float array * float
(** [(equilibrium, latency_cost)] of the tolled instance; the cost is
    priced by the original latencies and equals [C(O)] (verified in
    tests). *)

(** {1 Networks} *)

val network_tolls : ?tol:float -> Sgr_network.Network.t -> float array
(** Per-edge marginal-cost toll [o_e·ℓ_e'(o_e)]. *)

val tolled_network : ?tol:float -> Sgr_network.Network.t -> Sgr_network.Network.t
(** The network with [ℓ_e(x) + τ_e] on every edge. *)

val network_outcome : ?tol:float -> Sgr_network.Network.t -> float array * float
(** [(edge_flow, latency_cost)] of the tolled Wardrop equilibrium —
    again [C(O)] under the original latencies. *)
