(** Algorithm [MOP] — the price of optimum on arbitrary networks
    (Theorem 2.1, Corollaries 2.3; Section 5.1).

    On a k-commodity instance [(G, r)]:

    + compute the optimum edge flow [O] and set edge costs [ℓ_e(o_e)];
    + per commodity, find the subgraph [G'] of edges lying on *shortest*
      sᵢ–tᵢ paths under those costs;
    + the flow the Followers can be trusted with — the "free flow" — is the
      largest amount routable inside [G'] without exceeding any edge's
      optimal load: a max-flow with capacities [oᵉ] (footnote 5);
    + the Leader must control everything else: the optimal flow on every
      non-shortest path. [β_G = 1 - (free flow)/r].

    Minimality (Section 5.1): controlling more than [O_P] on any path, or
    less than [O_P] on a non-shortest path, or anything on a shortest path,
    provably yields a suboptimal induced flow. *)

type commodity_report = {
  index : int;  (** Commodity number. *)
  on_shortest : bool array;
      (** Per edge: lies on a shortest sᵢ–tᵢ path under optimal costs. *)
  free_flow : float;  (** Demand the Followers route on their own. *)
  controlled : float;  (** Leader-controlled demand [rᵢ - free_flow]. *)
  leader_edge_flow : float array;  (** This commodity's Leader edge flow. *)
  leader_paths : (Sgr_graph.Paths.t * float) list;
      (** Path decomposition of the Leader's flow (the strategy as the
          paper states it: the optimal flow of each non-shortest path). *)
  follower_paths : (Sgr_graph.Paths.t * float) list;
      (** A shortest-path decomposition of the free flow. *)
}

type result = {
  beta : float;
      (** The price of optimum [β_G] for a *strong* Stackelberg Leader
          (Section 4): the Leader may split her budget unevenly across
          commodities ([Σ αᵢrᵢ = β·r]). *)
  beta_weak : float;
      (** Minimum [α] for a *weak* Leader, who must control the same
          fraction [α] of every commodity: [max_i (controlledᵢ / rᵢ)].
          Always [>= beta]. *)
  leader_edge_flow : float array;  (** Total Leader strategy, by edge. *)
  follower_demands : float array;  (** Free flow per commodity. *)
  per_commodity : commodity_report array;
  opt_edge_flow : float array;  (** The optimum [O]. *)
  opt_cost : float;  (** [C(O)]. *)
  nash_cost : float;  (** [C(N)] of the unaided equilibrium. *)
  induced : Induced.outcome;
      (** The verified induced game: [induced.cost = opt_cost] and
          [induced.combined_edge_flow = O] up to solver tolerance. *)
}

val run : ?tol:float -> ?eps:float -> Sgr_network.Network.t -> result
(** [tol] — inner solver tolerance (default [1e-9]); [eps] — slack used to
    classify an edge as lying on a shortest path (default [1e-6],
    which must dominate [tol]). *)

val beta : ?tol:float -> ?eps:float -> Sgr_network.Network.t -> float

val verify_minimality :
  ?tol:float -> ?delta:float -> Sgr_network.Network.t -> result -> bool
(** Numerical check of Section 5.1's minimality argument: for each Leader
    path, releasing a [delta] (default [0.05] of the path's controlled
    flow, at least [1e-3]) back to the Followers yields an induced cost
    strictly above [C(O)] — i.e. no part of the Leader's flow is
    dispensable. Returns [false] if any release stays optimal (within
    solver noise). Skips paths carrying less than [1e-6] flow. *)
