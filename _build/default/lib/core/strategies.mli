(** Classical Stackelberg strategies on parallel links, used as baselines.

    These are the heuristics the paper positions itself against:
    - [LLF] ("Largest Latency First", Roughgarden 2001): saturate links to
      their optimal load in decreasing order of optimal latency until the
      Leader's budget [αr] runs out. Guarantees [C(S+T) ≤ (1/α)·C(O)] on
      parallel links, and [≤ (4/(3+α))·C(O)] for linear latencies.
    - [SCALE]: play [α·O].
    - [Aloof]: play nothing (the Followers produce the plain Nash flow). *)

type outcome = {
  strategy : float array;  (** Leader assignment; sums to [α·r]. *)
  induced_cost : float;  (** [C(S + T)]. *)
  ratio_to_opt : float;  (** [C(S+T) / C(O)] — the a-posteriori anarchy cost. *)
}

val llf : Sgr_links.Links.t -> alpha:float -> outcome
(** @raise Invalid_argument unless [0 <= alpha <= 1]. *)

val scale : Sgr_links.Links.t -> alpha:float -> outcome
val aloof : Sgr_links.Links.t -> outcome

val evaluate : Sgr_links.Links.t -> strategy:float array -> outcome
(** Wrap an arbitrary feasible Leader assignment. *)
