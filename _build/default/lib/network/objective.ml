module L = Sgr_latency.Latency

type t = Wardrop | System_optimum

let edge_value = function Wardrop -> L.eval | System_optimum -> L.marginal

let objective = function
  | Wardrop -> Network.beckmann
  | System_optimum -> Network.cost

let pp ppf = function
  | Wardrop -> Format.pp_print_string ppf "wardrop"
  | System_optimum -> Format.pp_print_string ppf "system-optimum"
