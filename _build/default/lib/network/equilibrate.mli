(** Path-equilibration solver (Gauss–Seidel pairwise shifts).

    Enumerates each commodity's simple paths and repeatedly moves flow from
    the costliest *used* path to the cheapest path, equalizing the pair by
    bisection on the shifted amount (only the symmetric difference of the
    two paths matters). Each shift strictly decreases the convex objective,
    so the sweep converges; the stopping rule is the Wardrop gap itself.

    Slower asymptotically than Frank–Wolfe but far more accurate on small
    and medium networks — which is what the paper's examples and the MOP
    verification need. *)

type solution = {
  edge_flow : float array;  (** Per-edge flow at termination. *)
  path_flows : float array array;
      (** Per-commodity path flows, aligned with [paths]. *)
  paths : Sgr_graph.Paths.t array array;  (** The enumerated path sets. *)
  sweeps : int;  (** Number of full commodity sweeps performed. *)
  gap : float;
      (** Max over commodities of (costliest used path − cheapest path)
          under the objective's edge values at termination. *)
}

val solve :
  ?tol:float -> ?max_sweeps:int -> Objective.t -> Network.t -> solution
(** [solve obj net] runs until [gap <= tol] (default [1e-9]) or
    [max_sweeps] (default [200_000]) sweeps. *)

val verify :
  ?eps:float -> Objective.t -> Network.t -> solution -> bool
(** Post-hoc Wardrop/optimality check: every used path's cost is within
    [eps] of its commodity's minimum path cost. *)

val commodity_gap :
  Objective.t -> Network.t -> edge_flow:float array ->
  paths:Sgr_graph.Paths.t array -> flows:float array -> float
(** Gap of a single commodity at the given edge flow. *)
