lib/network/msa.mli: Network Objective
