lib/network/equilibrate.ml: Array Float List Network Objective Sgr_graph Sgr_latency Sgr_numerics
