lib/network/objective.ml: Format Network Sgr_latency
