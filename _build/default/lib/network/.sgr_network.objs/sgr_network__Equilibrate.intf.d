lib/network/equilibrate.mli: Network Objective Sgr_graph
