lib/network/network.ml: Array Float List Sgr_graph Sgr_latency Sgr_numerics
