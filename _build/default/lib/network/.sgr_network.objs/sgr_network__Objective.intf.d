lib/network/objective.mli: Format Network Sgr_latency
