lib/network/frank_wolfe.ml: Array Float List Network Objective Sgr_graph Sgr_numerics
