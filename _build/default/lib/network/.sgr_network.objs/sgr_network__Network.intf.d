lib/network/network.mli: Sgr_graph Sgr_latency
