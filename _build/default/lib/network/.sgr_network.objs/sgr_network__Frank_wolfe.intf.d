lib/network/frank_wolfe.mli: Network Objective
