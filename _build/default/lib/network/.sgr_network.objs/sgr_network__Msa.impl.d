lib/network/msa.ml: Array Float Frank_wolfe Network Objective Sgr_graph Sgr_numerics
