(** Which convex program a network solver targets.

    Both canonical flows are minimizers of a convex separable functional
    over the feasible flow polytope (see [41, Sec. 2]):
    - the Wardrop/Nash equilibrium minimizes the Beckmann potential, whose
      per-edge integrand gradient is the latency [ℓ_e];
    - the system optimum minimizes total cost, whose gradient is the
      marginal cost [ℓ_e(x) + x·ℓ_e'(x)].

    Solvers are written once against this abstraction. *)

type t =
  | Wardrop  (** Equalize path latencies (Nash equilibrium). *)
  | System_optimum  (** Equalize path marginal costs (optimum). *)

val edge_value : t -> Sgr_latency.Latency.t -> float -> float
(** Gradient of the objective on one edge: latency or marginal cost. *)

val objective : t -> Network.t -> float array -> float
(** Value of the convex functional at an edge flow: Beckmann potential or
    total cost. *)

val pp : Format.formatter -> t -> unit
