lib/workloads/workloads.ml: Array Sgr_graph Sgr_latency Sgr_links Sgr_network Sgr_numerics
