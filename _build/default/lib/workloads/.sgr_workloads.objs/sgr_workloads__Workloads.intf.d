lib/workloads/workloads.mli: Sgr_links Sgr_network Sgr_numerics
