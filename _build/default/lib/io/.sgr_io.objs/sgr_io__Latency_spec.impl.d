lib/io/latency_spec.ml: Array List Printf Sgr_latency String
