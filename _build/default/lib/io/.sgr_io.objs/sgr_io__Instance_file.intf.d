lib/io/instance_file.mli: Sgr_links Sgr_network
