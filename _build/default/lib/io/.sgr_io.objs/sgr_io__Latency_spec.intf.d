lib/io/latency_spec.mli: Sgr_latency
