lib/io/instance_file.ml: Array Buffer In_channel Latency_spec List Printf Sgr_graph Sgr_links Sgr_network String
