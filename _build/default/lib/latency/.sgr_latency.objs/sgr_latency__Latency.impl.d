lib/latency/latency.ml: Array Float Format Option Sgr_numerics
