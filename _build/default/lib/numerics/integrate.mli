(** Adaptive numerical integration.

    Used for Beckmann potentials of latency functions without a closed-form
    primitive (custom latencies), and in tests to validate the closed-form
    primitives of the standard latency families. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** [adaptive_simpson ~f ~lo ~hi ()] approximates [∫_lo^hi f] with adaptive
    Simpson quadrature to absolute tolerance [tol] (default [1e-12]).
    Exact for cubics on each panel. *)
