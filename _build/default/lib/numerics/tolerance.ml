let solver_eps = 1e-10
let check_eps = 1e-6

let scale a b = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
let approx ?(eps = check_eps) a b = Float.abs (a -. b) <= eps *. scale a b
let approx_le ?(eps = check_eps) a b = a <= b +. (eps *. scale a b)
let approx_ge ?(eps = check_eps) a b = a >= b -. (eps *. scale a b)

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)
let clamp_nonneg x = Float.max 0. x
