(** Deterministic SplitMix64 pseudo-random generator.

    Workload generators take an explicit generator so that every random
    instance in tests, examples and benchmarks is reproducible from a seed,
    independent of the global [Random] state. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform draw in [[0, 1)] with 53 bits of precision. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw in [[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int g n] draws uniformly from [[0, n-1]]. Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for nested generation). *)
