(** Floating-point tolerance conventions used across the library.

    All solvers in this repository work on nonnegative flows of magnitude
    comparable to the instance demand, so a mixed absolute/relative
    comparison with a single epsilon is adequate everywhere. *)

val solver_eps : float
(** Tolerance to which equilibria and optima are computed ([1e-10]). *)

val check_eps : float
(** Tolerance used when *verifying* solver outputs and experiment claims
    ([1e-6]); looser than {!solver_eps} so verification is robust. *)

val approx : ?eps:float -> float -> float -> bool
(** [approx a b] holds when [a] and [b] agree up to [eps] mixed
    absolute/relative error. Default [eps] is {!check_eps}. *)

val approx_le : ?eps:float -> float -> float -> bool
(** [approx_le a b] holds when [a <= b + slack]. *)

val approx_ge : ?eps:float -> float -> float -> bool
(** [approx_ge a b] holds when [a >= b - slack]. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to the interval [[lo, hi]]. *)

val clamp_nonneg : float -> float
(** [clamp_nonneg x] is [max x 0.], mapping tiny negative solver noise
    to a feasible flow value. *)
