(** One-dimensional minimization of unimodal functions.

    Theorem 2.4's partition search and the Frank–Wolfe line search both
    reduce to minimizing a convex (hence unimodal) function over an
    interval. *)

val golden :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float * float
(** [golden ~f ~lo ~hi ()] returns [(x_min, f x_min)] minimizing a unimodal [f]
    over [[lo, hi]] by golden-section search, to interval width
    [tol * max 1 (hi - lo)] (default tol [1e-12]). *)

val line_search_convex :
  ?tol:float -> df:(float -> float) -> lo:float -> hi:float -> unit -> float
(** [line_search_convex ~df ~lo ~hi ()] minimizes a differentiable convex
    function over [[lo, hi]] given only its (nondecreasing) derivative
    [df], by bisecting for [df x = 0]; saturates at the boundary when the
    minimizer lies outside. *)
