lib/numerics/integrate.mli:
