lib/numerics/bisection.mli:
