lib/numerics/tolerance.mli:
