lib/numerics/tolerance.ml: Float
