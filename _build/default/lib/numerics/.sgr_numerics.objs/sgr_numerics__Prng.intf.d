lib/numerics/prng.mli:
