lib/numerics/minimize.mli:
