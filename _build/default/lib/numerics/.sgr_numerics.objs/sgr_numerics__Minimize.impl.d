lib/numerics/minimize.ml: Bisection Float
