lib/numerics/bisection.ml: Float Tolerance
