(** Root finding on monotone functions by bisection.

    The equilibrium solvers reduce everything to inverting nondecreasing
    functions (latency levels, marginal costs, aggregate link demand), so a
    robust monotone bisection is the workhorse of the whole library. *)

val root :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  float
(** [root ~f ~lo ~hi ()] finds [x] in [[lo, hi]] with [f x ≈ 0] for a
    nondecreasing [f] with [f lo <= 0 <= f hi].

    If [f lo > 0] returns [lo]; if [f hi < 0] returns [hi] (saturated
    boundary solutions, which is what the flow solvers need for links that
    are unloaded or capacity-bound). [tol] bounds the final interval width
    relative to the interval scale; default [Tolerance.solver_eps]. *)

val expand_upper :
  ?start:float -> ?limit:float -> f:(float -> float) -> target:float -> unit -> float
(** [expand_upper ~f ~target ()] returns some [hi > 0] with
    [f hi >= target], doubling from [start] (default [1.0]).

    @raise Failure if [limit] (default [1e18]) is exceeded — which signals a
    function that never reaches [target], e.g. a bounded latency. *)

val solve_increasing :
  ?tol:float -> f:(float -> float) -> y:float -> lo:float -> hi:float -> unit -> float
(** [solve_increasing ~f ~y ~lo ~hi ()] finds [x] with [f x ≈ y]
    for nondecreasing [f]; boundary-saturating like {!root}. *)
