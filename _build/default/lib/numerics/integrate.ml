let simpson a b fa fm fb = (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb)

let adaptive_simpson ?(tol = 1e-12) ?(max_depth = 50) ~f ~lo ~hi () =
  if lo = hi then 0.0
  else begin
    (* Standard recursive refinement: accept a panel when the two-half
       Simpson estimate agrees with the whole-panel one to 15*tol. *)
    let rec go a b fa fm fb whole tol depth =
      let m = 0.5 *. (a +. b) in
      let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
      let flm = f lm and frm = f rm in
      let left = simpson a m fa flm fm in
      let right = simpson m b fm frm fb in
      let delta = left +. right -. whole in
      if depth <= 0 || Float.abs delta <= 15.0 *. tol then
        left +. right +. (delta /. 15.0)
      else
        go a m fa flm fm left (0.5 *. tol) (depth - 1)
        +. go m b fm frm fb right (0.5 *. tol) (depth - 1)
    in
    let fa = f lo and fb = f hi and fm = f (0.5 *. (lo +. hi)) in
    let whole = simpson lo hi fa fm fb in
    go lo hi fa fm fb whole tol max_depth
  end
