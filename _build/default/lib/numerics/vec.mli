(** Small helpers over [float array] flow vectors.

    Flows over links, edges and paths are represented as plain float
    arrays throughout the library; these helpers keep the arithmetic
    allocation-light and numerically careful (Kahan summation). *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val dot : float array -> float array -> float
(** Compensated inner product. Arrays must have equal length. *)

val add : float array -> float array -> float array
(** Pointwise sum (fresh array). *)

val sub : float array -> float array -> float array
(** Pointwise difference (fresh array). *)

val scale : float -> float array -> float array
(** [scale c v] is [c * v] (fresh array). *)

val axpy : float -> float array -> float array -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val linf_dist : float array -> float array -> float
(** Max-norm distance. *)

val l1_norm : float array -> float
(** Sum of absolute values (compensated). *)

val max_elt : float array -> float
(** Largest element. Requires a nonempty array. *)

val min_elt : float array -> float
(** Smallest element. Requires a nonempty array. *)

val argmax : float array -> int
(** Index of the largest element (first on ties). Requires nonempty. *)

val argmin : float array -> int
(** Index of the smallest element (first on ties). Requires nonempty. *)

val all_nonneg : ?eps:float -> float array -> bool
(** Every entry is [>= -eps]. *)

val pp : Format.formatter -> float array -> unit
(** Prints [⟨x1, ..., xn⟩] with 6 significant digits. *)
