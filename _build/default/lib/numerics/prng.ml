type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let float t =
  let bits53 = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits53 *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Rejection-free modulo is fine here: n is tiny relative to 2^64 and
     these draws parameterize test workloads, not cryptography. *)
  Int64.to_int (Int64.unsigned_rem (int64 t) (Int64.of_int n))

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = int64 t }
