(* Kahan compensated summation: the running error term [c] captures the
   low-order bits lost by each addition. *)
let kahan_fold f n =
  let s = ref 0.0 and c = ref 0.0 in
  for i = 0 to n - 1 do
    let y = f i -. !c in
    let t = !s +. y in
    c := t -. !s -. y;
    s := t
  done;
  !s

let sum v = kahan_fold (fun i -> v.(i)) (Array.length v)

let dot a b =
  assert (Array.length a = Array.length b);
  kahan_fold (fun i -> a.(i) *. b.(i)) (Array.length a)

let add a b =
  assert (Array.length a = Array.length b);
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  assert (Array.length a = Array.length b);
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let scale c v = Array.map (fun x -> c *. x) v

let axpy a x y =
  assert (Array.length x = Array.length y);
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let linf_dist a b =
  assert (Array.length a = Array.length b);
  let d = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    d := Float.max !d (Float.abs (a.(i) -. b.(i)))
  done;
  !d

let l1_norm v = kahan_fold (fun i -> Float.abs v.(i)) (Array.length v)

let extremum better v =
  if Array.length v = 0 then invalid_arg "Vec: empty array";
  let best = ref v.(0) in
  for i = 1 to Array.length v - 1 do
    if better v.(i) !best then best := v.(i)
  done;
  !best

let max_elt v = extremum (fun a b -> a > b) v
let min_elt v = extremum (fun a b -> a < b) v

let arg_extremum better v =
  if Array.length v = 0 then invalid_arg "Vec: empty array";
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if better v.(i) v.(!best) then best := i
  done;
  !best

let argmax v = arg_extremum (fun a b -> a > b) v
let argmin v = arg_extremum (fun a b -> a < b) v

let all_nonneg ?(eps = Tolerance.check_eps) v =
  Array.for_all (fun x -> x >= -.eps) v

let pp ppf v =
  Format.fprintf ppf "⟨%a⟩"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf x -> Format.fprintf ppf "%.6g" x))
    v
