(* Tests for topology queries and DOT export. *)

open Helpers
module G = Sgr_graph
module Prng = Sgr_numerics.Prng

let diamond () = G.Digraph.of_edges ~num_nodes:4 [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ]
let cycle () = G.Digraph.of_edges ~num_nodes:3 [ (0, 1); (1, 2); (2, 0) ]

let test_topological_order_dag () =
  let g = diamond () in
  match G.Topology.topological_order g with
  | None -> Alcotest.fail "diamond is a DAG"
  | Some order ->
      Alcotest.(check int) "all nodes" 4 (Array.length order);
      (* Every edge goes forward in the order. *)
      let pos = Array.make 4 0 in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      Array.iter
        (fun (e : G.Digraph.edge) -> check_true "edge forward" (pos.(e.src) < pos.(e.dst)))
        (G.Digraph.edges g)

let test_topological_order_cycle () =
  Alcotest.(check bool) "cycle has no order" true (G.Topology.topological_order (cycle ()) = None)

let test_is_dag () =
  check_true "diamond" (G.Topology.is_dag (diamond ()));
  check_true "cycle" (not (G.Topology.is_dag (cycle ())))

let test_cycle_in_support () =
  let g = cycle () in
  check_true "full support cycles" (G.Topology.has_cycle_in_support g ~support:[| true; true; true |]);
  check_true "broken support acyclic"
    (not (G.Topology.has_cycle_in_support g ~support:[| true; true; false |]))

let test_reachability () =
  let g = G.Digraph.of_edges ~num_nodes:4 [ (0, 1); (1, 2) ] in
  Alcotest.(check (array bool)) "forward" [| true; true; true; false |]
    (G.Topology.reachable_from g 0);
  Alcotest.(check (array bool)) "backward" [| true; true; true; false |]
    (G.Topology.co_reachable_to g 2)

let test_dot_export () =
  let g = diamond () in
  let dot =
    G.Dot.export ~name:"test"
      ~node_label:(fun v -> Printf.sprintf "n%d" v)
      ~edge_label:(fun e -> Printf.sprintf "e%d" e.id)
      ~edge_highlight:(fun e -> e.id = 2)
      g
  in
  check_true "digraph header" (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  check_true "has edge" (contains "n1 -> n3");
  check_true "has highlight" (contains "color=red");
  check_true "has label" (contains "e2")

let prop_random_layered_is_dag =
  qcheck ~count:30 "layered networks are DAGs" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let net =
        Sgr_workloads.Workloads.random_layered_network rng ~layers:(1 + Prng.int rng 3)
          ~width:(1 + Prng.int rng 3) ~extra_edges:(Prng.int rng 4) ()
      in
      G.Topology.is_dag net.Sgr_network.Network.graph)

let prop_optimum_support_acyclic =
  qcheck ~count:25 "optimal flow supports are acyclic" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 50) in
      let net = Sgr_workloads.Workloads.grid_network rng ~rows:3 ~cols:3 () in
      let opt =
        Sgr_network.Equilibrate.solve Sgr_network.Objective.System_optimum net
      in
      let support = Array.map (fun f -> f > 1e-9) opt.edge_flow in
      not (G.Topology.has_cycle_in_support net.Sgr_network.Network.graph ~support))

let suite =
  [
    case "topological order on a DAG" test_topological_order_dag;
    case "no order on a cycle" test_topological_order_cycle;
    case "is_dag" test_is_dag;
    case "cycle detection in support" test_cycle_in_support;
    case "reachability" test_reachability;
    case "dot export" test_dot_export;
    prop_random_layered_is_dag;
    prop_optimum_support_acyclic;
  ]
