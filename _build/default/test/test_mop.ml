(* Tests for MOP (Theorem 2.1 / Corollary 2.3): the Fig. 7 worked example,
   the classic Braess graph, k commodities, and random networks. *)

open Helpers
module Net = Sgr_network.Network
module Mop = Stackelberg.Mop
module Induced = Stackelberg.Induced
module W = Sgr_workloads.Workloads
module Prng = Sgr_numerics.Prng
module Vec = Sgr_numerics.Vec
module Tol = Sgr_numerics.Tolerance

let test_fig7_beta () =
  List.iter
    (fun epsilon ->
      let net = W.fig7 ~epsilon () in
      let r = Mop.run net in
      approx ~eps:1e-4
        (Printf.sprintf "β = 1/2 + 2ε at ε=%.3f" epsilon)
        (0.5 +. (2.0 *. epsilon))
        r.beta)
    [ 0.0; 0.02; 0.05; 0.1 ]

let test_fig7_strategy_paths () =
  (* Leader controls exactly the two non-shortest paths s→v→t and s→w→t,
     each with optimal flow 1/4 + ε. *)
  let epsilon = 0.02 in
  let net = W.fig7 ~epsilon () in
  let r = Mop.run net in
  let rep = r.per_commodity.(0) in
  Alcotest.(check int) "two leader paths" 2 (List.length rep.leader_paths);
  List.iter
    (fun (path, amount) ->
      approx "each carries 1/4 + ε" (0.25 +. epsilon) amount;
      Alcotest.(check int) "outer paths have 2 edges" 2 (List.length path))
    rep.leader_paths;
  (* Followers keep the middle path. *)
  match rep.follower_paths with
  | [ (path, amount) ] ->
      approx "free flow 1/2 - 2ε" (0.5 -. (2.0 *. epsilon)) amount;
      Alcotest.(check int) "middle path has 3 edges" 3 (List.length path)
  | _ -> Alcotest.fail "expected exactly the middle path"

let test_fig7_induces_optimum () =
  let net = W.fig7 () in
  let r = Mop.run net in
  approx ~eps:1e-5 "C(S+T) = C(O)" r.opt_cost r.induced.cost;
  check_true "S+T = O (edge flows)"
    (Vec.linf_dist r.induced.combined_edge_flow r.opt_edge_flow <= 1e-4)

let test_fig7_shortest_subgraph () =
  let net = W.fig7 () in
  let r = Mop.run net in
  (* Only the middle path s→v, v→w, w→t lies on a shortest path. *)
  Alcotest.(check (array bool)) "shortest subgraph"
    [| true; false; true; false; true |]
    r.per_commodity.(0).on_shortest

let test_braess_classic_beta_one () =
  let r = Mop.run (W.braess_classic ()) in
  approx "β = 1" 1.0 r.beta;
  approx "C(N) = 2" 2.0 r.nash_cost;
  approx "C(O) = 3/2" 1.5 r.opt_cost;
  approx ~eps:1e-5 "leader alone reproduces the optimum" 1.5 r.induced.cost

let test_pigou_as_network () =
  (* Sanity: MOP on a 2-parallel-edge network must agree with OpTop. *)
  let g = Sgr_graph.Digraph.of_edges ~num_nodes:2 [ (0, 1); (0, 1) ] in
  let net =
    Net.single g
      ~latencies:[| Sgr_latency.Latency.linear 1.0; Sgr_latency.Latency.constant 1.0 |]
      ~src:0 ~dst:1 ~demand:1.0
  in
  let r = Mop.run net in
  approx "β = 1/2 (matches OpTop on pigou)" 0.5 r.beta;
  approx ~eps:1e-5 "induced = 3/4" 0.75 r.induced.cost

let test_two_commodity () =
  let net = W.two_commodity () in
  let r = Mop.run net in
  check_true "β ∈ [0,1]" (0.0 <= r.beta && r.beta <= 1.0);
  approx ~eps:1e-4 "induced = C(O) with two commodities" r.opt_cost r.induced.cost;
  check_true "combined = O"
    (Vec.linf_dist r.induced.combined_edge_flow r.opt_edge_flow <= 1e-3);
  (* Leader budget accounting. *)
  let controlled =
    Array.fold_left (fun acc (rep : Mop.commodity_report) -> acc +. rep.controlled) 0.0
      r.per_commodity
  in
  approx "β·r = controlled flow" (r.beta *. Net.total_demand net) controlled

let test_minimality_fig7 () =
  (* Section 5.1: releasing any part of the Leader's non-shortest-path
     flow back to the Followers breaks optimality. *)
  let net = W.fig7 () in
  let r = Mop.run net in
  check_true "no leader flow is dispensable" (Mop.verify_minimality net r)

let test_minimality_two_commodity () =
  let net = W.two_commodity () in
  let r = Mop.run net in
  check_true "minimality across commodities" (Mop.verify_minimality net r)

let test_induced_module_validation () =
  let net = W.fig7 () in
  let m = Sgr_graph.Digraph.num_edges net.Net.graph in
  (match Induced.equilibrium net ~leader_edge_flow:(Array.make 2 0.0) ~follower_demands:[| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad edge-flow size rejected");
  match Induced.equilibrium net ~leader_edge_flow:(Array.make m 0.0) ~follower_demands:[| -1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative follower demand rejected"

let test_induced_no_leader_is_nash () =
  let net = W.fig7 () in
  let m = Sgr_graph.Digraph.num_edges net.Net.graph in
  let out = Induced.equilibrium net ~leader_edge_flow:(Array.make m 0.0) ~follower_demands:[| 1.0 |] in
  approx ~eps:1e-5 "no leader = plain Nash cost" (Mop.run net).nash_cost out.cost

let random_network seed =
  let rng = Prng.create seed in
  W.random_layered_network rng ~layers:(1 + Prng.int rng 2) ~width:(1 + Prng.int rng 3)
    ~extra_edges:(Prng.int rng 2)
    ~demand:(Prng.uniform rng ~lo:0.5 ~hi:2.0) ()

let prop_beta_in_unit_interval =
  qcheck ~count:30 "β ∈ [0,1] on random networks" QCheck.small_nat (fun seed ->
      let r = Mop.run (random_network (seed + 1)) in
      -1e-9 <= r.beta && r.beta <= 1.0 +. 1e-9)

let prop_induces_optimum =
  qcheck ~count:30 "MOP induces the optimum on random networks" QCheck.small_nat (fun seed ->
      let net = random_network (seed + 1) in
      let r = Mop.run net in
      Tol.approx ~eps:1e-4 r.induced.cost r.opt_cost
      && Vec.linf_dist r.induced.combined_edge_flow r.opt_edge_flow
         <= 1e-3 *. Float.max 1.0 (Net.total_demand net))

let prop_leader_flow_within_optimum =
  qcheck ~count:30 "leader never exceeds the optimal flow on any edge" QCheck.small_nat
    (fun seed ->
      let net = random_network (seed + 1) in
      let r = Mop.run net in
      Array.for_all2 (fun s o -> s <= o +. 1e-6) r.leader_edge_flow r.opt_edge_flow)

let prop_minimality_random =
  qcheck ~count:10 "MOP's strategy is minimal on random networks" QCheck.small_nat (fun seed ->
      let net = random_network (seed + 1) in
      let r = Mop.run net in
      (* Instances where the Leader controls nothing are trivially minimal. *)
      r.beta < 1e-6 || Mop.verify_minimality net r)

let prop_multicommodity_grids =
  qcheck ~count:10 "MOP induces the optimum on random multicommodity grids" QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (seed + 1) in
      let net =
        W.random_multicommodity rng ~rows:3 ~cols:3 ~commodities:(1 + Prng.int rng 3) ()
      in
      let r = Mop.run net in
      Tol.approx ~eps:1e-4 r.induced.cost r.opt_cost
      && r.beta <= r.beta_weak +. 1e-9
      && Vec.linf_dist r.induced.combined_edge_flow r.opt_edge_flow
         <= 1e-3 *. Float.max 1.0 (Net.total_demand net))

let prop_grid_networks =
  qcheck ~count:10 "MOP on random BPR grids" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let net = W.grid_network rng ~rows:3 ~cols:3 ~demand:2.0 () in
      let r = Mop.run net in
      Tol.approx ~eps:1e-4 r.induced.cost r.opt_cost)

let suite =
  [
    case "fig7: β = 1/2 + 2ε across ε" test_fig7_beta;
    case "fig7: leader/follower path split" test_fig7_strategy_paths;
    case "fig7: induces the optimum" test_fig7_induces_optimum;
    case "fig7: shortest-path subgraph" test_fig7_shortest_subgraph;
    case "classic braess: β = 1" test_braess_classic_beta_one;
    case "pigou as a network" test_pigou_as_network;
    case "two commodities (Thm 2.1)" test_two_commodity;
    case "minimality (Sec. 5.1): fig7" test_minimality_fig7;
    case "minimality (Sec. 5.1): two commodities" test_minimality_two_commodity;
    prop_minimality_random;
    case "induced: validation" test_induced_module_validation;
    case "induced: empty leader = Nash" test_induced_no_leader_is_nash;
    prop_beta_in_unit_interval;
    prop_induces_optimum;
    prop_leader_flow_within_optimum;
    prop_multicommodity_grids;
    prop_grid_networks;
  ]
