(* Tests for the Theorem-2.4-shaped partition heuristic on arbitrary
   latencies: exactness on the linear class, feasibility and quality
   bounds elsewhere. *)

open Helpers
module Links = Sgr_links.Links
module PH = Stackelberg.Partition_heuristic
module LE = Stackelberg.Linear_exact
module S = Stackelberg.Strategies
module W = Sgr_workloads.Workloads
module Prng = Sgr_numerics.Prng
module Vec = Sgr_numerics.Vec
module Tol = Sgr_numerics.Tolerance

let two_links =
  Links.make
    [| Sgr_latency.Latency.linear 1.0; Sgr_latency.Latency.affine ~slope:1.0 ~intercept:1.0 |]
    ~demand:1.0

let test_matches_linear_exact () =
  List.iter
    (fun alpha ->
      let h = PH.solve two_links ~alpha in
      let e = LE.solve two_links ~alpha in
      approx ~eps:1e-5
        (Printf.sprintf "heuristic = exact at α=%.2f" alpha)
        e.induced_cost h.induced_cost)
    [ 0.05; 0.1; 0.15; 0.2; 0.24 ]

let test_alpha_validation () =
  match PH.solve two_links ~alpha:(-0.1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative alpha rejected"

let test_feasible_on_pigou () =
  let h = PH.solve W.pigou ~alpha:0.3 in
  check_true "nonneg" (Vec.all_nonneg h.strategy);
  approx_le "budget" (Vec.sum h.strategy) (0.3 +. 1e-9);
  (* Matches the Pigou closed form ((1-α)² + α). *)
  approx ~eps:1e-5 "pigou exact" (((1.0 -. 0.3) ** 2.0) +. 0.3) h.induced_cost

let test_never_worse_than_nash () =
  let rng = Prng.create 77 in
  for _ = 1 to 20 do
    let t = W.random_polynomial_links rng ~m:(2 + Prng.int rng 4) ~demand:1.0 () in
    let nash_cost = Links.cost t (Links.nash t).assignment in
    let h = PH.solve t ~alpha:(Prng.uniform rng ~lo:0.0 ~hi:1.0) in
    approx_le "no worse than doing nothing" h.induced_cost (nash_cost +. 1e-6)
  done

let prop_matches_exact_on_linear_class =
  qcheck ~count:15 "heuristic is exact on Thm 2.4 instances" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let t = W.random_common_slope_links rng ~m:(2 + Prng.int rng 3) ~demand:1.0 () in
      let beta = Stackelberg.Optop.beta t in
      if beta < 0.05 then true
      else begin
        let alpha = Prng.uniform rng ~lo:0.02 ~hi:beta in
        let h = PH.solve t ~alpha in
        let e = LE.solve t ~alpha in
        Float.abs (h.induced_cost -. e.induced_cost) <= 1e-4 *. Float.max 1.0 e.induced_cost
      end)

let prop_feasible_and_bounded =
  qcheck ~count:25 "heuristic strategies are feasible and sane" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let t =
        match Prng.int rng 3 with
        | 0 -> W.random_affine_links rng ~m:(2 + Prng.int rng 4) ~demand:1.0 ()
        | 1 -> W.random_polynomial_links rng ~m:(2 + Prng.int rng 4) ~demand:1.0 ()
        | _ -> W.random_mm1_links rng ~m:(2 + Prng.int rng 4) ~demand:1.0 ()
      in
      let alpha = Prng.uniform rng ~lo:0.0 ~hi:1.0 in
      let h = PH.solve t ~alpha in
      let opt_cost = Links.cost t (Links.opt t).assignment in
      let nash_cost = Links.cost t (Links.nash t).assignment in
      Vec.all_nonneg h.strategy
      && Vec.sum h.strategy <= (alpha *. 1.0) +. 1e-6
      && h.induced_cost >= opt_cost -. (1e-6 *. Float.max 1.0 opt_cost)
      && h.induced_cost <= nash_cost +. (1e-6 *. Float.max 1.0 nash_cost))

let prop_not_worse_than_llf_scale =
  qcheck ~count:20 "heuristic beats or ties LLF and SCALE on hard instances" QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (seed + 1) in
      let t = W.random_affine_links rng ~m:(2 + Prng.int rng 3) ~demand:1.0 () in
      let beta = Stackelberg.Optop.beta t in
      if beta < 0.05 then true
      else begin
        let alpha = Prng.uniform rng ~lo:0.02 ~hi:beta in
        let h = PH.solve t ~alpha in
        let llf = (S.llf t ~alpha).induced_cost in
        let scale = (S.scale t ~alpha).induced_cost in
        h.induced_cost <= Float.min llf scale +. 1e-5
      end)

let suite =
  [
    case "matches Thm 2.4 on two links" test_matches_linear_exact;
    case "alpha validation" test_alpha_validation;
    case "pigou closed form" test_feasible_on_pigou;
    case "never worse than Nash" test_never_worse_than_nash;
    prop_matches_exact_on_linear_class;
    prop_feasible_and_bounded;
    prop_not_worse_than_llf_scale;
  ]
