(* Tests for OpTop (Corollary 2.2): the paper's worked example, exactness
   of the induced optimum, minimality of β, and behaviour on random
   instances. *)

open Helpers
module Links = Sgr_links.Links
module Optop = Stackelberg.Optop
module W = Sgr_workloads.Workloads
module Prng = Sgr_numerics.Prng
module Vec = Sgr_numerics.Vec
module Tol = Sgr_numerics.Tolerance

let test_pigou () =
  let r = Optop.run W.pigou in
  approx "beta = 1/2" 0.5 r.beta;
  approx_array "strategy ⟨0, 1/2⟩" [| 0.0; 0.5 |] r.strategy;
  approx "induced = C(O)" r.optimum_cost r.induced_cost

let test_fig456_beta () =
  let r = Optop.run W.fig456 in
  approx "beta = 29/120" (29.0 /. 120.0) r.beta;
  approx_array "strategy freezes M4, M5 at optimum"
    [| 0.0; 0.0; 0.0; 8.0 /. 75.0; 27.0 /. 200.0 |]
    r.strategy

let test_fig456_rounds () =
  let r = Optop.run W.fig456 in
  Alcotest.(check int) "two rounds (freeze, terminate)" 2 (List.length r.rounds);
  match r.rounds with
  | [ first; second ] ->
      Alcotest.(check (array int)) "round 1 freezes M4,M5" [| 3; 4 |] first.frozen;
      Alcotest.(check (array int)) "round 2 freezes nothing" [||] second.frozen;
      Alcotest.(check (array int)) "round 2 active" [| 0; 1; 2 |] second.active;
      approx "round 2 demand" (1.0 -. (8.0 /. 75.0) -. (27.0 /. 200.0)) second.demand
  | _ -> Alcotest.fail "unexpected round structure"

let test_fig456_induces_optimum () =
  let r = Optop.run W.fig456 in
  approx "C(S+T) = C(O)" r.optimum_cost r.induced_cost;
  let induced = Links.induced W.fig456 ~strategy:r.strategy in
  approx_array "S + T = O" r.optimum (Vec.add r.strategy induced.assignment)

let test_nash_equals_opt_gives_zero_beta () =
  (* Symmetric system: N = O, no control needed. *)
  let t = W.mm1_links ~capacities:[| 0.6; 0.6; 0.6 |] ~demand:1.0 in
  let r = Optop.run t in
  approx "beta = 0" 0.0 r.beta;
  Alcotest.(check int) "single round" 1 (List.length r.rounds)

let test_beta_minimality_pigou () =
  (* Just below β no strategy reaches C(O); at β OpTop's does. *)
  let opt_cost = (Optop.run W.pigou).optimum_cost in
  check_true "alpha = β reaches optimum"
    (Stackelberg.Brute_force.can_reach_optimum ~resolution:50 W.pigou ~alpha:0.5);
  let below = Stackelberg.Brute_force.optimal_strategy ~resolution:50 W.pigou ~alpha:0.45 in
  check_true "alpha < β cannot reach optimum"
    (below.induced_cost > opt_cost +. 1e-4)

let random_instance seed =
  let rng = Prng.create seed in
  match Prng.int rng 3 with
  | 0 -> W.random_affine_links rng ~m:(2 + Prng.int rng 8) ~demand:(Prng.uniform rng ~lo:0.5 ~hi:4.0) ()
  | 1 ->
      W.random_polynomial_links rng ~m:(2 + Prng.int rng 8)
        ~demand:(Prng.uniform rng ~lo:0.5 ~hi:4.0) ()
  | _ -> W.random_mm1_links rng ~m:(2 + Prng.int rng 8) ~demand:(Prng.uniform rng ~lo:0.5 ~hi:4.0) ()

let prop_beta_in_unit_interval =
  qcheck "β ∈ [0, 1]" QCheck.small_nat (fun seed ->
      let b = Optop.beta (random_instance (seed + 1)) in
      -1e-9 <= b && b <= 1.0 +. 1e-9)

let prop_strategy_budget =
  qcheck "strategy spends exactly β·r" QCheck.small_nat (fun seed ->
      let t = random_instance (seed + 1) in
      let r = Optop.run t in
      Tol.approx (Vec.sum r.strategy) (r.beta *. t.Links.demand))

let prop_induces_optimum =
  qcheck "OpTop's strategy induces the optimum cost" QCheck.small_nat (fun seed ->
      let t = random_instance (seed + 1) in
      let r = Optop.run t in
      Tol.approx ~eps:1e-5 r.induced_cost r.optimum_cost)

let prop_induced_flow_is_optimum =
  qcheck "S + T equals the optimum assignment" QCheck.small_nat (fun seed ->
      let t = random_instance (seed + 1) in
      let r = Optop.run t in
      let induced = Links.induced t ~strategy:r.strategy in
      Vec.linf_dist (Vec.add r.strategy induced.assignment) r.optimum
      <= 1e-5 *. Float.max 1.0 t.Links.demand)

let prop_strategy_loads_only_underloaded =
  qcheck "leader only ever loads links at their optimal load" QCheck.small_nat (fun seed ->
      let t = random_instance (seed + 1) in
      let r = Optop.run t in
      Array.for_all2
        (fun s o -> s = 0.0 || Tol.approx s o)
        r.strategy r.optimum)

let prop_beta_zero_iff_nash_optimal =
  qcheck "β = 0 exactly when N already costs C(O)" QCheck.small_nat (fun seed ->
      let t = random_instance (seed + 1) in
      let r = Optop.run t in
      let poa_one = Tol.approx ~eps:1e-6 r.nash_cost r.optimum_cost in
      if r.beta <= 1e-7 then poa_one else not (Tol.approx ~eps:1e-4 r.beta 0.0) || poa_one)

let prop_brute_force_cannot_beat_below_beta =
  qcheck ~count:20 "below β the grid search cannot reach C(O)" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let t = W.random_affine_links rng ~m:(2 + Prng.int rng 2) ~demand:1.0 () in
      let r = Optop.run t in
      (* Skip instances with a tiny β or a near-degenerate optimality gap
         (N ≈ O): there is no meaningful separation to certify. *)
      if r.beta < 0.05 || r.nash_cost -. r.optimum_cost < 1e-4 then true
      else begin
        let alpha = 0.8 *. r.beta in
        let bf = Stackelberg.Brute_force.optimal_strategy ~resolution:24 t ~alpha in
        bf.induced_cost > r.optimum_cost +. 1e-7
      end)

let suite =
  [
    case "pigou" test_pigou;
    case "fig4-6: β = 29/120" test_fig456_beta;
    case "fig4-6: round trace" test_fig456_rounds;
    case "fig4-6: induces the optimum" test_fig456_induces_optimum;
    case "symmetric system: β = 0" test_nash_equals_opt_gives_zero_beta;
    case "pigou: β is minimal" test_beta_minimality_pigou;
    prop_beta_in_unit_interval;
    prop_strategy_budget;
    prop_induces_optimum;
    prop_induced_flow_is_optimum;
    prop_strategy_loads_only_underloaded;
    prop_beta_zero_iff_nash_optimal;
    prop_brute_force_cannot_beat_below_beta;
  ]
