(* Tests for unsplittable atomic congestion games (the Fotakis [12]
   setting): potential-game structure, pure equilibria, exact optima and
   the discrete LLF Stackelberg scheme. *)

open Helpers
module C = Sgr_discrete.Congestion
module L = Sgr_latency.Latency
module Prng = Sgr_numerics.Prng

let two_identical n = C.make [| L.linear 1.0; L.linear 1.0 |] ~players:n

let test_make_validation () =
  (match C.make [||] ~players:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no links rejected");
  match C.make [| L.linear 1.0 |] ~players:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero players rejected"

let test_loads_and_cost () =
  let t = two_identical 4 in
  let state = [| 0; 0; 1; 0 |] in
  Alcotest.(check (array int)) "loads" [| 3; 1 |] (C.loads t state);
  approx "social cost 3·3 + 1·1" 10.0 (C.social_cost t state);
  approx "potential 1+2+3 + 1" 7.0 (C.potential t state);
  approx "player 2's latency" 1.0 (C.player_latency t state 2)

let test_identical_split_is_nash () =
  let t = two_identical 4 in
  let nash = C.nash t in
  Alcotest.(check (array int)) "even split" [| 2; 2 |] (C.loads t nash);
  check_true "equilibrium" (C.is_equilibrium t nash);
  approx "PoA 1 on identical links" 1.0 (C.price_of_anarchy t)

let test_discrete_pigou () =
  (* ℓ1 = x, ℓ2 = const 2.5, three players: the selfish outcome piles all
     three on link 1 (latency 3 > 2.5 — wait, a player on load-3 link
     would move to latency 2.5): equilibrium loads are (2, 1) or (3, 0)?
     From load (3,0): a player sees 3 vs 2.5 -> moves: (2,1): 2 vs
     joining const 2.5: stays; the const player sees 2.5 vs joining link1
     at 3: stays. Equilibrium (2,1), cost 2·2 + 2.5 = 6.5. *)
  let t = C.make [| L.linear 1.0; L.constant 2.5 |] ~players:3 in
  let nash = C.nash t in
  Alcotest.(check (array int)) "equilibrium loads" [| 2; 1 |] (C.loads t nash);
  approx "C(N)" 6.5 (C.social_cost t nash);
  (* Optimum: loads (1,2) cost 1 + 5 = 6, or (2,1) cost 6.5, or (3,0)
     cost 9: DP must find (1,2). *)
  Alcotest.(check (array int)) "optimum loads" [| 1; 2 |] (C.optimum_loads t);
  approx "C(O)" 6.0 (C.optimum_cost t)

let test_equilibrium_checker_rejects () =
  let t = C.make [| L.linear 1.0; L.constant 2.5 |] ~players:3 in
  check_true "all-on-link-1 is not an equilibrium"
    (not (C.is_equilibrium t [| 0; 0; 0 |]))

let test_dynamics_terminate_and_decrease_potential () =
  let t = C.make [| L.linear 1.0; L.affine ~slope:0.5 ~intercept:0.4; L.constant 1.9 |] ~players:6 in
  let start = [| 0; 0; 0; 0; 0; 0 |] in
  let phi0 = C.potential t start in
  let final, steps = C.best_response_dynamics t start in
  check_true "terminates" (steps < 1_000_000);
  check_true "equilibrium" (C.is_equilibrium t final);
  approx_le "potential decreased" (C.potential t final) (phi0 +. 1e-9)

let test_stackelberg_llf_full_control_is_optimal () =
  let t = C.make [| L.linear 1.0; L.constant 2.5 |] ~players:3 in
  let state = C.stackelberg_llf t ~controlled:3 in
  approx "full control = optimum" (C.optimum_cost t) (C.social_cost t state)

let test_stackelberg_llf_partial () =
  let t = C.make [| L.linear 1.0; L.constant 2.5 |] ~players:3 in
  (* Controlling one player: pin it on the slowest optimal link (the
     constant, latency 2.5 > ℓ1(1) = 1): free players then best-respond.
     Loads become (2, 1)... the same equilibrium, but controlling two
     players pins both const users: loads (1, 2) = optimum. *)
  let one = C.stackelberg_llf t ~controlled:1 in
  let two = C.stackelberg_llf t ~controlled:2 in
  approx_le "k=1 no worse than Nash" (C.social_cost t one) (C.social_cost t (C.nash t) +. 1e-9);
  approx "k=2 reaches the optimum" (C.optimum_cost t) (C.social_cost t two)

let test_llf_validation () =
  let t = two_identical 3 in
  match C.stackelberg_llf t ~controlled:7 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "controlled > players rejected"

let random_game seed =
  let rng = Prng.create seed in
  let m = 2 + Prng.int rng 3 and n = 2 + Prng.int rng 6 in
  let lats =
    Array.init m (fun _ ->
        match Prng.int rng 3 with
        | 0 ->
            L.affine ~slope:(Prng.uniform rng ~lo:0.2 ~hi:2.0)
              ~intercept:(Prng.uniform rng ~lo:0.0 ~hi:2.0)
        | 1 -> L.monomial ~coeff:(Prng.uniform rng ~lo:0.5 ~hi:1.5) ~degree:(1 + Prng.int rng 2)
        | _ -> L.constant (Prng.uniform rng ~lo:0.5 ~hi:3.0))
  in
  C.make lats ~players:n

let prop_nash_is_equilibrium =
  qcheck ~count:60 "greedy + dynamics reaches a pure equilibrium" QCheck.small_nat (fun seed ->
      let t = random_game (seed + 1) in
      C.is_equilibrium t (C.nash t))

let prop_optimum_beats_equilibrium =
  qcheck ~count:60 "C(O) <= C(N)" QCheck.small_nat (fun seed ->
      let t = random_game (seed + 1) in
      C.optimum_cost t <= C.social_cost t (C.nash t) +. 1e-9)

let prop_optimum_beats_random_states =
  qcheck ~count:40 "DP optimum beats random assignments" QCheck.small_nat (fun seed ->
      let t = random_game (seed + 1) in
      let rng = Prng.create (seed + 777) in
      let m = Array.length t.C.latencies in
      let ok = ref true in
      for _ = 1 to 20 do
        let state = Array.init t.C.players (fun _ -> Prng.int rng m) in
        if C.social_cost t state < C.optimum_cost t -. 1e-9 then ok := false
      done;
      !ok)

let prop_full_control_is_optimal =
  qcheck ~count:40 "LLF with all players controlled achieves C(O)" QCheck.small_nat
    (fun seed ->
      let t = random_game (seed + 1) in
      let state = C.stackelberg_llf t ~controlled:t.C.players in
      Float.abs (C.social_cost t state -. C.optimum_cost t) <= 1e-9)

let prop_continuous_relaxation_lower_bounds =
  (* Consistency across models: the splittable optimum of the same
     latencies and total demand can only be cheaper than the integral
     optimum. *)
  qcheck ~count:40 "splittable optimum <= unsplittable optimum" QCheck.small_nat (fun seed ->
      let t = random_game (seed + 1) in
      let cont =
        Sgr_links.Links.make t.C.latencies ~demand:(float_of_int t.C.players)
      in
      let c_cont = Sgr_links.Links.cost cont (Sgr_links.Links.opt cont).assignment in
      c_cont <= C.optimum_cost t +. 1e-9)

let prop_moves_decrease_potential =
  (* The defining property of an exact potential game: a unilateral move
     changes the potential by exactly the mover's latency change. *)
  qcheck ~count:60 "unilateral deviations shift Φ by the latency delta" QCheck.small_nat
    (fun seed ->
      let t = random_game (seed + 1) in
      let rng = Prng.create (seed + 997) in
      let m = Array.length t.C.latencies in
      let state = Array.init t.C.players (fun _ -> Prng.int rng m) in
      let p = Prng.int rng t.C.players in
      let j = Prng.int rng m in
      if j = state.(p) then true
      else begin
        let phi_before = C.potential t state in
        let lat_before = C.player_latency t state p in
        let state' = Array.copy state in
        state'.(p) <- j;
        let phi_after = C.potential t state' in
        let lat_after = C.player_latency t state' p in
        Float.abs (phi_after -. phi_before -. (lat_after -. lat_before)) <= 1e-9
      end)

let suite =
  [
    case "validation" test_make_validation;
    case "loads, cost, potential" test_loads_and_cost;
    case "identical links: even split" test_identical_split_is_nash;
    case "discrete pigou: nash vs optimum" test_discrete_pigou;
    case "equilibrium checker" test_equilibrium_checker_rejects;
    case "dynamics terminate, potential decreases" test_dynamics_terminate_and_decrease_potential;
    case "llf: full control = optimum" test_stackelberg_llf_full_control_is_optimal;
    case "llf: partial control" test_stackelberg_llf_partial;
    case "llf: validation" test_llf_validation;
    prop_nash_is_equilibrium;
    prop_optimum_beats_equilibrium;
    prop_optimum_beats_random_states;
    prop_full_control_is_optimal;
    prop_continuous_relaxation_lower_bounds;
    prop_moves_decrease_potential;
  ]
