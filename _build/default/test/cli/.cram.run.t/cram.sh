  $ sgr catalog
  $ sgr catalog pigou
  $ sgr catalog pigou > pigou.sgr
  $ sgr catalog fig456 > fig456.sgr
  $ sgr catalog fig7 > fig7.sgr
  $ sgr catalog braess > braess.sgr
  $ sgr solve pigou.sgr
  $ sgr optop pigou.sgr
  $ sgr optop fig456.sgr --trace
  $ sgr mop fig7.sgr
  $ sgr mop braess.sgr | head -2
  $ sgr llf pigou.sgr --alpha 0.5
  $ sgr scale pigou.sgr --alpha 0.5
  $ cat > hard.sgr <<'EOF'
  > links
  > demand 1.0
  > link x
  > link x + 1
  > EOF
  $ sgr thm24 hard.sgr --alpha 0.1
  $ sgr sweep pigou.sgr --samples 5 --csv
  $ sgr bound pigou.sgr
  $ sgr profile pigou.sgr --from 0.5 --to 2.0 --samples 4 --csv
  $ sgr info pigou.sgr
  $ sgr info fig7.sgr
  $ sgr tolls pigou.sgr
  $ sgr tolls braess.sgr
  $ sgr random common-slope --seed 3 --size 3 > r1.sgr
  $ sgr random common-slope --seed 3 --size 3 > r2.sgr
  $ diff r1.sgr r2.sgr
  $ sgr solve /nonexistent.sgr
  $ cat > bad.sgr <<'EOF'
  > links
  > demand 1.0
  > link zebra
  > EOF
  $ sgr solve bad.sgr
  $ sgr optop fig7.sgr
