(* Tests for atomic splittable routing on networks and for marginal-cost
   tolls — the two neighbours of the paper's model (finite players;
   first-best pricing). *)

open Helpers
module AN = Sgr_atomic.Atomic_net
module Tolls = Stackelberg.Tolls
module Net = Sgr_network.Network
module Eq = Sgr_network.Equilibrate
module Obj = Sgr_network.Objective
module Links = Sgr_links.Links
module W = Sgr_workloads.Workloads
module Prng = Sgr_numerics.Prng
module Vec = Sgr_numerics.Vec

(* ---- atomic networks ---- *)

let test_replicate_validation () =
  (match AN.replicate (W.two_commodity ()) ~players:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "multicommodity replicate rejected");
  match AN.replicate (W.fig7 ()) ~players:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero players rejected"

let test_single_player_is_optimum () =
  let t = AN.replicate (W.braess_classic ()) ~players:1 in
  let profile, _ = AN.equilibrium t in
  approx ~eps:1e-5 "monopolist cost = C(O) = 3/2" 1.5 (AN.social_cost t profile);
  check_true "verified" (AN.is_equilibrium t profile)

let test_braess_interpolation () =
  (* Atomic Braess: the equilibrium cost climbs from C(O) = 3/2 toward
     the Wardrop cost 2 as the players multiply. *)
  let cost n =
    let t = AN.replicate (W.braess_classic ()) ~players:n in
    let profile, _ = AN.equilibrium t in
    AN.social_cost t profile
  in
  let c1 = cost 1 and c2 = cost 2 and c8 = cost 8 in
  approx ~eps:1e-5 "n=1 optimal" 1.5 c1;
  check_true "monotone toward Wardrop" (c1 <= c2 +. 1e-7 && c2 <= c8 +. 1e-7);
  check_true "strictly below Wardrop" (c8 < 2.0 +. 1e-7)

let test_convergence_to_wardrop_net () =
  let net = W.fig7 () in
  let wardrop = (Eq.solve Obj.Wardrop net).Eq.edge_flow in
  let dist n =
    let t = AN.replicate net ~players:n in
    let profile, _ = AN.equilibrium t in
    Vec.linf_dist (AN.total_load t profile) wardrop
  in
  let d2 = dist 2 and d16 = dist 16 in
  (* O(1/n) convergence: doubling the players three times should shrink
     the gap by well over half (measured: 0.31 -> 0.054). *)
  check_true "distance shrinks by > 2x" (d16 < 0.5 *. d2);
  check_true "close at n=16" (d16 < 0.08)

let test_two_commodity_players () =
  (* Each commodity of the 2-commodity instance as one atomic player. *)
  let t = AN.make (W.two_commodity ()) in
  let profile, rounds = AN.equilibrium t in
  check_true "converged" (rounds < 2_000);
  check_true "equilibrium verified" (AN.is_equilibrium t profile);
  let cost = AN.social_cost t profile in
  let opt = Eq.solve Obj.System_optimum (W.two_commodity ()) in
  let nash = Eq.solve Obj.Wardrop (W.two_commodity ()) in
  let co = Net.cost (W.two_commodity ()) opt.Eq.edge_flow in
  let cn = Net.cost (W.two_commodity ()) nash.Eq.edge_flow in
  check_true "between optimum and Wardrop" (co -. 1e-6 <= cost && cost <= cn +. 1e-6)

let test_player_cost_sums () =
  let t = AN.replicate (W.fig7 ()) ~players:3 in
  let profile, _ = AN.equilibrium t in
  let total = AN.player_cost t profile 0 +. AN.player_cost t profile 1 +. AN.player_cost t profile 2 in
  approx ~eps:1e-6 "player costs sum to social cost" (AN.social_cost t profile) total

(* ---- tolls ---- *)

let test_tolls_pigou () =
  let tolls = Tolls.links_tolls W.pigou in
  approx "toll on the linear link = o·ℓ' = 1/2" 0.5 tolls.(0);
  approx "no toll on the constant link" 0.0 tolls.(1);
  let eq, cost = Tolls.links_outcome W.pigou in
  approx_array "tolled equilibrium = optimum" [| 0.5; 0.5 |] eq;
  approx "latency cost = C(O)" 0.75 cost

let test_tolls_fig456 () =
  let eq, cost = Tolls.links_outcome W.fig456 in
  let opt = (Links.opt W.fig456).assignment in
  approx_array ~eps:1e-5 "tolled equilibrium = optimum" opt eq;
  approx ~eps:1e-6 "cost = C(O)" (Links.cost W.fig456 opt) cost

let test_tolls_braess () =
  (* First-best tolls fix the Braess paradox outright (β = 1 for the
     Stackelberg Leader, yet two numbers suffice as tolls). *)
  let net = W.braess_classic () in
  let _, cost = Tolls.network_outcome net in
  approx ~eps:1e-5 "tolled cost = C(O) = 3/2" 1.5 cost

let test_tolls_fig7 () =
  let net = W.fig7 () in
  let flow, cost = Tolls.network_outcome net in
  let opt = Eq.solve Obj.System_optimum net in
  approx ~eps:1e-4 "cost = C(O)" (Net.cost net opt.Eq.edge_flow) cost;
  check_true "flow = O" (Vec.linf_dist flow opt.Eq.edge_flow <= 1e-3)

let prop_tolls_induce_optimum_links =
  qcheck ~count:40 "marginal-cost tolls induce the optimum on random links" QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (seed + 1) in
      let t =
        match Prng.int rng 2 with
        | 0 -> W.random_affine_links rng ~m:(2 + Prng.int rng 6) ~demand:1.0 ()
        | _ -> W.random_polynomial_links rng ~m:(2 + Prng.int rng 6) ~demand:1.0 ()
      in
      let _, cost = Tolls.links_outcome t in
      let opt_cost = Links.cost t (Links.opt t).assignment in
      Sgr_numerics.Tolerance.approx ~eps:1e-5 cost opt_cost)

let prop_tolls_induce_optimum_networks =
  qcheck ~count:15 "marginal-cost tolls induce the optimum on random networks" QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (seed + 50) in
      let net =
        W.random_layered_network rng ~layers:(1 + Prng.int rng 2) ~width:(1 + Prng.int rng 2) ()
      in
      let _, cost = Tolls.network_outcome net in
      let opt = Eq.solve Obj.System_optimum net in
      Sgr_numerics.Tolerance.approx ~eps:1e-4 cost (Net.cost net opt.Eq.edge_flow))

let suite =
  [
    case "atomic net: validation" test_replicate_validation;
    case "atomic net: monopolist = optimum" test_single_player_is_optimum;
    case "atomic net: braess interpolation" test_braess_interpolation;
    case "atomic net: convergence to Wardrop" test_convergence_to_wardrop_net;
    case "atomic net: 2 commodities as players" test_two_commodity_players;
    case "atomic net: cost accounting" test_player_cost_sums;
    case "tolls: pigou" test_tolls_pigou;
    case "tolls: fig4-6" test_tolls_fig456;
    case "tolls: braess paradox fixed" test_tolls_braess;
    case "tolls: fig7" test_tolls_fig7;
    prop_tolls_induce_optimum_links;
    prop_tolls_induce_optimum_networks;
  ]
