(* Shared Alcotest/QCheck helpers for the suites. *)

let approx ?(eps = 1e-6) msg expected actual =
  if not (Sgr_numerics.Tolerance.approx ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g (eps %.1g)" msg expected actual eps

let approx_le ?(eps = 1e-6) msg a b =
  if not (Sgr_numerics.Tolerance.approx_le ~eps a b) then
    Alcotest.failf "%s: expected %.12g <= %.12g (eps %.1g)" msg a b eps

let approx_array ?(eps = 1e-6) msg expected actual =
  if Array.length expected <> Array.length actual then
    Alcotest.failf "%s: length mismatch %d vs %d" msg (Array.length expected)
      (Array.length actual);
  Array.iteri
    (fun i e ->
      if not (Sgr_numerics.Tolerance.approx ~eps e actual.(i)) then
        Alcotest.failf "%s: index %d: expected %.12g, got %.12g" msg i e actual.(i))
    expected

let check_true msg b = Alcotest.(check bool) msg true b
let case name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
