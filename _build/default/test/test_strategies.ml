(* Tests for the baseline strategies (LLF, SCALE, Aloof) and the published
   guarantees the paper quotes for them. *)

open Helpers
module Links = Sgr_links.Links
module S = Stackelberg.Strategies
module Bounds = Stackelberg.Bounds
module W = Sgr_workloads.Workloads
module Prng = Sgr_numerics.Prng
module Vec = Sgr_numerics.Vec
module L = Sgr_latency.Latency

let test_aloof_is_nash () =
  let o = S.aloof W.pigou in
  approx "aloof = C(N)" 1.0 o.induced_cost;
  approx "ratio = PoA" (4.0 /. 3.0) o.ratio_to_opt

let test_llf_budget () =
  let o = S.llf W.fig456 ~alpha:0.3 in
  approx "spends αr" 0.3 (Vec.sum o.strategy)

let test_llf_order () =
  (* LLF saturates the slowest-at-optimum links first. In fig456, the
     largest optimal latency is ℓ5(o5) = 0.7 = ℓ4(o4)... all links have
     latency <= level at optimum; check that the budget lands on the
     highest-latency links. *)
  let instance = W.fig456 in
  let opt = (Links.opt instance).assignment in
  let o = S.llf instance ~alpha:0.2 in
  (* Budget 0.2 covers the top-latency links first; whatever they are,
     every fully-saturated link must have latency >= any untouched one. *)
  let lat i = Sgr_latency.Latency.eval instance.Links.latencies.(i) opt.(i) in
  let saturated i = Sgr_numerics.Tolerance.approx o.strategy.(i) opt.(i) && opt.(i) > 0.0 in
  let untouched i = o.strategy.(i) = 0.0 in
  Array.iteri
    (fun i _ ->
      Array.iteri
        (fun j _ ->
          if saturated i && untouched j then
            check_true "LLF order respected" (lat i >= lat j -. 1e-9))
        o.strategy)
    o.strategy

let test_llf_alpha_one_is_optimum () =
  let o = S.llf W.fig456 ~alpha:1.0 in
  approx "full control = optimum" 1.0 o.ratio_to_opt

let test_llf_alpha_beta_reaches_optimum_pigou () =
  (* On Pigou, LLF with α = β = 1/2 already induces the optimum: the
     largest-latency link is the constant one and o2 = 1/2 = αr. *)
  let o = S.llf W.pigou ~alpha:0.5 in
  approx "ratio 1" 1.0 o.ratio_to_opt

let test_scale_pigou () =
  let o = S.scale W.pigou ~alpha:0.5 in
  (* SCALE puts 1/4 on each link; followers flood link 1 again. *)
  approx_array "strategy" [| 0.25; 0.25 |] o.strategy;
  check_true "scale does not reach optimum here" (o.ratio_to_opt > 1.0 +. 1e-6)

let test_alpha_validation () =
  match S.llf W.pigou ~alpha:1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "alpha > 1 rejected"

let test_bounds_values () =
  approx "1/α" 4.0 (Bounds.one_over_alpha 0.25);
  check_true "1/0 = ∞" (Bounds.one_over_alpha 0.0 = Float.infinity);
  approx "4/(3+α) at 1" 1.0 (Bounds.linear_llf 1.0);
  approx "4/(3+α) at 0 = PoA bound" Bounds.poa_linear (Bounds.linear_llf 0.0);
  approx "poly PoA degree 1" (4.0 /. 3.0) (Bounds.poa_polynomial 1);
  check_true "poly PoA grows with degree"
    (Bounds.poa_polynomial 4 > Bounds.poa_polynomial 2)

let test_pigou_bound_closed_forms () =
  approx ~eps:1e-4 "linear latency -> 4/3" (4.0 /. 3.0)
    (Bounds.pigou_bound (L.linear 2.0));
  let affine_bound = Bounds.pigou_bound (L.affine ~slope:1.0 ~intercept:0.5) in
  check_true "affine bound in [1, 4/3]"
    (1.0 <= affine_bound && affine_bound <= (4.0 /. 3.0) +. 1e-6);
  List.iter
    (fun d ->
      approx ~eps:1e-3
        (Printf.sprintf "x^%d -> anarchy value" d)
        (Bounds.poa_polynomial d)
        (Bounds.pigou_bound (L.monomial ~coeff:1.0 ~degree:d)))
    [ 1; 2; 3 ];
  approx ~eps:1e-4 "constants are harmless" 1.0 (Bounds.pigou_bound (L.constant 1.0))

let prop_poa_below_pigou_bound =
  (* Roughgarden: the price of anarchy never exceeds the worst Pigou
     bound among the instance's latencies, whatever the topology — here
     on random parallel-link instances with demand within r_max. *)
  qcheck ~count:40 "PoA <= max link Pigou bound" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let t =
        match Prng.int rng 2 with
        | 0 -> W.random_affine_links rng ~m:(2 + Prng.int rng 5) ~demand:1.0 ()
        | _ -> W.random_polynomial_links rng ~m:(2 + Prng.int rng 5) ~demand:1.0 ()
      in
      let bound =
        Array.fold_left
          (fun acc lat -> Float.max acc (Bounds.pigou_bound ~r_max:2.0 lat))
          1.0 t.Links.latencies
      in
      Links.price_of_anarchy t <= bound +. 1e-4)

let random_affine seed =
  let rng = Prng.create seed in
  W.random_affine_links rng ~m:(2 + Prng.int rng 6) ~demand:(Prng.uniform rng ~lo:0.5 ~hi:3.0) ()

let random_any seed =
  let rng = Prng.create seed in
  match Prng.int rng 3 with
  | 0 -> W.random_affine_links rng ~m:(2 + Prng.int rng 6) ~demand:(Prng.uniform rng ~lo:0.5 ~hi:3.0) ()
  | 1 ->
      W.random_polynomial_links rng ~m:(2 + Prng.int rng 6)
        ~demand:(Prng.uniform rng ~lo:0.5 ~hi:3.0) ()
  | _ -> W.random_mm1_links rng ~m:(2 + Prng.int rng 6) ~demand:(Prng.uniform rng ~lo:0.5 ~hi:3.0) ()

let alphas = [ 0.1; 0.25; 0.5; 0.75; 0.9 ]

let prop_llf_one_over_alpha =
  qcheck ~count:60 "LLF guarantee C(S+T) <= (1/α)·C(O)" QCheck.small_nat (fun seed ->
      let t = random_any (seed + 1) in
      List.for_all
        (fun alpha ->
          let o = S.llf t ~alpha in
          o.ratio_to_opt <= Bounds.one_over_alpha alpha +. 1e-6)
        alphas)

let prop_llf_linear_bound =
  qcheck ~count:60 "LLF guarantee 4/(3+α) on affine instances" QCheck.small_nat (fun seed ->
      let t = random_affine (seed + 1) in
      List.for_all
        (fun alpha ->
          let o = S.llf t ~alpha in
          o.ratio_to_opt <= Bounds.linear_llf alpha +. 1e-6)
        alphas)

let prop_ratio_at_least_one =
  qcheck "no strategy beats the optimum" QCheck.small_nat (fun seed ->
      let t = random_any (seed + 1) in
      List.for_all
        (fun alpha ->
          (S.llf t ~alpha).ratio_to_opt >= 1.0 -. 1e-6
          && (S.scale t ~alpha).ratio_to_opt >= 1.0 -. 1e-6)
        [ 0.3; 0.7 ])

let prop_llf_at_least_beta_reaches_optimum =
  qcheck ~count:60 "LLF with α >= β induces exactly C(O)" QCheck.small_nat (fun seed ->
      let t = random_any (seed + 1) in
      let beta = Stackelberg.Optop.beta t in
      (* LLF saturates optimal loads from the largest latency down; with
         budget at least β·r it covers every under-loaded link (they all
         sit at the top of the latency order at the optimum level). *)
      let o = S.llf t ~alpha:(Float.min 1.0 (beta +. 1e-9)) in
      Sgr_numerics.Tolerance.approx ~eps:1e-4 o.ratio_to_opt 1.0)

let prop_aloof_matches_nash_cost =
  qcheck "aloof cost equals C(N)" QCheck.small_nat (fun seed ->
      let t = random_any (seed + 1) in
      let o = S.aloof t in
      let nash_cost = Links.cost t (Links.nash t).assignment in
      Sgr_numerics.Tolerance.approx ~eps:1e-6 o.induced_cost nash_cost)

let suite =
  [
    case "aloof = plain Nash" test_aloof_is_nash;
    case "llf: spends the budget" test_llf_budget;
    case "llf: saturation order" test_llf_order;
    case "llf: α = 1 gives the optimum" test_llf_alpha_one_is_optimum;
    case "llf: α = β on pigou" test_llf_alpha_beta_reaches_optimum_pigou;
    case "scale: pigou" test_scale_pigou;
    case "alpha validation" test_alpha_validation;
    case "bounds: closed forms" test_bounds_values;
    case "pigou bound: closed forms" test_pigou_bound_closed_forms;
    prop_poa_below_pigou_bound;
    prop_llf_one_over_alpha;
    prop_llf_linear_bound;
    prop_ratio_at_least_one;
    prop_llf_at_least_beta_reaches_optimum;
    prop_aloof_matches_nash_cost;
  ]
