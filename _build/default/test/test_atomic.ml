(* Tests for the atomic splittable game: exact best responses, equilibrium
   convergence, the single-player = optimum and many-players = Wardrop
   limits, and the classical two-player Pigou equilibrium. *)

open Helpers
module A = Sgr_atomic.Atomic_links
module Links = Sgr_links.Links
module L = Sgr_latency.Latency
module W = Sgr_workloads.Workloads
module Prng = Sgr_numerics.Prng
module Vec = Sgr_numerics.Vec

let pigou_lats () = [| L.linear 1.0; L.constant 1.0 |]

let test_make_validation () =
  (match A.make [||] ~demands:[| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no links rejected");
  match A.make (pigou_lats ()) ~demands:[| -1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative demand rejected"

let test_single_player_is_optimum () =
  (* One player owning everything routes at the system optimum. *)
  let t = A.make (pigou_lats ()) ~demands:[| 1.0 |] in
  let profile, _ = A.equilibrium t in
  approx_array "monopolist = optimum" [| 0.5; 0.5 |] profile.(0);
  approx "cost = C(O)" 0.75 (A.social_cost t profile)

let test_two_player_pigou () =
  (* Two symmetric players on Pigou: each equalizes its own marginal
     ℓ(X) + x_k ℓ'(X) across links; by symmetry x_k = X/2, so on the
     linear link X + X/2 = 1 at an interior equilibrium: X = 2/3,
     each player splits (1/3, 1/6). *)
  let t = A.split_evenly (pigou_lats ()) ~total:1.0 ~players:2 in
  let profile, _ = A.equilibrium t in
  let load = A.total_load t profile in
  approx ~eps:1e-6 "linear link total 2/3" (2.0 /. 3.0) load.(0);
  approx ~eps:1e-6 "each player 1/3" (1.0 /. 3.0) profile.(0).(0);
  check_true "verified equilibrium" (A.is_equilibrium t profile);
  (* Social cost between C(O) and C(N). *)
  let cost = A.social_cost t profile in
  check_true "between optimum and Wardrop" (0.75 -. 1e-9 <= cost && cost <= 1.0 +. 1e-9)

let test_equilibrium_costs_ordered () =
  (* More players = more selfishness: social cost is nondecreasing in the
     number of players on Pigou. *)
  let costs =
    List.map
      (fun n ->
        let t = A.split_evenly (pigou_lats ()) ~total:1.0 ~players:n in
        let profile, _ = A.equilibrium t in
        A.social_cost t profile)
      [ 1; 2; 4; 8 ]
  in
  let rec chk = function
    | a :: (b :: _ as rest) ->
        approx_le "nondecreasing" a (b +. 1e-9);
        chk rest
    | _ -> ()
  in
  chk costs

let test_convergence_to_wardrop () =
  (* The classical limit: evenly split atomic players approach the
     nonatomic Wardrop equilibrium. *)
  let lats = pigou_lats () in
  let wardrop = (Links.nash (Links.make lats ~demand:1.0)).assignment in
  let dist n =
    let t = A.split_evenly lats ~total:1.0 ~players:n in
    let profile, _ = A.equilibrium t in
    Vec.linf_dist (A.total_load t profile) wardrop
  in
  (* Closed form on Pigou: total load on the linear link is n/(n+1), so
     the gap to the Wardrop load 1 is exactly 1/(n+1). *)
  List.iter
    (fun n -> approx ~eps:1e-5 (Printf.sprintf "gap = 1/(n+1) at n=%d" n)
        (1.0 /. float_of_int (n + 1)) (dist n))
    [ 2; 4; 8; 32 ];
  check_true "distance shrinks" (dist 32 < dist 4)

let test_best_response_optimality () =
  (* The analytic best response on Pigou vs an opponent playing (0.3, 0.2):
     minimize x(0.3+x) + (0.5-x): derivative 0.3 + 2x - 1 = 0 -> x = 0.35. *)
  let t = A.make (pigou_lats ()) ~demands:[| 0.5; 0.5 |] in
  let profile = [| [| 0.0; 0.0 |]; [| 0.3; 0.2 |] |] in
  let br = A.best_response t profile ~player:0 in
  approx ~eps:1e-6 "interior best response" 0.35 br.(0);
  approx ~eps:1e-6 "rest on constant link" 0.15 br.(1)

let test_asymmetric_players () =
  let t = A.make (pigou_lats ()) ~demands:[| 0.75; 0.25 |] in
  let profile, _ = A.equilibrium t in
  check_true "equilibrium verified" (A.is_equilibrium t profile);
  (* The larger player internalizes more congestion: its share on the
     congestible link is proportionally smaller. *)
  let big_ratio = profile.(0).(0) /. 0.75 and small_ratio = profile.(1).(0) /. 0.25 in
  check_true "big player shades the congested link" (big_ratio <= small_ratio +. 1e-9)

let test_player_cost_accounting () =
  let t = A.split_evenly (pigou_lats ()) ~total:1.0 ~players:2 in
  let profile, _ = A.equilibrium t in
  let total = A.player_cost t profile 0 +. A.player_cost t profile 1 in
  approx "player costs sum to the social cost" (A.social_cost t profile) total

let random_lats rng m =
  Array.init m (fun _ ->
      match Prng.int rng 3 with
      | 0 ->
          L.affine ~slope:(Prng.uniform rng ~lo:0.3 ~hi:2.0)
            ~intercept:(Prng.uniform rng ~lo:0.0 ~hi:1.0)
      | 1 -> L.monomial ~coeff:(Prng.uniform rng ~lo:0.5 ~hi:1.5) ~degree:(1 + Prng.int rng 2)
      | _ -> L.constant (Prng.uniform rng ~lo:0.5 ~hi:1.5))

let prop_best_response_dynamics_converge =
  qcheck ~count:25 "best-response dynamics reach a verified equilibrium" QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (seed + 1) in
      let m = 2 + Prng.int rng 3 and n = 1 + Prng.int rng 4 in
      let t =
        A.make (random_lats rng m)
          ~demands:(Array.init n (fun _ -> Prng.uniform rng ~lo:0.1 ~hi:1.0))
      in
      let profile, rounds = A.equilibrium t in
      rounds < 10_000 && A.is_equilibrium ~eps:1e-5 t profile)

let prop_atomic_cost_at_least_optimum =
  qcheck ~count:25 "atomic equilibrium costs at least the optimum" QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (seed + 100) in
      let m = 2 + Prng.int rng 3 and n = 1 + Prng.int rng 4 in
      let lats = random_lats rng m in
      let demands = Array.init n (fun _ -> Prng.uniform rng ~lo:0.1 ~hi:1.0) in
      let t = A.make lats ~demands in
      let profile, _ = A.equilibrium t in
      let total = Array.fold_left ( +. ) 0.0 demands in
      let opt_cost =
        let inst = Links.make lats ~demand:total in
        Links.cost inst (Links.opt inst).assignment
      in
      A.social_cost t profile >= opt_cost -. (1e-6 *. Float.max 1.0 opt_cost))

let suite =
  [
    case "validation" test_make_validation;
    case "single player = optimum" test_single_player_is_optimum;
    case "two players on pigou (closed form)" test_two_player_pigou;
    case "social cost nondecreasing in players" test_equilibrium_costs_ordered;
    case "convergence to Wardrop" test_convergence_to_wardrop;
    case "best response (closed form)" test_best_response_optimality;
    case "asymmetric players" test_asymmetric_players;
    case "player cost accounting" test_player_cost_accounting;
    prop_best_response_dynamics_converge;
    prop_atomic_cost_at_least_optimum;
  ]
