(* Tests for Theorem 2.4: the polynomial-time optimal strategy on hard
   instances (alpha < beta) with common-slope linear latencies. The gold
   standard is the brute-force grid search on small instances. *)

open Helpers
module Links = Sgr_links.Links
module LE = Stackelberg.Linear_exact
module L = Sgr_latency.Latency
module W = Sgr_workloads.Workloads
module Prng = Sgr_numerics.Prng
module Vec = Sgr_numerics.Vec

let two_links =
  (* ℓ1 = x, ℓ2 = x + 1, r = 1. Nash: all on link 1 (L = 1). Optimum:
     marginals 2x = 2x+1 -> o = (3/4, 1/4), C(O) = 9/16 + 1/4·5/4 = 0.875.
     OpTop: link 2 under-loaded, β = 1/4. *)
  Links.make [| L.linear 1.0; L.affine ~slope:1.0 ~intercept:1.0 |] ~demand:1.0

let test_class_detection () =
  check_true "common slope" (LE.is_common_slope two_links);
  check_true "different slopes rejected" (not (LE.is_common_slope W.fig456));
  check_true "pigou has slope 0 constant" (not (LE.is_common_slope W.pigou))

let test_two_links_beta () =
  approx "β = 1/4" 0.25 (Stackelberg.Optop.beta two_links)

let test_alpha_at_beta_reaches_optimum () =
  let r = LE.solve two_links ~alpha:0.25 in
  approx ~eps:1e-5 "C(O) reached at α = β" 0.875 r.induced_cost

let test_strategy_feasible () =
  let alpha = 0.15 in
  let r = LE.solve two_links ~alpha in
  check_true "nonneg" (Vec.all_nonneg r.strategy);
  approx_le "budget respected" (Vec.sum r.strategy) (alpha +. 1e-9)

let test_predicted_matches_induced () =
  List.iter
    (fun alpha ->
      let r = LE.solve two_links ~alpha in
      approx ~eps:1e-5
        (Printf.sprintf "prediction consistent at α=%.2f" alpha)
        r.predicted_cost r.induced_cost)
    [ 0.05; 0.1; 0.15; 0.2; 0.24 ]

let test_two_links_vs_brute_force () =
  List.iter
    (fun alpha ->
      let exact = LE.solve two_links ~alpha in
      let bf = Stackelberg.Brute_force.optimal_strategy ~resolution:60 two_links ~alpha in
      (* The grid is coarse: exact must be no worse, and close. *)
      approx_le
        (Printf.sprintf "exact <= grid at α=%.2f" alpha)
        exact.induced_cost (bf.induced_cost +. 1e-9);
      approx ~eps:2e-3
        (Printf.sprintf "exact ≈ grid at α=%.2f" alpha)
        bf.induced_cost exact.induced_cost)
    [ 0.05; 0.1; 0.2 ]

let test_rejects_wrong_class () =
  match LE.solve W.fig456 ~alpha:0.1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-common-slope instance must be rejected"

let test_rejects_bad_alpha () =
  match LE.solve two_links ~alpha:1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "alpha > 1 must be rejected"

let test_alpha_zero_gives_nash () =
  let r = LE.solve two_links ~alpha:0.0 in
  let nash_cost = Links.cost two_links (Links.nash two_links).assignment in
  approx "α = 0 induces C(N)" nash_cost r.induced_cost

let test_monotone_in_alpha () =
  (* More control can never hurt: optimal induced cost is nonincreasing. *)
  let costs =
    List.map (fun alpha -> (LE.solve two_links ~alpha).induced_cost)
      [ 0.0; 0.05; 0.1; 0.15; 0.2; 0.25 ]
  in
  let rec chk = function
    | a :: (b :: _ as rest) ->
        approx_le "nonincreasing in α" b (a +. 1e-7);
        chk rest
    | _ -> ()
  in
  chk costs

let prop_matches_brute_force =
  qcheck ~count:20 "Thm 2.4 solver matches grid search on random instances" QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (seed + 1) in
      let m = 2 + Prng.int rng 2 in
      let t = W.random_common_slope_links rng ~m ~demand:1.0 () in
      let beta = Stackelberg.Optop.beta t in
      if beta < 0.05 then true
      else begin
        let alpha = Prng.uniform rng ~lo:0.02 ~hi:beta in
        let exact = LE.solve t ~alpha in
        let bf = Stackelberg.Brute_force.optimal_strategy ~resolution:40 t ~alpha in
        (* Exact must not lose to the grid, and must be near it. *)
        exact.induced_cost <= bf.induced_cost +. 1e-7
        && bf.induced_cost -. exact.induced_cost <= 5e-3 *. Float.max 1.0 bf.induced_cost
      end)

let prop_never_below_optimum =
  qcheck ~count:40 "induced cost stays >= C(O)" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let t = W.random_common_slope_links rng ~m:(2 + Prng.int rng 4) ~demand:1.0 () in
      let alpha = Prng.uniform rng ~lo:0.0 ~hi:1.0 in
      let r = LE.solve t ~alpha in
      let opt_cost = Links.cost t (Links.opt t).assignment in
      r.induced_cost >= opt_cost -. (1e-6 *. Float.max 1.0 opt_cost))

let prop_alpha_ge_beta_reaches_optimum =
  qcheck ~count:30 "α >= β recovers the optimum cost" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let t = W.random_common_slope_links rng ~m:(2 + Prng.int rng 4) ~demand:1.0 () in
      let beta = Stackelberg.Optop.beta t in
      let alpha = Float.min 1.0 (beta +. 0.05) in
      let r = LE.solve t ~alpha in
      let opt_cost = Links.cost t (Links.opt t).assignment in
      Sgr_numerics.Tolerance.approx ~eps:1e-4 r.induced_cost opt_cost)

let suite =
  [
    case "class detection" test_class_detection;
    case "two-link instance: β" test_two_links_beta;
    case "α = β reaches C(O)" test_alpha_at_beta_reaches_optimum;
    case "strategy feasibility" test_strategy_feasible;
    case "prediction = induced cost" test_predicted_matches_induced;
    case "two links vs brute force" test_two_links_vs_brute_force;
    case "rejects non-common-slope" test_rejects_wrong_class;
    case "rejects bad alpha" test_rejects_bad_alpha;
    case "α = 0 gives C(N)" test_alpha_zero_gives_nash;
    case "optimal cost monotone in α" test_monotone_in_alpha;
    prop_matches_brute_force;
    prop_never_below_optimum;
    prop_alpha_ge_beta_reaches_optimum;
  ]
