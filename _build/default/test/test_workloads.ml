(* Tests for the instance catalog and generators. *)

open Helpers
module Links = Sgr_links.Links
module Net = Sgr_network.Network
module W = Sgr_workloads.Workloads
module G = Sgr_graph
module L = Sgr_latency.Latency
module Prng = Sgr_numerics.Prng

let test_pigou_shape () =
  Alcotest.(check int) "two links" 2 (Links.num_links W.pigou);
  approx "demand" 1.0 W.pigou.Links.demand

let test_fig456_shape () =
  Alcotest.(check int) "five links" 5 (Links.num_links W.fig456);
  check_true "link 5 constant" (L.is_constant W.fig456.Links.latencies.(4))

let test_fig7_shape () =
  let net = W.fig7 () in
  Alcotest.(check int) "4 nodes" 4 (G.Digraph.num_nodes net.Net.graph);
  Alcotest.(check int) "5 edges" 5 (G.Digraph.num_edges net.Net.graph);
  Alcotest.(check int) "edge names align" 5 (Array.length W.fig7_edge_names)

let test_fig7_epsilon_validation () =
  match W.fig7 ~epsilon:0.2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "epsilon >= 1/8 rejected"

let test_braess_classic_shape () =
  let net = W.braess_classic ~demand:2.0 () in
  approx "demand" 2.0 (Net.total_demand net);
  check_true "shortcut is free" (L.is_constant net.Net.latencies.(2))

let test_mm1_validation () =
  match W.mm1_links ~capacities:[| 0.4; 0.4 |] ~demand:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undercapacitated system rejected"

let test_two_commodity_shape () =
  let net = W.two_commodity () in
  Alcotest.(check int) "2 commodities" 2 (Array.length net.Net.commodities);
  let paths = Net.paths net in
  Alcotest.(check int) "c1 has 2 paths" 2 (Array.length paths.(0));
  Alcotest.(check int) "c2 has 2 paths" 2 (Array.length paths.(1))

let test_generators_deterministic () =
  let a = W.random_affine_links (Prng.create 9) ~m:5 () in
  let b = W.random_affine_links (Prng.create 9) ~m:5 () in
  Array.iteri
    (fun i la ->
      Alcotest.(check string) "same latencies" (L.to_string la)
        (L.to_string b.Links.latencies.(i)))
    a.Links.latencies

let test_common_slope_generator () =
  let t = W.random_common_slope_links (Prng.create 4) ~m:6 ~slope:1.5 () in
  check_true "in Thm 2.4's class" (Stackelberg.Linear_exact.is_common_slope t);
  (* Intercepts are sorted. *)
  let intercepts =
    Array.map
      (fun lat ->
        match L.kind lat with L.Affine { intercept; _ } -> intercept | _ -> Alcotest.fail "affine")
      t.Links.latencies
  in
  Array.iteri (fun i b -> if i > 0 then check_true "sorted" (b >= intercepts.(i - 1))) intercepts

let test_layered_network_shape () =
  let net = W.random_layered_network (Prng.create 3) ~layers:3 ~width:2 ~extra_edges:2 () in
  let g = net.Net.graph in
  Alcotest.(check int) "nodes" (1 + 6 + 1) (G.Digraph.num_nodes g);
  (* 2 source + 2 full bipartite layers (4 each) + 2 sink + 2 extra. *)
  Alcotest.(check int) "edges" (2 + 8 + 2 + 2) (G.Digraph.num_edges g);
  check_true "solvable" (Array.length (Net.paths net).(0) > 0)

let test_grid_network_shape () =
  let net = W.grid_network (Prng.create 8) ~rows:3 ~cols:4 () in
  let g = net.Net.graph in
  Alcotest.(check int) "nodes" 12 (G.Digraph.num_nodes g);
  (* Right edges: 3 rows x 3; down edges: 2 x 4. *)
  Alcotest.(check int) "edges" (9 + 8) (G.Digraph.num_edges g);
  check_true "all BPR" (Array.for_all (fun l -> not (L.is_constant l)) net.Net.latencies)

let test_generator_validation () =
  (match W.grid_network (Prng.create 1) ~rows:1 ~cols:3 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "degenerate grid rejected");
  match W.random_layered_network (Prng.create 1) ~layers:0 ~width:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero layers rejected"

let prop_random_links_solvable =
  qcheck ~count:40 "every generated links instance is solvable" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let t =
        match Prng.int rng 4 with
        | 0 -> W.random_affine_links rng ~m:(2 + Prng.int rng 8) ()
        | 1 -> W.random_common_slope_links rng ~m:(2 + Prng.int rng 8) ()
        | 2 -> W.random_polynomial_links rng ~m:(2 + Prng.int rng 8) ()
        | _ -> W.random_mm1_links rng ~m:(2 + Prng.int rng 8) ()
      in
      let n = Links.nash t and o = Links.opt t in
      Links.is_feasible t n.assignment && Links.is_feasible t o.assignment)

let prop_random_networks_solvable =
  qcheck ~count:25 "every generated network is solvable" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let net =
        if Prng.bool rng then
          W.random_layered_network rng ~layers:(1 + Prng.int rng 3) ~width:(1 + Prng.int rng 3) ()
        else W.grid_network rng ~rows:(2 + Prng.int rng 2) ~cols:(2 + Prng.int rng 2) ()
      in
      let sol = Sgr_network.Equilibrate.solve Sgr_network.Objective.Wardrop net in
      sol.gap <= 1e-6)

let suite =
  [
    case "pigou shape" test_pigou_shape;
    case "fig4-6 shape" test_fig456_shape;
    case "fig7 shape" test_fig7_shape;
    case "fig7 epsilon validation" test_fig7_epsilon_validation;
    case "braess classic shape" test_braess_classic_shape;
    case "mm1 validation" test_mm1_validation;
    case "two-commodity shape" test_two_commodity_shape;
    case "generators are deterministic" test_generators_deterministic;
    case "common-slope generator" test_common_slope_generator;
    case "layered network shape" test_layered_network_shape;
    case "grid network shape" test_grid_network_shape;
    case "generator validation" test_generator_validation;
    prop_random_links_solvable;
    prop_random_networks_solvable;
  ]
