(* Tests for the structural results of Sections 6-7: useless strategies
   (Thm 7.2), frozen links (Thm 7.4 / Lemma 7.5), Nash monotonicity
   (Prop 7.1), the swap construction (Lemma 6.1 / Figs 8-10), and the
   Sharma-Williamson threshold (footnote 6). *)

open Helpers
module Links = Sgr_links.Links
module Theory = Stackelberg.Theory
module W = Sgr_workloads.Workloads
module Prng = Sgr_numerics.Prng
module Vec = Sgr_numerics.Vec

let test_classify () =
  let nash = [| 1.0; 0.0 |] and opt = [| 0.5; 0.5 |] in
  check_true "over" (Theory.classify ~nash ~opt 0 = Theory.Over_loaded);
  check_true "under" (Theory.classify ~nash ~opt 1 = Theory.Under_loaded);
  check_true "optimum" (Theory.classify ~nash:opt ~opt 0 = Theory.Optimum_loaded)

let test_frozen_links () =
  let frozen = Theory.frozen_links ~nash:[| 0.4; 0.6 |] [| 0.5; 0.2 |] in
  Alcotest.(check (array bool)) "first frozen only" [| true; false |] frozen

let test_useless_pigou () =
  (* s = (0.3, 0) <= N = (1, 0): Theorem 7.2 says the outcome is N. *)
  check_true "useless detected"
    (Theory.is_useless ~nash:[| 1.0; 0.0 |] [| 0.3; 0.0 |]);
  check_true "fixed point" (Theory.useless_strategy_fixed_point W.pigou ~strategy:[| 0.3; 0.0 |])

let test_useless_rejects_useful () =
  match Theory.useless_strategy_fixed_point W.pigou ~strategy:[| 0.0; 0.5 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "useful strategy must be rejected by the 7.2 checker"

let test_frozen_receive_nothing_pigou () =
  (* Leader floods link 2 beyond its Nash load (0): frozen, receives no
     induced flow. *)
  check_true "frozen link empty" (Theory.frozen_receive_nothing W.pigou ~strategy:[| 0.0; 0.5 |])

let test_swap_example () =
  (* Two links ℓ1 = x + 1, ℓ2 = x + 2 (a = 1, b1 = 1 <= b2 = 2).
     Leader flow s1 = 4 alone on M1 (latency 5); M2 carries s2+t2 = 2
     (latency 4 <= 5). Swap + slide ε = 1. *)
  let w = Theory.swap ~slope:1.0 ~b1:1.0 ~b2:2.0 ~s1:4.0 ~s2:1.0 ~t2:1.0 in
  approx "epsilon = (b2-b1)/a" 1.0 w.epsilon;
  approx "cost before" ((4.0 *. 5.0) +. (2.0 *. 4.0)) w.cost_before;
  (* After: M1 carries 3 (latency 4), M2 carries 3 (latency 5)?? — no:
     M1 carries u+ε = 3 at latency 4, M2 carries s1-ε = 3 at latency 5. *)
  let l1, l2 = w.loads_after in
  approx "M1 load" 3.0 l1;
  approx "M2 load" 3.0 l2;
  check_true "cost does not increase" (w.cost_after <= w.cost_before +. 1e-9)

let test_swap_preconditions () =
  (match Theory.swap ~slope:0.0 ~b1:0.0 ~b2:1.0 ~s1:1.0 ~s2:0.0 ~t2:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero slope rejected");
  match Theory.swap ~slope:1.0 ~b1:2.0 ~b2:1.0 ~s1:1.0 ~s2:0.0 ~t2:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "b1 > b2 rejected"

let test_sharma_williamson_pigou () =
  (* Only link 2 is under-loaded, with Nash load 0: threshold 0. *)
  approx "threshold 0" 0.0 (Theory.sharma_williamson_threshold W.pigou)

let test_sharma_williamson_none () =
  let t = W.mm1_links ~capacities:[| 0.6; 0.6 |] ~demand:1.0 in
  check_true "no under-loaded link -> infinity"
    (Theory.sharma_williamson_threshold t = Float.infinity)

let random_instance seed =
  let rng = Prng.create seed in
  match Prng.int rng 3 with
  | 0 -> W.random_affine_links rng ~m:(2 + Prng.int rng 6) ~demand:(Prng.uniform rng ~lo:0.5 ~hi:3.0) ()
  | 1 ->
      W.random_polynomial_links rng ~m:(2 + Prng.int rng 6)
        ~demand:(Prng.uniform rng ~lo:0.5 ~hi:3.0) ()
  | _ -> W.random_mm1_links rng ~m:(2 + Prng.int rng 6) ~demand:(Prng.uniform rng ~lo:0.5 ~hi:3.0) ()

(* Theorem 7.2 on random instances with random sub-Nash strategies. *)
let prop_theorem_7_2 =
  qcheck "Thm 7.2: s <= N pointwise => S+T = N" QCheck.small_nat (fun seed ->
      let t = random_instance (seed + 1) in
      let rng = Prng.create (seed + 997) in
      let nash = (Links.nash t).assignment in
      let strategy = Array.map (fun n -> Prng.uniform rng ~lo:0.0 ~hi:1.0 *. n) nash in
      Theory.useless_strategy_fixed_point t ~strategy)

(* Theorem 7.4: strategies loading only frozen links. *)
let prop_theorem_7_4 =
  qcheck "Thm 7.4: all-frozen strategies leave frozen links alone" QCheck.small_nat
    (fun seed ->
      let t = random_instance (seed + 1) in
      let rng = Prng.create (seed + 1009) in
      let nash = (Links.nash t).assignment in
      let opt = (Links.opt t).assignment in
      (* Freeze a random subset at a load in [n_i, max(n_i, o_i)] while the
         budget allows; other links get nothing. *)
      let m = Links.num_links t in
      let budget = ref t.Links.demand in
      let strategy = Array.make m 0.0 in
      Array.iteri
        (fun i n ->
          if Prng.bool rng then begin
            let hi = Float.max n opt.(i) in
            let want = Prng.uniform rng ~lo:n ~hi:(hi +. 0.1) in
            let take = Float.min want !budget in
            if take >= n then begin
              strategy.(i) <- take;
              budget := !budget -. take
            end
          end)
        nash;
      Theory.frozen_receive_nothing t ~strategy)

(* Lemma 7.5: mixed strategies (some frozen, some not). *)
let prop_lemma_7_5 =
  qcheck "Lemma 7.5: frozen links get nothing under mixed strategies" QCheck.small_nat
    (fun seed ->
      let t = random_instance (seed + 1) in
      let rng = Prng.create (seed + 2003) in
      let nash = (Links.nash t).assignment in
      let m = Links.num_links t in
      let budget = ref t.Links.demand in
      let strategy = Array.make m 0.0 in
      Array.iteri
        (fun i n ->
          let roll = Prng.int rng 3 in
          let want =
            if roll = 0 then 0.0
            else if roll = 1 then Prng.uniform rng ~lo:0.0 ~hi:n (* below Nash: unfrozen *)
            else Prng.uniform rng ~lo:n ~hi:(n +. 0.3) (* frozen *)
          in
          let take = Float.min want !budget in
          strategy.(i) <- take;
          budget := !budget -. take)
        nash;
      Theory.frozen_receive_nothing t ~strategy)

let prop_proposition_7_1 =
  qcheck "Prop 7.1: Nash flows are monotone in the demand" QCheck.small_nat (fun seed ->
      let t = random_instance (seed + 1) in
      let rng = Prng.create (seed + 3001) in
      let r' = Prng.uniform rng ~lo:0.0 ~hi:t.Links.demand in
      Theory.nash_monotone t ~r')

let prop_swap_never_increases_cost =
  qcheck "Lemma 6.1 swap never increases the two-link cost" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let slope = Prng.uniform rng ~lo:0.2 ~hi:3.0 in
      let b1 = Prng.uniform rng ~lo:0.0 ~hi:2.0 in
      let b2 = b1 +. Prng.uniform rng ~lo:0.0 ~hi:2.0 in
      let s2 = Prng.uniform rng ~lo:0.0 ~hi:2.0 in
      let t2 = Prng.uniform rng ~lo:0.01 ~hi:2.0 in
      (* Choose s1 large enough to satisfy ℓ1(s1) >= ℓ2(s2+t2). *)
      let u = s2 +. t2 in
      let s1_min = u +. ((b2 -. b1) /. slope) in
      let s1 = s1_min +. Prng.uniform rng ~lo:0.0 ~hi:2.0 in
      let w = Theory.swap ~slope ~b1 ~b2 ~s1 ~s2 ~t2 in
      w.cost_after <= w.cost_before +. 1e-9)

let prop_sharma_williamson_is_necessary =
  qcheck ~count:25 "footnote 6: improving strategies control >= min under-loaded Nash load"
    QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let t = W.random_affine_links rng ~m:(2 + Prng.int rng 2) ~demand:1.0 () in
      let threshold = Theory.sharma_williamson_threshold t in
      let nash_cost = Links.cost t (Links.nash t).assignment in
      if threshold = Float.infinity || threshold <= 0.02 then true
      else begin
        (* A budget strictly below the threshold cannot beat C(N). *)
        let alpha = 0.9 *. threshold /. t.Links.demand in
        let bf = Stackelberg.Brute_force.optimal_strategy ~resolution:16 t ~alpha in
        bf.induced_cost >= nash_cost -. 1e-6
      end)

let suite =
  [
    case "classify (Def 4.3)" test_classify;
    case "frozen links (Def 4.4)" test_frozen_links;
    case "thm 7.2 on pigou" test_useless_pigou;
    case "thm 7.2 checker rejects useful strategies" test_useless_rejects_useful;
    case "thm 7.4 on pigou" test_frozen_receive_nothing_pigou;
    case "lemma 6.1 swap: worked example" test_swap_example;
    case "lemma 6.1 swap: preconditions" test_swap_preconditions;
    case "footnote 6 threshold: pigou" test_sharma_williamson_pigou;
    case "footnote 6 threshold: optimal Nash" test_sharma_williamson_none;
    prop_theorem_7_2;
    prop_theorem_7_4;
    prop_lemma_7_5;
    prop_proposition_7_1;
    prop_swap_never_increases_cost;
    prop_sharma_williamson_is_necessary;
  ]
