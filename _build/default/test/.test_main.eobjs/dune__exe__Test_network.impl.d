test/test_network.ml: Alcotest Array Float Helpers QCheck Sgr_graph Sgr_latency Sgr_network Sgr_numerics Sgr_workloads
