test/test_workloads.ml: Alcotest Array Helpers QCheck Sgr_graph Sgr_latency Sgr_links Sgr_network Sgr_numerics Sgr_workloads Stackelberg
