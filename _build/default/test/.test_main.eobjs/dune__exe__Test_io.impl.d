test/test_io.ml: Alcotest Array Helpers List Printf QCheck Sgr_graph Sgr_io Sgr_latency Sgr_links Sgr_network Sgr_numerics Sgr_workloads Stackelberg String
