test/test_theory.ml: Alcotest Array Float Helpers QCheck Sgr_links Sgr_numerics Sgr_workloads Stackelberg
