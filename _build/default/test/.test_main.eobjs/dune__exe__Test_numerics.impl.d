test/test_numerics.ml: Alcotest Array Float Helpers QCheck Sgr_numerics
