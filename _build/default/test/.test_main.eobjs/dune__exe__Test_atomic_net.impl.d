test/test_atomic_net.ml: Alcotest Array Helpers QCheck Sgr_atomic Sgr_links Sgr_network Sgr_numerics Sgr_workloads Stackelberg
