test/test_mop.ml: Alcotest Array Float Helpers List Printf QCheck Sgr_graph Sgr_latency Sgr_network Sgr_numerics Sgr_workloads Stackelberg
