test/test_atomic.ml: Alcotest Array Float Helpers List Printf QCheck Sgr_atomic Sgr_latency Sgr_links Sgr_numerics Sgr_workloads
