test/test_topology.ml: Alcotest Array Helpers Printf QCheck Sgr_graph Sgr_network Sgr_numerics Sgr_workloads String
