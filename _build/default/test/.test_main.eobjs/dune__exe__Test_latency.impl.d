test/test_latency.ml: Alcotest Float Helpers List QCheck Sgr_latency Sgr_numerics String
