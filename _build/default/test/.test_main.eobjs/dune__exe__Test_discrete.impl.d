test/test_discrete.ml: Alcotest Array Float Helpers QCheck Sgr_discrete Sgr_latency Sgr_links Sgr_numerics
