test/test_graph.ml: Alcotest Array Float Helpers List QCheck Queue Sgr_graph Sgr_numerics String
