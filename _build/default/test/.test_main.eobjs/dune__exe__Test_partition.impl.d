test/test_partition.ml: Alcotest Float Helpers List Printf QCheck Sgr_latency Sgr_links Sgr_numerics Sgr_workloads Stackelberg
