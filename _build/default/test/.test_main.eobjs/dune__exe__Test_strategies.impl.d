test/test_strategies.ml: Alcotest Array Float Helpers List Printf QCheck Sgr_latency Sgr_links Sgr_numerics Sgr_workloads Stackelberg
