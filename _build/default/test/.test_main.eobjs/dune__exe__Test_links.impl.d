test/test_links.ml: Alcotest Array Float Helpers QCheck Sgr_latency Sgr_links Sgr_numerics Sgr_workloads
