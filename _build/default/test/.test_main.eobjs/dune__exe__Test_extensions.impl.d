test/test_extensions.ml: Alcotest Array Helpers List Printf QCheck Sgr_graph Sgr_latency Sgr_links Sgr_network Sgr_numerics Sgr_workloads Stackelberg
