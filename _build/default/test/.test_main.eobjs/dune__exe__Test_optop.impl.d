test/test_optop.ml: Alcotest Array Float Helpers List QCheck Sgr_links Sgr_numerics Sgr_workloads Stackelberg
