(* Unit and property tests for latency functions: closed forms vs
   numerical derivatives/integrals, inverses, shifting, classification. *)

open Helpers
module L = Sgr_latency.Latency
module Integrate = Sgr_numerics.Integrate
module Prng = Sgr_numerics.Prng

let numeric_deriv f x =
  let h = 1e-6 *. Float.max 1.0 (Float.abs x) in
  (f (x +. h) -. f (Float.max 0.0 (x -. h))) /. (x +. h -. Float.max 0.0 (x -. h))

let check_consistency ?(hi = 3.0) name lat =
  (* Closed-form derivative and primitive must match numerical ones. *)
  List.iter
    (fun x ->
      approx ~eps:1e-4 (name ^ ": deriv at " ^ string_of_float x)
        (numeric_deriv (L.eval lat) x) (L.deriv lat x);
      approx ~eps:1e-8 (name ^ ": primitive at " ^ string_of_float x)
        (Integrate.adaptive_simpson ~f:(L.eval lat) ~lo:0.0 ~hi:x ())
        (L.primitive lat x))
    [ 0.1; 0.5; 1.0; hi ]

let test_constant () =
  let c = L.constant 0.7 in
  approx "eval" 0.7 (L.eval c 3.0);
  approx "deriv" 0.0 (L.deriv c 3.0);
  approx "primitive" 2.1 (L.primitive c 3.0);
  approx "marginal" 0.7 (L.marginal c 3.0);
  check_true "is_constant" (L.is_constant c);
  Alcotest.(check (option (float 1e-12))) "constant_value" (Some 0.7) (L.constant_value c)

let test_affine () =
  let l = L.affine ~slope:2.5 ~intercept:(1.0 /. 6.0) in
  approx "eval" (2.5 +. (1.0 /. 6.0)) (L.eval l 1.0);
  approx "marginal" (5.0 +. (1.0 /. 6.0)) (L.marginal l 1.0);
  check_consistency "affine" l;
  check_true "not constant" (not (L.is_constant l));
  (* Zero slope degrades to a constant. *)
  check_true "zero slope constant" (L.is_constant (L.affine ~slope:0.0 ~intercept:1.0))

let test_affine_negative_rejected () =
  match L.affine ~slope:(-1.0) ~intercept:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative slope must be rejected"

let test_polynomial () =
  let p = L.polynomial [| 1.0; 0.0; 3.0 |] in
  (* 1 + 3x^2 *)
  approx "eval" 13.0 (L.eval p 2.0);
  approx "deriv" 12.0 (L.deriv p 2.0);
  approx "primitive" (2.0 +. 8.0) (L.primitive p 2.0);
  approx "marginal" (13.0 +. 24.0) (L.marginal p 2.0);
  check_consistency "polynomial" p;
  check_true "constant poly detected" (L.is_constant (L.polynomial [| 2.0 |]));
  check_true "constant poly w/ zero high coeffs" (L.is_constant (L.polynomial [| 2.0; 0.0 |]))

let test_polynomial_negative_rejected () =
  match L.polynomial [| 1.0; -2.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative coefficient must be rejected"

let test_monomial () =
  let m = L.monomial ~coeff:2.0 ~degree:3 in
  approx "eval" 16.0 (L.eval m 2.0);
  approx "deriv" 24.0 (L.deriv m 2.0)

let test_mm1 () =
  let q = L.mm1 ~capacity:2.0 in
  approx "eval" 1.0 (L.eval q 1.0);
  approx "deriv" 1.0 (L.deriv q 1.0);
  approx "primitive" (Float.log 2.0) (L.primitive q 1.0);
  check_consistency ~hi:1.5 "mm1" q;
  check_true "saturation" (L.eval q 2.5 = Float.infinity)

let test_bpr () =
  let b = L.bpr ~free_flow:1.0 ~capacity:2.0 () in
  approx "free-flow delay" 1.0 (L.eval b 0.0);
  approx "at capacity" 1.15 (L.eval b 2.0);
  check_consistency "bpr" b

let test_custom_numeric_fallbacks () =
  let c = L.custom ~eval:(fun x -> Float.exp x -. 1.0 +. 0.5) () in
  approx ~eps:1e-4 "numeric deriv" (Float.exp 1.0) (L.deriv c 1.0);
  approx ~eps:1e-8 "numeric primitive" (Float.exp 1.0 -. 1.0 -. 1.0 +. 0.5) (L.primitive c 1.0)

let test_shift () =
  let l = L.affine ~slope:2.0 ~intercept:1.0 in
  let s = L.shift 0.5 l in
  approx "shifted eval" (L.eval l 1.5) (L.eval s 1.0);
  approx "shifted deriv" 2.0 (L.deriv s 1.0);
  (* Primitive of shifted: ∫0^x ℓ(s+u)du = F(s+x) - F(s). *)
  approx "shifted primitive" (L.primitive l 1.5 -. L.primitive l 0.5) (L.primitive s 1.0);
  check_true "zero shift is identity" (L.shift 0.0 l == l);
  check_true "shifted constant stays constant" (L.is_constant (L.shift 1.0 (L.constant 2.0)))

let test_inverse_affine () =
  let l = L.affine ~slope:2.0 ~intercept:1.0 in
  approx "inverse" 2.0 (L.inverse l 5.0);
  approx "inverse below intercept" 0.0 (L.inverse l 0.5);
  approx "inverse_marginal" 1.0 (L.inverse_marginal l 5.0)

let test_inverse_shifted_affine () =
  let s = L.shift 0.5 (L.affine ~slope:2.0 ~intercept:1.0) in
  (* ℓ(0.5+x) = 2x + 2; inverse of 4 is 1. *)
  approx "inverse" 1.0 (L.inverse s 4.0);
  approx "inverse saturates at 0" 0.0 (L.inverse s 1.0)

let test_inverse_mm1 () =
  let q = L.mm1 ~capacity:2.0 in
  approx "inverse" 1.0 (L.inverse q 1.0);
  approx "inverse below idle delay" 0.0 (L.inverse q 0.25);
  let s = L.shift 0.5 q in
  approx "shifted inverse" 0.5 (L.inverse s 1.0)

let test_inverse_constant_fails () =
  match L.inverse (L.constant 1.0) 2.0 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "inverse of constant must fail"

let test_check_increasing () =
  check_true "affine increasing" (L.check_increasing (L.linear 1.0));
  check_true "constant weakly increasing" (L.check_increasing (L.constant 1.0))

let test_pp () =
  check_true "affine rendering"
    (String.length (L.to_string (L.affine ~slope:2.5 ~intercept:0.1667)) > 0);
  check_true "poly rendering" (String.length (L.to_string (L.polynomial [| 1.0; 0.0; 2.0 |])) > 0)

let random_latency rng =
  match Prng.int rng 4 with
  | 0 -> L.affine ~slope:(Prng.uniform rng ~lo:0.1 ~hi:3.0) ~intercept:(Prng.uniform rng ~lo:0.0 ~hi:2.0)
  | 1 ->
      let d = 1 + Prng.int rng 3 in
      L.monomial ~coeff:(Prng.uniform rng ~lo:0.1 ~hi:2.0) ~degree:d
  | 2 -> L.bpr ~free_flow:(Prng.uniform rng ~lo:0.5 ~hi:2.0) ~capacity:(Prng.uniform rng ~lo:0.5 ~hi:2.0) ()
  | _ -> L.mm1 ~capacity:(Prng.uniform rng ~lo:2.0 ~hi:4.0)

let prop_inverse_roundtrip =
  qcheck "inverse ∘ eval is the identity above ℓ(0)" QCheck.(pair small_nat (float_bound_exclusive 1.5))
    (fun (seed, xraw) ->
      let rng = Prng.create (seed + 1) in
      let lat = random_latency rng in
      let x = Float.abs xraw +. 0.01 in
      let y = L.eval lat x in
      y = Float.infinity || Float.abs (L.inverse lat y -. x) <= 1e-6 *. Float.max 1.0 x)

let prop_marginal_ge_latency =
  qcheck "marginal cost dominates latency" QCheck.(pair small_nat (float_bound_exclusive 1.5))
    (fun (seed, xraw) ->
      let rng = Prng.create (seed + 1) in
      let lat = random_latency rng in
      let x = Float.abs xraw in
      let m = L.marginal lat x and v = L.eval lat x in
      m = Float.infinity || m >= v -. 1e-9)

let prop_primitive_matches_quadrature =
  qcheck "closed-form primitive matches quadrature" QCheck.(pair small_nat (float_bound_exclusive 1.5))
    (fun (seed, xraw) ->
      let rng = Prng.create (seed + 1) in
      let lat = random_latency rng in
      let x = Float.abs xraw in
      let p = L.primitive lat x in
      p = Float.infinity
      || Float.abs (p -. Integrate.adaptive_simpson ~f:(L.eval lat) ~lo:0.0 ~hi:x ())
         <= 1e-7 *. Float.max 1.0 p)

let suite =
  [
    case "constant" test_constant;
    case "affine" test_affine;
    case "affine: negative rejected" test_affine_negative_rejected;
    case "polynomial" test_polynomial;
    case "polynomial: negative rejected" test_polynomial_negative_rejected;
    case "monomial" test_monomial;
    case "mm1" test_mm1;
    case "bpr" test_bpr;
    case "custom fallbacks" test_custom_numeric_fallbacks;
    case "shift" test_shift;
    case "inverse: affine" test_inverse_affine;
    case "inverse: shifted affine" test_inverse_shifted_affine;
    case "inverse: mm1" test_inverse_mm1;
    case "inverse: constant fails" test_inverse_constant_fails;
    case "check_increasing" test_check_increasing;
    case "pretty printing" test_pp;
    prop_inverse_roundtrip;
    prop_marginal_ge_latency;
    prop_primitive_matches_quadrature;
  ]
