(* Unsplittable players: the discrete congestion game (Fotakis [12]).

   Unit-demand players each pick ONE link. Pure equilibria exist by
   Rosenthal's potential; a Stackelberg Leader who dictates the choices
   of k players (placing them on the optimal assignment's slowest links,
   LLF-style) interpolates the social cost from the selfish equilibrium
   down to the optimum. *)

module C = Sgr_discrete.Congestion
module L = Sgr_latency.Latency

let () =
  (* Ten players, three links: a fast one that congests, a medium one,
     and a slow constant link the selfish players shun. *)
  let t =
    C.make [| L.linear 0.5; L.affine ~slope:0.25 ~intercept:1.0; L.constant 3.2 |] ~players:10
  in
  let nash = C.nash t in
  Format.printf "10 players on ℓ = (x/2, x/4 + 1, 3.2)@.";
  Format.printf "Selfish equilibrium: loads %s, cost %.4f (potential %.4f)@."
    (String.concat "," (Array.to_list (Array.map string_of_int (C.loads t nash))))
    (C.social_cost t nash) (C.potential t nash);
  let opt = C.optimum_loads t in
  Format.printf "Exact optimum (DP):  loads %s, cost %.4f@."
    (String.concat "," (Array.to_list (Array.map string_of_int opt)))
    (C.optimum_cost t);
  Format.printf "@.LLF Stackelberg sweep (k players dictated, rest best-respond):@.";
  for k = 0 to 10 do
    let state = C.stackelberg_llf t ~controlled:k in
    let cost = C.social_cost t state in
    let bar = String.make (int_of_float (30.0 *. (cost -. C.optimum_cost t))) '#' in
    Format.printf "  k=%-3d cost %.4f %s@." k cost bar
  done;
  Format.printf "@.(the staircase flattens to C(O) once the dictated players cover@.";
  Format.printf " every link the selfish crowd under-uses)@."
