(* M/M/1 parallel links (the Korilis-Lazar-Orda setting, paper §2).

   Latencies 1/(c_i - x) model queueing delay at a link of capacity c_i.
   The paper notes that when the system contains a few very appealing
   links, or large groups of identical links, the price of optimum β_M
   can be small. This example measures β_M in both regimes. *)

module Links = Sgr_links.Links
module Vec = Sgr_numerics.Vec

let report name instance =
  let result = Stackelberg.Optop.run instance in
  Format.printf "%-28s β_M = %.4f   PoA = %.6f   C(N) = %.4f -> C(S+T) = %.4f@." name
    result.beta
    (Links.price_of_anarchy instance)
    result.nash_cost result.induced_cost

let () =
  Format.printf "M/M/1 systems, demand r = 1@.@.";
  (* Two strong links dominating three weak ones: followers already prefer
     the strong links, so little control is needed. *)
  report "2 strong + 3 weak" (Sgr_workloads.Workloads.mm1_links
    ~capacities:[| 2.0; 1.8; 0.4; 0.35; 0.3 |] ~demand:1.0);
  (* Identical links: the Nash flow IS optimal by symmetry -> β = 0. *)
  report "5 identical" (Sgr_workloads.Workloads.mm1_links
    ~capacities:[| 0.6; 0.6; 0.6; 0.6; 0.6 |] ~demand:1.0);
  (* Heterogeneous capacities: a sizeable β appears. *)
  report "geometric capacities" (Sgr_workloads.Workloads.mm1_links
    ~capacities:[| 1.6; 0.8; 0.4; 0.2; 0.1 |] ~demand:1.0);
  Format.printf "@.Strategy detail for the geometric system:@.";
  let instance = Sgr_workloads.Workloads.mm1_links
    ~capacities:[| 1.6; 0.8; 0.4; 0.2; 0.1 |] ~demand:1.0 in
  let result = Stackelberg.Optop.run instance in
  Format.printf "  S = %a@." Vec.pp result.strategy;
  Format.printf "  O = %a@." Vec.pp result.optimum;
  let induced = Links.induced instance ~strategy:result.strategy in
  Format.printf "  T = %a@." Vec.pp induced.assignment
