(* OpTop round by round on the paper's Figs. 4-6 instance.

   Five links: ℓ1 = x, ℓ2 = 3/2·x, ℓ3 = 2x, ℓ4 = 5/2·x + 1/6, ℓ5 = 7/10.
   The Nash flow under-loads M4 and M5; OpTop freezes both at their
   optimal loads in one round and the residual selfish flow then settles
   exactly at the optimum. β_M = o4 + o5 = 29/120. *)

module Links = Sgr_links.Links
module Vec = Sgr_numerics.Vec

let () =
  let instance = Sgr_workloads.Workloads.fig456 in
  Format.printf "Instance:@.%a@.@." Links.pp instance;
  let result = Stackelberg.Optop.run instance in
  List.iteri
    (fun round (r : Stackelberg.Optop.round) ->
      Format.printf "Round %d: free flow r = %.6f on links {%s}@." (round + 1) r.demand
        (String.concat ", "
           (Array.to_list (Array.map (fun i -> Printf.sprintf "M%d" (i + 1)) r.active)));
      Format.printf "  Nash    = %a@." Vec.pp r.nash;
      Format.printf "  Optimum = %a@." Vec.pp r.optimum;
      if Array.length r.frozen > 0 then
        Format.printf "  under-loaded, frozen at optimum: {%s}@."
          (String.concat ", "
             (Array.to_list (Array.map (fun i -> Printf.sprintf "M%d" (i + 1)) r.frozen)))
      else Format.printf "  no under-loaded links: OpTop terminates.@.")
    result.rounds;
  Format.printf "@.Price of optimum β = %.6f  (paper: 29/120 = %.6f)@." result.beta
    (29.0 /. 120.0);
  Format.printf "Leader strategy S  = %a@." Vec.pp result.strategy;
  Format.printf "C(N) = %.6f,  C(O) = %.6f,  induced C(S+T) = %.6f@." result.nash_cost
    result.optimum_cost result.induced_cost
