(* Finitely many followers: how the paper's infinite-user model arises.

   The paper routes an infinite population of infinitesimal users; its
   Stackelberg ancestor (Korilis-Lazar-Orda) has finitely many players
   who each split a sizeable demand. This example connects the two:

   1. atomic splittable equilibria on Pigou converge to the Wardrop
      equilibrium at rate exactly 1/(n+1);
   2. a single player owning all flow routes at the system optimum —
      "a monopolist is its own Stackelberg leader";
   3. OpTop's Leader strategy, computed for the infinite model, already
      induces near-optimal cost against a handful of atomic followers. *)

module A = Sgr_atomic.Atomic_links
module Links = Sgr_links.Links
module W = Sgr_workloads.Workloads
module Vec = Sgr_numerics.Vec

let () =
  let lats = W.pigou.Links.latencies in
  Format.printf "Pigou, total flow 1 split among n players:@.";
  Format.printf "  %-4s %-22s %-12s %s@." "n" "load on the linear link" "social cost"
    "gap to Wardrop (=1/(n+1))";
  List.iter
    (fun n ->
      let t = A.split_evenly lats ~total:1.0 ~players:n in
      let profile, _ = A.equilibrium t in
      let load = A.total_load t profile in
      Format.printf "  %-4d %-22.6f %-12.6f %.6f@." n load.(0) (A.social_cost t profile)
        (1.0 -. load.(0)))
    [ 1; 2; 4; 8; 16; 64 ];
  Format.printf "  (n=1 is the optimum, cost 3/4; n→∞ is the Wardrop flow, cost 1)@.@.";

  let optop = Stackelberg.Optop.run W.fig456 in
  Format.printf "Figs. 4-6 system: OpTop leader (β = %.4f) vs n atomic followers:@." optop.beta;
  let shifted =
    Array.mapi (fun i lat -> Sgr_latency.Latency.shift optop.strategy.(i) lat)
      W.fig456.Links.latencies
  in
  let remaining = 1.0 -. Vec.sum optop.strategy in
  List.iter
    (fun n ->
      let t = A.split_evenly shifted ~total:remaining ~players:n in
      let profile, rounds = A.equilibrium t in
      let combined = Vec.add optop.strategy (A.total_load t profile) in
      Format.printf "  n=%-3d induced cost %.6f (C(O) = %.6f), %d BR sweeps@." n
        (Links.cost W.fig456 combined) optop.optimum_cost rounds)
    [ 1; 2; 4; 16; 64 ]
