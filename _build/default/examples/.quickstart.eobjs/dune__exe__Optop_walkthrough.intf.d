examples/optop_walkthrough.mli:
