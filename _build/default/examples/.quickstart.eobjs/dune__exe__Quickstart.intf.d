examples/quickstart.mli:
