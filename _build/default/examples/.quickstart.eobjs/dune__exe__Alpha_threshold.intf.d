examples/alpha_threshold.mli:
