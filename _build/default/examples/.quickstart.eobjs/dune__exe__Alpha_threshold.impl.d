examples/alpha_threshold.ml: Array Float Format List Printf Sgr_graph Sgr_network Sgr_workloads Stackelberg String
