examples/braess_mop.ml: Array Format List Sgr_graph Sgr_network Sgr_numerics Sgr_workloads Stackelberg
