examples/discrete_players.ml: Array Format Sgr_discrete Sgr_latency String
