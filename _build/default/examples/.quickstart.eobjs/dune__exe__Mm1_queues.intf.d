examples/mm1_queues.mli:
