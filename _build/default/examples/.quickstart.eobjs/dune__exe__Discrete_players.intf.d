examples/discrete_players.mli:
