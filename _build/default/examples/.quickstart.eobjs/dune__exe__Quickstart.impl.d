examples/quickstart.ml: Format Sgr_latency Sgr_links Sgr_numerics Sgr_workloads Stackelberg
