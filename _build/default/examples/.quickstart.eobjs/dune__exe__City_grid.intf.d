examples/city_grid.mli:
