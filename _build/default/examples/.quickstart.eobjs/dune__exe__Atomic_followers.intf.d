examples/atomic_followers.mli:
