examples/optop_walkthrough.ml: Array Format List Printf Sgr_links Sgr_numerics Sgr_workloads Stackelberg String
