examples/atomic_followers.ml: Array Format List Sgr_atomic Sgr_latency Sgr_links Sgr_numerics Sgr_workloads Stackelberg
