examples/mm1_queues.ml: Format Sgr_links Sgr_numerics Sgr_workloads Stackelberg
