examples/braess_mop.mli:
