examples/tolls_vs_stackelberg.mli:
