(* MOP on Roughgarden's lower-bound graph (paper Fig. 7) and on the
   classic Braess paradox graph.

   Fig. 7 is the 4-node network for which no Stackelberg strategy can
   guarantee cost within 1/α of optimal — yet MOP computes the exact
   minimum Leader portion β_G = 1/2 + 2ε that induces the optimum itself
   (approximation ratio 1). The classic Braess graph shows the opposite
   regime: β_G = 1, so the optimum stays out of reach until the Leader
   owns all the flow (partial control only shaves the cost). *)

module Net = Sgr_network.Network
module G = Sgr_graph
module Vec = Sgr_numerics.Vec

let pp_paths net ppf paths =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (p, f) -> Format.fprintf ppf "%a (%.4f)" (G.Paths.pp net.Net.graph) p f)
    ppf paths

let () =
  let epsilon = 0.02 in
  let net = Sgr_workloads.Workloads.fig7 ~epsilon () in
  Format.printf "=== Fig. 7 (Roughgarden Ex. 6.5.1), ε = %.3f ===@." epsilon;
  let result = Stackelberg.Mop.run net in
  let names = Sgr_workloads.Workloads.fig7_edge_names in
  Format.printf "Optimal edge flows:@.";
  Array.iteri (fun e f -> Format.printf "  o(%s) = %.6f@." names.(e) f) result.opt_edge_flow;
  let rep = result.per_commodity.(0) in
  Format.printf "Followers keep (free flow through shortest paths): %.6f@." rep.free_flow;
  Format.printf "Leader controls: %a@." (pp_paths net) rep.leader_paths;
  Format.printf "β_G = %.6f   (paper: 1/2 + 2ε = %.6f)@." result.beta
    (0.5 +. (2.0 *. epsilon));
  Format.printf "C(N) = %.6f, C(O) = %.6f, induced C(S+T) = %.6f (ratio %.6f)@.@."
    result.nash_cost result.opt_cost result.induced.cost
    (result.induced.cost /. result.opt_cost);

  Format.printf "=== Classic Braess paradox graph ===@.";
  let braess = Sgr_workloads.Workloads.braess_classic () in
  let r = Stackelberg.Mop.run braess in
  Format.printf "C(N) = %.6f (all flow on s→v→w→t), C(O) = %.6f, PoA = %.6f@." r.nash_cost
    r.opt_cost (r.nash_cost /. r.opt_cost);
  Format.printf "β_G = %.6f — the Leader must control ALL the optimal flow@." r.beta;
  Format.printf "  (both optimal paths are non-shortest under optimal costs: the@.";
  Format.printf "   shortcut s→v→w→t is shorter, so no flow can be left free).@.";
  (* Below β = 1 the optimum is unreachable: SCALE improves on C(N) but
     stays strictly above C(O) for every α < 1. *)
  let opt_edge = r.opt_edge_flow in
  List.iter
    (fun alpha ->
      (* Scale the optimal flow: the natural α-budget heuristic (SCALE). *)
      let leader = Vec.scale alpha opt_edge in
      let cost =
        Stackelberg.Induced.cost_of_strategy braess ~leader_edge_flow:leader
          ~follower_demands:[| 1.0 -. alpha |]
      in
      Format.printf "  SCALE(α=%.2f): induced cost %.6f  (C(N) = %.6f)@." alpha cost r.nash_cost)
    [ 0.25; 0.5; 0.75; 0.9 ]
