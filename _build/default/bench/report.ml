(* Tiny reporting framework for the reproduction experiments: each
   experiment contributes rows of (quantity, paper value, measured value);
   the harness prints them and keeps a global pass/fail tally. *)

type row = {
  quantity : string;
  paper : string;  (* the value/shape the paper reports *)
  measured : string;
  pass : bool;
}

let failures = ref 0
let total_checks = ref 0

let check_row ?(eps = 1e-6) quantity ~paper measured =
  let pass = Sgr_numerics.Tolerance.approx ~eps paper measured in
  { quantity; paper = Printf.sprintf "%.6g" paper; measured = Printf.sprintf "%.6g" measured; pass }

let bool_row quantity ~paper pass =
  { quantity; paper; measured = (if pass then "holds" else "VIOLATED"); pass }

let info_row quantity ~paper measured = { quantity; paper; measured; pass = true }

let section id title = Format.printf "@.=== %s — %s ===@." id title

let table rows =
  let w1 = List.fold_left (fun a r -> max a (String.length r.quantity)) 24 rows in
  let w2 = List.fold_left (fun a r -> max a (String.length r.paper)) 16 rows in
  let w3 = List.fold_left (fun a r -> max a (String.length r.measured)) 16 rows in
  Format.printf "  %-*s | %-*s | %-*s | result@." w1 "quantity" w2 "paper" w3 "measured";
  Format.printf "  %s-+-%s-+-%s-+-------@." (String.make w1 '-') (String.make w2 '-')
    (String.make w3 '-');
  List.iter
    (fun r ->
      incr total_checks;
      if not r.pass then incr failures;
      Format.printf "  %-*s | %-*s | %-*s | %s@." w1 r.quantity w2 r.paper w3 r.measured
        (if r.pass then "ok" else "FAIL"))
    rows

let summary () =
  Format.printf "@.%d/%d reproduction checks passed.@." (!total_checks - !failures) !total_checks;
  !failures = 0
