bench/experiments.ml: Array Float Format List Printf Report Sgr_atomic Sgr_discrete Sgr_latency Sgr_links Sgr_network Sgr_numerics Sgr_workloads Stackelberg String
