bench/report.ml: Format List Printf Sgr_numerics String
