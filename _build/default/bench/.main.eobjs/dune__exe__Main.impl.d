bench/main.ml: Array Experiments List Report Sys Timings
