bench/main.mli:
