(* The reproduction experiments: one per figure / quantitative claim of the
   paper (see DESIGN.md's experiment index and EXPERIMENTS.md for the
   recorded outcomes). Each function prints a paper-vs-measured table via
   [Report]. *)

module Links = Sgr_links.Links
module Net = Sgr_network.Network
module Eq = Sgr_network.Equilibrate
module Obj = Sgr_network.Objective
module W = Sgr_workloads.Workloads
module Optop = Stackelberg.Optop
module Mop = Stackelberg.Mop
module S = Stackelberg.Strategies
module LE = Stackelberg.Linear_exact
module Theory = Stackelberg.Theory
module Bounds = Stackelberg.Bounds
module BF = Stackelberg.Brute_force
module Prng = Sgr_numerics.Prng
module Vec = Sgr_numerics.Vec
module Tol = Sgr_numerics.Tolerance
open Report

(* E1 — Figs. 1-3: Stackelberg parlance on Pigou's example. *)
let e1_pigou () =
  section "E1 (Figs. 1-3)" "Pigou's example: anarchy 4/3, optimum restored with β = 1/2";
  let t = W.pigou in
  let nash = Links.nash t and opt = Links.opt t in
  let r = Optop.run t in
  table
    [
      check_row "C(N)" ~paper:1.0 (Links.cost t nash.assignment);
      check_row "C(O)" ~paper:0.75 (Links.cost t opt.assignment);
      check_row "price of anarchy" ~paper:(4.0 /. 3.0) (Links.price_of_anarchy t);
      check_row "β (price of optimum)" ~paper:0.5 r.beta;
      check_row "Leader S on M2 (Fig. 2)" ~paper:0.5 r.strategy.(1);
      check_row "induced T on M1 (Fig. 3)" ~paper:0.5
        (Links.induced t ~strategy:r.strategy).assignment.(0);
      check_row "a-posteriori anarchy cost" ~paper:1.0 (r.induced_cost /. r.optimum_cost);
    ]

(* E2 — Figs. 4-6: OpTop's run on the five-link instance. *)
let e2_optop () =
  section "E2 (Figs. 4-6)" "OpTop on ℓ = (x, 3/2x, 2x, 5/2x + 1/6, 7/10), r = 1";
  let t = W.fig456 in
  let r = Optop.run t in
  let first_round = List.hd r.rounds in
  let frozen_names =
    String.concat "," (Array.to_list (Array.map (fun i -> Printf.sprintf "M%d" (i + 1)) first_round.frozen))
  in
  table
    [
      info_row "under-loaded links (Fig. 4)" ~paper:"M4, M5" frozen_names;
      check_row "o4 = (0.7 - 1/6)/5" ~paper:(8.0 /. 75.0) r.optimum.(3);
      check_row "o5" ~paper:(27.0 /. 200.0) r.optimum.(4);
      check_row "β_M = o4 + o5 = 29/120" ~paper:(29.0 /. 120.0) r.beta;
      info_row "rounds until termination" ~paper:"freeze once, then stop"
        (string_of_int (List.length r.rounds));
      check_row "induced cost = C(O) (Fig. 6)" ~paper:r.optimum_cost r.induced_cost;
    ]

(* E3 — Fig. 7: MOP on the Braess-like lower-bound graph. *)
let e3_fig7 () =
  section "E3 (Fig. 7)" "MOP on Roughgarden's Example 6.5.1 graph (ε-parameterized)";
  List.iter
    (fun epsilon ->
      let net = W.fig7 ~epsilon () in
      let r = Mop.run net in
      let o = r.opt_edge_flow in
      table
        [
          check_row (Printf.sprintf "[ε=%.2f] o(s→v) = 3/4 - ε" epsilon)
            ~paper:(0.75 -. epsilon) o.(0);
          check_row "o(s→w) = 1/4 + ε" ~paper:(0.25 +. epsilon) o.(1);
          check_row "o(v→w) = 1/2 - 2ε" ~paper:(0.5 -. (2.0 *. epsilon)) o.(2);
          check_row "free flow on P0 = 1/2 - 2ε" ~paper:(0.5 -. (2.0 *. epsilon))
            r.per_commodity.(0).free_flow;
          check_row "β_G = 1/2 + 2ε" ~paper:(0.5 +. (2.0 *. epsilon)) ~eps:1e-4 r.beta;
          check_row "induced C(S+T)/C(O) = 1" ~paper:1.0 ~eps:1e-5
            (r.induced.cost /. r.opt_cost);
          bool_row "β is minimal (Sec. 5.1 release test)" ~paper:"no Leader flow dispensable"
            (Mop.verify_minimality net r);
        ])
    [ 0.0; 0.02; 0.05 ]

(* E4 — Figs. 8-10: the swap construction of Lemma 6.1. *)
let e4_swap () =
  section "E4 (Figs. 8-10)" "Lemma 6.1 swap: reassignment never increases the two-link cost";
  let rng = Prng.create 20060719 in
  let trials = 10_000 in
  let violations = ref 0 in
  let max_gain = ref 0.0 in
  for _ = 1 to trials do
    let slope = Prng.uniform rng ~lo:0.2 ~hi:3.0 in
    let b1 = Prng.uniform rng ~lo:0.0 ~hi:2.0 in
    let b2 = b1 +. Prng.uniform rng ~lo:0.0 ~hi:2.0 in
    let s2 = Prng.uniform rng ~lo:0.0 ~hi:2.0 in
    let t2 = Prng.uniform rng ~lo:0.01 ~hi:2.0 in
    let s1 = s2 +. t2 +. ((b2 -. b1) /. slope) +. Prng.uniform rng ~lo:0.0 ~hi:2.0 in
    let w = Theory.swap ~slope ~b1 ~b2 ~s1 ~s2 ~t2 in
    if w.cost_after > w.cost_before +. 1e-9 then incr violations;
    max_gain := Float.max !max_gain (w.cost_before -. w.cost_after)
  done;
  table
    [
      bool_row
        (Printf.sprintf "cost_after <= cost_before on %d random systems" trials)
        ~paper:"Lemma 6.1" (!violations = 0);
      info_row "largest strict improvement observed" ~paper:"can be > 0"
        (Printf.sprintf "%.4f" !max_gain);
    ]

(* E5 — Theorem 2.4: exact strategies on hard common-slope instances. *)
let e5_linear_exact () =
  section "E5 (Thm 2.4)" "optimal strategy for α < β on common-slope linear links";
  let rng = Prng.create 7 in
  let rows = ref [] in
  let tried = ref 0 in
  while !tried < 5 do
    let t = W.random_common_slope_links rng ~m:(2 + Prng.int rng 2) ~demand:1.0 () in
    let beta = Optop.beta t in
    if beta > 0.1 then begin
      incr tried;
      let alpha = Prng.uniform rng ~lo:0.05 ~hi:beta in
      let exact = LE.solve t ~alpha in
      let bf = BF.optimal_strategy ~resolution:48 t ~alpha in
      rows :=
        {
          quantity =
            Printf.sprintf "instance %d (m=%d, α=%.3f < β=%.3f): exact vs grid" !tried
              (Links.num_links t) alpha beta;
          paper = Printf.sprintf "%.6f (grid opt)" bf.induced_cost;
          measured = Printf.sprintf "%.6f" exact.induced_cost;
          pass =
            exact.induced_cost <= bf.induced_cost +. 1e-7
            && bf.induced_cost -. exact.induced_cost <= 5e-3;
        }
        :: !rows
    end
  done;
  table (List.rev !rows)

(* E6 — Theorem 7.2: useless strategies change nothing. *)
let e6_useless () =
  section "E6 (Thm 7.2)" "strategies with s <= N induce exactly the initial equilibrium";
  let rng = Prng.create 11 in
  let trials = 500 in
  let violations = ref 0 in
  for i = 1 to trials do
    let t = W.random_affine_links rng ~m:(2 + Prng.int rng 6) ~demand:1.0 () in
    ignore i;
    let nash = (Links.nash t).assignment in
    let strategy = Array.map (fun n -> Prng.uniform rng ~lo:0.0 ~hi:1.0 *. n) nash in
    if not (Theory.useless_strategy_fixed_point t ~strategy) then incr violations
  done;
  table
    [
      bool_row
        (Printf.sprintf "S+T = N on %d random (instance, sub-Nash strategy) pairs" trials)
        ~paper:"Theorem 7.2" (!violations = 0);
    ]

(* E7 — Theorem 7.4 / Lemma 7.5: frozen links get no induced flow. *)
let e7_frozen () =
  section "E7 (Thm 7.4 / Lemma 7.5)" "frozen links receive no induced selfish flow";
  let rng = Prng.create 13 in
  let trials = 500 in
  let violations = ref 0 in
  for _ = 1 to trials do
    let t = W.random_affine_links rng ~m:(2 + Prng.int rng 6) ~demand:1.0 () in
    let nash = (Links.nash t).assignment in
    let m = Links.num_links t in
    let budget = ref t.Links.demand in
    let strategy = Array.make m 0.0 in
    Array.iteri
      (fun i n ->
        let roll = Prng.int rng 3 in
        let want =
          if roll = 0 then 0.0
          else if roll = 1 then Prng.uniform rng ~lo:0.0 ~hi:n
          else Prng.uniform rng ~lo:n ~hi:(n +. 0.3)
        in
        let take = Float.min want !budget in
        strategy.(i) <- take;
        budget := !budget -. take)
      nash;
    if not (Theory.frozen_receive_nothing t ~strategy) then incr violations
  done;
  table
    [
      bool_row
        (Printf.sprintf "t_i = 0 on frozen links, %d random mixed strategies" trials)
        ~paper:"Thm 7.4 / Lemma 7.5" (!violations = 0);
    ]

(* E8 — Proposition 7.1: Nash monotonicity in the demand. *)
let e8_monotone () =
  section "E8 (Prop 7.1)" "Nash link flows are monotone in the total demand";
  let rng = Prng.create 17 in
  let trials = 500 in
  let violations = ref 0 in
  for _ = 1 to trials do
    let t =
      match Prng.int rng 2 with
      | 0 -> W.random_affine_links rng ~m:(2 + Prng.int rng 6) ~demand:2.0 ()
      | _ -> W.random_polynomial_links rng ~m:(2 + Prng.int rng 6) ~demand:2.0 ()
    in
    let r' = Prng.uniform rng ~lo:0.0 ~hi:2.0 in
    if not (Theory.nash_monotone t ~r') then incr violations
  done;
  table
    [
      bool_row
        (Printf.sprintf "N(r') <= N(r) pointwise, %d random (instance, r') pairs" trials)
        ~paper:"Proposition 7.1" (!violations = 0);
    ]

(* E9 — the quoted LLF bounds (Eq. (2) context) and a SCALE comparison. *)
let e9_bounds () =
  section "E9 ([41] Th. 6.4.4/6.4.5)" "LLF α-sweep: 1/α and 4/(3+α) guarantees; SCALE";
  let rng = Prng.create 19 in
  let instances =
    List.init 40 (fun _ ->
        match Prng.int rng 3 with
        | 0 -> W.random_affine_links rng ~m:(2 + Prng.int rng 6) ~demand:1.0 ()
        | 1 -> W.random_polynomial_links rng ~m:(2 + Prng.int rng 6) ~demand:1.0 ()
        | _ -> W.random_mm1_links rng ~m:(2 + Prng.int rng 6) ~demand:1.0 ())
  in
  let affine_instances =
    List.init 40 (fun _ -> W.random_affine_links rng ~m:(2 + Prng.int rng 6) ~demand:1.0 ())
  in
  let rows = ref [] in
  List.iter
    (fun alpha ->
      let worst_any =
        List.fold_left
          (fun acc t -> Float.max acc (S.llf t ~alpha).ratio_to_opt)
          1.0 instances
      in
      let worst_affine =
        List.fold_left
          (fun acc t -> Float.max acc (S.llf t ~alpha).ratio_to_opt)
          1.0 affine_instances
      in
      let worst_scale =
        List.fold_left
          (fun acc t -> Float.max acc (S.scale t ~alpha).ratio_to_opt)
          1.0 instances
      in
      rows :=
        {
          quantity = Printf.sprintf "α=%.2f  worst LLF ratio (any latency)" alpha;
          paper = Printf.sprintf "<= 1/α = %.3f" (Bounds.one_over_alpha alpha);
          measured = Printf.sprintf "%.4f" worst_any;
          pass = worst_any <= Bounds.one_over_alpha alpha +. 1e-6;
        }
        :: {
             quantity = Printf.sprintf "α=%.2f  worst LLF ratio (affine)" alpha;
             paper = Printf.sprintf "<= 4/(3+α) = %.4f" (Bounds.linear_llf alpha);
             measured = Printf.sprintf "%.4f" worst_affine;
             pass = worst_affine <= Bounds.linear_llf alpha +. 1e-6;
           }
        :: {
             quantity = Printf.sprintf "α=%.2f  worst SCALE ratio (info)" alpha;
             paper = "no guarantee quoted";
             measured = Printf.sprintf "%.4f" worst_scale;
             pass = true;
           }
        :: !rows)
    [ 0.1; 0.25; 0.5; 0.75; 0.9 ];
  table (List.rev !rows)

(* E10 — Corollary 2.2: α >= β is easy (ratio exactly 1), α < β is not. *)
let e10_threshold () =
  section "E10 (Cor 2.2)" "the threshold behaviour at α = β_M";
  let t = W.fig456 in
  let r = Optop.run t in
  let beta = r.beta in
  let opt_cost = r.optimum_cost in
  let above = BF.optimal_strategy ~resolution:36 t ~alpha:(Float.min 1.0 (beta +. 0.02)) in
  let below = BF.optimal_strategy ~resolution:36 t ~alpha:(beta *. 0.9) in
  ignore above;
  table
    [
      check_row "β_M (fig 4-6)" ~paper:(29.0 /. 120.0) beta;
      check_row "OpTop at α = β: C(S+T)" ~paper:opt_cost r.induced_cost;
      bool_row "grid search at α = 0.9β stays above C(O)"
        ~paper:"(M,r,α<β) cannot reach C(O)"
        (below.induced_cost > opt_cost +. 1e-6);
      bool_row "grid search at α = β+2% reaches C(O) (within grid error)"
        ~paper:"(M,r,α>=β) reaches C(O)"
        (BF.can_reach_optimum ~resolution:36 ~eps:2e-3 t ~alpha:(Float.min 1.0 (beta +. 0.02)));
    ]

(* E11 — Theorem 2.1: k commodities. *)
let e11_k_commodity () =
  section "E11 (Thm 2.1)" "MOP on a 2-commodity network";
  let net = W.two_commodity () in
  let r = Mop.run net in
  table
    [
      info_row "β (2 commodities)" ~paper:"computed in poly time"
        (Printf.sprintf "%.6f" r.beta);
      check_row "induced C(S+T) = C(O)" ~paper:r.opt_cost ~eps:1e-4 r.induced.cost;
      bool_row "induced edge flows = O" ~paper:"S+T ≡ O"
        (Vec.linf_dist r.induced.combined_edge_flow r.opt_edge_flow <= 1e-3);
      check_row "residual follower Wardrop gap" ~paper:0.0 ~eps:1e-6 r.induced.wardrop_gap;
    ]

(* E12 — the classic Braess graph: β = 1 and partial control never reaches
   the optimum. *)
let e12_braess_negative () =
  section "E12 (§1.1(ii))" "classic Braess graph: the optimum needs full control";
  let net = W.braess_classic () in
  let r = Mop.run net in
  let rows =
    [
      check_row "C(N)" ~paper:2.0 r.nash_cost;
      check_row "C(O)" ~paper:1.5 r.opt_cost;
      check_row "price of anarchy" ~paper:(4.0 /. 3.0) (r.nash_cost /. r.opt_cost);
      check_row "β_G" ~paper:1.0 r.beta;
    ]
  in
  (* SCALE sweep: strictly above C(O) for every α < 1. *)
  let scale_rows =
    List.map
      (fun alpha ->
        let leader = Vec.scale alpha r.opt_edge_flow in
        let cost =
          Stackelberg.Induced.cost_of_strategy net ~leader_edge_flow:leader
            ~follower_demands:[| 1.0 -. alpha |]
        in
        {
          quantity = Printf.sprintf "SCALE(α=%.2f) induced cost" alpha;
          paper = "> C(O) = 1.5 for α < 1";
          measured = Printf.sprintf "%.6f" cost;
          pass = cost > 1.5 +. 1e-6;
        })
      [ 0.25; 0.5; 0.75; 0.95 ]
  in
  table (rows @ scale_rows)

(* E13 — footnote 6: the Sharma–Williamson threshold. *)
let e13_sharma_williamson () =
  section "E13 (footnote 6)" "improving strategies control >= min under-loaded Nash load";
  let rng = Prng.create 23 in
  let rows = ref [] in
  let tried = ref 0 in
  while !tried < 4 do
    let t = W.random_affine_links rng ~m:2 ~demand:1.0 () in
    let threshold = Theory.sharma_williamson_threshold t in
    if threshold <> Float.infinity && threshold > 0.05 then begin
      incr tried;
      let nash_cost = Links.cost t (Links.nash t).assignment in
      let alpha = 0.9 *. threshold /. t.Links.demand in
      let bf = BF.optimal_strategy ~resolution:24 t ~alpha in
      rows :=
        {
          quantity =
            Printf.sprintf "instance %d: best cost with budget 0.9·threshold (%.4f)" !tried
              (0.9 *. threshold);
          paper = Printf.sprintf ">= C(N) = %.6f" nash_cost;
          measured = Printf.sprintf "%.6f" bf.induced_cost;
          pass = bf.induced_cost >= nash_cost -. 1e-6;
        }
        :: !rows
    end
  done;
  table (List.rev !rows)

(* E14 — the opening claim: the coordination ratio of Expression (1) can
   be arbitrarily larger than 1 (Pigou family of growing degree), and the
   price of optimum for the family has a closed form. *)
let e14_unbounded_poa () =
  section "E14 (Expr. (1), [42])" "Pigou family x^d vs 1: PoA unbounded, β closed form";
  let rows =
    List.concat_map
      (fun d ->
        let t = W.pigou_degree d in
        [
          check_row
            (Printf.sprintf "d=%-3d PoA = anarchy value α(d)" d)
            ~paper:(Bounds.poa_polynomial d) ~eps:1e-5 (Links.price_of_anarchy t);
          check_row
            (Printf.sprintf "d=%-3d β = 1 - (d+1)^(-1/d)" d)
            ~paper:(W.pigou_degree_beta d) ~eps:1e-6 (Optop.beta t);
        ])
      [ 1; 2; 4; 8; 16; 32 ]
  in
  table rows

(* E15 — the degree-d Braess family: β_G follows its closed form and MOP
   still induces the optimum on every member. *)
let e15_braess_family () =
  section "E15 (Braess family)" "β_G = 2(1-(d+1)^(-1/d)) on the degree-d Braess graph";
  let rows =
    List.concat_map
      (fun d ->
        let r = Mop.run (W.braess_unbounded ~degree:d ()) in
        [
          check_row (Printf.sprintf "d=%d β_G" d) ~paper:(W.braess_unbounded_beta d) ~eps:1e-4
            r.beta;
          check_row (Printf.sprintf "d=%d induced/optimum ratio" d) ~paper:1.0 ~eps:1e-4
            (r.induced.cost /. r.opt_cost);
        ])
      [ 1; 2; 3; 5; 8 ]
  in
  table rows

(* E16 — the a-posteriori anarchy cost curve (M,r,α) on Pigou, against the
   analytic solution. *)
let e16_alpha_sweep () =
  section "E16 (Expr. (2))" "the curve α ↦ (M,r,α) on Pigou vs the closed form";
  let curve = Stackelberg.Alpha_sweep.run ~samples:11 W.pigou in
  let rows =
    check_row "β (curve hits 1 here)" ~paper:0.5 curve.Stackelberg.Alpha_sweep.beta
    :: List.map
         (fun (p : Stackelberg.Alpha_sweep.point) ->
           check_row
             (Printf.sprintf "ratio at α=%.1f" p.alpha)
             ~paper:(Stackelberg.Alpha_sweep.pigou_closed_form p.alpha)
             ~eps:2e-3 p.ratio)
         curve.points
  in
  table rows

(* E17 — solver ablation: three independent methods, one optimum. *)
let e17_solver_ablation () =
  section "E17 (ablation)" "path equilibration vs Frank-Wolfe vs MSA on Fig. 7";
  let net = W.fig7 () in
  let eq = Eq.solve Obj.System_optimum net in
  let fw = Sgr_network.Frank_wolfe.solve ~tol:1e-9 Obj.System_optimum net in
  let msa = Sgr_network.Msa.solve ~tol:1e-6 Obj.System_optimum net in
  let c_eq = Net.cost net eq.edge_flow in
  let c_fw = Net.cost net fw.edge_flow in
  let c_msa = Net.cost net msa.edge_flow in
  table
    [
      check_row "equilibrate C(O)" ~paper:2.4168 ~eps:1e-4 c_eq;
      check_row "frank-wolfe C(O)" ~paper:2.4168 ~eps:1e-4 c_fw;
      check_row "msa C(O)" ~paper:2.4168 ~eps:1e-3 c_msa;
      info_row "iterations (equilibrate sweeps / FW / MSA)" ~paper:"exactness varies"
        (Printf.sprintf "%d / %d / %d" eq.sweeps fw.iterations msa.iterations);
      bool_row "FW needs fewer iterations than MSA at equal gap" ~paper:"line search helps"
        (fw.iterations <= msa.iterations);
    ]

(* E18 — ablation: the Theorem-2.4-shaped partition search as a heuristic
   on hard instances with nonlinear latencies, vs LLF/SCALE and the grid
   optimum. *)
let e18_partition_heuristic () =
  section "E18 (ablation)" "partition heuristic vs LLF/SCALE/grid on hard nonlinear instances";
  let rng = Prng.create 29 in
  let rows = ref [] in
  let tried = ref 0 in
  while !tried < 5 do
    let t = W.random_polynomial_links rng ~m:(2 + Prng.int rng 2) ~demand:1.0 () in
    let beta = Optop.beta t in
    if beta > 0.1 then begin
      incr tried;
      let alpha = Prng.uniform rng ~lo:0.05 ~hi:beta in
      let h = Stackelberg.Partition_heuristic.solve t ~alpha in
      let grid = BF.optimal_strategy ~resolution:48 t ~alpha in
      let llf = (S.llf t ~alpha).induced_cost in
      let scale = (S.scale t ~alpha).induced_cost in
      rows :=
        {
          quantity =
            Printf.sprintf "instance %d (α=%.3f < β=%.3f): partition vs grid [llf %.4f, scale %.4f]"
              !tried alpha beta llf scale;
          paper = Printf.sprintf "%.6f (grid opt)" grid.induced_cost;
          measured = Printf.sprintf "%.6f" h.induced_cost;
          (* Heuristic must be within 1% of the grid optimum and no worse
             than the classical heuristics. *)
          pass =
            h.induced_cost <= Float.min llf scale +. 1e-6
            && h.induced_cost <= grid.induced_cost +. (0.01 *. grid.induced_cost);
        }
        :: !rows
    end
  done;
  table (List.rev !rows)

(* E19 — the infinite-user model is the right limit: atomic splittable
   equilibria converge to the Wardrop equilibrium as players multiply, and
   OpTop's Leader strategy already induces near-optimal cost against
   finitely many followers. *)
let e19_atomic_limit () =
  section "E19 (model limit, [20])" "finitely many followers vs the paper's infinite-user model";
  let module A = Sgr_atomic.Atomic_links in
  let lats = W.pigou.Links.latencies in
  let wardrop = (Links.nash W.pigou).assignment in
  let rows =
    List.map
      (fun n ->
        let t = A.split_evenly lats ~total:1.0 ~players:n in
        let profile, _ = A.equilibrium t in
        let gap = Vec.linf_dist (A.total_load t profile) wardrop in
        check_row
          (Printf.sprintf "pigou, n=%-3d |atomic - wardrop| = 1/(n+1)" n)
          ~paper:(1.0 /. float_of_int (n + 1))
          ~eps:1e-4 gap)
      [ 1; 2; 4; 8; 16; 32 ]
  in
  (* OpTop's strategy against n atomic followers on the Figs. 4-6 system:
     leader freezes the under-loaded links; followers split the rest. *)
  let optop = Optop.run W.fig456 in
  let shifted =
    Array.mapi (fun i lat -> Sgr_latency.Latency.shift optop.strategy.(i) lat)
      W.fig456.Links.latencies
  in
  let remaining = 1.0 -. Vec.sum optop.strategy in
  let follower_rows =
    List.map
      (fun n ->
        let t = A.split_evenly shifted ~total:remaining ~players:n in
        let profile, _ = A.equilibrium t in
        let load = A.total_load t profile in
        let combined = Vec.add optop.strategy load in
        let cost = Links.cost W.fig456 combined in
        {
          quantity = Printf.sprintf "fig4-6, OpTop leader vs n=%d atomic followers" n;
          paper = Printf.sprintf "-> C(O) = %.6f as n grows" optop.optimum_cost;
          measured = Printf.sprintf "%.6f" cost;
          pass = cost >= optop.optimum_cost -. 1e-9 && cost <= optop.nash_cost +. 1e-9;
        })
      [ 1; 4; 16; 64 ]
  in
  table (rows @ follower_rows)

(* E20 — the price of anarchy is independent of the network topology [38]:
   the measured PoA never exceeds the worst per-latency Pigou bound, on
   parallel links and on networks alike. *)
let e20_pigou_bound () =
  section "E20 ([38])" "PoA <= worst Pigou bound, independent of topology";
  let rng = Prng.create 31 in
  let check_links label t =
    let bound =
      Array.fold_left
        (fun acc lat -> Float.max acc (Bounds.pigou_bound ~r_max:4.0 lat))
        1.0 t.Links.latencies
    in
    let poa = Links.price_of_anarchy t in
    {
      quantity = label;
      paper = Printf.sprintf "<= %.4f (pigou bound)" bound;
      measured = Printf.sprintf "%.4f" poa;
      pass = poa <= bound +. 1e-4;
    }
  in
  let check_net label net =
    let bound =
      Array.fold_left
        (fun acc lat -> Float.max acc (Bounds.pigou_bound ~r_max:4.0 lat))
        1.0 net.Net.latencies
    in
    let nash = Eq.solve Obj.Wardrop net in
    let opt = Eq.solve Obj.System_optimum net in
    let poa = Net.cost net nash.edge_flow /. Net.cost net opt.edge_flow in
    {
      quantity = label;
      paper = Printf.sprintf "<= %.4f (pigou bound)" bound;
      measured = Printf.sprintf "%.4f" poa;
      pass = poa <= bound +. 1e-4;
    }
  in
  let rows =
    [
      check_links "pigou (parallel links)" W.pigou;
      check_links "fig4-6 (parallel links)" W.fig456;
      check_links "pigou degree 4" (W.pigou_degree 4);
      check_net "fig7 (network)" (W.fig7 ());
      check_net "classic braess (network)" (W.braess_classic ());
    ]
    @ List.init 5 (fun k ->
          check_links
            (Printf.sprintf "random polynomial links #%d" (k + 1))
            (W.random_polynomial_links rng ~m:(2 + Prng.int rng 5) ~demand:1.0 ()))
    @ List.init 3 (fun k ->
          check_net
            (Printf.sprintf "random 2-commodity grid #%d" (k + 1))
            (W.random_multicommodity rng ~rows:3 ~cols:3 ~commodities:2 ()))
  in
  table rows

(* E21 — the other lever: marginal-cost tolls (intro, [4]) reach the
   first-best on every instance, including those where the Stackelberg
   Leader needs all the flow. *)
let e21_tolls () =
  section "E21 (intro, [4])" "marginal-cost tolls vs Stackelberg control";
  let links_row label t =
    let _, cost = Stackelberg.Tolls.links_outcome t in
    let opt_cost = Links.cost t (Links.opt t).assignment in
    let beta = Optop.beta t in
    {
      quantity = Printf.sprintf "%s (β = %.3f): tolled cost" label beta;
      paper = Printf.sprintf "= C(O) = %.6f" opt_cost;
      measured = Printf.sprintf "%.6f" cost;
      pass = Tol.approx ~eps:1e-5 cost opt_cost;
    }
  in
  let net_row label net =
    let _, cost = Stackelberg.Tolls.network_outcome net in
    let r = Mop.run net in
    {
      quantity = Printf.sprintf "%s (β_G = %.3f): tolled cost" label r.beta;
      paper = Printf.sprintf "= C(O) = %.6f" r.opt_cost;
      measured = Printf.sprintf "%.6f" cost;
      pass = Tol.approx ~eps:1e-4 cost r.opt_cost;
    }
  in
  table
    [
      links_row "pigou" W.pigou;
      links_row "fig4-6" W.fig456;
      links_row "pigou degree 8" (W.pigou_degree 8);
      net_row "fig7" (W.fig7 ());
      net_row "classic braess" (W.braess_classic ());
    ]

(* E22 — atomic Braess: with finitely many splittable players the paradox
   is milder; the equilibrium cost interpolates C(O) -> C(N). *)
let e22_atomic_braess () =
  section "E22 (atomic Braess)" "equilibrium cost interpolates C(O)=1.5 -> C(N)=2 in players";
  let module AN = Sgr_atomic.Atomic_net in
  let prev = ref 0.0 in
  let rows =
    List.map
      (fun n ->
        let t = AN.replicate (W.braess_classic ()) ~players:n in
        let profile, _ = AN.equilibrium t in
        let cost = AN.social_cost t profile in
        let ok = cost >= !prev -. 1e-7 && 1.5 -. 1e-7 <= cost && cost <= 2.0 +. 1e-7 in
        prev := cost;
        {
          quantity = Printf.sprintf "n=%-3d equilibrium cost" n;
          paper = "nondecreasing, within [1.5, 2]";
          measured = Printf.sprintf "%.6f" cost;
          pass = ok;
        })
      [ 1; 2; 4; 8; 16 ]
  in
  table rows

(* E23 — β as a function of demand: the Pigou closed form
   β(r) = max(0, 1 - 1/(2r)), and the M/M/1 regimes of the paper's §2
   remark ("highly appealing links or large groups of identical links
   make β small"). *)
let e23_beta_profile () =
  section "E23 (β vs demand)" "β_M(r): Pigou closed form; M/M/1 regimes (§2 remark)";
  let pigou_rows =
    Stackelberg.Beta_profile.run ~samples:6 W.pigou ~r_lo:0.5 ~r_hi:3.0
    |> List.map (fun (p : Stackelberg.Beta_profile.point) ->
           check_row
             (Printf.sprintf "pigou β(r=%.1f) = 1 - 1/(2r)" p.demand)
             ~paper:(Stackelberg.Beta_profile.pigou_closed_form p.demand)
             ~eps:1e-5 p.beta)
  in
  let mm1_row label t =
    let beta = Optop.beta t in
    info_row label ~paper:"small β (§2 remark)" (Printf.sprintf "β = %.4f" beta)
  in
  table
    (pigou_rows
    @ [
        mm1_row "M/M/1: 5 identical links"
          (W.mm1_links ~capacities:[| 0.6; 0.6; 0.6; 0.6; 0.6 |] ~demand:1.0);
        mm1_row "M/M/1: 2 strong + 3 weak"
          (W.mm1_links ~capacities:[| 2.0; 1.8; 0.4; 0.35; 0.3 |] ~demand:1.0);
        mm1_row "M/M/1: geometric capacities"
          (W.mm1_links ~capacities:[| 1.6; 0.8; 0.4; 0.2; 0.1 |] ~demand:1.0);
      ])

(* E24 — the discrete cousin (Fotakis [12]): unsplittable players, LLF
   Stackelberg sweep over the number of dictated players. *)
let e24_discrete_llf () =
  section "E24 (Fotakis [12])" "unsplittable congestion game: LLF sweep over controlled players";
  let module C = Sgr_discrete.Congestion in
  let t =
    C.make
      [| Sgr_latency.Latency.linear 1.0; Sgr_latency.Latency.constant 2.5 |]
      ~players:3
  in
  let nash_cost = C.social_cost t (C.nash t) in
  let opt_cost = C.optimum_cost t in
  let rows =
    [
      check_row "C(N) (pure equilibrium)" ~paper:6.5 nash_cost;
      check_row "C(O) (exact DP)" ~paper:6.0 opt_cost;
    ]
    @ List.map
        (fun k ->
          let state = C.stackelberg_llf t ~controlled:k in
          let cost = C.social_cost t state in
          {
            quantity = Printf.sprintf "LLF with k=%d dictated players" k;
            paper = "C(O) <= cost <= C(N), nonincreasing";
            measured = Printf.sprintf "%.4f" cost;
            pass = opt_cost -. 1e-9 <= cost && cost <= nash_cost +. 1e-9;
          })
        [ 0; 1; 2; 3 ]
  in
  (* Random sanity at scale. *)
  let rng = Prng.create 37 in
  let random_rows =
    List.init 3 (fun i ->
        let m = 2 + Prng.int rng 3 and n = 4 + Prng.int rng 5 in
        let lats =
          Array.init m (fun _ ->
              Sgr_latency.Latency.affine
                ~slope:(Prng.uniform rng ~lo:0.2 ~hi:2.0)
                ~intercept:(Prng.uniform rng ~lo:0.0 ~hi:2.0))
        in
        let t = C.make lats ~players:n in
        let full = C.social_cost t (C.stackelberg_llf t ~controlled:n) in
        check_row
          (Printf.sprintf "random game #%d: full control = C(O)" (i + 1))
          ~paper:(C.optimum_cost t) ~eps:1e-9 full)
  in
  table (rows @ random_rows)

let run_all () =
  Format.printf "Reproduction experiments — Kaporis & Spirakis, \"The price of optimum in@.";
  Format.printf "Stackelberg games\" (SPAA'06 / TCS 410(8-10):745-755, 2009)@.";
  e1_pigou ();
  e2_optop ();
  e3_fig7 ();
  e4_swap ();
  e5_linear_exact ();
  e6_useless ();
  e7_frozen ();
  e8_monotone ();
  e9_bounds ();
  e10_threshold ();
  e11_k_commodity ();
  e12_braess_negative ();
  e13_sharma_williamson ();
  e14_unbounded_poa ();
  e15_braess_family ();
  e16_alpha_sweep ();
  e17_solver_ablation ();
  e18_partition_heuristic ();
  e19_atomic_limit ();
  e20_pigou_bound ();
  e21_tolls ();
  e22_atomic_braess ();
  e23_beta_profile ();
  e24_discrete_llf ()
