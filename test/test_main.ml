(* Aggregated Alcotest runner for all suites. *)

let () =
  Alcotest.run "stackelberg-price-of-optimum"
    [
      ("numerics", Test_numerics.suite);
      ("obs", Test_obs.suite);
      ("hist", Test_hist.suite);
      ("par", Test_par.suite);
      ("latency", Test_latency.suite);
      ("graph", Test_graph.suite);
      ("topology", Test_topology.suite);
      ("links", Test_links.suite);
      ("network", Test_network.suite);
      ("optop", Test_optop.suite);
      ("strategies", Test_strategies.suite);
      ("theory", Test_theory.suite);
      ("linear-exact", Test_linear_exact.suite);
      ("partition-heuristic", Test_partition.suite);
      ("mop", Test_mop.suite);
      ("extensions", Test_extensions.suite);
      ("io", Test_io.suite);
      ("atomic", Test_atomic.suite);
      ("atomic-net & tolls", Test_atomic_net.suite);
      ("discrete", Test_discrete.suite);
      ("workloads", Test_workloads.suite);
      ("serve", Test_serve.suite);
      ("assign", Test_assign.suite);
    ]
