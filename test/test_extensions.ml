(* Tests for the extension modules: weak/strong β in MOP, network
   heuristics (SCALE/LLF), the α-sweep curve, the MSA solver, and the
   worst-case instance families. *)

open Helpers
module Net = Sgr_network.Network
module Eq = Sgr_network.Equilibrate
module Msa = Sgr_network.Msa
module FW = Sgr_network.Frank_wolfe
module Obj = Sgr_network.Objective
module Links = Sgr_links.Links
module Mop = Stackelberg.Mop
module NS = Stackelberg.Net_strategies
module Sweep = Stackelberg.Alpha_sweep
module W = Sgr_workloads.Workloads
module Prng = Sgr_numerics.Prng
module Vec = Sgr_numerics.Vec
module Tol = Sgr_numerics.Tolerance

(* ---- weak vs strong Stackelberg β ---- *)

let test_beta_weak_single_commodity () =
  (* With one commodity the notions coincide. *)
  let r = Mop.run (W.fig7 ()) in
  approx "weak = strong" r.beta r.beta_weak

let test_beta_weak_two_commodity () =
  let r = Mop.run (W.two_commodity ()) in
  check_true "weak >= strong" (r.beta_weak >= r.beta -. 1e-9)

let test_beta_weak_asymmetric () =
  (* Commodity 1 is a Pigou pair (β = 1/2), commodity 2 a single edge
     (β = 0): strong β averages, weak β takes the max. *)
  let g = Sgr_graph.Digraph.of_edges ~num_nodes:4 [ (0, 1); (0, 1); (2, 3) ] in
  let latencies =
    [| Sgr_latency.Latency.linear 1.0; Sgr_latency.Latency.constant 1.0;
       Sgr_latency.Latency.linear 1.0 |]
  in
  let net =
    Net.make g ~latencies
      ~commodities:[| { Net.src = 0; dst = 1; demand = 1.0 }; { Net.src = 2; dst = 3; demand = 1.0 } |]
  in
  let r = Mop.run net in
  approx "strong β = 1/4" 0.25 r.beta;
  approx "weak β = 1/2" 0.5 r.beta_weak

(* ---- network heuristics ---- *)

let test_net_aloof_is_nash () =
  let net = W.braess_classic () in
  let o = NS.aloof net in
  approx ~eps:1e-5 "aloof cost = C(N) = 2" 2.0 o.induced.cost;
  approx ~eps:1e-5 "ratio = PoA" (4.0 /. 3.0) o.ratio_to_opt

let test_net_scale_full_control () =
  let net = W.fig7 () in
  let o = NS.scale net ~alpha:1.0 in
  approx ~eps:1e-4 "α = 1 yields the optimum" 1.0 o.ratio_to_opt

let test_net_llf_full_control () =
  let net = W.fig7 () in
  let o = NS.llf net ~alpha:1.0 in
  approx ~eps:1e-4 "α = 1 yields the optimum" 1.0 o.ratio_to_opt

let test_net_llf_at_beta_fig7 () =
  (* On Fig. 7 the non-shortest (leader) paths are exactly the two slowest
     optimal paths, so LLF with α = β covers them and induces O. *)
  let net = W.fig7 () in
  let beta = Mop.beta net in
  let o = NS.llf net ~alpha:beta in
  approx ~eps:1e-3 "LLF at β reaches the optimum" 1.0 o.ratio_to_opt

let test_net_alpha_validation () =
  match NS.scale (W.fig7 ()) ~alpha:2.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "alpha > 1 rejected"

let prop_net_heuristics_sane =
  qcheck ~count:15 "network heuristics: ratio >= 1, never below optimum" QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (seed + 1) in
      let net =
        W.random_layered_network rng ~layers:(1 + Prng.int rng 2) ~width:(1 + Prng.int rng 2) ()
      in
      List.for_all
        (fun alpha ->
          (NS.scale net ~alpha).ratio_to_opt >= 1.0 -. 1e-6
          && (NS.llf net ~alpha).ratio_to_opt >= 1.0 -. 1e-6)
        [ 0.3; 0.7 ])

(* ---- α sweep ---- *)

let test_sweep_pigou_matches_closed_form () =
  let curve = Sweep.run ~samples:11 W.pigou in
  approx "beta" 0.5 curve.beta;
  List.iter
    (fun (p : Sweep.point) ->
      approx ~eps:2e-3
        (Printf.sprintf "ratio at α=%.2f" p.alpha)
        (Sweep.pigou_closed_form p.alpha) p.ratio)
    curve.points

let test_sweep_monotone () =
  let curve = Sweep.run ~samples:11 W.fig456 in
  let rec chk = function
    | (a : Sweep.point) :: (b :: _ as rest) ->
        approx_le "ratios nonincreasing" b.ratio (a.ratio +. 1e-6);
        chk rest
    | _ -> ()
  in
  chk curve.points

let test_sweep_hits_one_at_beta () =
  let curve = Sweep.run ~samples:21 W.fig456 in
  List.iter
    (fun (p : Sweep.point) ->
      if p.alpha >= curve.beta then approx "ratio 1 above β" 1.0 p.ratio)
    curve.points

let test_sweep_methods () =
  let curve = Sweep.run ~samples:5 W.pigou in
  check_true "uses grid below β"
    (List.exists (fun (p : Sweep.point) -> p.method_used = Sweep.Grid_search) curve.points);
  check_true "uses threshold above β"
    (List.exists (fun (p : Sweep.point) -> p.method_used = Sweep.Exact_threshold) curve.points)

let test_sweep_ratio_degenerate () =
  (* Zero optimum with positive induced cost is an infinite ratio, not a
     silent 1.0; zero against zero is a clean 1.0. *)
  check_true "positive over zero is infinite"
    (Sweep.ratio_of ~opt_cost:0.0 0.5 = Float.infinity);
  approx "zero over zero" 1.0 (Sweep.ratio_of ~opt_cost:0.0 0.0);
  approx "ordinary ratio" 1.5 (Sweep.ratio_of ~opt_cost:2.0 3.0)

(* ---- MSA ---- *)

let test_msa_pigou () =
  let g = Sgr_graph.Digraph.of_edges ~num_nodes:2 [ (0, 1); (0, 1) ] in
  let net =
    Net.single g
      ~latencies:[| Sgr_latency.Latency.linear 1.0; Sgr_latency.Latency.constant 1.0 |]
      ~src:0 ~dst:1 ~demand:1.0
  in
  let nash = Msa.solve ~tol:1e-7 Obj.Wardrop net in
  approx ~eps:1e-3 "nash edge 0" 1.0 nash.edge_flow.(0);
  let opt = Msa.solve ~tol:1e-7 Obj.System_optimum net in
  approx ~eps:1e-3 "opt split" 0.5 opt.edge_flow.(0)

let prop_msa_agrees_with_equilibrate =
  qcheck ~count:10 "MSA converges to the same optimum" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let net =
        W.random_layered_network rng ~layers:(1 + Prng.int rng 2) ~width:(1 + Prng.int rng 2) ()
      in
      let a = Msa.solve ~tol:1e-8 Obj.System_optimum net in
      let b = Eq.solve Obj.System_optimum net in
      Vec.linf_dist a.edge_flow b.edge_flow <= 5e-3)

let test_fw_faster_than_msa_in_iterations () =
  (* Ablation sanity: on Fig. 7 the exact line search needs far fewer
     iterations than the 1/k step for the same gap. *)
  let net = W.fig7 () in
  let fw = FW.solve ~tol:1e-8 Obj.System_optimum net in
  let msa = Msa.solve ~tol:1e-8 ~max_iter:500_000 Obj.System_optimum net in
  check_true
    (Printf.sprintf "fw=%d msa=%d" fw.iterations msa.iterations)
    (fw.iterations <= msa.iterations)

(* ---- β(r) profile ---- *)

let test_beta_profile_pigou_closed_form () =
  let points = Stackelberg.Beta_profile.run ~samples:11 W.pigou ~r_lo:0.1 ~r_hi:3.0 in
  List.iter
    (fun (p : Stackelberg.Beta_profile.point) ->
      approx ~eps:1e-5
        (Printf.sprintf "β(r=%.2f)" p.demand)
        (Stackelberg.Beta_profile.pigou_closed_form p.demand)
        p.beta)
    points

let test_beta_profile_zero_below_half () =
  let points = Stackelberg.Beta_profile.run ~samples:5 W.pigou ~r_lo:0.1 ~r_hi:0.5 in
  List.iter
    (fun (p : Stackelberg.Beta_profile.point) ->
      approx "β = 0 when N = O" 0.0 p.beta;
      approx "PoA = 1 there too" 1.0 p.poa)
    points

let test_beta_profile_validation () =
  match Stackelberg.Beta_profile.run W.pigou ~r_lo:2.0 ~r_hi:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "reversed range rejected"

(* ---- worst-case families ---- *)

let test_pigou_degree_poa_matches_bound () =
  List.iter
    (fun d ->
      let t = W.pigou_degree d in
      approx ~eps:1e-5
        (Printf.sprintf "PoA(d=%d) = anarchy value" d)
        (Stackelberg.Bounds.poa_polynomial d)
        (Links.price_of_anarchy t);
      approx ~eps:1e-5
        (Printf.sprintf "closed form (d=%d)" d)
        (W.pigou_degree_poa d) (Links.price_of_anarchy t))
    [ 1; 2; 3; 5; 8 ]

let test_pigou_degree_poa_grows () =
  check_true "unbounded in d"
    (W.pigou_degree_poa 50 > 5.0 && W.pigou_degree_poa 50 > W.pigou_degree_poa 10)

let test_pigou_degree_beta () =
  List.iter
    (fun d ->
      approx ~eps:1e-6
        (Printf.sprintf "β(d=%d)" d)
        (W.pigou_degree_beta d)
        (Stackelberg.Optop.beta (W.pigou_degree d)))
    [ 1; 2; 4; 8 ]

let test_braess_unbounded_beta_closed_form () =
  List.iter
    (fun d ->
      let r = Mop.run (W.braess_unbounded ~degree:d ()) in
      approx ~eps:1e-4
        (Printf.sprintf "β(d=%d) = 2(1-(d+1)^(-1/d))" d)
        (W.braess_unbounded_beta d) r.beta;
      approx ~eps:1e-4 "induced = optimum" r.opt_cost r.induced.cost)
    [ 1; 2; 3; 5 ]

let suite =
  [
    case "β weak = strong on one commodity" test_beta_weak_single_commodity;
    case "β weak >= strong" test_beta_weak_two_commodity;
    case "β weak vs strong, asymmetric demands" test_beta_weak_asymmetric;
    case "net aloof = Nash" test_net_aloof_is_nash;
    case "net SCALE α=1" test_net_scale_full_control;
    case "net LLF α=1" test_net_llf_full_control;
    case "net LLF at β on fig7" test_net_llf_at_beta_fig7;
    case "net heuristics: α validation" test_net_alpha_validation;
    prop_net_heuristics_sane;
    case "sweep: pigou closed form" test_sweep_pigou_matches_closed_form;
    case "sweep: monotone" test_sweep_monotone;
    case "sweep: hits 1 at β" test_sweep_hits_one_at_beta;
    case "sweep: methods" test_sweep_methods;
    case "sweep: degenerate zero-optimum ratio" test_sweep_ratio_degenerate;
    case "msa: pigou" test_msa_pigou;
    prop_msa_agrees_with_equilibrate;
    case "msa vs frank-wolfe iterations" test_fw_faster_than_msa_in_iterations;
    case "β(r): pigou closed form" test_beta_profile_pigou_closed_form;
    case "β(r): zero below r = 1/2" test_beta_profile_zero_below_half;
    case "β(r): validation" test_beta_profile_validation;
    case "pigou family: PoA = anarchy value" test_pigou_degree_poa_matches_bound;
    case "pigou family: PoA unbounded" test_pigou_degree_poa_grows;
    case "pigou family: β closed form" test_pigou_degree_beta;
    case "braess family: β closed form" test_braess_unbounded_beta_closed_form;
  ]
