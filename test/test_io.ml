(* Tests for the textual latency specs and instance files. *)

open Helpers
module LS = Sgr_io.Latency_spec
module IF = Sgr_io.Instance_file
module L = Sgr_latency.Latency
module Links = Sgr_links.Links
module Net = Sgr_network.Network
module W = Sgr_workloads.Workloads

let parse_ok s =
  match LS.parse s with
  | Ok l -> l
  | Error m -> Alcotest.failf "parse %S failed: %s" s m

let parse_err s =
  match LS.parse s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s

let test_affine_specs () =
  approx "x" 2.0 (L.eval (parse_ok "x") 2.0);
  approx "2x" 4.0 (L.eval (parse_ok "2x") 2.0);
  approx "2.5x + 0.5" 5.5 (L.eval (parse_ok "2.5x + 0.5") 2.0);
  approx "compact form" 5.5 (L.eval (parse_ok "2.5x+0.5") 2.0);
  approx "x + 1" 3.0 (L.eval (parse_ok "x + 1") 2.0);
  approx "bare number is constant" 0.7 (L.eval (parse_ok "0.7") 5.0);
  check_true "bare constant" (L.is_constant (parse_ok "0.7"))

let test_keyword_specs () =
  approx "const" 0.7 (L.eval (parse_ok "const 0.7") 9.0);
  approx "mm1" 1.0 (L.eval (parse_ok "mm1 2.0") 1.0);
  approx "poly" 13.0 (L.eval (parse_ok "poly 1 0 3") 2.0);
  approx "bpr default" 1.15 (L.eval (parse_ok "bpr 1 2") 2.0);
  approx "bpr explicit" 2.0 (L.eval (parse_ok "bpr 1 2 1 4") 2.0);
  check_true "case-insensitive" (L.is_constant (parse_ok "CONST 1.0"))

let test_bad_specs () =
  parse_err "";
  parse_err "frogs";
  parse_err "-2x";
  parse_err "x - 1";
  parse_err "const";
  parse_err "const -1";
  parse_err "mm1 0";
  parse_err "poly";
  parse_err "bpr 1";
  parse_err "shifted";
  parse_err "shifted 1";
  parse_err "shifted -1 x";
  parse_err "shifted 1 frogs"

let test_spec_roundtrip () =
  List.iter
    (fun lat ->
      let printed = LS.print lat in
      let reparsed = parse_ok printed in
      List.iter
        (fun x ->
          approx (Printf.sprintf "roundtrip %s at %g" printed x) (L.eval lat x)
            (L.eval reparsed x))
        [ 0.0; 0.5; 1.5 ])
    [
      L.linear 1.0;
      L.affine ~slope:2.5 ~intercept:(1.0 /. 6.0);
      L.constant 0.7;
      L.mm1 ~capacity:2.0;
      L.bpr ~free_flow:1.0 ~capacity:2.0 ();
      L.polynomial [| 1.0; 0.0; 3.0 |];
      L.shift 0.5 (L.affine ~slope:2.0 ~intercept:1.0);
      L.shift 0.25 (L.shift 0.75 (L.mm1 ~capacity:4.0));
    ]

let test_shifted_spec_canonicalizes () =
  (* The [shifted] keyword form parses recursively, and nested shifts
     collapse on construction: the parsed kind carries the summed offset
     over an unshifted base. *)
  let lat = parse_ok "shifted 0.5 shifted 1.5 affine 2 1" in
  (match L.kind lat with
  | L.Shifted { offset; base = L.Affine { slope; intercept } } ->
      approx "offsets sum" 2.0 offset;
      approx "slope" 2.0 slope;
      approx "intercept" 1.0 intercept
  | _ -> Alcotest.fail "expected a single Shifted-of-Affine kind");
  approx "evaluates as base(offset + x)" 8.0 (L.eval lat 1.5);
  (* Zero offset is the identity, not a [Shifted] node. *)
  match L.kind (parse_ok "shifted 0 mm1 2") with
  | L.Mm1 _ -> ()
  | _ -> Alcotest.fail "zero shift must parse to the bare base"

let test_spec_print_rejects_custom () =
  match LS.print (L.custom ~eval:(fun x -> x) ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "custom latencies are not serializable"

let test_links_file () =
  let text = "# a comment\nlinks\ndemand 1.0\nlink x\nlink const 1\n" in
  match IF.parse text with
  | Ok (IF.Links t) ->
      Alcotest.(check int) "two links" 2 (Links.num_links t);
      approx "pigou nash" 1.0 (Links.cost t (Links.nash t).assignment)
  | Ok (IF.Network _) -> Alcotest.fail "parsed as network"
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_network_file () =
  let text =
    "network\nnodes 3\nedge 0 1 x\nedge 1 2 x\nedge 0 2 const 3\ncommodity 0 2 1.0\n"
  in
  match IF.parse text with
  | Ok (IF.Network net) ->
      Alcotest.(check int) "3 edges" 3 (Sgr_graph.Digraph.num_edges net.Net.graph);
      approx "demand" 1.0 (Net.total_demand net)
  | Ok (IF.Links _) -> Alcotest.fail "parsed as links"
  | Error m -> Alcotest.failf "parse failed: %s" m

let expect_error text fragment =
  match IF.parse text with
  | Error m ->
      if not (String.length m >= String.length fragment) then
        Alcotest.failf "unexpected error %S" m
  | Ok _ -> Alcotest.failf "parse of %S unexpectedly succeeded" text

let test_file_errors () =
  expect_error "" "empty";
  expect_error "bogus\n" "unknown";
  expect_error "links\nlink x\n" "demand";
  expect_error "links\ndemand 1\n" "link";
  expect_error "links\ndemand 1\nlink x\nfrob 3\n" "keyword";
  expect_error "network\nedge 0 1 x\ncommodity 0 1 1\n" "nodes";
  expect_error "network\nnodes 2\ncommodity 0 1 1\n" "edge";
  expect_error "network\nnodes 2\nedge 0 1 x\n" "commodity";
  expect_error "network\nnodes 2\nedge 0 5 x\ncommodity 0 1 1\n" "range";
  expect_error "links\ndemand 1\nlink owl\n" "parse"

let test_error_line_numbers () =
  match IF.parse "links\ndemand 1.0\nlink x\nlink zebra\n" with
  | Error m -> check_true "line number mentioned" (String.length m > 0 && String.sub m 0 4 = "line")
  | Ok _ -> Alcotest.fail "should fail"

let test_links_roundtrip () =
  let printed = IF.print_links W.fig456 in
  match IF.parse printed with
  | Ok (IF.Links t) ->
      approx "same nash cost"
        (Links.cost W.fig456 (Links.nash W.fig456).assignment)
        (Links.cost t (Links.nash t).assignment);
      approx "same beta" (Stackelberg.Optop.beta W.fig456) (Stackelberg.Optop.beta t)
  | _ -> Alcotest.fail "roundtrip failed"

let test_network_roundtrip () =
  let net = W.fig7 () in
  let printed = IF.print_network net in
  match IF.parse printed with
  | Ok (IF.Network net') ->
      approx ~eps:1e-5 "same beta" (Stackelberg.Mop.beta net) (Stackelberg.Mop.beta net')
  | _ -> Alcotest.fail "roundtrip failed"

let test_two_commodity_roundtrip () =
  let net = W.two_commodity () in
  match IF.parse (IF.print_network net) with
  | Ok (IF.Network net') ->
      Alcotest.(check int) "two commodities survive" 2 (Array.length net'.Net.commodities)
  | _ -> Alcotest.fail "roundtrip failed"

let test_load_missing_file () =
  match IF.load "/nonexistent/instance.sgr" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing file must fail"

let prop_random_links_roundtrip =
  Helpers.qcheck ~count:30 "random links instances round-trip through the file format"
    QCheck.small_nat (fun seed ->
      let rng = Sgr_numerics.Prng.create (seed + 1) in
      let t =
        match Sgr_numerics.Prng.int rng 3 with
        | 0 -> W.random_affine_links rng ~m:(2 + Sgr_numerics.Prng.int rng 5) ()
        | 1 -> W.random_polynomial_links rng ~m:(2 + Sgr_numerics.Prng.int rng 5) ()
        | _ -> W.random_mm1_links rng ~m:(2 + Sgr_numerics.Prng.int rng 5) ()
      in
      match IF.parse (IF.print_links t) with
      | Ok (IF.Links t') ->
          let c = Links.cost t (Links.nash t).assignment in
          let c' = Links.cost t' (Links.nash t').assignment in
          Sgr_numerics.Tolerance.approx ~eps:1e-9 c c'
      | _ -> false)

let prop_random_networks_roundtrip =
  Helpers.qcheck ~count:20 "random networks round-trip through the file format"
    QCheck.small_nat (fun seed ->
      let rng = Sgr_numerics.Prng.create (seed + 1) in
      let net =
        if Sgr_numerics.Prng.bool rng then
          W.random_layered_network rng ~layers:(1 + Sgr_numerics.Prng.int rng 2)
            ~width:(1 + Sgr_numerics.Prng.int rng 2) ()
        else W.random_multicommodity rng ~rows:3 ~cols:3 ~commodities:2 ()
      in
      match IF.parse (IF.print_network net) with
      | Ok (IF.Network net') ->
          let module Eq = Sgr_network.Equilibrate in
          let module Obj = Sgr_network.Objective in
          let c = Net.cost net (Eq.solve Obj.Wardrop net).Eq.edge_flow in
          let c' = Net.cost net' (Eq.solve Obj.Wardrop net').Eq.edge_flow in
          Sgr_numerics.Tolerance.approx ~eps:1e-6 c c'
      | _ -> false)

(* The canonical serialization ([%h] floats, keyword forms) must be a
   *bit-exact* fixpoint: parse ∘ print is the identity on the printed
   bytes, not just on evaluation up to tolerance. *)
let canonical_latencies (a, b) =
  [
    L.constant (a +. 0.1);
    L.affine ~slope:(a +. 0.1) ~intercept:b;
    L.polynomial [| b; 0.0; a +. 0.1 |];
    L.mm1 ~capacity:(a +. b +. 1.0);
    L.bpr ~free_flow:(a +. 0.1) ~capacity:(b +. 1.0) ();
    L.shift (a +. 0.1) (L.affine ~slope:(b +. 0.1) ~intercept:a);
    L.shift (a +. 0.1) (L.shift (b +. 0.1) (L.mm1 ~capacity:(a +. b +. 1.0)));
    L.shift (b +. 0.1) (L.polynomial [| a; 0.0; b +. 0.1 |]);
  ]

let prop_canonical_spec_roundtrip =
  Helpers.qcheck ~count:200 "canonical latency specs: parse∘print is bit-exact"
    QCheck.(pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0))
    (fun seed ->
      List.for_all
        (fun lat ->
          let printed = LS.print_canonical lat in
          match LS.parse printed with
          | Error _ -> false
          | Ok lat' ->
              String.equal printed (LS.print_canonical lat')
              && Float.equal (L.eval lat 1.2345) (L.eval lat' 1.2345))
        (canonical_latencies seed))

let prop_canonical_instance_roundtrip =
  Helpers.qcheck ~count:50 "canonical instance files: parse∘to_string is a fixpoint"
    QCheck.small_nat (fun seed ->
      let rng = Sgr_numerics.Prng.create (seed + 1) in
      let inst =
        match Sgr_numerics.Prng.int rng 4 with
        | 0 -> IF.Links (W.random_affine_links rng ~m:(2 + Sgr_numerics.Prng.int rng 5) ())
        | 1 -> IF.Links (W.random_mm1_links rng ~m:(2 + Sgr_numerics.Prng.int rng 5) ())
        | 2 -> IF.Network (W.grid_network rng ~rows:2 ~cols:3 ())
        | _ ->
            IF.Network
              (W.random_layered_network rng ~layers:(1 + Sgr_numerics.Prng.int rng 2)
                 ~width:(1 + Sgr_numerics.Prng.int rng 2) ())
      in
      let printed = IF.to_string inst in
      match IF.parse printed with
      | Error _ -> false
      | Ok inst' -> String.equal printed (IF.to_string inst'))

let suite =
  [
    case "latency specs: affine forms" test_affine_specs;
    case "latency specs: keyword forms" test_keyword_specs;
    case "latency specs: malformed" test_bad_specs;
    case "latency specs: print/parse roundtrip" test_spec_roundtrip;
    case "latency specs: shifted keyword canonicalizes" test_shifted_spec_canonicalizes;
    case "latency specs: custom not serializable" test_spec_print_rejects_custom;
    case "instance files: links" test_links_file;
    case "instance files: network" test_network_file;
    case "instance files: error cases" test_file_errors;
    case "instance files: errors carry line numbers" test_error_line_numbers;
    case "instance files: links roundtrip" test_links_roundtrip;
    case "instance files: network roundtrip" test_network_roundtrip;
    case "instance files: multicommodity roundtrip" test_two_commodity_roundtrip;
    case "instance files: missing file" test_load_missing_file;
    prop_random_links_roundtrip;
    prop_random_networks_roundtrip;
    prop_canonical_spec_roundtrip;
    prop_canonical_instance_roundtrip;
  ]
