(* Sgr_obs: counters, spans, sinks and solver-convergence traces. *)

module Obs = Sgr_obs.Obs
module Export = Sgr_obs.Export
module FW = Sgr_network.Frank_wolfe
module Obj = Sgr_network.Objective
module W = Sgr_workloads.Workloads

let with_recorder f =
  let r = Obs.Recorder.create () in
  Obs.Recorder.install r;
  Fun.protect ~finally:(fun () -> Obs.set_sink None) (fun () -> ignore (f ()));
  Obs.Recorder.events r

let test_counters () =
  let c = Obs.counter "test.counter" in
  let base = Obs.value c in
  Obs.incr c;
  Obs.add c 4;
  Alcotest.(check int) "accumulates" (base + 5) (Obs.value c);
  let c' = Obs.counter "test.counter" in
  Obs.incr c';
  Alcotest.(check int) "same name, same counter" (base + 6) (Obs.value c);
  Alcotest.(check bool) "snapshot lists it" true
    (List.mem_assoc "test.counter" (Obs.counters ()));
  Obs.reset_counters ();
  Alcotest.(check int) "reset_all zeroes" 0 (Obs.value c);
  Alcotest.(check bool) "still registered after reset" true
    (List.mem_assoc "test.counter" (Obs.counters ()))

let test_spans_nest () =
  (* Deterministic clock: each read advances by one second. *)
  let ticks = ref 0.0 in
  Obs.set_clock (fun () ->
      ticks := !ticks +. 1.0;
      !ticks);
  let events =
    Fun.protect
      ~finally:(fun () -> Obs.set_clock Obs.default_clock)
      (fun () ->
        with_recorder (fun () ->
            Obs.span "test.parent" (fun () ->
                ignore (Obs.span "test.child" (fun () -> 1));
                ignore (Obs.span "test.child" (fun () -> 2));
                42)))
  in
  (* begin/end for parent + 2 children *)
  Alcotest.(check int) "six events" 6 (List.length events);
  let depth_of name =
    List.filter_map
      (function
        | Obs.Span_end { name = n; depth; _ } when n = name -> Some depth | _ -> None)
      events
  in
  Alcotest.(check (list int)) "parent at depth 0" [ 0 ] (depth_of "test.parent");
  Alcotest.(check (list int)) "children at depth 1" [ 1; 1 ] (depth_of "test.child");
  let totals = Export.span_totals events in
  let count, child_total = List.assoc "test.child" totals in
  Alcotest.(check int) "two child spans" 2 count;
  let _, parent_total = List.assoc "test.parent" totals in
  (* With the ticking clock: each child interval is 1s, the parent
     brackets both plus its own clock reads, so children sum below it. *)
  Alcotest.(check (float 1e-9)) "children sum to 2s" 2.0 child_total;
  Alcotest.(check bool) "children sum within parent" true (child_total <= parent_total)

let test_span_exception () =
  let events =
    with_recorder (fun () ->
        (try Obs.span "test.raises" (fun () -> failwith "boom") with Failure _ -> ());
        ())
  in
  Alcotest.(check int) "begin and end despite raise" 2 (List.length events);
  (* Nesting depth is restored, so a follow-up span sits at depth 0. *)
  let events' = with_recorder (fun () -> Obs.span "test.after" Fun.id) in
  match events' with
  | [ Obs.Span_begin { depth = 0; _ }; Obs.Span_end { depth = 0; _ } ] -> ()
  | _ -> Alcotest.fail "depth not restored after exception"

let test_noop_sink () =
  Obs.set_sink None;
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  Alcotest.(check int) "span is transparent" 7 (Obs.span "test.noop" (fun () -> 7));
  Obs.point ~solver:"noop" ~k:1 ~gap:0.0 ~objective:0.0 ~step:0.0;
  (* A solve without a sink carries no trace... *)
  let net = W.braess_classic () in
  let sol = FW.solve Obj.Wardrop net in
  Alcotest.(check int) "no trace without sink" 0 (List.length sol.trace);
  (* ...and a recorder installed afterwards has seen none of the above. *)
  let events = with_recorder (fun () -> ()) in
  Alcotest.(check int) "no events leaked into later sink" 0 (List.length events)

let test_fw_convergence_trace () =
  let net = W.braess_classic () in
  Obs.reset_counters ();
  let sol = ref None in
  let events =
    with_recorder (fun () -> sol := Some (FW.solve ~tol:1e-3 Obj.System_optimum net))
  in
  let sol = Option.get !sol in
  let trace = Array.of_list sol.FW.trace in
  Alcotest.(check int) "one point per iteration" sol.FW.iterations (Array.length trace);
  Alcotest.(check bool) "terminated by the gap" true (sol.FW.relative_gap <= 1e-3);
  (* The exact line search makes the objective monotone non-increasing;
     the duality gap may rise once while leaving the all-or-nothing
     start vertex, then decreases monotonically. *)
  for i = 0 to Array.length trace - 2 do
    Alcotest.(check bool) "objective non-increasing" true
      (trace.(i + 1).Sgr_network.Solver_types.objective
      <= trace.(i).Sgr_network.Solver_types.objective +. 1e-12)
  done;
  for i = 1 to Array.length trace - 2 do
    Alcotest.(check bool) "gap monotone decreasing past the transient" true
      (trace.(i + 1).Sgr_network.Solver_types.gap
      <= trace.(i).Sgr_network.Solver_types.gap +. 1e-12)
  done;
  Alcotest.(check bool) "gap shrank overall" true
    (trace.(Array.length trace - 1).Sgr_network.Solver_types.gap
    < trace.(0).Sgr_network.Solver_types.gap);
  (* The sink saw the same points, bracketed by the solve span. *)
  let points =
    List.filter (function Obs.Point { solver = "frank_wolfe"; _ } -> true | _ -> false) events
  in
  Alcotest.(check int) "sink saw every point" sol.FW.iterations (List.length points);
  Alcotest.(check bool) "solve span recorded" true
    (List.mem_assoc "frank_wolfe.solve" (Export.span_totals events));
  (* The hot-path counters ticked underneath. *)
  let counter name = List.assoc name (Obs.counters ()) in
  Alcotest.(check bool) "dijkstra ran" true (counter "dijkstra.runs" > 0);
  Alcotest.(check bool) "bisection ran (line search)" true (counter "bisection.calls" > 0);
  Alcotest.(check int) "one all-or-nothing per iteration plus the start"
    (sol.FW.iterations + 1) (counter "all_or_nothing.calls")

let test_mop_spans_and_counters () =
  Obs.reset_counters ();
  let events = with_recorder (fun () -> Stackelberg.Mop.run (W.fig7 ())) in
  let totals = Export.span_totals events in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " span present") true (List.mem_assoc name totals))
    [ "mop.solve"; "mop.optimum"; "mop.commodity"; "mop.maxflow"; "mop.nash";
      "induced.equilibrium"; "equilibrate.solve" ];
  let _, mop_total = List.assoc "mop.solve" totals in
  let sub_total =
    List.fold_left
      (fun acc name ->
        match List.assoc_opt name totals with Some (_, t) -> acc +. t | None -> acc)
      0.0
      [ "mop.optimum"; "mop.commodity"; "mop.nash"; "induced.equilibrium" ]
  in
  Alcotest.(check bool) "children sum within mop.solve" true (sub_total <= mop_total);
  let counter name = List.assoc name (Obs.counters ()) in
  Alcotest.(check bool) "maxflow ran" true (counter "maxflow.runs" > 0);
  Alcotest.(check bool) "latency evaluated" true (counter "latency.evaluations" > 0)

let test_exports_well_formed () =
  let events =
    with_recorder (fun () ->
        Obs.span "test.export" (fun () ->
            Obs.point ~solver:"t" ~k:1 ~gap:Float.infinity ~objective:1.0 ~step:0.5))
  in
  let render f =
    let path = Filename.temp_file "sgr_obs" ".json" in
    Out_channel.with_open_text path (fun oc -> f oc);
    let s = In_channel.with_open_text path In_channel.input_all in
    Sys.remove path;
    s
  in
  let chrome = render (fun oc -> Export.chrome_trace oc ~counters:[ ("c.x", 3) ] events) in
  Alcotest.(check bool) "chrome trace has header" true
    (String.length chrome > 0 && String.sub chrome 0 15 = "{\"traceEvents\":");
  (* Non-finite floats must not leak into JSON. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no inf in chrome json" false (contains chrome "inf");
  let jsonl = render (fun oc -> Export.jsonl oc events) in
  Alcotest.(check int) "one line per event"
    (List.length events)
    (List.length (String.split_on_char '\n' (String.trim jsonl)))

let test_exports_sorted () =
  (* Regression: counter and span ordering in the exports must never
     depend on the caller's list order or on event emission order. *)
  let ticks = ref 0.0 in
  Obs.set_clock (fun () ->
      ticks := !ticks +. 1.0;
      !ticks);
  let events =
    Fun.protect
      ~finally:(fun () -> Obs.set_clock Obs.default_clock)
      (fun () ->
        with_recorder (fun () ->
            ignore (Obs.span "z.last" Fun.id);
            ignore (Obs.span "a.first" Fun.id);
            ignore (Obs.span "m.mid" Fun.id)))
  in
  Alcotest.(check (list string)) "span_totals sorted by name"
    [ "a.first"; "m.mid"; "z.last" ]
    (List.map fst (Export.span_totals events));
  let unsorted = [ ("z.counter", 2); ("a.counter", 1); ("m.counter", 3) ] in
  let out = Format.asprintf "%a" (fun fmt -> Export.stats fmt ~counters:unsorted) events in
  let pos name =
    let n = String.length out and m = String.length name in
    let rec go i = if i + m > n then -1 else if String.sub out i m = name then i else go (i + 1) in
    go 0
  in
  Helpers.check_true "all counters rendered"
    (List.for_all (fun (n, _) -> pos n >= 0) unsorted);
  Helpers.check_true "counters rendered in name order"
    (pos "a.counter" < pos "m.counter" && pos "m.counter" < pos "z.counter");
  Helpers.check_true "spans rendered in name order"
    (pos "a.first" < pos "m.mid" && pos "m.mid" < pos "z.last")

let suite =
  [
    Alcotest.test_case "counters accumulate and reset" `Quick test_counters;
    Alcotest.test_case "spans nest and sum to their parent" `Quick test_spans_nest;
    Alcotest.test_case "spans close on exception" `Quick test_span_exception;
    Alcotest.test_case "no-op sink adds no events" `Quick test_noop_sink;
    Alcotest.test_case "frank-wolfe convergence trace" `Quick test_fw_convergence_trace;
    Alcotest.test_case "mop spans and counters" `Quick test_mop_spans_and_counters;
    Alcotest.test_case "exports are well-formed" `Quick test_exports_well_formed;
    Alcotest.test_case "exports sort counters and spans" `Quick test_exports_sorted;
  ]
