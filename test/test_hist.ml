(* Sgr_obs.Hist: log-bucketed latency histograms — unit cases for the
   edge buckets plus QCheck properties for the merge algebra and the
   documented quantile rank-error bound, checked against an exact
   sorted-array nearest-rank oracle. *)

module Hist = Sgr_obs.Hist
open Helpers

let default_lo = 1e-9
let default_hi = 1e4

(* Positive latencies spanning underflow, the tracked range and
   overflow, weighted towards realistic sub-second values. *)
let latency_gen =
  QCheck.Gen.(
    frequency
      [
        (8, float_range 1e-6 2.0);
        (2, float_range 1e-12 1e-9);
        (1, float_range 1e4 1e6);
      ])

let latencies =
  QCheck.make
    ~print:QCheck.Print.(list float)
    QCheck.Gen.(list_size (1 -- 200) latency_gen)

let of_samples xs =
  let t = Hist.create () in
  List.iter (Hist.record t) xs;
  t

(* Exact nearest-rank oracle: the (max 1 (ceil (q*n)))-th smallest. *)
let oracle xs q =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  let k = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
  a.(min (n - 1) (k - 1))

(* Unit cases *)

let test_empty () =
  let t = Hist.create () in
  Alcotest.(check int) "count" 0 (Hist.count t);
  Alcotest.(check (float 0.)) "sum" 0.0 (Hist.sum t);
  check_true "no min" (Hist.min_value t = None);
  check_true "no max" (Hist.max_value t = None);
  check_true "no quantile" (Hist.quantile t 0.5 = None);
  check_true "no buckets" (Hist.nonzero_buckets t = [])

let test_single_sample () =
  let t = of_samples [ 0.042 ] in
  Alcotest.(check int) "count" 1 (Hist.count t);
  approx "sum" 0.042 (Hist.sum t);
  check_true "min" (Hist.min_value t = Some 0.042);
  check_true "max" (Hist.max_value t = Some 0.042);
  (* With one sample every quantile clamps to the exact observed value. *)
  List.iter
    (fun q -> approx "quantile is the sample" 0.042 (Option.get (Hist.quantile t q)))
    [ 0.0; 0.5; 1.0 ];
  Alcotest.(check int) "one bucket" 1 (List.length (Hist.nonzero_buckets t))

let test_underflow_overflow () =
  let t = of_samples [ -3.0; 0.0; 1e-12; 2e5; 3e5 ] in
  Alcotest.(check int) "count includes edge buckets" 5 (Hist.count t);
  (* Negative/NaN clamp to 0 before the min is taken. *)
  check_true "min clamped to 0" (Hist.min_value t = Some 0.0);
  check_true "max exact" (Hist.max_value t = Some 3e5);
  Hist.record t Float.nan;
  Alcotest.(check int) "nan clamps to underflow" 6 (Hist.count t);
  check_true "nan did not poison min" (Hist.min_value t = Some 0.0);
  (* Low quantiles are the exact minimum, high ones the exact maximum. *)
  approx "underflow quantile" 0.0 (Option.get (Hist.quantile t 0.1));
  approx "overflow quantile" 3e5 (Option.get (Hist.quantile t 1.0));
  let buckets = Hist.nonzero_buckets t in
  check_true "underflow bound is lo" (List.mem_assoc default_lo buckets);
  check_true "overflow bound is inf" (List.mem_assoc Float.infinity buckets)

let test_geometry_mismatch () =
  let a = Hist.create () and b = Hist.create ~alpha:0.05 () in
  (match Hist.merge a b with
  | _ -> Alcotest.fail "merge across geometries must raise"
  | exception Invalid_argument _ -> ());
  match Hist.create ~alpha:1.5 () with
  | _ -> Alcotest.fail "alpha outside (0,1) must raise"
  | exception Invalid_argument _ -> ()

let test_clear () =
  let t = of_samples [ 1.0; 2.0 ] in
  Hist.clear t;
  Alcotest.(check int) "empty again" 0 (Hist.count t);
  Hist.record t 3.0;
  check_true "usable after clear" (Hist.min_value t = Some 3.0)

(* QCheck properties *)

let prop_merge_commutative (xs, ys) =
  let a = of_samples xs and b = of_samples ys in
  let ab = Hist.merge a b and ba = Hist.merge b a in
  Hist.count ab = Hist.count ba
  && Hist.min_value ab = Hist.min_value ba
  && Hist.max_value ab = Hist.max_value ba
  && Hist.nonzero_buckets ab = Hist.nonzero_buckets ba
  && Sgr_numerics.Tolerance.approx ~eps:1e-9 (Hist.sum ab) (Hist.sum ba)

let prop_merge_associative (xs, ys, zs) =
  let a = of_samples xs and b = of_samples ys and c = of_samples zs in
  let l = Hist.merge (Hist.merge a b) c and r = Hist.merge a (Hist.merge b c) in
  (* Counts, extrema and buckets are bit-exact; the float sum only up
     to rounding (the .mli scopes the guarantee the same way). *)
  Hist.count l = Hist.count r
  && Hist.min_value l = Hist.min_value r
  && Hist.max_value l = Hist.max_value r
  && Hist.nonzero_buckets l = Hist.nonzero_buckets r
  && Sgr_numerics.Tolerance.approx ~eps:1e-9 (Hist.sum l) (Hist.sum r)

let prop_merge_counts_add (xs, ys) =
  let a = of_samples xs and b = of_samples ys in
  let m = Hist.merge a b in
  Hist.count m = Hist.count a + Hist.count b
  && List.for_all
       (fun (ub, n) ->
         let n_a = Option.value ~default:0 (List.assoc_opt ub (Hist.nonzero_buckets a))
         and n_b = Option.value ~default:0 (List.assoc_opt ub (Hist.nonzero_buckets b)) in
         n = n_a + n_b)
       (Hist.nonzero_buckets m)

let qs = [ 0.0; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]

let prop_quantile_monotone xs =
  let t = of_samples xs in
  let vs = List.map (fun q -> Option.get (Hist.quantile t q)) qs in
  List.for_all2 (fun a b -> a <= b) vs (List.tl vs @ [ Float.max_float ])

let prop_rank_error_bound xs =
  let t = of_samples xs in
  let alpha = Hist.alpha t in
  List.for_all
    (fun q ->
      let est = Option.get (Hist.quantile t q) and x = oracle xs q in
      if x <= default_lo then Float.abs (est -. x) <= default_lo +. 1e-15
      else if x > default_hi then
        (* Overflow rank: the estimate is some true sample >= hi, and at
           rank n it is the exact maximum. *)
        est > default_hi || Float.abs (est -. x) <= (alpha *. x) +. 1e-12
      else Float.abs (est -. x) <= (alpha *. x) +. 1e-12)
    qs

let suite =
  [
    case "empty histogram" test_empty;
    case "single sample" test_single_sample;
    case "underflow and overflow buckets" test_underflow_overflow;
    case "geometry mismatch raises" test_geometry_mismatch;
    case "clear resets" test_clear;
    qcheck "merge is commutative"
      QCheck.(pair latencies latencies)
      prop_merge_commutative;
    qcheck "merge is associative"
      QCheck.(triple latencies latencies latencies)
      prop_merge_associative;
    qcheck "merge adds bucket counts exactly"
      QCheck.(pair latencies latencies)
      prop_merge_counts_add;
    qcheck "quantiles are monotone in q" latencies prop_quantile_monotone;
    qcheck ~count:200 "quantile rank-error bound vs sorted oracle" latencies
      prop_rank_error_bound;
  ]
