(* Tests for network instances and both equilibrium solvers. Closed forms
   come from Pigou-as-network, the classic Braess graph and the Fig. 7
   instance; the two solvers are also cross-checked on random networks. *)

open Helpers
module Net = Sgr_network.Network
module Eq = Sgr_network.Equilibrate
module FW = Sgr_network.Frank_wolfe
module Obj = Sgr_network.Objective
module G = Sgr_graph
module L = Sgr_latency.Latency
module W = Sgr_workloads.Workloads
module Prng = Sgr_numerics.Prng
module Vec = Sgr_numerics.Vec

(* Pigou as a two-edge network. *)
let pigou_net () =
  let g = G.Digraph.of_edges ~num_nodes:2 [ (0, 1); (0, 1) ] in
  Net.single g ~latencies:[| L.linear 1.0; L.constant 1.0 |] ~src:0 ~dst:1 ~demand:1.0

let test_make_validation () =
  let g = G.Digraph.of_edges ~num_nodes:3 [ (0, 1) ] in
  (match Net.single g ~latencies:[| L.linear 1.0 |] ~src:0 ~dst:2 ~demand:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unreachable pair rejected");
  match Net.single g ~latencies:[||] ~src:0 ~dst:1 ~demand:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "latency count mismatch rejected"

let test_functionals () =
  let net = pigou_net () in
  let f = [| 0.5; 0.5 |] in
  approx "cost" 0.75 (Net.cost net f);
  approx "beckmann" (0.125 +. 0.5) (Net.beckmann net f);
  approx_array "latencies" [| 0.5; 1.0 |] (Net.edge_latencies net f);
  approx_array "marginals" [| 1.0; 1.0 |] (Net.edge_marginals net f);
  approx "total demand" 1.0 (Net.total_demand net)

let test_shift () =
  let net = pigou_net () in
  let shifted = Net.shift net [| 0.25; 0.0 |] in
  approx "shifted latency" 0.75 (Net.edge_latencies shifted [| 0.5; 0.5 |]).(0)

let test_paths () =
  let net = W.fig7 () in
  let paths = Net.paths net in
  Alcotest.(check int) "three s-t paths" 3 (Array.length paths.(0))

let test_equilibrate_pigou () =
  let net = pigou_net () in
  let nash = Eq.solve Obj.Wardrop net in
  approx_array "nash edge flow" [| 1.0; 0.0 |] nash.edge_flow;
  let opt = Eq.solve Obj.System_optimum net in
  approx_array "opt edge flow" [| 0.5; 0.5 |] opt.edge_flow;
  check_true "wardrop verified" (Eq.verify Obj.Wardrop net nash);
  check_true "optimum verified" (Eq.verify Obj.System_optimum net opt)

let test_equilibrate_braess_nash () =
  (* Classic Braess: the whole unit flow uses the shortcut; C(N) = 2. *)
  let net = W.braess_classic () in
  let nash = Eq.solve Obj.Wardrop net in
  approx_array "all through s→v→w→t" [| 1.0; 0.0; 1.0; 0.0; 1.0 |] nash.edge_flow;
  approx "C(N) = 2" 2.0 (Net.cost net nash.edge_flow)

let test_equilibrate_braess_opt () =
  (* Optimum ignores the shortcut and splits evenly; C(O) = 3/2. *)
  let net = W.braess_classic () in
  let opt = Eq.solve Obj.System_optimum net in
  approx_array "split" [| 0.5; 0.5; 0.0; 0.5; 0.5 |] opt.edge_flow;
  approx "C(O) = 3/2" 1.5 (Net.cost net opt.edge_flow)

let test_equilibrate_fig7_opt () =
  (* The reconstructed Example 6.5.1 optimum must match the caption. *)
  let epsilon = 0.02 in
  let net = W.fig7 ~epsilon () in
  let opt = Eq.solve Obj.System_optimum net in
  approx_array "caption flows"
    [| 0.75 -. epsilon; 0.25 +. epsilon; 0.5 -. (2.0 *. epsilon); 0.25 +. epsilon; 0.75 -. epsilon |]
    opt.edge_flow

let test_equilibrate_fig7_nash () =
  (* By symmetry the Nash equalizes the three paths; the middle path has
     latency 2x_m + x_v where all used. Solved by the solver; verify the
     Wardrop property and the symmetry instead of a closed form. *)
  let net = W.fig7 () in
  let nash = Eq.solve Obj.Wardrop net in
  check_true "wardrop" (Eq.verify Obj.Wardrop net nash);
  approx "symmetry sv=wt" nash.edge_flow.(0) nash.edge_flow.(4);
  approx "symmetry sw=vt" nash.edge_flow.(1) nash.edge_flow.(3)

let test_two_commodity_solver () =
  let net = W.two_commodity () in
  let nash = Eq.solve Obj.Wardrop net in
  check_true "wardrop across both commodities" (Eq.verify Obj.Wardrop net nash);
  (* Per-commodity demand conservation. *)
  Array.iteri
    (fun i flows ->
      approx "commodity demand routed" net.Net.commodities.(i).Net.demand (Vec.sum flows))
    nash.path_flows

let test_fw_pigou () =
  let net = pigou_net () in
  let nash = FW.solve Obj.Wardrop net in
  approx_array ~eps:1e-5 "nash" [| 1.0; 0.0 |] nash.edge_flow;
  let opt = FW.solve Obj.System_optimum net in
  approx_array ~eps:1e-5 "opt" [| 0.5; 0.5 |] opt.edge_flow

let test_fw_matches_equilibrate_fig7 () =
  let net = W.fig7 () in
  let a = FW.solve ~tol:1e-10 Obj.System_optimum net in
  let b = Eq.solve Obj.System_optimum net in
  check_true "edge flows agree" (Vec.linf_dist a.edge_flow b.edge_flow <= 1e-4)

let test_objective_values () =
  let net = pigou_net () in
  approx "beckmann value" (Obj.objective Obj.Wardrop net [| 0.5; 0.5 |])
    (Net.beckmann net [| 0.5; 0.5 |]);
  approx "cost value" (Obj.objective Obj.System_optimum net [| 0.5; 0.5 |])
    (Net.cost net [| 0.5; 0.5 |])

let test_zero_demand_commodity () =
  let g = G.Digraph.of_edges ~num_nodes:2 [ (0, 1); (0, 1) ] in
  let net =
    Net.make g
      ~latencies:[| L.linear 1.0; L.constant 1.0 |]
      ~commodities:[| { Net.src = 0; dst = 1; demand = 0.0 } |]
  in
  let sol = Eq.solve Obj.Wardrop net in
  approx_array "nothing flows" [| 0.0; 0.0 |] sol.edge_flow

let test_aon () =
  let net = W.braess_classic () in
  let flow = FW.all_or_nothing net ~weights:[| 0.0; 1.0; 0.0; 1.0; 0.0 |] in
  approx_array "all demand on the zero path" [| 1.0; 0.0; 1.0; 0.0; 1.0 |] flow

let random_network seed =
  let rng = Prng.create seed in
  W.random_layered_network rng ~layers:(1 + Prng.int rng 3) ~width:(1 + Prng.int rng 3)
    ~extra_edges:(Prng.int rng 3)
    ~demand:(Prng.uniform rng ~lo:0.5 ~hi:3.0) ()

let prop_solvers_agree =
  (* Frank-Wolfe converges as O(1/k), so edge flows are only loosely
     pinned down; the objective value is what its duality gap bounds. *)
  qcheck ~count:25 "frank-wolfe and path equilibration agree" QCheck.small_nat (fun seed ->
      let net = random_network (seed + 1) in
      let a = FW.solve ~tol:1e-8 ~max_iter:100_000 Obj.System_optimum net in
      let b = Eq.solve Obj.System_optimum net in
      let fa = Obj.objective Obj.System_optimum net a.edge_flow in
      let fb = Obj.objective Obj.System_optimum net b.edge_flow in
      Float.abs (fa -. fb) <= 1e-4 *. Float.max 1.0 (Float.abs fb)
      && Vec.linf_dist a.edge_flow b.edge_flow <= 1e-2)

let prop_equilibrate_wardrop =
  qcheck ~count:50 "path equilibration reaches a Wardrop point" QCheck.small_nat (fun seed ->
      let net = random_network (seed + 50) in
      let sol = Eq.solve Obj.Wardrop net in
      Eq.verify Obj.Wardrop net sol)

let prop_opt_cost_below_nash =
  qcheck ~count:50 "C(O) <= C(N)" QCheck.small_nat (fun seed ->
      let net = random_network (seed + 100) in
      let n = Eq.solve Obj.Wardrop net and o = Eq.solve Obj.System_optimum net in
      Net.cost net o.edge_flow <= Net.cost net n.edge_flow +. 1e-6)

let test_with_demands () =
  let net = W.two_commodity () in
  let resized = Net.with_demands net [| 2.0; 3.0 |] in
  approx "resized total" 5.0 (Net.total_demand resized);
  Alcotest.(check int) "same endpoints" net.Net.commodities.(0).Net.src
    resized.Net.commodities.(0).Net.src;
  (match Net.with_demands net [| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "size mismatch rejected");
  match Net.with_demands net [| 1.0; -1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative demand rejected"

let test_engine_selection () =
  let saved = Eq.default_engine () in
  Fun.protect
    ~finally:(fun () -> Eq.set_default_engine saved)
    (fun () ->
      Eq.set_default_engine Eq.Exhaustive;
      let net = W.fig7 () in
      let ex = Eq.solve Obj.Wardrop net in
      Alcotest.(check int) "exhaustive works over all simple paths" 3
        (Array.length ex.paths.(0));
      let cg = Eq.solve ~engine:Eq.Column_generation Obj.Wardrop net in
      check_true "explicit engine overrides the ambient default"
        (Array.length cg.paths.(0) <= 3);
      check_true "engines agree" (Vec.linf_dist ex.edge_flow cg.edge_flow <= 1e-6))

let test_column_gen_past_enumeration_limit () =
  (* A 10x10 grid has C(18,9) = 48620 s-t paths — the exhaustive engine's
     enumeration hard-fails, column generation prices a handful. *)
  let rng = Prng.create 1 in
  let net = W.grid_network rng ~rows:10 ~cols:10 () in
  let sol = Eq.solve ~engine:Eq.Column_generation Obj.Wardrop net in
  check_true "wardrop gap closed" (sol.gap <= 1e-6);
  check_true "few columns priced" (Array.length sol.paths.(0) < 100);
  approx "demand routed" net.Net.commodities.(0).Net.demand (Vec.sum sol.path_flows.(0))

let prop_column_gen_matches_oracle =
  qcheck ~count:50 "column generation agrees with the exhaustive oracle" QCheck.small_nat
    (fun seed ->
      let net = random_network (seed + 200) in
      let obj = if seed mod 2 = 0 then Obj.Wardrop else Obj.System_optimum in
      let cg = Eq.solve ~engine:Eq.Column_generation obj net in
      let ex = Eq.solve ~engine:Eq.Exhaustive obj net in
      cg.gap <= 1e-6
      && Eq.verify obj net cg
      && Vec.linf_dist cg.edge_flow ex.edge_flow <= 1e-5)

let prop_nash_minimizes_beckmann =
  qcheck ~count:30 "the Wardrop flow minimizes the Beckmann potential" QCheck.small_nat
    (fun seed ->
      let net = random_network (seed + 150) in
      let n = Eq.solve Obj.Wardrop net in
      let o = Eq.solve Obj.System_optimum net in
      (* Any other flow we can produce has no smaller potential. *)
      Net.beckmann net n.edge_flow <= Net.beckmann net o.edge_flow +. 1e-6)

let suite =
  [
    case "make: validation" test_make_validation;
    case "functionals: cost/beckmann/latency" test_functionals;
    case "shift" test_shift;
    case "path sets" test_paths;
    case "equilibrate: pigou" test_equilibrate_pigou;
    case "equilibrate: braess nash" test_equilibrate_braess_nash;
    case "equilibrate: braess optimum" test_equilibrate_braess_opt;
    case "equilibrate: fig7 optimum = caption" test_equilibrate_fig7_opt;
    case "equilibrate: fig7 nash symmetric" test_equilibrate_fig7_nash;
    case "equilibrate: two commodities" test_two_commodity_solver;
    case "frank-wolfe: pigou" test_fw_pigou;
    case "frank-wolfe vs equilibrate: fig7" test_fw_matches_equilibrate_fig7;
    case "objective dispatch" test_objective_values;
    case "zero-demand commodity" test_zero_demand_commodity;
    case "all-or-nothing" test_aon;
    case "with_demands: cheap resize" test_with_demands;
    case "engine selection: default and override" test_engine_selection;
    case "column generation: past the enumeration limit" test_column_gen_past_enumeration_limit;
    prop_solvers_agree;
    prop_column_gen_matches_oracle;
    prop_equilibrate_wardrop;
    prop_opt_cost_below_nash;
    prop_nash_minimizes_beckmann;
  ]
