(* Tests for the edge-flow assignment core (lib/assign): Frank–Wolfe /
   MSA against the path-based engine, on-demand flow decomposition, the
   TNTP importer and the saturating path counter behind `sgr info`. *)

open Helpers
module Net = Sgr_network.Network
module Eq = Sgr_network.Equilibrate
module Obj = Sgr_network.Objective
module G = Sgr_graph
module W = Sgr_workloads.Workloads
module Tntp = Sgr_workloads.Tntp
module Prng = Sgr_numerics.Prng
module Solver = Sgr_assign.Solver
module Decompose = Sgr_assign.Decompose

let small_grid seed =
  let rng = Prng.create (seed + 1) in
  W.grid_network rng ~rows:(2 + (seed mod 3)) ~cols:(2 + ((seed / 3) mod 3)) ()

let small_multi seed =
  let rng = Prng.create (seed + 1) in
  W.random_multicommodity rng ~rows:3 ~cols:4 ~commodities:(1 + (seed mod 4)) ()

let small_city seed =
  let rng = Prng.create (seed + 1) in
  W.synthetic_city rng ~rings:2 ~radials:5 ~commodities:6 ()

let bitwise_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x -> if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i)))
          then ok := false)
        a;
      !ok)

(* ---------------- solver vs the path-based engine ---------------- *)

let agreement obj net ~method_ ~tol =
  let a = Solver.solve ~tol ~max_iter:200_000 ~method_ obj net in
  let b = Eq.solve obj net in
  let fa = Obj.objective obj net a.Solver.edge_flow in
  let fb = Obj.objective obj net b.Eq.edge_flow in
  let ca = Net.cost net a.Solver.edge_flow in
  let cb = Net.cost net b.Eq.edge_flow in
  Float.abs (fa -. fb) <= 1e-3 *. Float.max 1.0 (Float.abs fb)
  && Float.abs (ca -. cb) <= 1e-3 *. Float.max 1.0 (Float.abs cb)

let prop_fw_matches_column_gen =
  qcheck ~count:25 "edge-flow FW matches the path-based engine (grid)" QCheck.small_nat
    (fun seed ->
      let net = small_grid seed in
      agreement Obj.Wardrop net ~method_:Solver.Frank_wolfe ~tol:1e-7
      && agreement Obj.System_optimum net ~method_:Solver.Frank_wolfe ~tol:1e-7)

let prop_msa_matches_column_gen =
  qcheck ~count:15 "edge-flow MSA matches the path-based engine (grid)" QCheck.small_nat
    (fun seed ->
      let net = small_grid seed in
      agreement Obj.Wardrop net ~method_:Solver.Msa ~tol:1e-5)

let prop_multicommodity_agreement =
  qcheck ~count:15 "edge-flow FW matches the path-based engine (multicommodity)"
    QCheck.small_nat (fun seed ->
      let net = small_multi seed in
      agreement Obj.Wardrop net ~method_:Solver.Frank_wolfe ~tol:1e-7)

let test_jobs_byte_identity () =
  let net = small_city 7 in
  List.iter
    (fun obj ->
      let a = Solver.solve ~tol:1e-6 ~jobs:1 obj net in
      let b = Solver.solve ~tol:1e-6 ~jobs:4 obj net in
      check_true "edge flows identical at jobs 1 and 4"
        (bitwise_equal a.Solver.edge_flow b.Solver.edge_flow);
      Alcotest.(check int) "same iteration count" a.Solver.iterations b.Solver.iterations)
    [ Obj.Wardrop; Obj.System_optimum ]

let test_solve_flows_same_aggregate () =
  let net = small_multi 11 in
  let a = Solver.solve ~tol:1e-6 Obj.Wardrop net in
  let b, _ = Solver.solve_flows ~tol:1e-6 Obj.Wardrop net in
  check_true "solve and solve_flows agree bitwise"
    (bitwise_equal a.Solver.edge_flow b.Solver.edge_flow)

let test_unreachable_sink_rejected () =
  (* 0 -> 1 only; commodity asks 1 -> 0. *)
  let b = G.Digraph.builder ~num_nodes:2 in
  ignore (G.Digraph.add_edge b ~src:0 ~dst:1);
  let g = G.Digraph.freeze b in
  (* Rejection may come from Network.make's reachability check or, if
     construction were permissive, from the AON tree walk — either way
     the commodity must never be silently dropped. *)
  let build_and_solve () =
    let net =
      Net.make g
        ~latencies:[| Sgr_latency.Latency.affine ~slope:1.0 ~intercept:0.0 |]
        ~commodities:[| { Net.src = 1; dst = 0; demand = 1.0 } |]
    in
    Solver.solve Obj.Wardrop net
  in
  match build_and_solve () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unreachable sink must be rejected"

(* ---------------- flow decomposition ---------------- *)

let prop_decompose_conserves_and_recomposes =
  qcheck ~count:30 "decomposition conserves demand and recomposes bitwise" QCheck.small_nat
    (fun seed ->
      let net = if seed mod 2 = 0 then small_multi seed else small_city seed in
      let sol, flows = Solver.solve_flows ~tol:1e-6 Obj.Wardrop net in
      let d = Decompose.run ~flows net ~edge_flow:sol.Solver.edge_flow in
      let scale = Float.max 1.0 (Net.total_demand net) in
      Decompose.demand_error net d <= 1e-6 *. scale
      && Decompose.max_residual d <= 1e-9 *. scale
      && bitwise_equal (Decompose.recompose net d) sol.Solver.edge_flow
      && List.for_all
           (fun (pf : Decompose.path_flow) ->
             let c = net.Net.commodities.(pf.commodity) in
             pf.amount > 0.0
             && G.Paths.is_valid net.Net.graph ~src:c.Net.src ~dst:c.Net.dst pf.path)
           d.Decompose.path_flows)

let prop_decompose_single_commodity_default =
  qcheck ~count:20 "single-commodity decomposition needs no explicit split"
    QCheck.small_nat (fun seed ->
      let net = small_grid seed in
      let sol = Solver.solve ~tol:1e-6 Obj.System_optimum net in
      let d = Decompose.run net ~edge_flow:sol.Solver.edge_flow in
      bitwise_equal (Decompose.recompose net d) sol.Solver.edge_flow)

let contains_substring s sub =
  let n = String.length s and k = String.length sub in
  let rec at i = i + k <= n && (String.equal (String.sub s i k) sub || at (i + 1)) in
  at 0

let test_decompose_multi_requires_flows () =
  let net = small_multi 3 in
  let sol = Solver.solve ~tol:1e-6 Obj.Wardrop net in
  match Decompose.run net ~edge_flow:sol.Solver.edge_flow with
  | exception Invalid_argument m ->
      check_true "error mentions solve_flows" (contains_substring m "solve_flows")
  | _ -> Alcotest.fail "aggregate multi-commodity decomposition must be refused"

let test_decompose_rejects_nonconserving () =
  let net = small_grid 1 in
  let m = G.Digraph.num_edges net.Net.graph in
  match Decompose.run net ~edge_flow:(Array.make m 0.5) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-conserving flow must be rejected"

(* ---------------- TNTP importer ---------------- *)

let tntp_roundtrippable net =
  match Tntp.print_net net with
  | Error _ -> QCheck.assume_fail ()
  | Ok printed_net ->
      let printed_trips = Tntp.print_trips net in
      (match Tntp.parse ~net:printed_net ~trips:printed_trips with
      | Error m -> Alcotest.failf "reparse failed: %s" m
      | Ok net' -> (
          (* Structure survives one round trip... *)
          let ok_structure =
            G.Digraph.num_nodes net.Net.graph = G.Digraph.num_nodes net'.Net.graph
            && G.Digraph.num_edges net.Net.graph = G.Digraph.num_edges net'.Net.graph
            (* Commodities regroup by origin on parse, so the demand sum
               reassociates — compare up to rounding, not bitwise. *)
            && Float.abs (Net.total_demand net -. Net.total_demand net')
               <= 1e-12 *. Float.max 1.0 (Net.total_demand net)
          in
          (* ...and printing the reparse is a byte fixpoint. *)
          match Tntp.print_net net' with
          | Error m -> Alcotest.failf "reprint failed: %s" m
          | Ok printed2 ->
              ok_structure
              && String.equal printed_net printed2
              && String.equal printed_trips (Tntp.print_trips net')))

let prop_tntp_fixpoint =
  qcheck ~count:30 "TNTP print∘parse is a byte fixpoint" QCheck.small_nat (fun seed ->
      tntp_roundtrippable (small_city seed))

let prop_tntp_grid_fixpoint =
  qcheck ~count:20 "TNTP fixpoint on BPR grids" QCheck.small_nat (fun seed ->
      tntp_roundtrippable (small_grid seed))

let test_tntp_parse_errors () =
  let bad_net = "<NUMBER OF NODES> 2\n1 2 0.0 1 1 0.15 4 0 0 1 ;\n" in
  (match Tntp.parse ~net:bad_net ~trips:"" with
  | Error m -> check_true "capacity error carries a line number" (String.length m > 0)
  | Ok _ -> Alcotest.fail "zero capacity must be rejected");
  let beta_net = "<NUMBER OF NODES> 2\n1 2 1.0 1 1 0.15 0.5 0 0 1 ;\n" in
  (match Tntp.parse ~net:beta_net ~trips:"" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "power < 1 must be rejected");
  let net = "<NUMBER OF NODES> 2\n1 2 1.0 1 1 0.15 4 0 0 1 ;\n" in
  match Tntp.parse ~net ~trips:"3 : 1.0 ;\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trips pair before any Origin must be rejected"

let test_tntp_importable_by_assign () =
  let rng = Prng.create 5 in
  let net = W.synthetic_city rng ~rings:2 ~radials:4 ~commodities:4 () in
  match Tntp.print_net net with
  | Error m -> Alcotest.failf "print failed: %s" m
  | Ok n -> (
      match Tntp.parse ~net:n ~trips:(Tntp.print_trips net) with
      | Error m -> Alcotest.failf "parse failed: %s" m
      | Ok net' ->
          let a = Solver.solve ~tol:1e-6 Obj.Wardrop net in
          let b = Solver.solve ~tol:1e-6 Obj.Wardrop net' in
          approx ~eps:1e-6 "same equilibrium cost through the round trip"
            (Net.cost net a.Solver.edge_flow)
            (Net.cost net' b.Solver.edge_flow))

(* ---------------- saturating path count (sgr info guard) ------------- *)

let test_count_matches_enumerate () =
  let net = small_grid 4 in
  let g = net.Net.graph in
  let c = net.Net.commodities.(0) in
  let n = List.length (G.Paths.enumerate g ~src:c.Net.src ~dst:c.Net.dst) in
  match G.Paths.count g ~src:c.Net.src ~dst:c.Net.dst with
  | `Exact n' -> Alcotest.(check int) "count = enumerate" n n'
  | `At_least _ -> Alcotest.fail "small grid must count exactly"

let test_count_exact_past_enumeration_cap () =
  (* 10x10 grid: C(18,9) = 48620 monotone paths — beyond enumerate's
     20k default cap, fine for the DP. *)
  let net = W.grid_network (Prng.create 1) ~rows:10 ~cols:10 () in
  let c = net.Net.commodities.(0) in
  match G.Paths.count net.Net.graph ~src:c.Net.src ~dst:c.Net.dst with
  | `Exact n -> Alcotest.(check int) "C(18,9)" 48620 n
  | `At_least _ -> Alcotest.fail "48620 is far below the cap"

let test_count_saturates () =
  (* 40x40 grid: C(78,39) ≈ 1.1e22 ≫ any int cap — the count must
     saturate instead of overflowing. *)
  let net = W.grid_network (Prng.create 1) ~rows:40 ~cols:40 () in
  let c = net.Net.commodities.(0) in
  (match G.Paths.count net.Net.graph ~src:c.Net.src ~dst:c.Net.dst with
  | `At_least cap -> check_true "saturated at a positive cap" (cap > 0)
  | `Exact n -> Alcotest.failf "expected saturation, got exact %d" n);
  (* A custom cap reports itself. *)
  match G.Paths.count ~cap:1000 net.Net.graph ~src:c.Net.src ~dst:c.Net.dst with
  | `At_least 1000 -> ()
  | _ -> Alcotest.fail "custom cap must be reported verbatim"

let test_count_cyclic_graph () =
  (* The city graph has two-edge cycles everywhere, exercising the DFS
     branch; counts still match enumeration. *)
  let net = small_city 2 in
  let g = net.Net.graph in
  let c = net.Net.commodities.(0) in
  let n = List.length (G.Paths.enumerate ~limit:200_000 g ~src:c.Net.src ~dst:c.Net.dst) in
  match G.Paths.count g ~src:c.Net.src ~dst:c.Net.dst with
  | `Exact n' -> Alcotest.(check int) "cyclic count = enumerate" n n'
  | `At_least _ -> Alcotest.fail "small city must count exactly"

let test_count_step_budget () =
  (* City-scale cyclic graphs would take astronomically long to reach
     the path cap by DFS; the step budget makes [count] bail with a
     lower bound instead of hanging `sgr info` (which it once did). *)
  let rng = Prng.create 5 in
  let net = W.synthetic_city rng ~rings:25 ~radials:100 () in
  let c = net.Net.commodities.(0) in
  match
    G.Paths.count ~max_steps:100_000 net.Net.graph ~src:c.Net.src ~dst:c.Net.dst
  with
  | `At_least n -> check_true "budget bail reports a nonnegative bound" (n >= 0)
  | `Exact _ -> Alcotest.fail "a 10^4-edge cyclic city cannot count exactly in 1e5 steps"

let suite =
  [
    prop_fw_matches_column_gen;
    prop_msa_matches_column_gen;
    prop_multicommodity_agreement;
    case "jobs 1 and jobs 4 are byte-identical" test_jobs_byte_identity;
    case "solve_flows preserves the aggregate bitwise" test_solve_flows_same_aggregate;
    case "unreachable sink rejected" test_unreachable_sink_rejected;
    prop_decompose_conserves_and_recomposes;
    prop_decompose_single_commodity_default;
    case "multi-commodity decompose requires ~flows" test_decompose_multi_requires_flows;
    case "non-conserving flow rejected" test_decompose_rejects_nonconserving;
    prop_tntp_fixpoint;
    prop_tntp_grid_fixpoint;
    case "TNTP parse errors" test_tntp_parse_errors;
    case "TNTP round trip solves identically" test_tntp_importable_by_assign;
    case "Paths.count matches enumerate" test_count_matches_enumerate;
    case "Paths.count exact past the enumeration cap" test_count_exact_past_enumeration_cap;
    case "Paths.count saturates instead of overflowing" test_count_saturates;
    case "Paths.count on cyclic graphs" test_count_cyclic_graph;
    case "Paths.count bounds its DFS work" test_count_step_budget;
  ]
