The batch frontend executes a request file in-process and prints one
reply line per request, in input order (the stats reply reports the
cache counters as of its barrier):

  $ sgr catalog pigou > pigou.sgr
  $ sgr batch requests.txt
  ok load id=p kind=links fp=067affba1581e718 cache=miss
  ok solve id=p obj=nash cost=1
  ok solve id=p obj=opt cost=0.75
  ok optop id=p beta=0.5 nash_cost=1 opt_cost=0.75 induced_cost=0.75
  ok induced id=p alpha=0.25 cost=0.8125 ratio=1.08333333
  ok sweep id=p beta=0.5 n=5 points=0:1.33333333,0.25:1.08333333,0.5:1,0.75:1,1:1
  error parse: unknown instance id "zzz" (load it first)
  error solve: mop needs a network instance
  ok stats entries=1 capacity=32 hits=6 misses=1 evictions=0 memo_hits=0 memo_misses=6 memo_hit_rate=0 occupancy=0.03125
  ok pong
  ok bye

The output is byte-identical at any job count (stats included here,
because each run starts from a fresh cache and the counters are sums):

  $ sgr batch requests.txt --jobs 4 > jobs4.out
  $ sgr batch requests.txt --jobs 1 | diff - jobs4.out

The socket server answers the same protocol over a Unix-domain socket.
The second session hits the warm cache (memo_hits > 0), and SIGINT
drains gracefully: the socket file is removed and the server exits 0.

  $ SOCK=$(mktemp -d)/sgr.sock
  $ sgr serve --socket "$SOCK" 2>serve.log &
  $ SERVE_PID=$!
  $ for _ in 1 2 3 4 5 6 7 8 9 10; do test -S "$SOCK" && break; sleep 0.2; done
  $ sgr batch requests.txt --connect "$SOCK" | grep -c '^ok\|^error'
  11
  $ sgr batch requests.txt --connect "$SOCK" | grep '^ok stats'
  ok stats entries=1 capacity=32 hits=13 misses=1 evictions=0 memo_hits=5 memo_misses=7 memo_hit_rate=0.416666667 occupancy=0.03125
  $ kill -INT $SERVE_PID
  $ wait $SERVE_PID
  $ test -S "$SOCK" || echo socket removed
  socket removed
(the first log line embeds the tempdir socket path, so it is checked
by count rather than by content)

  $ grep -c 'listening on' serve.log
  1
Sessions are numbered in accept order; each logs a connect line and a
close line (quit vs disconnected):

  $ sed -n '2,6p' serve.log
  sgr serve: client 1 connected
  sgr serve: client 1 quit
  sgr serve: client 2 connected
  sgr serve: client 2 quit
  sgr serve: stop requested; draining

The drain also dumps a final metrics snapshot into the log. Its counts
section is deterministic; the latency buckets are not, so those are
checked for presence only:

  $ grep -F 'sgr_requests_total{verb="solve"}' serve.log
  sgr serve: sgr_requests_total{verb="solve"} 6
  $ grep -F 'sgr_memo_hit_rate' serve.log | grep -v '# TYPE'
  sgr serve: sgr_memo_hit_rate 0.416666667
  $ grep -q 'sgr_request_seconds_bucket{verb=' serve.log && echo latency histograms dumped
  latency histograms dumped

The session telemetry in the dump: both sessions were opened and closed,
none is live at drain time (per-session counters render only for live
sessions, so none appear here):

  $ grep -E 'sgr_sessions_(active|opened_total|closed_total) [0-9]+$' serve.log
  sgr serve: sgr_sessions_active 0
  sgr serve: sgr_sessions_opened_total 2
  sgr serve: sgr_sessions_closed_total 2
  $ grep -c 'sgr_session_requests_total{' serve.log
  0
  [1]
  $ tail -n 1 serve.log
  sgr serve: socket removed; bye

The assign verb runs the edge-flow assignment core on a loaded network
instance (fixed tol and jobs, so replies memoize); links instances and
bad method names are rejected with context:

  $ sgr random city --seed 7 --size 3 > city.sgr
  $ cat > areq.txt <<'EOF'
  > load c city.sgr
  > load p pigou.sgr
  > assign c nash
  > assign c nash msa
  > assign c opt
  > assign c nash bogus
  > assign p nash
  > quit
  > EOF
  $ sgr batch areq.txt
  ok load id=c kind=network fp=480f8cb9a0bd62e4 cache=miss
  ok load id=p kind=links fp=067affba1581e718 cache=miss
  ok assign id=c obj=nash method=frank-wolfe cost=61.0132182 gap=8.54118684e-05 iterations=40
  ok assign id=c obj=nash method=msa cost=61.0208279 gap=8.60674791e-05 iterations=38
  ok assign id=c obj=opt method=frank-wolfe cost=60.8119981 gap=9.27817669e-05 iterations=22
  error parse: assign expects fw|msa, got "bogus"
  error solve: assign needs a network instance
  ok bye
