The catalog lists the paper's named instances:

  $ sgr catalog
  available instances:
    pigou
    fig456
    fig7
    braess
    two-commodity
    pigou-degree-4

Named instances print in instance-file format:

  $ sgr catalog pigou
  links
  demand 1
  link 1x
  link 1

  $ sgr catalog pigou > pigou.sgr
  $ sgr catalog fig456 > fig456.sgr
  $ sgr catalog fig7 > fig7.sgr
  $ sgr catalog braess > braess.sgr

Solving Pigou reproduces the classic numbers (PoA = 4/3):

  $ sgr solve pigou.sgr
  instance: 2 parallel links, r = 1
  nash     = ⟨1, 0⟩  (common latency 1)
  optimum  = ⟨0.5, 0.5⟩  (marginal level 1)
  C(N) = 1, C(O) = 0.75, price of anarchy = 1.33333

OpTop computes the price of optimum (Corollary 2.2):

  $ sgr optop pigou.sgr
  beta      = 0.5
  strategy  = ⟨0, 0.5⟩
  C(N)      = 1
  C(O)      = 0.75
  C(S+T)    = 0.75

  $ sgr optop fig456.sgr --rounds
  round 1: r = 1, frozen = {4,5}
  round 2: r = 0.758333, frozen = {}
  beta      = 0.241666667
  strategy  = ⟨0, 0, 0, 0.106667, 0.135⟩
  C(N)      = 0.415584416
  C(O)      = 0.406138889
  C(S+T)    = 0.406138889

MOP on the Fig. 7 graph (β = 1/2 + 2ε with ε = 0.02):

  $ sgr mop fig7.sgr
  beta (strong) = 0.54
  beta (weak)   = 0.54
  C(N)          = 2.84
  C(O)          = 2.4168
  C(S+T)        = 2.4168
  commodity 0: free flow 0.46, controlled 0.54, 2 leader paths

MOP on the classic Braess graph needs the whole flow (β = 1):

  $ sgr mop braess.sgr | head -2
  beta (strong) = 1
  beta (weak)   = 1

The heuristics report their a-posteriori anarchy cost:

  $ sgr llf pigou.sgr --alpha 0.5
  strategy  = ⟨0, 0.5⟩
  C(S+T)    = 0.75
  ratio     = 1

  $ sgr scale pigou.sgr --alpha 0.5
  strategy  = ⟨0.25, 0.25⟩
  C(S+T)    = 0.8125
  ratio     = 1.08333333

Theorem 2.4's exact solver on a hard common-slope instance:

  $ cat > hard.sgr <<'EOF'
  > links
  > demand 1.0
  > link x
  > link x + 1
  > EOF
The optimum parks the whole budget on the slow link (ε ≈ 0, cost
(0.9)² + 0.1·1.1 = 0.92):

  $ sgr thm24 hard.sgr --alpha 0.1
  strategy   = ⟨4.19397e-13, 0.1⟩
  C(S+T)     = 0.92
  partition  = prefix of 1 links, epsilon = 4.1939676e-13

The α-sweep emits CSV for plotting:

  $ sgr sweep pigou.sgr --samples 5 --csv
  alpha,ratio,method
  0.000000,1.333333333,grid
  0.250000,1.083333333,grid
  0.500000,1.000000000,threshold
  0.750000,1.000000000,threshold
  1.000000,1.000000000,threshold

Pigou bounds certify the price of anarchy independent of topology:

  $ sgr bound pigou.sgr
  latency 0: 1x                       pigou bound 1.333333
  latency 1: 1                        pigou bound 1.000000
  worst pigou bound (topology-free PoA bound) = 1.333333
  measured price of anarchy                   = 1.333333

β as a function of the demand (the Pigou closed form 1 - 1/(2r)):

  $ sgr profile pigou.sgr --from 0.5 --to 2.0 --samples 4 --csv
  demand,beta,poa
  0.500000,0.000000000,1.000000000
  1.000000,0.500000000,1.333333333
  1.500000,0.666666667,1.200000000
  2.000000,0.750000000,1.142857143

Instance inspection:

  $ sgr info pigou.sgr
  kind: parallel links
  links: 2, demand: 1
    M1: 1x
    M2: 1  (constant)
  common-slope linear (Thm 2.4 class): false

  $ sgr info fig7.sgr
  kind: network
  nodes: 4, edges: 5, commodities: 1, total demand: 1
  acyclic: true
  commodity 0: 0 -> 3, demand 1, 3 simple paths

--solver selects the path-equilibration engine; the column-generation
default and the exhaustive oracle agree on the pinned instances:

  $ sgr solve fig7.sgr --solver exhaustive > ex.out
  $ sgr solve fig7.sgr --solver column-gen > cg.out
  $ diff ex.out cg.out

Column generation scales past the exhaustive engine's 20,000-path
enumeration cap — a 10x10 grid has C(18,9) = 48620 s-t paths, which
`info` now counts exactly (a saturating DP, not enumeration) and
`solve`/`mop` handle:

  $ sgr random grid --seed 1 --size 10 > grid10.sgr
  $ sgr info grid10.sgr
  kind: network
  nodes: 100, edges: 180, commodities: 1, total demand: 1
  acyclic: true
  commodity 0: 0 -> 99, demand 1, 48620 simple paths

  $ sgr solve grid10.sgr | tail -1
  C(N) = 17.4615, C(O) = 16.9546, price of anarchy = 1.0299

  $ sgr mop grid10.sgr | head -2
  beta (strong) = 0.728219163
  beta (weak)   = 0.728219163

Marginal-cost tolls restore the optimum:

  $ sgr tolls pigou.sgr
  tolls           = ⟨0.5, 0⟩
  tolled flow     = ⟨0.5, 0.5⟩
  latency cost    = 0.75
  optimum C(O)    = 0.75

  $ sgr tolls braess.sgr
  tolls           = ⟨0.5, 0, 0, 0, 0.5⟩
  tolled flow     = ⟨0.5, 0.5, 0, 0.5, 0.5⟩
  latency cost    = 1.5
  optimum C(O)    = 1.5

Best-response toll pricing on a two-owner affine duopoly converges to
the analytic equilibrium (tolls 5/3 and 4/3, price of pricing 19/18);
every payoff probe is one closed-form water-fill:

  $ cat > duopoly.sgr << 'EOF'
  > links
  > demand 1
  > link x
  > link 2x
  > EOF
  $ sgr pricing duopoly.sgr
  tolls     = ⟨1.66667, 1.33333⟩
  flow      = ⟨0.555556, 0.444444⟩
  revenues  = ⟨0.925926, 0.592593⟩
  level     = 2.22222
  user cost = 0.703704
  rounds    = 48 (converged)
  optimum C(O)    = 0.666666667
  price of pricing = 1.05556

The forced engines agree byte-for-byte on affine instances, and
pricing rejects instances it cannot price:

  $ sgr solve pigou.sgr --links-engine closed-form > cf.out
  $ sgr solve pigou.sgr --links-engine bisection > bi.out
  $ diff cf.out bi.out
  $ sgr pricing pigou.sgr
  error: Pricing.best_response: a constant-latency link has no best response (drop it)
  [2]

Random instances are reproducible from their seed:

  $ sgr random common-slope --seed 3 --size 3 > r1.sgr
  $ sgr random common-slope --seed 3 --size 3 > r2.sgr
  $ diff r1.sgr r2.sgr

Observability: --trace writes a Chrome-trace file and, being a
machine-readable mode, moves the human diagnostics (the instance
banner, free-flow distances, the stats summary) to stderr so stdout
stays pipeable:

  $ sgr solve fig7.sgr --trace t.json --stats 2>/dev/null
  nash edge flow    = ⟨0.96, 0.04, 0.92, 0.04, 0.96⟩
  optimum edge flow = ⟨0.73, 0.27, 0.46, 0.27, 0.73⟩
  C(N) = 2.84, C(O) = 2.4168, price of anarchy = 1.17511

  $ grep -c traceEvents t.json
  1

  $ sgr solve fig7.sgr --trace t.jsonl 2>/dev/null >/dev/null
  $ grep -c '"type":"span_end","name":"equilibrate.solve"' t.jsonl
  2

An unwritable trace path is a normal CLI error, not a crash:

  $ sgr solve fig7.sgr --trace /nonexistent-dir/t.json >/dev/null 2>err
  [2]
  $ tail -1 err
  error: cannot write trace: /nonexistent-dir/t.json: No such file or directory

Errors are reported with context:

  $ sgr solve /nonexistent.sgr
  sgr: FILE argument: no '/nonexistent.sgr' file or directory
  Usage: sgr solve [OPTION]… FILE
  Try 'sgr solve --help' or 'sgr --help' for more information.
  [124]

  $ cat > bad.sgr <<'EOF'
  > links
  > demand 1.0
  > link zebra
  > EOF
  $ sgr solve bad.sgr
  error: bad.sgr: line 3: cannot parse "zebra" as a number or affine expression
  [2]

  $ sgr optop fig7.sgr
  error: this command needs a parallel-links instance
  [2]

The edge-flow assignment core (`docs/assignment.md`) solves city-scale
networks without ever enumerating paths.  A synthetic ring+radial city
is cyclic, so `info`'s path counter runs the capped DFS while `assign`
works purely on edge flows:

  $ sgr random city --seed 2 --size 2 > city2.sgr
  $ sgr info city2.sgr | head -4
  kind: network
  nodes: 17, edges: 64, commodities: 16, total demand: 15.097
  acyclic: false
  commodity 0: 5 -> 6, demand 0.842903, 1994 simple paths

A 10^4-edge city is far past any exact cyclic count — the counter
bails on its DFS work budget with a lower bound instead of hanging:

  $ sgr random city --seed 5 --size 25 > city25.sgr
  $ sgr info city25.sgr | sed -n 4p
  commodity 0: 221 -> 481, demand 0.596084, >= 1048577 simple paths (count capped)

  $ sgr assign city2.sgr
  instance: 17 nodes, 64 edges, 16 commodities, r = 15.097
  method     = frank-wolfe
  objective  = nash
  iterations = 5
  gap        = 9.15107643e-05
  value      = 40.8120891
  cost       = 42.9398834

  $ sgr assign city2.sgr -o opt --method msa --tol 1e-3
  instance: 17 nodes, 64 edges, 16 commodities, r = 15.097
  method     = msa
  objective  = opt
  iterations = 5
  gap        = 0.000445423384
  value      = 42.9382094
  cost       = 42.9382094

Paths materialize only on demand, by decomposing the per-commodity
flow split along shortest-path trees:

  $ sgr assign city2.sgr --paths 2
  instance: 17 nodes, 64 edges, 16 commodities, r = 15.097
  method     = frank-wolfe
  objective  = nash
  iterations = 5
  gap        = 9.15107643e-05
  value      = 40.8120891
  cost       = 42.9398834
  paths      = 19  (max residual 4.44e-16)
    k9  1.39722  13→5→0→8→16
    k12  1.31601  10→2→0→5

The TNTP importer understands the published link-table and trips
formats (separators attached to the numbers included) and prints the
native instance format, ready for `assign`:

  $ cat > net.tntp <<'EOF'
  > <NUMBER OF NODES> 3
  > <NUMBER OF LINKS> 3
  > <END OF METADATA>
  > ~ init fin cap len fft B power speed toll type ;
  > 1 2 2.0 1.0 1.0 0.15 4 0 0 1 ;
  > 2 3 2.0 1.0 1.0 0.15 4 0 0 1 ;
  > 1 3 1.0 1.0 2.0 0.15 4 0 0 1 ;
  > EOF
  $ cat > trips.tntp <<'EOF'
  > <NUMBER OF ZONES> 3
  > <TOTAL OD FLOW> 1.5
  > <END OF METADATA>
  > Origin 1
  >   2 : 0.5; 3 : 1.0;
  > EOF
  $ sgr tntp net.tntp trips.tntp
  network
  nodes 3
  edge 0 1 bpr 1 2 0.15 4
  edge 1 2 bpr 1 2 0.15 4
  edge 0 2 bpr 2 1 0.15 4
  commodity 0 1 0.5
  commodity 0 2 1

  $ sgr tntp net.tntp trips.tntp > imported.sgr
  $ sgr assign imported.sgr --tol 1e-6
  instance: 3 nodes, 3 edges, 2 commodities, r = 1.5
  method     = frank-wolfe
  objective  = nash
  iterations = 2
  gap        = 5.77648495e-13
  value      = 2.50359456
  cost       = 2.51797278
