The metrics verb renders the Prometheus text exposition in two marked
sections: counts and gauges (byte-identical at any --jobs), then the
latency histograms (scheduling-dependent, exempt). Under --fixed-clock
(a deterministic 1 ms tick at --jobs 1) the latency section is
reproducible too, so the whole exposition can be pinned byte for byte:

  $ sgr catalog pigou > pigou.sgr
  $ sgr batch - --fixed-clock << 'EOF'
  > load p pigou.sgr
  > solve p nash
  > solve p nash
  > solve p opt
  > metrics
  > EOF
  ok load id=p kind=links fp=067affba1581e718 cache=miss
  ok solve id=p obj=nash cost=1
  ok solve id=p obj=nash cost=1
  ok solve id=p obj=opt cost=0.75
  ok metrics lines=67
  # sgr serving metrics (Prometheus text exposition)
  # --- counts and gauges: byte-identical at any --jobs ---
  # TYPE sgr_requests_total counter
  sgr_requests_total{verb="load"} 1
  sgr_requests_total{verb="solve"} 3
  # TYPE sgr_request_errors_total counter
  sgr_request_errors_total 0
  # TYPE sgr_request_timeouts_total counter
  sgr_request_timeouts_total 0
  # TYPE sgr_cache_hits_total counter
  sgr_cache_hits_total 3
  # TYPE sgr_cache_misses_total counter
  sgr_cache_misses_total 1
  # TYPE sgr_cache_evictions_total counter
  sgr_cache_evictions_total 0
  # TYPE sgr_memo_hits_total counter
  sgr_memo_hits_total 1
  # TYPE sgr_memo_misses_total counter
  sgr_memo_misses_total 2
  # TYPE sgr_cache_entries gauge
  sgr_cache_entries 1
  # TYPE sgr_cache_capacity gauge
  sgr_cache_capacity 32
  # TYPE sgr_cache_occupancy gauge
  sgr_cache_occupancy 0.03125
  # TYPE sgr_memo_hit_rate gauge
  sgr_memo_hit_rate 0.333333333
  # TYPE sgr_sessions_active gauge
  sgr_sessions_active 0
  # TYPE sgr_sessions_opened_total counter
  sgr_sessions_opened_total 0
  # TYPE sgr_sessions_closed_total counter
  sgr_sessions_closed_total 0
  # --- latency histograms: scheduling-dependent, exempt from the determinism guarantee ---
  # TYPE sgr_request_seconds histogram
  sgr_request_seconds_bucket{verb="load",le="0.00100496241"} 1
  sgr_request_seconds_bucket{verb="load",le="+Inf"} 1
  sgr_request_seconds_sum{verb="load"} 0.001
  sgr_request_seconds_count{verb="load"} 1
  sgr_request_seconds_bucket{verb="solve",le="0.00301918463"} 3
  sgr_request_seconds_bucket{verb="solve",le="+Inf"} 3
  sgr_request_seconds_sum{verb="solve"} 0.009
  sgr_request_seconds_count{verb="solve"} 3
  # TYPE sgr_batch_compute_seconds histogram
  sgr_batch_compute_seconds_bucket{le="0.00301918463"} 1
  sgr_batch_compute_seconds_bucket{le="0.00507844006"} 4
  sgr_batch_compute_seconds_bucket{le="+Inf"} 4
  sgr_batch_compute_seconds_sum 0.018
  sgr_batch_compute_seconds_count 4
  # TYPE sgr_batch_wait_seconds histogram
  sgr_batch_wait_seconds_bucket{le="0.00100496241"} 1
  sgr_batch_wait_seconds_bucket{le="0.00507844006"} 2
  sgr_batch_wait_seconds_bucket{le="0.0110787642"} 3
  sgr_batch_wait_seconds_bucket{le="0.0172023295"} 4
  sgr_batch_wait_seconds_bucket{le="+Inf"} 4
  sgr_batch_wait_seconds_sum 0.034
  sgr_batch_wait_seconds_count 4
  # TYPE sgr_memo_cold_seconds histogram
  sgr_memo_cold_seconds_bucket{le="0.00100496241"} 2
  sgr_memo_cold_seconds_bucket{le="+Inf"} 2
  sgr_memo_cold_seconds_sum 0.002
  sgr_memo_cold_seconds_count 2
  # TYPE sgr_memo_hit_seconds histogram
  sgr_memo_hit_seconds_bucket{le="0.00100496241"} 1
  sgr_memo_hit_seconds_bucket{le="+Inf"} 1
  sgr_memo_hit_seconds_sum 0.001
  sgr_memo_hit_seconds_count 1
