(* Tests for parallel-links instances: water-filling Nash and optimum,
   costs, induced equilibria. Closed forms are checked where they exist
   (Pigou, linear systems); Wardrop/KKT conditions are verified post hoc on
   random instances. *)

open Helpers
module Links = Sgr_links.Links
module L = Sgr_latency.Latency
module W = Sgr_workloads.Workloads
module Prng = Sgr_numerics.Prng
module Vec = Sgr_numerics.Vec

let test_make_validation () =
  (match Links.make [||] ~demand:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty system rejected");
  match Links.make [| L.linear 1.0 |] ~demand:(-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative demand rejected"

let test_pigou_nash () =
  let n = Links.nash W.pigou in
  approx_array "N = (1,0)" [| 1.0; 0.0 |] n.assignment;
  approx "level" 1.0 n.level;
  approx "C(N)" 1.0 (Links.cost W.pigou n.assignment)

let test_pigou_opt () =
  let o = Links.opt W.pigou in
  approx_array "O = (1/2,1/2)" [| 0.5; 0.5 |] o.assignment;
  approx "marginal level" 1.0 o.level;
  approx "C(O)" 0.75 (Links.cost W.pigou o.assignment)

let test_pigou_poa () = approx "PoA = 4/3" (4.0 /. 3.0) (Links.price_of_anarchy W.pigou)

let test_fig456_nash () =
  (* Hand-solved: L(1 + 2/3 + 1/2 + 2/5) = 1 + 1/15  =>  L = 32/77. *)
  let n = Links.nash W.fig456 in
  approx "level 32/77" (32.0 /. 77.0) n.level;
  approx "n1 = L" (32.0 /. 77.0) n.assignment.(0);
  approx "n5 = 0 (constant too slow)" 0.0 n.assignment.(4)

let test_fig456_opt () =
  (* Constant link pins the marginal level at 0.7. *)
  let o = Links.opt W.fig456 in
  approx "level" 0.7 o.level;
  approx_array "optimum"
    [| 0.35; 0.7 /. 3.0; 0.175; 8.0 /. 75.0; 27.0 /. 200.0 |]
    o.assignment

let test_two_constant_links_share () =
  (* Two identical constants at the level split the remainder evenly. *)
  let t = Links.make [| L.linear 1.0; L.constant 0.5; L.constant 0.5 |] ~demand:2.0 in
  let n = Links.nash t in
  approx "level" 0.5 n.level;
  approx "fast link at inverse" 0.5 n.assignment.(0);
  approx "constants split" 0.75 n.assignment.(1);
  approx "constants split (2)" 0.75 n.assignment.(2)

let test_zero_demand () =
  let t = Links.make [| L.linear 1.0; L.constant 1.0 |] ~demand:0.0 in
  approx_array "all zeros" [| 0.0; 0.0 |] (Links.nash t).assignment;
  approx_array "opt zeros" [| 0.0; 0.0 |] (Links.opt t).assignment

let test_sub_instance () =
  let sub, map = Links.sub W.fig456 ~keep:[| true; false; true; false; true |] ~demand:0.4 in
  Alcotest.(check int) "links kept" 3 (Links.num_links sub);
  Alcotest.(check (array int)) "index map" [| 0; 2; 4 |] map;
  approx "demand" 0.4 sub.Links.demand

let test_mm1_symmetric () =
  (* Identical M/M/1 links: Nash = optimum = even split. *)
  let t = W.mm1_links ~capacities:[| 0.6; 0.6; 0.6; 0.6 |] ~demand:1.0 in
  let n = Links.nash t and o = Links.opt t in
  approx_array "nash even" [| 0.25; 0.25; 0.25; 0.25 |] n.assignment;
  approx_array "opt even" [| 0.25; 0.25; 0.25; 0.25 |] o.assignment;
  approx "PoA 1" 1.0 (Links.price_of_anarchy t)

let test_induced_pigou () =
  (* Leader plays ⟨0, 1/2⟩; Followers route the other 1/2 onto link 1. *)
  let ind = Links.induced W.pigou ~strategy:[| 0.0; 0.5 |] in
  approx_array "T = (1/2, 0)" [| 0.5; 0.0 |] ind.assignment;
  approx "C(S+T) = C(O)" 0.75 (Links.stackelberg_cost W.pigou ~strategy:[| 0.0; 0.5 |])

let test_induced_infeasible_strategy () =
  (match Links.induced W.pigou ~strategy:[| 2.0; 0.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overfull strategy rejected");
  match Links.induced W.pigou ~strategy:[| -0.5; 0.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative strategy rejected"

let test_mm1_overload_fails () =
  (* Demand beyond total capacity has no equilibrium: the solver must
     fail loudly, not return garbage. *)
  let t = Links.make [| L.mm1 ~capacity:0.4; L.mm1 ~capacity:0.4 |] ~demand:1.0 in
  (match Links.nash t with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "overloaded M/M/1 nash must fail");
  match Links.opt t with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "overloaded M/M/1 opt must fail"

let test_induced_full_budget () =
  (* The Leader may own the whole flow; the Followers then route 0. *)
  let ind = Links.induced W.pigou ~strategy:[| 0.5; 0.5 |] in
  approx_array "T = 0" [| 0.0; 0.0 |] ind.assignment;
  approx "cost is the optimum" 0.75 (Links.stackelberg_cost W.pigou ~strategy:[| 0.5; 0.5 |])

let test_huge_and_tiny_demands () =
  let t = Links.make [| L.linear 1.0; L.affine ~slope:2.0 ~intercept:1.0 |] ~demand:1e6 in
  check_true "huge demand solves" (Links.verify_nash t (Links.nash t).assignment);
  let t' = Links.with_demand t 1e-9 in
  check_true "tiny demand solves" (Links.is_feasible ~eps:1e-12 t' (Links.nash t').assignment)

let test_verify_functions () =
  let n = Links.nash W.fig456 and o = Links.opt W.fig456 in
  check_true "nash verifies" (Links.verify_nash W.fig456 n.assignment);
  check_true "opt verifies" (Links.verify_opt W.fig456 o.assignment);
  check_true "nash is not optimal here" (not (Links.verify_opt W.fig456 n.assignment));
  check_true "junk fails" (not (Links.verify_nash W.fig456 [| 0.2; 0.2; 0.2; 0.2; 0.2 |]))

let random_instance seed =
  let rng = Prng.create seed in
  match Prng.int rng 3 with
  | 0 -> W.random_affine_links rng ~m:(2 + Prng.int rng 6) ~demand:(Prng.uniform rng ~lo:0.5 ~hi:4.0) ()
  | 1 ->
      W.random_polynomial_links rng ~m:(2 + Prng.int rng 6)
        ~demand:(Prng.uniform rng ~lo:0.5 ~hi:4.0) ()
  | _ -> W.random_mm1_links rng ~m:(2 + Prng.int rng 6) ~demand:(Prng.uniform rng ~lo:0.5 ~hi:4.0) ()

let prop_nash_wardrop =
  qcheck "nash satisfies the Wardrop conditions" QCheck.small_nat (fun seed ->
      let t = random_instance (seed + 1) in
      let n = Links.nash t in
      Links.is_feasible t n.assignment && Links.verify_nash t n.assignment)

let prop_opt_kkt =
  qcheck "optimum satisfies marginal-cost equalization" QCheck.small_nat (fun seed ->
      let t = random_instance (seed + 1) in
      let o = Links.opt t in
      Links.is_feasible t o.assignment && Links.verify_opt t o.assignment)

let prop_opt_beats_perturbations =
  qcheck "optimum cost is a local (hence global) minimum" QCheck.small_nat (fun seed ->
      let t = random_instance (seed + 1) in
      let rng = Prng.create (seed + 7919) in
      let o = (Links.opt t).assignment in
      let co = Links.cost t o in
      let m = Links.num_links t in
      (* Random feasible transfers from one link to another never help. *)
      let ok = ref true in
      for _ = 1 to 10 do
        let i = Prng.int rng m and j = Prng.int rng m in
        if i <> j && o.(i) > 0.0 then begin
          let d = Prng.uniform rng ~lo:0.0 ~hi:o.(i) in
          let x = Array.copy o in
          x.(i) <- x.(i) -. d;
          x.(j) <- x.(j) +. d;
          if Links.cost t x < co -. (1e-7 *. Float.max 1.0 co) then ok := false
        end
      done;
      !ok)

let prop_poa_at_least_one =
  qcheck "C(N) >= C(O)" QCheck.small_nat (fun seed ->
      Links.price_of_anarchy (random_instance (seed + 1)) >= 1.0 -. 1e-7)

let prop_linear_poa_bound =
  qcheck "PoA <= 4/3 on affine instances" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let t =
        W.random_affine_links rng ~m:(2 + Prng.int rng 6)
          ~demand:(Prng.uniform rng ~lo:0.5 ~hi:4.0) ()
      in
      Links.price_of_anarchy t <= (4.0 /. 3.0) +. 1e-6)

let test_beckmann_pigou () =
  (* Φ(x, 1-x) = x²/2 + (1-x): minimized at x = 1 — the Nash point. *)
  approx "at nash" 0.5 (Links.beckmann W.pigou [| 1.0; 0.0 |]);
  approx "at optimum" (0.125 +. 0.5) (Links.beckmann W.pigou [| 0.5; 0.5 |])

let prop_nash_minimizes_beckmann =
  qcheck "the Nash assignment minimizes the Beckmann potential" QCheck.small_nat (fun seed ->
      let t = random_instance (seed + 1) in
      let rng = Prng.create (seed + 4241) in
      let n = (Links.nash t).assignment in
      let phi_n = Links.beckmann t n in
      (* Compare against random feasible assignments (Dirichlet-ish). *)
      let m = Links.num_links t in
      let ok = ref true in
      for _ = 1 to 10 do
        let w = Array.init m (fun _ -> -.Float.log (1.0 -. Prng.float rng)) in
        let s = Vec.sum w in
        let x = Array.map (fun wi -> wi /. s *. t.Links.demand) w in
        if Links.beckmann t x < phi_n -. (1e-7 *. Float.max 1.0 (Float.abs phi_n)) then
          ok := false
      done;
      !ok)

let prop_induced_is_wardrop_on_shifted =
  qcheck "induced flow is a Wardrop equilibrium of the shifted game" QCheck.small_nat
    (fun seed ->
      let t = random_instance (seed + 1) in
      let rng = Prng.create (seed + 31) in
      let o = (Links.opt t).assignment in
      let alpha = Prng.uniform rng ~lo:0.0 ~hi:1.0 in
      let strategy = Vec.scale alpha o in
      let ind = Links.induced t ~strategy in
      let shifted =
        Links.make
          (Array.mapi (fun i lat -> L.shift strategy.(i) lat) t.Links.latencies)
          ~demand:(t.Links.demand -. Vec.sum strategy)
      in
      Links.verify_nash shifted ind.assignment)

(* ---------------- Closed-form engine vs the bisection oracle ---------------- *)

module CF = Sgr_links.Closed_form
module Pricing = Sgr_links.Pricing

let counter_value name =
  match List.assoc_opt name (Sgr_obs.Obs.counters ()) with Some v -> v | None -> 0

(* Random games on which every latency reduces to a line: plain affine,
   constants, [Shifted]-of-affine (leader flow via [L.shift]) and
   toll-shifted affine ([L.shift_intercept]). *)
let random_reducible_instance seed =
  let rng = Prng.create (seed + 1) in
  let m = 2 + Prng.int rng 8 in
  let affine () =
    L.affine
      ~slope:(Prng.uniform rng ~lo:0.1 ~hi:3.0)
      ~intercept:(Prng.uniform rng ~lo:0.0 ~hi:2.0)
  in
  let lats =
    Array.init m (fun _ ->
        match Prng.int rng 4 with
        | 0 -> L.constant (Prng.uniform rng ~lo:0.5 ~hi:3.0)
        | 1 -> affine ()
        | 2 -> L.shift (Prng.uniform rng ~lo:0.0 ~hi:1.0) (affine ())
        | _ -> L.shift_intercept (Prng.uniform rng ~lo:0.01 ~hi:1.0) (affine ()))
  in
  Links.make lats ~demand:(Prng.uniform rng ~lo:0.2 ~hi:4.0)

let engines_agree t =
  let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs b) in
  let agree (cf : Links.solution) (bi : Links.solution) =
    close cf.level bi.level
    && Array.for_all2 (fun x y -> close x y) cf.assignment bi.assignment
  in
  agree (Links.nash ~engine:`Closed_form t) (Links.nash ~engine:`Bisection t)
  && agree (Links.opt ~engine:`Closed_form t) (Links.opt ~engine:`Bisection t)

let prop_closed_form_matches_oracle =
  qcheck "closed form ≍ bisection oracle on reducible games" QCheck.small_nat (fun seed ->
      let fallbacks = counter_value "links.closed_form.fallbacks" in
      engines_agree (random_reducible_instance seed)
      (* ... and the fast path really ran: nothing fell back. *)
      && counter_value "links.closed_form.fallbacks" = fallbacks)

let prop_shifted_reduce_exact =
  qcheck "Shifted-of-affine reduction is exact" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 11) in
      let a = Prng.uniform rng ~lo:0.1 ~hi:5.0 and b = Prng.uniform rng ~lo:0.0 ~hi:5.0 in
      let s = Prng.uniform rng ~lo:0.0 ~hi:3.0 in
      match CF.reduce (L.shift s (L.affine ~slope:a ~intercept:b)) with
      | Some (a', b') -> Float.equal a' a && Float.equal b' (b +. (a *. s))
      | None -> false)

let test_closed_form_ladder () =
  (* Adversarial spread: geometrically growing intercepts leave the
     fixed-point restriction only one or two survivors per pass; it must
     still terminate on the oracle's answer and report its pruning. *)
  let m = 24 in
  let lats =
    Array.init m (fun i ->
        L.affine
          ~slope:(0.01 +. (0.1 *. float_of_int i))
          ~intercept:(1.5 ** float_of_int i))
  in
  let t = Links.make lats ~demand:0.5 in
  let prunes = counter_value "links.closed_form.prunes" in
  check_true "ladder agrees with oracle" (engines_agree t);
  check_true "pruning was observed" (counter_value "links.closed_form.prunes" > prunes)

let test_closed_form_edges () =
  (* Zero demand: no flow, level at the cheapest empty link. *)
  (match CF.solve `Nash [| L.linear 1.0; L.constant 2.0 |] ~demand:0.0 with
  | Some (x, level) ->
      approx_array "zero-demand flows" [| 0.0; 0.0 |] x;
      approx "zero-demand level" 0.0 level
  | None -> Alcotest.fail "affine instance must reduce");
  (* Single link takes everything. *)
  let t1 = Links.make [| L.affine ~slope:2.0 ~intercept:1.0 |] ~demand:3.0 in
  let n1 = Links.nash ~engine:`Closed_form t1 in
  approx "single-link flow" 3.0 n1.assignment.(0);
  approx "single-link level" 7.0 n1.level;
  (* All-constant: the reservoir semantics — cheapest constants split. *)
  let tc = Links.make [| L.constant 1.0; L.constant 1.0; L.constant 2.0 |] ~demand:3.0 in
  let nc = Links.nash ~engine:`Closed_form tc in
  approx_array "constants split evenly" [| 1.5; 1.5; 0.0 |] nc.assignment;
  approx "level pinned at the reservoir" 1.0 nc.level

let test_closed_form_fallback () =
  (* A forced closed-form engine on an M/M/1 game cannot reduce: it must
     fall back to bisection, count the fallback, and agree with it. *)
  let t = W.mm1_links ~capacities:[| 2.0; 3.0 |] ~demand:1.0 in
  let before = counter_value "links.closed_form.fallbacks" in
  let forced = Links.nash ~engine:`Closed_form t in
  check_true "fallback counted" (counter_value "links.closed_form.fallbacks" > before);
  approx_array "fallback result is the bisection result"
    (Links.nash ~engine:`Bisection t).assignment forced.assignment

(* ---------------- Best-response toll pricing ---------------- *)

let test_pricing_duopoly_analytic () =
  (* ℓ₁ = x, ℓ₂ = 2x, r = 1: revenue FOCs 2 - 2τ₁ + τ₂ = 0 and
     1 + τ₁ - 2τ₂ = 0 give τ = (5/3, 4/3), flow (5/9, 4/9), user cost
     19/27 against C(O) = 2/3 — price of pricing 19/18. *)
  let t = Links.make [| L.linear 1.0; L.linear 2.0 |] ~demand:1.0 in
  let r = Pricing.best_response t in
  check_true "converged" r.Pricing.converged;
  approx ~eps:1e-3 "toll 1 = 5/3" (5.0 /. 3.0) r.Pricing.tolls.(0);
  approx ~eps:1e-3 "toll 2 = 4/3" (4.0 /. 3.0) r.Pricing.tolls.(1);
  approx ~eps:1e-3 "flow 1 = 5/9" (5.0 /. 9.0) r.Pricing.flow.(0);
  approx ~eps:1e-3 "flow 2 = 4/9" (4.0 /. 9.0) r.Pricing.flow.(1);
  approx ~eps:1e-3 "user cost 19/27" (19.0 /. 27.0) r.Pricing.user_cost;
  approx ~eps:1e-3 "price of pricing 19/18" (19.0 /. 18.0) (Pricing.price_of_pricing t r)

let test_pricing_validation () =
  (match Pricing.best_response (Links.make [| L.linear 1.0 |] ~demand:1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "monopoly rejected");
  (match Pricing.best_response (Links.make [| L.linear 1.0; L.constant 1.0 |] ~demand:1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "constant-latency link rejected");
  match Pricing.best_response (W.mm1_links ~capacities:[| 2.0; 3.0 |] ~demand:1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-affine latencies rejected"

let prop_pricing_fixed_point =
  qcheck ~count:25 "pricing: converged tolls are mutual best responses" QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (seed + 3) in
      let m = 2 + Prng.int rng 3 in
      let lats =
        Array.init m (fun _ ->
            L.affine
              ~slope:(Prng.uniform rng ~lo:0.2 ~hi:2.0)
              ~intercept:(Prng.uniform rng ~lo:0.0 ~hi:1.0))
      in
      let t = Links.make lats ~demand:(Prng.uniform rng ~lo:0.5 ~hi:2.0) in
      let res = Pricing.best_response t in
      let feasible =
        Float.abs (Vec.sum res.Pricing.flow -. t.Links.demand)
        <= 1e-6 *. Float.max 1.0 t.Links.demand
        && Array.for_all (fun x -> x >= -1e-9) res.Pricing.flow
        && Array.for_all (fun tau -> tau >= 0.0) res.Pricing.tolls
      in
      (* Unilateral ±10% toll deviations must not beat the fixed point
         (up to the search resolution). *)
      let revenue i tau =
        let lats' =
          Array.mapi
            (fun j lat ->
              let tj = if j = i then tau else res.Pricing.tolls.(j) in
              if tj > 0.0 then L.shift_intercept tj lat else lat)
            lats
        in
        let x = (Links.nash (Links.make lats' ~demand:t.Links.demand)).Links.assignment in
        tau *. x.(i)
      in
      let best = ref true in
      if res.Pricing.converged then
        Array.iteri
          (fun i tau ->
            let r0 = revenue i tau in
            List.iter
              (fun f ->
                if revenue i ((tau *. f) +. 0.001) > r0 +. (1e-3 *. Float.max 1.0 r0) then
                  best := false)
              [ 0.9; 1.1 ])
          res.Pricing.tolls;
      feasible && !best)

let suite =
  [
    case "make: validation" test_make_validation;
    case "pigou: nash" test_pigou_nash;
    case "pigou: optimum" test_pigou_opt;
    case "pigou: PoA = 4/3" test_pigou_poa;
    case "fig4-6: nash closed form" test_fig456_nash;
    case "fig4-6: optimum closed form" test_fig456_opt;
    case "constants: tie splitting" test_two_constant_links_share;
    case "zero demand" test_zero_demand;
    case "sub-instances" test_sub_instance;
    case "mm1: symmetric system" test_mm1_symmetric;
    case "induced: pigou" test_induced_pigou;
    case "induced: infeasible strategies rejected" test_induced_infeasible_strategy;
    case "mm1: overload fails loudly" test_mm1_overload_fails;
    case "induced: leader owns everything" test_induced_full_budget;
    case "extreme demands" test_huge_and_tiny_demands;
    case "verify_nash / verify_opt" test_verify_functions;
    case "beckmann potential: pigou" test_beckmann_pigou;
    prop_nash_minimizes_beckmann;
    prop_nash_wardrop;
    prop_opt_kkt;
    prop_opt_beats_perturbations;
    prop_poa_at_least_one;
    prop_linear_poa_bound;
    prop_induced_is_wardrop_on_shifted;
    case "closed form: ladder pruning" test_closed_form_ladder;
    case "closed form: edge cases" test_closed_form_edges;
    case "closed form: non-affine fallback" test_closed_form_fallback;
    case "pricing: duopoly analytic equilibrium" test_pricing_duopoly_analytic;
    case "pricing: validation" test_pricing_validation;
    prop_closed_form_matches_oracle;
    prop_shifted_reduce_exact;
    prop_pricing_fixed_point;
  ]
