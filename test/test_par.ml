(* Tests for the domain pool: map semantics, exception propagation,
   nested-call fallback, and the determinism guarantee — every solver
   built on the pool must return byte-identical results at any job
   count. *)

open Helpers
module Pool = Sgr_par.Pool
module W = Sgr_workloads.Workloads
module Eq = Sgr_network.Equilibrate
module Obj = Sgr_network.Objective

(* Run [f] with the ambient job count set to [jobs], restoring the
   previous value (tests must not leak parallelism into each other). *)
let with_jobs jobs f =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs saved) f

let test_map_array_matches_sequential () =
  let pool = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check int) "jobs" 4 (Pool.jobs pool);
  let input = Array.init 1000 (fun i -> i) in
  let f i = (i * i) + 1 in
  Alcotest.(check (array int)) "results by index" (Array.map f input)
    (Pool.map_array pool f input);
  Alcotest.(check (array int)) "empty input" [||] (Pool.map_array pool f [||]);
  Alcotest.(check (array int)) "singleton input" [| 50 |] (Pool.map_array pool f [| 7 |]);
  (* A second batch on the same pool (workers must rearm cleanly). *)
  Alcotest.(check (array int)) "second batch" (Array.map f input) (Pool.map_array pool f input)

exception Boom of int

let test_map_array_propagates_exception () =
  let pool = Pool.create ~jobs:3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  (match Pool.map_array pool (fun i -> if i = 13 then raise (Boom i) else i) (Array.init 64 Fun.id) with
  | exception Boom 13 -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "exception must propagate to the caller");
  (* The pool survives a failed batch. *)
  Alcotest.(check (array int)) "pool alive after failure" [| 0; 1; 2 |]
    (Pool.map_array pool Fun.id [| 0; 1; 2 |])

let test_nested_map_falls_back () =
  let pool = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  (* Each task body calls back into the shared [map]; the inner call
     must run sequentially on the task's domain, not deadlock. *)
  let outer =
    Pool.map_array pool
      (fun i ->
        let inner = Pool.map ~jobs:4 (fun j -> (10 * i) + j) (Array.init 8 Fun.id) in
        Array.fold_left ( + ) 0 inner)
      (Array.init 16 Fun.id)
  in
  let expected =
    Array.init 16 (fun i ->
        Array.fold_left ( + ) 0 (Array.init 8 (fun j -> (10 * i) + j)))
  in
  Alcotest.(check (array int)) "nested maps" expected outer

let test_jobs_clamped () =
  with_jobs 1 @@ fun () ->
  Pool.set_default_jobs 0;
  Alcotest.(check int) "clamped below" 1 (Pool.default_jobs ());
  Pool.set_default_jobs 100_000;
  Alcotest.(check int) "clamped above" 512 (Pool.default_jobs ());
  match Pool.create ~jobs:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Pool.create ~jobs:0 must be rejected"

let test_create_rejects () =
  match Pool.create ~jobs:(-3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative jobs must be rejected"

(* ---------------- determinism across job counts ---------------- *)

let curve_identical (a : Stackelberg.Alpha_sweep.curve) (b : Stackelberg.Alpha_sweep.curve) =
  a.beta = b.beta
  && List.length a.points = List.length b.points
  && List.for_all2
       (fun (p : Stackelberg.Alpha_sweep.point) (q : Stackelberg.Alpha_sweep.point) ->
         p.alpha = q.alpha && p.ratio = q.ratio && p.method_used = q.method_used)
       a.points b.points

let test_alpha_sweep_jobs_identical () =
  let seq = Stackelberg.Alpha_sweep.run ~jobs:1 ~samples:9 W.fig456 in
  let par = Stackelberg.Alpha_sweep.run ~jobs:4 ~samples:9 W.fig456 in
  check_true "fig456 sweep identical at jobs=1 and jobs=4" (curve_identical seq par);
  let seq = Stackelberg.Alpha_sweep.run ~jobs:1 ~samples:7 W.pigou in
  let par = Stackelberg.Alpha_sweep.run ~jobs:4 ~samples:7 W.pigou in
  check_true "pigou sweep identical at jobs=1 and jobs=4" (curve_identical seq par)

let prop_alpha_sweep_jobs_identical =
  qcheck ~count:10 "random sweeps identical at jobs=1 and jobs=4" QCheck.small_nat (fun seed ->
      let rng = Sgr_numerics.Prng.create (seed + 900) in
      let t = W.random_affine_links rng ~m:4 () in
      let seq = Stackelberg.Alpha_sweep.run ~jobs:1 ~samples:7 ~grid_resolution:8 t in
      let par = Stackelberg.Alpha_sweep.run ~jobs:4 ~samples:7 ~grid_resolution:8 t in
      curve_identical seq par)

let solve_with_jobs jobs net =
  with_jobs jobs @@ fun () -> Eq.solve ~engine:Eq.Column_generation Obj.Wardrop net

let test_column_gen_jobs_identical () =
  let net = W.two_commodity () in
  let seq = solve_with_jobs 1 net in
  let par = solve_with_jobs 4 net in
  (* Bitwise equality: parallel pricing must not change a single ulp. *)
  check_true "edge flows bit-identical" (seq.edge_flow = par.edge_flow);
  Alcotest.(check int) "same sweeps" seq.sweeps par.sweeps;
  check_true "same gap" (seq.gap = par.gap);
  check_true "same path sets" (seq.paths = par.paths);
  check_true "same path flows" (seq.path_flows = par.path_flows)

let prop_column_gen_jobs_identical =
  qcheck ~count:10 "random multicommodity solves identical at jobs=1 and jobs=4"
    QCheck.small_nat (fun seed ->
      let rng = Sgr_numerics.Prng.create (seed + 950) in
      let net = W.random_multicommodity rng ~rows:3 ~cols:3 ~commodities:3 () in
      let seq = solve_with_jobs 1 net in
      let par = solve_with_jobs 4 net in
      seq.edge_flow = par.edge_flow && seq.paths = par.paths && seq.gap = par.gap)

let test_mop_jobs_identical () =
  let net = W.fig7 () in
  let seq = with_jobs 1 (fun () -> Stackelberg.Mop.run net) in
  let par = with_jobs 4 (fun () -> Stackelberg.Mop.run net) in
  check_true "beta identical" (seq.beta = par.beta);
  check_true "leader flow bit-identical" (seq.leader_edge_flow = par.leader_edge_flow);
  check_true "induced cost identical" (seq.induced.cost = par.induced.cost)

let suite =
  [
    case "pool: map_array matches Array.map" test_map_array_matches_sequential;
    case "pool: exceptions propagate, pool survives" test_map_array_propagates_exception;
    case "pool: nested maps fall back to sequential" test_nested_map_falls_back;
    case "pool: ambient jobs clamped to [1, 512]" test_jobs_clamped;
    case "pool: create rejects jobs < 1" test_create_rejects;
    case "alpha-sweep: identical at jobs=1 and jobs=4" test_alpha_sweep_jobs_identical;
    prop_alpha_sweep_jobs_identical;
    case "column-gen: identical at jobs=1 and jobs=4" test_column_gen_jobs_identical;
    prop_column_gen_jobs_identical;
    case "mop: identical at jobs=1 and jobs=4" test_mop_jobs_identical;
  ]
