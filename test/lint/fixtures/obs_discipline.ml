(* Fixture: obs-domain-discipline, inline closures and the let-bound
   indirection both fire. *)

let direct xs = Pool.map (fun x -> Obs.span "per-item" (fun () -> x)) xs
let point_at x = Obs.point ~solver:"s" ~k:x ~gap:0. ~objective:0. ~step:0.
let indirect xs = Sgr_par.Pool.map point_at xs
let hist_direct h xs = Pool.map (fun x -> Hist.record h x) xs

let allowed xs =
  (Pool.map_array pool (fun x -> Obs.span "item" (fun () -> x)) xs)
  [@lint.allow "obs-domain-discipline"]

(* Hist.observe is the sharded, domain-safe spelling: must not fire. *)
let sharded h xs = Pool.map (fun x -> Hist.observe h x) xs
