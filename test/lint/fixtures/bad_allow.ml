(* Fixture: a typo'd rule id must not silence anything — it is itself
   reported, and the underlying finding still fires. *)

let oops () = (failwith "x") [@lint.allow "no-such-rule"]
