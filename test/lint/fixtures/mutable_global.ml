(* Fixture: mutable-global. The allow-annotated binding must not fire. *)

let cache = Hashtbl.create 16
let hits = ref 0 [@@lint.allow "mutable-global"]
let log_buf = Buffer.create 64

type cell = { mutable value : int }

let shared_cell = { value = 0 }
let safe_count = Atomic.make 0
let per_call () = ref 0
