(* Fixture: quadratic-list. *)

let contains x xs = List.mem x xs
let join a b = a @ b
let lookup k l = List.assoc k l
let nth_hop p i = List.nth p i
let joined_ok a b = (a @ b) [@lint.allow "quadratic-list"]
