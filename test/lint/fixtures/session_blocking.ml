(* Fixture: no-blocking-in-pool in the session-layer scope — staged as
   lib/serve/session.ml, where any blocking call fires even outside a
   Pool.map closure (the event loop must never block). *)

let pump fd buf = ignore (Unix.read fd buf 0 64)
let backoff () = Thread.delay 0.1

let allowed () = (Unix.sleepf 0.01) [@lint.allow "no-blocking-in-pool"]
