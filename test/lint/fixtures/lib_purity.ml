(* Fixture: lib-purity. Formatter-directed printing is fine; std
   channels are not. *)

let announce name = print_endline name
let debug n = Printf.printf "%d\n" n
let to_sink ppf x = Format.fprintf ppf "%d" x
let allowed name = (print_endline name) [@lint.allow "lib-purity"]
