(* Fixture: float-equality, both the literal-comparison and the
   bare-polymorphic-compare forms. *)

let is_unit x = x = 1.0
let is_unit_ok x = (x = 1.0) [@lint.allow "float-equality"]
let nonzero x = x <> 0.0
let pick a b = min a b
let pick_ok a b = (min a b) [@lint.allow "float-equality"]
let ordered a b = compare a b
let typed a b = Float.max a b
