(* Fixture: no-untyped-failure. *)

let explode () = failwith "boom"
let unreachable () = assert false
let checked x = if x < 0 then invalid_arg "negative"
let documented () = (failwith "contract") [@lint.allow "no-untyped-failure"]
