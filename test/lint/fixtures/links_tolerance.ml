(* Fixture: float-equality scoping for the links water-filling engine.
   lib/links is a numeric module, so the bare polymorphic min/compare
   forms fire there (they are silent outside the numeric scope); the
   Tolerance-helper and Float.* idioms the engine actually uses do not. *)

let at_bottom x = x = 0.0
let at_level_ok b level = Tolerance.approx ~eps:1e-9 b level
let lowest a b = min a b
let lowest_ok a b = Float.min a b
let ordered a b = compare a b
let ordered_ok a b = (compare a b) [@lint.allow "float-equality"]
let clamped x = Tolerance.clamp_nonneg x
