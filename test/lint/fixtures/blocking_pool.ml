(* Fixture: no-blocking-in-pool, inline closures and the let-bound
   indirection both fire. *)

let direct xs = Pool.map (fun x -> Unix.sleep x) xs
let fetch fd buf x = ignore (Unix.read fd buf 0 x); x
let indirect xs = Sgr_par.Pool.map fetch xs

let allowed pool xs =
  (Pool.map_array pool (fun x -> Unix.sleepf x) xs)
  [@lint.allow "no-blocking-in-pool"]
