(* Mini serving dispatch: everything it references becomes
   deadline-relevant for cancel-coverage. *)
let dispatch q =
  Column_gen.price (fun x -> x < q)
  +. Mop.water_fill q
  +. float_of_int (Mop.bounded ())
  +. Assign.solve q
