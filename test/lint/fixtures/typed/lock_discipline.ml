(* Typed-phase lock-discipline: [t] pairs a Mutex.t with mutable state,
   so accessing [count] without holding the mutex fires; the locked path
   and the annotated read do not. The mutable global swept from a pool
   closure fires at its definition unless annotated. *)

type t = { mutex : Mutex.t; mutable count : int }

let bad t = t.count <- t.count + 1

let good t =
  Mutex.lock t.mutex;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

(* why: fixture — stands in for a single-domain reader. *)
let vouched t = (t.count [@lint.allow "lock-discipline"])

module Pool = struct
  let map f a = Array.map f a
end

(* why (mutable-global): fixture — the typed rule is the one under test. *)
let total = ref 0 [@@lint.allow "mutable-global"]
let sweep a = Pool.map (fun x -> total := !total + x; x) a

(* why: fixture — stands in for single-domain state. *)
let quiet = ref 0 [@@lint.allow "mutable-global"] [@@lint.allow "lock-discipline"]
let sweep_quiet a = Pool.map (fun x -> quiet := !quiet + x; x) a
