(* Mini bisection: the iteration loop carries a deadline checkpoint,
   mirroring lib/numerics/bisection.ml. *)
let solve f lo hi =
  let x = ref lo in
  while f !x && !x < hi do
    Cancel.check ();
    x := !x +. 1.0
  done;
  !x
