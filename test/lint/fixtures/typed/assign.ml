(* Mini edge-flow assignment loop, mirroring lib/assign/solver.ml:
   every Frank–Wolfe/MSA iteration checkpoints the per-domain
   deadline. *)
let solve demand =
  let gap = ref demand in
  while !gap > 1e-4 do
    Cancel.check ();
    gap := !gap /. 2.0
  done;
  !gap
