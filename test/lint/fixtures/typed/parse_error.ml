(* A file the compiler's parser rejects must surface as a non-zero-exit
   [parse-error] diagnostic, never be skipped silently. *)
let broken = (
