(* Mini MOP water-filling round loop, mirroring lib/core/mop.ml. *)
let water_fill demand =
  let level = ref 0.0 in
  while !level < demand do
    Cancel.check ();
    level := !level +. 0.5
  done;
  !level

(* why: three passes by construction — annotated bounded loops stay
   silent even when reachable from dispatch. *)
let bounded () =
  let i = ref 0 in
  (while !i < 3 do
     incr i
   done)
  [@lint.allow "cancel-coverage"];
  !i
