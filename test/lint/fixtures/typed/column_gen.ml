(* Mini column-generation pricing loop, mirroring
   lib/network/column_gen.ml: each round runs a sub-solver. *)
let price cost =
  let best = ref 0.0 in
  let round = ref 0 in
  while !round < 10 do
    Cancel.check ();
    best := !best +. Bisection.solve cost 0.0 1.0;
    incr round
  done;
  !best
