(* Typed-phase no-blocking-in-pool: the blocking call is two hops below
   the closure, where the old one-level name taint was blind. The
   [Pool]/[Mutex] names are what the rule matches on; the stub keeps the
   fixture self-contained. *)

module Pool = struct
  let map f a = Array.map f a
end

let m = Mutex.create ()
let deep () = Mutex.lock m
let work x = deep (); x
let run a = Pool.map (fun x -> work x) a

(* why: fixture — stands in for a vouched-for bounded critical section;
   the allow on the definition is a taint barrier. *)
let vouched () = Mutex.lock m [@@lint.allow "no-blocking-in-pool"]
let ok x = vouched (); x
let run_ok a = Pool.map (fun x -> ok x) a
