(* Stand-in for Sgr_obs.Cancel: the rule matches the [Cancel.check]
   suffix on canonical names, so the stub exercises the same paths. *)
let check () = ()
