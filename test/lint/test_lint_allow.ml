(* Property tests for the [@lint.allow] machinery: generated sources are
   fed through the compiler's own parser and [Lint_allow.collect], so
   the round trip (print source -> parse -> regions -> suppression)
   exercises exactly the code path sgr-lint runs. *)

let known = [ "alpha"; "beta"; "gamma" ]

let parse src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf "gen.ml";
  Parse.implementation lexbuf

let collect src = Lint_allow.collect ~known (parse src)

(* A diagnostic at byte offset [cnum] for [rule]; only rule and cnum
   participate in suppression. *)
let diag_at ~rule cnum =
  { Lint_diag.file = "gen.ml"; line = 1; col = 0; cnum; rule; msg = "t" }

(* ---------------- generators ---------------- *)

(* One toplevel binding, optionally carrying an allow for [rule]. The
   body is long enough that offsets inside it are distinct. *)
let binding ~name ~allow =
  match allow with
  | None -> Printf.sprintf "let %s () = ignore (1 + 2)\n" name
  | Some rule -> Printf.sprintf "let %s () = ignore (1 + 2) [@@lint.allow %S]\n" name rule

let gen_rule = QCheck.Gen.oneofl known
let gen_allow = QCheck.Gen.(opt gen_rule)

let gen_bindings =
  QCheck.Gen.(
    list_size (int_range 1 8) gen_allow
    >|= List.mapi (fun i allow -> (Printf.sprintf "f%d" i, allow)))

let arb_bindings =
  QCheck.make gen_bindings
    ~print:(fun bs ->
      String.concat "" (List.map (fun (n, a) -> binding ~name:n ~allow:a) bs))

(* ---------------- properties ---------------- *)

(* Round trip: each binding suppresses exactly the rule its allow names,
   at offsets inside its own span, and nothing else. *)
let prop_binding_roundtrip =
  QCheck.Test.make ~name:"binding allows suppress their own span only" ~count:200
    arb_bindings (fun bs ->
      let src = String.concat "" (List.map (fun (n, a) -> binding ~name:n ~allow:a) bs) in
      let regions, bad = collect src in
      (* Reconstruct each binding's span from the source layout. *)
      let spans =
        let pos = ref 0 in
        List.map
          (fun (n, a) ->
            let text = binding ~name:n ~allow:a in
            let lo = !pos in
            pos := !pos + String.length text;
            (a, lo, !pos - 1))
          bs
      in
      bad = []
      && List.for_all
           (fun (allow, lo, hi) ->
             let mid = (lo + hi) / 2 in
             List.for_all
               (fun rule ->
                 let expect = allow = Some rule in
                 (* Both ends and the middle of the span agree... *)
                 Lint_allow.suppressed regions (diag_at ~rule lo) = expect
                 && Lint_allow.suppressed regions (diag_at ~rule mid) = expect
                 (* ...and other rules never leak in. *)
                 && (expect || not (Lint_allow.suppressed regions (diag_at ~rule lo))))
               known)
           spans)

(* Floating [@@@lint.allow] scopes to the rest of the file: offsets
   before the attribute stay unsuppressed, offsets after are covered. *)
let prop_floating_scope =
  QCheck.Test.make ~name:"floating allow covers the rest of the file" ~count:200
    QCheck.(pair (make gen_rule ~print:Fun.id) (int_range 1 6))
    (fun (rule, before) ->
      let pre = List.init before (fun i -> binding ~name:(Printf.sprintf "p%d" i) ~allow:None) in
      let pre_src = String.concat "" pre in
      let attr = Printf.sprintf "[@@@lint.allow %S]\n" rule in
      let post = binding ~name:"after" ~allow:None in
      let src = pre_src ^ attr ^ post in
      let regions, bad = collect src in
      let attr_lo = String.length pre_src in
      bad = []
      && (not (Lint_allow.suppressed regions (diag_at ~rule 0)))
      && (not (Lint_allow.suppressed regions (diag_at ~rule (attr_lo - 1))))
      && Lint_allow.suppressed regions (diag_at ~rule attr_lo)
      && Lint_allow.suppressed regions (diag_at ~rule (String.length src - 2))
      && not (Lint_allow.suppressed regions (diag_at ~rule:"beta" (attr_lo + 1)) && rule <> "beta"))

(* Nested scopes: an expression allow inside a binding allow — the inner
   region is contained in the outer, and each suppresses only its rule. *)
let prop_nested_scopes =
  QCheck.Test.make ~name:"nested expression/binding allows stay independent" ~count:200
    QCheck.(pair (make gen_rule ~print:Fun.id) (make gen_rule ~print:Fun.id))
    (fun (outer, inner) ->
      let src =
        Printf.sprintf "let f () = ignore ((1 + 2) [@lint.allow %S]) [@@lint.allow %S]\n" inner
          outer
      in
      let regions, bad = collect src in
      (* "let f () = ignore ((1 + 2) ..." — the inner expression "1 + 2"
         occupies bytes 20-24 of the fixed-format source. *)
      let inside_inner = 22 in
      bad = []
      && Lint_allow.suppressed regions (diag_at ~rule:outer 0)
      && Lint_allow.suppressed regions (diag_at ~rule:inner inside_inner)
      && (inner = outer || not (Lint_allow.suppressed regions (diag_at ~rule:inner 0))))

(* Typo'd ids: every unknown rule id becomes one [bad-allow] finding and
   silences nothing. *)
let prop_typod_ids =
  QCheck.Test.make ~name:"unknown ids produce bad-allow and no region" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 5) (make Gen.(oneofl [ "alhpa"; "betaa"; "nope"; "" ]) ~print:Fun.id))
    (fun ids ->
      let src =
        String.concat ""
          (List.mapi
             (fun i id -> Printf.sprintf "let g%d () = ignore 1 [@@lint.allow %S]\n" i id)
             ids)
      in
      let regions, bad = collect src in
      regions = []
      && List.length bad = List.length ids
      && List.for_all (fun (d : Lint_diag.t) -> d.rule = "bad-allow") bad)

(* Payload edge cases: non-string payloads are [bad-allow], never a
   crash and never a region; a known id in a *different* payload shape
   still does not suppress. *)
let prop_payload_shapes =
  QCheck.Test.make ~name:"non-string payloads are bad-allow" ~count:50
    (QCheck.make
       QCheck.Gen.(oneofl [ "[@@lint.allow]"; "[@@lint.allow 42]"; "[@@lint.allow alpha]"; "[@@lint.allow (\"alpha\", \"beta\")]" ])
       ~print:Fun.id)
    (fun payload ->
      let src = Printf.sprintf "let h () = ignore 1 %s\n" payload in
      let regions, bad = collect src in
      regions = [] && List.length bad = 1
      && (List.hd bad).Lint_diag.rule = "bad-allow")

let () =
  let suite =
    List.map (fun t -> QCheck_alcotest.to_alcotest t)
      [
        prop_binding_roundtrip;
        prop_floating_scope;
        prop_nested_scopes;
        prop_typod_ids;
        prop_payload_shapes;
      ]
  in
  Alcotest.run "lint_allow" [ ("properties", suite) ]
