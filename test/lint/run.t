sgr-lint enforces the project rules described in docs/static-analysis.md.
Rule scoping is path-derived (lib/, lib/numerics, lib/graph, ...), so the
fixtures are staged under a miniature source tree first. Every fixture
carries one firing case per pattern plus one [@lint.allow]-suppressed
case, and the suppressed case must be absent from the diagnostics.

  $ mkdir -p lib/state lib/numerics lib/links lib/graph lib/serve
  $ cp fixtures/mutable_global.ml fixtures/obs_discipline.ml lib/state/
  $ cp fixtures/lib_purity.ml fixtures/no_untyped_failure.ml lib/state/
  $ cp fixtures/bad_allow.ml fixtures/blocking_pool.ml lib/state/
  $ cp fixtures/float_equality.ml lib/numerics/
  $ cp fixtures/links_tolerance.ml lib/links/
  $ cp fixtures/quadratic_list.ml lib/graph/
  $ cp fixtures/session_blocking.ml lib/serve/session.ml

mutable-global: toplevel Hashtbl/Buffer/mutable-record creation fires;
the annotated ref and the Atomic.make / per-call cases do not:

  $ sgr-lint lib/state/mutable_global.ml
  lib/state/mutable_global.ml:3:12: [mutable-global] toplevel Hashtbl.create creates shared mutable state; wrap it in Atomic/Mutex or Domain.DLS, or annotate why it is domain-safe
  lib/state/mutable_global.ml:5:14: [mutable-global] toplevel Buffer.create creates shared mutable state; wrap it in Atomic/Mutex or Domain.DLS, or annotate why it is domain-safe
  lib/state/mutable_global.ml:9:18: [mutable-global] toplevel record literal has mutable field value; shared mutable state needs Atomic/Mutex/Domain.DLS or an allow annotation
  3 findings
  [1]

float-equality: literal comparisons anywhere, bare polymorphic
compare/min/max in numeric modules; Float.max is fine:

  $ sgr-lint lib/numerics/float_equality.ml
  lib/numerics/float_equality.ml:4:16: [float-equality] exact comparison against a float literal; use Tolerance.approx / approx_le / approx_ge (or annotate an intentional exact test)
  lib/numerics/float_equality.ml:6:16: [float-equality] exact comparison against a float literal; use Tolerance.approx / approx_le / approx_ge (or annotate an intentional exact test)
  lib/numerics/float_equality.ml:7:15: [float-equality] bare polymorphic min in a numeric module; use Float.min / Int.min (or a tolerance helper) so the comparison semantics are explicit
  lib/numerics/float_equality.ml:9:18: [float-equality] bare polymorphic compare in a numeric module; use Float.compare / Int.compare (or a tolerance helper) so the comparison semantics are explicit
  4 findings
  [1]

float-equality, links scope: the water-filling engines under lib/links
are numeric modules too — bare polymorphic min/compare fire there, and
the Tolerance/Float.* idioms the engines actually use do not:

  $ sgr-lint lib/links/links_tolerance.ml
  lib/links/links_tolerance.ml:6:18: [float-equality] exact comparison against a float literal; use Tolerance.approx / approx_le / approx_ge (or annotate an intentional exact test)
  lib/links/links_tolerance.ml:8:17: [float-equality] bare polymorphic min in a numeric module; use Float.min / Int.min (or a tolerance helper) so the comparison semantics are explicit
  lib/links/links_tolerance.ml:10:18: [float-equality] bare polymorphic compare in a numeric module; use Float.compare / Int.compare (or a tolerance helper) so the comparison semantics are explicit
  3 findings
  [1]

no-blocking-in-pool: blocking syscalls inside Pool.map closures,
including through a let-bound helper passed by name; the suppressed
Unix.sleepf is absent:

  $ sgr-lint lib/state/blocking_pool.ml
  lib/state/blocking_pool.ml:4:35: [no-blocking-in-pool] Unix.sleep blocks inside a closure passed to Pool.map: a parked worker domain stalls every task queued behind it
  1 finding
  [1]

(The helper passed by name no longer fires here: interprocedural
blocking is the typed phase's job now — see the call-graph sections
below, where the same shape is caught through two levels of calls.)

no-blocking-in-pool, session scope: inside the serve session-layer
modules (session.ml, lineio.ml) any blocking call fires, Pool.map or
not — these state machines run on the server's single event-loop
thread; the suppressed Unix.sleepf is absent:

  $ sgr-lint lib/serve/session.ml
  lib/serve/session.ml:5:26: [no-blocking-in-pool] Unix.read blocks inside a session state-machine module: the server's event loop must never block (keep Session/Lineio pure; all I/O belongs to Server)
  lib/serve/session.ml:6:17: [no-blocking-in-pool] Thread.delay blocks inside a session state-machine module: the server's event loop must never block (keep Session/Lineio pure; all I/O belongs to Server)
  2 findings
  [1]

obs-domain-discipline: spans/points and plain Hist.record inside Pool.map
closures, including through a let-bound helper passed by name; the sharded
Hist.observe is domain-safe and must not fire:

  $ sgr-lint lib/state/obs_discipline.ml
  lib/state/obs_discipline.ml:4:35: [obs-domain-discipline] Obs.span/Obs.point/Hist.record inside a closure passed to Pool.map: worker domains drop events and race on plain histograms, so telemetry depends on the job count (use Hist.observe for histograms)
  lib/state/obs_discipline.ml:6:35: [obs-domain-discipline] point_at emits Obs spans/points or records a plain histogram and is passed to Pool.map: worker domains drop events and race on histograms, so telemetry depends on the job count
  lib/state/obs_discipline.ml:7:42: [obs-domain-discipline] Obs.span/Obs.point/Hist.record inside a closure passed to Pool.map: worker domains drop events and race on plain histograms, so telemetry depends on the job count (use Hist.observe for histograms)
  3 findings
  [1]

lib-purity: std-channel printing in lib/; formatter-directed output is
allowed:

  $ sgr-lint lib/state/lib_purity.ml
  lib/state/lib_purity.ml:4:20: [lib-purity] print_endline writes to std channels from lib/; return data or report through the Obs sink, and print from bin/
  lib/state/lib_purity.ml:5:14: [lib-purity] Printf.printf writes to std channels from lib/; return data or report through the Obs sink, and print from bin/
  2 findings
  [1]

no-untyped-failure: failwith and assert false; invalid_arg is fine:

  $ sgr-lint lib/state/no_untyped_failure.ml
  lib/state/no_untyped_failure.ml:3:17: [no-untyped-failure] failwith in lib/ raises an untyped Failure; use invalid_arg, a typed exception, or annotate the documented contract
  lib/state/no_untyped_failure.ml:4:21: [no-untyped-failure] assert false in lib/; make the invariant a typed error or annotate why the branch is unreachable
  2 findings
  [1]

quadratic-list: linear list idioms in hot-path modules:

  $ sgr-lint lib/graph/quadratic_list.ml
  lib/graph/quadratic_list.ml:3:20: [quadratic-list] List.mem is O(n) per call in a hot-path module; use an array, a sorted structure, or a Hashtbl
  lib/graph/quadratic_list.ml:4:17: [quadratic-list] (@) is O(n) per call in a hot-path module; use an array, a sorted structure, or a Hashtbl
  lib/graph/quadratic_list.ml:5:17: [quadratic-list] List.assoc is O(n) per call in a hot-path module; use an array, a sorted structure, or a Hashtbl
  lib/graph/quadratic_list.ml:6:18: [quadratic-list] List.nth is O(n) per call in a hot-path module; use an array, a sorted structure, or a Hashtbl
  4 findings
  [1]

A typo in an allow annotation is itself an error and silences nothing:

  $ sgr-lint lib/state/bad_allow.ml
  lib/state/bad_allow.ml:4:14: [no-untyped-failure] failwith in lib/ raises an untyped Failure; use invalid_arg, a typed exception, or annotate the documented contract
  lib/state/bad_allow.ml:4:29: [bad-allow] unknown rule "no-such-rule" in [@lint.allow]
  2 findings
  [1]

The whole staged tree in one run comes back sorted by file; a tree with
only suppressed or conforming sites exits 0:

  $ sgr-lint lib | tail -n 1
  26 findings

Diagnostic order is deterministic — sorted by (file, line, col, rule) —
and overlapping roots are deduplicated, so repeating a path (or naming a
subdirectory of another root) changes nothing, byte for byte:

  $ sgr-lint lib > once.txt
  [1]
  $ sgr-lint lib lib/state lib > twice.txt
  [1]
  $ cmp once.txt twice.txt

--format json emits one object per finding with the allow id a
suppression would need; diagnostics that cannot be suppressed
([parse-error], [bad-allow], [cmt-error]) carry null:

  $ sgr-lint --format json lib/state/bad_allow.ml
  [
    {"file":"lib/state/bad_allow.ml","line":4,"col":14,"rule":"no-untyped-failure","msg":"failwith in lib/ raises an untyped Failure; use invalid_arg, a typed exception, or annotate the documented contract","allow":"no-untyped-failure"},
    {"file":"lib/state/bad_allow.ml","line":4,"col":29,"rule":"bad-allow","msg":"unknown rule \"no-such-rule\" in [@lint.allow]","allow":null}
  ]
  [1]

--allow-census counts allow regions per rule (the CI baseline check
diffs this against lint-baseline.txt, so a new suppression is a visible
review item, not a silent hole):

  $ sgr-lint --allow-census lib
  float-equality         3
  lib-purity             1
  mutable-global         1
  no-blocking-in-pool    2
  no-untyped-failure     1
  obs-domain-discipline  1
  quadratic-list         1

A file the parser rejects is a finding with the failure location, and
the exit stays non-zero — a syntax error must never un-lint a file:

  $ mkdir -p broken/lib && cp fixtures/typed/parse_error.ml broken/lib/oops.ml
  $ sgr-lint broken/lib
  broken/lib/oops.ml:4:0: [parse-error] Syntax error: operator expected.
  1 finding
  [1]

  $ mkdir -p clean/lib && cp fixtures/bad_allow.ml clean/lib/ && rm clean/lib/bad_allow.ml
  $ cat > clean/lib/tidy.ml << 'EOF'
  > let count = Atomic.make 0
  > let documented () = (failwith "contract") [@lint.allow "no-untyped-failure"]
  > EOF
  $ sgr-lint clean/lib

The rule catalogue is self-describing:

  $ sgr-lint --rules | cut -c1-22 | sed 's/ *$//'
  mutable-global
  float-equality
  obs-domain-discipline
  lib-purity
  no-blocking-in-pool
  no-untyped-failure
  quadratic-list
  lock-discipline
  cancel-coverage

---- typed phase ----

The interprocedural rules read .cmt files (dune's @lint alias depends
on @check). Fixtures are compiled with ocamlc -bin-annot from the
staged tree root, so the recorded source paths line up with the
Parsetree phase's and one allow table filters both. First the taint
and lock rules:

  $ mkdir -p typed/lib/state typed/lib/serve typed/lib/core
  $ mkdir -p typed/lib/network typed/lib/numerics
  $ cp fixtures/typed/typed_blocking.ml fixtures/typed/lock_discipline.ml typed/lib/state/
  $ (cd typed && ocamlc -c -bin-annot -w -a lib/state/typed_blocking.ml lib/state/lock_discipline.ml)

no-blocking-in-pool (typed): the Mutex.lock sits two calls below the
Pool.map closure — the Parsetree phase cannot see it; the fixed-point
taint reports the root with its witness chain. The allow on [vouched]'s
definition is a taint barrier, so the second closure is clean.
lock-discipline: the unguarded write and read of the mutex-paired field
fire; the locked path and the annotated read do not; the mutable global
swept from a pool closure fires at its definition unless annotated:

  $ (cd typed && sgr-lint lib)
  lib/state/lock_discipline.ml:8:12: [lock-discipline] write of mutex-guarded field Lock_discipline.t.count without holding the mutex; take the lock (or a lock-wrapper) on every path, or annotate why this access is race-free
  lib/state/lock_discipline.ml:8:23: [lock-discipline] read of mutex-guarded field Lock_discipline.t.count without holding the mutex; take the lock (or a lock-wrapper) on every path, or annotate why this access is race-free
  lib/state/lock_discipline.ml:23:0: [lock-discipline] non-atomic mutable global Lock_discipline.total (ref) is reachable from a Pool closure; worker domains race on it — use Atomic, a mutex, Domain.DLS, or annotate why access is single-domain
  lib/state/typed_blocking.ml:13:31: [no-blocking-in-pool] Typed_blocking.work reaches blocking call Mutex.lock (Typed_blocking.work -> Typed_blocking.deep -> Mutex.lock) from a Pool closure: a parked worker domain stalls every task queued behind it
  4 findings
  [1]

cancel-coverage guards the deadline checkpoints: a miniature of the
serving stack — dispatch in lib/serve, the column-generation pricing
loop, the MOP water-filling loop, the edge-flow assignment iteration,
and the bisection iteration — passes while every loop carries its
Cancel.check (the annotated bounded loop in mop.ml needs none):

  $ rm typed/lib/state/*.ml typed/lib/state/*.cm*
  $ mkdir -p typed/lib/assign
  $ cp fixtures/typed/cancel.ml fixtures/typed/bisection.ml typed/lib/numerics/
  $ cp fixtures/typed/mop.ml typed/lib/core/
  $ cp fixtures/typed/column_gen.ml typed/lib/network/
  $ cp fixtures/typed/assign.ml typed/lib/assign/
  $ cp fixtures/typed/engine.ml typed/lib/serve/
  $ (cd typed && ocamlc -c -bin-annot -w -a -I lib/numerics lib/numerics/cancel.ml lib/numerics/bisection.ml)
  $ (cd typed && ocamlc -c -bin-annot -w -a -I lib/numerics lib/core/mop.ml)
  $ (cd typed && ocamlc -c -bin-annot -w -a -I lib/numerics lib/network/column_gen.ml)
  $ (cd typed && ocamlc -c -bin-annot -w -a -I lib/numerics lib/assign/assign.ml)
  $ (cd typed && ocamlc -c -bin-annot -w -a -I lib/core -I lib/network -I lib/numerics -I lib/assign lib/serve/engine.ml)
  $ (cd typed && sgr-lint lib)

The call graph behind the rules is inspectable; loop-bearing and
checkpointed nodes are labelled:

  $ (cd typed && sgr-lint --dump-callgraph dot lib) | grep -E '"(Engine\.dispatch|Column_gen\.price)"'
    "Column_gen.price" [label="Column_gen.price (loops,cancel)"];
    "Column_gen.price" -> "Bisection.solve";
    "Column_gen.price" -> "Cancel.check";
    "Engine.dispatch" -> "Assign.solve";
    "Engine.dispatch" -> "Column_gen.price";
    "Engine.dispatch" -> "Mop.bounded";
    "Engine.dispatch" -> "Mop.water_fill";

Deleting any checkpoint is caught — this is the regression guard for
the real tree's checkpoint sites (column-generation pricing rounds,
MOP water-filling, edge-flow assignment iterations, bisection
iterations):

  $ sed -i '/Cancel.check/d' typed/lib/numerics/bisection.ml typed/lib/core/mop.ml typed/lib/network/column_gen.ml typed/lib/assign/assign.ml
  $ (cd typed && ocamlc -c -bin-annot -w -a -I lib/numerics lib/numerics/cancel.ml lib/numerics/bisection.ml)
  $ (cd typed && ocamlc -c -bin-annot -w -a -I lib/numerics lib/core/mop.ml)
  $ (cd typed && ocamlc -c -bin-annot -w -a -I lib/numerics lib/network/column_gen.ml)
  $ (cd typed && ocamlc -c -bin-annot -w -a -I lib/numerics lib/assign/assign.ml)
  $ (cd typed && sgr-lint lib)
  lib/assign/assign.ml:6:2: [cancel-coverage] while loop in Assign.solve is reachable from serving dispatch but has no Sgr_obs.Cancel.check in its body; an @MS deadline cannot pre-empt it (add a checkpoint, or annotate why the loop is bounded)
  lib/core/mop.ml:4:2: [cancel-coverage] while loop in Mop.water_fill is reachable from serving dispatch but has no Sgr_obs.Cancel.check in its body; an @MS deadline cannot pre-empt it (add a checkpoint, or annotate why the loop is bounded)
  lib/network/column_gen.ml:6:2: [cancel-coverage] while loop in Column_gen.price is reachable from serving dispatch but has no Sgr_obs.Cancel.check in its body; an @MS deadline cannot pre-empt it (add a checkpoint, or annotate why the loop is bounded)
  lib/numerics/bisection.ml:5:2: [cancel-coverage] while loop in Bisection.solve is reachable from serving dispatch but has no Sgr_obs.Cancel.check in its body; an @MS deadline cannot pre-empt it (add a checkpoint, or annotate why the loop is bounded)
  4 findings
  [1]
