(* Tests for the serving subsystem: LRU, fingerprints, the request
   protocol, the engine, and the batch determinism guarantee. *)

open Helpers
module IF = Sgr_io.Instance_file
module W = Sgr_workloads.Workloads
module Lru = Sgr_serve.Lru
module Fp = Sgr_serve.Fingerprint
module Cache = Sgr_serve.Cache
module P = Sgr_serve.Protocol
module Engine = Sgr_serve.Engine

(* ---------------- LRU ---------------- *)

let test_lru_capacity_one () =
  let l = Lru.create ~capacity:1 in
  Alcotest.(check (option (pair string string))) "no eviction on first add" None
    (Lru.add l "a" "1");
  Alcotest.(check (option string)) "find a" (Some "1") (Lru.find l "a");
  (match Lru.add l "b" "2" with
  | Some ("a", "1") -> ()
  | _ -> Alcotest.fail "adding b to a full capacity-1 cache must evict a");
  Alcotest.(check (option string)) "a is gone" None (Lru.find l "a");
  Alcotest.(check (option string)) "b is in" (Some "2") (Lru.find l "b");
  Alcotest.(check int) "length stays 1" 1 (Lru.length l)

let test_lru_eviction_order () =
  let l = Lru.create ~capacity:3 in
  List.iter (fun k -> ignore (Lru.add l k k)) [ "a"; "b"; "c" ];
  (* Touch [a]: now [b] is the least recently used. *)
  ignore (Lru.find l "a");
  (match Lru.add l "d" "d" with
  | Some ("b", _) -> ()
  | Some (k, _) -> Alcotest.failf "evicted %S, expected the untouched b" k
  | None -> Alcotest.fail "full cache must evict");
  Alcotest.(check (list string)) "MRU -> LRU order" [ "d"; "a"; "c" ] (Lru.keys l)

let test_lru_hit_after_evict_misses () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.add l "a" "1");
  ignore (Lru.add l "b" "2");
  ignore (Lru.add l "c" "3");
  Alcotest.(check (option string)) "evicted key misses" None (Lru.find l "a");
  (* Re-adding after the miss works and evicts the current LRU. *)
  (match Lru.add l "a" "1'" with
  | Some ("b", _) -> ()
  | _ -> Alcotest.fail "re-add must evict b");
  Alcotest.(check (option string)) "re-added key hits" (Some "1'") (Lru.find l "a")

let test_lru_replace_same_key () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.add l "a" "1");
  Alcotest.(check (option (pair string string))) "same-key add replaces, no evict" None
    (Lru.add l "a" "2");
  Alcotest.(check (option string)) "new value visible" (Some "2") (Lru.find l "a");
  Alcotest.(check int) "no duplicate node" 1 (Lru.length l)

let test_lru_bad_capacity () =
  match Lru.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected"

(* ---------------- fingerprints ---------------- *)

let test_fingerprint_stability () =
  let text = IF.print_links W.pigou in
  let parse t =
    match IF.parse t with Ok i -> i | Error m -> Alcotest.failf "parse failed: %s" m
  in
  let fp1 = Fp.of_instance (parse text) and fp2 = Fp.of_instance (parse text) in
  Alcotest.(check string) "same bytes, same fingerprint" fp1 fp2;
  (* A perturbed latency coefficient must change the key. *)
  let perturbed =
    IF.Links
      (Sgr_links.Links.make
         [| Sgr_latency.Latency.linear (1.0 +. 1e-12); Sgr_latency.Latency.constant 1.0 |]
         ~demand:1.0)
  in
  check_true "perturbed coefficient changes the fingerprint"
    (not (String.equal fp1 (Fp.of_instance perturbed)))

let test_fingerprint_fnv_vector () =
  (* Standard FNV-1a test vectors pin the constants. *)
  Alcotest.(check string) "fnv empty" "cbf29ce484222325" (Fp.hex (Fp.fnv1a64 ""));
  Alcotest.(check string) "fnv a" "af63dc4c8601ec8c" (Fp.hex (Fp.fnv1a64 "a"))

(* ---------------- protocol ---------------- *)

let test_protocol_parse () =
  (match P.parse_line "  " with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank is skipped");
  (match P.parse_line "# comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment is skipped");
  (match P.parse_line "solve p nash" with
  | Ok (Some { deadline_ms = None; request = P.Solve { id = "p"; obj = `Nash } }) -> ()
  | _ -> Alcotest.fail "solve nash");
  (match P.parse_line "@250 optop p" with
  | Ok (Some { deadline_ms = Some 250; request = P.Optop { id = "p" } }) -> ()
  | _ -> Alcotest.fail "deadline prefix");
  (match P.parse_line "sweep p 0 1 5" with
  | Ok (Some { request = P.Sweep_range { lo = 0.0; hi = 1.0; samples = 5; _ }; _ }) -> ()
  | _ -> Alcotest.fail "sweep range");
  (match P.parse_line "metrics" with
  | Ok (Some { deadline_ms = None; request = P.Metrics }) -> ()
  | _ -> Alcotest.fail "metrics verb");
  (match P.memo_key P.Metrics with
  | None -> ()
  | Some _ -> Alcotest.fail "metrics must not be memoized");
  (match P.parse_line "induced p 1.5" with
  | Error _ -> ()
  | _ -> Alcotest.fail "alpha out of range is rejected");
  (match P.parse_line "@x ping" with
  | Error _ -> ()
  | _ -> Alcotest.fail "bad deadline is rejected")

let test_memo_keys () =
  let some = function Some k -> k | None -> Alcotest.fail "expected a memo key" in
  let k1 = some (P.memo_key (P.Solve { id = "a"; obj = `Nash })) in
  let k2 = some (P.memo_key (P.Solve { id = "b"; obj = `Nash })) in
  Alcotest.(check string) "memo keys are id-independent" k1 k2;
  check_true "objective distinguishes keys"
    (not (String.equal k1 (some (P.memo_key (P.Solve { id = "a"; obj = `Opt })))));
  (match P.memo_key P.Stats with
  | None -> ()
  | Some _ -> Alcotest.fail "stats must not be memoized")

(* ---------------- engine ---------------- *)

let with_instance_file inst f =
  let path = Filename.temp_file "sgr_serve_test" ".inst" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            (match inst with IF.Links t -> IF.print_links t | IF.Network n -> IF.print_network n));
      f path)

let test_engine_pigou () =
  with_instance_file (IF.Links W.pigou) @@ fun path ->
  let cache = Cache.create ~capacity:4 in
  let run raw =
    match Engine.execute_raw cache raw with
    | Some r -> r
    | None -> Alcotest.failf "no reply for %S" raw
  in
  check_true "load ok"
    (String.length (run (Printf.sprintf "load p %s" path)) > 0);
  Alcotest.(check string) "nash cost" "ok solve id=p obj=nash cost=1" (run "solve p nash");
  Alcotest.(check string) "opt cost" "ok solve id=p obj=opt cost=0.75" (run "solve p opt");
  Alcotest.(check string) "optop"
    "ok optop id=p beta=0.5 nash_cost=1 opt_cost=0.75 induced_cost=0.75" (run "optop p");
  Alcotest.(check string) "unknown id"
    "error parse: unknown instance id \"zzz\" (load it first)" (run "solve zzz nash");
  Alcotest.(check string) "wrong kind" "error solve: mop needs a network instance" (run "mop p");
  Alcotest.(check string) "parse error"
    "error parse: unknown or malformed request \"frobnicate\"" (run "frobnicate the network")

let test_engine_memo_and_reload () =
  with_instance_file (IF.Links W.pigou) @@ fun path ->
  (* Capacity 1 and two distinct instances: the second load evicts the
     first, and a later request transparently reloads from the bound
     path. *)
  with_instance_file (IF.Links W.fig456) @@ fun path2 ->
  let cache = Cache.create ~capacity:1 in
  let run raw = Option.get (Engine.execute_raw cache raw) in
  ignore (run (Printf.sprintf "load p %s" path));
  let first = run "solve p nash" in
  ignore (run (Printf.sprintf "load q %s" path2));
  let stats = Cache.stats cache in
  Alcotest.(check int) "eviction happened" 1 stats.Cache.evictions;
  Alcotest.(check string) "reload after evict gives the same reply" first (run "solve p nash")

let test_engine_timeout () =
  with_instance_file (IF.Links W.fig456) @@ fun path ->
  let cache = Cache.create ~capacity:4 in
  let run raw = Option.get (Engine.execute_raw cache raw) in
  ignore (run (Printf.sprintf "load p %s" path));
  (* A fresh (unmemoized) solve takes well over 0ms; the deadline is
     enforced post hoc and classified as a timeout. *)
  let reply = run "@0 optop p" in
  check_true "deadline 0 on a fresh solve times out"
    (String.length reply >= 13 && String.equal (String.sub reply 0 13) "error timeout");
  (* The overrunning result was still memoized: a retry without the
     deadline is a memo hit with the normal reply. *)
  let before = (Cache.stats cache).Cache.memo_hits in
  let retry = run "optop p" in
  Alcotest.(check int) "retry is a memo hit" (before + 1) (Cache.stats cache).Cache.memo_hits;
  check_true "retry succeeds" (String.length retry >= 2 && String.equal (String.sub retry 0 2) "ok")

(* ---------------- batch determinism ---------------- *)

(* Random request files over two instances must produce byte-identical
   replies at any job count. [stats] lines are the documented exception
   (operational counters depend on scheduling) and deadline-tagged
   requests are timing-dependent by design, so the generator emits
   neither. *)
let prop_batch_jobs_deterministic =
  Helpers.qcheck ~count:25 "sgr batch replies are byte-identical at --jobs 1 and 4"
    QCheck.(pair small_nat (list_of_size Gen.(1 -- 20) small_nat))
    (fun (seed, picks) ->
      with_instance_file (IF.Links W.pigou) @@ fun pigou ->
      with_instance_file (IF.Links W.fig456) @@ fun fig ->
      let rng = Sgr_numerics.Prng.create (seed + 1) in
      let id () = if Sgr_numerics.Prng.bool rng then "a" else "b" in
      let request pick =
        match pick mod 8 with
        | 0 -> Printf.sprintf "solve %s nash" (id ())
        | 1 -> Printf.sprintf "solve %s opt" (id ())
        | 2 -> Printf.sprintf "optop %s" (id ())
        | 3 -> Printf.sprintf "induced %s 0.25" (id ())
        | 4 -> Printf.sprintf "sweep %s 0.5" (id ())
        | 5 -> "ping"
        | 6 -> Printf.sprintf "solve %s garbage" (id ())
        | _ -> Printf.sprintf "mop %s" (id ())
      in
      let lines =
        (Printf.sprintf "load a %s" pigou :: Printf.sprintf "load b %s" fig
        :: List.map request picks)
        @ [ "quit"; "solve a nash" ]
      in
      let run jobs = Engine.run_batch ~jobs (Cache.create ~capacity:4) lines in
      let r1 = run 1 and r4 = run 4 in
      List.length r1 = List.length r4 && List.for_all2 String.equal r1 r4)

(* ---------------- metrics determinism ---------------- *)

(* Everything before the latency-section marker: the part of the
   exposition covered by the determinism guarantee. *)
let counts_section body =
  let is_marker l =
    String.length l >= 25 && String.equal (String.sub l 0 25) "# --- latency histograms:"
  in
  let rec take acc = function
    | [] -> List.rev acc
    | l :: _ when is_marker l -> List.rev acc
    | l :: rest -> take (l :: acc) rest
  in
  String.concat "\n" (take [] (String.split_on_char '\n' body))

(* The counts-and-gauges section of the metrics exposition is a pure
   function of the request history: byte-identical at --jobs 1 and 4
   as long as the working set fits the cache (eviction recency is
   scheduling-dependent, so capacity >= distinct instances here). The
   latency section below the marker is exempt by contract. *)
let prop_metrics_counts_deterministic =
  Helpers.qcheck ~count:15 "metrics counts section is byte-identical at --jobs 1 and 4"
    QCheck.(pair small_nat (list_of_size Gen.(1 -- 15) small_nat))
    (fun (seed, picks) ->
      with_instance_file (IF.Links W.pigou) @@ fun pigou ->
      with_instance_file (IF.Links W.fig456) @@ fun fig ->
      let rng = Sgr_numerics.Prng.create (seed + 1) in
      let id () = if Sgr_numerics.Prng.bool rng then "a" else "b" in
      let request pick =
        match pick mod 6 with
        | 0 -> Printf.sprintf "solve %s nash" (id ())
        | 1 -> Printf.sprintf "solve %s opt" (id ())
        | 2 -> Printf.sprintf "optop %s" (id ())
        | 3 -> Printf.sprintf "induced %s 0.25" (id ())
        | 4 -> "ping"
        | _ -> Printf.sprintf "solve %s garbage" (id ())
      in
      let lines =
        Printf.sprintf "load a %s" pigou :: Printf.sprintf "load b %s" fig
        :: List.map request picks
      in
      let run jobs =
        Sgr_obs.Obs.reset_counters ();
        Sgr_obs.Hist.reset ();
        let cache = Cache.create ~capacity:4 in
        ignore (Engine.run_batch ~jobs cache lines);
        counts_section (Sgr_serve.Metrics.render cache)
      in
      let s1 = run 1 and s4 = run 4 in
      String.equal s1 s4)

let test_metrics_reply_framing () =
  with_instance_file (IF.Links W.pigou) @@ fun path ->
  (* Counters and histograms are process-global: start from zero so the
     rendered counts are this test's own. *)
  Sgr_obs.Obs.reset_counters ();
  Sgr_obs.Hist.reset ();
  let cache = Cache.create ~capacity:4 in
  let run raw = Option.get (Engine.execute_raw cache raw) in
  ignore (run (Printf.sprintf "load p %s" path));
  ignore (run "solve p nash");
  let reply = run "metrics" in
  match String.split_on_char '\n' reply with
  | header :: body ->
      let expect = Printf.sprintf "ok metrics lines=%d" (List.length body) in
      Alcotest.(check string) "header counts the body lines" expect header;
      check_true "body is non-empty" (body <> []);
      check_true "request counter present"
        (List.exists
           (fun l -> String.equal l "sgr_requests_total{verb=\"solve\"} 1")
           body)
  | [] -> Alcotest.fail "empty metrics reply"

let suite =
  [
    case "lru: capacity one" test_lru_capacity_one;
    case "lru: eviction order respects touches" test_lru_eviction_order;
    case "lru: hit after evict misses, re-add works" test_lru_hit_after_evict_misses;
    case "lru: same-key add replaces" test_lru_replace_same_key;
    case "lru: zero capacity rejected" test_lru_bad_capacity;
    case "fingerprint: stable across parses, sensitive to coefficients"
      test_fingerprint_stability;
    case "fingerprint: FNV-1a test vectors" test_fingerprint_fnv_vector;
    case "protocol: parse" test_protocol_parse;
    case "protocol: memo keys" test_memo_keys;
    case "engine: pigou golden replies" test_engine_pigou;
    case "engine: memoization and reload-after-evict" test_engine_memo_and_reload;
    case "engine: post-hoc deadline" test_engine_timeout;
    prop_batch_jobs_deterministic;
    case "metrics: reply framing" test_metrics_reply_framing;
    prop_metrics_counts_deterministic;
  ]
