(* Tests for the serving subsystem: LRU, fingerprints, the request
   protocol, the engine, and the batch determinism guarantee. *)

open Helpers
module IF = Sgr_io.Instance_file
module W = Sgr_workloads.Workloads
module Lru = Sgr_serve.Lru
module Fp = Sgr_serve.Fingerprint
module Cache = Sgr_serve.Cache
module P = Sgr_serve.Protocol
module Engine = Sgr_serve.Engine

(* ---------------- LRU ---------------- *)

let test_lru_capacity_one () =
  let l = Lru.create ~capacity:1 in
  Alcotest.(check (option (pair string string))) "no eviction on first add" None
    (Lru.add l "a" "1");
  Alcotest.(check (option string)) "find a" (Some "1") (Lru.find l "a");
  (match Lru.add l "b" "2" with
  | Some ("a", "1") -> ()
  | _ -> Alcotest.fail "adding b to a full capacity-1 cache must evict a");
  Alcotest.(check (option string)) "a is gone" None (Lru.find l "a");
  Alcotest.(check (option string)) "b is in" (Some "2") (Lru.find l "b");
  Alcotest.(check int) "length stays 1" 1 (Lru.length l)

let test_lru_eviction_order () =
  let l = Lru.create ~capacity:3 in
  List.iter (fun k -> ignore (Lru.add l k k)) [ "a"; "b"; "c" ];
  (* Touch [a]: now [b] is the least recently used. *)
  ignore (Lru.find l "a");
  (match Lru.add l "d" "d" with
  | Some ("b", _) -> ()
  | Some (k, _) -> Alcotest.failf "evicted %S, expected the untouched b" k
  | None -> Alcotest.fail "full cache must evict");
  Alcotest.(check (list string)) "MRU -> LRU order" [ "d"; "a"; "c" ] (Lru.keys l)

let test_lru_hit_after_evict_misses () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.add l "a" "1");
  ignore (Lru.add l "b" "2");
  ignore (Lru.add l "c" "3");
  Alcotest.(check (option string)) "evicted key misses" None (Lru.find l "a");
  (* Re-adding after the miss works and evicts the current LRU. *)
  (match Lru.add l "a" "1'" with
  | Some ("b", _) -> ()
  | _ -> Alcotest.fail "re-add must evict b");
  Alcotest.(check (option string)) "re-added key hits" (Some "1'") (Lru.find l "a")

let test_lru_replace_same_key () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.add l "a" "1");
  Alcotest.(check (option (pair string string))) "same-key add replaces, no evict" None
    (Lru.add l "a" "2");
  Alcotest.(check (option string)) "new value visible" (Some "2") (Lru.find l "a");
  Alcotest.(check int) "no duplicate node" 1 (Lru.length l)

let test_lru_bad_capacity () =
  match Lru.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected"

(* ---------------- fingerprints ---------------- *)

let test_fingerprint_stability () =
  let text = IF.print_links W.pigou in
  let parse t =
    match IF.parse t with Ok i -> i | Error m -> Alcotest.failf "parse failed: %s" m
  in
  let fp1 = Fp.of_instance (parse text) and fp2 = Fp.of_instance (parse text) in
  Alcotest.(check string) "same bytes, same fingerprint" fp1 fp2;
  (* A perturbed latency coefficient must change the key. *)
  let perturbed =
    IF.Links
      (Sgr_links.Links.make
         [| Sgr_latency.Latency.linear (1.0 +. 1e-12); Sgr_latency.Latency.constant 1.0 |]
         ~demand:1.0)
  in
  check_true "perturbed coefficient changes the fingerprint"
    (not (String.equal fp1 (Fp.of_instance perturbed)))

let test_fingerprint_fnv_vector () =
  (* Standard FNV-1a test vectors pin the constants. *)
  Alcotest.(check string) "fnv empty" "cbf29ce484222325" (Fp.hex (Fp.fnv1a64 ""));
  Alcotest.(check string) "fnv a" "af63dc4c8601ec8c" (Fp.hex (Fp.fnv1a64 "a"))

(* ---------------- protocol ---------------- *)

let test_protocol_parse () =
  (match P.parse_line "  " with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank is skipped");
  (match P.parse_line "# comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment is skipped");
  (match P.parse_line "solve p nash" with
  | Ok (Some { deadline_ms = None; request = P.Solve { id = "p"; obj = `Nash } }) -> ()
  | _ -> Alcotest.fail "solve nash");
  (match P.parse_line "@250 optop p" with
  | Ok (Some { deadline_ms = Some 250; request = P.Optop { id = "p" } }) -> ()
  | _ -> Alcotest.fail "deadline prefix");
  (match P.parse_line "sweep p 0 1 5" with
  | Ok (Some { request = P.Sweep_range { lo = 0.0; hi = 1.0; samples = 5; _ }; _ }) -> ()
  | _ -> Alcotest.fail "sweep range");
  (match P.parse_line "metrics" with
  | Ok (Some { deadline_ms = None; request = P.Metrics }) -> ()
  | _ -> Alcotest.fail "metrics verb");
  (match P.memo_key P.Metrics with
  | None -> ()
  | Some _ -> Alcotest.fail "metrics must not be memoized");
  (match P.parse_line "induced p 1.5" with
  | Error _ -> ()
  | _ -> Alcotest.fail "alpha out of range is rejected");
  (match P.parse_line "@x ping" with
  | Error _ -> ()
  | _ -> Alcotest.fail "bad deadline is rejected")

let test_memo_keys () =
  let some = function Some k -> k | None -> Alcotest.fail "expected a memo key" in
  let k1 = some (P.memo_key (P.Solve { id = "a"; obj = `Nash })) in
  let k2 = some (P.memo_key (P.Solve { id = "b"; obj = `Nash })) in
  Alcotest.(check string) "memo keys are id-independent" k1 k2;
  check_true "objective distinguishes keys"
    (not (String.equal k1 (some (P.memo_key (P.Solve { id = "a"; obj = `Opt })))));
  (match P.memo_key P.Stats with
  | None -> ()
  | Some _ -> Alcotest.fail "stats must not be memoized")

let test_memo_keys_links_engine () =
  (* A closed-form and a bisection solve must never alias in a warm
     memo: the ambient links engine is part of every key. *)
  let module Links = Sgr_links.Links in
  let saved = Links.default_engine () in
  Fun.protect
    ~finally:(fun () -> Links.set_default_engine saved)
    (fun () ->
      let key_under engine =
        Links.set_default_engine engine;
        match P.memo_key (P.Solve { id = "a"; obj = `Nash }) with
        | Some k -> k
        | None -> Alcotest.fail "expected a memo key"
      in
      let auto = key_under `Auto in
      let cf = key_under `Closed_form in
      let bi = key_under `Bisection in
      check_true "auto and closed-form keys differ" (not (String.equal auto cf));
      check_true "auto and bisection keys differ" (not (String.equal auto bi));
      check_true "closed-form and bisection keys differ" (not (String.equal cf bi));
      Alcotest.(check string) "key is stable under the same engine" cf (key_under `Closed_form))

(* ---------------- engine ---------------- *)

let with_instance_file inst f =
  let path = Filename.temp_file "sgr_serve_test" ".inst" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            (match inst with IF.Links t -> IF.print_links t | IF.Network n -> IF.print_network n));
      f path)

let test_engine_pigou () =
  with_instance_file (IF.Links W.pigou) @@ fun path ->
  let cache = Cache.create ~capacity:4 in
  let run raw =
    match Engine.execute_raw cache raw with
    | Some r -> r
    | None -> Alcotest.failf "no reply for %S" raw
  in
  check_true "load ok"
    (String.length (run (Printf.sprintf "load p %s" path)) > 0);
  Alcotest.(check string) "nash cost" "ok solve id=p obj=nash cost=1" (run "solve p nash");
  Alcotest.(check string) "opt cost" "ok solve id=p obj=opt cost=0.75" (run "solve p opt");
  Alcotest.(check string) "optop"
    "ok optop id=p beta=0.5 nash_cost=1 opt_cost=0.75 induced_cost=0.75" (run "optop p");
  Alcotest.(check string) "unknown id"
    "error parse: unknown instance id \"zzz\" (load it first)" (run "solve zzz nash");
  Alcotest.(check string) "wrong kind" "error solve: mop needs a network instance" (run "mop p");
  Alcotest.(check string) "parse error"
    "error parse: unknown or malformed request \"frobnicate\"" (run "frobnicate the network")

let test_engine_memo_and_reload () =
  with_instance_file (IF.Links W.pigou) @@ fun path ->
  (* Capacity 1 and two distinct instances: the second load evicts the
     first, and a later request transparently reloads from the bound
     path. *)
  with_instance_file (IF.Links W.fig456) @@ fun path2 ->
  let cache = Cache.create ~capacity:1 in
  let run raw = Option.get (Engine.execute_raw cache raw) in
  ignore (run (Printf.sprintf "load p %s" path));
  let first = run "solve p nash" in
  ignore (run (Printf.sprintf "load q %s" path2));
  let stats = Cache.stats cache in
  Alcotest.(check int) "eviction happened" 1 stats.Cache.evictions;
  Alcotest.(check string) "reload after evict gives the same reply" first (run "solve p nash")

let contains s sub =
  let n = String.length s and ml = String.length sub in
  let rec find i = i + ml <= n && (String.equal (String.sub s i ml) sub || find (i + 1)) in
  find 0

let starts_with s prefix =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let test_engine_timeout () =
  (* Pre-emptive deadline: a deadline the request cannot meet aborts the
     solve mid-compute through the solver checkpoints, and the
     cancelled result is NOT memoized — the retry recomputes cold. *)
  let rng = Sgr_numerics.Prng.create 42 in
  (* Big enough that the cold solve takes tens of milliseconds — the
     1ms pre-emption below must land well under it. *)
  let net = W.grid_network rng ~rows:12 ~cols:12 () in
  with_instance_file (IF.Network net) @@ fun path ->
  let cache = Cache.create ~capacity:4 in
  let run raw = Option.get (Engine.execute_raw cache raw) in
  ignore (run (Printf.sprintf "load g %s" path));
  let t0 = Sgr_obs.Obs.now () in
  let reply = run "@1 mop g" in
  let cancelled_s = Sgr_obs.Obs.now () -. t0 in
  check_true "deadline 1ms on a cold mop times out" (starts_with reply "error timeout");
  check_true "reply says nothing was memoized" (contains reply "no result memoized");
  (* The cancelled compute left no memo entry: the retry is a miss that
     recomputes, and only the third run hits. *)
  let misses_before = (Cache.stats cache).Cache.memo_misses in
  let t1 = Sgr_obs.Obs.now () in
  let retry = run "mop g" in
  let cold_s = Sgr_obs.Obs.now () -. t1 in
  check_true "retry succeeds" (starts_with retry "ok ");
  Alcotest.(check int) "retry is a memo miss (nothing was stored)" (misses_before + 1)
    (Cache.stats cache).Cache.memo_misses;
  let hits_before = (Cache.stats cache).Cache.memo_hits in
  ignore (run "mop g");
  Alcotest.(check int) "third run hits the memo" (hits_before + 1)
    (Cache.stats cache).Cache.memo_hits;
  check_true
    (Printf.sprintf "pre-empted in %.1fms, well under the %.1fms cold solve" (1e3 *. cancelled_s)
       (1e3 *. cold_s))
    (cancelled_s < cold_s /. 2.0)

(* ---------------- line reader and sessions ---------------- *)

module Lineio = Sgr_serve.Lineio
module Session = Sgr_serve.Session

let test_lineio_many_lines_one_read () =
  (* Many lines arriving in one chunk come back one by one, in order —
     and the scan offset makes the whole drain O(total bytes), which is
     what replaced the quadratic per-line Buffer.contents scan. *)
  let t = Lineio.create ~capacity:8 () in
  let n = 500 in
  Lineio.feed_string t
    (String.concat "" (List.init n (fun i -> Printf.sprintf "line %d\n" i)));
  let ok = ref 0 in
  for i = 0 to n - 1 do
    match Lineio.next t with
    | Some l when String.equal l (Printf.sprintf "line %d" i) -> incr ok
    | _ -> ()
  done;
  Alcotest.(check int) "every line back, in order" n !ok;
  check_true "drained" (Lineio.next t = None);
  Alcotest.(check int) "no pending bytes" 0 (Lineio.pending_length t)

let test_lineio_chunk_boundaries () =
  let t = Lineio.create ~capacity:4 () in
  let chunk = Bytes.of_string "alpha\nbe" in
  Lineio.feed t chunk 0 (Bytes.length chunk);
  Alcotest.(check (option string)) "complete line" (Some "alpha") (Lineio.next t);
  Alcotest.(check (option string)) "partial line held back" None (Lineio.next t);
  Lineio.feed_string t "ta\n\ngam";
  Alcotest.(check (option string)) "line split across chunks joins" (Some "beta") (Lineio.next t);
  Alcotest.(check (option string)) "empty line preserved" (Some "") (Lineio.next t);
  Alcotest.(check (option string)) "tail still partial" None (Lineio.next t);
  Alcotest.(check int) "pending tail length" 3 (Lineio.pending_length t);
  Alcotest.(check string) "take_rest returns the unterminated tail" "gam" (Lineio.take_rest t);
  Alcotest.(check int) "drained after take_rest" 0 (Lineio.pending_length t)

let feed_str s str =
  let b = Bytes.of_string str in
  Session.feed s b (Bytes.length b)

let test_session_pipelining () =
  let s = Session.create ~id:7 in
  feed_str s "ping\nstats\npi";
  Alcotest.(check (option string)) "first request" (Some "ping") (Session.next_request s);
  Alcotest.(check (option string)) "second request" (Some "stats") (Session.next_request s);
  Alcotest.(check (option string)) "partial line is not a request" None (Session.next_request s);
  feed_str s "ng\n";
  Alcotest.(check (option string)) "completed third" (Some "ping") (Session.next_request s);
  Session.push_reply s "ok pong";
  Session.push_reply s "ok stats";
  Alcotest.(check string) "replies queue in order" "ok pong\nok stats\n" (Session.pending_out s);
  Session.wrote s 3;
  Alcotest.(check string) "partial write consumes a prefix" "pong\nok stats\n"
    (Session.pending_out s);
  Session.wrote s 14;
  Alcotest.(check string) "drained" "" (Session.pending_out s);
  check_true "read side still open, not finished" (not (Session.finished s));
  Alcotest.(check int) "request lines counted" 3 (Session.lines_in s);
  Alcotest.(check int) "replies counted" 2 (Session.replies_out s)

let test_session_quit_eof_abort () =
  (* quit discards the rest of the pipeline. *)
  let s = Session.create ~id:1 in
  feed_str s "ping\nquit\nping\n";
  ignore (Session.next_request s);
  Session.push_reply s "ok pong";
  Alcotest.(check (option string)) "quit pops" (Some "quit") (Session.next_request s);
  Session.push_reply s "ok bye";
  Alcotest.(check (option string)) "requests after quit are discarded" None
    (Session.next_request s);
  check_true "not finished until the out queue drains" (not (Session.finished s));
  Session.wrote s (String.length (Session.pending_out s));
  check_true "finished once drained" (Session.finished s);
  Alcotest.(check string) "close reason" "quit" (Session.close_reason s);
  (* EOF: a trailing unterminated line still counts as a request. *)
  let s2 = Session.create ~id:2 in
  feed_str s2 "ping\npi";
  Session.feed_eof s2;
  Alcotest.(check (option string)) "line before eof" (Some "ping") (Session.next_request s2);
  Alcotest.(check (option string)) "trailing unterminated line served" (Some "pi")
    (Session.next_request s2);
  Session.push_reply s2 "ok pong";
  check_true "undrained eof session is not finished" (not (Session.finished s2));
  Session.wrote s2 (String.length (Session.pending_out s2));
  check_true "drained eof session finishes" (Session.finished s2);
  Alcotest.(check string) "close reason" "disconnected" (Session.close_reason s2);
  (* abort (write failure) drops everything at once. *)
  let s3 = Session.create ~id:3 in
  feed_str s3 "ping\nping\n";
  Session.push_reply s3 "ok pong";
  Session.abort s3;
  Alcotest.(check string) "no pending output after abort" "" (Session.pending_out s3);
  Alcotest.(check (option string)) "no requests after abort" None (Session.next_request s3);
  check_true "aborted session is finished" (Session.finished s3)

(* ---------------- concurrent server ---------------- *)

module Server = Sgr_serve.Server
module Client = Sgr_serve.Client

(* An in-process server on a scratch socket, stopped and joined on the
   way out. *)
let with_server ?(capacity = 8) f =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let dir = Filename.temp_dir "sgr_serve_test" "" in
  let socket = Filename.concat dir "s.sock" in
  let cache = Cache.create ~capacity in
  let server = Server.create ~socket_path:socket ~cache ~log:(fun _ -> ()) in
  let th = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop server;
      Thread.join th;
      (try Sys.remove socket with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let rec wait n =
    if Sys.file_exists socket then ()
    else if n = 0 then Alcotest.fail "server did not come up"
    else begin
      Thread.delay 0.01;
      wait (n - 1)
    end
  in
  wait 500;
  f socket

let test_server_concurrent_clients () =
  with_instance_file (IF.Links W.pigou) @@ fun pigou ->
  with_instance_file (IF.Links W.fig456) @@ fun fig ->
  let stream1 =
    [ Printf.sprintf "load a %s" pigou; "solve a nash"; "optop a"; "induced a 0.25" ]
  in
  let stream2 = [ Printf.sprintf "load b %s" fig; "solve b nash"; "solve b opt"; "sweep b 0.5" ] in
  (* Two clients connected at once, their solves interleaved request by
     request in one server process. *)
  let inter1, inter2 =
    with_server @@ fun socket ->
    let c1 = Client.connect socket and c2 = Client.connect socket in
    Fun.protect
      ~finally:(fun () ->
        Client.close c1;
        Client.close c2)
    @@ fun () ->
    let r1 = ref [] and r2 = ref [] in
    List.iter2
      (fun a b ->
        (match Client.rpc c1 a with Some r -> r1 := r :: !r1 | None -> ());
        match Client.rpc c2 b with Some r -> r2 := r :: !r2 | None -> ())
      stream1 stream2;
    (List.rev !r1, List.rev !r2)
  in
  (* The same streams played back to back on a fresh server. Replies
     are a pure function of (instance, request), so the interleaved run
     must be byte-identical to the sequential one. *)
  let seq1, seq2 =
    with_server @@ fun socket ->
    let c = Client.connect socket in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let play stream = List.filter_map (Client.rpc c) stream in
    let s1 = play stream1 in
    let s2 = play stream2 in
    (s1, s2)
  in
  Alcotest.(check (list string)) "client 1 replies byte-identical to sequential" seq1 inter1;
  Alcotest.(check (list string)) "client 2 replies byte-identical to sequential" seq2 inter2

let test_server_pipelined_sessions () =
  with_instance_file (IF.Links W.pigou) @@ fun pigou ->
  with_instance_file (IF.Links W.fig456) @@ fun fig ->
  with_server @@ fun socket ->
  let c1 = Client.connect socket and c2 = Client.connect socket in
  Fun.protect
    ~finally:(fun () ->
      Client.close c1;
      Client.close c2)
  @@ fun () ->
  (* Both clients push their whole pipeline before reading anything:
     replies still come back complete and in request order per
     session. *)
  let s1 = [ Printf.sprintf "load a %s" pigou; "solve a nash"; "ping" ] in
  let s2 = [ Printf.sprintf "load b %s" fig; "optop b"; "ping" ] in
  List.iter (fun r -> ignore (Client.send c1 r)) s1;
  List.iter (fun r -> ignore (Client.send c2 r)) s2;
  let r1 = List.map (fun _ -> Client.recv c1) s1 in
  let r2 = List.map (fun _ -> Client.recv c2) s2 in
  (match r1 with
  | [ load; solve; pong ] ->
      check_true "c1 load first" (starts_with load "ok load id=a");
      Alcotest.(check string) "c1 solve second" "ok solve id=a obj=nash cost=1" solve;
      Alcotest.(check string) "c1 ping last" "ok pong" pong
  | _ -> Alcotest.failf "client 1 got %d replies, expected 3" (List.length r1));
  match r2 with
  | [ load; optop; pong ] ->
      check_true "c2 load first" (starts_with load "ok load id=b");
      check_true "c2 optop second" (starts_with optop "ok optop id=b");
      Alcotest.(check string) "c2 ping last" "ok pong" pong
  | _ -> Alcotest.failf "client 2 got %d replies, expected 3" (List.length r2)

let test_server_busy () =
  with_server @@ fun socket ->
  let s2 =
    Server.create ~socket_path:socket ~cache:(Cache.create ~capacity:2) ~log:(fun _ -> ())
  in
  match Server.run s2 with
  | () -> Alcotest.fail "a second server must refuse a live socket"
  | exception Server.Busy p -> Alcotest.(check string) "busy reports the path" socket p

(* ---------------- batch determinism ---------------- *)

(* Random request files over two instances must produce byte-identical
   replies at any job count. [stats] lines are the documented exception
   (operational counters depend on scheduling) and deadline-tagged
   requests are timing-dependent by design, so the generator emits
   neither. *)
let prop_batch_jobs_deterministic =
  Helpers.qcheck ~count:25 "sgr batch replies are byte-identical at --jobs 1 and 4"
    QCheck.(pair small_nat (list_of_size Gen.(1 -- 20) small_nat))
    (fun (seed, picks) ->
      with_instance_file (IF.Links W.pigou) @@ fun pigou ->
      with_instance_file (IF.Links W.fig456) @@ fun fig ->
      let rng = Sgr_numerics.Prng.create (seed + 1) in
      let id () = if Sgr_numerics.Prng.bool rng then "a" else "b" in
      let request pick =
        match pick mod 8 with
        | 0 -> Printf.sprintf "solve %s nash" (id ())
        | 1 -> Printf.sprintf "solve %s opt" (id ())
        | 2 -> Printf.sprintf "optop %s" (id ())
        | 3 -> Printf.sprintf "induced %s 0.25" (id ())
        | 4 -> Printf.sprintf "sweep %s 0.5" (id ())
        | 5 -> "ping"
        | 6 -> Printf.sprintf "solve %s garbage" (id ())
        | _ -> Printf.sprintf "mop %s" (id ())
      in
      let lines =
        (Printf.sprintf "load a %s" pigou :: Printf.sprintf "load b %s" fig
        :: List.map request picks)
        @ [ "quit"; "solve a nash" ]
      in
      let run jobs = Engine.run_batch ~jobs (Cache.create ~capacity:4) lines in
      let r1 = run 1 and r4 = run 4 in
      List.length r1 = List.length r4 && List.for_all2 String.equal r1 r4)

(* ---------------- metrics determinism ---------------- *)

(* Everything before the latency-section marker: the part of the
   exposition covered by the determinism guarantee. *)
let counts_section body =
  let is_marker l =
    String.length l >= 25 && String.equal (String.sub l 0 25) "# --- latency histograms:"
  in
  let rec take acc = function
    | [] -> List.rev acc
    | l :: _ when is_marker l -> List.rev acc
    | l :: rest -> take (l :: acc) rest
  in
  String.concat "\n" (take [] (String.split_on_char '\n' body))

(* The counts-and-gauges section of the metrics exposition is a pure
   function of the request history: byte-identical at --jobs 1 and 4
   as long as the working set fits the cache (eviction recency is
   scheduling-dependent, so capacity >= distinct instances here). The
   latency section below the marker is exempt by contract. *)
let prop_metrics_counts_deterministic =
  Helpers.qcheck ~count:15 "metrics counts section is byte-identical at --jobs 1 and 4"
    QCheck.(pair small_nat (list_of_size Gen.(1 -- 15) small_nat))
    (fun (seed, picks) ->
      with_instance_file (IF.Links W.pigou) @@ fun pigou ->
      with_instance_file (IF.Links W.fig456) @@ fun fig ->
      let rng = Sgr_numerics.Prng.create (seed + 1) in
      let id () = if Sgr_numerics.Prng.bool rng then "a" else "b" in
      let request pick =
        match pick mod 6 with
        | 0 -> Printf.sprintf "solve %s nash" (id ())
        | 1 -> Printf.sprintf "solve %s opt" (id ())
        | 2 -> Printf.sprintf "optop %s" (id ())
        | 3 -> Printf.sprintf "induced %s 0.25" (id ())
        | 4 -> "ping"
        | _ -> Printf.sprintf "solve %s garbage" (id ())
      in
      let lines =
        Printf.sprintf "load a %s" pigou :: Printf.sprintf "load b %s" fig
        :: List.map request picks
      in
      let run jobs =
        Sgr_obs.Obs.reset_counters ();
        Sgr_obs.Hist.reset ();
        let cache = Cache.create ~capacity:4 in
        ignore (Engine.run_batch ~jobs cache lines);
        counts_section (Sgr_serve.Metrics.render cache)
      in
      let s1 = run 1 and s4 = run 4 in
      String.equal s1 s4)

let test_metrics_reply_framing () =
  with_instance_file (IF.Links W.pigou) @@ fun path ->
  (* Counters and histograms are process-global: start from zero so the
     rendered counts are this test's own. *)
  Sgr_obs.Obs.reset_counters ();
  Sgr_obs.Hist.reset ();
  let cache = Cache.create ~capacity:4 in
  let run raw = Option.get (Engine.execute_raw cache raw) in
  ignore (run (Printf.sprintf "load p %s" path));
  ignore (run "solve p nash");
  let reply = run "metrics" in
  match String.split_on_char '\n' reply with
  | header :: body ->
      let expect = Printf.sprintf "ok metrics lines=%d" (List.length body) in
      Alcotest.(check string) "header counts the body lines" expect header;
      check_true "body is non-empty" (body <> []);
      check_true "request counter present"
        (List.exists
           (fun l -> String.equal l "sgr_requests_total{verb=\"solve\"} 1")
           body)
  | [] -> Alcotest.fail "empty metrics reply"

let suite =
  [
    case "lru: capacity one" test_lru_capacity_one;
    case "lru: eviction order respects touches" test_lru_eviction_order;
    case "lru: hit after evict misses, re-add works" test_lru_hit_after_evict_misses;
    case "lru: same-key add replaces" test_lru_replace_same_key;
    case "lru: zero capacity rejected" test_lru_bad_capacity;
    case "fingerprint: stable across parses, sensitive to coefficients"
      test_fingerprint_stability;
    case "fingerprint: FNV-1a test vectors" test_fingerprint_fnv_vector;
    case "protocol: parse" test_protocol_parse;
    case "protocol: memo keys" test_memo_keys;
    case "protocol: memo keys embed the links engine" test_memo_keys_links_engine;
    case "engine: pigou golden replies" test_engine_pigou;
    case "engine: memoization and reload-after-evict" test_engine_memo_and_reload;
    case "engine: pre-emptive deadline cancellation" test_engine_timeout;
    case "lineio: many lines from one read" test_lineio_many_lines_one_read;
    case "lineio: chunk boundaries and take_rest" test_lineio_chunk_boundaries;
    case "session: pipelining and partial writes" test_session_pipelining;
    case "session: quit, eof, abort" test_session_quit_eof_abort;
    case "server: two concurrent clients match sequential" test_server_concurrent_clients;
    case "server: pipelined sessions reply in order" test_server_pipelined_sessions;
    case "server: refuses a live socket" test_server_busy;
    prop_batch_jobs_deterministic;
    case "metrics: reply framing" test_metrics_reply_framing;
    prop_metrics_counts_deterministic;
  ]
