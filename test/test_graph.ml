(* Tests for the graph substrate: construction, Dijkstra, shortest-path
   subgraphs, path enumeration, max-flow and flow decomposition. *)

open Helpers
module G = Sgr_graph
module Prng = Sgr_numerics.Prng

(* The Braess diamond used throughout: s=0, v=1, w=2, t=3. *)
let diamond () = G.Digraph.of_edges ~num_nodes:4 [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ]

let test_build () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 4 (G.Digraph.num_nodes g);
  Alcotest.(check int) "edges" 5 (G.Digraph.num_edges g);
  let e = G.Digraph.edge g 2 in
  Alcotest.(check int) "src" 1 e.src;
  Alcotest.(check int) "dst" 2 e.dst;
  Alcotest.(check int) "out-degree of v" 2 (List.length (G.Digraph.out_edges g 1));
  Alcotest.(check int) "in-degree of t" 2 (List.length (G.Digraph.in_edges g 3))

let test_build_rejects_self_loop () =
  match G.Digraph.of_edges ~num_nodes:2 [ (0, 0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self loop must be rejected"

let test_build_rejects_out_of_range () =
  match G.Digraph.of_edges ~num_nodes:2 [ (0, 5) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range endpoint must be rejected"

let test_parallel_edges_allowed () =
  let g = G.Digraph.of_edges ~num_nodes:2 [ (0, 1); (0, 1) ] in
  Alcotest.(check int) "two parallel edges" 2 (G.Digraph.num_edges g)

let test_heap_sorts () =
  let h = G.Heap.create () in
  let rng = Prng.create 5 in
  let input = Array.init 500 (fun _ -> Prng.float rng) in
  Array.iteri (fun i x -> G.Heap.insert h x i) input;
  Alcotest.(check int) "size" 500 (G.Heap.size h);
  let prev = ref Float.neg_infinity in
  let rec drain n =
    match G.Heap.pop_min h with
    | None -> Alcotest.(check int) "drained all" 500 n
    | Some (p, _) ->
        check_true "nondecreasing" (p >= !prev);
        prev := p;
        drain (n + 1)
  in
  drain 0

let test_heap_clear_reuse () =
  let h = G.Heap.create ~hint:8 () in
  let rng = Prng.create 7 in
  let fill_and_drain () =
    let input = Array.init 100 (fun _ -> Prng.float rng) in
    Array.iteri (fun i x -> G.Heap.insert h x i) input;
    Alcotest.(check int) "size after fill" 100 (G.Heap.size h);
    let prev = ref Float.neg_infinity in
    let n = ref 0 in
    let continue = ref true in
    while !continue do
      match G.Heap.pop_min h with
      | None -> continue := false
      | Some (p, _) ->
          check_true "nondecreasing" (p >= !prev);
          prev := p;
          incr n
    done;
    Alcotest.(check int) "drained all" 100 !n
  in
  fill_and_drain ();
  (* Refill after clear must behave like a fresh heap. *)
  G.Heap.insert h 1.0 1;
  G.Heap.insert h 2.0 2;
  G.Heap.clear h;
  Alcotest.(check int) "cleared" 0 (G.Heap.size h);
  check_true "empty after clear" (G.Heap.is_empty h);
  Alcotest.(check bool) "pop on cleared" true (G.Heap.pop_min h = None);
  Alcotest.(check int) "pop sentinel on cleared" (-1) (G.Heap.pop h);
  fill_and_drain ()

let test_csr_matches_adjacency_lists () =
  let g = diamond () in
  let off = G.Digraph.out_offsets g and ids = G.Digraph.out_edge_ids g in
  Alcotest.(check int) "offset array length" (G.Digraph.num_nodes g + 1) (Array.length off);
  Alcotest.(check int) "flat ids cover all edges" (G.Digraph.num_edges g) (Array.length ids);
  for v = 0 to G.Digraph.num_nodes g - 1 do
    let from_list = List.map (fun (e : G.Digraph.edge) -> e.id) (G.Digraph.out_edges g v) in
    let from_csr = ref [] in
    G.Digraph.iter_out g v (fun e _ -> from_csr := e :: !from_csr);
    Alcotest.(check (list int)) "out edges agree" from_list (List.rev !from_csr);
    let from_list = List.map (fun (e : G.Digraph.edge) -> e.id) (G.Digraph.in_edges g v) in
    let from_csr = ref [] in
    G.Digraph.iter_in g v (fun e _ -> from_csr := e :: !from_csr);
    Alcotest.(check (list int)) "in edges agree" from_list (List.rev !from_csr)
  done;
  Array.iter
    (fun (e : G.Digraph.edge) ->
      Alcotest.(check int) "edge_sources" e.src (G.Digraph.edge_sources g).(e.id);
      Alcotest.(check int) "edge_targets" e.dst (G.Digraph.edge_targets g).(e.id))
    (G.Digraph.edges g)

let test_dijkstra_diamond () =
  let g = diamond () in
  let weights = [| 1.0; 4.0; 0.5; 4.0; 1.0 |] in
  let r = G.Dijkstra.run g ~weights ~source:0 in
  approx "dist t" 2.5 r.dist.(3);
  approx "dist v" 1.0 r.dist.(1);
  approx "dist w" 1.5 r.dist.(2);
  match G.Dijkstra.shortest_path g ~weights ~src:0 ~dst:3 with
  | Some [ 0; 2; 4 ] -> ()
  | Some p -> Alcotest.failf "wrong path: %s" (String.concat "," (List.map string_of_int p))
  | None -> Alcotest.fail "path must exist"

let test_dijkstra_unreachable () =
  let g = G.Digraph.of_edges ~num_nodes:3 [ (0, 1) ] in
  let r = G.Dijkstra.run g ~weights:[| 1.0 |] ~source:0 in
  check_true "unreachable is infinite" (r.dist.(2) = Float.infinity);
  Alcotest.(check (option (list int))) "no path" None
    (G.Dijkstra.shortest_path g ~weights:[| 1.0 |] ~src:0 ~dst:2)

let test_dijkstra_reverse () =
  let g = diamond () in
  let weights = [| 1.0; 4.0; 0.5; 4.0; 1.0 |] in
  let r = G.Dijkstra.run_reverse g ~weights ~sink:3 in
  approx "dist from s to t" 2.5 r.dist.(0);
  approx "dist from v" 1.5 r.dist.(1);
  approx "dist from w" 1.0 r.dist.(2)

let test_dijkstra_validate_negative () =
  let g = diamond () in
  let bad = [| 1.0; 4.0; -0.5; 4.0; 1.0 |] in
  (match G.Dijkstra.run ~validate:true g ~weights:bad ~source:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative weight must be rejected when validating");
  (match G.Dijkstra.run ~validate:true g ~weights:[| 1.0; Float.nan; 0.5; 4.0; 1.0 |] ~source:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN weight must be rejected when validating");
  (* The check is opt-in: well-formed weights pass with it on. *)
  let r = G.Dijkstra.run ~validate:true g ~weights:[| 1.0; 4.0; 0.5; 4.0; 1.0 |] ~source:0 in
  approx "validated run still correct" 2.5 r.dist.(3)

let test_dijkstra_workspace_reuse () =
  let ws = G.Dijkstra.workspace () in
  let g = diamond () in
  let weights = [| 1.0; 4.0; 0.5; 4.0; 1.0 |] in
  (* Repeated runs in one workspace: the second must not see state from
     the first (different source, then different weights). *)
  let r1 = G.Dijkstra.run ~workspace:ws g ~weights ~source:0 in
  approx "first run" 2.5 r1.dist.(3);
  let r2 = G.Dijkstra.run ~workspace:ws g ~weights ~source:1 in
  approx "second run, new source" 1.5 r2.dist.(3);
  check_true "source unreachable from v" (r2.dist.(0) = Float.infinity);
  let r3 = G.Dijkstra.run ~workspace:ws g ~weights:[| 1.0; 1.0; 1.0; 1.0; 1.0 |] ~source:0 in
  approx "third run, new weights" 2.0 r3.dist.(3);
  (* The same workspace adapts to a graph of a different size. *)
  let g2 = G.Digraph.of_edges ~num_nodes:2 [ (0, 1) ] in
  let r4 = G.Dijkstra.run ~workspace:ws g2 ~weights:[| 7.0 |] ~source:0 in
  approx "smaller graph" 7.0 r4.dist.(1);
  let r5 = G.Dijkstra.run ~workspace:ws g ~weights ~source:0 in
  approx "back to the diamond" 2.5 r5.dist.(3);
  match G.Dijkstra.shortest_path ~workspace:ws g ~weights ~src:0 ~dst:3 with
  | Some [ 0; 2; 4 ] -> ()
  | _ -> Alcotest.fail "workspace shortest_path must match the fresh run"

let test_shortest_subgraph () =
  let g = diamond () in
  let weights = [| 1.0; 4.0; 0.5; 4.0; 1.0 |] in
  let on_sp = G.Dijkstra.shortest_edge_subgraph g ~weights ~src:0 ~dst:3 in
  Alcotest.(check (array bool)) "only s→v→w→t" [| true; false; true; false; true |] on_sp

let test_shortest_subgraph_ties () =
  (* Two equal-cost parallel routes: all edges are on a shortest path. *)
  let g = G.Digraph.of_edges ~num_nodes:4 [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let on_sp = G.Dijkstra.shortest_edge_subgraph g ~weights:[| 1.0; 1.0; 1.0; 1.0 |] ~src:0 ~dst:3 in
  Alcotest.(check (array bool)) "all tied" [| true; true; true; true |] on_sp

let test_enumerate_paths () =
  let g = diamond () in
  let paths = G.Paths.enumerate g ~src:0 ~dst:3 in
  Alcotest.(check int) "three simple paths" 3 (List.length paths);
  List.iter (fun p -> check_true "valid" (G.Paths.is_valid g ~src:0 ~dst:3 p)) paths

let test_enumerate_limit () =
  let g = diamond () in
  match G.Paths.enumerate ~limit:2 g ~src:0 ~dst:3 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "limit must trigger"

let test_path_accessors () =
  let g = diamond () in
  let p = [ 0; 2; 4 ] in
  Alcotest.(check int) "source" 0 (G.Paths.source g p);
  Alcotest.(check int) "target" 3 (G.Paths.target g p);
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2; 3 ] (G.Paths.nodes g p);
  approx "cost" 2.5 (G.Paths.cost p [| 1.0; 4.0; 0.5; 4.0; 1.0 |]);
  check_true "disconnected edge list invalid" (not (G.Paths.is_valid g ~src:0 ~dst:3 [ 0; 4 ]))

let test_maxflow_diamond () =
  let g = diamond () in
  (* Capacities force the classic augment-through-the-middle pattern. *)
  let capacities = [| 1.0; 1.0; 1.0; 1.0; 1.0 |] in
  let r = G.Maxflow.solve g ~capacities ~src:0 ~dst:3 in
  approx "value" 2.0 r.value;
  check_true "feasible" (G.Flow.is_feasible g ~flow:r.flow ~src:0 ~dst:3 ~demand:r.value)

let test_maxflow_needs_back_edges () =
  (* A graph where a greedy first path must be partially undone. *)
  let g = G.Digraph.of_edges ~num_nodes:4 [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ] in
  let capacities = [| 1.0; 1.0; 1.0; 1.0; 1.0 |] in
  let r = G.Maxflow.solve g ~capacities ~src:0 ~dst:3 in
  approx "value" 2.0 r.value

let test_maxflow_bottleneck () =
  let g = G.Digraph.of_edges ~num_nodes:3 [ (0, 1); (1, 2) ] in
  let r = G.Maxflow.solve g ~capacities:[| 5.0; 2.5 |] ~src:0 ~dst:2 in
  approx "value" 2.5 r.value

let test_flow_decompose_roundtrip () =
  let g = diamond () in
  let paths = [ ([ 0; 2; 4 ], 0.46); ([ 0; 3 ], 0.27); ([ 1; 4 ], 0.27) ] in
  let flow = G.Flow.of_paths g paths in
  approx "edge s→v" 0.73 flow.(0);
  let decomposed = G.Flow.decompose g ~flow ~src:0 ~dst:3 in
  let rebuilt = G.Flow.of_paths g decomposed in
  approx_array "decompose ∘ of_paths round trip" flow rebuilt;
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 decomposed in
  approx "total demand preserved" 1.0 total

let test_flow_feasibility () =
  let g = diamond () in
  let flow = G.Flow.of_paths g [ ([ 0; 2; 4 ], 1.0) ] in
  check_true "feasible" (G.Flow.is_feasible g ~flow ~src:0 ~dst:3 ~demand:1.0);
  check_true "wrong demand" (not (G.Flow.is_feasible g ~flow ~src:0 ~dst:3 ~demand:2.0));
  flow.(0) <- flow.(0) +. 0.5;
  check_true "broken conservation" (not (G.Flow.is_feasible g ~flow ~src:0 ~dst:3 ~demand:1.0))

let random_layered_graph rng =
  let layers = 2 + Prng.int rng 3 and width = 1 + Prng.int rng 3 in
  let node l j = 1 + (l * width) + j in
  let sink = 1 + (layers * width) in
  let b = G.Digraph.builder ~num_nodes:(sink + 1) in
  for j = 0 to width - 1 do
    ignore (G.Digraph.add_edge b ~src:0 ~dst:(node 0 j));
    ignore (G.Digraph.add_edge b ~src:(node (layers - 1) j) ~dst:sink)
  done;
  for l = 0 to layers - 2 do
    for j = 0 to width - 1 do
      for j' = 0 to width - 1 do
        ignore (G.Digraph.add_edge b ~src:(node l j) ~dst:(node (l + 1) j'))
      done
    done
  done;
  (G.Digraph.freeze b, sink)

(* An independent shortest-path oracle: Bellman-Ford over edges. *)
let bellman_ford g ~weights ~source =
  let n = G.Digraph.num_nodes g in
  let dist = Array.make n Float.infinity in
  dist.(source) <- 0.0;
  for _ = 1 to n - 1 do
    Array.iter
      (fun (e : G.Digraph.edge) ->
        if dist.(e.src) +. weights.(e.id) < dist.(e.dst) then
          dist.(e.dst) <- dist.(e.src) +. weights.(e.id))
      (G.Digraph.edges g)
  done;
  dist

(* The pre-CSR list-based Dijkstra, kept here verbatim as a test-only
   oracle: iterate [out_edges] lists with lazy heap deletion. *)
let list_dijkstra g ~weights ~source =
  let n = G.Digraph.num_nodes g in
  let dist = Array.make n Float.infinity in
  let pred = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = G.Heap.create () in
  dist.(source) <- 0.0;
  G.Heap.insert heap 0.0 source;
  let continue = ref true in
  while !continue do
    match G.Heap.pop_min heap with
    | None -> continue := false
    | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          List.iter
            (fun (e : G.Digraph.edge) ->
              let nd = d +. weights.(e.id) in
              if nd < dist.(e.dst) then begin
                dist.(e.dst) <- nd;
                pred.(e.dst) <- e.id;
                G.Heap.insert heap nd e.dst
              end)
            (G.Digraph.out_edges g u)
        end
  done;
  (dist, pred)

let prop_dijkstra_csr_vs_list_oracle =
  qcheck ~count:100 "CSR dijkstra matches the list-based kernel edge-for-edge" QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (seed + 500) in
      let g, _ = random_layered_graph rng in
      let weights = Array.init (G.Digraph.num_edges g) (fun _ -> Prng.uniform rng ~lo:0.0 ~hi:5.0) in
      let csr = G.Dijkstra.run g ~weights ~source:0 in
      let dist, pred = list_dijkstra g ~weights ~source:0 in
      (* Same relaxation order (CSR groups preserve insertion order), so
         the runs agree bitwise — distances and chosen predecessor edges. *)
      csr.dist = dist && csr.pred = pred)

let prop_dijkstra_vs_bellman_ford =
  qcheck ~count:50 "dijkstra agrees with bellman-ford" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 300) in
      let g, _ = random_layered_graph rng in
      let weights = Array.init (G.Digraph.num_edges g) (fun _ -> Prng.uniform rng ~lo:0.0 ~hi:5.0) in
      let d1 = (G.Dijkstra.run g ~weights ~source:0).dist in
      let d2 = bellman_ford g ~weights ~source:0 in
      let ok = ref true in
      Array.iteri
        (fun v dv ->
          if dv < Float.infinity || d2.(v) < Float.infinity then
            if Float.abs (dv -. d2.(v)) > 1e-9 then ok := false)
        d1;
      !ok)

let prop_maxflow_has_min_cut_certificate =
  (* Max-flow/min-cut: the set of nodes reachable in the residual graph
     defines a cut whose capacity equals the flow value. *)
  qcheck ~count:50 "maxflow saturates a cut of equal capacity" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 400) in
      let g, sink = random_layered_graph rng in
      let capacities =
        Array.init (G.Digraph.num_edges g) (fun _ -> Prng.uniform rng ~lo:0.1 ~hi:2.0)
      in
      let r = G.Maxflow.solve g ~capacities ~src:0 ~dst:sink in
      (* Residual reachability from the source. *)
      let n = G.Digraph.num_nodes g in
      let seen = Array.make n false in
      let q = Queue.create () in
      seen.(0) <- true;
      Queue.push 0 q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun (e : G.Digraph.edge) ->
            if (not seen.(e.dst)) && capacities.(e.id) -. r.flow.(e.id) > 1e-9 then begin
              seen.(e.dst) <- true;
              Queue.push e.dst q
            end)
          (G.Digraph.out_edges g u);
        List.iter
          (fun (e : G.Digraph.edge) ->
            if (not seen.(e.src)) && r.flow.(e.id) > 1e-9 then begin
              seen.(e.src) <- true;
              Queue.push e.src q
            end)
          (G.Digraph.in_edges g u)
      done;
      let cut_capacity =
        Array.fold_left
          (fun acc (e : G.Digraph.edge) ->
            if seen.(e.src) && not seen.(e.dst) then acc +. capacities.(e.id) else acc)
          0.0 (G.Digraph.edges g)
      in
      (not seen.(sink)) && Float.abs (cut_capacity -. r.value) <= 1e-6)

let prop_dijkstra_vs_enumeration =
  qcheck ~count:50 "dijkstra agrees with exhaustive path search" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 1) in
      let g, sink = random_layered_graph rng in
      let weights = Array.init (G.Digraph.num_edges g) (fun _ -> Prng.uniform rng ~lo:0.0 ~hi:5.0) in
      let d = (G.Dijkstra.run g ~weights ~source:0).dist.(sink) in
      let best =
        G.Paths.enumerate g ~src:0 ~dst:sink
        |> List.fold_left (fun acc p -> Float.min acc (G.Paths.cost p weights)) Float.infinity
      in
      Float.abs (d -. best) <= 1e-9)

let prop_maxflow_min_cut_saturation =
  qcheck ~count:50 "maxflow is feasible and saturates a cut bound" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 100) in
      let g, sink = random_layered_graph rng in
      let capacities =
        Array.init (G.Digraph.num_edges g) (fun _ -> Prng.uniform rng ~lo:0.1 ~hi:2.0)
      in
      let r = G.Maxflow.solve g ~capacities ~src:0 ~dst:sink in
      (* The flow is feasible and no edge overflows its capacity; the
         source's outgoing capacity is an upper bound. *)
      let cap_bound =
        List.fold_left
          (fun acc (e : G.Digraph.edge) -> acc +. capacities.(e.id))
          0.0 (G.Digraph.out_edges g 0)
      in
      G.Flow.is_feasible g ~flow:r.flow ~src:0 ~dst:sink ~demand:r.value
      && Array.for_all2 (fun f c -> f <= c +. 1e-9) r.flow capacities
      && r.value <= cap_bound +. 1e-9)

let prop_decompose_roundtrip =
  qcheck ~count:50 "random path flows decompose consistently" QCheck.small_nat (fun seed ->
      let rng = Prng.create (seed + 200) in
      let g, sink = random_layered_graph rng in
      let all_paths = G.Paths.enumerate g ~src:0 ~dst:sink in
      let flows = List.map (fun p -> (p, Prng.uniform rng ~lo:0.0 ~hi:1.0)) all_paths in
      let flow = G.Flow.of_paths g flows in
      let rebuilt = G.Flow.of_paths g (G.Flow.decompose g ~flow ~src:0 ~dst:sink) in
      Sgr_numerics.Vec.linf_dist flow rebuilt <= 1e-7)

let suite =
  [
    case "digraph: build + adjacency" test_build;
    case "digraph: rejects self loops" test_build_rejects_self_loop;
    case "digraph: rejects bad endpoints" test_build_rejects_out_of_range;
    case "digraph: parallel edges" test_parallel_edges_allowed;
    case "heap: sorts random input" test_heap_sorts;
    case "heap: clear keeps capacity, reuse is clean" test_heap_clear_reuse;
    case "digraph: CSR mirrors adjacency lists" test_csr_matches_adjacency_lists;
    case "dijkstra: diamond" test_dijkstra_diamond;
    case "dijkstra: ~validate rejects negative weights" test_dijkstra_validate_negative;
    case "dijkstra: workspace reuse" test_dijkstra_workspace_reuse;
    case "dijkstra: unreachable" test_dijkstra_unreachable;
    case "dijkstra: reverse distances" test_dijkstra_reverse;
    case "dijkstra: shortest-edge subgraph" test_shortest_subgraph;
    case "dijkstra: subgraph with ties" test_shortest_subgraph_ties;
    case "paths: enumerate diamond" test_enumerate_paths;
    case "paths: enumeration limit" test_enumerate_limit;
    case "paths: accessors" test_path_accessors;
    case "maxflow: diamond" test_maxflow_diamond;
    case "maxflow: residual arcs" test_maxflow_needs_back_edges;
    case "maxflow: bottleneck" test_maxflow_bottleneck;
    case "flow: decompose round trip" test_flow_decompose_roundtrip;
    case "flow: feasibility checks" test_flow_feasibility;
    prop_dijkstra_vs_enumeration;
    prop_dijkstra_csr_vs_list_oracle;
    prop_dijkstra_vs_bellman_ford;
    prop_maxflow_min_cut_saturation;
    prop_maxflow_has_min_cut_certificate;
    prop_decompose_roundtrip;
  ]
