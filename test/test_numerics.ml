(* Unit and property tests for the numerics substrate. *)

open Helpers
module Bisection = Sgr_numerics.Bisection
module Minimize = Sgr_numerics.Minimize
module Integrate = Sgr_numerics.Integrate
module Vec = Sgr_numerics.Vec
module Prng = Sgr_numerics.Prng
module Tol = Sgr_numerics.Tolerance

let test_bisection_root () =
  let x = Bisection.root ~f:(fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0 () in
  approx ~eps:1e-9 "sqrt 2" (Float.sqrt 2.0) x

let test_bisection_saturates_low () =
  let x = Bisection.root ~f:(fun x -> x +. 1.0) ~lo:0.0 ~hi:5.0 () in
  approx "f > 0 everywhere returns lo" 0.0 x

let test_bisection_saturates_high () =
  let x = Bisection.root ~f:(fun x -> x -. 10.0) ~lo:0.0 ~hi:5.0 () in
  approx "f < 0 everywhere returns hi" 5.0 x

let test_bisection_flat_plateau () =
  (* Nondecreasing with a flat stretch through zero: any point of the
     plateau is a valid answer. *)
  let f x = if x < 1.0 then x -. 1.0 else if x > 2.0 then x -. 2.0 else 0.0 in
  let x = Bisection.root ~f ~lo:0.0 ~hi:3.0 () in
  check_true "plateau member" (0.999 <= x && x <= 2.001)

let test_bisection_max_iter_raises () =
  (* A bracket of width 4 cannot reach tol = 0 in 10 halvings; the old
     code silently returned the midpoint as if it had converged. *)
  match Bisection.root ~tol:0.0 ~max_iter:10 ~f:(fun x -> x -. Float.sqrt 2.0) ~lo:0.0 ~hi:4.0 ()
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on max_iter exhaustion"

let test_bisection_default_budget_converges () =
  (* 200 halvings shrink any realistic bracket below solver_eps, so the
     non-convergence failure never fires with default parameters. *)
  let x = Bisection.root ~f:(fun x -> x -. 1e-7) ~lo:0.0 ~hi:1e9 () in
  approx ~eps:1e-6 "root of huge bracket" 1e-7 x

let test_bisection_bracketed_root () =
  let x = Bisection.root_bracketed ~f:(fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0 () in
  approx ~eps:1e-9 "sqrt 2" (Float.sqrt 2.0) x

let test_bisection_bracketed_rejects () =
  (* Unlike [root], the strict variant treats a missing sign change as a
     caller bug instead of silently clamping to an endpoint. *)
  (match Bisection.root_bracketed ~f:(fun x -> x +. 1.0) ~lo:0.0 ~hi:5.0 () with
  | exception Invalid_argument _ -> ()
  | x -> Alcotest.failf "expected Invalid_argument for f > 0 everywhere, got %g" x);
  match Bisection.root_bracketed ~f:(fun x -> x -. 10.0) ~lo:0.0 ~hi:5.0 () with
  | exception Invalid_argument _ -> ()
  | x -> Alcotest.failf "expected Invalid_argument for f < 0 everywhere, got %g" x

let test_expand_upper () =
  let hi = Bisection.expand_upper ~f:(fun x -> x *. x) ~target:1e6 () in
  check_true "reaches target" (hi *. hi >= 1e6)

let test_expand_upper_fails () =
  match Bisection.expand_upper ~f:(fun _ -> 1.0) ~target:2.0 () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure for a bounded function"

let test_solve_increasing () =
  let x = Bisection.solve_increasing ~f:(fun x -> Float.exp x) ~y:5.0 ~lo:0.0 ~hi:10.0 () in
  approx ~eps:1e-9 "log 5" (Float.log 5.0) x

let test_golden_parabola () =
  let x, v = Minimize.golden ~f:(fun x -> ((x -. 3.0) ** 2.0) +. 1.0) ~lo:(-10.0) ~hi:10.0 () in
  approx ~eps:1e-5 "argmin" 3.0 x;
  approx ~eps:1e-9 "min value" 1.0 v

let test_golden_boundary () =
  let x, _ = Minimize.golden ~f:(fun x -> x) ~lo:2.0 ~hi:5.0 () in
  approx ~eps:1e-5 "monotone f minimized at lo" 2.0 x

let test_line_search_convex () =
  let x = Minimize.line_search_convex ~df:(fun x -> (2.0 *. x) -. 4.0) ~lo:0.0 ~hi:10.0 () in
  approx ~eps:1e-8 "quadratic argmin" 2.0 x

let test_simpson_cubic_exact () =
  (* Simpson is exact on cubics. *)
  let v = Integrate.adaptive_simpson ~f:(fun x -> (x ** 3.0) -. x +. 2.0) ~lo:0.0 ~hi:2.0 () in
  approx ~eps:1e-12 "cubic integral" 6.0 v

let test_simpson_exp () =
  let v = Integrate.adaptive_simpson ~f:Float.exp ~lo:0.0 ~hi:1.0 () in
  approx ~eps:1e-10 "exp integral" (Float.exp 1.0 -. 1.0) v

let test_simpson_empty () =
  approx "zero-width interval" 0.0 (Integrate.adaptive_simpson ~f:Float.exp ~lo:1.0 ~hi:1.0 ())

let test_kahan_sum () =
  (* 1 + 1e-16 added 1e5 times loses everything under naive summation. *)
  let v = Array.make 100_001 1e-16 in
  v.(0) <- 1.0;
  approx ~eps:1e-12 "compensated sum" (1.0 +. 1e-11) (Vec.sum v)

let test_vec_basics () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  approx "dot" 32.0 (Vec.dot a b);
  approx_array "add" [| 5.0; 7.0; 9.0 |] (Vec.add a b);
  approx_array "sub" [| -3.0; -3.0; -3.0 |] (Vec.sub a b);
  approx_array "scale" [| 2.0; 4.0; 6.0 |] (Vec.scale 2.0 a);
  approx "linf" 3.0 (Vec.linf_dist a b);
  Alcotest.(check int) "argmax" 2 (Vec.argmax a);
  Alcotest.(check int) "argmin" 0 (Vec.argmin a);
  let y = Array.copy b in
  Vec.axpy 2.0 a y;
  approx_array "axpy" [| 6.0; 9.0; 12.0 |] y

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Prng.float a) (Prng.float b)
  done

let test_prng_range () =
  let g = Prng.create 11 in
  for _ = 1 to 1000 do
    let x = Prng.float g in
    check_true "in [0,1)" (0.0 <= x && x < 1.0);
    let k = Prng.int g 7 in
    check_true "int in range" (0 <= k && k < 7)
  done

let test_prng_split_independent () =
  let g = Prng.create 3 in
  let h = Prng.split g in
  let x = Prng.float g and y = Prng.float h in
  check_true "streams differ" (x <> y)

let test_tolerance () =
  check_true "approx" (Tol.approx 1.0 (1.0 +. 1e-9));
  check_true "not approx" (not (Tol.approx 1.0 1.1));
  check_true "approx relative at scale" (Tol.approx 1e12 (1e12 +. 1.0));
  approx "clamp" 2.0 (Tol.clamp ~lo:0.0 ~hi:2.0 5.0);
  approx "clamp_nonneg" 0.0 (Tol.clamp_nonneg (-1e-15))

let prop_bisection_inverts_monotone =
  qcheck "bisection inverts random increasing cubics"
    QCheck.(triple (float_bound_exclusive 5.0) (float_bound_exclusive 5.0) pos_float)
    (fun (a, b, yraw) ->
      let a = Float.abs a +. 0.1 and b = Float.abs b in
      let y = Float.min 1e6 yraw in
      let f x = (a *. (x ** 3.0)) +. (b *. x) in
      let hi = Bisection.expand_upper ~f ~target:y () in
      let x = Bisection.solve_increasing ~f ~y ~lo:0.0 ~hi () in
      Float.abs (f x -. y) <= 1e-6 *. Float.max 1.0 y)

let prop_golden_beats_grid =
  qcheck "golden finds minimum of random shifted parabola"
    QCheck.(pair (float_bound_exclusive 10.0) (float_bound_exclusive 10.0))
    (fun (c, s) ->
      let f x = ((x -. c) ** 2.0) +. s in
      let x, _ = Minimize.golden ~f ~lo:(-20.0) ~hi:20.0 () in
      Float.abs (x -. c) <= 1e-4)

let suite =
  [
    case "bisection: root of x^2-2" test_bisection_root;
    case "bisection: saturates at lo" test_bisection_saturates_low;
    case "bisection: saturates at hi" test_bisection_saturates_high;
    case "bisection: flat plateau" test_bisection_flat_plateau;
    case "bisection: max_iter exhaustion raises" test_bisection_max_iter_raises;
    case "bisection: default budget converges" test_bisection_default_budget_converges;
    case "bisection: root_bracketed converges" test_bisection_bracketed_root;
    case "bisection: root_bracketed rejects unbracketed" test_bisection_bracketed_rejects;
    case "bisection: bracket expansion" test_expand_upper;
    case "bisection: expansion failure on bounded f" test_expand_upper_fails;
    case "bisection: solve_increasing" test_solve_increasing;
    case "golden: parabola" test_golden_parabola;
    case "golden: boundary minimum" test_golden_boundary;
    case "line search: convex quadratic" test_line_search_convex;
    case "simpson: exact on cubics" test_simpson_cubic_exact;
    case "simpson: exp" test_simpson_exp;
    case "simpson: empty interval" test_simpson_empty;
    case "vec: kahan summation" test_kahan_sum;
    case "vec: basics" test_vec_basics;
    case "prng: deterministic" test_prng_deterministic;
    case "prng: ranges" test_prng_range;
    case "prng: split independence" test_prng_split_independent;
    case "tolerance: comparisons" test_tolerance;
    prop_bisection_inverts_monotone;
    prop_golden_beats_grid;
  ]
