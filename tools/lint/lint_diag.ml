(* Findings and their reporting format.

   A finding renders as [file:line:col: [rule-id] message] — one line
   per finding, sorted, so cram tests can assert the exact output and
   editors can jump to the site. *)

type t = {
  file : string;
  line : int;
  col : int;
  cnum : int;  (* absolute start offset, for allow-region containment *)
  rule : string;
  msg : string;
}

let of_loc ~rule ~msg (loc : Location.t) =
  let p = loc.loc_start in
  {
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    cnum = p.pos_cnum;
    rule;
    msg;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let print d = Printf.printf "%s:%d:%d: [%s] %s\n" d.file d.line d.col d.rule d.msg
