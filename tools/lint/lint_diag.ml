(* Findings and their reporting format.

   A finding renders as [file:line:col: [rule-id] message] — one line
   per finding, sorted, so cram tests can assert the exact output and
   editors can jump to the site. *)

type t = {
  file : string;
  line : int;
  col : int;
  cnum : int;  (* absolute start offset, for allow-region containment *)
  rule : string;
  msg : string;
}

let of_loc ~rule ~msg (loc : Location.t) =
  let p = loc.loc_start in
  {
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    cnum = p.pos_cnum;
    rule;
    msg;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let print d = Printf.printf "%s:%d:%d: [%s] %s\n" d.file d.line d.col d.rule d.msg

(* --format json: one object per finding, newline-separated inside a
   top-level array, for the CI problem matcher and other tooling. The
   [allow] field is the id to put in a [@lint.allow "..."] to suppress
   the finding (diagnostics about the lint run itself — parse-error,
   bad-allow, cmt-error — are not suppressible, rendered as null). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unsuppressible = [ "parse-error"; "bad-allow"; "cmt-error" ]

let print_json_list ds =
  print_string "[";
  List.iteri
    (fun i d ->
      let allow =
        if List.mem d.rule unsuppressible then "null"
        else Printf.sprintf "\"%s\"" (json_escape d.rule)
      in
      Printf.printf "%s\n  {\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"msg\":\"%s\",\"allow\":%s}"
        (if i = 0 then "" else ",")
        (json_escape d.file) d.line d.col (json_escape d.rule) (json_escape d.msg) allow)
    ds;
  print_string (if ds = [] then "]\n" else "\n]\n")
