(* Typed-phase input: discovering and loading .cmt files.

   dune drops a .cmt next to every compiled module (under
   [.<lib>.objs/byte/]); the [@lint] alias depends on [@check] so they
   exist before analysis runs. A unit is keyed by its *source* path
   (the same path the Parsetree phase reports), so findings from both
   phases share one coordinate system and one [@lint.allow] region
   table. Generated wrapper modules ([foo.ml-gen]) are skipped: they
   only contain module aliases. *)

type unit_info = {
  src : string;  (* source path as compiled, e.g. lib/serve/engine.ml *)
  modname : string;  (* compilation unit name, e.g. Sgr_serve__Engine *)
  prefix : string list;  (* canonical module path, e.g. [Sgr_serve; Engine] *)
  str : Typedtree.structure;
}

(* dune mangles wrapped-library units as [Lib__Module]; both spellings
   reach us (the unit name on definitions, the wrapper path on
   references), so split the mangling back out to one canonical form. *)
let expand_unit name =
  let parts = ref [] and buf = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' && Buffer.length buf > 0 then begin
      parts := Buffer.contents buf :: !parts;
      Buffer.clear buf;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf name.[!i];
      incr i
    end
  done;
  if Buffer.length buf > 0 then parts := Buffer.contents buf :: !parts;
  List.rev_map String.capitalize_ascii !parts

let rec find_cmts acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if List.mem name [ ".git"; "_opam"; "node_modules" ] then acc
           else find_cmts acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* Load every unit under [roots]. Returns the units sorted by source
   path plus a [cmt-error] diagnostic per unreadable file (a stale or
   cross-compiler .cmt must not silently shrink the call graph). *)
let load roots : unit_info list * Lint_diag.t list =
  let files = List.fold_left find_cmts [] roots |> List.sort_uniq String.compare in
  let units = ref [] and diags = ref [] in
  List.iter
    (fun file ->
      match Cmt_format.read_cmt file with
      | exception _ ->
          diags :=
            { Lint_diag.file; line = 1; col = 0; cnum = 0; rule = "cmt-error";
              msg = "unreadable .cmt (stale build or compiler mismatch); rerun dune build @check" }
            :: !diags
      | cmt -> (
          match (cmt.cmt_sourcefile, cmt.cmt_annots) with
          | Some src, Cmt_format.Implementation str
            when Filename.check_suffix src ".ml" ->
              units :=
                { src; modname = cmt.cmt_modname; prefix = expand_unit cmt.cmt_modname; str }
                :: !units
          | _ -> ()))
    files;
  (* Two .cmt copies of one source (e.g. byte + native rules) must not
     double every finding: keep the first in path order. *)
  let seen = Hashtbl.create 64 in
  let units =
    List.sort (fun a b -> String.compare a.src b.src) !units
    |> List.filter (fun u ->
           if Hashtbl.mem seen u.src then false
           else begin
             Hashtbl.add seen u.src ();
             true
           end)
  in
  (units, !diags)
