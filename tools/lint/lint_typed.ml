(* Typed interprocedural rules over the Lint_callgraph.

   Three rules run here; each reports with the same diagnostic shape as
   the Parsetree phase and honours the same [@lint.allow] regions (the
   driver filters by source span, and passes [barrier] so an allow on a
   *definition* also stops taint from propagating out of it — the way
   [Cache.locked] vouches for its deliberately-blocking critical
   section).

   - no-blocking-in-pool (v2): fixed-point blocking taint. A node seeds
     if it directly references a blocking identifier; taint flows up the
     call graph; a [Pool.map]/[Pool.map_array] closure root or a
     [session.ml]/[lineio.ml] function that carries taint is reported
     with its witness call chain. Direct blocking inside a closure or a
     session module is still the Parsetree phase's job; this rule owns
     everything deeper than one hop.

   - lock-discipline: for record types declaring a [Mutex.t] alongside
     mutable state, an abstract lock-state walk flags field access not
     dominated by [Mutex.lock]/[Mutex.protect] (or a lock-wrapper such
     as [Cache.locked]); separately, non-atomic mutable globals
     reachable from pool closures are flagged at their definition.

   - cancel-coverage: every [while] loop, recursive cycle, and
     loop-driving iteration-HOF closure in solver code ([lib/core],
     [lib/network], [lib/links], [lib/numerics]) that is transitively
     reachable from [lib/serve] must syntactically contain a
     [Sgr_obs.Cancel.check] — transitive reachability of a checkpoint is
     not enough, so deleting any one checkpoint fires the rule. *)

module G = Lint_callgraph

let rule_blocking = "no-blocking-in-pool"
let rule_lock = "lock-discipline"
let rule_cancel = "cancel-coverage"

(* ---------------- blocking taint ---------------- *)

let blocking_unix =
  [ "sleep"; "sleepf"; "select"; "accept"; "connect"; "read"; "write";
    "single_write"; "recv"; "send"; "recvfrom"; "sendto"; "wait"; "waitpid";
    "system"; "open_process"; "open_process_in" ]

let blocking_bare =
  [ "input_line"; "really_input"; "really_input_string"; "input_value";
    "output_value"; "read_line"; "read_int"; "read_float" ]

let is_blocking name =
  List.exists (fun b -> G.has_suffix name ("Unix." ^ b)) blocking_unix
  || G.has_suffix name "Thread.delay"
  || G.has_suffix name "Thread.join"
  || G.has_suffix name "Mutex.lock"
  || G.has_suffix name "Mutex.protect"
  || G.has_suffix name "Condition.wait"
  || String.length name > 11 && String.sub name 0 11 = "In_channel."
  || String.length name > 12 && String.sub name 0 12 = "Out_channel."
  || List.mem name blocking_bare

let sorted_refs (n : G.node) =
  Hashtbl.fold (fun k loc acc -> (k, loc) :: acc) n.refs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let blocking_seed (n : G.node) =
  List.find_opt (fun (name, _) -> is_blocking name) (sorted_refs n)

let is_session_src src =
  List.mem (Filename.basename src) [ "session.ml"; "lineio.ml" ]

let blocking_findings g ~barrier =
  let witnesses =
    G.propagate g
      ~seed:(fun n -> blocking_seed n)
      ~barrier:(fun n -> barrier ~rule:rule_blocking n)
  in
  let out = ref [] in
  (* Pool closure roots that transitively block. *)
  List.iter
    (fun key ->
      match G.node g key with
      | None -> ()
      | Some n ->
          List.iter
            (fun (root, loc) ->
              match Hashtbl.find_opt witnesses root with
              | Some w when Hashtbl.mem g.G.nodes root ->
                  out :=
                    Lint_diag.of_loc ~rule:rule_blocking
                      ~msg:
                        (Printf.sprintf
                           "%s reaches blocking call %s (%s) from a Pool closure: a \
                            parked worker domain stalls every task queued behind it"
                           root w.what (G.describe_chain root w))
                      loc
                    :: !out
              | _ -> ())
            n.spawns)
    (G.nodes_sorted g);
  (* Session/lineio functions that block through a callee: the direct
     case is the Parsetree rule's. *)
  List.iter
    (fun key ->
      match G.node g key with
      | Some n when is_session_src n.src -> (
          match Hashtbl.find_opt witnesses key with
          | Some w when w.chain <> [] ->
              let hop = List.hd w.chain in
              let loc =
                match G.ref_loc n hop with Some l -> l | None -> n.def_loc
              in
              out :=
                Lint_diag.of_loc ~rule:rule_blocking
                  ~msg:
                    (Printf.sprintf
                       "%s blocks through %s (%s) inside a session state-machine \
                        module: the server's event loop must never block (keep \
                        Session/Lineio pure; all I/O belongs to Server)"
                       key hop (G.describe_chain key w))
                  loc
                :: !out
          | _ -> ())
      | _ -> ())
    (G.nodes_sorted g);
  !out

(* ---------------- lock discipline ---------------- *)

let base_mutable_heads =
  [ "ref"; "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t"; "Bytes.t"; "Dynarray.t" ]

let exempt_heads =
  [ "Mutex.t"; "Condition.t"; "Atomic.t"; "Semaphore.Counting.t";
    "Semaphore.Binary.t"; "Domain.DLS.key" ]

(* Project record types that are themselves mutable (directly, or via a
   field whose head type is mutable), by fixpoint. *)
let mutable_heads g =
  let heads = Hashtbl.create 32 in
  List.iter (fun h -> Hashtbl.replace heads h ()) base_mutable_heads;
  let field_mutable (f : G.field_info) =
    f.f_mutable
    || (match f.f_head with
       | Some h -> Hashtbl.mem heads h && not (List.mem h exempt_heads)
       | None -> false)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun key (ti : G.type_info) ->
        if (not (Hashtbl.mem heads key)) && List.exists field_mutable ti.t_fields
        then begin
          Hashtbl.replace heads key ();
          changed := true
        end)
      g.G.types
  done;
  heads

(* Guarded types: a Mutex.t field next to stateful fields. Returns
   type key -> set of field names that demand the lock. *)
let guarded_types g heads =
  let out = Hashtbl.create 8 in
  Hashtbl.iter
    (fun key (ti : G.type_info) ->
      let has_mutex =
        List.exists (fun f -> f.G.f_head = Some "Mutex.t") ti.t_fields
      in
      if has_mutex then begin
        let stateful =
          List.filter
            (fun (f : G.field_info) ->
              (match f.f_head with
              | Some h when List.mem h exempt_heads -> false
              | _ -> true)
              && (f.f_mutable
                 || match f.f_head with
                    | Some h -> Hashtbl.mem heads h
                    | None -> false))
            ti.t_fields
        in
        if stateful <> [] then
          Hashtbl.replace out key
            (List.map (fun f -> f.G.f_name) stateful)
      end)
    g.G.types;
  out

(* Lock-state walk over one unit. [locked] is threaded through
   sequencing and joined with (&&) across branches; [Mutex.lock] /
   [Mutex.protect] / calls to lock-wrapper nodes establish it; field
   patterns are a documented blind spot (the project uses dot access
   for guarded state). *)
let lock_walk (g : G.t) guarded (u : Lint_cmt.unit_info) =
  let canon =
    match Hashtbl.find_opt g.G.canons u.src with
    | Some c -> c
    | None -> fun _ -> None
  in
  let out = ref [] in
  let is_lock_wrapper name =
    match G.node g name with
    | Some n ->
        Hashtbl.fold
          (fun r _ acc ->
            acc || G.has_suffix r "Mutex.lock" || G.has_suffix r "Mutex.protect")
          n.refs false
    | None -> false
  in
  let guarded_field (ld : Types.label_description) =
    match Types.get_desc ld.lbl_res with
    | Types.Tconstr (p, _, _) -> (
        match canon p with
        | Some tkey -> (
            match Hashtbl.find_opt guarded tkey with
            | Some fields when List.mem ld.lbl_name fields -> Some tkey
            | _ -> None)
        | None -> None)
    | _ -> None
  in
  let check locked (e : Typedtree.expression) (ld : Types.label_description) ~write =
    if not locked then
      match guarded_field ld with
      | Some tkey ->
          out :=
            Lint_diag.of_loc ~rule:rule_lock
              ~msg:
                (Printf.sprintf
                   "%s of mutex-guarded field %s.%s without holding the mutex; \
                    take the lock (or a lock-wrapper) on every path, or annotate \
                    why this access is race-free"
                   (if write then "write" else "read")
                   tkey ld.lbl_name)
              e.exp_loc
            :: !out
      | None -> ()
  in
  let rec head_callee (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> canon p
    | Typedtree.Texp_apply (f, _) -> head_callee f
    | _ -> None
  in
  let is_arrow (e : Typedtree.expression) =
    match Types.get_desc e.exp_type with Types.Tarrow _ -> true | _ -> false
  in
  let default = Tast_iterator.default_iterator in
  let rec walk locked (e : Typedtree.expression) : bool =
    match e.exp_desc with
    | Typedtree.Texp_sequence (a, b) ->
        let s = walk locked a in
        walk s b
    | Typedtree.Texp_let (_, vbs, body) ->
        let s =
          List.fold_left
            (fun s (vb : Typedtree.value_binding) -> walk s vb.vb_expr)
            locked vbs
        in
        walk s body
    | Typedtree.Texp_ifthenelse (c, t, eo) ->
        let s = walk locked c in
        let st = walk s t in
        let se = match eo with Some el -> walk s el | None -> s in
        st && se
    | Typedtree.Texp_match (scrut, cases, _) ->
        let s = walk locked scrut in
        walk_cases s cases
    | Typedtree.Texp_try (body, cases) ->
        let s = walk locked body in
        let h = walk_cases locked cases in
        s && h
    | Typedtree.Texp_while (c, b) ->
        ignore (walk locked c);
        ignore (walk locked b);
        locked
    | Typedtree.Texp_for (_, _, lo, hi, _, b) ->
        ignore (walk locked lo);
        ignore (walk locked hi);
        ignore (walk locked b);
        locked
    | Typedtree.Texp_function _ ->
        (* A bare closure may run anywhere, later: analyze its body cold.
           Closure arguments to lock wrappers are handled at apply. *)
        walk_function false e;
        locked
    | Typedtree.Texp_field (r, _, ld) ->
        check locked e ld ~write:false;
        ignore (walk locked r);
        locked
    | Typedtree.Texp_setfield (r, _, ld, v) ->
        check locked e ld ~write:true;
        ignore (walk locked r);
        ignore (walk locked v);
        locked
    | Typedtree.Texp_apply (f, args) -> walk_apply locked f args
    | _ ->
        (* Generic constructs don't change lock state; walk children. *)
        let self =
          { default with expr = (fun _ child -> ignore (walk locked child)) }
        in
        default.expr self e;
        locked
  and walk_function locked (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_function { cases; _ } ->
        List.iter (fun (c : _ Typedtree.case) -> ignore (walk locked c.c_rhs)) cases
    | _ -> ignore (walk locked e)
  and walk_cases : 'k. bool -> 'k Typedtree.case list -> bool =
    fun locked cases ->
    List.fold_left
      (fun acc (c : _ Typedtree.case) ->
        Option.iter (fun gd -> ignore (walk locked gd)) c.c_guard;
        (* Evaluate before (&&): every case must be walked even once
           the join is already known to be unlocked. *)
        let case_exit = walk locked c.c_rhs in
        acc && case_exit)
      true cases
  and walk_apply locked f args =
    let callee = head_callee f in
    match callee with
    (* Pipeline operators: re-associate so the real callee is seen. *)
    | Some "@@" -> (
        match List.filter_map (function (_, Some a) -> Some a | _ -> None) args with
        | [ fn; arg ] -> walk_apply locked fn [ (Asttypes.Nolabel, Some arg) ]
        | other ->
            List.iter (fun a -> ignore (walk locked a)) other;
            locked)
    | Some "|>" -> (
        match List.filter_map (function (_, Some a) -> Some a | _ -> None) args with
        | [ arg; fn ] -> walk_apply locked fn [ (Asttypes.Nolabel, Some arg) ]
        | other ->
            List.iter (fun a -> ignore (walk locked a)) other;
            locked)
    | Some name when G.has_suffix name "Mutex.lock" ->
        List.iter (fun (_, a) -> Option.iter (fun a -> ignore (walk locked a)) a) args;
        true
    | Some name when G.has_suffix name "Mutex.unlock" ->
        List.iter (fun (_, a) -> Option.iter (fun a -> ignore (walk locked a)) a) args;
        false
    | Some name when G.has_suffix name "Mutex.protect" || is_lock_wrapper name ->
        (* The wrapper acquires the lock before running its function
           arguments; other arguments evaluate in the caller's state. *)
        List.iter
          (fun (_, a) ->
            Option.iter
              (fun (a : Typedtree.expression) ->
                if is_arrow a then walk_function true a else ignore (walk locked a))
              a)
          args;
        locked
    | _ ->
        ignore (walk locked f);
        List.iter (fun (_, a) -> Option.iter (fun a -> ignore (walk locked a)) a) args;
        locked
  in
  let rec walk_str (str : Typedtree.structure) =
    List.iter
      (fun (si : Typedtree.structure_item) ->
        match si.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) -> ignore (walk false vb.vb_expr))
              vbs
        | Typedtree.Tstr_module mb -> walk_mod mb
        | Typedtree.Tstr_recmodule mbs -> List.iter walk_mod mbs
        | _ -> ())
      str.str_items
  and walk_mod (mb : Typedtree.module_binding) =
    let rec unwrap (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Typedtree.Tmod_constraint (me, _, _, _) -> unwrap me
      | d -> d
    in
    match unwrap mb.mb_expr with
    | Typedtree.Tmod_structure str -> walk_str str
    | _ -> ()
  in
  walk_str u.str;
  !out

let lock_findings g =
  let heads = mutable_heads g in
  let guarded = guarded_types g heads in
  let walk_diags = List.concat_map (lock_walk g guarded) g.G.units in
  (* Part B: non-atomic mutable globals reachable from pool closures. *)
  let spawn_roots =
    List.concat_map
      (fun key ->
        match G.node g key with
        | Some n -> List.map fst n.spawns
        | None -> [])
      (G.nodes_sorted g)
    |> List.filter (Hashtbl.mem g.G.nodes)
  in
  let reach = G.reachable g spawn_roots in
  let globals =
    List.filter_map
      (fun key ->
        match G.node g key with
        | Some n when n.toplevel && (not n.is_fun) && Hashtbl.mem reach key -> (
            match n.ty_head with
            | Some h
              when Hashtbl.mem heads h && not (List.mem h exempt_heads)
                   (* A global whose type pairs its state with its own
                      [Mutex.t] is internally synchronized; part A polices
                      accesses to its guarded fields instead. *)
                   && not (Hashtbl.mem guarded h) ->
                Some
                  (Lint_diag.of_loc ~rule:rule_lock
                     ~msg:
                       (Printf.sprintf
                          "non-atomic mutable global %s (%s) is reachable from a \
                           Pool closure; worker domains race on it — use Atomic, \
                           a mutex, Domain.DLS, or annotate why access is \
                           single-domain"
                          key h)
                     n.def_loc)
            | _ -> None)
        | _ -> None)
      (G.nodes_sorted g)
  in
  walk_diags @ globals

(* ---------------- cancellation coverage ---------------- *)

let solver_src src =
  List.exists
    (fun p ->
      String.length src > String.length p && String.sub src 0 (String.length p) = p)
    [ "lib/core/"; "lib/network/"; "lib/links/"; "lib/numerics/"; "lib/assign/" ]

let serve_src src =
  String.length src > 10 && String.sub src 0 10 = "lib/serve/"

let cancel_findings g =
  let serve_roots =
    List.filter
      (fun key ->
        match G.node g key with Some n -> serve_src n.src | None -> false)
      (G.nodes_sorted g)
  in
  if serve_roots = [] then []
  else begin
    let reach = G.reachable g serve_roots in
    let cycles = G.cycle_members g in
    (* "Loop-bearing" for the HOF subrule means *unchecked* loops: work
       whose own loops (or cycle) already checkpoint is pre-emptible
       from the inside, so sweeping it needs no per-item check. *)
    let loopy =
      G.propagate g
        ~seed:(fun n ->
          let unchecked_loop =
            List.exists (fun (l : G.loop) -> not l.l_cancel) n.loops
          in
          let unchecked_cycle =
            match Hashtbl.find_opt cycles n.key with
            | Some comp ->
                not
                  (List.exists
                     (fun k ->
                       match G.node g k with
                       | Some m -> m.direct_cancel
                       | None -> false)
                     comp)
            | None -> false
          in
          if unchecked_loop || unchecked_cycle then Some ("loop", n.def_loc)
          else None)
        ~barrier:(fun _ -> false)
    in
    let out = ref [] in
    List.iter
      (fun key ->
        match G.node g key with
        | Some n when solver_src n.src && Hashtbl.mem reach key ->
            List.iter
              (fun (l : G.loop) ->
                if not l.l_cancel then
                  out :=
                    Lint_diag.of_loc ~rule:rule_cancel
                      ~msg:
                        (Printf.sprintf
                           "while loop in %s is reachable from serving dispatch but \
                            has no Sgr_obs.Cancel.check in its body; an @MS deadline \
                            cannot pre-empt it (add a checkpoint, or annotate why \
                            the loop is bounded)"
                           key)
                      l.l_loc
                    :: !out)
              n.loops;
            (match Hashtbl.find_opt cycles key with
            | Some comp ->
                let covered =
                  List.exists
                    (fun k ->
                      match G.node g k with
                      | Some m -> m.direct_cancel
                      | None -> false)
                    comp
                in
                (* One finding per cycle, reported at its smallest key. *)
                if (not covered) && key = List.fold_left min (List.hd comp) comp
                then
                  out :=
                    Lint_diag.of_loc ~rule:rule_cancel
                      ~msg:
                        (Printf.sprintf
                           "recursive cycle {%s} is reachable from serving dispatch \
                            but no function in the cycle calls Sgr_obs.Cancel.check; \
                            an @MS deadline cannot pre-empt it (add a checkpoint, or \
                            annotate why the recursion is bounded)"
                           (String.concat ", " (List.sort String.compare comp)))
                      n.def_loc
                    :: !out
            | None -> ());
            List.iter
              (fun (h : G.hof) ->
                if not h.h_cancel then
                  match
                    List.find_opt
                      (fun c -> Hashtbl.mem loopy c)
                      (List.sort String.compare h.h_callees)
                  with
                  | Some c ->
                      out :=
                        Lint_diag.of_loc ~rule:rule_cancel
                          ~msg:
                            (Printf.sprintf
                               "closure in %s iterates loop-bearing work (%s) with \
                                no per-item Sgr_obs.Cancel.check; an @MS deadline \
                                cannot pre-empt the sweep (add a checkpoint, or \
                                annotate why each item is cheap)"
                               key c)
                          h.h_loc
                        :: !out
                  | None -> ())
              n.hofs
        | _ -> ())
      (G.nodes_sorted g);
    !out
  end

(* ---------------- entry point ---------------- *)

let analyze g ~barrier : Lint_diag.t list =
  blocking_findings g ~barrier @ lock_findings g @ cancel_findings g
