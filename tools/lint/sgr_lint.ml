(* sgr-lint — project-rule static analysis on compiler-libs.

   Usage: sgr-lint [PATH ...]           (default: lib bin bench tools)
          sgr-lint --rules              (list rule ids)

   Parses every .ml/.mli under the given paths with the compiler's own
   parser and walks the Parsetree with the rules in [Lint_rules]. Rule
   applicability is derived from the path (lib/, lib/numerics, ...), so
   fixtures laid out under a mimicking directory tree exercise the same
   scoping as the real tree. Exit status is non-zero iff any finding
   survives its [@lint.allow] filter. *)

let skip_dirs = [ "_build"; ".git"; "_opam"; "node_modules" ]

let rec source_files acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if List.mem name skip_dirs then acc else source_files acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then path :: acc
  else acc

let parse_error_findings file exn =
  match Location.error_of_exn exn with
  | Some (`Ok { Location.main = { loc; txt }; _ }) ->
      let msg =
        Format.asprintf "%t" txt |> String.map (function '\n' -> ' ' | c -> c)
      in
      [ Lint_diag.of_loc ~rule:"parse-error" ~msg loc ]
  | _ ->
      [ { Lint_diag.file; line = 1; col = 0; cnum = 0; rule = "parse-error";
          msg = Printexc.to_string exn } ]

let check_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf file;
      if Filename.check_suffix file ".mli" then
        (* Interfaces carry no expressions; parsing still catches syntax
           rot in files dune might not currently build. *)
        match Parse.interface lexbuf with
        | _ -> []
        | exception exn -> parse_error_findings file exn
      else
        match Parse.implementation lexbuf with
        | str ->
            let findings = Lint_rules.collect ~path:file str in
            let regions, bad = Lint_allow.collect ~known:Lint_rules.known str in
            bad @ List.filter (fun d -> not (Lint_allow.suppressed regions d)) findings
        | exception exn -> parse_error_findings file exn)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ ("--rules" | "-rules") ] ->
      List.iter (fun (id, doc) -> Printf.printf "%-22s %s\n" id doc) Lint_rules.rules
  | [ ("--help" | "-help" | "-h") ] ->
      print_endline "usage: sgr-lint [--rules] [PATH ...]   (default paths: lib bin bench tools)"
  | _ ->
      let roots = if args = [] then [ "lib"; "bin"; "bench"; "tools" ] else args in
      let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
      if missing <> [] then begin
        List.iter (Printf.eprintf "sgr-lint: no such path: %s\n") missing;
        exit 2
      end;
      let files = List.fold_left source_files [] roots |> List.sort String.compare in
      let findings = List.concat_map check_file files |> List.sort Lint_diag.compare in
      List.iter Lint_diag.print findings;
      if findings <> [] then begin
        Printf.printf "%d finding%s\n" (List.length findings)
          (if List.length findings = 1 then "" else "s");
        exit 1
      end
