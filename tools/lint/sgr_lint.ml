(* sgr-lint — project-rule static analysis on compiler-libs.

   Usage: sgr-lint [OPTIONS] [PATH ...]      (default: lib bin bench tools)
          sgr-lint --rules                   (list rule ids)
          sgr-lint --format json [PATH ...]  (machine-readable findings)
          sgr-lint --dump-callgraph dot [..] (typed-phase call graph)
          sgr-lint --allow-census [PATH ...] (allow-region count per rule)

   Phase 1 parses every .ml/.mli under the given paths with the
   compiler's own parser and walks the Parsetree with the rules in
   [Lint_rules]. Phase 2 loads every .cmt found under the same paths
   (dune's @lint alias depends on @check so they exist), builds a
   whole-program call graph ([Lint_callgraph]) and runs the
   interprocedural rules ([Lint_typed]). Both phases report in source
   coordinates, so one [@lint.allow] region table filters both; an
   allow on a *definition* additionally acts as a taint barrier. Rule
   applicability is derived from the path (lib/, lib/numerics, ...), so
   fixtures laid out under a mimicking directory tree exercise the same
   scoping as the real tree. Exit status is non-zero iff any finding
   survives its filter. *)

let skip_dirs = [ "_build"; ".git"; "_opam"; "node_modules" ]

let rec source_files acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if List.mem name skip_dirs then acc else source_files acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then path :: acc
  else acc

let parse_error_findings file exn =
  match Location.error_of_exn exn with
  | Some (`Ok { Location.main = { loc; txt }; _ }) ->
      let msg =
        Format.asprintf "%t" txt |> String.map (function '\n' -> ' ' | c -> c)
      in
      [ Lint_diag.of_loc ~rule:"parse-error" ~msg loc ]
  | _ ->
      [ { Lint_diag.file; line = 1; col = 0; cnum = 0; rule = "parse-error";
          msg = Printexc.to_string exn } ]

(* Phase 1 on one file. Returns the surviving findings plus the file's
   allow regions (phase 2 filters against the same table). A file that
   cannot be read or parsed is itself a non-zero-exit [parse-error]
   finding — silently skipping it would un-lint whatever it contains. *)
let check_file file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lexbuf = Lexing.from_channel ic in
        Lexing.set_filename lexbuf file;
        if Filename.check_suffix file ".mli" then
          (* Interfaces carry no expressions; parsing still catches syntax
             rot in files dune might not currently build. *)
          match Parse.interface lexbuf with
          | _ -> ([], [])
          | exception exn -> (parse_error_findings file exn, [])
        else
          match Parse.implementation lexbuf with
          | str ->
              let findings = Lint_rules.collect ~path:file str in
              let regions, bad = Lint_allow.collect ~known:Lint_rules.known str in
              ( bad @ List.filter (fun d -> not (Lint_allow.suppressed regions d)) findings,
                regions )
          | exception exn -> (parse_error_findings file exn, []))
  with
  | result -> result
  | exception Sys_error msg ->
      ( [ { Lint_diag.file; line = 1; col = 0; cnum = 0; rule = "parse-error"; msg } ],
        [] )

type format = Text | Json

let usage () =
  print_endline
    "usage: sgr-lint [--rules] [--format text|json] [--dump-callgraph dot] \
     [--allow-census] [PATH ...]   (default paths: lib bin bench tools)"

let () =
  (* The lexer can emit alerts (e.g. ISO-Latin1 characters) on the
     compiler's formatter; lint output must stay machine-parseable. *)
  Location.formatter_for_warnings := Format.make_formatter (fun _ _ _ -> ()) (fun () -> ());
  let args = List.tl (Array.to_list Sys.argv) in
  let format = ref Text in
  let dump_callgraph = ref false in
  let allow_census = ref false in
  let rec parse_args acc = function
    | [] -> List.rev acc
    | ("--rules" | "-rules") :: _ ->
        List.iter (fun (id, doc) -> Printf.printf "%-22s %s\n" id doc) Lint_rules.rules;
        exit 0
    | ("--help" | "-help" | "-h") :: _ ->
        usage ();
        exit 0
    | "--format" :: fmt :: rest ->
        (match fmt with
        | "text" -> format := Text
        | "json" -> format := Json
        | other ->
            Printf.eprintf "sgr-lint: unknown format %S (expected text or json)\n" other;
            exit 2);
        parse_args acc rest
    | "--dump-callgraph" :: "dot" :: rest ->
        dump_callgraph := true;
        parse_args acc rest
    | "--dump-callgraph" :: _ ->
        Printf.eprintf "sgr-lint: --dump-callgraph expects the format \"dot\"\n";
        exit 2
    | "--allow-census" :: rest ->
        allow_census := true;
        parse_args acc rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "sgr-lint: unknown option %s\n" arg;
        usage ();
        exit 2
    | path :: rest -> parse_args (path :: acc) rest
  in
  let roots =
    match parse_args [] args with [] -> [ "lib"; "bin"; "bench"; "tools" ] | l -> l
  in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    List.iter (Printf.eprintf "sgr-lint: no such path: %s\n") missing;
    exit 2
  end;
  (* Overlapping roots (sgr-lint lib lib/serve) must not double-report. *)
  let files = List.fold_left source_files [] roots |> List.sort_uniq String.compare in
  let regions_by_file : (string, Lint_allow.region list) Hashtbl.t = Hashtbl.create 64 in
  let phase1 =
    List.concat_map
      (fun file ->
        let findings, regions = check_file file in
        Hashtbl.replace regions_by_file file regions;
        findings)
      files
  in
  if !allow_census then begin
    (* Allow-regions per rule across the tree, for lint-baseline.txt:
       a new suppression shows up as a visible diff in CI. *)
    let census = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ regions ->
        List.iter
          (fun (r : Lint_allow.region) ->
            Hashtbl.replace census r.rule (1 + Option.value ~default:0 (Hashtbl.find_opt census r.rule)))
          regions)
      regions_by_file;
    Hashtbl.fold (fun rule n acc -> (rule, n) :: acc) census []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.iter (fun (rule, n) -> Printf.printf "%-22s %d\n" rule n);
    exit 0
  end;
  (* Phase 2: typed analysis over whatever .cmt files exist under the
     same roots. No cmts (fixture trees that are never compiled) means
     no typed findings — the Parsetree phase stands alone. *)
  let units, cmt_diags = Lint_cmt.load roots in
  let typed =
    if units = [] then []
    else begin
      let g = Lint_callgraph.build units in
      if !dump_callgraph then begin
        Lint_callgraph.dump_dot g stdout;
        exit 0
      end;
      let regions_of file = Option.value ~default:[] (Hashtbl.find_opt regions_by_file file) in
      let barrier ~rule (n : Lint_callgraph.node) =
        let p = n.def_loc.loc_start in
        Lint_allow.suppressed (regions_of n.src)
          { Lint_diag.file = n.src; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol;
            cnum = p.pos_cnum; rule; msg = "" }
      in
      Lint_typed.analyze g ~barrier
      |> List.filter (fun (d : Lint_diag.t) ->
             not (Lint_allow.suppressed (regions_of d.file) d))
    end
  in
  if !dump_callgraph then begin
    (* Reachable only when no unit was loaded: nothing to dump. *)
    Printf.eprintf "sgr-lint: --dump-callgraph found no .cmt files under the given paths \
                    (run dune build @check first)\n";
    exit 2
  end;
  let findings =
    phase1 @ cmt_diags @ typed |> List.sort_uniq Lint_diag.compare
  in
  match !format with
  | Json ->
      Lint_diag.print_json_list findings;
      if findings <> [] then exit 1
  | Text ->
      List.iter Lint_diag.print findings;
      if findings <> [] then begin
        Printf.printf "%d finding%s\n" (List.length findings)
          (if List.length findings = 1 then "" else "s");
        exit 1
      end
