(* The project rules, as a Parsetree walk.

   Every rule is purely syntactic (no typing pass), so each one errs on
   the side of precision: it matches the concrete idioms this repo uses
   and documents its blind spots in docs/static-analysis.md. A rule
   fires as a [Lint_diag.t]; suppression is handled by the caller via
   [Lint_allow]. *)

open Parsetree

(* Where a file sits decides which rules apply to it. *)
type ctx = {
  in_lib : bool;  (* under lib/: purity, failure and global-state rules *)
  numeric : bool;  (* lib/numerics, lib/links or lib/network: tolerance discipline *)
  hot : bool;  (* lib/graph or lib/network: no quadratic list idioms *)
  session : bool;  (* lib/serve session-layer modules: never block *)
}

let ctx_of_path path =
  let comps = String.split_on_char '/' path in
  let has c = List.mem c comps in
  let in_lib = has "lib" in
  {
    in_lib;
    numeric = in_lib && (has "numerics" || has "links" || has "network");
    hot = in_lib && (has "graph" || has "network");
    (* The event-loop state machines: these run on the server's single
       serving thread, so one blocking call stalls every session. *)
    session =
      (in_lib && has "serve")
      && List.mem (Filename.basename path) [ "session.ml"; "lineio.ml" ];
  }

let rules =
  [
    ( "mutable-global",
      "toplevel ref/Hashtbl/Buffer/mutable-record state in lib/ must be Atomic, \
       mutex-guarded, or Domain.DLS" );
    ( "float-equality",
      "float-literal =/<>/==/!= and bare polymorphic compare/min/max in numeric modules; \
       use Tolerance helpers or Float.*" );
    ( "obs-domain-discipline",
      "Obs.span/Obs.point/Hist.record must not run inside closures handed to \
       Pool.map/map_array (spans and points are sink-domain-only; a plain histogram is \
       single-domain — use Hist.observe)" );
    ("lib-purity", "no direct stdout/stderr output from lib/; print from bin/ or an Obs sink");
    ( "no-blocking-in-pool",
      "blocking calls (Unix.*, Thread.delay/join, Mutex.lock, channel I/O) must not be \
       reachable — directly or through the call graph (typed phase) — from closures \
       handed to Pool.map/map_array or from the serve session-layer modules \
       (session.ml, lineio.ml) driven by the event loop" );
    ("no-untyped-failure", "failwith / assert false in lib/ needs an explicit allow");
    ( "quadratic-list",
      "List.mem/List.assoc/List.nth/(@) in lib/graph and lib/network hot paths" );
    ( "lock-discipline",
      "typed phase: fields of a record that pairs a Mutex.t with mutable state must \
       only be touched while the mutex is held, and non-atomic mutable globals must \
       not be reachable from Pool closures" );
    ( "cancel-coverage",
      "typed phase: while loops, recursive cycles and loop-driving closures in solver \
       modules reachable from lib/serve dispatch must contain Sgr_obs.Cancel.check so \
       @MS deadlines can pre-empt them" );
  ]

let known = List.map fst rules

(* [Longident.flatten] raises on functor applications; this one never does. *)
let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (a, b) -> flatten a @ flatten b

let last_two path =
  match List.rev path with b :: a :: _ -> Some (a, b) | _ -> None

let ends_with path (m, f) =
  match last_two path with
  | Some (a, b) -> String.equal a m && String.equal b f
  | None -> false

let callee_path f =
  match f.pexp_desc with Pexp_ident { txt; _ } -> Some (flatten txt) | _ -> None

let is_float_lit e =
  match e.pexp_desc with Pexp_constant (Pconst_float _) -> true | _ -> false

(* ---------------- mutable-global ---------------- *)

(* Field names declared [mutable] anywhere in this file; a toplevel
   record literal mentioning one is shared mutable state. (Mutable
   fields of types declared elsewhere are a documented blind spot.) *)
let mutable_field_names str =
  let fields = Hashtbl.create 8 in
  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      type_declaration =
        (fun self td ->
          (match td.ptype_kind with
          | Ptype_record lds ->
              List.iter
                (fun ld ->
                  if ld.pld_mutable = Asttypes.Mutable then
                    Hashtbl.replace fields ld.pld_name.txt ())
                lds
          | _ -> ());
          default.type_declaration self td);
    }
  in
  iter.structure iter str;
  fields

let banned_creation path =
  match path with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref"
  | _ when ends_with path ("Hashtbl", "create") -> Some "Hashtbl.create"
  | _ when ends_with path ("Buffer", "create") -> Some "Buffer.create"
  | _ when ends_with path ("Queue", "create") -> Some "Queue.create"
  | _ when ends_with path ("Stack", "create") -> Some "Stack.create"
  | _ -> None

(* Scan a toplevel binding's RHS for state created *now* (not inside a
   function, which is per-call state). *)
let scan_mutable_global ~emit ~mutable_fields str =
  let rec scan e =
    match e.pexp_desc with
    | Pexp_apply (f, args) ->
        (match callee_path f with
        | Some p -> (
            match banned_creation p with
            | Some what ->
                emit e.pexp_loc
                  (Printf.sprintf
                     "toplevel %s creates shared mutable state; wrap it in Atomic/Mutex or \
                      Domain.DLS, or annotate why it is domain-safe"
                     what)
            | None -> List.iter (fun (_, a) -> scan a) args)
        | None -> List.iter (fun (_, a) -> scan a) args)
    | Pexp_record (fields, base) ->
        let mut =
          List.find_opt
            (fun (({ txt; _ } : Longident.t Asttypes.loc), _) ->
              match List.rev (flatten txt) with
              | name :: _ -> Hashtbl.mem mutable_fields name
              | [] -> false)
            fields
        in
        (match mut with
        | Some ({ txt; _ }, _) ->
            let name = String.concat "." (flatten txt) in
            emit e.pexp_loc
              (Printf.sprintf
                 "toplevel record literal has mutable field %s; shared mutable state needs \
                  Atomic/Mutex/Domain.DLS or an allow annotation"
                 name)
        | None -> ());
        List.iter (fun (_, fe) -> scan fe) fields;
        Option.iter scan base
    | Pexp_tuple es -> List.iter scan es
    | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> scan e
    | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> scan vb.pvb_expr) vbs;
        scan body
    | Pexp_sequence (a, b) ->
        scan a;
        scan b
    | Pexp_ifthenelse (c, t, e) ->
        scan c;
        scan t;
        Option.iter scan e
    | Pexp_match (s, cases) | Pexp_try (s, cases) ->
        scan s;
        List.iter (fun c -> scan c.pc_rhs) cases
    | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> scan e
    | _ -> ()  (* functions, lazy, constants: creation is deferred *)
  in
  let rec scan_items items =
    List.iter
      (fun si ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter (fun vb -> scan vb.pvb_expr) vbs
        | Pstr_module mb -> scan_module mb.pmb_expr
        | Pstr_recmodule mbs -> List.iter (fun mb -> scan_module mb.pmb_expr) mbs
        | Pstr_include { pincl_mod; _ } -> scan_module pincl_mod
        | _ -> ())
      items
  and scan_module me =
    match me.pmod_desc with
    | Pmod_structure s -> scan_items s
    | Pmod_constraint (me, _) -> scan_module me
    | _ -> ()
  in
  scan_items str

(* ---------------- shared expression rules ---------------- *)

(* Hist.record mutates an unsynchronized histogram: from a pool worker
   that is a data race (the per-domain Hist.observe is the safe spelling). *)
let is_obs_emit path =
  ends_with path ("Obs", "span")
  || ends_with path ("Obs", "point")
  || ends_with path ("Hist", "record")

(* First Obs.span/Obs.point reference syntactically inside [e], if any. *)
let obs_call_in e =
  let found = ref None in
  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; _ } when is_obs_emit (flatten txt) ->
              if !found = None then found := Some ex.pexp_loc
          | _ -> ());
          default.expr self ex);
    }
  in
  iter.expr iter e;
  !found

(* A pool worker that parks in a syscall stalls every task queued behind
   it, and a pool-wide Thread.join can deadlock outright. Precise-name
   match: only the [Unix]/[Thread] entry points this repo could reach. *)
let blocking_unix =
  [
    "sleep"; "sleepf"; "select"; "accept"; "connect"; "read"; "write"; "single_write";
    "recv"; "send"; "wait"; "waitpid";
  ]

let blocking_call path =
  match last_two path with
  | Some ("Unix", f) when List.mem f blocking_unix -> Some ("Unix." ^ f)
  | Some ("Thread", (("delay" | "join") as f)) -> Some ("Thread." ^ f)
  | _ -> None

(* First blocking-call reference syntactically inside [e], if any. *)
let blocking_call_in e =
  let found = ref None in
  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match blocking_call (flatten txt) with
              | Some what -> if !found = None then found := Some (ex.pexp_loc, what)
              | None -> ())
          | _ -> ());
          default.expr self ex);
    }
  in
  iter.expr iter e;
  !found

(* Names let-bound (at any level) to a body that emits spans/points, so
   passing the name to Pool.map is caught too. One level only: a helper
   calling another tainted helper is a documented blind spot. (The
   blocking equivalent used to live here; the typed phase's fixed-point
   taint in [Lint_typed] replaced it and has no hop limit.) *)
let tainted_bindings str =
  let obs_tainted = Hashtbl.create 8 in
  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      value_binding =
        (fun self vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } -> (
              match obs_call_in vb.pvb_expr with
              | Some _ -> Hashtbl.replace obs_tainted txt ()
              | None -> ())
          | _ -> ());
          default.value_binding self vb);
    }
  in
  iter.structure iter str;
  obs_tainted

let print_idents =
  [
    "print_endline"; "print_string"; "print_newline"; "print_char"; "print_int";
    "print_float"; "print_bytes"; "prerr_endline"; "prerr_string"; "prerr_newline";
    "prerr_char"; "prerr_int"; "prerr_float"; "prerr_bytes";
  ]

let is_print path =
  match path with
  | [ n ] | [ "Stdlib"; n ] -> List.mem n print_idents
  | _ ->
      ends_with path ("Printf", "printf")
      || ends_with path ("Printf", "eprintf")
      || ends_with path ("Format", "printf")
      || ends_with path ("Format", "eprintf")

let quadratic_list path =
  match path with
  | [ "@" ] -> Some "(@)"
  | _ when ends_with path ("List", "mem") -> Some "List.mem"
  | _ when ends_with path ("List", "memq") -> Some "List.memq"
  | _ when ends_with path ("List", "assoc") -> Some "List.assoc"
  | _ when ends_with path ("List", "assq") -> Some "List.assq"
  | _ when ends_with path ("List", "mem_assoc") -> Some "List.mem_assoc"
  | _ when ends_with path ("List", "nth") -> Some "List.nth"
  | _ when ends_with path ("List", "append") -> Some "List.append"
  | _ -> None

let collect ~path (str : structure) : Lint_diag.t list =
  let ctx = ctx_of_path path in
  let out = ref [] in
  let emit ~rule loc msg = out := Lint_diag.of_loc ~rule ~msg loc :: !out in
  if ctx.in_lib then begin
    let mutable_fields = mutable_field_names str in
    scan_mutable_global ~emit:(fun loc msg -> emit ~rule:"mutable-global" loc msg)
      ~mutable_fields str
  end;
  let obs_tainted = tainted_bindings str in
  let default = Ast_iterator.default_iterator in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
        match callee_path f with
        | Some p ->
            (match p with
            | [ ("=" | "<>" | "==" | "!=") ] | [ "Stdlib"; ("=" | "<>" | "==" | "!=") ]
              when List.exists (fun (_, a) -> is_float_lit a) args ->
                emit ~rule:"float-equality" e.pexp_loc
                  "exact comparison against a float literal; use Tolerance.approx / \
                   approx_le / approx_ge (or annotate an intentional exact test)"
            | _ -> ());
            if ctx.in_lib && (p = [ "failwith" ] || p = [ "Stdlib"; "failwith" ]) then
              emit ~rule:"no-untyped-failure" e.pexp_loc
                "failwith in lib/ raises an untyped Failure; use invalid_arg, a typed \
                 exception, or annotate the documented contract";
            if ends_with p ("Pool", "map") || ends_with p ("Pool", "map_array") then
              List.iter
                (fun (_, a) ->
                  (match obs_call_in a with
                  | Some loc ->
                      emit ~rule:"obs-domain-discipline" loc
                        "Obs.span/Obs.point/Hist.record inside a closure passed to Pool.map: \
                         worker domains drop events and race on plain histograms, so \
                         telemetry depends on the job count (use Hist.observe for \
                         histograms)"
                  | None -> ());
                  (match blocking_call_in a with
                  | Some (loc, what) ->
                      emit ~rule:"no-blocking-in-pool" loc
                        (Printf.sprintf
                           "%s blocks inside a closure passed to Pool.map: a parked worker \
                            domain stalls every task queued behind it"
                           what)
                  | None -> ());
                  match a.pexp_desc with
                  | Pexp_ident { txt = Longident.Lident n; _ } ->
                      if Hashtbl.mem obs_tainted n then
                        emit ~rule:"obs-domain-discipline" a.pexp_loc
                          (Printf.sprintf
                             "%s emits Obs spans/points or records a plain histogram and is \
                              passed to Pool.map: worker domains drop events and race on \
                              histograms, so telemetry depends on the job count"
                             n)
                  | _ -> ())
                args
        | None -> ())
    | Pexp_ident { txt; _ } ->
        let p = flatten txt in
        (if ctx.session then
           match blocking_call p with
           | Some what ->
               emit ~rule:"no-blocking-in-pool" e.pexp_loc
                 (Printf.sprintf
                    "%s blocks inside a session state-machine module: the server's event \
                     loop must never block (keep Session/Lineio pure; all I/O belongs to \
                     Server)"
                    what)
           | None -> ());
        if ctx.in_lib && is_print p then
          emit ~rule:"lib-purity" e.pexp_loc
            (Printf.sprintf
               "%s writes to std channels from lib/; return data or report through the \
                Obs sink, and print from bin/"
               (String.concat "." p));
        (match p with
        | [ (("compare" | "min" | "max") as n) ] when ctx.numeric ->
            emit ~rule:"float-equality" e.pexp_loc
              (Printf.sprintf
                 "bare polymorphic %s in a numeric module; use Float.%s / Int.%s (or a \
                  tolerance helper) so the comparison semantics are explicit"
                 n n n)
        | _ -> ());
        (match quadratic_list p with
        | Some what when ctx.hot ->
            emit ~rule:"quadratic-list" e.pexp_loc
              (Printf.sprintf
                 "%s is O(n) per call in a hot-path module; use an array, a sorted \
                  structure, or a Hashtbl"
                 what)
        | _ -> ())
    | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
      when ctx.in_lib ->
        emit ~rule:"no-untyped-failure" e.pexp_loc
          "assert false in lib/; make the invariant a typed error or annotate why the \
           branch is unreachable"
    | _ -> ());
    default.expr self e
  in
  let iter = { default with expr } in
  iter.structure iter str;
  !out
