(* Per-site suppression via [@lint.allow "rule-id"].

   The attribute may sit on an expression ([(e) [@lint.allow "r"]]), on
   a value binding ([let x = e [@@lint.allow "r"]]), or float at the
   module level ([[@@@lint.allow "r"]], which silences the rule for the
   rest of the file). The carrying node's source span becomes an allow
   region; a finding is suppressed when its start offset falls inside a
   region registered for its rule. Unknown rule ids in an allow are
   themselves reported (rule [bad-allow]) so a typo cannot silently
   disable checking. *)

open Parsetree

type region = { rule : string; cnum_lo : int; cnum_hi : int }

let payload_rule (attr : attribute) : string option =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc = Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* Returns the allow regions and any [bad-allow] findings. *)
let collect ~known (str : structure) : region list * Lint_diag.t list =
  let regions = ref [] in
  let bad = ref [] in
  let add_attr ~(host : Location.t) (attr : attribute) =
    if String.equal attr.attr_name.txt "lint.allow" then
      match payload_rule attr with
      | Some rule when List.mem rule known ->
          regions :=
            { rule; cnum_lo = host.loc_start.pos_cnum; cnum_hi = host.loc_end.pos_cnum }
            :: !regions
      | Some rule ->
          bad :=
            Lint_diag.of_loc ~rule:"bad-allow"
              ~msg:(Printf.sprintf "unknown rule %S in [@lint.allow]" rule)
              attr.attr_loc
            :: !bad
      | None ->
          bad :=
            Lint_diag.of_loc ~rule:"bad-allow"
              ~msg:"[@lint.allow] expects a string literal rule id" attr.attr_loc
            :: !bad
  in
  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      expr =
        (fun self e ->
          List.iter (add_attr ~host:e.pexp_loc) e.pexp_attributes;
          default.expr self e);
      value_binding =
        (fun self vb ->
          List.iter (add_attr ~host:vb.pvb_loc) vb.pvb_attributes;
          default.value_binding self vb);
      structure_item =
        (fun self si ->
          (match si.pstr_desc with
          | Pstr_attribute attr ->
              (* Floating [@@@lint.allow]: from here to end of file. *)
              let host =
                {
                  si.pstr_loc with
                  loc_end = { si.pstr_loc.loc_end with pos_cnum = max_int };
                }
              in
              add_attr ~host attr
          | _ -> ());
          default.structure_item self si);
    }
  in
  iter.structure iter str;
  (!regions, !bad)

let suppressed regions (d : Lint_diag.t) =
  List.exists
    (fun r -> String.equal r.rule d.rule && r.cnum_lo <= d.cnum && d.cnum <= r.cnum_hi)
    regions
