(* Whole-program call graph over the Typedtree.

   One node per named value binding (top-level, nested-module-level,
   and local [let]-bound functions, keyed as [Unit.sub.fn]); facts per
   node record what the interprocedural rules need: referenced globals,
   loop sites, iteration-HOF closures, [Pool.map] spawn points and
   [Cancel] checkpoints. Identifier paths are canonicalized so the
   dune-mangled unit spelling ([Sgr_serve__Cache.load]), the wrapper
   spelling ([Sgr_serve.Cache.load]) and local module aliases
   ([module C = Cache] ... [C.load]) all land on one key; [Stdlib.] is
   stripped so rules can match [Hashtbl.create] either way it appears.

   Known blind spots (documented in docs/static-analysis.md): functor
   bodies and first-class modules contribute no nodes or edges, and
   calls through function-typed values other than let-bound names
   (records of closures, function arguments) are invisible. *)

type loop = { l_loc : Location.t; l_cancel : bool }

type hof = {
  h_loc : Location.t;
  h_callees : string list;  (* canonical refs inside the closure *)
  h_cancel : bool;
}

type node = {
  key : string;
  src : string;
  def_loc : Location.t;
  is_fun : bool;
  toplevel : bool;
  ty_head : string option;  (* head type constructor of a non-function binding *)
  refs : (string, Location.t) Hashtbl.t;  (* canonical name -> first ref site *)
  mutable ref_order : string list;  (* insertion order, for determinism *)
  mutable loops : loop list;
  mutable hofs : hof list;
  mutable spawns : (string * Location.t) list;  (* pool-closure root refs *)
  mutable direct_cancel : bool;
}

type field_info = { f_name : string; f_mutable : bool; f_head : string option }
type type_info = { t_key : string; t_fields : field_info list }

type t = {
  nodes : (string, node) Hashtbl.t;
  mutable node_order : string list;
  types : (string, type_info) Hashtbl.t;
  units : Lint_cmt.unit_info list;
  (* Per-unit canonicalizer (closed over that unit's ident tables), so
     later passes can re-walk a unit's Typedtree and resolve paths the
     same way the graph build did. Keyed by source path. *)
  canons : (string, Path.t -> string option) Hashtbl.t;
}

(* ---------------- canonical names ---------------- *)

let join = String.concat "."

let strip_stdlib name =
  if String.length name > 7 && String.sub name 0 7 = "Stdlib." then
    String.sub name 7 (String.length name - 7)
  else name

(* [name] ends with [suffix] on a module-path boundary. *)
let has_suffix name suffix =
  let n = String.length name and s = String.length suffix in
  n >= s
  && String.sub name (n - s) s = suffix
  && (n = s || name.[n - s - 1] = '.')

type tables = {
  (* Ident.unique_name -> canonical name; modules and types share the
     namespace with values harmlessly (stamps make keys unique). *)
  idents : (string, string) Hashtbl.t;
}

let canon_path tables p =
  let rec go = function
    | Path.Pident id ->
        if Ident.persistent id then Some (join (Lint_cmt.expand_unit (Ident.name id)))
        else Hashtbl.find_opt tables.idents (Ident.unique_name id)
    | Path.Pdot (p, s) -> (
        match go p with Some base -> Some (base ^ "." ^ s) | None -> None)
    | Path.Papply _ -> None  (* functor application: documented blind spot *)
    | _ -> None
  in
  Option.map strip_stdlib (go p)

(* Label declarations wrap the field type in [Tpoly] (even monomorphic
   ones), so unwrap before looking for the head constructor. *)
let rec head_of_type tables (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> canon_path tables p
  | Types.Tpoly (ty, _) -> head_of_type tables ty
  | _ -> None

(* ---------------- graph construction ---------------- *)

let is_cancel name = has_suffix name "Cancel.check" || has_suffix name "Cancel.check_handle"

let iteration_hofs =
  [ "Array.init"; "Array.iter"; "Array.iteri"; "Array.map"; "Array.mapi"; "Array.map2";
    "Array.fold_left"; "Array.fold_right"; "List.iter"; "List.iteri"; "List.map";
    "List.mapi"; "List.rev_map"; "List.fold_left"; "List.fold_right"; "List.concat_map";
    "List.filter_map"; "List.init"; "Pool.map"; "Pool.map_array" ]

let is_iteration_hof name = List.exists (has_suffix name) iteration_hofs
let is_pool_spawn name = has_suffix name "Pool.map" || has_suffix name "Pool.map_array"

(* Spawn primitives whose function argument runs on a *new* domain or
   thread: the body is asynchronous, so nothing it does is the caller's
   synchronous work and it must not contribute call edges. *)
let is_async_spawn name =
  has_suffix name "Domain.spawn" || has_suffix name "Thread.create"

let new_node ~key ~src ~def_loc ~is_fun ~toplevel ~ty_head =
  {
    key; src; def_loc; is_fun; toplevel; ty_head;
    refs = Hashtbl.create 16; ref_order = []; loops = []; hofs = []; spawns = [];
    direct_cancel = false;
  }

let build (units : Lint_cmt.unit_info list) : t =
  let g =
    { nodes = Hashtbl.create 256; node_order = []; types = Hashtbl.create 64; units;
      canons = Hashtbl.create 64 }
  in
  let add_node n =
    match Hashtbl.find_opt g.nodes n.key with
    | Some _ ->
        (* Shadowed name (two [let go] in one function): merge facts
           under one key; precision loss is acceptable for a linter. *)
        ()
    | None ->
        Hashtbl.add g.nodes n.key n;
        g.node_order <- n.key :: g.node_order
  in
  List.iter
    (fun (u : Lint_cmt.unit_info) ->
      let tables = { idents = Hashtbl.create 64 } in
      let canon p = canon_path tables p in
      Hashtbl.replace g.canons u.src canon;
      (* Collect every canonical reference (with first location) under
         [e], for closure bodies and loop bodies. *)
      let refs_in e =
        let acc = ref [] and seen = Hashtbl.create 8 in
        let default = Tast_iterator.default_iterator in
        let iter =
          {
            default with
            expr =
              (fun self ex ->
                (match ex.Typedtree.exp_desc with
                | Typedtree.Texp_ident (p, _, _) -> (
                    match canon p with
                    | Some name when not (Hashtbl.mem seen name) ->
                        Hashtbl.add seen name ();
                        acc := (name, ex.exp_loc) :: !acc
                    | _ -> ())
                | _ -> ());
                default.expr self ex);
          }
        in
        iter.expr iter e;
        List.rev !acc
      in
      let cancel_in e = List.exists (fun (n, _) -> is_cancel n) (refs_in e) in
      (* The node whose body is currently being walked. *)
      let current = ref None in
      let record_ref name loc =
        match !current with
        | None -> ()
        | Some node ->
            if not (Hashtbl.mem node.refs name) then begin
              Hashtbl.add node.refs name loc;
              node.ref_order <- name :: node.ref_order
            end
      in
      let default = Tast_iterator.default_iterator in
      let is_function_expr (e : Typedtree.expression) =
        match e.exp_desc with Typedtree.Texp_function _ -> true | _ -> false
      in
      let is_arrow (e : Typedtree.expression) =
        match Types.get_desc e.exp_type with Types.Tarrow _ -> true | _ -> false
      in
      let rec walk_structure prefix (str : Typedtree.structure) iter =
        List.iter (walk_item prefix iter) str.str_items
      and walk_item prefix iter (si : Typedtree.structure_item) =
        match si.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter (register_binding ~prefix ~toplevel:true) vbs;
            List.iter (walk_binding ~prefix iter) vbs
        | Typedtree.Tstr_module mb -> walk_module prefix iter mb
        | Typedtree.Tstr_recmodule mbs -> List.iter (walk_module prefix iter) mbs
        | Typedtree.Tstr_type (_, decls) ->
            List.iter
              (fun (td : Typedtree.type_declaration) ->
                let name = td.typ_name.txt in
                let key = join (prefix @ [ name ]) in
                Hashtbl.replace tables.idents (Ident.unique_name td.typ_id) key;
                match td.typ_kind with
                | Typedtree.Ttype_record lds ->
                    let fields =
                      List.map
                        (fun (ld : Typedtree.label_declaration) ->
                          {
                            f_name = ld.ld_name.txt;
                            f_mutable = ld.ld_mutable = Asttypes.Mutable;
                            f_head = head_of_type tables ld.ld_type.ctyp_type;
                          })
                        lds
                    in
                    Hashtbl.replace g.types key { t_key = key; t_fields = fields }
                | _ -> ())
              decls
        | _ -> ()
      and walk_module prefix iter (mb : Typedtree.module_binding) =
        match mb.mb_id with
        | None -> ()
        | Some id -> (
            let rec unwrap (me : Typedtree.module_expr) =
              match me.mod_desc with
              | Typedtree.Tmod_constraint (me, _, _, _) -> unwrap me
              | d -> d
            in
            match unwrap mb.mb_expr with
            | Typedtree.Tmod_ident (p, _) -> (
                (* [module C = Cache]: references through the alias must
                   land on the aliased module's canonical name. *)
                match canon p with
                | Some target -> Hashtbl.replace tables.idents (Ident.unique_name id) target
                | None -> ())
            | Typedtree.Tmod_structure str ->
                let sub = prefix @ [ Ident.name id ] in
                Hashtbl.replace tables.idents (Ident.unique_name id) (join sub);
                walk_structure sub str iter
            | _ -> ()  (* functors, unpack: documented blind spot *))
      and binding_ident (vb : Typedtree.value_binding) =
        (* [let x : t = e] typechecks the constrained pattern to
           [Tpat_alias (_, x, _)]; both shapes bind exactly one name. *)
        match vb.vb_pat.pat_desc with
        | Typedtree.Tpat_var (id, _) -> Some id
        | Typedtree.Tpat_alias (_, id, _) -> Some id
        | _ -> None
      and register_binding ~prefix ~toplevel (vb : Typedtree.value_binding) =
        match binding_ident vb with
        | Some id ->
            let key = join (prefix @ [ Ident.name id ]) in
            let is_fun = is_function_expr vb.vb_expr in
            (* Local non-function lets fold into the enclosing node. *)
            if toplevel || is_fun then begin
              Hashtbl.replace tables.idents (Ident.unique_name id) key;
              add_node
                (new_node ~key ~src:u.src ~def_loc:vb.vb_loc ~is_fun ~toplevel
                   ~ty_head:
                     (if is_fun then None else head_of_type tables vb.vb_expr.exp_type))
            end
        | None -> ()
      and walk_binding ~prefix iter (vb : Typedtree.value_binding) =
        match binding_ident vb with
        | Some id when Hashtbl.mem g.nodes (join (prefix @ [ Ident.name id ])) ->
            let key = join (prefix @ [ Ident.name id ]) in
            let saved = !current in
            current := Hashtbl.find_opt g.nodes key;
            iter.Tast_iterator.expr iter vb.vb_expr;
            current := saved
        | _ -> iter.Tast_iterator.expr iter vb.vb_expr
      in
      let expr self (e : Typedtree.expression) =
        (match e.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            match canon p with
            | Some name ->
                record_ref name e.exp_loc;
                if is_cancel name then
                  Option.iter (fun n -> n.direct_cancel <- true) !current
            | None -> ())
        | Typedtree.Texp_while (_, body) ->
            Option.iter
              (fun n -> n.loops <- { l_loc = e.exp_loc; l_cancel = cancel_in body } :: n.loops)
              !current
        | Typedtree.Texp_apply (f, args) -> (
            match f.Typedtree.exp_desc with
            | Typedtree.Texp_ident (p, _, _) -> (
                match canon p with
                | Some fname ->
                    let fn_args =
                      List.filter_map
                        (function
                          | (Asttypes.Nolabel, Some a) when is_arrow a -> Some a
                          | _ -> None)
                        args
                    in
                    if is_pool_spawn fname then
                      Option.iter
                        (fun n ->
                          List.iter
                            (fun (a : Typedtree.expression) ->
                              let roots =
                                match a.exp_desc with
                                | Typedtree.Texp_ident (ap, _, _) -> (
                                    match canon ap with
                                    | Some an -> [ (an, a.exp_loc) ]
                                    | None -> [])
                                | _ -> refs_in a
                              in
                              n.spawns <- n.spawns @ roots)
                            fn_args)
                        !current;
                    if is_iteration_hof fname then
                      Option.iter
                        (fun n ->
                          List.iter
                            (fun (a : Typedtree.expression) ->
                              if is_function_expr a then
                                n.hofs <-
                                  {
                                    h_loc = a.exp_loc;
                                    h_callees = List.map fst (refs_in a);
                                    h_cancel = cancel_in a;
                                  }
                                  :: n.hofs)
                            fn_args)
                        !current
                | None -> ())
            | _ -> ())
        | _ -> ());
        match e.Typedtree.exp_desc with
        | Typedtree.Texp_apply (f, args)
          when (match f.Typedtree.exp_desc with
               | Typedtree.Texp_ident (p, _, _) -> (
                   match canon p with Some n -> is_async_spawn n | None -> false)
               | _ -> false) ->
            (* [Domain.spawn body]: [body] executes on its own domain, so
               its references are not edges out of the caller — walking
               it would blame the spawner for blocking that by design
               happens elsewhere (e.g. a worker parking between batches). *)
            self.Tast_iterator.expr self f;
            List.iter
              (function
                | _, Some (a : Typedtree.expression) when not (is_arrow a) ->
                    self.Tast_iterator.expr self a
                | _ -> ())
              args
        | Typedtree.Texp_let (_, vbs, body) ->
            (* Local [let]-bound functions become child nodes under the
               enclosing key ([Mod.fn.loop]), walked with attribution
               switched to them — that is what turns a tail-recursive
               local loop into a visible cycle. *)
            let prefix =
              match !current with Some n -> [ n.key ] | None -> u.prefix
            in
            List.iter (register_binding ~prefix ~toplevel:false) vbs;
            List.iter (walk_binding ~prefix self) vbs;
            self.Tast_iterator.expr self body
        | _ -> default.expr self e
      in
      let iter = { default with expr } in
      walk_structure u.prefix u.str iter)
    units;
  g.node_order <- List.rev g.node_order;
  g

(* ---------------- queries ---------------- *)

let node g key = Hashtbl.find_opt g.nodes key
let nodes_sorted g = List.sort String.compare g.node_order

let callees g n =
  List.rev n.ref_order |> List.filter (fun k -> Hashtbl.mem g.nodes k)

let ref_loc n name = Hashtbl.find_opt n.refs name

(* Keys reachable from [roots] through node-to-node edges (the roots
   themselves included). *)
let reachable g roots =
  let seen = Hashtbl.create 256 in
  let rec go key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      match node g key with Some n -> List.iter go (callees g n) | None -> ()
    end
  in
  List.iter go roots;
  seen

(* Bottom-up witness propagation: [seed n] names a fact established
   directly inside [n]; a node inherits the fact from its callees with
   the (deterministically shortest-first-found) call chain recorded.
   Nodes for which [barrier] holds neither seed nor relay the fact —
   that is how an [@lint.allow]-annotated definition vouches for its
   whole subtree. *)
type witness = { what : string; what_loc : Location.t option; chain : string list }

let propagate g ~seed ~barrier =
  let facts : (string, witness) Hashtbl.t = Hashtbl.create 64 in
  let keys = nodes_sorted g in
  List.iter
    (fun key ->
      let n = Hashtbl.find g.nodes key in
      if not (barrier n) then
        match seed n with
        | Some (what, loc) ->
            Hashtbl.replace facts key { what; what_loc = Some loc; chain = [] }
        | None -> ())
    keys;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun key ->
        if not (Hashtbl.mem facts key) then
          let n = Hashtbl.find g.nodes key in
          if not (barrier n) then
            match
              List.find_opt (fun c -> Hashtbl.mem facts c) (List.sort String.compare (callees g n))
            with
            | Some c ->
                let w = Hashtbl.find facts c in
                Hashtbl.replace facts key { w with chain = c :: w.chain };
                changed := true
            | None -> ())
      keys
  done;
  facts

let describe_chain root w =
  let hops = root :: w.chain @ [ w.what ] in
  let hops =
    if List.length hops <= 6 then hops
    else
      let rec take k = function
        | x :: tl when k > 0 -> x :: take (k - 1) tl
        | _ -> [ "…"; w.what ]
      in
      take 4 hops
  in
  String.concat " -> " hops

(* Strongly connected components (Tarjan), for recursive-cycle
   detection; returns the component key set for every node that sits on
   a cycle (self-recursive or mutual). *)
let cycle_members g =
  let index = Hashtbl.create 256 and low = Hashtbl.create 256 in
  let on_stack = Hashtbl.create 256 in
  let stack = ref [] and counter = ref 0 in
  let in_cycle = Hashtbl.create 64 in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    let n = Hashtbl.find g.nodes v in
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (callees g n);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: tl ->
            stack := tl;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let comp = pop [] in
      let self_loop k = List.mem k (callees g (Hashtbl.find g.nodes k)) in
      match comp with
      | [ only ] when not (self_loop only) -> ()
      | _ -> List.iter (fun k -> Hashtbl.replace in_cycle k comp) comp
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) (nodes_sorted g);
  in_cycle

(* ---------------- debug dump ---------------- *)

let dump_dot g out =
  Printf.fprintf out "digraph sgr_lint_callgraph {\n";
  List.iter
    (fun key ->
      let n = Hashtbl.find g.nodes key in
      let attrs =
        (if n.loops <> [] then [ "loops" ] else [])
        @ (if n.direct_cancel then [ "cancel" ] else [])
        @ if n.spawns <> [] then [ "pool-spawn" ] else []
      in
      if attrs <> [] then
        Printf.fprintf out "  %S [label=%S];\n" key
          (key ^ " (" ^ String.concat "," attrs ^ ")"))
    (nodes_sorted g);
  List.iter
    (fun key ->
      let n = Hashtbl.find g.nodes key in
      List.iter
        (fun c -> Printf.fprintf out "  %S -> %S;\n" key c)
        (List.sort_uniq String.compare (callees g n)))
    (nodes_sorted g);
  Printf.fprintf out "}\n"
