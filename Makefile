# Convenience aliases over dune. `make lint` is the one CI runs verbatim.

.PHONY: all build test lint bench fmt clean

all: build

build:
	dune build

test:
	dune runtest

lint:
	dune build @lint
	opam lint stackelberg.opam

bench:
	dune exec bench/main.exe -- --quick

fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
