(* A small "city" road network: a 4x4 directed grid with randomized BPR
   latencies, one commodity from the NW to the SE corner.

   Shows the library end to end on a non-toy network: both equilibrium
   solvers (path equilibration and Frank-Wolfe) agree on the Nash flow;
   MOP computes the price of optimum and an optimal Leader strategy whose
   induced equilibrium is verified to cost C(O). A second, 10x10 grid
   has C(18,9) = 48620 corner-to-corner paths — far past the 20,000-path
   enumeration cap — and runs through the column-generation engine. *)

module Net = Sgr_network.Network
module FW = Sgr_network.Frank_wolfe
module Eq = Sgr_network.Equilibrate
module Obj = Sgr_network.Objective
module Vec = Sgr_numerics.Vec

let () =
  let rng = Sgr_numerics.Prng.create 42 in
  let net = Sgr_workloads.Workloads.grid_network rng ~rows:4 ~cols:4 ~demand:3.0 () in
  Format.printf "4x4 grid, %d edges, demand 3.0@.@."
    (Sgr_graph.Digraph.num_edges net.Net.graph);

  let nash_pe = Eq.solve Obj.Wardrop net in
  let nash_fw = FW.solve ~tol:1e-10 Obj.Wardrop net in
  Format.printf "Wardrop flow: path-equilibration (%d sweeps, gap %.2e)@." nash_pe.sweeps
    nash_pe.gap;
  Format.printf "              Frank-Wolfe        (%d iters,  gap %.2e)@." nash_fw.iterations
    nash_fw.relative_gap;
  Format.printf "              max |Δedge flow| between solvers = %.2e@.@."
    (Vec.linf_dist nash_pe.edge_flow nash_fw.edge_flow);

  let opt = Eq.solve Obj.System_optimum net in
  let cn = Net.cost net nash_pe.edge_flow and co = Net.cost net opt.edge_flow in
  Format.printf "C(N) = %.6f, C(O) = %.6f, price of anarchy = %.6f@.@." cn co (cn /. co);

  let mop = Stackelberg.Mop.run net in
  Format.printf "MOP: β_G = %.6f (leader flow %.6f of 3.0)@." mop.beta (3.0 *. mop.beta);
  Format.printf "Induced cost C(S+T) = %.6f  -> ratio to optimum %.8f@." mop.induced.cost
    (mop.induced.cost /. co);
  Format.printf "Residual follower Wardrop gap: %.2e@." mop.induced.wardrop_gap;
  let rep = mop.per_commodity.(0) in
  Format.printf "Leader uses %d paths, followers keep %.6f free flow on shortest paths@.@."
    (List.length rep.leader_paths) rep.free_flow;

  (* Past the enumeration limit: 48620 simple paths, a handful of
     priced columns. *)
  let big = Sgr_workloads.Workloads.grid_network rng ~rows:10 ~cols:10 ~demand:5.0 () in
  let nash = Eq.solve Obj.Wardrop big in
  let opt_big = Eq.solve Obj.System_optimum big in
  let cn = Net.cost big nash.edge_flow and co = Net.cost big opt_big.edge_flow in
  Format.printf "10x10 grid (48620 s-t paths): column generation used %d columns@."
    (Array.length nash.paths.(0));
  Format.printf "C(N) = %.6f, C(O) = %.6f, price of anarchy = %.6f@." cn co (cn /. co);
  let mop_big = Stackelberg.Mop.run big in
  Format.printf "MOP at scale: β_G = %.6f, C(S+T)/C(O) = %.8f@." mop_big.beta
    (mop_big.induced.cost /. co)
