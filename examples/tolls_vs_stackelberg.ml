(* Two levers against selfish routing: tolls vs Stackelberg control.

   Marginal-cost tolls (the pricing policies the paper's introduction
   contrasts with Stackelberg routing) always restore the optimum — even
   on the classic Braess graph, where a Stackelberg Leader would need to
   control ALL the flow (β = 1). The Stackelberg lever is what remains
   when prices cannot be charged; this example puts the two side by side
   on every named instance. *)

module W = Sgr_workloads.Workloads
module Tolls = Stackelberg.Tolls
module Vec = Sgr_numerics.Vec

let links_case name t =
  let optop = Stackelberg.Optop.run t in
  let tolls = Tolls.links_tolls t in
  let _, tolled_cost = Tolls.links_outcome t in
  Format.printf "%-24s C(N)=%.4f  C(O)=%.4f  | stackelberg: β=%.4f | tolls: τ=%a -> %.4f@."
    name optop.nash_cost optop.optimum_cost optop.beta Vec.pp tolls tolled_cost

let net_case name net =
  let mop = Stackelberg.Mop.run net in
  let tolls = Tolls.network_tolls net in
  let _, tolled_cost = Tolls.network_outcome net in
  Format.printf "%-24s C(N)=%.4f  C(O)=%.4f  | stackelberg: β=%.4f | tolls: τ=%a -> %.4f@."
    name mop.nash_cost mop.opt_cost mop.beta Vec.pp tolls tolled_cost

let () =
  Format.printf "Both levers drive the cost to C(O); they differ in what they need:@.";
  Format.printf "the Leader must own β of the traffic, the toll collector must be@.";
  Format.printf "allowed to charge every congested edge.@.@.";
  links_case "pigou" W.pigou;
  links_case "fig4-6" W.fig456;
  links_case "pigou degree 4" (W.pigou_degree 4);
  net_case "fig7" (W.fig7 ());
  net_case "classic braess" (W.braess_classic ());
  Format.printf "@.The Braess line is the story: tolls need two numbers, the Leader@.";
  Format.printf "needs every last drop of flow (β = 1).@."
