(* Quickstart: Pigou's example (paper Figs. 1-3).

   Two parallel links, ℓ1(x) = x and ℓ2(x) = 1, shared by a unit flow of
   selfish users. Selfishness floods the fast link (cost 1); the optimum
   splits the flow (cost 3/4). A Stackelberg Leader controlling half the
   flow restores the optimum: OpTop computes that minimum portion β and
   the strategy achieving it. *)

module Links = Sgr_links.Links
module Vec = Sgr_numerics.Vec

let () =
  let instance = Sgr_workloads.Workloads.pigou in
  Format.printf "Instance:@.%a@.@." Links.pp instance;

  let nash = Links.nash instance in
  let opt = Links.opt instance in
  Format.printf "Nash       N = %a   cost C(N) = %.4f@." Vec.pp nash.assignment
    (Links.cost instance nash.assignment);
  Format.printf "Optimum    O = %a   cost C(O) = %.4f@." Vec.pp opt.assignment
    (Links.cost instance opt.assignment);
  Format.printf "Price of anarchy = %.6f  (paper: 4/3)@.@." (Links.price_of_anarchy instance);

  let result = Stackelberg.Optop.run instance in
  Format.printf "OpTop: price of optimum β = %.6f  (paper: 1/2)@." result.beta;
  Format.printf "Leader strategy  S = %a@." Vec.pp result.strategy;
  let induced = Links.induced instance ~strategy:result.strategy in
  Format.printf "Induced Nash     T = %a@." Vec.pp induced.assignment;
  Format.printf "Induced cost C(S+T) = %.6f  = C(O)? %b@." result.induced_cost
    (Sgr_numerics.Tolerance.approx result.induced_cost result.optimum_cost);

  (* Below β the optimum is out of reach (Corollary 2.2's converse). *)
  let shy = Stackelberg.Brute_force.optimal_strategy instance ~alpha:0.4 in
  Format.printf "@.Best grid strategy at α = 0.4 < β costs %.6f > C(O) = %.6f@."
    shy.induced_cost result.optimum_cost
