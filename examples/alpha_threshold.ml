(* The price the system pays as a function of the Leader's share.

   For a scheduling instance (M, r), Expression (2) of the paper assigns
   to each α the best a-posteriori anarchy cost (M,r,α). This example
   traces the curve for three instances — Pigou, the paper's Figs. 4-6
   system, and a degree-4 Pigou worst case — showing the phase
   transition at β: above it the ratio is pinned at 1 (Corollary 2.2),
   below it the hardness regime begins. Also exports the Fig. 7 network
   with the Leader's MOP edges highlighted as Graphviz. *)

module Sweep = Stackelberg.Alpha_sweep
module W = Sgr_workloads.Workloads

let trace name instance =
  let curve = Sweep.run ~samples:11 instance in
  Format.printf "%s (β = %.4f)@." name curve.beta;
  List.iter
    (fun (p : Sweep.point) ->
      let bar_len = int_of_float (40.0 *. (p.ratio -. 1.0)) in
      let bar = String.make (min 40 (max 0 bar_len)) '#' in
      Format.printf "  α=%.1f  ratio %.4f %s@." p.alpha p.ratio bar)
    curve.points;
  Format.printf "@."

let () =
  (* Sweeps honor the ambient job count (SGR_JOBS); the curves are
     byte-identical whatever it is, only wall clock changes. *)
  Format.printf "alpha sweeps with %d job(s) (set SGR_JOBS to parallelize)@.@."
    (Sgr_par.Pool.default_jobs ());
  trace "Pigou (Figs. 1-3)" W.pigou;
  trace "Five links (Figs. 4-6)" W.fig456;
  trace "Pigou degree 4 (worst-case family)" (W.pigou_degree 4);

  (* Cross-check the Pigou curve against its closed form. *)
  let curve = Sweep.run ~samples:11 W.pigou in
  let worst_err =
    List.fold_left
      (fun acc (p : Sweep.point) ->
        Float.max acc (Float.abs (p.ratio -. Sweep.pigou_closed_form p.alpha)))
      0.0 curve.points
  in
  Format.printf "Pigou curve vs closed form ((1-α)²+α)/(3/4): max error %.2e@.@." worst_err;

  (* Export the Fig. 7 Stackelberg strategy as Graphviz. *)
  let net = W.fig7 () in
  let mop = Stackelberg.Mop.run net in
  let dot =
    Sgr_graph.Dot.export ~name:"fig7"
      ~node_label:(fun v -> [| "s"; "v"; "w"; "t" |].(v))
      ~edge_label:(fun e ->
        Printf.sprintf "%s o=%.2f" W.fig7_edge_names.(e.Sgr_graph.Digraph.id)
          mop.opt_edge_flow.(e.Sgr_graph.Digraph.id))
      ~edge_highlight:(fun e -> mop.leader_edge_flow.(e.Sgr_graph.Digraph.id) > 1e-9)
      net.Sgr_network.Network.graph
  in
  print_string dot;
  Format.printf "(red edges carry Leader flow; β_G = %.2f)@." mop.beta
