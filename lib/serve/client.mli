(** Client for a {!Server} socket.

    {!rpc} is the lockstep form — one request out, one reply awaited —
    and is what interactive callers should use. The split
    {!send}/{!recv} pair supports pipelining: the concurrent server
    buffers any number of outstanding requests per session and answers
    them strictly in order, so a caller may [send] several lines and
    then [recv] the same number of replies. Each [send] must eventually
    be matched by exactly one [recv]; the caller should bound how many
    replies it leaves unread (the kernel socket buffer is finite).
    Blank and comment lines are dropped client-side — [send] returns
    [false] and nothing goes on the wire (the server would not reply).

    A [metrics] reply is the protocol's one multi-line frame: its
    header [ok metrics lines=N] announces the continuation, {!recv}
    reads exactly [N] further lines and returns the whole frame
    newline-joined — so reply framing survives pipelining. *)

type t

exception Disconnected
(** Raised by {!recv}/{!rpc} when the server closes the connection
    before the awaited reply arrives. *)

val connect : string -> t
(** Connect to the Unix-domain socket at the given path.
    @raise Unix.Unix_error when the socket is absent or refuses. *)

val send : t -> string -> bool
(** Write one raw request line; [false] when the line is blank or a
    comment (nothing sent, no reply owed). *)

val recv : t -> string
(** Await the next reply frame (continuation lines included for
    [metrics]). Blocks until it arrives. *)

val rpc : t -> string -> string option
(** [send] then [recv]: one request line, its reply; [None] when the
    line is blank or a comment. *)

val close : t -> unit
