(** Lockstep client for a {!Server} socket.

    One request line out, one reply back, strictly alternating — the
    client never has more than one reply in flight, so neither side
    can deadlock on a full pipe buffer. Blank and comment lines are
    dropped client-side (the server would not reply to them).

    A [metrics] reply is the protocol's one multi-line frame: its
    header [ok metrics lines=N] announces the continuation, the client
    reads exactly [N] further lines, and {!rpc} returns the whole
    frame newline-joined — so the lockstep invariant is preserved. *)

type t

exception Disconnected
(** Raised by {!rpc} when the server closes the connection before the
    awaited reply arrives. *)

val connect : string -> t
(** Connect to the Unix-domain socket at the given path.
    @raise Unix.Unix_error when the socket is absent or refuses. *)

val rpc : t -> string -> string option
(** Send one raw request line and await its reply (all continuation
    lines included for [metrics]); [None] when the line is blank or a
    comment (nothing is sent). *)

val close : t -> unit
