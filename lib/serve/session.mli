(** One connected client's non-blocking state machine.

    The {!Server} event loop owns every file descriptor; a session only
    sees bytes. Incoming chunks are {!feed}ed and split into request
    lines ({!Lineio}); the loop pops them one at a time with
    {!next_request} — strictly in arrival order, so replies pushed with
    {!push_reply} come back in request order even when the client has
    pipelined many requests. Outgoing bytes queue internally until the
    loop drains them with {!pending_out}/{!wrote} as the socket accepts
    them.

    Lifecycle: after a [quit] reply the remaining pipelined requests
    are discarded ({!has_work} goes false) and the session {!finished}s
    once the out queue drains. EOF on the read side lets the already
    pipelined requests finish first (a client may shut down its write
    side and keep reading replies). {!abort} (write error — the peer
    vanished) drops everything immediately.

    This module performs no I/O and never blocks; sgr-lint's
    [no-blocking-in-pool] rule rejects any [Unix]/[Thread] blocking
    call that creeps into the session-layer modules. *)

type t

val create : id:int -> t
val id : t -> int

val feed : t -> bytes -> int -> unit
(** [feed t chunk n] pushes the first [n] bytes just read from the
    socket; complete lines move to the request queue. *)

val feed_eof : t -> unit
(** Read side closed. A trailing unterminated line still counts as a
    request. *)

val next_request : t -> string option
(** Pop the oldest pending request line ([None] when none, after a
    quit, or after {!abort}). *)

val has_work : t -> bool
(** A request is pending and the session still executes requests. *)

val push_reply : t -> string -> unit
(** Queue [reply ^ "\n"] for writing; an ["ok bye"] reply marks the
    session as quitting. *)

val pending_out : t -> string
(** Bytes awaiting the socket ([""] when drained). *)

val wrote : t -> int -> unit
(** The kernel accepted [n] bytes of {!pending_out}. *)

val abort : t -> unit
(** Write-side failure: drop queued requests and replies; the session
    reports {!finished} immediately. *)

val wants_read : t -> bool
(** The loop should keep selecting this fd for reading. *)

val finished : t -> bool
(** Nothing left to read, execute, or write — close the fd and drop
    the session. *)

val close_reason : t -> string
(** ["quit"] or ["disconnected"], for the server log. *)

val lines_in : t -> int
(** Request lines received (the per-session counter exposed by the
    [metrics] verb). *)

val replies_out : t -> int
(** Replies queued for this session (blank/comment lines get none). *)
