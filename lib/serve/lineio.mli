(** Incremental newline framing over fed byte chunks.

    One instance per connection, shared by the {!Session} state
    machine (server side) and {!Client} (client side): the owner reads
    from its socket and {!feed}s the raw bytes; {!next} returns the
    complete lines in arrival order, without their terminating
    ['\n']. A scan offset remembers how far the pending window has
    already been searched, so feeding [n] bytes and draining every line
    in them costs O(n) total — unlike the historical [take_line]
    helper, which copied the whole pending buffer per line.

    Purely computational: this module performs no I/O and never blocks
    (sgr-lint's [no-blocking-in-pool] rule enforces that for the
    session-layer modules). *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh reader; [capacity] (default 4096) sizes the initial
    window, which grows geometrically as needed. *)

val feed : t -> bytes -> int -> int -> unit
(** [feed t src off n] appends [src.[off..off+n)] to the pending
    window. @raise Invalid_argument on an out-of-bounds slice. *)

val feed_string : t -> string -> unit

val next : t -> string option
(** The next complete line, if one is pending ([None] otherwise —
    feed more bytes). The terminator is consumed but not returned. *)

val pending_length : t -> int
(** Bytes fed but not yet returned by {!next} (a trailing line with no
    terminator yet). *)

val take_rest : t -> string
(** Drain the unterminated tail (for EOF: a trailing line still
    counts). The reader is empty afterwards. *)
