module P = Protocol
module IF = Sgr_io.Instance_file
module Links = Sgr_links.Links
module Net = Sgr_network.Network
module Eq = Sgr_network.Equilibrate
module Obj = Sgr_network.Objective
module Obs = Sgr_obs.Obs
module Hist = Sgr_obs.Hist

let fs = P.float_str

(* Per-verb latency histograms, interned once so the request hot path
   never touches the registry mutex; recording goes through per-domain
   shards ([Hist.observe]) and is safe from pool workers. *)
let request_hists =
  List.map
    (fun kind -> (kind, Hist.histogram ("serve.request_seconds." ^ kind)))
    [ "load"; "solve"; "assign"; "optop"; "mop"; "induced"; "sweep"; "stats"; "metrics";
      "ping"; "quit" ]

let request_hist kind =
  match List.assoc_opt kind request_hists with
  | Some h -> h
  | None -> Hist.histogram ("serve.request_seconds." ^ kind)

let h_batch_wait = Hist.histogram "serve.batch.wait_seconds"
let h_batch_compute = Hist.histogram "serve.batch.compute_seconds"

(* A fully-formed error reply escaping from the middle of a compute. *)
exception Reply of string

let wrong_kind what needs = raise (Reply (P.error_reply `Solve (what ^ " needs a " ^ needs)))

let method_str = function
  | Stackelberg.Alpha_sweep.Exact_threshold -> "threshold"
  | Stackelberg.Alpha_sweep.Linear_exact -> "thm2.4"
  | Stackelberg.Alpha_sweep.Grid_search -> "grid"
  | Stackelberg.Alpha_sweep.Heuristic_upper_bound -> "heuristic"

(* The id-independent reply payload: this is what the memo stores, so an
   instance reached under two ids shares one cache line. Must stay a
   deterministic function of (instance, request, engine) — no cache
   state, no clocks, no job count. *)
let payload (entry : Cache.entry) (req : P.request) =
  match (req, entry.Cache.instance) with
  | P.Solve { obj; _ }, inst ->
      let name = match obj with `Nash -> "nash" | `Opt -> "opt" in
      let cost =
        match inst with
        | IF.Links t ->
            let sol = match obj with `Nash -> Links.nash t | `Opt -> Links.opt t in
            Links.cost t sol.Links.assignment
        | IF.Network net ->
            let o = match obj with `Nash -> Obj.Wardrop | `Opt -> Obj.System_optimum in
            Net.cost net (Eq.solve o net).Eq.edge_flow
      in
      Printf.sprintf "obj=%s cost=%s" name (fs cost)
  | P.Assign { obj; method_; _ }, IF.Network net ->
      let o = match obj with `Nash -> Obj.Wardrop | `Opt -> Obj.System_optimum in
      let m =
        match method_ with
        | `Fw -> Sgr_assign.Solver.Frank_wolfe
        | `Msa -> Sgr_assign.Solver.Msa
      in
      (* Fixed tolerance so the reply is a deterministic function of
         (instance, request) and can be memoized under [memo_key]; runs
         sequentially inside a batch group (jobs=1), identical bytes to
         a parallel run by the solver's determinism contract. *)
      let sol = Sgr_assign.Solver.solve ~tol:1e-4 ~method_:m ~jobs:1 o net in
      Printf.sprintf "obj=%s method=%s cost=%s gap=%s iterations=%d"
        (match obj with `Nash -> "nash" | `Opt -> "opt")
        (Sgr_assign.Solver.method_name m)
        (fs (Net.cost net sol.Sgr_assign.Solver.edge_flow))
        (fs sol.relative_gap) sol.iterations
  | P.Assign _, IF.Links _ -> wrong_kind "assign" "network instance"
  | P.Optop _, IF.Links t ->
      let r = Stackelberg.Optop.run t in
      Printf.sprintf "beta=%s nash_cost=%s opt_cost=%s induced_cost=%s" (fs r.Stackelberg.Optop.beta)
        (fs r.nash_cost) (fs r.optimum_cost) (fs r.induced_cost)
  | P.Optop _, IF.Network _ -> wrong_kind "optop" "parallel-links instance"
  | P.Mop _, IF.Network net ->
      let r = Stackelberg.Mop.run net in
      Printf.sprintf "beta=%s beta_weak=%s nash_cost=%s opt_cost=%s induced_cost=%s"
        (fs r.Stackelberg.Mop.beta) (fs r.beta_weak) (fs r.nash_cost) (fs r.opt_cost)
        (fs r.induced.Stackelberg.Induced.cost)
  | P.Mop _, IF.Links _ -> wrong_kind "mop" "network instance"
  | P.Induced { alpha; _ }, IF.Links t ->
      let o = Stackelberg.Strategies.llf t ~alpha in
      Printf.sprintf "alpha=%s cost=%s ratio=%s" (fs alpha)
        (fs o.Stackelberg.Strategies.induced_cost) (fs o.ratio_to_opt)
  | P.Induced { alpha; _ }, IF.Network net ->
      let o = Stackelberg.Net_strategies.llf net ~alpha in
      Printf.sprintf "alpha=%s cost=%s ratio=%s" (fs alpha)
        (fs o.Stackelberg.Net_strategies.induced.Stackelberg.Induced.cost) (fs o.ratio_to_opt)
  | P.Sweep_point { alpha; _ }, IF.Links t ->
      let p = Stackelberg.Alpha_sweep.at t ~alpha in
      Printf.sprintf "alpha=%s ratio=%s method=%s" (fs p.Stackelberg.Alpha_sweep.alpha)
        (fs p.ratio) (method_str p.method_used)
  | P.Sweep_range { lo; hi; samples; _ }, IF.Links t ->
      (* Runs inside a pool task in batch mode, where the nested
         Pool.map falls back to sequential — same bytes either way. *)
      let c = Stackelberg.Alpha_sweep.range t ~lo ~hi ~samples in
      let pts =
        List.map
          (fun (p : Stackelberg.Alpha_sweep.point) ->
            Printf.sprintf "%s:%s" (fs p.alpha) (fs p.ratio))
          c.Stackelberg.Alpha_sweep.points
      in
      Printf.sprintf "beta=%s n=%d points=%s" (fs c.beta) samples (String.concat "," pts)
  | (P.Sweep_point _ | P.Sweep_range _), IF.Network _ ->
      wrong_kind "sweep" "parallel-links instance"
  | (P.Load _ | P.Stats | P.Metrics | P.Ping | P.Quit), _ ->
      (* Routed in [dispatch]; no memoized payload exists for these. *)
      raise (Reply (P.error_reply `Parse "internal: request has no payload"))

let cache_error = function
  | Cache.Io m -> P.error_reply `Io m
  | Cache.Parse m -> P.error_reply `Parse m
  | Cache.Unknown_id id ->
      P.error_reply `Parse (Printf.sprintf "unknown instance id %S (load it first)" id)

let dispatch cache req =
  match req with
  | P.Ping -> "ok pong"
  | P.Quit -> "ok bye"
  | P.Stats ->
      let s = Cache.stats cache in
      Printf.sprintf
        "ok stats entries=%d capacity=%d hits=%d misses=%d evictions=%d memo_hits=%d \
         memo_misses=%d memo_hit_rate=%s occupancy=%s"
        s.Cache.entries s.capacity s.hits s.misses s.evictions s.memo_hits s.memo_misses
        (fs s.memo_hit_rate) (fs s.occupancy)
  | P.Metrics -> Metrics.reply cache
  | P.Load { id; path } -> (
      match Cache.load cache ~id ~path with
      | Error e -> cache_error e
      | Ok (entry, hit) ->
          Printf.sprintf "ok load id=%s kind=%s fp=%s cache=%s" id
            (match entry.Cache.instance with IF.Links _ -> "links" | IF.Network _ -> "network")
            entry.Cache.fingerprint
            (match hit with `Hit -> "hit" | `Miss -> "miss"))
  | req -> (
      match (P.instance_id req, P.memo_key req) with
      | Some id, Some key -> (
          match Cache.resolve cache ~id with
          | Error e -> cache_error e
          | Ok entry ->
              let p = Cache.memo cache entry ~key ~compute:(fun () -> payload entry req) in
              Printf.sprintf "ok %s id=%s %s" (P.request_kind req) id p)
      | _ -> P.error_reply `Parse "internal: unroutable request")

let is_error reply = String.length reply >= 5 && String.equal (String.sub reply 0 5) "error"

let execute cache (line : P.line) =
  let kind = P.request_kind line.P.request in
  let t0 = Obs.now () in
  (* Distinguishes a pre-emptive cancellation (already replied and
     counted as a timeout) from an overrun the checkpoints missed,
     which the post-hoc fallback below still catches. *)
  let pre_empted = ref false in
  let reply =
    (* The loop must survive anything a solver throws; the catch-all is
       the documented containment boundary, not control flow. *)
    try
      match line.P.deadline_ms with
      | Some ms ->
          (* Pre-emptive enforcement: the solver inner loops checkpoint
             against this per-domain deadline and bail mid-compute. The
             exception propagates through [Cache.memo] before anything
             is stored, so a cancelled result is never memoized. *)
          Sgr_obs.Cancel.with_deadline
            ~seconds:(float_of_int ms /. 1000.)
            (fun () -> dispatch cache line.P.request)
      | None -> dispatch cache line.P.request
    with
    | Sgr_obs.Cancel.Deadline_exceeded ->
        pre_empted := true;
        Obs.incr (Obs.counter "serve.timeouts");
        let ms = match line.P.deadline_ms with Some ms -> ms | None -> 0 in
        P.error_reply `Timeout
          (Printf.sprintf "request cancelled at its %dms deadline (no result memoized)" ms)
    | Reply r -> r
    | Invalid_argument m | (Failure m [@lint.allow "no-untyped-failure"]) ->
        P.error_reply `Solve m
    | exn -> P.error_reply `Solve (Printexc.to_string exn)
  in
  let elapsed_s = Obs.now () -. t0 in
  let elapsed_us = int_of_float (1e6 *. elapsed_s) in
  Obs.incr (Obs.counter ("serve.requests." ^ kind));
  Obs.add (Obs.counter ("serve.request_us." ^ kind)) elapsed_us;
  Hist.observe (request_hist kind) elapsed_s;
  let reply =
    (* Post-hoc fallback for work the checkpoints cannot reach (e.g. a
       sweep fanned over pool workers, or a request that finished just
       past the line without hitting a checkpoint): the computed result
       stays memoized, only the reply is replaced. *)
    match line.P.deadline_ms with
    | Some ms when (not !pre_empted) && elapsed_us > ms * 1000 ->
        Obs.incr (Obs.counter "serve.timeouts");
        P.error_reply `Timeout
          (Printf.sprintf "request exceeded its %dms deadline (result cached for retry)" ms)
    | _ -> reply
  in
  if is_error reply then Obs.incr (Obs.counter "serve.errors");
  reply

let execute_raw cache raw =
  match P.parse_line raw with
  | Ok None -> None
  | Ok (Some line) -> Some (execute cache line)
  | Error m -> Some (P.error_reply `Parse m)

type item = Skip | Bad of string | Req of P.line

(* Batch scheduling: requests group by instance id (id-less requests are
   their own singleton groups); groups fan across the pool while each
   group stays sequential in input order, and replies scatter back by
   line index — output bytes are independent of the job count. [stats]
   and [metrics] are barriers (their counters reflect all preceding
   requests); [quit] flushes and stops the batch. *)
let run_batch ?jobs cache raw_lines =
  Obs.span "serve.batch" @@ fun () ->
  let items =
    Array.of_list
      (List.map
         (fun raw ->
           match P.parse_line raw with
           | Ok None -> Skip
           | Ok (Some l) -> Req l
           | Error m -> Bad m)
         raw_lines)
  in
  let n = Array.length items in
  let replies = Array.make n None in
  Obs.add (Obs.counter "serve.batch.lines") n;
  let pending = ref [] in
  let flush () =
    let work = List.rev !pending in
    pending := [];
    if work <> [] then begin
      let order = ref [] and tbl = Hashtbl.create 8 in
      List.iter
        (fun ((idx, line) as task) ->
          let key =
            match P.instance_id line.P.request with
            | Some id -> "i:" ^ id
            | None -> Printf.sprintf "l:%d" idx
          in
          match Hashtbl.find_opt tbl key with
          | None ->
              Hashtbl.add tbl key (ref [ task ]);
              order := key :: !order
          | Some r -> r := task :: !r)
        work;
      let groups =
        Array.of_list (List.rev_map (fun k -> List.rev !(Hashtbl.find tbl k)) !order)
      in
      Obs.add (Obs.counter "serve.batch.groups") (Array.length groups);
      let t_flush = Obs.now () in
      let results =
        Sgr_par.Pool.map ?jobs
          (fun group ->
            List.map
              (fun (idx, line) ->
                (* Queue wait = time from the flush until a worker picks
                   the request up; compute = the execute itself. *)
                let t_start = Obs.now () in
                Hist.observe h_batch_wait (t_start -. t_flush);
                let r = execute cache line in
                Hist.observe h_batch_compute (Obs.now () -. t_start);
                (idx, r))
              group)
          groups
      in
      Array.iter (List.iter (fun (idx, r) -> replies.(idx) <- Some r)) results
    end
  in
  (try
     Array.iteri
       (fun idx item ->
         match item with
         | Skip -> ()
         | Bad m -> replies.(idx) <- Some (P.error_reply `Parse m)
         | Req ({ request = P.Stats | P.Metrics; _ } as l) ->
             (* Both are barriers: their counters must reflect every
                preceding request, independent of the job count. *)
             flush ();
             replies.(idx) <- Some (execute cache l)
         | Req ({ request = P.Quit; _ } as l) ->
             flush ();
             replies.(idx) <- Some (execute cache l);
             raise Exit
         | Req l -> pending := (idx, l) :: !pending)
       items
   with Exit -> ());
  flush ();
  List.filter_map Fun.id (Array.to_list replies)
