module Obs = Sgr_obs.Obs
module Hist = Sgr_obs.Hist
module P = Protocol

let fs = P.float_str

(* ---------------- session telemetry ----------------

   The server owns the session table; this module only renders it.
   [sessions_active] is a plain gauge the event loop moves on
   accept/close. [session_stats] is a snapshot hook the server installs
   for the lifetime of its run ([(id, lines_in, replies_out)] per live
   session); the default renders nothing, so batch-mode expositions are
   unchanged. Both are Atomics: the hook is installed once per server
   run and read by the [metrics] verb, which the event loop executes on
   its own thread. *)

let sessions_active = Atomic.make 0

let session_stats : (unit -> (int * int * int) list) Atomic.t =
  Atomic.make (fun () -> [])

let set_session_stats f = Atomic.set session_stats f
let clear_session_stats () = Atomic.set session_stats (fun () -> [])

(* serve.request_seconds.<verb> shares one metric with a verb label;
   every other serve.* histogram maps to a flat sgr_* name. *)
let verb_hist_prefix = "serve.request_seconds."

let flat_name dotted =
  let stripped =
    match String.length dotted >= 6 && String.equal (String.sub dotted 0 6) "serve." with
    | true -> String.sub dotted 6 (String.length dotted - 6)
    | false -> dotted
  in
  "sgr_" ^ String.map (function '.' -> '_' | c -> c) stripped

let add_histogram buf ~metric ~label h =
  let labeled extra =
    match (label, extra) with
    | None, None -> ""
    | None, Some kv -> "{" ^ kv ^ "}"
    | Some kv, None -> "{" ^ kv ^ "}"
    | Some kv, Some kv' -> "{" ^ kv ^ "," ^ kv' ^ "}"
  in
  let cum = ref 0 in
  List.iter
    (fun (upper, count) ->
      if Float.is_finite upper then begin
        cum := !cum + count;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" metric
             (labeled (Some (Printf.sprintf "le=\"%s\"" (fs upper))))
             !cum)
      end)
    (Hist.nonzero_buckets h);
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket%s %d\n" metric (labeled (Some "le=\"+Inf\"")) (Hist.count h));
  Buffer.add_string buf (Printf.sprintf "%s_sum%s %s\n" metric (labeled None) (fs (Hist.sum h)));
  Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" metric (labeled None) (Hist.count h))

let render cache =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let counter_value name = Obs.value (Obs.counter name) in
  line "# sgr serving metrics (Prometheus text exposition)";
  line "# --- counts and gauges: byte-identical at any --jobs ---";
  (* Per-verb request counts: every registered serve.requests.* counter,
     zeros included, sorted by name (Obs.counters is sorted). *)
  line "# TYPE sgr_requests_total counter";
  List.iter
    (fun (name, v) ->
      let prefix = "serve.requests." in
      let pl = String.length prefix in
      if String.length name > pl && String.equal (String.sub name 0 pl) prefix then
        line "sgr_requests_total{verb=\"%s\"} %d" (String.sub name pl (String.length name - pl)) v)
    (Obs.counters ());
  line "# TYPE sgr_request_errors_total counter";
  line "sgr_request_errors_total %d" (counter_value "serve.errors");
  line "# TYPE sgr_request_timeouts_total counter";
  line "sgr_request_timeouts_total %d" (counter_value "serve.timeouts");
  let s = Cache.stats cache in
  line "# TYPE sgr_cache_hits_total counter";
  line "sgr_cache_hits_total %d" s.Cache.hits;
  line "# TYPE sgr_cache_misses_total counter";
  line "sgr_cache_misses_total %d" s.Cache.misses;
  line "# TYPE sgr_cache_evictions_total counter";
  line "sgr_cache_evictions_total %d" s.Cache.evictions;
  line "# TYPE sgr_memo_hits_total counter";
  line "sgr_memo_hits_total %d" s.Cache.memo_hits;
  line "# TYPE sgr_memo_misses_total counter";
  line "sgr_memo_misses_total %d" s.Cache.memo_misses;
  line "# TYPE sgr_cache_entries gauge";
  line "sgr_cache_entries %d" s.Cache.entries;
  line "# TYPE sgr_cache_capacity gauge";
  line "sgr_cache_capacity %d" s.Cache.capacity;
  line "# TYPE sgr_cache_occupancy gauge";
  line "sgr_cache_occupancy %s" (fs s.Cache.occupancy);
  line "# TYPE sgr_memo_hit_rate gauge";
  line "sgr_memo_hit_rate %s" (fs s.Cache.memo_hit_rate);
  line "# TYPE sgr_sessions_active gauge";
  line "sgr_sessions_active %d" (Atomic.get sessions_active);
  line "# TYPE sgr_sessions_opened_total counter";
  line "sgr_sessions_opened_total %d" (counter_value "serve.sessions");
  line "# TYPE sgr_sessions_closed_total counter";
  line "sgr_sessions_closed_total %d" (counter_value "serve.sessions_closed");
  (match (Atomic.get session_stats) () with
  | [] -> ()
  | per_session ->
      line "# TYPE sgr_session_requests_total counter";
      List.iter
        (fun (sid, lines_in, _) -> line "sgr_session_requests_total{session=\"%d\"} %d" sid lines_in)
        per_session;
      line "# TYPE sgr_session_replies_total counter";
      List.iter
        (fun (sid, _, replies) -> line "sgr_session_replies_total{session=\"%d\"} %d" sid replies)
        per_session);
  line "# --- latency histograms: scheduling-dependent, exempt from the determinism guarantee ---";
  let snaps =
    List.filter
      (fun (name, h) ->
        Hist.count h > 0 && String.length name > 6 && String.equal (String.sub name 0 6) "serve.")
      (Hist.snapshots ())
  in
  let verb_snaps, flat_snaps =
    List.partition
      (fun (name, _) ->
        let pl = String.length verb_hist_prefix in
        String.length name > pl && String.equal (String.sub name 0 pl) verb_hist_prefix)
      snaps
  in
  if verb_snaps <> [] then begin
    line "# TYPE sgr_request_seconds histogram";
    List.iter
      (fun (name, h) ->
        let pl = String.length verb_hist_prefix in
        let verb = String.sub name pl (String.length name - pl) in
        add_histogram buf ~metric:"sgr_request_seconds"
          ~label:(Some (Printf.sprintf "verb=\"%s\"" verb))
          h)
      verb_snaps
  end;
  List.iter
    (fun (name, h) ->
      let metric = flat_name name in
      line "# TYPE %s histogram" metric;
      add_histogram buf ~metric ~label:None h)
    flat_snaps;
  (* Drop the trailing newline: the reply framing counts exact lines. *)
  let s = Buffer.contents buf in
  String.sub s 0 (String.length s - 1)

let reply cache =
  let body = render cache in
  let lines = List.length (String.split_on_char '\n' body) in
  Printf.sprintf "ok metrics lines=%d\n%s" lines body
