module Obs = Sgr_obs.Obs

type t = {
  socket_path : string;
  cache : Cache.t;
  log : string -> unit;
  stop : bool Atomic.t;
}

let create ~socket_path ~cache ~log = { socket_path; cache; log; stop = Atomic.make false }
let request_stop t = Atomic.set t.stop true

(* One poll interval: the latency bound on noticing [request_stop]. *)
let poll_s = 0.2

let readable fd =
  match Unix.select [ fd ] [] [] poll_s with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let rec write_all fd s off len =
  if len > 0 then begin
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len
  end

let take_line pending =
  let s = Buffer.contents pending in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      Buffer.clear pending;
      Buffer.add_substring pending s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)

type step = Line of string | Eof | Stopped

(* Buffered, stop-aware line reader over the client fd. *)
let rec next_line t fd pending chunk =
  match take_line pending with
  | Some l -> Line l
  | None ->
      if Atomic.get t.stop then Stopped
      else if readable fd then begin
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 ->
            (* EOF; a trailing unterminated line still counts. *)
            if Buffer.length pending > 0 then begin
              let l = Buffer.contents pending in
              Buffer.clear pending;
              Line l
            end
            else Eof
        | n ->
            Buffer.add_subbytes pending chunk 0 n;
            next_line t fd pending chunk
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line t fd pending chunk
        | exception Unix.Unix_error _ -> Eof
      end
      else next_line t fd pending chunk

let serve_session t fd =
  let pending = Buffer.create 256 and chunk = Bytes.create 4096 in
  let rec loop () =
    match next_line t fd pending chunk with
    | Eof -> t.log "client disconnected"
    | Stopped -> t.log "stop requested; closing session"
    | Line raw -> (
        match Engine.execute_raw t.cache raw with
        | None -> loop ()
        | Some reply ->
            write_all fd (reply ^ "\n") 0 (String.length reply + 1);
            Obs.incr (Obs.counter "serve.replies");
            if String.equal reply "ok bye" then t.log "client quit" else loop ())
  in
  try loop ()
  with Unix.Unix_error (err, _, _) ->
    (* EPIPE/ECONNRESET from a vanished client: a disconnect, not a crash. *)
    t.log (Printf.sprintf "client error: %s" (Unix.error_message err))

let unlink_quiet path =
  match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ()

let run t =
  unlink_quiet t.socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      unlink_quiet t.socket_path;
      t.log "socket removed; bye")
  @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX t.socket_path);
  Unix.listen sock 8;
  t.log (Printf.sprintf "listening on %s" t.socket_path);
  let rec accept_loop () =
    if Atomic.get t.stop then begin
      t.log "stop requested; draining";
      (* Final telemetry snapshot on graceful SIGINT/SIGTERM drain, one
         log line per exposition line (the frontend owns the channel). *)
      List.iter t.log (String.split_on_char '\n' (Metrics.render t.cache))
    end
    else if readable sock then begin
      match Unix.accept sock with
      | client, _ ->
          Obs.incr (Obs.counter "serve.sessions");
          Fun.protect
            ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
            (fun () -> serve_session t client);
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    end
    else accept_loop ()
  in
  accept_loop ()
