module Obs = Sgr_obs.Obs

exception Busy of string

type t = {
  socket_path : string;
  cache : Cache.t;
  log : string -> unit;
  stop : bool Atomic.t;
}

let create ~socket_path ~cache ~log = { socket_path; cache; log; stop = Atomic.make false }
let request_stop t = Atomic.set t.stop true

(* One poll interval: the latency bound on noticing [request_stop] when
   the loop is otherwise idle. With queued work the select timeout is 0,
   so the stop flag is re-checked between every two requests. *)
let poll_s = 0.2

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let unlink_quiet path =
  match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ()

(* A second `sgr serve` must not silently steal a live server's socket:
   probe the path with a ping before unlinking it. A connect refusal
   means the file is a stale leftover (safe to remove); a listener that
   answers — or even one that accepts the connection but stays silent —
   means the path is in use. *)
let probe_existing t =
  if Sys.file_exists t.socket_path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX t.socket_path) with
      | () -> (
          let msg = "ping\n" in
          match
            (try ignore (Unix.write_substring fd msg 0 (String.length msg)) with
            | Unix.Unix_error _ -> ());
            Unix.select [ fd ] [] [] 1.0
          with
          | [], _, _ -> true (* accepted the connection but never answered: occupied *)
          | _ -> (
              let buf = Bytes.create 64 in
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> false (* listener hung up without a word: treat as stale *)
              | _ -> true (* any reply (an "ok pong") is a live server *)
              | exception Unix.Unix_error _ -> false)
          | exception Unix.Unix_error _ -> true)
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> false
      | exception Unix.Unix_error _ ->
          (* Not connectable as a socket (e.g. a regular file): the old
             behaviour — unlink and take the path — applies. *)
          false
    in
    close_quiet fd;
    if live then raise (Busy t.socket_path);
    t.log "removing stale socket file"
  end

(* ---------------- event loop ---------------- *)

let c_sessions = Obs.counter "serve.sessions"
let c_sessions_closed = Obs.counter "serve.sessions_closed"
let c_replies = Obs.counter "serve.replies"

let run t =
  probe_existing t;
  unlink_quiet t.socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* The session table: fd order is accept order; [rr] rotates the
     compute step across sessions so one chatty pipeline cannot starve
     the others. *)
  let sessions = ref [] in
  let next_id = ref 0 in
  let rr = ref 0 in
  let chunk = Bytes.create 4096 in
  let close_session (fd, s) =
    close_quiet fd;
    Obs.incr c_sessions_closed;
    Atomic.decr Metrics.sessions_active;
    t.log (Printf.sprintf "client %d %s" (Session.id s) (Session.close_reason s))
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (fd, _) -> close_quiet fd) !sessions;
      Metrics.clear_session_stats ();
      close_quiet sock;
      unlink_quiet t.socket_path;
      t.log "socket removed; bye")
  @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX t.socket_path);
  Unix.listen sock 64;
  Unix.set_nonblock sock;
  Metrics.set_session_stats (fun () ->
      List.map
        (fun (_, s) -> (Session.id s, Session.lines_in s, Session.replies_out s))
        !sessions);
  t.log (Printf.sprintf "listening on %s" t.socket_path);
  let accept_all () =
    let continue = ref true in
    while !continue do
      match Unix.accept sock with
      | fd, _ ->
          Unix.set_nonblock fd;
          incr next_id;
          let s = Session.create ~id:!next_id in
          sessions := !sessions @ [ (fd, s) ];
          Obs.incr c_sessions;
          Atomic.incr Metrics.sessions_active;
          t.log (Printf.sprintf "client %d connected" !next_id)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          continue := false
      | exception Unix.Unix_error (e, _, _) ->
          (* A failed accept (e.g. the peer vanished mid-handshake) must
             not take down the serving loop. *)
          t.log (Printf.sprintf "accept error: %s" (Unix.error_message e));
          continue := false
    done
  in
  let read_session (fd, s) =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Session.feed_eof s
    | n -> Session.feed s chunk n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
        (* ECONNRESET and friends: a disconnect, not a crash. *)
        Session.feed_eof s
  in
  let write_session (fd, s) =
    let out = Session.pending_out s in
    if String.length out > 0 then begin
      match Unix.write_substring fd out 0 (String.length out) with
      | n -> Session.wrote s n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) ->
          (* EPIPE/ECONNRESET from a vanished client. *)
          Session.abort s
    end
  in
  (* Execute at most one request per loop turn, rotating across the
     sessions that have work: replies stay ordered within a session
     (FIFO inbox) while long pipelines interleave fairly across
     sessions, and the stop flag is honoured between requests. *)
  let compute_one () =
    let arr = Array.of_list !sessions in
    let n = Array.length arr in
    let rec pick k =
      if k >= n then ()
      else
        let i = (!rr + k) mod n in
        let _, s = arr.(i) in
        if Session.has_work s then begin
          rr := i + 1;
          match Session.next_request s with
          | None -> ()
          | Some raw -> (
              match Engine.execute_raw t.cache raw with
              | None -> ()
              | Some reply ->
                  Session.push_reply s reply;
                  Obs.incr c_replies)
        end
        else pick (k + 1)
    in
    if n > 0 then pick 0
  in
  (* Sessions whose fd the kernel no longer recognises (select raised
     EBADF) are dropped so one broken descriptor cannot wedge the loop. *)
  let drop_unhealthy () =
    let healthy, broken =
      List.partition (fun (fd, _) -> match Unix.fstat fd with _ -> true | exception Unix.Unix_error _ -> false) !sessions
    in
    sessions := healthy;
    List.iter
      (fun ((_, s) as cs) ->
        Session.abort s;
        close_session cs)
      broken
  in
  let rec loop () =
    if Atomic.get t.stop then begin
      t.log "stop requested; draining";
      (* Final telemetry snapshot on graceful SIGINT/SIGTERM drain, one
         log line per exposition line (the frontend owns the channel).
         Rendered while the sessions are still registered, then the
         finalizer closes them. *)
      List.iter t.log (String.split_on_char '\n' (Metrics.render t.cache))
    end
    else begin
      let work_pending = List.exists (fun (_, s) -> Session.has_work s) !sessions in
      let timeout = if work_pending then 0.0 else poll_s in
      let read_fds =
        sock :: List.filter_map (fun (fd, s) -> if Session.wants_read s then Some fd else None) !sessions
      in
      let write_fds =
        List.filter_map
          (fun (fd, s) -> if String.length (Session.pending_out s) > 0 then Some fd else None)
          !sessions
      in
      (match Unix.select read_fds write_fds [] timeout with
      | readable, writable, _ ->
          if List.memq sock readable then accept_all ();
          List.iter
            (fun ((fd, _) as cs) -> if List.memq fd readable then read_session cs)
            !sessions;
          List.iter
            (fun ((fd, _) as cs) -> if List.memq fd writable then write_session cs)
            !sessions
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (e, _, _) ->
          (* A per-session failure must never take down the other
             sessions: log, drop the broken descriptors, carry on. *)
          t.log (Printf.sprintf "select error: %s; dropping broken sessions" (Unix.error_message e));
          drop_unhealthy ());
      compute_one ();
      let finished, live = List.partition (fun (_, s) -> Session.finished s) !sessions in
      sessions := live;
      List.iter close_session finished;
      loop ()
    end
  in
  loop ()
