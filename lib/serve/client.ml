type t = { fd : Unix.file_descr; reader : Lineio.t; chunk : Bytes.t }

exception Disconnected

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; reader = Lineio.create (); chunk = Bytes.create 4096 }

let rec write_all fd s off len =
  if len > 0 then begin
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len
  end

let rec recv_line t =
  match Lineio.next t.reader with
  | Some l -> l
  | None -> (
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 -> raise Disconnected
      | n ->
          Lineio.feed t.reader t.chunk 0 n;
          recv_line t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv_line t)

(* A [metrics] reply is the one multi-line frame in the protocol: the
   header announces how many continuation lines follow, so a reply is
   always a self-delimiting frame even when requests are pipelined. *)
let continuation_lines header =
  let prefix = "ok metrics lines=" in
  let pl = String.length prefix in
  if String.length header > pl && String.equal (String.sub header 0 pl) prefix then
    match int_of_string_opt (String.sub header pl (String.length header - pl)) with
    | Some n when n >= 0 -> n
    | _ -> 0
  else 0

let send t raw =
  match Protocol.parse_line raw with
  | Ok None -> false
  | Ok (Some _) | Error _ ->
      let line = raw ^ "\n" in
      write_all t.fd line 0 (String.length line);
      true

let recv t =
  let header = recv_line t in
  let rest = ref [] in
  for _ = 1 to continuation_lines header do
    rest := recv_line t :: !rest
  done;
  String.concat "\n" (header :: List.rev !rest)

let rpc t raw = if send t raw then Some (recv t) else None
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
