(** Request execution and batch scheduling.

    {b Determinism.} A reply is a pure function of the instance bytes,
    the request parameters and the ambient solver engine — never of the
    cache state or the job count. {!run_batch} fans per-instance request
    groups across {!Sgr_par.Pool} but keeps each group sequential in
    input order and scatters replies back by line index, so its output
    is byte-identical at any [--jobs]. The [stats] and [metrics]
    replies are executed at a barrier so their counts reflect every
    preceding request; [metrics] splits its output into a
    count-and-gauge section that shares the byte-identical guarantee
    and a latency-histogram section that is explicitly exempt (see
    {!Metrics}). Under eviction pressure (working set larger than the
    LRU) recency order — and therefore the hit/miss/eviction split —
    becomes scheduling-dependent at [--jobs > 1]; the determinism
    property is stated for workloads whose distinct instances fit the
    cache, which is how the CI property test runs.

    {b Deadlines.} A [@MS] prefix is enforced {e pre-emptively}:
    {!execute} arms a per-domain {!Sgr_obs.Cancel} deadline around the
    dispatch, and the solver inner loops (column-generation pricing
    rounds, MOP per-commodity steps, bisection iterations) checkpoint
    against it and abort mid-compute with
    [error timeout: request cancelled at its Nms deadline (no result
    memoized)]. The cancellation exception propagates through
    [Cache.memo] before anything is stored, so a cancelled result is
    never memoized — a retry recomputes from cold. Work the
    checkpoints cannot reach (a [sweep] fanned over pool worker
    domains, or a request that finishes just past the line) falls back
    to the original post-hoc check: the result {e is} memoized and the
    reply says [(result cached for retry)].

    {b Failure modes.} A malformed line yields [error parse:], a solver
    or applicability failure [error solve:], an unreadable file
    [error io:] — the loop itself never raises. *)

val execute : Cache.t -> Protocol.line -> string
(** One request, one reply line. Performs no channel I/O besides
    reading the file named by a [load]. Safe to call from pool worker
    domains (it emits no Obs spans or points, only atomic counters and
    per-domain latency shards via [Hist.observe]). *)

val execute_raw : Cache.t -> string -> string option
(** Parse one raw line and execute it; [None] for blank/comment lines.
    This is the serve loop's per-line step. *)

val run_batch : ?jobs:int -> Cache.t -> string list -> string list
(** Execute a batch, one reply per non-blank line, in input order.
    Requests after a [quit] line are not executed and produce no
    replies. [jobs] defaults to {!Sgr_par.Pool.default_jobs}. *)
