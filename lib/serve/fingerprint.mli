(** Canonical instance fingerprints.

    A fingerprint is the 64-bit FNV-1a hash of
    {!Sgr_io.Instance_file.to_string}'s canonical serialization, rendered
    as 16 lowercase hex digits. Because the canonical form round-trips
    floats bit-exactly and fixes field order, parsing the same instance
    text twice — or printing and re-parsing it — always yields the same
    fingerprint, while perturbing any latency coefficient, demand, or the
    topology changes it. The serving cache keys on this string. *)

val fnv1a64 : string -> int64
(** The 64-bit FNV-1a hash of a byte string. *)

val hex : int64 -> string
(** 16 lowercase hex digits, zero-padded. *)

val of_instance : Sgr_io.Instance_file.t -> string
(** [hex (fnv1a64 (Instance_file.to_string t))].
    @raise Invalid_argument on non-serializable latencies (cannot happen
    for instances that came from a file). *)

val of_string : string -> string
(** Fingerprint of raw canonical text (for callers that already hold the
    serialization). *)
