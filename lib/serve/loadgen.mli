(** Synthetic load generator for the serving layer.

    {!generate} derives a deterministic request stream from a
    {!Sgr_numerics.Prng} seed: it writes a pool of instance files
    (parallel links and grid networks from {!Sgr_workloads.Workloads})
    into a scratch directory and emits a mixed-verb request list
    ([solve]/[optop]/[mop]/[induced]/[sweep]) whose instance choice
    follows a configurable {e reuse ratio} — high reuse hammers the
    memo, low reuse churns the LRU. Alphas are drawn from the small set
    [{0, 1/4, 1/2, 3/4, 1}] so repeated parameters actually memo-hit.
    {!generate_multi} derives one such stream per client over a shared
    instance pool; each stream injects its own [load] lines before
    first use, so every client is self-contained regardless of how the
    server interleaves the sessions.

    {!run} replays the stream(s) against either the in-process engine
    ([Engine.run_batch], measuring per-request latency through the
    [serve.request_seconds.*] histograms, which it resets first) or a
    set of concurrently connected socket {!Client}s (wave-based
    pipelining: one request per client in flight per wave, latency
    measured client-side from each send to its own reply), and reports
    p50/p95/p99 latency, throughput and the memo hit rate — the
    numbers the T11 bench group and [sgr bench serve] gate on. *)

type target =
  | In_process of { cache : Cache.t; jobs : int option }
      (** Replay through {!Engine.run_batch} against [cache] (streams
          concatenated in client order); [jobs] defaults to
          [Sgr_par.Pool.default_jobs]. Resets the registered serve
          histograms first so the report covers only this replay. *)
  | Sockets of Client.t array
      (** Replay over connected clients, one stream per client, waves
          of pipelined requests. The final hit rate is read from a
          trailing [stats] request on the first client (not counted in
          [requests]), so it reflects the server's whole lifetime, not
          only this replay. *)

type report = {
  requests : int;  (** Replies received (loads included). *)
  errors : int;  (** Replies classified [error ...]. *)
  wall_s : float;
  rps : float;  (** [requests /. wall_s]. *)
  p50_s : float;
  p95_s : float;
  p99_s : float;  (** Latency quantiles in seconds, all verbs pooled. *)
  memo_hit_rate : float;
}

val generate :
  dir:string -> seed:int -> instances:int -> requests:int -> reuse:float -> string list
(** Write the instance pool into [dir] (must exist) and return the
    request lines: [requests] verb requests plus one [load] per
    instance, injected before its first use. Deterministic in [seed],
    byte-stable across releases (the T11 bench replays it). Raises
    [Invalid_argument] unless [instances >= 1], [requests >= 0] and
    [0 <= reuse <= 1]. *)

val generate_multi :
  dir:string ->
  seed:int ->
  instances:int ->
  requests:int ->
  reuse:float ->
  clients:int ->
  string list array
(** One stream per client over a shared pool (written once): [requests]
    verb requests split as evenly as possible across [clients], each
    stream seeded independently from [seed] and carrying its own [load]
    lines (bindings are shared server-side and idempotent, so
    concurrent re-loads are harmless). Deterministic in
    [(seed, clients)]. Additionally requires [clients >= 1]. *)

val run : target -> string list array -> report
(** Raises [Invalid_argument] for [Sockets] unless there is at least
    one client and exactly one stream per client. *)

val gate : report -> p99_max_s:float -> rps_min:float -> hit_rate_min:float -> string list
(** Threshold check for CI: one human-readable failure string per
    violated bound (empty list = pass). Any error reply is also a
    failure. *)
