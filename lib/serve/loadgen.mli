(** Synthetic load generator for the serving layer.

    {!generate} derives a deterministic request stream from a
    {!Sgr_numerics.Prng} seed: it writes a pool of instance files
    (parallel links and grid networks from {!Sgr_workloads.Workloads})
    into a scratch directory and emits a mixed-verb request list
    ([solve]/[optop]/[mop]/[induced]/[sweep]) whose instance choice
    follows a configurable {e reuse ratio} — high reuse hammers the
    memo, low reuse churns the LRU. Alphas are drawn from the small set
    [{0, 1/4, 1/2, 3/4, 1}] so repeated parameters actually memo-hit.

    {!run} replays a stream against either the in-process engine
    ([Engine.run_batch], measuring per-request latency through the
    [serve.request_seconds.*] histograms, which it resets first) or a
    connected socket {!Client} (latency measured client-side around
    each lockstep [rpc]), and reports p50/p95/p99 latency, throughput
    and the memo hit rate — the numbers the T11 bench group and
    [sgr bench serve] gate on. *)

type target =
  | In_process of { cache : Cache.t; jobs : int option }
      (** Replay through {!Engine.run_batch} against [cache]; [jobs]
          defaults to [Sgr_par.Pool.default_jobs]. Resets the
          registered serve histograms first so the report covers only
          this replay. *)
  | Socket of Client.t
      (** Replay lockstep over a connected client. The final hit rate
          is read from a trailing [stats] request (not counted in
          [requests]), so it reflects the server's whole lifetime, not
          only this stream. *)

type report = {
  requests : int;  (** Replies received (loads included). *)
  errors : int;  (** Replies classified [error ...]. *)
  wall_s : float;
  rps : float;  (** [requests /. wall_s]. *)
  p50_s : float;
  p95_s : float;
  p99_s : float;  (** Latency quantiles in seconds, all verbs pooled. *)
  memo_hit_rate : float;
}

val generate :
  dir:string -> seed:int -> instances:int -> requests:int -> reuse:float -> string list
(** Write the instance pool into [dir] (must exist) and return the
    request lines: [requests] verb requests plus one [load] per
    instance, injected before its first use. Deterministic in [seed].
    Raises [Invalid_argument] unless [instances >= 1], [requests >= 0]
    and [0 <= reuse <= 1]. *)

val run : target -> string list -> report

val gate : report -> p99_max_s:float -> rps_min:float -> hit_rate_min:float -> string list
(** Threshold check for CI: one human-readable failure string per
    violated bound (empty list = pass). Any error reply is also a
    failure. *)
