(* Incremental line splitter shared by the server sessions and the
   client. Replaces the old per-module [take_line] helpers, which
   called [Buffer.contents] on every extracted line — an O(pending)
   copy per line, quadratic over a large pipelined burst. This reader
   keeps one growable byte window and a scan offset, so feeding n bytes
   and draining the lines in them is O(n) total.

   No syscalls here (enforced by sgr-lint's no-blocking-in-pool scope):
   the owner reads from its fd and feeds the bytes in. *)

type t = {
  mutable buf : Bytes.t;
  mutable pos : int;  (* consumed prefix: the window is buf.[pos..len) *)
  mutable len : int;  (* filled prefix *)
  mutable scan : int;  (* invariant pos <= scan <= len; no '\n' in buf.[pos..scan) *)
}

let create ?(capacity = 4096) () = { buf = Bytes.create (max 16 capacity); pos = 0; len = 0; scan = 0 }

let compact t =
  if t.pos > 0 then begin
    let n = t.len - t.pos in
    Bytes.blit t.buf t.pos t.buf 0 n;
    t.scan <- t.scan - t.pos;
    t.len <- n;
    t.pos <- 0
  end

let reserve t n =
  if t.len + n > Bytes.length t.buf then begin
    compact t;
    let needed = t.len + n in
    if needed > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while needed > !cap do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end
  end

let feed t src off n =
  if off < 0 || n < 0 || off + n > Bytes.length src then invalid_arg "Lineio.feed";
  reserve t n;
  Bytes.blit src off t.buf t.len n;
  t.len <- t.len + n

let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)

(* Reset once fully drained so a long-lived reader shrinks its window
   bookkeeping back to the origin (capacity is kept). *)
let reset_if_drained t =
  if t.pos = t.len then begin
    t.pos <- 0;
    t.len <- 0;
    t.scan <- 0
  end

let next t =
  let i = ref t.scan in
  while !i < t.len && Bytes.get t.buf !i <> '\n' do
    incr i
  done;
  if !i >= t.len then begin
    t.scan <- t.len;
    reset_if_drained t;
    None
  end
  else begin
    let line = Bytes.sub_string t.buf t.pos (!i - t.pos) in
    t.pos <- !i + 1;
    t.scan <- t.pos;
    reset_if_drained t;
    Some line
  end

let pending_length t = t.len - t.pos

let take_rest t =
  let s = Bytes.sub_string t.buf t.pos (t.len - t.pos) in
  t.pos <- 0;
  t.len <- 0;
  t.scan <- 0;
  s
