(* Hash table + intrusive doubly-linked recency list. The list has a
   permanent sentinel node; sentinel.next is most-recently-used,
   sentinel.prev least-recently-used. *)

type 'v node = {
  key : string;
  mutable value : 'v option;  (* None only on the sentinel *)
  mutable prev : 'v node;
  mutable next : 'v node;
}

type 'v t = { capacity : int; table : (string, 'v node) Hashtbl.t; sentinel : 'v node }

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  let rec sentinel = { key = ""; value = None; prev = sentinel; next = sentinel } in
  { capacity; table = Hashtbl.create (2 * capacity); sentinel }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sentinel.next;
  n.prev <- t.sentinel;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some n ->
      unlink n;
      push_front t n;
      n.value

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some n ->
      n.value <- Some value;
      unlink n;
      push_front t n
  | None ->
      let rec n = { key; value = Some value; prev = n; next = n } in
      Hashtbl.replace t.table key n;
      push_front t n);
  if Hashtbl.length t.table > t.capacity then begin
    let lru = t.sentinel.prev in
    unlink lru;
    Hashtbl.remove t.table lru.key;
    match lru.value with Some v -> Some (lru.key, v) | None -> None
  end
  else None

let keys t =
  let rec go acc n = if n == t.sentinel then List.rev acc else go (n.key :: acc) n.next in
  go [] t.sentinel.next
