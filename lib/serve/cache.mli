(** The serving layer's instance cache.

    A bounded {!Lru} of parsed instances keyed by canonical
    {!Fingerprint}, plus a per-instance memo of finished reply payloads
    keyed by the request's canonical key (request kind, parameters and
    the active solver engine). Holding the parsed
    {!Sgr_io.Instance_file.t} keeps the frozen {!Sgr_graph.Digraph} CSR
    arrays alive across requests, so a repeated query re-runs neither
    [freeze] nor the equilibrium solver; per-domain Dijkstra workspaces
    are already reused underneath via [Domain.DLS] (see
    docs/performance.md).

    {b Locking choice: one cache-wide mutex, not sharded locks.} Every
    LRU/binding/memo table operation takes the same internal mutex, so
    one cache is safely shared by {!Sgr_par.Pool} worker domains in
    batch mode and by every session of the concurrent socket server.
    A single mutex is the right trade here because the lock only ever
    guards {e probes} — hash lookups, LRU splay, table stores — which
    are microseconds, while everything expensive (file read, instance
    parse, solver run in [memo]'s [compute]) deliberately happens
    {e outside} the lock. Sharding would buy contention relief the
    probe-only hold times never generate, at the cost of cross-shard
    eviction accounting. Two domains racing to fill the same memo key
    both compute (deterministically) and the results are identical, so
    last-write-wins is harmless — replies never depend on the job
    count. Because [compute] runs unlocked, an exception from it (in
    particular {!Sgr_obs.Cancel.Deadline_exceeded} from a pre-empted
    solve) propagates before the store: a cancelled result is never
    memoized.

    Counter discipline: every lookup bumps the cache's own atomic
    counters (reported by the [stats] request) and the global
    [Sgr_obs.Obs] counters [serve.cache.hit]/[miss]/[eviction] and
    [serve.memo.hit]/[miss]. Memo lookups additionally record their
    latency into the per-domain [Sgr_obs.Hist] histograms
    [serve.memo.hit_seconds] / [serve.memo.cold_seconds], splitting
    probe cost from solver cost (rendered by the [metrics] verb). *)

type entry = private {
  fingerprint : string;  (** 16-hex-digit canonical fingerprint. *)
  instance : Sgr_io.Instance_file.t;
  memo : (string, string) Hashtbl.t;
      (** Reply payloads by canonical request key; guarded by the
          cache mutex. *)
}

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

type error =
  | Io of string  (** File unreadable. *)
  | Parse of string  (** Instance text did not parse. *)
  | Unknown_id of string  (** No [load] bound this id in the session. *)

val load : t -> id:string -> path:string -> (entry * [ `Hit | `Miss ], error) result
(** Read and parse [path], fingerprint it, bind [id] to it, and insert
    it into the LRU (touching it if already present — [`Hit]). [load]
    always re-reads the file, so re-loading a changed file re-keys the
    binding to the new content. *)

val resolve : t -> id:string -> (entry, error) result
(** The entry [id] is bound to. If the entry was evicted since, it is
    transparently reloaded from the bound path (counted as a miss; if
    the file changed on disk the binding follows the new content). *)

val memo : t -> entry -> key:string -> compute:(unit -> string) -> string
(** The memoized reply payload for [key], computing (outside the lock)
    and storing it on first use. Exceptions from [compute] propagate and
    nothing is stored. *)

type stats = {
  entries : int;
  capacity : int;
  hits : int;  (** Entry lookups served from the LRU ([load]+[resolve]). *)
  misses : int;  (** Entry lookups that (re)parsed the file. *)
  evictions : int;
  memo_hits : int;
  memo_misses : int;
  memo_hit_rate : float;
      (** [memo_hits / (memo_hits + memo_misses)]; [0.] before any
          memo lookup. *)
  occupancy : float;  (** [entries / capacity], in [[0, 1]]. *)
}

val stats : t -> stats
