(* Per-client session state machine for the concurrent server.

   Purely computational — no fds, no syscalls (sgr-lint enforces this):
   the event loop in [Server] owns the socket and feeds bytes in /
   drains bytes out. Requests pipeline: every complete line queues in
   the inbox, the loop pops one at a time in arrival order, and replies
   append to the out queue in that same order — so a client may have
   any number of requests in flight while replies stay ordered. *)

type t = {
  id : int;
  reader : Lineio.t;
  inbox : string Queue.t;  (* complete raw request lines, FIFO *)
  out : Buffer.t;  (* reply bytes not yet accepted by the kernel *)
  mutable out_pos : int;  (* consumed prefix of [out] *)
  mutable eof : bool;  (* read side closed (EOF or read error) *)
  mutable quit : bool;  (* an "ok bye" reply was queued *)
  mutable aborted : bool;  (* write side failed: drop everything *)
  mutable lines_in : int;
  mutable replies_out : int;
}

let create ~id =
  {
    id;
    reader = Lineio.create ();
    inbox = Queue.create ();
    out = Buffer.create 256;
    out_pos = 0;
    eof = false;
    quit = false;
    aborted = false;
    lines_in = 0;
    replies_out = 0;
  }

let id t = t.id
let lines_in t = t.lines_in
let replies_out t = t.replies_out

let drain_lines t =
  let continue = ref true in
  while !continue do
    match Lineio.next t.reader with
    | Some line ->
        t.lines_in <- t.lines_in + 1;
        Queue.add line t.inbox
    | None -> continue := false
  done

let feed t chunk n =
  if not (t.eof || t.aborted) then begin
    Lineio.feed t.reader chunk 0 n;
    drain_lines t
  end

let feed_eof t =
  if not t.eof then begin
    t.eof <- true;
    (* A trailing unterminated line still counts as a request. *)
    if Lineio.pending_length t.reader > 0 then begin
      t.lines_in <- t.lines_in + 1;
      Queue.add (Lineio.take_rest t.reader) t.inbox
    end
  end

(* After a quit the remaining pipelined requests are not executed: the
   protocol's contract is that nothing after [quit] runs. *)
let has_work t = (not t.quit) && (not t.aborted) && not (Queue.is_empty t.inbox)
let next_request t = if has_work t then Queue.take_opt t.inbox else None

let push_reply t reply =
  if not t.aborted then begin
    Buffer.add_string t.out reply;
    Buffer.add_char t.out '\n';
    t.replies_out <- t.replies_out + 1;
    if String.equal reply "ok bye" then t.quit <- true
  end

let pending_out t =
  if t.aborted then ""
  else Buffer.sub t.out t.out_pos (Buffer.length t.out - t.out_pos)

let wrote t n =
  t.out_pos <- t.out_pos + n;
  if t.out_pos >= Buffer.length t.out then begin
    Buffer.clear t.out;
    t.out_pos <- 0
  end

let abort t =
  t.aborted <- true;
  t.eof <- true;
  Queue.clear t.inbox;
  Buffer.clear t.out;
  t.out_pos <- 0

let wants_read t = (not t.eof) && (not t.quit) && not t.aborted

let drained t = Buffer.length t.out - t.out_pos = 0

let finished t =
  t.aborted || (drained t && (t.quit || (t.eof && Queue.is_empty t.inbox)))

(* Why the session ended, for the server log. *)
let close_reason t = if t.quit then "quit" else "disconnected"
