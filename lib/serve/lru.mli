(** A bounded least-recently-used cache with string keys.

    Plain single-threaded data structure — O(1) find/add via a hash
    table over an intrusive doubly-linked recency list. {b Not}
    domain-safe; {!Cache} guards every call with its mutex. *)

type 'v t

val create : capacity:int -> 'v t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'v t -> int
val length : 'v t -> int

val find : 'v t -> string -> 'v option
(** Lookup; a hit moves the key to most-recently-used. *)

val add : 'v t -> string -> 'v -> (string * 'v) option
(** Insert (or replace) a binding and mark it most-recently-used.
    Returns the evicted least-recently-used binding when the insert
    pushed the cache over capacity. *)

val keys : 'v t -> string list
(** Keys from most- to least-recently-used (for tests and stats). *)
