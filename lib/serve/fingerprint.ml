(* FNV-1a, 64-bit: tiny, dependency-free, and stable across runs and
   platforms — exactly what a cache key needs. Not cryptographic; a
   malicious instance file could engineer a collision, but the cache
   only ever serves the colliding entry's *results*, never executes
   anything from it, so the blast radius is a wrong answer for an
   adversarial self-inflicted input. *)

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let hex h = Printf.sprintf "%016Lx" h
let of_string s = hex (fnv1a64 s)
let of_instance t = of_string (Sgr_io.Instance_file.to_string t)
