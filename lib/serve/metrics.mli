(** Prometheus-style text exposition of the serving telemetry.

    {!render} returns the body of a [metrics] reply: counters and
    gauges first, latency histograms second, in two explicitly marked
    sections with different determinism contracts (see
    docs/serving.md):

    - the {b deterministic section} (request counts per verb,
      error/timeout tallies, cache and memo counters, LRU
      occupancy/eviction gauges) is a pure function of the request
      history — byte-identical at any [--jobs], property-tested at
      jobs 1 vs 4;
    - the {b latency section} (per-verb request latency, batch
      queue-wait vs compute split, memo hit vs cold solve) depends on
      wall-clock scheduling and is exempt; under [Obs.set_clock] with
      a deterministic tick and [--jobs 1] it too becomes reproducible,
      which is how the golden cram test pins it.

    Exposition conventions: [# TYPE] comments, [_total] counters,
    gauges, and cumulative histogram buckets
    ([..._bucket{le="B"} N] / [..._sum] / [..._count]) with only
    non-empty buckets plus the [+Inf] bucket rendered. Metric names
    map from the internal dotted names ([serve.memo.hit_seconds] →
    [sgr_memo_hit_seconds]); per-verb request histograms share one
    metric with a [verb] label. *)

val sessions_active : int Atomic.t
(** Live-session gauge, moved by the {!Server} event loop on
    accept/close and rendered as [sgr_sessions_active]. Zero in batch
    mode. *)

val set_session_stats : (unit -> (int * int * int) list) -> unit
(** Install the per-session snapshot hook for the duration of a server
    run: [(session id, request lines received, replies sent)] per live
    session, rendered as [sgr_session_requests_total] /
    [sgr_session_replies_total] with a [session] label. The default
    hook returns [[]] and renders nothing (batch mode). *)

val clear_session_stats : unit -> unit
(** Restore the default (empty) hook; the server's exit path. *)

val render : Cache.t -> string
(** The exposition body: newline-separated lines, no trailing
    newline. *)

val reply : Cache.t -> string
(** The full [metrics] reply: [ok metrics lines=N] followed by the
    [N]-line body. *)
