(** Unix-domain-socket serve loop.

    Concurrent sessions, one select-driven event loop: every connected
    client gets a non-blocking {!Session} state machine (buffered
    reads, queued writes). Requests pipeline freely — a client may send
    many lines before reading a reply — and replies come back strictly
    in request order within each session. Across sessions the loop
    executes one request per turn, round-robin over the sessions with
    pending work, so a long pipeline cannot starve the others and the
    {!request_stop} flag is re-checked between any two requests.

    Session failures are contained: a read or write error on one fd is
    treated as that client's disconnect, and a non-[EINTR] [select]
    error drops only the broken descriptors — never the server.

    The server never prints: all operational chatter goes through the
    [log] callback supplied by the frontend (lib code stays pure). *)

type t

exception Busy of string
(** Raised by {!run} (before binding) when a live server already
    answers on the socket path. The argument is the path. *)

val create : socket_path:string -> cache:Cache.t -> log:(string -> unit) -> t

val request_stop : t -> unit
(** Async-signal-safe (a single atomic store): callable from a signal
    handler. The loop notices within one poll interval (0.2s) when
    idle, or between two requests when busy. *)

val run : t -> unit
(** Bind, listen, and serve until {!request_stop}. An existing socket
    file at the path is probed first: if a server answers a [ping]
    there, {!Busy} is raised and nothing is touched; only a stale file
    (connection refused, or a listener that hangs up silently) is
    unlinked before binding. The file is unlinked again on exit. On
    stop the loop logs a final {!Metrics.render} snapshot (one log
    line per exposition line) before closing the remaining sessions.
    The frontend should ignore SIGPIPE so an abruptly-vanishing client
    surfaces as [EPIPE] (handled as a disconnect) rather than killing
    the process. *)
