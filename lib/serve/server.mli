(** Unix-domain-socket serve loop.

    One session at a time: the accept loop takes a client, answers its
    requests in order, and returns to accepting when the client quits
    or disconnects. Both the accept wait and the per-line read are
    select-polled against the {!request_stop} flag, so a SIGINT turned
    into [request_stop] by the frontend drains gracefully — the
    in-flight request finishes, its reply is written, and the loop
    exits after logging a final {!Metrics.render} snapshot (one log
    line per exposition line) and removing the socket file.

    The server never prints: all operational chatter goes through the
    [log] callback supplied by the frontend (lib code stays pure). *)

type t

val create : socket_path:string -> cache:Cache.t -> log:(string -> unit) -> t

val request_stop : t -> unit
(** Async-signal-safe (a single atomic store): callable from a signal
    handler. The loop notices within one poll interval (0.2s). *)

val run : t -> unit
(** Bind, listen, and serve until {!request_stop}. An existing socket
    file at the path is unlinked first (a stale one would make [bind]
    fail); the file is unlinked again on exit. The frontend should
    ignore SIGPIPE so an abruptly-vanishing client surfaces as
    [EPIPE] (handled as a disconnect) rather than killing the
    process. *)
