type request =
  | Load of { id : string; path : string }
  | Solve of { id : string; obj : [ `Nash | `Opt ] }
  | Assign of { id : string; obj : [ `Nash | `Opt ]; method_ : [ `Fw | `Msa ] }
  | Optop of { id : string }
  | Mop of { id : string }
  | Induced of { id : string; alpha : float }
  | Sweep_point of { id : string; alpha : float }
  | Sweep_range of { id : string; lo : float; hi : float; samples : int }
  | Stats
  | Metrics
  | Ping
  | Quit

type line = { deadline_ms : int option; request : request }

let words s =
  String.split_on_char ' ' s |> List.map String.trim |> List.filter (fun w -> w <> "")

let float_arg w = float_of_string_opt w

let parse_request = function
  | [ "load"; id; path ] -> Ok (Load { id; path })
  | [ "solve"; id; "nash" ] -> Ok (Solve { id; obj = `Nash })
  | [ "solve"; id; "opt" ] -> Ok (Solve { id; obj = `Opt })
  | [ "solve"; _; obj ] -> Error (Printf.sprintf "solve expects nash|opt, got %S" obj)
  | "assign" :: id :: rest -> (
      let obj_of = function
        | "nash" -> Some `Nash
        | "opt" -> Some `Opt
        | _ -> None
      in
      let method_of = function "fw" -> Some `Fw | "msa" -> Some `Msa | _ -> None in
      match rest with
      | [ o ] -> (
          match obj_of o with
          | Some obj -> Ok (Assign { id; obj; method_ = `Fw })
          | None -> Error (Printf.sprintf "assign expects nash|opt, got %S" o))
      | [ o; m ] -> (
          match (obj_of o, method_of m) with
          | Some obj, Some method_ -> Ok (Assign { id; obj; method_ })
          | None, _ -> Error (Printf.sprintf "assign expects nash|opt, got %S" o)
          | _, None -> Error (Printf.sprintf "assign expects fw|msa, got %S" m))
      | _ -> Error "assign expects 'assign ID (nash|opt) [fw|msa]'")
  | [ "optop"; id ] -> Ok (Optop { id })
  | [ "mop"; id ] -> Ok (Mop { id })
  | [ "induced"; id; a ] -> (
      match float_arg a with
      | Some alpha when 0.0 <= alpha && alpha <= 1.0 -> Ok (Induced { id; alpha })
      | _ -> Error (Printf.sprintf "induced expects an alpha in [0, 1], got %S" a))
  | [ "sweep"; id; a ] -> (
      match float_arg a with
      | Some alpha when 0.0 <= alpha && alpha <= 1.0 -> Ok (Sweep_point { id; alpha })
      | _ -> Error (Printf.sprintf "sweep expects an alpha in [0, 1], got %S" a))
  | [ "sweep"; id; lo; hi; n ] -> (
      match (float_arg lo, float_arg hi, int_of_string_opt n) with
      | Some lo, Some hi, Some samples
        when 0.0 <= lo && lo <= hi && hi <= 1.0 && samples >= 2 ->
          Ok (Sweep_range { id; lo; hi; samples })
      | _ -> Error "sweep range expects 'sweep ID LO HI N' with 0 <= LO <= HI <= 1 and N >= 2")
  | [ "stats" ] -> Ok Stats
  | [ "metrics" ] -> Ok Metrics
  | [ "ping" ] -> Ok Ping
  | [ "quit" ] -> Ok Quit
  | w :: _ -> Error (Printf.sprintf "unknown or malformed request %S" w)
  | [] -> Error "empty request"

let parse_line raw =
  let trimmed = String.trim raw in
  if trimmed = "" || trimmed.[0] = '#' then Ok None
  else
    let deadline, rest =
      if trimmed.[0] = '@' then
        match String.index_opt trimmed ' ' with
        | Some i -> (
            let d = String.sub trimmed 1 (i - 1) in
            match int_of_string_opt d with
            | Some ms when ms >= 0 ->
                (Ok (Some ms), String.sub trimmed i (String.length trimmed - i))
            | _ -> (Error (Printf.sprintf "bad deadline %S (expected @MILLISECONDS)" d), "")
          )
        | None -> (Error "a deadline prefix needs a request after it", "")
      else (Ok None, trimmed)
    in
    match deadline with
    | Error m -> Error m
    | Ok deadline_ms -> (
        match parse_request (words rest) with
        | Ok request -> Ok (Some { deadline_ms; request })
        | Error m -> Error m)

let instance_id = function
  | Load { id; _ } | Solve { id; _ } | Assign { id; _ } | Optop { id } | Mop { id }
  | Induced { id; _ } | Sweep_point { id; _ } | Sweep_range { id; _ } ->
      Some id
  | Stats | Metrics | Ping | Quit -> None

let request_kind = function
  | Load _ -> "load"
  | Solve _ -> "solve"
  | Assign _ -> "assign"
  | Optop _ -> "optop"
  | Mop _ -> "mop"
  | Induced _ -> "induced"
  | Sweep_point _ | Sweep_range _ -> "sweep"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Ping -> "ping"
  | Quit -> "quit"

let float_str = Printf.sprintf "%.9g"

(* Memo keys embed every parameter the reply depends on, including the
   ambient solver engines — the network engine (a column-gen and an
   exhaustive solve of the same instance are different cache lines) and
   the links water-filling engine (a closed-form and a bisection solve
   must never alias in a warm cache). Parameters are canonical ([%h]) so
   numerically equal requests share a key. *)
let memo_key req =
  let engine =
    match Sgr_network.Equilibrate.default_engine () with
    | Sgr_network.Equilibrate.Column_generation -> "cg"
    | Sgr_network.Equilibrate.Exhaustive -> "ex"
  in
  let links_engine =
    match Sgr_links.Links.default_engine () with
    | `Auto -> "auto"
    | `Closed_form -> "cf"
    | `Bisection -> "bi"
  in
  let key fmt =
    Printf.ksprintf (fun body -> Some (body ^ "|" ^ engine ^ "|" ^ links_engine)) fmt
  in
  match req with
  | Load _ | Stats | Metrics | Ping | Quit -> None
  | Solve { obj = `Nash; _ } -> key "solve|nash"
  | Solve { obj = `Opt; _ } -> key "solve|opt"
  | Assign { obj; method_; _ } ->
      key "assign|%s|%s"
        (match obj with `Nash -> "nash" | `Opt -> "opt")
        (match method_ with `Fw -> "fw" | `Msa -> "msa")
  | Optop _ -> key "optop"
  | Mop _ -> key "mop"
  | Induced { alpha; _ } -> key "induced|%h" alpha
  | Sweep_point { alpha; _ } -> key "sweep|%h" alpha
  | Sweep_range { lo; hi; samples; _ } -> key "sweep|%h|%h|%d" lo hi samples

let error_reply cls msg =
  let cls =
    match cls with `Parse -> "parse" | `Solve -> "solve" | `Timeout -> "timeout" | `Io -> "io"
  in
  let flat = String.map (function '\n' | '\r' -> ' ' | c -> c) msg in
  Printf.sprintf "error %s: %s" cls flat
