(** The line-oriented request protocol.

    One request per line; one reply line per request. Blank lines and
    [#] comments are skipped without a reply. Grammar (see
    docs/serving.md for semantics and examples):

    {v
    line     := [ '@'MS ' ' ] request        deadline in milliseconds
    request  := load ID PATH
              | solve ID (nash|opt)
              | assign ID (nash|opt) [fw|msa]
              | optop ID
              | mop ID
              | induced ID ALPHA
              | sweep ID ALPHA
              | sweep ID LO HI N
              | stats | metrics | ping | quit
    reply    := ok KIND [k=v ...]
              | error (parse|solve|timeout|io): MESSAGE
    v}

    Replies are a single line, except [metrics], whose reply is the
    header [ok metrics lines=N] followed by exactly [N] further lines
    of Prometheus-style text exposition (see docs/serving.md); floats
    are printed with [%.9g]. *)

type request =
  | Load of { id : string; path : string }
  | Solve of { id : string; obj : [ `Nash | `Opt ] }
  | Assign of { id : string; obj : [ `Nash | `Opt ]; method_ : [ `Fw | `Msa ] }
  | Optop of { id : string }
  | Mop of { id : string }
  | Induced of { id : string; alpha : float }
  | Sweep_point of { id : string; alpha : float }
  | Sweep_range of { id : string; lo : float; hi : float; samples : int }
  | Stats
  | Metrics
  | Ping
  | Quit

type line = { deadline_ms : int option; request : request }

val parse_line : string -> (line option, string) result
(** [Ok None] for blank/comment lines; [Error msg] for a malformed
    request (the engine turns it into an [error parse:] reply). *)

val instance_id : request -> string option
(** The instance an exclusively-sequential batch group is keyed on;
    [None] for session-level requests
    ([stats]/[metrics]/[ping]/[quit]). *)

val request_kind : request -> string
(** Stable kind label ("load", "solve", …) used for per-kind latency
    counters and memo keys. *)

val memo_key : request -> string option
(** Canonical memo key for requests whose reply payload is a pure,
    deterministic function of the instance — [None] for [load] and the
    session-level requests, whose replies depend on cache state. The
    key embeds the active solver engine. *)

val float_str : float -> string
(** [%.9g] — the reply float format. *)

val error_reply : [ `Parse | `Solve | `Timeout | `Io ] -> string -> string
(** [error CLASS: message], with newlines flattened so the reply stays
    one line. *)
