module IF = Sgr_io.Instance_file
module Prng = Sgr_numerics.Prng
module W = Sgr_workloads.Workloads
module Obs = Sgr_obs.Obs
module Hist = Sgr_obs.Hist

type target = In_process of { cache : Cache.t; jobs : int option } | Socket of Client.t

type report = {
  requests : int;
  errors : int;
  wall_s : float;
  rps : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  memo_hit_rate : float;
}

(* Instance pool: two thirds parallel-links, one third small grid
   networks, sized so a single request stays well under a millisecond
   on a warm cache but exercises every solver entry point. *)
let write_instance ~dir ~index rng =
  let inst =
    if index mod 3 = 2 then IF.Network (W.grid_network rng ~rows:3 ~cols:3 ())
    else IF.Links (W.random_affine_links rng ~m:(4 + (index mod 4)) ())
  in
  let path = Filename.concat dir (Printf.sprintf "w%d.sgr" index) in
  Out_channel.with_open_text path (fun oc ->
      output_string oc
        (match inst with IF.Links t -> IF.print_links t | IF.Network n -> IF.print_network n));
  (path, match inst with IF.Links _ -> `Links | IF.Network _ -> `Network)

(* Alphas come from a 5-value grid so identical parameters recur and
   the memo actually gets hits at realistic reuse ratios. *)
let pick_alpha rng = float_of_int (Prng.int rng 5) /. 4.0

let verb_line rng kind id =
  match kind with
  | `Links -> (
      match Prng.int rng 5 with
      | 0 -> Printf.sprintf "solve %s nash" id
      | 1 -> Printf.sprintf "solve %s opt" id
      | 2 -> Printf.sprintf "optop %s" id
      | 3 -> Printf.sprintf "induced %s %g" id (pick_alpha rng)
      | _ -> Printf.sprintf "sweep %s %g" id (pick_alpha rng))
  | `Network -> (
      match Prng.int rng 4 with
      | 0 -> Printf.sprintf "solve %s nash" id
      | 1 -> Printf.sprintf "solve %s opt" id
      | 2 -> Printf.sprintf "mop %s" id
      | _ -> Printf.sprintf "induced %s %g" id (pick_alpha rng))

let generate ~dir ~seed ~instances ~requests ~reuse =
  if instances < 1 then invalid_arg "Loadgen.generate: instances must be >= 1";
  if requests < 0 then invalid_arg "Loadgen.generate: requests must be >= 0";
  if not (reuse >= 0.0 && reuse <= 1.0) then invalid_arg "Loadgen.generate: reuse must be in [0, 1]";
  let rng = Prng.create seed in
  let pool = Array.init instances (fun i -> write_instance ~dir ~index:i rng) in
  let loaded = Array.make instances false in
  let acc = ref [] in
  let current = ref None in
  for _ = 1 to requests do
    let i =
      match !current with
      | Some i when Prng.float rng < reuse -> i
      | _ -> Prng.int rng instances
    in
    current := Some i;
    let id = Printf.sprintf "w%d" i in
    let path, kind = pool.(i) in
    if not loaded.(i) then begin
      loaded.(i) <- true;
      acc := Printf.sprintf "load %s %s" id path :: !acc
    end;
    acc := verb_line rng kind id :: !acc
  done;
  List.rev !acc

let is_error reply = String.length reply >= 5 && String.equal (String.sub reply 0 5) "error"

let quantile_or_zero h q = match Hist.quantile h q with Some v -> v | None -> 0.0

(* The hit rate a stats reply reports, e.g. "... memo_hit_rate=0.42 ...". *)
let parse_hit_rate reply =
  let marker = " memo_hit_rate=" in
  let ml = String.length marker in
  let n = String.length reply in
  let rec find i =
    if i + ml > n then None
    else if String.equal (String.sub reply i ml) marker then Some (i + ml)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = match String.index_from_opt reply start ' ' with Some j -> j | None -> n in
      float_of_string_opt (String.sub reply start (stop - start))

let report_of ~requests ~errors ~wall_s ~latency ~memo_hit_rate =
  {
    requests;
    errors;
    wall_s;
    rps = (if wall_s > 0.0 then float_of_int requests /. wall_s else 0.0);
    p50_s = quantile_or_zero latency 0.5;
    p95_s = quantile_or_zero latency 0.95;
    p99_s = quantile_or_zero latency 0.99;
    memo_hit_rate;
  }

let run_in_process ?jobs cache lines =
  (* Fresh histograms so the quantiles cover exactly this replay. *)
  Hist.reset ();
  let t0 = Obs.now () in
  let replies = Engine.run_batch ?jobs cache lines in
  let wall_s = Obs.now () -. t0 in
  let latency =
    List.fold_left
      (fun acc (name, h) ->
        let prefix = "serve.request_seconds." in
        let pl = String.length prefix in
        if String.length name > pl && String.equal (String.sub name 0 pl) prefix then
          Hist.merge acc h
        else acc)
      (Hist.create ()) (Hist.snapshots ())
  in
  let errors = List.length (List.filter is_error replies) in
  report_of ~requests:(List.length replies) ~errors ~wall_s ~latency
    ~memo_hit_rate:(Cache.stats cache).Cache.memo_hit_rate

let run_socket client lines =
  let latency = Hist.create () in
  let requests = ref 0 and errors = ref 0 in
  let t0 = Obs.now () in
  List.iter
    (fun raw ->
      let t = Obs.now () in
      match Client.rpc client raw with
      | None -> ()
      | Some reply ->
          Hist.record latency (Obs.now () -. t);
          incr requests;
          if is_error reply then incr errors)
    lines;
  let wall_s = Obs.now () -. t0 in
  let memo_hit_rate =
    match Client.rpc client "stats" with
    | Some reply -> ( match parse_hit_rate reply with Some r -> r | None -> 0.0)
    | None -> 0.0
  in
  report_of ~requests:!requests ~errors:!errors ~wall_s ~latency ~memo_hit_rate

let run target lines =
  match target with
  | In_process { cache; jobs } -> run_in_process ?jobs cache lines
  | Socket client -> run_socket client lines

let gate r ~p99_max_s ~rps_min ~hit_rate_min =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  if r.errors > 0 then fail "%d error replies (expected none)" r.errors;
  if r.p99_s > p99_max_s then fail "p99 latency %.6gs exceeds the %.6gs bound" r.p99_s p99_max_s;
  if r.rps < rps_min then fail "throughput %.6g req/s is below the %.6g req/s floor" r.rps rps_min;
  if r.memo_hit_rate < hit_rate_min then
    fail "memo hit rate %.6g is below the %.6g floor" r.memo_hit_rate hit_rate_min;
  List.rev !fails
