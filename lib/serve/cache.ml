module IF = Sgr_io.Instance_file
module Obs = Sgr_obs.Obs
module Hist = Sgr_obs.Hist

type entry = { fingerprint : string; instance : IF.t; memo : (string, string) Hashtbl.t }

type t = {
  mutex : Mutex.t;
  lru : entry Lru.t;
  bindings : (string, string * string) Hashtbl.t;  (* id -> (path, fingerprint) *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  memo_hits : int Atomic.t;
  memo_misses : int Atomic.t;
}

type error = Io of string | Parse of string | Unknown_id of string

let c_hit = Obs.counter "serve.cache.hit"
let c_miss = Obs.counter "serve.cache.miss"
let c_evict = Obs.counter "serve.cache.eviction"
let c_memo_hit = Obs.counter "serve.memo.hit"
let c_memo_miss = Obs.counter "serve.memo.miss"

(* Latency split the memo exists to create: a hit is a mutex + hashtable
   probe, a cold solve runs the solver. Per-domain shards ([Hist.observe])
   keep recording safe from pool workers. *)
let h_memo_hit = Hist.histogram "serve.memo.hit_seconds"
let h_memo_cold = Hist.histogram "serve.memo.cold_seconds"

let create ~capacity =
  {
    mutex = Mutex.create ();
    lru = Lru.create ~capacity;
    bindings = Hashtbl.create 16;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    memo_hits = Atomic.make 0;
    memo_misses = Atomic.make 0;
  }

(* why: the cache mutex guards hashtable/LRU probes only — parsing and
   solving happen outside it (see [entry_of_file]) — so a worker parked
   here waits on other workers' O(1) probes, never on I/O. *)
let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f
[@@lint.allow "no-blocking-in-pool"]

let bump local obs =
  Atomic.incr local;
  Obs.incr obs

(* Parse [path] into a fresh entry. Runs outside the lock: parsing and
   freezing a big instance must not serialize unrelated requests.
   why (no-blocking-in-pool): the file read *is* the request's work on a
   cold load — the instance must come off disk exactly once before the
   solve, and doing it on the worker beats serializing every cold load
   through the accept domain. Local file, read once, memoized after. *)
let entry_of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error (Io m)
  | text -> (
      match IF.parse text with
      | Error m -> Error (Parse (path ^ ": " ^ m))
      | Ok instance ->
          let fingerprint = Fingerprint.of_instance instance in
          Ok { fingerprint; instance; memo = Hashtbl.create 16 })
[@@lint.allow "no-blocking-in-pool"]

(* Insert under the lock, preferring an already-cached entry with the
   same fingerprint (its memo table is warm). *)
let intern t ~id ~path fresh =
  locked t @@ fun () ->
  Hashtbl.replace t.bindings id (path, fresh.fingerprint);
  match Lru.find t.lru fresh.fingerprint with
  | Some cached ->
      bump t.hits c_hit;
      (cached, `Hit)
  | None ->
      bump t.misses c_miss;
      (match Lru.add t.lru fresh.fingerprint fresh with
      | Some _evicted -> bump t.evictions c_evict
      | None -> ());
      (fresh, `Miss)

let load t ~id ~path =
  match entry_of_file path with
  | Error _ as e -> e
  | Ok fresh -> Ok (intern t ~id ~path fresh)

let resolve t ~id =
  let binding = locked t (fun () -> Hashtbl.find_opt t.bindings id) in
  match binding with
  | None -> Error (Unknown_id id)
  | Some (path, fp) -> (
      let cached =
        locked t (fun () ->
            match Lru.find t.lru fp with
            | Some e ->
                bump t.hits c_hit;
                Some e
            | None -> None)
      in
      match cached with
      | Some e -> Ok e
      | None -> (
          (* Evicted: reload from the bound path. *)
          match entry_of_file path with
          | Error _ as e -> e
          | Ok fresh -> Ok (fst (intern t ~id ~path fresh))))

let memo t entry ~key ~compute =
  let t0 = Obs.now () in
  let cached = locked t (fun () -> Hashtbl.find_opt entry.memo key) in
  match cached with
  | Some payload ->
      bump t.memo_hits c_memo_hit;
      Hist.observe h_memo_hit (Obs.now () -. t0);
      payload
  | None ->
      bump t.memo_misses c_memo_miss;
      let payload = compute () in
      locked t (fun () -> Hashtbl.replace entry.memo key payload);
      Hist.observe h_memo_cold (Obs.now () -. t0);
      payload

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  memo_hits : int;
  memo_misses : int;
  memo_hit_rate : float;
  occupancy : float;
}

let stats t =
  locked t @@ fun () ->
  let entries = Lru.length t.lru and capacity = Lru.capacity t.lru in
  let memo_hits = Atomic.get t.memo_hits and memo_misses = Atomic.get t.memo_misses in
  let memo_lookups = memo_hits + memo_misses in
  {
    entries;
    capacity;
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    memo_hits;
    memo_misses;
    memo_hit_rate =
      (if memo_lookups = 0 then 0.0 else float_of_int memo_hits /. float_of_int memo_lookups);
    occupancy = float_of_int entries /. float_of_int capacity;
  }
