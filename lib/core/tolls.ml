module Links = Sgr_links.Links
module Net = Sgr_network.Network
module Eq = Sgr_network.Equilibrate
module Obj = Sgr_network.Objective
module L = Sgr_latency.Latency

(* Tolls are first-class constant latency shifts now: [L.shift_intercept]
   keeps affine/constant/polynomial latencies in closed form (so the
   solvers keep their fast inverses and the closed-form links engine its
   reduction) and wraps the rest. Marginal-cost tolls are nonnegative by
   construction, but guard anyway so a denormal negative product cannot
   reach the constructor. *)
let add_toll_exact lat toll = if toll <= 0.0 then lat else L.shift_intercept toll lat

let links_tolls instance =
  let opt = (Links.opt instance).assignment in
  Array.mapi (fun i o -> o *. L.deriv instance.Links.latencies.(i) o) opt

let tolled_links instance =
  let tolls = links_tolls instance in
  let latencies = Array.mapi (fun i lat -> add_toll_exact lat tolls.(i)) instance.Links.latencies in
  Links.make latencies ~demand:instance.Links.demand

let links_outcome instance =
  let tolled = tolled_links instance in
  let eq = (Links.nash tolled).assignment in
  (eq, Links.cost instance eq)

let network_tolls ?tol net =
  let opt = (Eq.solve ?tol Obj.System_optimum net).Eq.edge_flow in
  Array.mapi (fun e o -> o *. L.deriv net.Net.latencies.(e) o) opt

let tolled_network ?tol net =
  let tolls = network_tolls ?tol net in
  let latencies = Array.mapi (fun e lat -> add_toll_exact lat tolls.(e)) net.Net.latencies in
  Net.make net.Net.graph ~latencies ~commodities:net.Net.commodities

let network_outcome ?tol net =
  let tolled = tolled_network ?tol net in
  let eq = (Eq.solve ?tol Obj.Wardrop tolled).Eq.edge_flow in
  (eq, Net.cost net eq)
