module Links = Sgr_links.Links
module L = Sgr_latency.Latency
module Tol = Sgr_numerics.Tolerance
module Minimize = Sgr_numerics.Minimize

type candidate = { i0 : int; epsilon : float; cost : float }

type result = {
  strategy : float array;
  induced_cost : float;
  predicted_cost : float;
  best : candidate;
  candidates : candidate list;
}

let slope_intercept lat =
  match L.kind lat with
  | L.Affine { slope; intercept } -> Some (slope, intercept)
  | L.Constant c -> Some (0.0, c)
  | _ -> None

let is_common_slope ?(eps = 1e-12) instance =
  let params = Array.map slope_intercept instance.Links.latencies in
  Array.for_all Option.is_some params
  &&
  match params.(0) with
  | Some (a0, _) ->
      a0 > 0.0
      && Array.for_all
           (function Some (a, _) -> Float.abs (a -. a0) <= eps *. Float.max 1.0 a0 | None -> false)
           params
  | None -> false

let solve ?(grid = 64) instance ~alpha =
  if not (0.0 <= alpha && alpha <= 1.0) then
    invalid_arg "Linear_exact.solve: alpha must be in [0, 1]";
  if not (is_common_slope instance) then
    invalid_arg "Linear_exact.solve: latencies must share one positive slope";
  let m = Links.num_links instance in
  let r = instance.Links.demand in
  let budget = alpha *. r in
  let intercept i = snd (Option.get (slope_intercept instance.Links.latencies.(i))) in
  let order = Array.init m (fun i -> i) in
  Array.sort (fun i j -> compare (intercept i, i) (intercept j, j)) order;
  let sorted_lats = Array.map (fun i -> instance.Links.latencies.(i)) order in
  let tiny = 1e-10 *. Float.max 1.0 r in
  (* Induced cost of the candidate (i0, eps): prefix links settle at the
     Nash of (1-alpha)r + eps, suffix links are frozen at the optimum of
     budget - eps. None when infeasible. Also returns the data needed to
     rebuild the Leader strategy. *)
  let evaluate i0 eps =
    let prefix = Array.sub sorted_lats 0 i0 in
    let prefix_inst = Links.make prefix ~demand:(((1.0 -. alpha) *. r) +. eps) in
    let pn = Links.nash prefix_inst in
    let all_loaded = Array.for_all (fun x -> x > tiny) pn.assignment in
    if not all_loaded then None
    else if i0 = m then
      Some (Links.cost prefix_inst pn.assignment, pn, None)
    else begin
      let suffix = Array.sub sorted_lats i0 (m - i0) in
      let suffix_inst = Links.make suffix ~demand:(Tol.clamp_nonneg (budget -. eps)) in
      let so = Links.opt suffix_inst in
      let min_suffix_latency =
        Array.mapi (fun j x -> L.eval suffix.(j) x) so.assignment
        |> Array.fold_left Float.min Float.infinity
      in
      if pn.level <= min_suffix_latency +. (Tol.check_eps *. Float.max 1.0 pn.level) then
        Some (Links.cost prefix_inst pn.assignment +. Links.cost suffix_inst so.assignment, pn, Some so)
      else None
    end
  in
  let cost_only i0 eps =
    match evaluate i0 eps with Some (c, _, _) -> c | None -> Float.infinity
  in
  (* Feasible eps values form an interval (loading constraint is monotone
     increasing in eps, the latency constraint monotone decreasing); locate
     it from a feasible grid point and refine its edges by bisection. *)
  let feasible i0 eps = Option.is_some (evaluate i0 eps) in
  let feasible_interval i0 =
    if i0 = m then if feasible m budget then Some (budget, budget) else None
    else begin
      let points = List.init (grid + 1) (fun k -> budget *. float_of_int k /. float_of_int grid) in
      match List.find_opt (feasible i0) points with
      | None -> None
      | Some seed ->
          let edge ~ok ~bad =
            (* Invariant: [ok] feasible, [bad] infeasible (or equal). *)
            let ok = ref ok and bad = ref bad in
            for _ = 1 to 60 do
              let mid = 0.5 *. (!ok +. !bad) in
              if feasible i0 mid then ok := mid else bad := mid
            done;
            !ok
          in
          let lo = if feasible i0 0.0 then 0.0 else edge ~ok:seed ~bad:0.0 in
          let hi = if feasible i0 budget then budget else edge ~ok:seed ~bad:budget in
          Some (lo, hi)
    end
  in
  let candidates =
    List.filter_map
      (fun i0 ->
        (* Each candidate prefix runs a golden-section search over full
           water-filling solves; checkpoint between candidates so a
           deadline cuts the sweep, not just the inner loops. *)
        Sgr_obs.Cancel.check ();
        match feasible_interval i0 with
        | None -> None
        | Some (lo, hi) ->
            let epsilon, cost =
              if hi -. lo <= 1e-14 then (lo, cost_only i0 lo)
              else Minimize.golden ~f:(cost_only i0) ~lo ~hi ()
            in
            Some { i0; epsilon; cost })
      (List.init m (fun k -> k + 1))
  in
  (* Theorem 2.4 guarantees a feasible partition exists; reaching this
     is a solver bug, and the message says so. *)
  if candidates = [] then
    (failwith "Linear_exact.solve: no feasible partition (internal error)")
    [@lint.allow "no-untyped-failure"];
  let best =
    List.fold_left (fun acc c -> if c.cost < acc.cost then c else acc) (List.hd candidates)
      (List.tl candidates)
  in
  (* Rebuild the Leader strategy for the best candidate. *)
  let strategy = Array.make m 0.0 in
  let predicted_cost =
    match evaluate best.i0 best.epsilon with
    (* [best] came from [feasible_interval], so re-evaluating it at its
       own epsilon cannot fail. *)
    | None -> (assert false) [@lint.allow "no-untyped-failure"]
    | Some (cost, pn, so) ->
        let prefix_total = ((1.0 -. alpha) *. r) +. best.epsilon in
        Array.iteri
          (fun j x ->
            if prefix_total > 0.0 then
              strategy.(order.(j)) <- best.epsilon *. x /. prefix_total)
          pn.assignment;
        (match so with
        | None -> ()
        | Some so ->
            Array.iteri (fun j x -> strategy.(order.(best.i0 + j)) <- x) so.assignment);
        cost
  in
  let induced_cost = Links.stackelberg_cost instance ~strategy in
  { strategy; induced_cost; predicted_cost; best; candidates }
