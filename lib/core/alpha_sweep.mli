(** The a-posteriori anarchy cost as a function of the Leader's share.

    Expression (2) of the paper attaches to every Stackelberg scheduling
    instance [(M, r, α)] the factor [(M,r,α)] — the best ratio
    [C(S+T)/C(O)] any Leader controlling [α·r] can force. This module
    traces that curve for parallel-links instances:

    - for [α >= β_M] the value is exactly 1 (Corollary 2.2);
    - for [α < β_M] the value is approximated from below the hardness:
      by Theorem 2.4's exact solver when the instance has common-slope
      linear latencies, by grid search on small instances otherwise, and
      by the best of LLF/SCALE as a cheap upper bound in general.

    The resulting series is what a plot of "price paid vs control owned"
    would show — the figure-style artifact for the paper's Expression (2)
    discussion. *)

type method_used = Exact_threshold | Linear_exact | Grid_search | Heuristic_upper_bound

type point = {
  alpha : float;
  ratio : float;  (** Best known [C(S+T)/C(O)] at this [α]. *)
  method_used : method_used;
}

type curve = {
  beta : float;  (** [β_M] — where the curve hits 1 exactly. *)
  points : point list;  (** Sampled in increasing [α]. *)
}

val ratio_of : opt_cost:float -> float -> float
(** [ratio_of ~opt_cost cost] is [cost /. opt_cost], with the degenerate
    zero-optimum case made explicit: [1.0] when both costs are (near)
    zero, [infinity] when [opt_cost] is zero but [cost] is positive —
    the Leader pays something where paying nothing was possible. *)

val at : ?grid_resolution:int -> Sgr_links.Links.t -> alpha:float -> point
(** One point of the curve, computed exactly as {!run} would compute the
    sample at this [alpha] (so a served point query and a sweep sample
    agree byte for byte). Runs OpTop once per call; use {!range} to
    amortize it over many points.
    @raise Invalid_argument unless [0 <= alpha <= 1]. *)

val range :
  ?jobs:int -> ?grid_resolution:int -> Sgr_links.Links.t ->
  lo:float -> hi:float -> samples:int -> curve
(** [samples] evenly spaced values of [α] in [[lo, hi]] (endpoints
    included). {!run} is [range ~lo:0.0 ~hi:1.0].
    @raise Invalid_argument unless [0 <= lo <= hi <= 1] and
    [samples >= 2]. *)

val run : ?jobs:int -> ?samples:int -> ?grid_resolution:int -> Sgr_links.Links.t -> curve
(** [run t] samples [samples] (default 21) evenly spaced values of [α] in
    [[0, 1]]. Instances with more than 6 links fall back to the heuristic
    upper bound below [β_M]. [jobs] (default {!Sgr_par.Pool.default_jobs},
    itself [1] unless [SGR_JOBS] or [--jobs] says otherwise) distributes
    the α points over a domain pool; the curve is byte-identical at any
    job count. *)

val pigou_closed_form : float -> float
(** The analytically optimal ratio for Pigou's example:
    [((1-α)² + α) / (3/4)] for [α <= 1/2] and [1] beyond — used to
    validate the sweep machinery in tests and experiments. *)
