module Links = Sgr_links.Links

type method_used = Exact_threshold | Linear_exact | Grid_search | Heuristic_upper_bound

type point = { alpha : float; ratio : float; method_used : method_used }
type curve = { beta : float; points : point list }

let ratio_of ~opt_cost cost =
  if opt_cost > 0.0 then cost /. opt_cost
  else if Float.abs cost <= 1e-12 then 1.0
  else Float.infinity

(* One α evaluated against a precomputed OpTop result. Shared by the
   full sweep and the single-point entry so a served `sweep` query and a
   sweep sample at the same α are byte-identical. No per-point Obs.span
   here: this runs on pool workers, where spans are dropped, so a span
   would make the recorded trace depend on the job count and break PR
   3's jobs-invariant observability guarantee. *)
let point_of ~beta ~opt_cost ~common_slope ~m ~grid_resolution instance alpha =
  let ratio_of cost = ratio_of ~opt_cost cost in
  if alpha >= beta -. 1e-12 then { alpha; ratio = 1.0; method_used = Exact_threshold }
  else if common_slope then
    let r = Linear_exact.solve instance ~alpha in
    { alpha; ratio = ratio_of r.Linear_exact.induced_cost; method_used = Linear_exact }
  else if m <= 6 then
    let r = Brute_force.optimal_strategy ~resolution:grid_resolution instance ~alpha in
    { alpha; ratio = ratio_of r.Brute_force.induced_cost; method_used = Grid_search }
  else begin
    let llf = Strategies.llf instance ~alpha in
    let scale = Strategies.scale instance ~alpha in
    let best = Float.min llf.Strategies.induced_cost scale.Strategies.induced_cost in
    { alpha; ratio = ratio_of best; method_used = Heuristic_upper_bound }
  end

let at ?(grid_resolution = 32) instance ~alpha =
  if not (0.0 <= alpha && alpha <= 1.0) then invalid_arg "Alpha_sweep.at: alpha not in [0, 1]";
  let optop = Optop.run instance in
  point_of ~beta:optop.Optop.beta ~opt_cost:optop.Optop.optimum_cost
    ~common_slope:(Linear_exact.is_common_slope instance)
    ~m:(Links.num_links instance) ~grid_resolution instance alpha

let range ?jobs ?(grid_resolution = 32) instance ~lo ~hi ~samples =
  if samples < 2 then invalid_arg "Alpha_sweep.range: need at least two samples";
  if not (0.0 <= lo && lo <= hi && hi <= 1.0) then
    invalid_arg "Alpha_sweep.range: need 0 <= lo <= hi <= 1";
  Sgr_obs.Obs.span "alpha_sweep.run" @@ fun () ->
  let optop = Optop.run instance in
  let beta = optop.Optop.beta in
  let opt_cost = optop.Optop.optimum_cost in
  let m = Links.num_links instance in
  let common_slope = Linear_exact.is_common_slope instance in
  let point_at alpha =
    point_of ~beta ~opt_cost ~common_slope ~m ~grid_resolution instance alpha
  in
  (* Each α point is independent; results are collected by index, so the
     curve is identical at any job count. *)
  let alphas =
    Array.init samples (fun k ->
        lo +. ((hi -. lo) *. (float_of_int k /. float_of_int (samples - 1))))
  in
  let points = Array.to_list (Sgr_par.Pool.map ?jobs point_at alphas) in
  { beta; points }

let run ?jobs ?(samples = 21) ?(grid_resolution = 32) instance =
  if samples < 2 then invalid_arg "Alpha_sweep.run: need at least two samples";
  range ?jobs ~grid_resolution instance ~lo:0.0 ~hi:1.0 ~samples

let pigou_closed_form alpha =
  if alpha >= 0.5 then 1.0
  else begin
    (* The best the Leader can do is park her entire αr on the constant
       link; the Followers then equalize on the linear link alone. *)
    let cost = ((1.0 -. alpha) ** 2.0) +. alpha in
    cost /. 0.75
  end
