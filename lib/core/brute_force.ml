module Links = Sgr_links.Links

type result = { strategy : float array; induced_cost : float; evaluated : int }

let optimal_strategy ?(resolution = 40) instance ~alpha =
  if not (0.0 <= alpha && alpha <= 1.0) then
    invalid_arg "Brute_force.optimal_strategy: alpha must be in [0, 1]";
  let m = Links.num_links instance in
  if m > 6 then invalid_arg "Brute_force.optimal_strategy: too many links for a grid";
  let budget = alpha *. instance.Links.demand in
  let chunk = budget /. float_of_int resolution in
  let best_cost = ref Float.infinity in
  let best = ref (Array.make m 0.0) in
  let evaluated = ref 0 in
  let strategy = Array.make m 0.0 in
  (* Enumerate compositions of [resolution] chunks into m parts. *)
  let rec place link remaining =
    (* The composition count grows as C(resolution + m - 1, m - 1); a
       serving deadline must be able to cut the enumeration short. *)
    Sgr_obs.Cancel.check ();
    if link = m - 1 then begin
      strategy.(link) <- float_of_int remaining *. chunk;
      incr evaluated;
      let cost = Links.stackelberg_cost instance ~strategy in
      if cost < !best_cost then begin
        best_cost := cost;
        best := Array.copy strategy
      end
    end
    else
      for here = 0 to remaining do
        strategy.(link) <- float_of_int here *. chunk;
        place (link + 1) (remaining - here)
      done
  in
  if budget <= 0.0 then begin
    incr evaluated;
    best_cost := Links.stackelberg_cost instance ~strategy
  end
  else place 0 resolution;
  { strategy = !best; induced_cost = !best_cost; evaluated = !evaluated }

let can_reach_optimum ?resolution ?(eps = Sgr_numerics.Tolerance.check_eps) instance ~alpha =
  let { induced_cost; _ } = optimal_strategy ?resolution instance ~alpha in
  let opt_cost = Links.cost instance (Links.opt instance).assignment in
  induced_cost <= opt_cost +. (eps *. Float.max 1.0 opt_cost)
