module Net = Sgr_network.Network
module Equilibrate = Sgr_network.Equilibrate
module Objective = Sgr_network.Objective
module G = Sgr_graph
module Vec = Sgr_numerics.Vec
module Tol = Sgr_numerics.Tolerance
module Obs = Sgr_obs.Obs

let c_runs = Obs.counter "mop.runs"

type commodity_report = {
  index : int;
  on_shortest : bool array;
  free_flow : float;
  controlled : float;
  leader_edge_flow : float array;
  leader_paths : (G.Paths.t * float) list;
  follower_paths : (G.Paths.t * float) list;
}

type result = {
  beta : float;
  beta_weak : float;
  leader_edge_flow : float array;
  follower_demands : float array;
  per_commodity : commodity_report array;
  opt_edge_flow : float array;
  opt_cost : float;
  nash_cost : float;
  induced : Induced.outcome;
}

let per_commodity_edge_flows net (sol : Equilibrate.solution) =
  let m = G.Digraph.num_edges net.Net.graph in
  Array.mapi
    (fun i flows ->
      let edge = Array.make m 0.0 in
      Array.iteri
        (fun j amount -> List.iter (fun e -> edge.(e) <- edge.(e) +. amount) sol.paths.(i).(j))
        flows;
      edge)
    sol.path_flows

let run ?(tol = 1e-9) ?(eps = 1e-6) net =
  Obs.incr c_runs;
  Obs.span "mop.solve" @@ fun () ->
  let g = net.Net.graph in
  let m = G.Digraph.num_edges g in
  let k = Array.length net.Net.commodities in
  (* Step 1: the optimum and the edge costs it induces. *)
  let opt_sol = Obs.span "mop.optimum" (fun () -> Equilibrate.solve ~tol Objective.System_optimum net) in
  let opt_edge_flow = opt_sol.edge_flow in
  let weights = Net.edge_latencies net opt_edge_flow in
  let commodity_flows = per_commodity_edge_flows net opt_sol in
  (* Steps 2–5 per commodity. *)
  let per_commodity =
    Array.init k (fun i ->
        Obs.span "mop.commodity" @@ fun () ->
        (* Deadline checkpoint between commodities; the equilibrium
           solves above and below checkpoint per sweep/round. *)
        Sgr_obs.Cancel.check ();
        let c = net.Net.commodities.(i) in
        let on_shortest =
          Obs.span "mop.subgraph" (fun () ->
              G.Dijkstra.shortest_edge_subgraph ~eps g ~weights ~src:c.Net.src ~dst:c.Net.dst)
        in
        (* Free flow: max flow inside the shortest subgraph, capacitated by
           this commodity's optimal edge flow (footnote 5). *)
        let capacities =
          Array.init m (fun e -> if on_shortest.(e) then commodity_flows.(i).(e) else 0.0)
        in
        let mf =
          Obs.span "mop.maxflow" (fun () ->
              G.Maxflow.solve g ~capacities ~src:c.Net.src ~dst:c.Net.dst)
        in
        let free_flow = Float.min mf.value c.Net.demand in
        let leader_edge_flow =
          Array.init m (fun e -> Tol.clamp_nonneg (commodity_flows.(i).(e) -. mf.flow.(e)))
        in
        let leader_paths =
          Obs.span "mop.decompose" (fun () ->
              G.Flow.decompose g ~flow:leader_edge_flow ~src:c.Net.src ~dst:c.Net.dst)
        in
        let follower_paths =
          Obs.span "mop.decompose" (fun () ->
              G.Flow.decompose g ~flow:mf.flow ~src:c.Net.src ~dst:c.Net.dst)
        in
        {
          index = i;
          on_shortest;
          free_flow;
          controlled = Tol.clamp_nonneg (c.Net.demand -. free_flow);
          leader_edge_flow;
          leader_paths;
          follower_paths;
        })
  in
  let leader_edge_flow = Array.make m 0.0 in
  Array.iter
    (fun (rep : commodity_report) -> Vec.axpy 1.0 rep.leader_edge_flow leader_edge_flow)
    per_commodity;
  let follower_demands = Array.map (fun rep -> rep.free_flow) per_commodity in
  let total = Net.total_demand net in
  let controlled = Array.fold_left (fun acc rep -> acc +. rep.controlled) 0.0 per_commodity in
  let beta = if total > 0.0 then controlled /. total else 0.0 in
  let beta_weak =
    Array.fold_left
      (fun acc (rep : commodity_report) ->
        let r_i = net.Net.commodities.(rep.index).Net.demand in
        if r_i > 0.0 then Float.max acc (rep.controlled /. r_i) else acc)
      0.0 per_commodity
  in
  let opt_cost = Net.cost net opt_edge_flow in
  let nash_sol = Obs.span "mop.nash" (fun () -> Equilibrate.solve ~tol Objective.Wardrop net) in
  let nash_cost = Net.cost net nash_sol.edge_flow in
  let induced = Induced.equilibrium ~tol net ~leader_edge_flow ~follower_demands in
  {
    beta;
    beta_weak;
    leader_edge_flow;
    follower_demands;
    per_commodity;
    opt_edge_flow;
    opt_cost;
    nash_cost;
    induced;
  }

let beta ?tol ?eps net = (run ?tol ?eps net).beta

let verify_minimality ?(tol = 1e-9) ?(delta = 0.05) net result =
  let ok = ref true in
  Array.iteri
    (fun i (rep : commodity_report) ->
      List.iter
        (fun (path, amount) ->
          if amount > 1e-6 then begin
            let release = Float.max 1e-3 (delta *. amount) in
            let release = Float.min release amount in
            (* Cap at the bottleneck leader flow along the path: releasing
               more than some edge carries would be absorbed by the
               nonnegativity clamp on that edge only, leaving a perturbed
               leader flow that is not a reroute of this path. *)
            let bottleneck =
              List.fold_left
                (fun acc e -> Float.min acc result.leader_edge_flow.(e))
                Float.infinity path
            in
            let release = Float.min release bottleneck in
            if release > 1e-9 then begin
              (* Hand [release] units of this Leader path back to the
                 Followers of commodity i. *)
              let leader = Array.copy result.leader_edge_flow in
              List.iter (fun e -> leader.(e) <- Tol.clamp_nonneg (leader.(e) -. release)) path;
              let follower_demands = Array.copy result.follower_demands in
              follower_demands.(i) <- follower_demands.(i) +. release;
              let outcome =
                Induced.equilibrium ~tol net ~leader_edge_flow:leader ~follower_demands
              in
              if
                outcome.Induced.cost <= result.opt_cost +. (1e-7 *. Float.max 1.0 result.opt_cost)
              then ok := false
            end
          end)
        rep.leader_paths)
    result.per_commodity;
  !ok
