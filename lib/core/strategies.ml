module Links = Sgr_links.Links
module L = Sgr_latency.Latency

type outcome = { strategy : float array; induced_cost : float; ratio_to_opt : float }

let evaluate instance ~strategy =
  let induced_cost = Links.stackelberg_cost instance ~strategy in
  let opt_cost = Links.cost instance (Links.opt instance).assignment in
  (* Same semantics as [Alpha_sweep.ratio_of]: a vanishing optimum with
     a genuinely positive induced cost is an unbounded ratio, not 1; the
     old exact [opt_cost = 0.0] test also exploded on denormal optima. *)
  let ratio_to_opt =
    if opt_cost > 0.0 then induced_cost /. opt_cost
    else if Float.abs induced_cost <= 1e-12 then 1.0
    else Float.infinity
  in
  { strategy; induced_cost; ratio_to_opt }

let check_alpha alpha =
  if not (0.0 <= alpha && alpha <= 1.0) then invalid_arg "Strategies: alpha must be in [0, 1]"

let llf instance ~alpha =
  check_alpha alpha;
  let m = Links.num_links instance in
  let opt = (Links.opt instance).assignment in
  let order = Array.init m (fun i -> i) in
  (* Decreasing latency at the optimum; stable on ties by index. *)
  let lat i = L.eval instance.Links.latencies.(i) opt.(i) in
  Array.sort (fun i j -> compare (lat j, i) (lat i, j)) order;
  let budget = ref (alpha *. instance.Links.demand) in
  let strategy = Array.make m 0.0 in
  Array.iter
    (fun i ->
      let take = Float.min !budget opt.(i) in
      strategy.(i) <- take;
      budget := !budget -. take)
    order;
  evaluate instance ~strategy

let scale instance ~alpha =
  check_alpha alpha;
  let opt = (Links.opt instance).assignment in
  evaluate instance ~strategy:(Array.map (fun o -> alpha *. o) opt)

let aloof instance =
  evaluate instance ~strategy:(Array.make (Links.num_links instance) 0.0)
