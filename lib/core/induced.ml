module Net = Sgr_network.Network
module Equilibrate = Sgr_network.Equilibrate
module Objective = Sgr_network.Objective
module Vec = Sgr_numerics.Vec

type outcome = {
  follower_edge_flow : float array;
  combined_edge_flow : float array;
  cost : float;
  wardrop_gap : float;
}

let equilibrium ?tol net ~leader_edge_flow ~follower_demands =
  Sgr_obs.Obs.span "induced.equilibrium" @@ fun () ->
  let g = net.Net.graph in
  if Array.length leader_edge_flow <> Sgr_graph.Digraph.num_edges g then
    invalid_arg "Induced.equilibrium: leader flow size mismatch";
  if Array.length follower_demands <> Array.length net.Net.commodities then
    invalid_arg "Induced.equilibrium: follower demand size mismatch";
  if not (Vec.all_nonneg ~eps:1e-9 leader_edge_flow) then
    invalid_arg "Induced.equilibrium: negative leader flow";
  if not (Vec.all_nonneg ~eps:1e-9 follower_demands) then
    invalid_arg "Induced.equilibrium: negative follower demand";
  let shifted = Net.shift net leader_edge_flow in
  (* [with_demands] skips [Network.make]'s per-commodity reachability
     Dijkstra — this call sits inside MOP's minimality sweeps. *)
  let shifted =
    Net.with_demands shifted (Array.map Sgr_numerics.Tolerance.clamp_nonneg follower_demands)
  in
  let sol = Equilibrate.solve ?tol Objective.Wardrop shifted in
  let combined = Vec.add leader_edge_flow sol.Equilibrate.edge_flow in
  {
    follower_edge_flow = sol.Equilibrate.edge_flow;
    combined_edge_flow = combined;
    cost = Net.cost net combined;
    wardrop_gap = sol.Equilibrate.gap;
  }

let cost_of_strategy ?tol net ~leader_edge_flow ~follower_demands =
  (equilibrium ?tol net ~leader_edge_flow ~follower_demands).cost
