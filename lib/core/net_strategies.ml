module Net = Sgr_network.Network
module Eq = Sgr_network.Equilibrate
module Obj = Sgr_network.Objective
module G = Sgr_graph
module Vec = Sgr_numerics.Vec

type outcome = {
  leader_edge_flow : float array;
  induced : Induced.outcome;
  ratio_to_opt : float;
}

let check_alpha alpha =
  if not (0.0 <= alpha && alpha <= 1.0) then invalid_arg "Net_strategies: alpha must be in [0, 1]"

let finish ?tol net ~leader_edge_flow ~follower_demands =
  let induced = Induced.equilibrium ?tol net ~leader_edge_flow ~follower_demands in
  let opt = Eq.solve ?tol Obj.System_optimum net in
  let opt_cost = Net.cost net opt.edge_flow in
  let ratio_to_opt = Alpha_sweep.ratio_of ~opt_cost induced.Induced.cost in
  { leader_edge_flow; induced; ratio_to_opt }

let scale ?tol net ~alpha =
  check_alpha alpha;
  let opt = Eq.solve ?tol Obj.System_optimum net in
  let leader_edge_flow = Vec.scale alpha opt.edge_flow in
  let follower_demands = Array.map (fun c -> (1.0 -. alpha) *. c.Net.demand) net.Net.commodities in
  finish ?tol net ~leader_edge_flow ~follower_demands

let llf ?tol net ~alpha =
  check_alpha alpha;
  let opt = Eq.solve ?tol Obj.System_optimum net in
  let costs = Net.edge_latencies net opt.edge_flow in
  let m = G.Digraph.num_edges net.Net.graph in
  let leader_edge_flow = Array.make m 0.0 in
  let follower_demands =
    Array.mapi
      (fun i c ->
        (* Saturate this commodity's optimal paths from the slowest down. *)
        let paths = opt.Eq.paths.(i) in
        let flows = opt.Eq.path_flows.(i) in
        let order = Array.init (Array.length paths) (fun j -> j) in
        let latency j = G.Paths.cost paths.(j) costs in
        Array.sort (fun a b -> compare (latency b, a) (latency a, b)) order;
        let budget = ref (alpha *. c.Net.demand) in
        Array.iter
          (fun j ->
            let take = Float.min !budget flows.(j) in
            if take > 0.0 then begin
              List.iter (fun e -> leader_edge_flow.(e) <- leader_edge_flow.(e) +. take) paths.(j);
              budget := !budget -. take
            end)
          order;
        (* Whatever part of the budget exceeds the optimal flow total stays
           unused; followers route the rest of the demand. *)
        (1.0 -. alpha) *. c.Net.demand +. !budget)
      net.Net.commodities
  in
  finish ?tol net ~leader_edge_flow ~follower_demands

let aloof ?tol net =
  let m = G.Digraph.num_edges net.Net.graph in
  let follower_demands = Array.map (fun c -> c.Net.demand) net.Net.commodities in
  finish ?tol net ~leader_edge_flow:(Array.make m 0.0) ~follower_demands
