module Links = Sgr_links.Links
module Vec = Sgr_numerics.Vec
module Obs = Sgr_obs.Obs

let c_rounds = Obs.counter "optop.rounds"

type round = {
  active : int array;
  demand : float;
  nash : float array;
  optimum : float array;
  frozen : int array;
}

type result = {
  beta : float;
  strategy : float array;
  rounds : round list;
  optimum : float array;
  optimum_cost : float;
  nash_cost : float;
  induced_cost : float;
}

let run ?(eps = 1e-8) instance =
  Obs.span "optop.solve" @@ fun () ->
  let m = Links.num_links instance in
  let r0 = instance.Links.demand in
  let opt = (Links.opt instance).assignment in
  let scale = Float.max 1.0 r0 in
  let strategy = Array.make m 0.0 in
  let rounds = ref [] in
  (* [active] and [r] shrink as under-loaded links are frozen at their
     optimal load and discarded (paper steps 2–4). *)
  let rec loop active r =
    if Array.length active = 0 || r <= eps *. scale then ()
    else begin
      (* Each freeze round solves a Nash subproblem; a request deadline
         must be able to pre-empt the round loop between them. *)
      Sgr_obs.Cancel.check ();
      Obs.incr c_rounds;
      let keep = Array.make m false in
      Array.iter (fun i -> keep.(i) <- true) active;
      let sub, index_map = Links.sub instance ~keep ~demand:r in
      let nash = (Links.nash sub).assignment in
      let opt_here = Array.map (fun i -> opt.(i)) index_map in
      let frozen = ref [] in
      Array.iteri
        (fun j i -> if nash.(j) < opt_here.(j) -. (eps *. scale) then frozen := i :: !frozen)
        index_map;
      let frozen = Array.of_list (List.rev !frozen) in
      rounds :=
        { active = Array.copy active; demand = r; nash; optimum = opt_here; frozen }
        :: !rounds;
      if Array.length frozen > 0 then begin
        Array.iter (fun i -> strategy.(i) <- opt.(i)) frozen;
        let removed = Array.fold_left (fun acc i -> acc +. opt.(i)) 0.0 frozen in
        let active' =
          Array.of_list
            (List.filter (fun i -> not (Array.mem i frozen)) (Array.to_list active))
        in
        loop active' (r -. removed)
      end
    end
  in
  loop (Array.init m (fun i -> i)) r0;
  let controlled = Vec.sum strategy in
  let beta = if r0 > 0.0 then controlled /. r0 else 0.0 in
  {
    beta;
    strategy;
    rounds = List.rev !rounds;
    optimum = opt;
    optimum_cost = Links.cost instance opt;
    nash_cost = Links.cost instance (Links.nash instance).assignment;
    induced_cost = Links.stackelberg_cost instance ~strategy;
  }

let beta ?eps instance = (run ?eps instance).beta
