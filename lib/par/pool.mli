(** A small fixed pool of worker domains for embarrassingly parallel
    solves (alpha-sweep points, per-commodity pricing, bench batches).

    Zero dependencies beyond the OCaml 5 stdlib ([Domain], [Mutex],
    [Condition], [Atomic]). A pool sized [jobs] uses [jobs - 1] spawned
    domains plus the calling domain; [jobs = 1] is a strict sequential
    fallback (no domains, no synchronization, plain [Array.map]).

    {b Determinism.} {!map_array} writes each result into its input's
    slot, so the output array — and therefore any solver built on it —
    is byte-identical whatever the job count or scheduling order. Only
    wall-clock time and observability {e traces} differ (spans/points
    from worker domains are skipped; see {!Sgr_obs.Obs}). Counters
    remain exact.

    {b Nesting.} A task body that calls back into the pool (e.g. a
    parallel alpha sweep whose points run a solver with parallel
    pricing) executes the inner map sequentially instead of
    deadlocking: the outer batch already owns the workers. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [jobs - 1] worker domains.
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f arr] is [Array.map f arr], with the applications
    distributed over the pool's domains. If any application raises, the
    remaining tasks still run and the first exception (in completion
    order) is re-raised in the caller. Must be called from the domain
    that created the pool; recursive calls from task bodies run
    sequentially. *)

val shutdown : t -> unit
(** Stop and join the worker domains. The pool must be idle. *)

(** {1 Ambient job count}

    Library entry points ({!Stackelberg.Alpha_sweep.run}, the
    column-generation pricing step) read an ambient job count instead
    of threading a pool through every call chain. It defaults to [1]
    (fully sequential — the library stays deterministic and
    domain-free unless explicitly opted in), is seeded from the
    [SGR_JOBS] environment variable when set, and is overridden by the
    [sgr --jobs] flag. *)

val default_jobs : unit -> int
val set_default_jobs : int -> unit
(** Clamped to [\[1, 512\]]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!map_array} on a shared, lazily created pool sized [jobs]
    (default: {!default_jobs}). The shared pool persists across calls
    and is resized when a different job count is requested. With
    [jobs = 1], inputs of length [<= 1], or when called from inside a
    pool task, this is exactly [Array.map f arr] on the calling
    domain. *)
