module Obs = Sgr_obs.Obs

let c_batches = Obs.counter "pool.batches"
let c_tasks = Obs.counter "pool.tasks"

(* A fixed pool of [jobs - 1] worker domains plus the submitting
   (main) domain. A batch is a single [unit -> unit] body that every
   participant runs once; the body pulls task indices from a shared
   atomic cursor, so there is exactly one batch in flight at a time and
   the pool needs no task queue. Workers park on [ready] between
   batches; the submitter parks on [finished] until the last worker
   checks out. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  ready : Condition.t;
  finished : Condition.t;
  mutable batch : (unit -> unit) option;
  mutable seq : int;  (* batch sequence number; workers track the last one they ran *)
  mutable pending : int;  (* workers still inside the current batch *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

(* True while the current domain is executing inside a pool batch
   (worker or submitting caller). Nested [map_array]/[map] calls from
   task bodies fall back to sequential execution instead of
   deadlocking on the busy pool. *)
let in_batch : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker pool =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.stop) && (pool.batch = None || pool.seq = !last) do
      Condition.wait pool.ready pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      let body = Option.get pool.batch in
      last := pool.seq;
      Mutex.unlock pool.mutex;
      body ();
      Mutex.lock pool.mutex;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.signal pool.finished;
      Mutex.unlock pool.mutex
    end
  done

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      ready = Condition.create ();
      finished = Condition.create ();
      batch = None;
      seq = 0;
      pending = 0;
      stop = false;
      domains = [];
    }
  in
  (* why: the pool is not yet published — no other domain holds it until
     [create] returns, and the workers spawned here never read
     [domains] — so this pre-publication write cannot race. *)
  (pool.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker pool)))
  [@lint.allow "lock-discipline"];
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.ready;
  (* Take the domain list while still holding the mutex: a concurrent
     [shutdown] caller must not join (or double-join) the same domains.
     The join itself happens after unlock — exiting workers briefly
     retake the mutex on their way out. *)
  let domains = pool.domains in
  pool.domains <- [];
  Mutex.unlock pool.mutex;
  List.iter Domain.join domains

(* Run [body] on every worker and on the caller, returning when all
   have finished. [body] must be safe to run concurrently with itself.
   why: the rendezvous *is* the point — the caller must block until its
   own batch drains. A worker can never park here: [map]/[map_array]
   take the sequential [in_batch] fallback inside a batch, so this wait
   only ever runs on the domain that owns the batch. *)
let run_batch pool body =
  Mutex.lock pool.mutex;
  pool.batch <- Some body;
  pool.seq <- pool.seq + 1;
  pool.pending <- pool.jobs - 1;
  Condition.broadcast pool.ready;
  Mutex.unlock pool.mutex;
  body ();
  Mutex.lock pool.mutex;
  while pool.pending > 0 do
    Condition.wait pool.finished pool.mutex
  done;
  pool.batch <- None;
  Mutex.unlock pool.mutex
[@@lint.allow "no-blocking-in-pool"]

let map_array pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if pool.jobs = 1 || n = 1 || Domain.DLS.get in_batch then Array.map f arr
  else begin
    Obs.incr c_batches;
    Obs.add c_tasks n;
    (* Results land in their input's slot, so the reduce is by index
       and the output is independent of which domain ran which task. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let body () =
      Domain.DLS.set in_batch true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set in_batch false)
        (fun () ->
          let continue = ref true in
          while !continue do
            let i = Atomic.fetch_and_add next 1 in
            if i >= n then continue := false
            else
              match f arr.(i) with
              | v -> results.(i) <- Some v
              | exception e ->
                  let bt = Printexc.get_raw_backtrace () in
                  (* Keep the first failure; the batch still drains so
                     the barrier below stays simple. *)
                  ignore (Atomic.compare_and_set failure None (Some (e, bt)))
          done)
    in
    run_batch pool body;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    (* Unreachable: the barrier above guarantees every slot was filled
       (or the batch's first failure re-raised before we got here). *)
    Array.map (function Some v -> v | None -> (assert false) [@lint.allow "no-untyped-failure"]) results
  end

(* ---------------- ambient default ---------------- *)

let clamp_jobs jobs = max 1 (min 512 jobs)

let env_jobs () =
  match Sys.getenv_opt "SGR_JOBS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some j -> Some (clamp_jobs j) | None -> None)
  | None -> None

(* Atomic so reads from inside task bodies (which take the sequential
   fallback but may still consult the default) never see a torn or
   stale job count. *)
let ambient = Atomic.make (match env_jobs () with Some j -> j | None -> 1)
let set_default_jobs jobs = Atomic.set ambient (clamp_jobs jobs)
let default_jobs () = Atomic.get ambient

(* The shared pool behind [map]: created on first parallel use and
   resized (shutdown + respawn) when the requested job count changes.
   Only the main domain manages it; calls from inside a batch never
   reach it (they take the sequential fallback in [map_array]). *)
let shared : t option ref =
  ref None
[@@lint.allow "mutable-global"] [@@lint.allow "lock-discipline"]

(* why: pool management (spawn, shutdown/join, resize) blocks by
   nature, and the [in_batch] test in [map]/[map_array] keeps this path
   off worker domains — a task body that calls [map] takes the
   sequential fallback before it can reach the shared-pool machinery. *)
let shared_pool jobs =
  match !shared with
  | Some pool when pool.jobs = jobs -> pool
  | existing ->
      Option.iter shutdown existing;
      let pool = create ~jobs in
      shared := Some pool;
      pool
[@@lint.allow "no-blocking-in-pool"]

let map ?jobs f arr =
  let jobs = clamp_jobs (match jobs with Some j -> j | None -> Atomic.get ambient) in
  if jobs = 1 || Array.length arr <= 1 || Domain.DLS.get in_batch then Array.map f arr
  else map_array (shared_pool jobs) f arr
