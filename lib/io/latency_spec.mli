(** Textual latency specifications, used by instance files and the CLI.

    Grammar (case-insensitive keywords, whitespace-insensitive):

    - affine expression: [\[A\]x \[+ B\]] or a bare number — e.g. ["x"],
      ["2.5x + 0.1667"], ["0.7"] (a bare number is a constant latency);
    - ["const C"] — constant latency [C];
    - ["mm1 CAP"] — M/M/1 delay with capacity [CAP];
    - ["bpr T0 CAP [ALPHA BETA]"] — BPR curve (defaults α=0.15, β=4);
    - ["poly C0 C1 C2 ..."] — polynomial coefficients by ascending degree;
    - ["affine A B"] — keyword form of [Ax + B]. Unlike the expression
      form, the numbers are whitespace-delimited tokens, so hex float
      literals are accepted (the canonical printer uses them);
    - ["shifted S SPEC"] — [x ↦ SPEC(S + x)], a link pre-loaded with
      [S >= 0] units of flow; [SPEC] is any specification, recursively.
      Nested shifts are canonicalized on construction (offsets sum), so
      the parsed kind is never doubly shifted.
*)

val parse : string -> (Sgr_latency.Latency.t, string) result
(** Parse a specification; [Error msg] describes the first problem. *)

val parse_exn : string -> Sgr_latency.Latency.t
(** @raise Invalid_argument on a malformed specification. *)

val print : Sgr_latency.Latency.t -> string
(** Render a latency back into parseable form.
    [parse (print l)] reproduces [l] for every non-[Custom] latency
    (including [Shifted] ones, via the [shifted] keyword form).
    @raise Invalid_argument on [Custom] kinds, including a [Shifted]
    whose base is [Custom]. *)

val print_canonical : Sgr_latency.Latency.t -> string
(** Canonical serialization: fixed keyword head per kind, parameters as
    hex float literals ([%h]) in a fixed order. [parse (print_canonical l)]
    reproduces [l]'s kind and parameters {e bit-exactly}, and
    [print_canonical] is stable under that round trip — the foundation of
    {!Sgr_serve.Fingerprint}. [Shifted] kinds serialize as
    [shifted OFFSET BASE]; construction flattens nesting, so the base is
    never itself shifted. @raise Invalid_argument on [Custom] kinds,
    including a [Shifted] whose base is [Custom]. *)
