(** Plain-text instance files.

    Two formats, distinguished by their first non-comment line. Lines
    starting with [#] and blank lines are ignored; latency specifications
    follow {!Latency_spec}.

    {b Parallel links} ([links] header):
    {v
    links
    demand 1.0
    link x
    link 2.5x + 0.1667
    link const 0.7
    v}

    {b Network} ([network] header); edges may carry any latency spec
    after the two endpoint node ids; [commodity SRC DST DEMAND] lines
    declare the commodities:
    {v
    network
    nodes 4
    edge 0 1 x
    edge 0 2 2x + 1
    edge 1 3 mm1 2.0
    commodity 0 3 1.0
    v} *)

type t =
  | Links of Sgr_links.Links.t
  | Network of Sgr_network.Network.t

val parse : string -> (t, string) result
(** Parse instance text. Errors carry a line number. *)

val load : string -> (t, string) result
(** Read and parse a file. *)

val load_exn : string -> t
(** @raise Failure with the parse error message. *)

val to_string : t -> string
(** Canonical serialization: stable field order (header, demand/nodes,
    links/edges in id order, commodities in declaration order) with every
    float rendered as a hex literal ([%h]). [parse (to_string t)]
    reproduces [t] bit-exactly and [to_string] is stable under that round
    trip, so equal instances always serialize to equal bytes — the
    property {!Sgr_serve.Fingerprint} keys the instance cache on.
    @raise Invalid_argument on non-serializable (custom/shifted)
    latencies, which cannot appear in parsed instances. *)

val print_links : Sgr_links.Links.t -> string
(** Render a links instance in file format (round-trips through
    {!parse} for serializable latencies). *)

val print_network : Sgr_network.Network.t -> string
(** Render a network instance in file format. *)
