module Links = Sgr_links.Links
module Net = Sgr_network.Network
module G = Sgr_graph

type t = Links of Links.t | Network of Net.t

let meaningful_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, String.trim line))
  |> List.filter (fun (_, line) -> line <> "" && line.[0] <> '#')

let errf lineno fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt

let split_first line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      (String.sub line 0 i, String.trim (String.sub line (i + 1) (String.length line - i - 1)))

let parse_links lines =
  let demand = ref None in
  let latencies = ref [] in
  let rec go = function
    | [] -> (
        match (!demand, List.rev !latencies) with
        | None, _ -> Error "missing 'demand' line"
        | _, [] -> Error "no 'link' lines"
        | Some d, lats -> (
            try Ok (Links (Links.make (Array.of_list lats) ~demand:d))
            with Invalid_argument m -> Error m))
    | (lineno, line) :: rest -> (
        let keyword, arg = split_first line in
        match String.lowercase_ascii keyword with
        | "demand" -> (
            match float_of_string_opt arg with
            | Some d when d >= 0.0 ->
                demand := Some d;
                go rest
            | _ -> errf lineno "demand expects a nonnegative number, got %S" arg)
        | "link" -> (
            match Latency_spec.parse arg with
            | Ok lat ->
                latencies := lat :: !latencies;
                go rest
            | Error m -> errf lineno "%s" m)
        | k -> errf lineno "unexpected keyword %S in a links instance" k)
  in
  go lines

let parse_network lines =
  let nodes = ref None in
  let edges = ref [] (* (src, dst, latency), reversed *) in
  let commodities = ref [] in
  let rec go = function
    | [] -> (
        match !nodes with
        | None -> Error "missing 'nodes' line"
        | Some n -> (
            let edges = List.rev !edges in
            let commodities = List.rev !commodities in
            if edges = [] then Error "no 'edge' lines"
            else if commodities = [] then Error "no 'commodity' lines"
            else
              try
                let b = G.Digraph.builder ~num_nodes:n in
                List.iter (fun (src, dst, _) -> ignore (G.Digraph.add_edge b ~src ~dst)) edges;
                let g = G.Digraph.freeze b in
                let latencies = Array.of_list (List.map (fun (_, _, l) -> l) edges) in
                Ok
                  (Network
                     (Net.make g ~latencies ~commodities:(Array.of_list commodities)))
              with Invalid_argument m -> Error m))
    | (lineno, line) :: rest -> (
        let keyword, arg = split_first line in
        match String.lowercase_ascii keyword with
        | "nodes" -> (
            match int_of_string_opt arg with
            | Some n when n > 0 ->
                nodes := Some n;
                go rest
            | _ -> errf lineno "nodes expects a positive integer, got %S" arg)
        | "edge" -> (
            let parts = String.split_on_char ' ' arg |> List.filter (fun w -> w <> "") in
            match parts with
            | a :: b :: spec_words when spec_words <> [] -> (
                match (int_of_string_opt a, int_of_string_opt b) with
                | Some src, Some dst -> (
                    match Latency_spec.parse (String.concat " " spec_words) with
                    | Ok lat ->
                        edges := (src, dst, lat) :: !edges;
                        go rest
                    | Error m -> errf lineno "%s" m)
                | _ -> errf lineno "edge endpoints must be integers")
            | _ -> errf lineno "edge expects 'edge SRC DST LATENCY-SPEC'")
        | "commodity" -> (
            let parts = String.split_on_char ' ' arg |> List.filter (fun w -> w <> "") in
            match parts with
            | [ a; b; d ] -> (
                match (int_of_string_opt a, int_of_string_opt b, float_of_string_opt d) with
                | Some src, Some dst, Some demand when demand >= 0.0 ->
                    commodities := { Net.src; dst; demand } :: !commodities;
                    go rest
                | _ -> errf lineno "commodity expects 'commodity SRC DST DEMAND'")
            | _ -> errf lineno "commodity expects 'commodity SRC DST DEMAND'")
        | k -> errf lineno "unexpected keyword %S in a network instance" k)
  in
  go lines

let parse text =
  match meaningful_lines text with
  | [] -> Error "empty instance"
  | (lineno, header) :: rest -> (
      match String.lowercase_ascii header with
      | "links" -> parse_links rest
      | "network" -> parse_network rest
      | h -> errf lineno "unknown instance header %S (expected 'links' or 'network')" h)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> ( match parse text with Ok t -> Ok t | Error m -> Error (path ^ ": " ^ m))
  | exception Sys_error m -> Error m

(* The [_exn] variant's whole contract is turning [Error] into [Failure]. *)
let load_exn path =
  match load path with Ok t -> t | Error m -> (failwith m) [@lint.allow "no-untyped-failure"]

let print_links (t : Links.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "links\n";
  Buffer.add_string buf (Printf.sprintf "demand %.12g\n" t.Links.demand);
  Array.iter
    (fun lat -> Buffer.add_string buf (Printf.sprintf "link %s\n" (Latency_spec.print lat)))
    t.Links.latencies;
  Buffer.contents buf

(* Canonical serialization: same grammar as the human printers below but
   with a fixed field order and every float as a hex literal ([%h]), so
   the text round-trips through [parse] bit-exactly and two structurally
   equal instances serialize to the same bytes. This is the string the
   serving layer fingerprints. *)
let to_string = function
  | Links (t : Links.t) ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "links\n";
      Buffer.add_string buf (Printf.sprintf "demand %h\n" t.Links.demand);
      Array.iter
        (fun lat ->
          Buffer.add_string buf
            (Printf.sprintf "link %s\n" (Latency_spec.print_canonical lat)))
        t.Links.latencies;
      Buffer.contents buf
  | Network (net : Net.t) ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf "network\n";
      Buffer.add_string buf (Printf.sprintf "nodes %d\n" (G.Digraph.num_nodes net.Net.graph));
      Array.iter
        (fun (e : G.Digraph.edge) ->
          Buffer.add_string buf
            (Printf.sprintf "edge %d %d %s\n" e.src e.dst
               (Latency_spec.print_canonical net.Net.latencies.(e.id))))
        (G.Digraph.edges net.Net.graph);
      Array.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "commodity %d %d %h\n" c.Net.src c.Net.dst c.Net.demand))
        net.Net.commodities;
      Buffer.contents buf

let print_network (net : Net.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "network\n";
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (G.Digraph.num_nodes net.Net.graph));
  Array.iter
    (fun (e : G.Digraph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "edge %d %d %s\n" e.src e.dst
           (Latency_spec.print net.Net.latencies.(e.id))))
    (G.Digraph.edges net.Net.graph);
  Array.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "commodity %d %d %.12g\n" c.Net.src c.Net.dst c.Net.demand))
    net.Net.commodities;
  Buffer.contents buf
