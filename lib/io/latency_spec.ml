module L = Sgr_latency.Latency

let float_of_string_opt' s = float_of_string_opt (String.trim s)

let parse_affine s =
  (* Forms accepted: "x", "Ax", "A x", "Ax + B", "x + B", "B". *)
  let compact = String.concat "" (String.split_on_char ' ' s) in
  match String.index_opt compact 'x' with
  | None -> (
      match float_of_string_opt' compact with
      | Some c when c >= 0.0 -> Ok (L.constant c)
      | Some _ -> Error "negative constant latency"
      | None -> Error (Printf.sprintf "cannot parse %S as a number or affine expression" s))
  | Some i ->
      let coeff_str = String.sub compact 0 i in
      let rest = String.sub compact (i + 1) (String.length compact - i - 1) in
      let coeff =
        if coeff_str = "" then Some 1.0
        else if coeff_str = "-" then None
        else float_of_string_opt' coeff_str
      in
      let intercept =
        if rest = "" then Some 0.0
        else if String.length rest > 1 && rest.[0] = '+' then
          float_of_string_opt' (String.sub rest 1 (String.length rest - 1))
        else None
      in
      (match (coeff, intercept) with
      | Some a, Some b when a >= 0.0 && b >= 0.0 -> Ok (L.affine ~slope:a ~intercept:b)
      | Some _, Some _ -> Error "negative coefficient in affine latency"
      | _ -> Error (Printf.sprintf "cannot parse %S as an affine expression" s))

let words s =
  String.split_on_char ' ' s |> List.map String.trim |> List.filter (fun w -> w <> "")

let parse_floats ws =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | w :: rest -> ( match float_of_string_opt w with Some f -> go (f :: acc) rest | None -> None)
  in
  go [] ws

let rec parse s =
  let s = String.trim s in
  if s = "" then Error "empty latency specification"
  else
    match words (String.lowercase_ascii s) with
    | "shifted" :: off :: (_ :: _ as rest) -> (
        (* [shifted S SPEC] is x ↦ SPEC(S + x): the a-posteriori latency
           of a link pre-loaded with S units of flow. The base is a full
           recursive specification, so nesting parses — and [shift]
           canonicalizes it by summing the offsets, so the round trip
           through {!print_canonical} is still a fixed point. *)
        match float_of_string_opt off with
        | Some s when s >= 0.0 -> (
            match parse (String.concat " " rest) with
            | Ok base -> Ok (L.shift s base)
            | Error m -> Error (Printf.sprintf "shifted: %s" m))
        | _ -> Error "shifted expects 'shifted OFFSET SPEC' with a nonnegative offset")
    | [ "shifted" ] | [ "shifted"; _ ] ->
        Error "shifted expects 'shifted OFFSET SPEC' with a nonnegative offset"
    | "const" :: rest -> (
        match parse_floats rest with
        | Some [ c ] when c >= 0.0 -> Ok (L.constant c)
        | _ -> Error "const expects one nonnegative number")
    | "mm1" :: rest -> (
        match parse_floats rest with
        | Some [ cap ] when cap > 0.0 -> Ok (L.mm1 ~capacity:cap)
        | _ -> Error "mm1 expects one positive capacity")
    | "bpr" :: rest -> (
        match parse_floats rest with
        | Some [ t0; cap ] -> (
            try Ok (L.bpr ~free_flow:t0 ~capacity:cap ()) with Invalid_argument m -> Error m)
        | Some [ t0; cap; alpha; beta ] -> (
            try Ok (L.bpr ~free_flow:t0 ~capacity:cap ~alpha ~beta ())
            with Invalid_argument m -> Error m)
        | _ -> Error "bpr expects 'bpr T0 CAP [ALPHA BETA]'")
    | "poly" :: rest -> (
        match parse_floats rest with
        | Some (_ :: _ as coeffs) -> (
            try Ok (L.polynomial (Array.of_list coeffs)) with Invalid_argument m -> Error m)
        | _ -> Error "poly expects at least one coefficient")
    | "affine" :: rest -> (
        (* Keyword form of the [Ax + B] expression. Unlike the expression
           form it tokenizes on whitespace, so hex float literals
           (["0x1.8p+0"], whose 'x' would be read as the variable) are
           accepted — this is what {!print_canonical} emits. *)
        match parse_floats rest with
        | Some [ a; b ] when a >= 0.0 && b >= 0.0 -> Ok (L.affine ~slope:a ~intercept:b)
        | _ -> Error "affine expects 'affine SLOPE INTERCEPT' with nonnegative numbers")
    | _ -> parse_affine s

let parse_exn s =
  match parse s with Ok l -> l | Error m -> invalid_arg ("Latency_spec.parse: " ^ m)

let print lat =
  let num f =
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    s
  in
  let rec go = function
    | L.Constant c -> num c
    | L.Affine { slope; intercept } ->
        (* Serializer cosmetics: exact zero decides whether the term shows. *)
        if (intercept = 0.0) [@lint.allow "float-equality"] then Printf.sprintf "%sx" (num slope)
        else Printf.sprintf "%sx + %s" (num slope) (num intercept)
    | L.Polynomial coeffs ->
        "poly " ^ String.concat " " (List.map num (Array.to_list coeffs))
    | L.Mm1 { capacity } -> Printf.sprintf "mm1 %s" (num capacity)
    | L.Bpr { free_flow; capacity; alpha; beta } ->
        Printf.sprintf "bpr %s %s %s %s" (num free_flow) (num capacity) (num alpha) (num beta)
    | L.Shifted { offset; base } -> Printf.sprintf "shifted %s %s" (num offset) (go base)
    | L.Custom _ -> invalid_arg "Latency_spec.print: custom latencies are not serializable"
  in
  go (L.kind lat)

(* Canonical form: keyword head + hex float literals ([%h]), one fixed
   field order per kind. [float_of_string] reads hex literals back
   bit-exactly, so [parse (print_canonical l)] reproduces [l]'s kind and
   parameters without rounding — the property the instance fingerprint
   rests on. The constructors normalize degenerate kinds (zero slope,
   constant-only polynomial) before a value can reach the printer, so
   printing is also stable across one round trip. *)
let print_canonical lat =
  let h = Printf.sprintf "%h" in
  let rec go = function
    | L.Constant c -> Printf.sprintf "const %s" (h c)
    | L.Affine { slope; intercept } -> Printf.sprintf "affine %s %s" (h slope) (h intercept)
    | L.Polynomial coeffs ->
        "poly " ^ String.concat " " (List.map h (Array.to_list coeffs))
    | L.Mm1 { capacity } -> Printf.sprintf "mm1 %s" (h capacity)
    | L.Bpr { free_flow; capacity; alpha; beta } ->
        Printf.sprintf "bpr %s %s %s %s" (h free_flow) (h capacity) (h alpha) (h beta)
    | L.Shifted { offset; base } ->
        (* [shift] flattens nesting on construction, so the offset here
           is the total and [base] is never itself [Shifted]: one round
           trip reproduces the kind bit-exactly and the printer is a
           fixed point of it. *)
        Printf.sprintf "shifted %s %s" (h offset) (go base)
    | L.Custom _ ->
        invalid_arg "Latency_spec.print_canonical: custom latencies are not serializable"
  in
  go (L.kind lat)
