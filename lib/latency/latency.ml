type kind =
  | Constant of float
  | Affine of { slope : float; intercept : float }
  | Polynomial of float array
  | Mm1 of { capacity : float }
  | Bpr of { free_flow : float; capacity : float; alpha : float; beta : float }
  | Shifted of { offset : float; base : kind }
  | Custom of string

type t = {
  kind : kind;
  eval : float -> float;
  deriv : float -> float;
  primitive : float -> float;
}

let c_evals = Sgr_obs.Obs.counter "latency.evaluations"

let kind t = t.kind

let eval t x =
  Sgr_obs.Obs.incr c_evals;
  t.eval x

let deriv t x = t.deriv x
let primitive t x = t.primitive x

let marginal t x =
  Sgr_obs.Obs.incr c_evals;
  t.eval x +. (x *. t.deriv x)

let cost t x = x *. t.eval x

let constant c =
  if c < 0.0 then invalid_arg "Latency.constant: negative delay";
  { kind = Constant c; eval = (fun _ -> c); deriv = (fun _ -> 0.0); primitive = (fun x -> c *. x) }

let affine ~slope ~intercept =
  if slope < 0.0 || intercept < 0.0 then invalid_arg "Latency.affine: negative coefficient";
  (* Exact test by design: only a literal zero slope normalizes to the
     [Constant] constructor; a denormal slope is still affine. *)
  if (slope = 0.0) [@lint.allow "float-equality"] then constant intercept
  else
    {
      kind = Affine { slope; intercept };
      eval = (fun x -> (slope *. x) +. intercept);
      deriv = (fun _ -> slope);
      primitive = (fun x -> (0.5 *. slope *. x *. x) +. (intercept *. x));
    }

let linear a = affine ~slope:a ~intercept:0.0

(* Horner evaluation. *)
let horner coeffs x =
  let acc = ref 0.0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := (!acc *. x) +. coeffs.(i)
  done;
  !acc

let polynomial coeffs =
  if Array.exists (fun c -> c < 0.0) coeffs then
    invalid_arg "Latency.polynomial: negative coefficient";
  let coeffs = Array.copy coeffs in
  let n = Array.length coeffs in
  let nonconst = ref false in
  for i = 1 to n - 1 do
    if coeffs.(i) > 0.0 then nonconst := true
  done;
  if n = 0 then constant 0.0
  else if not !nonconst then constant coeffs.(0)
  else
    let dcoeffs = Array.init (max 0 (n - 1)) (fun i -> float_of_int (i + 1) *. coeffs.(i + 1)) in
    let pcoeffs = Array.init (n + 1) (fun i -> if i = 0 then 0.0 else coeffs.(i - 1) /. float_of_int i) in
    {
      kind = Polynomial coeffs;
      eval = horner coeffs;
      deriv = horner dcoeffs;
      primitive = horner pcoeffs;
    }

let monomial ~coeff ~degree =
  if degree < 0 then invalid_arg "Latency.monomial: negative degree";
  let coeffs = Array.make (degree + 1) 0.0 in
  coeffs.(degree) <- coeff;
  polynomial coeffs

let mm1 ~capacity =
  if capacity <= 0.0 then invalid_arg "Latency.mm1: capacity must be positive";
  let eval x = if x >= capacity then Float.infinity else 1.0 /. (capacity -. x) in
  let deriv x =
    if x >= capacity then Float.infinity else 1.0 /. ((capacity -. x) *. (capacity -. x))
  in
  let primitive x =
    if x >= capacity then Float.infinity else Float.log (capacity /. (capacity -. x))
  in
  { kind = Mm1 { capacity }; eval; deriv; primitive }

let bpr ~free_flow ~capacity ?(alpha = 0.15) ?(beta = 4.0) () =
  if free_flow < 0.0 || capacity <= 0.0 || alpha < 0.0 || beta < 1.0 then
    invalid_arg "Latency.bpr: bad parameter";
  let eval x = free_flow *. (1.0 +. (alpha *. ((x /. capacity) ** beta))) in
  let deriv x =
    free_flow *. alpha *. beta /. capacity *. ((x /. capacity) ** (beta -. 1.0))
  in
  let primitive x =
    free_flow *. (x +. (alpha *. capacity /. (beta +. 1.0) *. ((x /. capacity) ** (beta +. 1.0))))
  in
  { kind = Bpr { free_flow; capacity; alpha; beta }; eval; deriv; primitive }

let custom ?(label = "custom") ~eval ?deriv ?primitive () =
  let deriv =
    match deriv with
    | Some d -> d
    | None ->
        fun x ->
          let h = 1e-6 *. Float.max 1.0 (Float.abs x) in
          let lo = Float.max 0.0 (x -. h) in
          (eval (x +. h) -. eval lo) /. (x +. h -. lo)
  in
  let primitive =
    match primitive with
    | Some p -> p
    | None -> fun x -> Sgr_numerics.Integrate.adaptive_simpson ~f:eval ~lo:0.0 ~hi:x ()
  in
  { kind = Custom label; eval; deriv; primitive }

let shift s base =
  if s < 0.0 then invalid_arg "Latency.shift: negative offset";
  (* Exact test by design: zero offset is the identity, anything else
     must build a [Shifted] node. *)
  if (s = 0.0) [@lint.allow "float-equality"] then base
  else
    (* Canonical form: shifting a shifted latency sums the offsets instead
       of nesting [Shifted] nodes, so structurally equal latencies built by
       different shift sequences have equal kinds (and hence equal
       canonical serializations and fingerprints). The evaluation closures
       chain through [base] either way — ℓ((s₁+s₂)+x) = (ℓ∘(+s₂))(s₁+x). *)
    let kind =
      match base.kind with
      | Shifted { offset; base = inner } -> Shifted { offset = s +. offset; base = inner }
      | k -> Shifted { offset = s; base = k }
    in
    {
      kind;
      eval = (fun x -> base.eval (s +. x));
      deriv = (fun x -> base.deriv (s +. x));
      primitive = (fun x -> base.primitive (s +. x) -. base.primitive s);
    }

let rec pp_kind ppf = function
  | Constant c -> Format.fprintf ppf "%.4g" c
  | Affine { slope; intercept } ->
      (* Printer cosmetics: exact zero decides whether the term shows. *)
      if (intercept = 0.0) [@lint.allow "float-equality"] then Format.fprintf ppf "%.4gx" slope
      else Format.fprintf ppf "%.4gx + %.4g" slope intercept
  | Polynomial coeffs ->
      let first = ref true in
      Array.iteri
        (fun i c ->
          if (c <> 0.0) [@lint.allow "float-equality"] || (i = 0 && Array.length coeffs = 1)
          then begin
            if not !first then Format.pp_print_string ppf " + ";
            first := false;
            match i with
            | 0 -> Format.fprintf ppf "%.4g" c
            | 1 -> Format.fprintf ppf "%.4gx" c
            | _ -> Format.fprintf ppf "%.4gx^%d" c i
          end)
        coeffs;
      if !first then Format.pp_print_string ppf "0"
  | Mm1 { capacity } -> Format.fprintf ppf "1/(%.4g - x)" capacity
  | Bpr { free_flow; capacity; alpha; beta } ->
      Format.fprintf ppf "%.4g(1 + %.4g(x/%.4g)^%.4g)" free_flow alpha capacity beta
  | Shifted { offset; base } -> Format.fprintf ppf "(%a)∘(+%.4g)" pp_kind base offset
  | Custom label -> Format.pp_print_string ppf label

(* Rebuild a closed-form latency value from its kind; [None] for the
   kinds that carry behaviour outside the kind ([Custom]'s closures,
   [Shifted]'s base value). Used by [shift_intercept] to stay in closed
   form under a [Shifted] node. *)
let of_kind_opt = function
  | Constant c -> Some (constant c)
  | Affine { slope; intercept } -> Some (affine ~slope ~intercept)
  | Polynomial coeffs -> Some (polynomial coeffs)
  | Mm1 { capacity } -> Some (mm1 ~capacity)
  | Bpr { free_flow; capacity; alpha; beta } ->
      Some (bpr ~free_flow ~capacity ~alpha ~beta ())
  | Shifted _ | Custom _ -> None

(* Tolls enter latencies as constant intercept shifts: ℓ(x) + τ. The sum
   keeps the derivative and shifts the primitive linearly, so it is again
   a valid latency; the closed-form kinds absorb τ into their
   coefficients so solvers keep their fast inverses (and the affine
   closed-form engine its reduction). *)
let rec shift_intercept tau t =
  if tau < 0.0 then invalid_arg "Latency.shift_intercept: negative shift";
  (* Exact test by design: a zero shift is the identity. *)
  if (tau = 0.0) [@lint.allow "float-equality"] then t
  else
    match t.kind with
    | Constant c -> constant (c +. tau)
    | Affine { slope; intercept } -> affine ~slope ~intercept:(intercept +. tau)
    | Polynomial coeffs ->
        let coeffs = Array.copy coeffs in
        if Array.length coeffs = 0 then constant tau
        else begin
          coeffs.(0) <- coeffs.(0) +. tau;
          polynomial coeffs
        end
    | Shifted { offset; base } -> (
        (* base(offset + x) + τ = (base + τ)(offset + x): push the shift
           into the base when the base is reconstructible. *)
        match of_kind_opt base with
        | Some b -> shift offset (shift_intercept tau b)
        | None ->
            {
              kind = Custom (Format.asprintf "%a + %.4g" pp_kind t.kind tau);
              eval = (fun x -> t.eval x +. tau);
              deriv = t.deriv;
              primitive = (fun x -> t.primitive x +. (tau *. x));
            })
    | Mm1 _ | Bpr _ | Custom _ ->
        {
          kind = Custom (Format.asprintf "%a + %.4g" pp_kind t.kind tau);
          eval = (fun x -> t.eval x +. tau);
          deriv = t.deriv;
          primitive = (fun x -> t.primitive x +. (tau *. x));
        }

let rec kind_constant_value = function
  | Constant c -> Some c
  | Affine { slope = 0.0; intercept } -> Some intercept
  | Affine _ | Mm1 _ | Bpr _ | Custom _ -> None
  | Polynomial coeffs ->
      let nonconst = ref false in
      for i = 1 to Array.length coeffs - 1 do
        (* Structural constancy: any nonzero stored coefficient, however
           small, makes the polynomial non-constant. *)
        if (coeffs.(i) <> 0.0) [@lint.allow "float-equality"] then nonconst := true
      done;
      if !nonconst then None
      else Some (if Array.length coeffs = 0 then 0.0 else coeffs.(0))
  | Shifted { base; _ } -> kind_constant_value base

let constant_value t = kind_constant_value t.kind
let is_constant t = Option.is_some (constant_value t)

let inverse_of f t y =
  match constant_value t with
  (* [Failure] is the documented contract here; the links water-filling
     callers and the tests both match on it. *)
  | Some _ -> (failwith "Latency.inverse: constant latency has no inverse") [@lint.allow "no-untyped-failure"]
  | None ->
      if f t 0.0 >= y then 0.0
      else begin
        let g x = f t x in
        (* M/M/1 never exceeds capacity: cap the expansion below it. *)
        let hi =
          match t.kind with
          | Mm1 { capacity } | Shifted { base = Mm1 { capacity }; _ } ->
              (* Find hi < capacity with g hi >= y by halving the gap. *)
              let offset = match t.kind with Shifted { offset; _ } -> offset | _ -> 0.0 in
              let cap = capacity -. offset in
              if cap <= 0.0 then
                (failwith "Latency.inverse: shifted M/M/1 beyond capacity")
                [@lint.allow "no-untyped-failure"]
              else begin
                let gap = ref (0.5 *. cap) in
                while g (cap -. !gap) < y && !gap > 1e-300 do
                  gap := 0.5 *. !gap
                done;
                cap -. !gap
              end
          | _ -> Sgr_numerics.Bisection.expand_upper ~f:g ~target:y ()
        in
        Sgr_numerics.Bisection.solve_increasing ~f:g ~y ~lo:0.0 ~hi ()
      end

let inverse t y =
  match t.kind with
  | Affine { slope; intercept } when slope > 0.0 ->
      Float.max 0.0 ((y -. intercept) /. slope)
  | Shifted { offset; base = Affine { slope; intercept } } when slope > 0.0 ->
      Float.max 0.0 (((y -. intercept) /. slope) -. offset)
  | Mm1 { capacity } ->
      if y <= 1.0 /. capacity then 0.0 else capacity -. (1.0 /. y)
  | Shifted { offset; base = Mm1 { capacity } } ->
      if y <= 1.0 /. (capacity -. offset) then 0.0
      else Float.max 0.0 (capacity -. (1.0 /. y) -. offset)
  | _ -> inverse_of eval t y

let inverse_marginal t y =
  match t.kind with
  (* marginal of a·x + b is 2a·x + b *)
  | Affine { slope; intercept } when slope > 0.0 ->
      Float.max 0.0 ((y -. intercept) /. (2.0 *. slope))
  | Shifted { offset; base = Affine { slope; intercept } } when slope > 0.0 ->
      (* marginal of x ↦ a(s+x)+b is a(s+x)+b + x·a = 2a·x + (a·s + b) *)
      Float.max 0.0 ((y -. intercept -. (slope *. offset)) /. (2.0 *. slope))
  | _ -> inverse_of marginal t y

let pp ppf t = pp_kind ppf t.kind
let to_string t = Format.asprintf "%a" pp t

let check_increasing ?(samples = 64) ?(hi = 10.0) t =
  let ok = ref true in
  let prev = ref (t.eval 0.0) in
  for i = 1 to samples do
    let x = hi *. float_of_int i /. float_of_int samples in
    let v = t.eval x in
    if v < !prev -. 1e-12 then ok := false;
    prev := v
  done;
  !ok
