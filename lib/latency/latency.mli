(** Load-dependent latency functions.

    A latency function [ℓ] maps a nonnegative flow [x] to a nonnegative
    delay [ℓ(x)]. The paper's standing assumptions (Section 4, Remark 2.5)
    are: [ℓ] differentiable, strictly increasing, with [x·ℓ(x)] convex.
    Following Remark 2.5's cited extension, constant latencies are also
    admitted; the solvers treat them specially.

    Values of type {!t} carry closed-form evaluation, derivative, primitive
    [∫₀ˣ ℓ] (the Beckmann term) and, where available, closed-form inverses;
    everything else falls back to guarded numerical routines. *)

type kind =
  | Constant of float  (** [ℓ(x) = c]. *)
  | Affine of { slope : float; intercept : float }  (** [ℓ(x) = a·x + b]. *)
  | Polynomial of float array
      (** [ℓ(x) = Σ cᵢ xⁱ], coefficients by ascending degree. *)
  | Mm1 of { capacity : float }
      (** M/M/1 delay [ℓ(x) = 1 / (capacity - x)], defined for
          [x < capacity] (Korilis–Lazar–Orda systems). *)
  | Bpr of { free_flow : float; capacity : float; alpha : float; beta : float }
      (** Bureau of Public Roads: [ℓ(x) = t₀·(1 + α (x/c)^β)]. *)
  | Shifted of { offset : float; base : kind }
      (** [ℓ(x) = base(offset + x)] — a-posteriori latency seen by
          Followers when a Leader pre-loads [offset] (Section 4). *)
  | Custom of string  (** Opaque user function; label used for printing. *)

type t

val kind : t -> kind

(** {1 Constructors} *)

val constant : float -> t
(** [constant c]: [ℓ(x) = c], [c >= 0]. *)

val affine : slope:float -> intercept:float -> t
(** [affine ~slope:a ~intercept:b]: [ℓ(x) = a·x + b] with [a, b >= 0].
    [slope = 0] yields a constant. *)

val linear : float -> t
(** [linear a] is [affine ~slope:a ~intercept:0.]. *)

val polynomial : float array -> t
(** [polynomial [|c0; c1; ...|]]: coefficients must be [>= 0] (a standard
    sufficient condition for monotone latency and convex [x·ℓ(x)]).
    @raise Invalid_argument on a negative coefficient. *)

val monomial : coeff:float -> degree:int -> t
(** [monomial ~coeff ~degree]: [ℓ(x) = coeff·x^degree]. *)

val mm1 : capacity:float -> t
(** [mm1 ~capacity]: M/M/1 delay; requires [capacity > 0]. *)

val bpr : free_flow:float -> capacity:float -> ?alpha:float -> ?beta:float -> unit -> t
(** BPR congestion curve; defaults [alpha = 0.15], [beta = 4.]. *)

val custom :
  ?label:string ->
  eval:(float -> float) ->
  ?deriv:(float -> float) ->
  ?primitive:(float -> float) ->
  unit ->
  t
(** Opaque latency. Missing [deriv] uses central differences; missing
    [primitive] uses adaptive quadrature. The function must be strictly
    increasing on [x >= 0]; this is the caller's obligation. *)

val shift : float -> t -> t
(** [shift s ℓ] is [x ↦ ℓ(s + x)]: the a-posteriori latency of a link
    pre-loaded with Leader flow [s >= 0]. Shifting an already-shifted
    latency sums the offsets — the resulting {!kind} never nests
    [Shifted] inside [Shifted], so structurally equal latencies have
    equal kinds regardless of how the total shift was accumulated (the
    canonical-serialization/fingerprint invariant rests on this). *)

val shift_intercept : float -> t -> t
(** [shift_intercept τ ℓ] is [x ↦ ℓ(x) + τ]: a constant additive delay —
    the latency seen by users of a link charging toll [τ >= 0]. Constant,
    affine and polynomial latencies (also under a [Shifted] node) absorb
    [τ] into their coefficients, so the result keeps its closed-form kind
    and fast inverses; other kinds fall back to an opaque [Custom] wrapper
    with exact derivative and primitive.
    @raise Invalid_argument if [τ < 0]. *)

(** {1 Evaluation} *)

val eval : t -> float -> float
(** [eval ℓ x] is [ℓ(x)]. *)

val deriv : t -> float -> float
(** [deriv ℓ x] is [ℓ'(x)]. *)

val primitive : t -> float -> float
(** [primitive ℓ x] is [∫₀ˣ ℓ(u) du] — the link's Beckmann potential. *)

val marginal : t -> float -> float
(** [marginal ℓ x] is the marginal social cost [ℓ(x) + x·ℓ'(x)] — the
    derivative of [x·ℓ(x)], equalized across loaded links at the optimum. *)

val cost : t -> float -> float
(** [cost ℓ x] is [x·ℓ(x)]. *)

(** {1 Structure} *)

val constant_value : t -> float option
(** [Some c] when the latency is constant (including shifted constants and
    zero-slope affines); [None] otherwise. Solvers use this to give
    constant links their special water-filling treatment. *)

val is_constant : t -> bool

val inverse : t -> float -> float
(** [inverse ℓ y] is the flow [x >= 0] with [ℓ(x) = y], assuming
    [ℓ(0) <= y] and strictly increasing [ℓ]; returns [0.] when [y <= ℓ(0)].
    Closed form for affine/shifted-affine/M/M/1, bisection otherwise.
    @raise Failure when the latency is constant or bounded below [y]. *)

val inverse_marginal : t -> float -> float
(** Same as {!inverse} for the marginal-cost map [x ↦ ℓ(x) + xℓ'(x)]. *)

(** {1 Misc} *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, e.g. [5/2·x + 1/6] prints as
    ["2.5x + 0.1667"]. *)

val to_string : t -> string

val check_increasing : ?samples:int -> ?hi:float -> t -> bool
(** Sampled sanity check that [eval] is nondecreasing on [[0, hi]]
    (default [hi = 10.], 64 samples). Used by validation code and tests;
    not a proof. *)
