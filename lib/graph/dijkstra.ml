type result = { dist : float array; pred : int array }

module Obs = Sgr_obs.Obs

let c_runs = Obs.counter "dijkstra.runs"
let c_relax = Obs.counter "dijkstra.relaxations"

type workspace = {
  mutable size : int;  (* node count the arrays are sized for; 0 = empty *)
  mutable dist : float array;
  mutable pred : int array;
  mutable settled : bool array;
  heap : Heap.t;
}

let workspace ?(hint = 0) () =
  {
    size = 0;
    dist = [||];
    pred = [||];
    settled = [||];
    heap = Heap.create ~hint ();
  }

(* Size the scratch arrays for an [n]-node graph and reset them. On the
   repeated-run path (same graph) this is three [Array.fill]s and a
   [Heap.clear] — no allocation. *)
let prepare ws n =
  if ws.size <> n then begin
    ws.dist <- Array.make n Float.infinity;
    ws.pred <- Array.make n (-1);
    ws.settled <- Array.make n false;
    ws.size <- n
  end
  else begin
    Array.fill ws.dist 0 n Float.infinity;
    Array.fill ws.pred 0 n (-1);
    Array.fill ws.settled 0 n false
  end;
  Heap.clear ws.heap

let validate_weights weights =
  Array.iter
    (fun w ->
      if not (w >= 0.0) then
        invalid_arg "Dijkstra: edge weights must be nonnegative (and not NaN)")
    weights

(* The kernel, shared by the forward and reverse runs: [off]/[ids] is a
   CSR adjacency (out- or in-) and [other].(e) the endpoint the search
   moves to along edge [e] (dst forward, src reverse). Iterates the flat
   arrays directly — no list cells or closures per settled node. *)
let run_dir ws ~off ~ids ~other ~weights ~n ~origin =
  Obs.incr c_runs;
  prepare ws n;
  let dist = ws.dist and pred = ws.pred and settled = ws.settled and heap = ws.heap in
  let relaxations = ref 0 in
  dist.(origin) <- 0.0;
  Heap.insert heap 0.0 origin;
  let u = ref (Heap.pop heap) in
  while !u >= 0 do
    let u' = !u in
    (* Lazy deletion: skip stale entries. *)
    if not settled.(u') then begin
      settled.(u') <- true;
      let du = dist.(u') in
      for k = off.(u') to off.(u' + 1) - 1 do
        let e = ids.(k) in
        let v = other.(e) in
        incr relaxations;
        let nd = du +. weights.(e) in
        if nd < dist.(v) then begin
          dist.(v) <- nd;
          pred.(v) <- e;
          Heap.insert heap nd v
        end
      done
    end;
    u := Heap.pop heap
  done;
  (* One batched counter update per run keeps the inner loop free of
     atomic traffic while the count stays exact. *)
  Obs.add c_relax !relaxations;
  { dist; pred }

let run ?(validate = false) ?workspace:ws g ~weights ~source =
  if validate then validate_weights weights;
  let ws = match ws with Some ws -> ws | None -> workspace () in
  run_dir ws
    ~off:(Digraph.out_offsets g) ~ids:(Digraph.out_edge_ids g)
    ~other:(Digraph.edge_targets g) ~weights ~n:(Digraph.num_nodes g) ~origin:source

let run_reverse ?(validate = false) ?workspace:ws g ~weights ~sink =
  if validate then validate_weights weights;
  let ws = match ws with Some ws -> ws | None -> workspace () in
  run_dir ws
    ~off:(Digraph.in_offsets g) ~ids:(Digraph.in_edge_ids g)
    ~other:(Digraph.edge_sources g) ~weights ~n:(Digraph.num_nodes g) ~origin:sink

let shortest_path ?validate ?workspace g ~weights ~src ~dst =
  let ({ dist; pred } : result) = run ?validate ?workspace g ~weights ~source:src in
  if dist.(dst) = Float.infinity then None
  else begin
    let sources = Digraph.edge_sources g in
    let rec walk v acc =
      if v = src then acc
      else
        let e = pred.(v) in
        if e < 0 then acc (* unreachable; cannot happen when dist is finite *)
        else walk sources.(e) (e :: acc)
    in
    Some (walk dst [])
  end

let shortest_edge_subgraph ?(eps = Sgr_numerics.Tolerance.check_eps) ?validate ?workspaces g
    ~weights ~src ~dst =
  let fwd_ws, bwd_ws =
    match workspaces with Some pair -> pair | None -> (workspace (), workspace ())
  in
  let fwd = run ?validate ~workspace:fwd_ws g ~weights ~source:src in
  let bwd = run_reverse ~workspace:bwd_ws g ~weights ~sink:dst in
  let total = fwd.dist.(dst) in
  let m = Digraph.num_edges g in
  let on_sp = Array.make m false in
  if total < Float.infinity then begin
    let sources = Digraph.edge_sources g and targets = Digraph.edge_targets g in
    for e = 0 to m - 1 do
      let through = fwd.dist.(sources.(e)) +. weights.(e) +. bwd.dist.(targets.(e)) in
      if through < Float.infinity && through <= total +. (eps *. Float.max 1.0 total) then
        on_sp.(e) <- true
    done
  end;
  on_sp
