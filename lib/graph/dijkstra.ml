type result = { dist : float array; pred : int option array }

module Obs = Sgr_obs.Obs

let c_runs = Obs.counter "dijkstra.runs"
let c_relax = Obs.counter "dijkstra.relaxations"

let run_generic next_edges ~n ~weights ~origin =
  assert (Array.for_all (fun w -> w >= 0.0) weights);
  Obs.incr c_runs;
  let dist = Array.make n Float.infinity in
  let pred = Array.make n None in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(origin) <- 0.0;
  Heap.insert heap 0.0 origin;
  let rec drain () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
        (* Lazy deletion: skip stale entries. *)
        if not settled.(u) then begin
          settled.(u) <- true;
          ignore d;
          List.iter
            (fun (eid, v) ->
              Obs.incr c_relax;
              let nd = dist.(u) +. weights.(eid) in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                pred.(v) <- Some eid;
                Heap.insert heap nd v
              end)
            (next_edges u)
        end;
        drain ()
  in
  drain ();
  { dist; pred }

let run g ~weights ~source =
  let next u = List.map (fun (e : Digraph.edge) -> (e.id, e.dst)) (Digraph.out_edges g u) in
  run_generic next ~n:(Digraph.num_nodes g) ~weights ~origin:source

let run_reverse g ~weights ~sink =
  let next u = List.map (fun (e : Digraph.edge) -> (e.id, e.src)) (Digraph.in_edges g u) in
  run_generic next ~n:(Digraph.num_nodes g) ~weights ~origin:sink

let shortest_path g ~weights ~src ~dst =
  let { dist; pred } = run g ~weights ~source:src in
  if dist.(dst) = Float.infinity then None
  else begin
    let rec walk v acc =
      if v = src then acc
      else
        match pred.(v) with
        | None -> acc (* unreachable; cannot happen when dist is finite *)
        | Some eid ->
            let e = Digraph.edge g eid in
            walk e.src (eid :: acc)
    in
    Some (walk dst [])
  end

let shortest_edge_subgraph ?(eps = Sgr_numerics.Tolerance.check_eps) g ~weights ~src ~dst =
  let fwd = run g ~weights ~source:src in
  let bwd = run_reverse g ~weights ~sink:dst in
  let total = fwd.dist.(dst) in
  let m = Digraph.num_edges g in
  let on_sp = Array.make m false in
  if total < Float.infinity then
    Array.iter
      (fun (e : Digraph.edge) ->
        let through = fwd.dist.(e.src) +. weights.(e.id) +. bwd.dist.(e.dst) in
        if through < Float.infinity && through <= total +. (eps *. Float.max 1.0 total) then
          on_sp.(e.id) <- true)
      (Digraph.edges g);
  on_sp
