(** Directed multigraphs with integer node ids and dense edge ids.

    Nodes are [0 .. num_nodes-1]; edges get consecutive ids in insertion
    order, so per-edge data (latencies, flows, weights, capacities) lives in
    plain arrays indexed by edge id. Parallel edges and antiparallel pairs
    are allowed; self loops are rejected (the paper's model forbids them). *)

type edge = private { id : int; src : int; dst : int }

type t

(** {1 Construction} *)

type builder

val builder : num_nodes:int -> builder
(** Fresh builder over nodes [0 .. num_nodes-1]. *)

val add_edge : builder -> src:int -> dst:int -> int
(** Adds an edge and returns its id.
    @raise Invalid_argument on out-of-range endpoints or a self loop. *)

val freeze : builder -> t
(** Finalize into an immutable graph. The builder must not be reused. *)

val of_edges : num_nodes:int -> (int * int) list -> t
(** [of_edges ~num_nodes [(s1,d1); ...]] builds a graph whose edge ids
    follow the list order. *)

(** {1 Access} *)

val num_nodes : t -> int
val num_edges : t -> int

val edge : t -> int -> edge
(** Edge by id. @raise Invalid_argument if out of range. *)

val edges : t -> edge array
(** All edges by id (do not mutate). *)

val out_edges : t -> int -> edge list
(** Outgoing edges of a node, in insertion order. *)

val in_edges : t -> int -> edge list
(** Incoming edges of a node, in insertion order. *)

val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 CSR adjacency}

    [freeze] also lays the adjacency out in compressed-sparse-row form:
    flat [int array]s of edge ids with per-node offset indexes, plus
    flat endpoint arrays indexed by edge id. The solver hot paths
    (Dijkstra, max-flow, path enumeration) iterate these directly —
    no list cells, no closure per settled node. All returned arrays are
    owned by the graph: do not mutate. *)

val edge_sources : t -> int array
(** [edge_sources t].(e) is the source node of edge [e]. *)

val edge_targets : t -> int array
(** [edge_targets t].(e) is the target node of edge [e]. *)

val out_offsets : t -> int array
(** [num_nodes + 1] offsets into {!out_edge_ids}: node [v]'s outgoing
    edge ids occupy the slice [\[off.(v), off.(v+1))]. *)

val out_edge_ids : t -> int array
(** All edge ids grouped by source node, each group in insertion order. *)

val in_offsets : t -> int array
(** Like {!out_offsets}, for incoming edges. *)

val in_edge_ids : t -> int array
(** All edge ids grouped by target node, each group in insertion order. *)

val iter_out : t -> int -> (int -> int -> unit) -> unit
(** [iter_out t v f] calls [f edge_id dst] for each outgoing edge of
    [v], in insertion order, without allocating. *)

val iter_in : t -> int -> (int -> int -> unit) -> unit
(** [iter_in t v f] calls [f edge_id src] for each incoming edge of
    [v], in insertion order, without allocating. *)

val pp : Format.formatter -> t -> unit
