(** Single-source shortest paths with nonnegative edge weights.

    MOP (the paper's algorithm for networks) needs, for each commodity,
    both the distance labels under optimum-induced edge costs and the
    subgraph of edges lying on *some* shortest s–t path (footnote 5).
    The latter is characterized by
    [dist_from_s(src e) + w e + dist_to_t(dst e) = dist_from_s(t)].

    The kernel iterates the graph's CSR adjacency (see
    {!Digraph.out_offsets}) and can run inside a caller-owned
    {!workspace}, in which case repeated runs on the same graph perform
    no allocation — column-generation pricing does one run per
    commodity per round, and {!shortest_edge_subgraph} does two. *)

type result = {
  dist : float array;  (** [dist.(v)] — distance from the source; [infinity] if unreachable. *)
  pred : int array;
      (** [pred.(v)] — id of the edge entering [v] on one shortest path,
          or [-1] for the source and unreachable nodes. *)
}

(** {1 Workspaces} *)

type workspace
(** Reusable scratch state: dist/pred/settled arrays plus the heap.
    A workspace adapts to whatever graph it is run on (it reallocates
    when the node count changes); reusing one across runs on the same
    graph allocates nothing. Not domain-safe: use one workspace per
    domain (e.g. via [Domain.DLS]) in parallel code. *)

val workspace : ?hint:int -> unit -> workspace
(** Fresh empty workspace; [hint] presizes the heap. *)

(** {1 Runs}

    [validate] (default [false]) checks every weight is nonnegative
    before running and raises [Invalid_argument] otherwise — an O(m)
    scan that solver inner loops skip; tests and entry points handling
    untrusted data should pass [~validate:true].

    When [?workspace] is supplied, the returned {!result} {e aliases}
    the workspace arrays: it is valid until the workspace's next run.
    Without it a fresh workspace is allocated per call. *)

val run :
  ?validate:bool -> ?workspace:workspace -> Digraph.t -> weights:float array -> source:int ->
  result
(** Dijkstra from [source]. [weights] is indexed by edge id. *)

val run_reverse :
  ?validate:bool -> ?workspace:workspace -> Digraph.t -> weights:float array -> sink:int ->
  result
(** Distances *to* [sink] (Dijkstra on the reversed graph);
    [pred.(v)] is the edge leaving [v] on a shortest path to the sink. *)

val shortest_path :
  ?validate:bool -> ?workspace:workspace -> Digraph.t -> weights:float array -> src:int ->
  dst:int -> int list option
(** Edge ids of one shortest [src]–[dst] path (in path order), or [None]
    if unreachable. *)

val shortest_edge_subgraph :
  ?eps:float -> ?validate:bool -> ?workspaces:workspace * workspace -> Digraph.t ->
  weights:float array -> src:int -> dst:int -> bool array
(** [b.(e)] is true iff edge [e] lies on some shortest [src]–[dst] path,
    up to additive slack [eps] (default {!Sgr_numerics.Tolerance.check_eps})
    to absorb solver noise in the weights. [workspaces] is the
    (forward, reverse) scratch pair for the two underlying runs. *)
