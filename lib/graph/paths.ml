type t = int list

let source g = function
  | [] -> invalid_arg "Paths.source: empty path"
  | e :: _ -> (Digraph.edge g e).src

let target g path =
  match List.rev path with
  | [] -> invalid_arg "Paths.target: empty path"
  | e :: _ -> (Digraph.edge g e).dst

let nodes g = function
  | [] -> invalid_arg "Paths.nodes: empty path"
  | first :: _ as path ->
      (Digraph.edge g first).src :: List.map (fun e -> (Digraph.edge g e).dst) path

let is_valid g ~src ~dst path =
  match path with
  | [] -> false
  | _ ->
      let ns = nodes g path in
      let consecutive =
        let rec chk = function
          | e1 :: (e2 :: _ as rest) ->
              (Digraph.edge g e1).dst = (Digraph.edge g e2).src && chk rest
          | _ -> true
        in
        chk path
      in
      consecutive
      && List.hd ns = src
      && target g path = dst
      && List.length (List.sort_uniq compare ns) = List.length ns

let enumerate ?(limit = 20_000) g ~src ~dst =
  let visited = Array.make (Digraph.num_nodes g) false in
  let found = ref [] in
  let count = ref 0 in
  let rec dfs v acc =
    if v = dst then begin
      incr count;
      (* [Failure] is the documented cap contract: the CLI catches it to
         degrade gracefully on path-explosive networks. *)
      if !count > limit then
        (failwith "Paths.enumerate: path count exceeds limit") [@lint.allow "no-untyped-failure"];
      found := List.rev acc :: !found
    end
    else begin
      visited.(v) <- true;
      Digraph.iter_out g v (fun e w -> if not visited.(w) then dfs w (e :: acc));
      visited.(v) <- false
    end
  in
  dfs src [];
  List.rev !found

let default_count_cap = 1_000_000_000_000

(* Saturating add: both operands are <= cap <= 10^12 << max_int, so the
   sum itself never overflows; only the reported count saturates. *)
let sat_add cap a b = if a >= cap - b then cap else a + b

exception Capped

let default_count_steps = 20_000_000

let count ?(cap = default_count_cap) ?(max_steps = default_count_steps) g ~src ~dst =
  if cap < 1 then invalid_arg "Paths.count: cap must be positive";
  if max_steps < 1 then invalid_arg "Paths.count: max_steps must be positive";
  match Topology.topological_order g with
  | Some order ->
      (* DAG: every path is simple, so the path count is a DP over the
         reverse topological order with saturating sums. *)
      let ways = Array.make (Digraph.num_nodes g) 0 in
      ways.(dst) <- 1;
      for i = Array.length order - 1 downto 0 do
        let v = order.(i) in
        if v <> dst then begin
          let total = ref 0 in
          Digraph.iter_out g v (fun _ w -> total := sat_add cap !total ways.(w));
          ways.(v) <- !total
        end
      done;
      if ways.(src) >= cap then `At_least cap else `Exact ways.(src)
  | None ->
      (* Cyclic: count simple paths by DFS, stopping at the cap (no path
         lists are materialized, unlike [enumerate]). The cap alone does
         not bound the running time — a city-scale cyclic graph takes
         astronomically many edge steps before its path count saturates
         — so the walk also carries a step budget and bails with the
         lower bound found so far. *)
      let visited = Array.make (Digraph.num_nodes g) false in
      let found = ref 0 in
      let steps = ref 0 in
      let rec dfs v =
        if v = dst then begin
          incr found;
          if !found >= cap then raise Capped
        end
        else begin
          visited.(v) <- true;
          Digraph.iter_out g v (fun _ w ->
              incr steps;
              if !steps > max_steps then raise Capped;
              if not visited.(w) then dfs w);
          visited.(v) <- false
        end
      in
      (try
         dfs src;
         `Exact !found
       with Capped -> if !found >= cap then `At_least cap else `At_least !found)

let cost path costs = List.fold_left (fun acc e -> acc +. costs.(e)) 0.0 path

let pp g ppf path =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "→")
    Format.pp_print_int ppf (nodes g path)
