type t = int list

let source g = function
  | [] -> invalid_arg "Paths.source: empty path"
  | e :: _ -> (Digraph.edge g e).src

let target g path =
  match List.rev path with
  | [] -> invalid_arg "Paths.target: empty path"
  | e :: _ -> (Digraph.edge g e).dst

let nodes g = function
  | [] -> invalid_arg "Paths.nodes: empty path"
  | first :: _ as path ->
      (Digraph.edge g first).src :: List.map (fun e -> (Digraph.edge g e).dst) path

let is_valid g ~src ~dst path =
  match path with
  | [] -> false
  | _ ->
      let ns = nodes g path in
      let consecutive =
        let rec chk = function
          | e1 :: (e2 :: _ as rest) ->
              (Digraph.edge g e1).dst = (Digraph.edge g e2).src && chk rest
          | _ -> true
        in
        chk path
      in
      consecutive
      && List.hd ns = src
      && target g path = dst
      && List.length (List.sort_uniq compare ns) = List.length ns

let enumerate ?(limit = 20_000) g ~src ~dst =
  let visited = Array.make (Digraph.num_nodes g) false in
  let found = ref [] in
  let count = ref 0 in
  let rec dfs v acc =
    if v = dst then begin
      incr count;
      (* [Failure] is the documented cap contract: the CLI catches it to
         degrade gracefully on path-explosive networks. *)
      if !count > limit then
        (failwith "Paths.enumerate: path count exceeds limit") [@lint.allow "no-untyped-failure"];
      found := List.rev acc :: !found
    end
    else begin
      visited.(v) <- true;
      Digraph.iter_out g v (fun e w -> if not visited.(w) then dfs w (e :: acc));
      visited.(v) <- false
    end
  in
  dfs src [];
  List.rev !found

let cost path costs = List.fold_left (fun acc e -> acc +. costs.(e)) 0.0 path

let pp g ppf path =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "→")
    Format.pp_print_int ppf (nodes g path)
