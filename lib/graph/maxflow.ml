type result = { value : float; flow : float array }

module Obs = Sgr_obs.Obs

let c_runs = Obs.counter "maxflow.runs"
let c_aug = Obs.counter "maxflow.augmentations"

let solve ?(eps = 1e-12) g ~capacities ~src ~dst =
  Obs.incr c_runs;
  let m = Digraph.num_edges g in
  assert (Array.length capacities = m);
  assert (Array.for_all (fun c -> c >= 0.0) capacities);
  let flow = Array.make m 0.0 in
  let n = Digraph.num_nodes g in
  (* BFS over the residual network: forward arcs with remaining capacity,
     backward arcs with positive flow. The parent tag records direction. *)
  let find_augmenting () =
    let parent = Array.make n None in
    let visited = Array.make n false in
    let q = Queue.create () in
    visited.(src) <- true;
    Queue.push src q;
    let rec bfs () =
      if Queue.is_empty q || visited.(dst) then ()
      else begin
        let u = Queue.pop q in
        List.iter
          (fun (e : Digraph.edge) ->
            if (not visited.(e.dst)) && capacities.(e.id) -. flow.(e.id) > eps then begin
              visited.(e.dst) <- true;
              parent.(e.dst) <- Some (`Forward e.id, u);
              Queue.push e.dst q
            end)
          (Digraph.out_edges g u);
        List.iter
          (fun (e : Digraph.edge) ->
            if (not visited.(e.src)) && flow.(e.id) > eps then begin
              visited.(e.src) <- true;
              parent.(e.src) <- Some (`Backward e.id, u);
              Queue.push e.src q
            end)
          (Digraph.in_edges g u);
        bfs ()
      end
    in
    bfs ();
    if not visited.(dst) then None
    else begin
      (* Walk back from dst collecting the residual path. *)
      let rec walk v acc =
        if v = src then acc
        else
          match parent.(v) with
          | None -> assert false
          | Some (arc, u) -> walk u (arc :: acc)
      in
      Some (walk dst [])
    end
  in
  let bottleneck path =
    List.fold_left
      (fun acc arc ->
        match arc with
        | `Forward e -> Float.min acc (capacities.(e) -. flow.(e))
        | `Backward e -> Float.min acc flow.(e))
      Float.infinity path
  in
  let augment path delta =
    List.iter
      (function
        | `Forward e -> flow.(e) <- flow.(e) +. delta
        | `Backward e -> flow.(e) <- flow.(e) -. delta)
      path
  in
  let value = ref 0.0 in
  let rec loop () =
    match find_augmenting () with
    | None -> ()
    | Some path ->
        let delta = bottleneck path in
        if delta > eps then begin
          Obs.incr c_aug;
          augment path delta;
          value := !value +. delta;
          loop ()
        end
  in
  loop ();
  { value = !value; flow }
