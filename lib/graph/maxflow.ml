type result = { value : float; flow : float array }

module Obs = Sgr_obs.Obs

let c_runs = Obs.counter "maxflow.runs"
let c_aug = Obs.counter "maxflow.augmentations"

let solve ?(eps = 1e-12) g ~capacities ~src ~dst =
  Obs.incr c_runs;
  let m = Digraph.num_edges g in
  assert (Array.length capacities = m);
  assert (Array.for_all (fun c -> c >= 0.0) capacities);
  let flow = Array.make m 0.0 in
  let n = Digraph.num_nodes g in
  (* BFS scratch, reused across augmentations: the parent arc of each
     visited node as (edge id, direction), -1 = unvisited. *)
  let parent_edge = Array.make n (-1) in
  let parent_fwd = Array.make n false in
  let queue = Array.make n 0 in
  let sources = Digraph.edge_sources g and targets = Digraph.edge_targets g in
  (* BFS over the residual network: forward arcs with remaining capacity,
     backward arcs with positive flow. *)
  let find_augmenting () =
    Array.fill parent_edge 0 n (-1);
    let head = ref 0 and tail = ref 0 in
    let push v = queue.(!tail) <- v; incr tail in
    let visited v = v = src || parent_edge.(v) >= 0 in
    push src;
    while !head < !tail && not (visited dst) do
      let u = queue.(!head) in
      incr head;
      Digraph.iter_out g u (fun e v ->
          if (not (visited v)) && capacities.(e) -. flow.(e) > eps then begin
            parent_edge.(v) <- e;
            parent_fwd.(v) <- true;
            push v
          end);
      Digraph.iter_in g u (fun e v ->
          if (not (visited v)) && flow.(e) > eps then begin
            parent_edge.(v) <- e;
            parent_fwd.(v) <- false;
            push v
          end)
    done;
    if not (visited dst) then None
    else begin
      (* Walk back from dst collecting the residual path. *)
      let rec walk v acc =
        if v = src then acc
        else
          let e = parent_edge.(v) in
          if parent_fwd.(v) then walk sources.(e) (`Forward e :: acc)
          else walk targets.(e) (`Backward e :: acc)
      in
      Some (walk dst [])
    end
  in
  let bottleneck path =
    List.fold_left
      (fun acc arc ->
        match arc with
        | `Forward e -> Float.min acc (capacities.(e) -. flow.(e))
        | `Backward e -> Float.min acc flow.(e))
      Float.infinity path
  in
  let augment path delta =
    List.iter
      (function
        | `Forward e -> flow.(e) <- flow.(e) +. delta
        | `Backward e -> flow.(e) <- flow.(e) -. delta)
      path
  in
  let value = ref 0.0 in
  let rec loop () =
    match find_augmenting () with
    | None -> ()
    | Some path ->
        let delta = bottleneck path in
        if delta > eps then begin
          Obs.incr c_aug;
          augment path delta;
          value := !value +. delta;
          loop ()
        end
  in
  loop ();
  { value = !value; flow }
