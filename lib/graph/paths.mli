(** Simple paths as edge-id lists.

    Path enumeration is intentionally exhaustive (the path-equilibration
    solver and the experiments run on small/medium networks); callers that
    need scalability use the edge-based Frank–Wolfe solver instead. *)

type t = int list
(** Edge ids in path order (head edge leaves the path's source). *)

val source : Digraph.t -> t -> int
(** First node of a nonempty path. @raise Invalid_argument on []. *)

val target : Digraph.t -> t -> int
(** Last node of a nonempty path. @raise Invalid_argument on []. *)

val nodes : Digraph.t -> t -> int list
(** Node sequence visited, source first. *)

val is_valid : Digraph.t -> src:int -> dst:int -> t -> bool
(** Edges are consecutive, start at [src], end at [dst], and no node
    repeats. *)

val enumerate : ?limit:int -> Digraph.t -> src:int -> dst:int -> t list
(** All simple [src]–[dst] paths by DFS, in lexicographic edge-id order.
    @raise Failure when more than [limit] (default [20_000]) paths exist. *)

val count :
  ?cap:int ->
  ?max_steps:int ->
  Digraph.t ->
  src:int ->
  dst:int ->
  [ `Exact of int | `At_least of int ]
(** Number of simple [src]–[dst] paths, without materializing them.
    Saturates at [cap] (default [10^12]) instead of overflowing: on DAGs
    the count is a saturating dynamic program over the topological order
    (always O(nodes + edges)), on cyclic graphs a DFS that stops as soon
    as [cap] paths have been seen. The DFS also carries a work budget of
    [max_steps] edge traversals (default [2·10^7]) — a large cyclic
    graph would take astronomically long to reach any reasonable [cap] —
    and bails with the lower bound counted so far. [`At_least n] means
    the true count is [>= n].
    @raise Invalid_argument when [cap < 1] or [max_steps < 1]. *)

val cost : t -> float array -> float
(** Sum of per-edge costs along the path. *)

val pp : Digraph.t -> Format.formatter -> t -> unit
(** Prints the node sequence, e.g. ["0→2→3"]. *)
