type edge = { id : int; src : int; dst : int }

type t = {
  num_nodes : int;
  edges : edge array;
  out_adj : edge list array;
  in_adj : edge list array;
  (* CSR adjacency: [out_ids.(out_off.(v)) .. out_ids.(out_off.(v+1)-1)]
     are the ids of v's outgoing edges in insertion order (same for the
     in-side), and [edge_src]/[edge_dst] are the flat endpoint arrays,
     indexed by edge id. The hot kernels (Dijkstra, max-flow, path
     enumeration) iterate these instead of the adjacency lists. *)
  edge_src : int array;
  edge_dst : int array;
  out_off : int array;
  out_ids : int array;
  in_off : int array;
  in_ids : int array;
}

type builder = { n : int; mutable rev_edges : edge list; mutable count : int }

let builder ~num_nodes =
  if num_nodes <= 0 then invalid_arg "Digraph.builder: need at least one node";
  { n = num_nodes; rev_edges = []; count = 0 }

let add_edge b ~src ~dst =
  if src < 0 || src >= b.n || dst < 0 || dst >= b.n then
    invalid_arg "Digraph.add_edge: endpoint out of range";
  if src = dst then invalid_arg "Digraph.add_edge: self loops are not allowed";
  let e = { id = b.count; src; dst } in
  b.rev_edges <- e :: b.rev_edges;
  b.count <- b.count + 1;
  e.id

(* Counting sort of edge ids by [key]: offsets, then a fill pass in
   insertion order so each node's slice preserves edge-id order. *)
let csr_of ~n ~m ~key =
  let off = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    off.(key e + 1) <- off.(key e + 1) + 1
  done;
  for v = 1 to n do
    off.(v) <- off.(v) + off.(v - 1)
  done;
  let ids = Array.make m 0 in
  let cursor = Array.copy off in
  for e = 0 to m - 1 do
    let v = key e in
    ids.(cursor.(v)) <- e;
    cursor.(v) <- cursor.(v) + 1
  done;
  (off, ids)

let freeze b =
  let edges = Array.of_list (List.rev b.rev_edges) in
  let m = Array.length edges in
  let out_adj = Array.make b.n [] and in_adj = Array.make b.n [] in
  (* Build adjacency in reverse so the lists end up in insertion order. *)
  for i = m - 1 downto 0 do
    let e = edges.(i) in
    out_adj.(e.src) <- e :: out_adj.(e.src);
    in_adj.(e.dst) <- e :: in_adj.(e.dst)
  done;
  let edge_src = Array.map (fun e -> e.src) edges in
  let edge_dst = Array.map (fun e -> e.dst) edges in
  let out_off, out_ids = csr_of ~n:b.n ~m ~key:(fun e -> edge_src.(e)) in
  let in_off, in_ids = csr_of ~n:b.n ~m ~key:(fun e -> edge_dst.(e)) in
  { num_nodes = b.n; edges; out_adj; in_adj; edge_src; edge_dst; out_off; out_ids; in_off; in_ids }

let of_edges ~num_nodes pairs =
  let b = builder ~num_nodes in
  List.iter (fun (src, dst) -> ignore (add_edge b ~src ~dst)) pairs;
  freeze b

let num_nodes t = t.num_nodes
let num_edges t = Array.length t.edges

let edge t i =
  if i < 0 || i >= Array.length t.edges then invalid_arg "Digraph.edge: id out of range";
  t.edges.(i)

let edges t = t.edges
let out_edges t v = t.out_adj.(v)
let in_edges t v = t.in_adj.(v)
let fold_edges f t init = Array.fold_left (fun acc e -> f e acc) init t.edges
let edge_sources t = t.edge_src
let edge_targets t = t.edge_dst
let out_offsets t = t.out_off
let out_edge_ids t = t.out_ids
let in_offsets t = t.in_off
let in_edge_ids t = t.in_ids

let iter_out t v f =
  for k = t.out_off.(v) to t.out_off.(v + 1) - 1 do
    let e = t.out_ids.(k) in
    f e t.edge_dst.(e)
  done

let iter_in t v f =
  for k = t.in_off.(v) to t.in_off.(v + 1) - 1 do
    let e = t.in_ids.(k) in
    f e t.edge_src.(e)
  done

let pp ppf t =
  Format.fprintf ppf "@[<v>digraph: %d nodes, %d edges" t.num_nodes (Array.length t.edges);
  Array.iter (fun e -> Format.fprintf ppf "@,  e%d: %d -> %d" e.id e.src e.dst) t.edges;
  Format.fprintf ppf "@]"
