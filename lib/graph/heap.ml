(* Parallel-array layout: priorities live in an unboxed float array and
   payloads in an int array, so [insert] writes two slots and allocates
   nothing once capacity is reached. Payloads are ints (node or edge
   ids) on purpose: a polymorphic payload array would route every store
   through the write barrier, which is measurably slower once a
   long-lived heap's arrays are promoted to the major heap — exactly
   the reusable-workspace case. *)

type t = {
  mutable prios : float array;
  mutable payloads : int array;
  mutable len : int;
  hint : int;
}

let create ?(hint = 0) () = { prios = [||]; payloads = [||]; len = 0; hint = max 0 hint }
let is_empty h = h.len = 0
let size h = h.len
let clear h = h.len <- 0

let grow h =
  let cap = Array.length h.prios in
  if h.len = cap then begin
    let ncap = if cap = 0 then max 16 h.hint else 2 * cap in
    let np = Array.make ncap 0.0 and nd = Array.make ncap 0 in
    Array.blit h.prios 0 np 0 h.len;
    Array.blit h.payloads 0 nd 0 h.len;
    h.prios <- np;
    h.payloads <- nd
  end

let swap h i j =
  let p = h.prios.(i) and d = h.payloads.(i) in
  h.prios.(i) <- h.prios.(j);
  h.payloads.(i) <- h.payloads.(j);
  h.prios.(j) <- p;
  h.payloads.(j) <- d

let insert h prio payload =
  grow h;
  let i = ref h.len in
  h.len <- h.len + 1;
  h.prios.(!i) <- prio;
  h.payloads.(!i) <- payload;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if h.prios.(parent) > h.prios.(!i) then begin
      swap h parent !i;
      i := parent
    end
    else continue := false
  done

let pop h =
  if h.len = 0 then -1
  else begin
    let top_payload = h.payloads.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.prios.(0) <- h.prios.(h.len);
      h.payloads.(0) <- h.payloads.(h.len);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && h.prios.(l) < h.prios.(!smallest) then smallest := l;
        if r < h.len && h.prios.(r) < h.prios.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap h !smallest !i;
          i := !smallest
        end
        else continue := false
      done
    end;
    top_payload
  end

let pop_min h =
  if h.len = 0 then None
  else begin
    let prio = h.prios.(0) in
    Some (prio, pop h)
  end
