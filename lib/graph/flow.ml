let excess g ~flow v =
  let acc = ref 0.0 in
  Digraph.iter_out g v (fun e _ -> acc := !acc +. flow.(e));
  Digraph.iter_in g v (fun e _ -> acc := !acc -. flow.(e));
  !acc

let is_feasible ?(eps = Sgr_numerics.Tolerance.check_eps) g ~flow ~src ~dst ~demand =
  Array.for_all (fun f -> f >= -.eps) flow
  &&
  let ok = ref true in
  for v = 0 to Digraph.num_nodes g - 1 do
    let want = if v = src then demand else if v = dst then -.demand else 0.0 in
    if Float.abs (excess g ~flow v -. want) > eps *. Float.max 1.0 demand then ok := false
  done;
  !ok

let decompose ?(eps = 1e-9) g ~flow ~src ~dst =
  let residual = Array.copy flow in
  let n = Digraph.num_nodes g in
  let result = ref [] in
  (* Trace one source→sink path through edges still carrying flow. *)
  let trace () =
    let visited = Array.make n false in
    let rec go v acc =
      if v = dst then Some (List.rev acc)
      else begin
        if visited.(v) then
          (* Bad-input contract, not an internal invariant: callers feed
             user-supplied flows and expect [Failure]. *)
          (failwith "Flow.decompose: cycle in positive-flow subgraph")
          [@lint.allow "no-untyped-failure"];
        visited.(v) <- true;
        (* First outgoing edge (in insertion order) still carrying flow. *)
        let off = Digraph.out_offsets g and ids = Digraph.out_edge_ids g in
        let next = ref (-1) in
        let k = ref off.(v) in
        while !next < 0 && !k < off.(v + 1) do
          if residual.(ids.(!k)) > eps then next := ids.(!k);
          incr k
        done;
        if !next < 0 then None else go (Digraph.edge_targets g).(!next) (!next :: acc)
      end
    in
    go src []
  in
  let continue = ref true in
  while !continue do
    match trace () with
    | None -> continue := false
    | Some [] -> continue := false
    | Some path ->
        let bottleneck =
          List.fold_left (fun acc e -> Float.min acc residual.(e)) Float.infinity path
        in
        List.iter (fun e -> residual.(e) <- residual.(e) -. bottleneck) path;
        if bottleneck > eps then result := (path, bottleneck) :: !result
  done;
  List.rev !result

let of_paths g paths =
  let flow = Array.make (Digraph.num_edges g) 0.0 in
  List.iter (fun (path, amount) -> List.iter (fun e -> flow.(e) <- flow.(e) +. amount) path) paths;
  flow
