let topological_order g =
  let n = Digraph.num_nodes g in
  let indeg = Array.make n 0 in
  Digraph.fold_edges (fun e () -> indeg.(e.Digraph.dst) <- indeg.(e.Digraph.dst) + 1) g ();
  (* A sorted-by-id frontier keeps the order deterministic. *)
  let module IntSet = Set.Make (Int) in
  let frontier = ref IntSet.empty in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then frontier := IntSet.add v !frontier
  done;
  let order = Array.make n 0 in
  let placed = ref 0 in
  while not (IntSet.is_empty !frontier) do
    let v = IntSet.min_elt !frontier in
    frontier := IntSet.remove v !frontier;
    order.(!placed) <- v;
    incr placed;
    Digraph.iter_out g v (fun _ w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then frontier := IntSet.add w !frontier)
  done;
  if !placed = n then Some order else None

let is_dag g = Option.is_some (topological_order g)

let has_cycle_in_support g ~support =
  (* DFS with colors restricted to supported edges. *)
  let n = Digraph.num_nodes g in
  let color = Array.make n 0 in
  (* 0 white, 1 grey, 2 black *)
  let rec visit v =
    if color.(v) = 1 then true
    else if color.(v) = 2 then false
    else begin
      color.(v) <- 1;
      let cyc =
        List.exists
          (fun (e : Digraph.edge) -> support.(e.id) && visit e.dst)
          (Digraph.out_edges g v)
      in
      color.(v) <- 2;
      cyc
    end
  in
  let found = ref false in
  for v = 0 to n - 1 do
    if (not !found) && color.(v) = 0 then found := visit v
  done;
  !found

let bfs iter g origin =
  let seen = Array.make (Digraph.num_nodes g) false in
  let q = Queue.create () in
  seen.(origin) <- true;
  Queue.push origin q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    iter g v (fun _ u ->
        if not seen.(u) then begin
          seen.(u) <- true;
          Queue.push u q
        end)
  done;
  seen

let reachable_from g v = bfs Digraph.iter_out g v
let co_reachable_to g v = bfs Digraph.iter_in g v
