(** Minimal binary min-heap of [(priority, int payload)] pairs for
    Dijkstra.

    Stale entries are handled by the caller (lazy deletion), so only
    [insert], [pop]/[pop_min] and [clear] are needed. Priorities and
    payloads are stored in parallel unboxed arrays ([float array] /
    [int array]): inserting allocates only when the heap grows, a
    cleared heap refills allocation-free, and no store goes through the
    GC write barrier (payloads are deliberately monomorphic ints — node
    or edge ids — for that reason). *)

type t

val create : ?hint:int -> unit -> t
(** Fresh empty heap. [hint] sizes the first capacity allocation (the
    heap still grows past it on demand). *)

val is_empty : t -> bool
val size : t -> int
val insert : t -> float -> int -> unit

val pop : t -> int
(** Removes the payload with the smallest priority and returns it, or
    [-1] when the heap is empty. Allocation-free — the hot-path variant
    of {!pop_min}. Payloads inserted by well-behaved callers are ids,
    hence nonnegative, so [-1] is unambiguous. *)

val pop_min : t -> (float * int) option
(** Like {!pop}, also reporting the priority. Allocates the returned
    option. *)

val clear : t -> unit
(** Empty the heap, keeping its capacity, so the next fill does not
    reallocate. Old payload slots are not erased (they are overwritten
    by later inserts), so clearing does not release payload memory. *)
