(** Instance catalog: the paper's worked examples plus generators for
    random instances used in tests, experiments and benchmarks.

    Every generator takes an explicit {!Sgr_numerics.Prng.t}, so any
    instance is reproducible from its seed. *)

module Links = Sgr_links.Links
module Network = Sgr_network.Network

(** {1 The paper's named instances} *)

val pigou : Links.t
(** Figs. 1–3: [ℓ₁(x) = x], [ℓ₂(x) = 1], [r = 1]. PoA = 4/3; the Leader
    needs [β = 1/2] (strategy ⟨0, 1/2⟩) to induce the optimum. *)

val fig456 : Links.t
(** Figs. 4–6 (OpTop illustration): five links with
    [ℓ₁ = x, ℓ₂ = 3/2·x, ℓ₃ = 2x, ℓ₄ = 5/2·x + 1/6, ℓ₅ = 7/10], [r = 1].
    OpTop freezes M₄ and M₅ in one round; [β_M = o₄ + o₅ = 29/120]. *)

val fig7 : ?epsilon:float -> unit -> Network.t
(** Fig. 7 — Roughgarden's Braess-like lower-bound graph
    ([41, Example 6.5.1]), reconstructed so that the optimum matches the
    published caption exactly (see DESIGN.md): nodes s=0, v=1, w=2, t=3;
    [ℓ(x) = x] on s→v, v→w, w→t; [ℓ(x) = (2-8ε) + x] on s→w, v→t; [r = 1].
    Optimal flows: [o_sv = o_wt = 3/4-ε], [o_sw = o_vt = 1/4+ε],
    [o_vw = 1/2-2ε]; MOP gives [β_G = 1/2+2ε]. Default [ε = 0.02];
    requires [0 <= ε < 1/8] (so that s→v→w→t stays the unique shortest
    path under optimal costs). *)

val fig7_edge_names : string array
(** Labels of {!fig7}'s edges by edge id: s→v, s→w, v→w, v→t, w→t. *)

val braess_classic : ?demand:float -> unit -> Network.t
(** The classic Braess paradox graph: [ℓ(x) = x] on s→v and w→t, [ℓ = 1]
    on s→w and v→t, [ℓ = 0] on the shortcut v→w; demand 1 by default.
    Nash cost 2, optimum 3/2 — and no Stackelberg strategy helps (the
    negative example of Section 1.1(ii)). Edge order as in {!fig7}. *)

val mm1_links : capacities:float array -> demand:float -> Links.t
(** M/M/1 parallel links [ℓᵢ(x) = 1/(cᵢ - x)] (the Korilis–Lazar–Orda
    setting the paper cites for non-optimizing behaviour below β). *)

val two_commodity : unit -> Network.t
(** A 6-node, 2-commodity instance exercising Theorem 2.1: two
    overlapping diamonds sharing a congested middle edge. *)

(** {1 Worst-case families} *)

val pigou_degree : int -> Links.t
(** The degree-[d] Pigou instance [ℓ₁(x) = x^d], [ℓ₂(x) = 1], [r = 1]:
    its price of anarchy approaches
    {!Stackelberg.Bounds.poa_polynomial}[ d] and grows without bound in
    [d] — the paper's opening claim that the coordination ratio of
    Expression (1) "can be arbitrarily larger than 1" [42]. *)

val pigou_degree_poa : int -> float
(** Closed-form PoA of {!pigou_degree}:
    [1 / (1 - d·(d+1)^(-(d+1)/d))]. *)

val pigou_degree_beta : int -> float
(** Closed-form price of optimum of {!pigou_degree}: the optimum load of
    the constant link, [1 - (d+1)^(-1/d)]. *)

val braess_unbounded : ?degree:int -> unit -> Network.t
(** The degree-[d] Braess family: like {!braess_classic} but with
    [ℓ(x) = x^d] on the congestible edges (default degree 2). At [d = 1]
    the optimum avoids the shortcut entirely and [β_G = 1]; for [d > 1]
    the optimum routes [2(d+1)^(-1/d) - 1] through the shortcut and
    [β_G = ]{!braess_unbounded_beta}[ d < 1]. *)

val braess_unbounded_beta : int -> float
(** Closed-form price of optimum of {!braess_unbounded}:
    [2·(1 - (d+1)^(-1/d))]. Equals 1 at [d = 1] (the classic paradox
    graph, where the Leader needs everything) and decreases toward 0 as
    [d] grows. *)

(** {1 Random generators} *)

val random_affine_links :
  Sgr_numerics.Prng.t -> m:int -> ?demand:float -> unit -> Links.t
(** [m] links with slopes in [[0.5, 3]] and intercepts in [[0, 2]]. *)

val random_common_slope_links :
  Sgr_numerics.Prng.t -> m:int -> ?slope:float -> ?demand:float -> unit -> Links.t
(** Theorem 2.4's class: one common slope (default drawn in [[0.5, 2]]),
    intercepts drawn in [[0, 2]] and sorted increasingly. *)

val random_polynomial_links :
  Sgr_numerics.Prng.t -> m:int -> ?max_degree:int -> ?demand:float -> unit -> Links.t
(** Random monomial-plus-constant latencies [c·x^d + b], [d <= max_degree]
    (default 4). *)

val random_mm1_links :
  Sgr_numerics.Prng.t -> m:int -> ?demand:float -> unit -> Links.t
(** Random M/M/1 capacities, scaled so total capacity is twice demand. *)

val random_layered_network :
  Sgr_numerics.Prng.t ->
  layers:int ->
  width:int ->
  ?extra_edges:int ->
  ?demand:float ->
  unit ->
  Network.t
(** Single-commodity layered DAG: a source fans out to [layers] layers of
    [width] nodes each, then into a sink; consecutive layers are fully
    connected and [extra_edges] random skip edges are added. Affine
    latencies with random coefficients. *)

val grid_network :
  Sgr_numerics.Prng.t -> rows:int -> cols:int -> ?demand:float -> unit -> Network.t
(** [rows]×[cols] directed grid (edges point right and down) from the
    top-left to the bottom-right corner, with randomized BPR latencies —
    a small "city" road network. *)

val random_multicommodity :
  Sgr_numerics.Prng.t ->
  rows:int ->
  cols:int ->
  commodities:int ->
  ?demand_hi:float ->
  unit ->
  Network.t
(** A [rows]×[cols] grid with affine latencies and [commodities] random
    source–destination pairs (each source strictly north-west of its
    destination so every pair is routable); per-commodity demands drawn
    in [(0, demand_hi]] (default 1). Exercises Theorem 2.1's k-commodity
    setting. @raise Invalid_argument when a grid smaller than 2×2 or no
    commodities are requested. *)

val synthetic_city :
  Sgr_numerics.Prng.t ->
  rings:int ->
  radials:int ->
  ?commodities:int ->
  ?demand:float ->
  unit ->
  Network.t
(** A parameterized ring-and-radial "city": a centre node, [rings]
    concentric rings of [radials] nodes each, radial arterials between
    consecutive rings (and the centre) and ring roads around each ring —
    every adjacency carried by a directed edge in each direction, so the
    graph is strongly connected and has exactly [4·rings·radials] edges
    ([rings=25, radials=100] gives the 10^4-edge tier, [100×250] the
    10^5 tier).

    Latencies are BPR-like affine curves [t₀·(1 + α·x/c)] — intercept
    the free-flow time [t₀] (edge length over class speed: arterials are
    fast, outer ring roads long and slow), slope [t₀·α/c] from the edge
    capacity [c] (arterials wide, ring roads narrower). [commodities]
    (default 16) random origin–destination pairs with demands in
    [[0.5, 1.5]·demand] (default 1); every pair is routable by strong
    connectivity. @raise Invalid_argument when [rings < 1],
    [radials < 3] or [commodities < 1]. *)
