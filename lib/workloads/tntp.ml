module Network = Sgr_network.Network
module L = Sgr_latency.Latency
module G = Sgr_graph

let fs = Printf.sprintf "%.17g"

(* ---------------- parsing ---------------- *)

let is_comment line = line = "" || line.[0] = '~' || line.[0] = '#'

(* Published TNTP files attach the separators to the numbers
   ("2 : 0.5;"), so ';' and ':' become tokens of their own. *)
let tokens line =
  let buf = Buffer.create (String.length line + 8) in
  String.iter
    (fun c ->
      match c with
      | '\t' -> Buffer.add_char buf ' '
      | ';' | ':' ->
          Buffer.add_char buf ' ';
          Buffer.add_char buf c;
          Buffer.add_char buf ' '
      | c -> Buffer.add_char buf c)
    line;
  String.split_on_char ' ' (Buffer.contents buf)
  |> List.map String.trim
  |> List.filter (fun w -> w <> "")

(* Metadata headers look like [<NUMBER OF NODES> 25]; the value is the
   first token after the closing bracket. *)
let metadata line =
  if String.length line > 0 && line.[0] = '<' then
    match String.index_opt line '>' with
    | None -> None
    | Some i ->
        let key = String.sub line 1 (i - 1) in
        let rest = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        Some (String.uppercase_ascii key, rest)
  else None

let err ln fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" ln m)) fmt

let float_field ln name w k =
  match float_of_string_opt w with
  | Some v when Float.is_finite v -> k v
  | _ -> err ln "bad %s %S" name w

let int_field ln name w k =
  match int_of_string_opt w with Some v -> k v | None -> err ln "bad %s %S" name w

let parse_net text =
  let lines = String.split_on_char '\n' text in
  let nodes = ref None and links = ref None in
  let rows = ref [] in
  let rec scan ln = function
    | [] -> Ok ()
    | raw :: rest -> (
        let line = String.trim raw in
        if is_comment line then scan (ln + 1) rest
        else
          match metadata line with
          | Some ("NUMBER OF NODES", v) ->
              int_field ln "node count" v (fun n ->
                  nodes := Some n;
                  scan (ln + 1) rest)
          | Some ("NUMBER OF LINKS", v) ->
              int_field ln "link count" v (fun n ->
                  links := Some n;
                  scan (ln + 1) rest)
          | Some _ -> scan (ln + 1) rest (* FIRST THRU NODE, END OF METADATA, ... *)
          | None -> (
              match tokens line with
              | init :: term :: capacity :: _length :: fftime :: b :: power :: _ ->
                  int_field ln "init node" init @@ fun src ->
                  int_field ln "term node" term @@ fun dst ->
                  float_field ln "capacity" capacity @@ fun cap ->
                  float_field ln "free flow time" fftime @@ fun t0 ->
                  float_field ln "b" b @@ fun alpha ->
                  float_field ln "power" power @@ fun beta ->
                  if cap <= 0.0 then err ln "capacity must be positive"
                  else if t0 < 0.0 || alpha < 0.0 then err ln "negative BPR parameter"
                  else if beta < 1.0 then err ln "power must be >= 1"
                  else begin
                    rows := (ln, src, dst, cap, t0, alpha, beta) :: !rows;
                    scan (ln + 1) rest
                  end
              | _ -> err ln "malformed link row %S" line))
  in
  match scan 1 lines with
  | Error _ as e -> e
  | Ok () -> (
      match !nodes with
      | None -> Error "missing <NUMBER OF NODES> metadata"
      | Some n ->
          let rows = List.rev !rows in
          (match !links with
          | Some l when l <> List.length rows ->
              Error
                (Printf.sprintf "<NUMBER OF LINKS> says %d but the table has %d rows" l
                   (List.length rows))
          | _ -> Ok ())
          |> Result.map (fun () -> (n, rows)))

let build_net (n, rows) =
  let b = G.Digraph.builder ~num_nodes:n in
  let rec add lats = function
    | [] -> Ok (List.rev lats)
    | (ln, src, dst, cap, t0, alpha, beta) :: rest ->
        if src < 1 || src > n || dst < 1 || dst > n then
          err ln "node id out of range [1, %d]" n
        else begin
          ignore (G.Digraph.add_edge b ~src:(src - 1) ~dst:(dst - 1));
          add (L.bpr ~free_flow:t0 ~capacity:cap ~alpha ~beta:beta () :: lats) rest
        end
  in
  match add [] rows with
  | Error _ as e -> e
  | Ok lats -> Ok (G.Digraph.freeze b, Array.of_list lats)

let parse_trips ~num_nodes text =
  let lines = String.split_on_char '\n' text in
  let commodities = ref [] in
  let origin = ref None in
  let pair ln w =
    (* One "dst : demand ;" group, tokens already split. *)
    match w with
    | [ d; ":"; v ] ->
        int_field ln "destination" d @@ fun dst ->
        float_field ln "demand" v @@ fun demand ->
        if dst < 1 || dst > num_nodes then err ln "destination out of range"
        else if demand < 0.0 then err ln "negative demand"
        else begin
          (match !origin with
          | Some src when demand > 0.0 ->
              commodities := { Network.src = src - 1; dst = dst - 1; demand } :: !commodities
          | Some _ -> ()
          | None -> ());
          if !origin = None then err ln "destination pair before any Origin header"
          else Ok ()
        end
    | _ -> err ln "malformed destination pair"
  in
  let rec groups ln = function
    | [] -> Ok ()
    | [] :: rest -> groups ln rest
    | w :: rest -> (
        (* Split a physical line on ';' into pairs. *)
        match w with
        | [ "Origin"; o ] ->
            int_field ln "origin" o @@ fun src ->
            if src < 1 || src > num_nodes then err ln "origin out of range"
            else begin
              origin := Some src;
              groups ln rest
            end
        | _ ->
            let rec pairs acc = function
              | [] -> Ok acc
              | ";" :: more -> pairs acc more
              | d :: ":" :: v :: more -> (
                  match pair ln [ d; ":"; v ] with
                  | Error _ as e -> e
                  | Ok () -> pairs acc more)
              | tok :: _ -> err ln "unexpected token %S in trips" tok
            in
            (match pairs () w with Error _ as e -> e | Ok () -> groups ln rest))
  in
  let token_lines =
    List.mapi
      (fun i raw ->
        let line = String.trim raw in
        if is_comment line || metadata line <> None then (i + 1, [])
        else (i + 1, tokens line))
      lines
  in
  let rec run = function
    | [] -> Ok ()
    | (ln, w) :: rest -> ( match groups ln [ w ] with Error _ as e -> e | Ok () -> run rest)
  in
  match run token_lines with
  | Error _ as e -> e
  | Ok () -> Ok (Array.of_list (List.rev !commodities))

let parse ~net ~trips =
  match parse_net net with
  | Error _ as e -> e
  | Ok meta -> (
      match build_net meta with
      | Error _ as e -> e
      | Ok (g, latencies) -> (
          match parse_trips ~num_nodes:(G.Digraph.num_nodes g) trips with
          | Error _ as e -> e
          | Ok commodities -> (
              match Network.make g ~latencies ~commodities with
              | net -> Ok net
              | exception Invalid_argument m -> Error m)))

(* ---------------- printing ---------------- *)

let bpr_row lat =
  match L.kind lat with
  | L.Bpr { free_flow; capacity; alpha; beta } -> Ok (capacity, free_flow, alpha, beta)
  | L.Affine { slope; intercept } when intercept > 0.0 ->
      (* t0·(1 + b·x/c) with c = 1: b = slope / intercept. *)
      Ok (1.0, intercept, slope /. intercept, 1.0)
  | L.Constant c -> Ok (1.0, c, 0.0, 1.0)
  | _ -> Error (Printf.sprintf "latency %s has no BPR encoding" (L.to_string lat))

let print_net (net : Network.t) =
  let g = net.Network.graph in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "<NUMBER OF NODES> %d\n" (G.Digraph.num_nodes g));
  Buffer.add_string buf (Printf.sprintf "<NUMBER OF LINKS> %d\n" (G.Digraph.num_edges g));
  Buffer.add_string buf "<FIRST THRU NODE> 1\n<END OF METADATA>\n";
  Buffer.add_string buf "~ init term capacity length fftime b power speed toll type ;\n";
  let src = G.Digraph.edge_sources g and dst = G.Digraph.edge_targets g in
  let rec rows e =
    if e = G.Digraph.num_edges g then Ok ()
    else
      match bpr_row net.Network.latencies.(e) with
      | Error m -> Error (Printf.sprintf "edge %d: %s" e m)
      | Ok (cap, t0, alpha, beta) ->
          Buffer.add_string buf
            (Printf.sprintf "%d %d %s 1 %s %s %s 0 0 1 ;\n" (src.(e) + 1) (dst.(e) + 1)
               (fs cap) (fs t0) (fs alpha) (fs beta));
          rows (e + 1)
  in
  match rows 0 with Error _ as e -> e | Ok () -> Ok (Buffer.contents buf)

let print_trips (net : Network.t) =
  let buf = Buffer.create 256 in
  let ks = net.Network.commodities in
  let origins = ref [] in
  Array.iter
    (fun (c : Network.commodity) ->
      if not (List.mem c.Network.src !origins) then origins := c.Network.src :: !origins)
    ks;
  let origins = List.rev !origins in
  Buffer.add_string buf (Printf.sprintf "<NUMBER OF ZONES> %d\n" (List.length origins));
  Buffer.add_string buf "<END OF METADATA>\n";
  List.iter
    (fun o ->
      Buffer.add_string buf (Printf.sprintf "Origin %d\n" (o + 1));
      Array.iter
        (fun (c : Network.commodity) ->
          if c.Network.src = o then
            Buffer.add_string buf
              (Printf.sprintf "  %d : %s ;\n" (c.Network.dst + 1) (fs c.Network.demand)))
        ks)
    origins;
  Buffer.contents buf
