module Links = Sgr_links.Links
module Network = Sgr_network.Network
module L = Sgr_latency.Latency
module G = Sgr_graph
module Prng = Sgr_numerics.Prng

(* ------------------------------------------------------------------ *)
(* Named instances                                                     *)
(* ------------------------------------------------------------------ *)

let pigou = Links.make [| L.linear 1.0; L.constant 1.0 |] ~demand:1.0

let fig456 =
  Links.make
    [|
      L.linear 1.0;
      L.linear 1.5;
      L.linear 2.0;
      L.affine ~slope:2.5 ~intercept:(1.0 /. 6.0);
      L.constant 0.7;
    |]
    ~demand:1.0

let fig7_edge_names = [| "s->v"; "s->w"; "v->w"; "v->t"; "w->t" |]

(* Nodes: s=0, v=1, w=2, t=3. Edge ids follow [fig7_edge_names]. *)
let braess_graph () = G.Digraph.of_edges ~num_nodes:4 [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ]

let fig7 ?(epsilon = 0.02) () =
  if not (0.0 <= epsilon && epsilon < 0.125) then
    invalid_arg "Workloads.fig7: epsilon must lie in [0, 1/8)";
  let g = braess_graph () in
  let outer = L.affine ~slope:1.0 ~intercept:(2.0 -. (8.0 *. epsilon)) in
  let latencies = [| L.linear 1.0; outer; L.linear 1.0; outer; L.linear 1.0 |] in
  Network.single g ~latencies ~src:0 ~dst:3 ~demand:1.0

let braess_classic ?(demand = 1.0) () =
  let g = braess_graph () in
  let latencies = [| L.linear 1.0; L.constant 1.0; L.constant 0.0; L.constant 1.0; L.linear 1.0 |] in
  Network.single g ~latencies ~src:0 ~dst:3 ~demand

let mm1_links ~capacities ~demand =
  let total = Array.fold_left ( +. ) 0.0 capacities in
  if total <= demand then invalid_arg "Workloads.mm1_links: total capacity must exceed demand";
  Links.make (Array.map (fun c -> L.mm1 ~capacity:c) capacities) ~demand

(* Two commodities sharing one congested middle edge; see the interface
   for the topology. Nodes: s1=0, s2=1, m1=2, m2=3, t1=4, t2=5. *)
let two_commodity () =
  let g =
    G.Digraph.of_edges ~num_nodes:6
      [ (0, 2); (2, 3); (3, 4); (0, 4); (1, 2); (3, 5); (1, 5) ]
  in
  let latencies =
    [|
      L.linear 1.0;                          (* s1 -> m1 *)
      L.linear 1.0;                          (* m1 -> m2 : shared bottleneck *)
      L.linear 1.0;                          (* m2 -> t1 *)
      L.affine ~slope:1.0 ~intercept:3.0;    (* s1 -> t1 direct *)
      L.linear 1.0;                          (* s2 -> m1 *)
      L.linear 1.0;                          (* m2 -> t2 *)
      L.affine ~slope:1.0 ~intercept:3.0;    (* s2 -> t2 direct *)
    |]
  in
  Network.make g ~latencies
    ~commodities:
      [|
        { Network.src = 0; dst = 4; demand = 1.0 };
        { Network.src = 1; dst = 5; demand = 1.0 };
      |]

(* ------------------------------------------------------------------ *)
(* Worst-case families                                                 *)
(* ------------------------------------------------------------------ *)

let pigou_degree d =
  if d < 1 then invalid_arg "Workloads.pigou_degree: degree must be >= 1";
  Links.make [| L.monomial ~coeff:1.0 ~degree:d; L.constant 1.0 |] ~demand:1.0

(* Nash: everything on the monomial link (latency 1 = the constant), so
   C(N) = 1. Optimum: marginal (d+1)x^d = 1 on link 1, i.e.
   x = (d+1)^(-1/d), with cost x^(d+1) + (1-x). *)
let pigou_degree_poa d =
  if d < 1 then invalid_arg "Workloads.pigou_degree_poa: degree must be >= 1";
  let df = float_of_int d in
  let x = (df +. 1.0) ** (-1.0 /. df) in
  1.0 /. ((x ** (df +. 1.0)) +. 1.0 -. x)

let pigou_degree_beta d =
  if d < 1 then invalid_arg "Workloads.pigou_degree_beta: degree must be >= 1";
  let df = float_of_int d in
  1.0 -. ((df +. 1.0) ** (-1.0 /. df))

let braess_unbounded_beta d =
  if d < 1 then invalid_arg "Workloads.braess_unbounded_beta: degree must be >= 1";
  let df = float_of_int d in
  2.0 *. (1.0 -. ((df +. 1.0) ** (-1.0 /. df)))

let braess_unbounded ?(degree = 2) () =
  if degree < 1 then invalid_arg "Workloads.braess_unbounded: degree must be >= 1";
  let g = braess_graph () in
  let hot = L.monomial ~coeff:1.0 ~degree in
  let latencies = [| hot; L.constant 1.0; L.constant 0.0; L.constant 1.0; hot |] in
  Network.single g ~latencies ~src:0 ~dst:3 ~demand:1.0

(* ------------------------------------------------------------------ *)
(* Random generators                                                   *)
(* ------------------------------------------------------------------ *)

let random_affine_links rng ~m ?(demand = 1.0) () =
  let lats =
    Array.init m (fun _ ->
        L.affine ~slope:(Prng.uniform rng ~lo:0.5 ~hi:3.0)
          ~intercept:(Prng.uniform rng ~lo:0.0 ~hi:2.0))
  in
  Links.make lats ~demand

let random_common_slope_links rng ~m ?slope ?(demand = 1.0) () =
  let slope = match slope with Some a -> a | None -> Prng.uniform rng ~lo:0.5 ~hi:2.0 in
  let intercepts = Array.init m (fun _ -> Prng.uniform rng ~lo:0.0 ~hi:2.0) in
  Array.sort compare intercepts;
  Links.make (Array.map (fun b -> L.affine ~slope ~intercept:b) intercepts) ~demand

let random_polynomial_links rng ~m ?(max_degree = 4) ?(demand = 1.0) () =
  let lats =
    Array.init m (fun _ ->
        let d = 1 + Prng.int rng max_degree in
        let c = Prng.uniform rng ~lo:0.5 ~hi:2.0 in
        let b = Prng.uniform rng ~lo:0.0 ~hi:1.0 in
        let coeffs = Array.make (d + 1) 0.0 in
        coeffs.(0) <- b;
        coeffs.(d) <- c;
        L.polynomial coeffs)
  in
  Links.make lats ~demand

let random_mm1_links rng ~m ?(demand = 1.0) () =
  let raw = Array.init m (fun _ -> Prng.uniform rng ~lo:0.5 ~hi:1.5) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  let scale = 2.0 *. demand /. total in
  mm1_links ~capacities:(Array.map (fun c -> c *. scale) raw) ~demand

let random_affine rng =
  L.affine ~slope:(Prng.uniform rng ~lo:0.1 ~hi:2.0)
    ~intercept:(Prng.uniform rng ~lo:0.0 ~hi:1.0)

let random_layered_network rng ~layers ~width ?(extra_edges = 0) ?(demand = 1.0) () =
  if layers < 1 || width < 1 then invalid_arg "Workloads.random_layered_network: bad shape";
  let node l j = 1 + (l * width) + j in
  let sink = 1 + (layers * width) in
  let b = G.Digraph.builder ~num_nodes:(sink + 1) in
  for j = 0 to width - 1 do
    ignore (G.Digraph.add_edge b ~src:0 ~dst:(node 0 j))
  done;
  for l = 0 to layers - 2 do
    for j = 0 to width - 1 do
      for j' = 0 to width - 1 do
        ignore (G.Digraph.add_edge b ~src:(node l j) ~dst:(node (l + 1) j'))
      done
    done
  done;
  for j = 0 to width - 1 do
    ignore (G.Digraph.add_edge b ~src:(node (layers - 1) j) ~dst:sink)
  done;
  (* Forward skip edges keep the graph acyclic. *)
  for _ = 1 to extra_edges do
    if layers >= 2 then begin
      let l = Prng.int rng (layers - 1) in
      let l' = l + 1 + Prng.int rng (layers - 1 - l) in
      let j = Prng.int rng width and j' = Prng.int rng width in
      ignore (G.Digraph.add_edge b ~src:(node l j) ~dst:(node l' j'))
    end
  done;
  let g = G.Digraph.freeze b in
  let latencies = Array.init (G.Digraph.num_edges g) (fun _ -> random_affine rng) in
  Network.single g ~latencies ~src:0 ~dst:sink ~demand

let grid_network rng ~rows ~cols ?(demand = 1.0) () =
  if rows < 2 || cols < 2 then invalid_arg "Workloads.grid_network: need at least a 2x2 grid";
  let node r c = (r * cols) + c in
  let b = G.Digraph.builder ~num_nodes:(rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then ignore (G.Digraph.add_edge b ~src:(node r c) ~dst:(node r (c + 1)));
      if r + 1 < rows then ignore (G.Digraph.add_edge b ~src:(node r c) ~dst:(node (r + 1) c))
    done
  done;
  let g = G.Digraph.freeze b in
  let latencies =
    Array.init (G.Digraph.num_edges g) (fun _ ->
        L.bpr
          ~free_flow:(Prng.uniform rng ~lo:0.5 ~hi:2.0)
          ~capacity:(Prng.uniform rng ~lo:(0.5 *. demand) ~hi:(1.5 *. demand))
          ())
  in
  Network.single g ~latencies ~src:0 ~dst:((rows * cols) - 1) ~demand

let random_multicommodity rng ~rows ~cols ~commodities ?(demand_hi = 1.0) () =
  if rows < 2 || cols < 2 then invalid_arg "Workloads.random_multicommodity: grid too small";
  if commodities < 1 then invalid_arg "Workloads.random_multicommodity: need a commodity";
  let node r c = (r * cols) + c in
  let b = G.Digraph.builder ~num_nodes:(rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then ignore (G.Digraph.add_edge b ~src:(node r c) ~dst:(node r (c + 1)));
      if r + 1 < rows then ignore (G.Digraph.add_edge b ~src:(node r c) ~dst:(node (r + 1) c))
    done
  done;
  let g = G.Digraph.freeze b in
  let latencies = Array.init (G.Digraph.num_edges g) (fun _ -> random_affine rng) in
  (* Edges point south-east, so src strictly north-west of dst is always
     routable. *)
  let commodities =
    Array.init commodities (fun _ ->
        let r1 = Prng.int rng (rows - 1) and c1 = Prng.int rng (cols - 1) in
        let r2 = r1 + 1 + Prng.int rng (rows - 1 - r1) in
        let c2 = c1 + 1 + Prng.int rng (cols - 1 - c1) in
        {
          Network.src = node r1 c1;
          dst = node r2 c2;
          demand = Prng.uniform rng ~lo:(0.1 *. demand_hi) ~hi:demand_hi;
        })
  in
  Network.make g ~latencies ~commodities

(* Ring-and-radial city. Ring [i] (1-based) sits at radius [i]; its [j]th
   node is [1 + (i-1)*radials + j]. Every adjacency gets one directed
   edge per direction, so edge count is exactly 4*rings*radials:
   2*rings*radials radial (spoke) edges and 2*rings*radials ring-road
   edges. *)
let synthetic_city rng ~rings ~radials ?(commodities = 16) ?(demand = 1.0) () =
  if rings < 1 then invalid_arg "Workloads.synthetic_city: need at least one ring";
  if radials < 3 then invalid_arg "Workloads.synthetic_city: need at least three radials";
  if commodities < 1 then invalid_arg "Workloads.synthetic_city: need a commodity";
  let node i j = 1 + ((i - 1) * radials) + j in
  let num_nodes = 1 + (rings * radials) in
  let b = G.Digraph.builder ~num_nodes in
  let lats = ref [] in
  (* BPR-like affine curve: ℓ(x) = t0·(1 + α·x/c) = t0 + (t0·α/c)·x,
     with free-flow time t0 = length/speed and capacity c drawn per
     road class. α = 0.15, the classic BPR coefficient. *)
  let affine_bpr ~length ~speed ~capacity =
    let t0 = length /. speed in
    L.affine ~slope:(t0 *. 0.15 /. capacity) ~intercept:t0
  in
  let add ~src ~dst lat =
    ignore (G.Digraph.add_edge b ~src ~dst);
    lats := lat :: !lats
  in
  let both u v lat =
    add ~src:u ~dst:v lat;
    add ~src:v ~dst:u lat
  in
  (* Radial arterials: fast and wide; length 1 per ring step. *)
  for j = 0 to radials - 1 do
    let cap = Prng.uniform rng ~lo:2.0 ~hi:4.0 in
    both 0 (node 1 j) (affine_bpr ~length:1.0 ~speed:1.0 ~capacity:cap);
    for i = 1 to rings - 1 do
      let cap = Prng.uniform rng ~lo:2.0 ~hi:4.0 in
      both (node i j) (node (i + 1) j) (affine_bpr ~length:1.0 ~speed:1.0 ~capacity:cap)
    done
  done;
  (* Ring roads: arc length grows with the radius, capacity shrinks. *)
  for i = 1 to rings do
    let arc = 2.0 *. Float.pi *. float_of_int i /. float_of_int radials in
    for j = 0 to radials - 1 do
      let cap = Prng.uniform rng ~lo:0.5 ~hi:1.5 in
      both (node i j) (node i ((j + 1) mod radials)) (affine_bpr ~length:arc ~speed:0.8 ~capacity:cap)
    done
  done;
  let g = G.Digraph.freeze b in
  let latencies = Array.of_list (List.rev !lats) in
  let commodities =
    Array.init commodities (fun _ ->
        let pick () = Prng.int rng num_nodes in
        let src = pick () in
        let rec dst () =
          let d = pick () in
          if d = src then dst () else d
        in
        { Network.src; dst = dst (); demand = Prng.uniform rng ~lo:(0.5 *. demand) ~hi:(1.5 *. demand) })
  in
  Network.make g ~latencies ~commodities
