(** TNTP-style instance import/export (the Transportation Networks
    repository format: a [_net.tntp] link table plus a [_trips.tntp]
    origin–destination matrix).

    The subset understood here is the one the edge-flow assignment core
    consumes: [<NUMBER OF NODES>]/[<NUMBER OF LINKS>] metadata, then one
    link row per line — [init_node term_node capacity length
    free_flow_time b power speed toll type ;] — with 1-based node ids
    and BPR latency [t₀·(1 + b·(x/c)^power)]. Trips files carry
    [<NUMBER OF ZONES>] metadata and [Origin n] blocks of
    [dest : demand;] pairs. Comment lines start with [~] or [#]; zero
    demands are skipped on parse and never printed.

    Printing is canonical: floats are rendered with ["%.17g"] (exact
    binary64 round-trip), links in edge-id order, origins in
    first-appearance order — so [parse ∘ print] is the identity on
    networks and [print ∘ parse] is a fixpoint on printable files. *)

val parse :
  net:string -> trips:string -> (Sgr_network.Network.t, string) result
(** Build a network from the contents of a net file and a trips file.
    Latencies become {!Sgr_latency.Latency.bpr} curves (affine when
    [power = 1]). Errors carry a line number and reason. *)

val print_net : Sgr_network.Network.t -> (string, string) result
(** Render the link table. Supported latency kinds: [Bpr] (printed
    directly), [Affine] with positive intercept (encoded as a
    [power = 1] BPR row) and [Constant] (a zero-[b] BPR row). Anything
    else — including zero-intercept linear latencies, which no BPR curve
    can express — is an [Error]. *)

val print_trips : Sgr_network.Network.t -> string
(** Render the origin–destination blocks, origins in first-appearance
    order over the commodity array. *)
