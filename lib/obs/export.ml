(* JSON is written by hand: the library is zero-dependency and the
   grammar needed here (flat objects of strings/numbers) is tiny. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no inf/nan literals; map them to null. *)
let json_float x = if Float.is_finite x then Printf.sprintf "%.17g" x else "null"

let jsonl oc events =
  List.iter
    (fun (e : Obs.event) ->
      (match e with
      | Obs.Span_begin { name; ts; depth } ->
          Printf.fprintf oc {|{"type":"span_begin","name":"%s","ts":%s,"depth":%d}|}
            (json_escape name) (json_float ts) depth
      | Obs.Span_end { name; ts; dur; depth } ->
          Printf.fprintf oc {|{"type":"span_end","name":"%s","ts":%s,"dur":%s,"depth":%d}|}
            (json_escape name) (json_float ts) (json_float dur) depth
      | Obs.Point { solver; k; gap; objective; step; ts } ->
          Printf.fprintf oc
            {|{"type":"point","solver":"%s","k":%d,"gap":%s,"objective":%s,"step":%s,"ts":%s}|}
            (json_escape solver) k (json_float gap) (json_float objective) (json_float step)
            (json_float ts));
      output_char oc '\n')
    events

let event_ts : Obs.event -> float = function
  | Obs.Span_begin { ts; _ } | Obs.Span_end { ts; _ } | Obs.Point { ts; _ } -> ts

let chrome_trace oc ~counters events =
  let t0 = match events with [] -> 0.0 | e :: _ -> event_ts e in
  let us ts = json_float ((ts -. t0) *. 1e6) in
  let last_ts = List.fold_left (fun acc e -> Float.max acc (event_ts e)) t0 events in
  output_string oc "{\"traceEvents\":[";
  let first = ref true in
  let emit line =
    if not !first then output_string oc ",";
    first := false;
    output_string oc "\n";
    output_string oc line
  in
  List.iter
    (fun (e : Obs.event) ->
      match e with
      | Obs.Span_begin { name; ts; _ } ->
          emit
            (Printf.sprintf {|{"name":"%s","cat":"sgr","ph":"B","pid":1,"tid":1,"ts":%s}|}
               (json_escape name) (us ts))
      | Obs.Span_end { name; ts; _ } ->
          emit
            (Printf.sprintf {|{"name":"%s","cat":"sgr","ph":"E","pid":1,"tid":1,"ts":%s}|}
               (json_escape name) (us ts))
      | Obs.Point { solver; k; gap; objective; step; ts } ->
          emit
            (Printf.sprintf
               {|{"name":"%s","cat":"trace","ph":"C","pid":1,"tid":1,"ts":%s,"args":{"k":%d,"gap":%s,"objective":%s,"step":%s}}|}
               (json_escape solver) (us ts) k (json_float gap) (json_float objective)
               (json_float step)))
    events;
  List.iter
    (fun (name, v) ->
      emit
        (Printf.sprintf
           {|{"name":"counter/%s","cat":"counter","ph":"C","pid":1,"tid":1,"ts":%s,"args":{"value":%d}}|}
           (json_escape name) (us last_ts) v))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) counters);
  output_string oc "\n]}\n"

let span_totals events =
  let agg = Hashtbl.create 16 in
  List.iter
    (fun (e : Obs.event) ->
      match e with
      | Obs.Span_end { name; dur; _ } ->
          let count, total =
            match Hashtbl.find_opt agg name with Some ct -> ct | None -> (0, 0.0)
          in
          Hashtbl.replace agg name (count + 1, total +. dur)
      | Obs.Span_begin _ | Obs.Point _ -> ())
    events;
  Hashtbl.fold (fun name ct acc -> (name, ct) :: acc) agg []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_seconds s =
  if s >= 1.0 then Printf.sprintf "%.3f s" s
  else if s >= 1e-3 then Printf.sprintf "%.3f ms" (s *. 1e3)
  else Printf.sprintf "%.1f µs" (s *. 1e6)

let stats ppf ~counters events =
  (* Sort defensively: output order must not depend on the caller's
     insertion order (Obs.counters is sorted, ad-hoc lists may not be). *)
  let counters =
    List.filter (fun (_, v) -> v > 0) counters
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Format.fprintf ppf "@.counters@.";
  if counters = [] then Format.fprintf ppf "  (all zero)@."
  else
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-32s %12d@." name v) counters;
  let spans = span_totals events in
  if spans <> [] then begin
    Format.fprintf ppf "spans                                  calls        total         mean@.";
    List.iter
      (fun (name, (count, total)) ->
        Format.fprintf ppf "  %-32s %10d %12s %12s@." name count (pp_seconds total)
          (pp_seconds (total /. float_of_int (max 1 count))))
      spans
  end;
  let points =
    List.fold_left
      (fun acc (e : Obs.event) -> match e with Obs.Point _ -> acc + 1 | _ -> acc)
      0 events
  in
  Format.fprintf ppf "trace points: %d@." points
