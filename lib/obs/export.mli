(** Serialize recorded {!Obs.event}s: JSONL event logs, Chrome
    [chrome://tracing] traces, and a plain-text stats summary.

    The CLI's [--trace FILE] flag dispatches on the file extension —
    [.jsonl] gets {!jsonl}, anything else {!chrome_trace} — and
    [--stats] prints {!stats} to stderr. *)

val jsonl : out_channel -> Obs.event list -> unit
(** One JSON object per line, in emission order:
    [{"type":"span_begin",...}], [{"type":"span_end",...}],
    [{"type":"point",...}]. Timestamps are absolute seconds. *)

val chrome_trace :
  out_channel -> counters:(string * int) list -> Obs.event list -> unit
(** Chrome trace-event JSON ([{"traceEvents":[...]}], loadable in
    [chrome://tracing] / Perfetto). Spans become [ph:"B"]/[ph:"E"]
    duration events, trace points become [ph:"C"] counter series (gap,
    objective, step as [args]), and the final counter snapshot is
    appended as one [ph:"C"] event per counter, sorted by name
    regardless of the caller's list order. Timestamps are microseconds
    relative to the first event. *)

val span_totals : Obs.event list -> (string * (int * float)) list
(** Aggregate [Span_end] events to [(name, (count, total_seconds))],
    sorted by name. *)

val stats :
  Format.formatter -> counters:(string * int) list -> Obs.event list -> unit
(** Human-readable summary: the counter table, then per-span
    call-count/total/mean, then the trace-point tally. Counters and
    spans are sorted by name, so the output never depends on the
    insertion order of the caller's list. *)
