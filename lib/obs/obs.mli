(** Observability: counters, timed spans and solver-convergence traces.

    Zero-dependency (stdlib + unix clock only) so every layer of the
    library can be instrumented without cycles. Three primitives:

    - {b counters} — named monotonic [int]s ("bisection.calls",
      "dijkstra.relaxations", …) that always accumulate; each is an
      [Atomic.t], so increments from worker domains (parallel sweeps,
      per-commodity pricing) stay exact. Kernels batch their updates
      (one [add] per run) to keep atomic traffic off the innermost
      loops;
    - {b spans} — named, nested wall-clock intervals
      ([span "mop.maxflow" f]); when no sink is installed a span is a
      single branch around [f ()];
    - {b trace points} — per-iteration convergence records
      [(k, gap, objective, step)] emitted by the iterative solvers
      (Frank–Wolfe, MSA, Equilibrate).

    Spans and points flow into a single global {e sink}, an
    [event -> unit] callback that defaults to [None] (no-op): with the
    default sink the solvers skip all trace bookkeeping and their
    results are bit-identical to the uninstrumented library.

    {b Domains.} The sink is single-domain state: only the domain that
    called {!set_sink} emits events. On any other domain {!span} is a
    plain call, {!point} is a no-op and {!enabled} returns [false], so
    parallel runs never race on the sink — worker work simply does not
    appear in traces. Counters are domain-safe and exact everywhere.

    Naming scheme: ["component.operation"], e.g. ["bisection.calls"],
    ["frank_wolfe.solve"], ["mop.maxflow"]. See docs/observability.md. *)

type event =
  | Span_begin of { name : string; ts : float; depth : int }
      (** Span opened at wall-clock time [ts] (seconds), nesting depth
          [depth] (0 = outermost). *)
  | Span_end of { name : string; ts : float; dur : float; depth : int }
      (** Matching close; [dur] is the elapsed wall-clock seconds. *)
  | Point of {
      solver : string;
      k : int;
      gap : float;
      objective : float;
      step : float;
      ts : float;
    }
      (** One solver iteration: iteration number [k], convergence gap,
          objective value before the step, and the step size taken
          (0 on the terminating iteration). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** [counter name] returns the counter registered under [name],
    creating it at zero on first use. Idempotent: the same name always
    yields the same counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val counters : unit -> (string * int) list
(** Snapshot of every registered counter, sorted by name. *)

val reset_counters : unit -> unit
(** Zero every registered counter (they stay registered). *)

(** {1 Sink, spans and trace points} *)

val set_sink : (event -> unit) option -> unit
(** Install ([Some f]) or remove ([None], the default) the global
    event sink. *)

val enabled : unit -> bool
(** [true] iff a sink is installed. Solvers consult this before doing
    per-iteration trace work (e.g. evaluating the objective). *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; when a sink is installed it brackets the
    call with [Span_begin]/[Span_end] events (emitted even if [f]
    raises) and tracks nesting depth. With no sink it is just [f ()]. *)

val point :
  solver:string -> k:int -> gap:float -> objective:float -> step:float -> unit
(** Emit one convergence-trace point (no-op without a sink). *)

(** {1 Clock} *)

val now : unit -> float
(** Current time in seconds from the active clock. *)

val default_clock : unit -> float
(** The wall clock ([Unix.gettimeofday]). *)

val set_clock : (unit -> float) -> unit
(** Replace the clock (tests use a deterministic tick); restore with
    [set_clock default_clock]. *)

(** {1 Ready-made sinks} *)

(** Records every event in order; for trace export and tests. *)
module Recorder : sig
  type t

  val create : unit -> t
  val install : t -> unit  (** [set_sink] to this recorder. *)

  val events : t -> event list  (** In emission order. *)

  val clear : t -> unit
end

(** Constant-memory aggregation: per-name span totals and a trace-point
    tally. For long runs (the bench harness) where recording every
    event would not fit in memory. *)
module Agg : sig
  type t

  val create : unit -> t
  val install : t -> unit

  val span_totals : t -> (string * (int * float)) list
  (** [(name, (count, total_seconds))], sorted by name. *)

  val points : t -> int
  (** Number of trace points seen. *)
end
