(* Log-bucketed histograms: see hist.mli for the design and the
   quantile error-bound proof sketch. *)

type t = {
  h_alpha : float;
  gamma : float;
  log_gamma : float;
  lo : float;
  hi : float;
  counts : int array; (* counts.(i-1): samples in (lo*gamma^(i-1), lo*gamma^i] *)
  mutable underflow : int; (* samples <= lo (incl. clamped negatives/NaN) *)
  mutable overflow : int; (* samples > hi *)
  mutable n : int;
  mutable total : float;
  mutable vmin : float; (* infinity when empty *)
  mutable vmax : float; (* neg_infinity when empty *)
}

let create ?(alpha = 0.01) ?(lo = 1e-9) ?(hi = 1e4) () =
  if not (alpha > 0. && alpha < 1.) then invalid_arg "Hist.create: alpha must be in (0, 1)";
  if not (lo > 0. && lo < hi) then invalid_arg "Hist.create: need 0 < lo < hi";
  let gamma = (1. +. alpha) /. (1. -. alpha) in
  let log_gamma = log gamma in
  let nb = int_of_float (Float.ceil (log (hi /. lo) /. log_gamma)) in
  {
    h_alpha = alpha;
    gamma;
    log_gamma;
    lo;
    hi;
    counts = Array.make nb 0;
    underflow = 0;
    overflow = 0;
    n = 0;
    total = 0.;
    vmin = infinity;
    vmax = neg_infinity;
  }

let nbuckets t = Array.length t.counts

(* 1-based bucket index for lo < v <= hi, clamped so boundary rounding
   can never escape the array. *)
let bucket_index t v =
  let i = int_of_float (Float.ceil (log (v /. t.lo) /. t.log_gamma)) in
  if i < 1 then 1 else if i > nbuckets t then nbuckets t else i

let record t v =
  let v = if v >= 0. then v else 0. (* negatives and NaN clamp to 0 *) in
  t.n <- t.n + 1;
  t.total <- t.total +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  if v <= t.lo then t.underflow <- t.underflow + 1
  else if v > t.hi then t.overflow <- t.overflow + 1
  else
    let i = bucket_index t v in
    t.counts.(i - 1) <- t.counts.(i - 1) + 1

let count t = t.n
let sum t = t.total
let min_value t = if t.n = 0 then None else Some t.vmin
let max_value t = if t.n = 0 then None else Some t.vmax
let alpha t = t.h_alpha

let same_geometry a b =
  Float.equal a.h_alpha b.h_alpha && Float.equal a.lo b.lo && Float.equal a.hi b.hi

let merge_into ~into:dst src =
  if not (same_geometry dst src) then invalid_arg "Hist.merge: incompatible geometry";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.underflow <- dst.underflow + src.underflow;
  dst.overflow <- dst.overflow + src.overflow;
  dst.n <- dst.n + src.n;
  dst.total <- dst.total +. src.total;
  if src.vmin < dst.vmin then dst.vmin <- src.vmin;
  if src.vmax > dst.vmax then dst.vmax <- src.vmax

let merge a b =
  let t = create ~alpha:a.h_alpha ~lo:a.lo ~hi:a.hi () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let upper_bound t i = t.lo *. (t.gamma ** float_of_int i)

(* Representative = upper * (1 - alpha): within a factor 1 +- alpha of
   every value the bucket can hold (2/(1+gamma) = 1 - alpha). *)
let representative t i = upper_bound t i *. (1. -. t.h_alpha)

let clamp_observed t v = Float.min (Float.max v t.vmin) t.vmax

let quantile t q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Hist.quantile: q must be in [0, 1]";
  if t.n = 0 then None
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.n))) in
    let cum = ref t.underflow in
    if rank <= !cum then Some t.vmin
    else begin
      let est = ref None in
      let i = ref 1 in
      let nb = nbuckets t in
      while Option.is_none !est && !i <= nb do
        cum := !cum + t.counts.(!i - 1);
        if rank <= !cum then est := Some (clamp_observed t (representative t !i));
        incr i
      done;
      match !est with Some _ as e -> e | None -> Some t.vmax (* overflow bucket *)
    end
  end

let clear t =
  Array.fill t.counts 0 (nbuckets t) 0;
  t.underflow <- 0;
  t.overflow <- 0;
  t.n <- 0;
  t.total <- 0.;
  t.vmin <- infinity;
  t.vmax <- neg_infinity

let nonzero_buckets t =
  let acc = ref [] in
  if t.overflow > 0 then acc := (infinity, t.overflow) :: !acc;
  for i = nbuckets t downto 1 do
    if t.counts.(i - 1) > 0 then acc := (upper_bound t i, t.counts.(i - 1)) :: !acc
  done;
  if t.underflow > 0 then acc := (t.lo, t.underflow) :: !acc;
  !acc

(* ---------------- registered per-domain histograms ---------------- *)

type reg = {
  reg_name : string;
  geometry : t; (* empty template carrying alpha/lo/hi *)
  reg_mutex : Mutex.t;
  mutable shards : (int * t) list; (* (domain id, shard), registration order *)
}

(* Guarded by [reg_registry_mutex] on every access; same discipline as
   the counter registry in obs.ml. *)
let reg_registry : (string, reg) Hashtbl.t =
  Hashtbl.create 16
[@@lint.allow "mutable-global"] [@@lint.allow "lock-discipline"]
let reg_registry_mutex = Mutex.create ()

(* why: the registry mutex guards an O(1) table hit and is only ever
   held for that lookup — a worker blocking here is bounded by the other
   domains' lookups, not by I/O, and callers memoize the handle. *)
let histogram ?alpha ?lo ?hi name =
  Mutex.lock reg_registry_mutex;
  let r =
    match Hashtbl.find_opt reg_registry name with
    | Some r -> r
    | None ->
        let r =
          {
            reg_name = name;
            geometry = create ?alpha ?lo ?hi ();
            reg_mutex = Mutex.create ();
            shards = [];
          }
        in
        Hashtbl.add reg_registry name r;
        r
  in
  Mutex.unlock reg_registry_mutex;
  r
[@@lint.allow "no-blocking-in-pool"]

let reg_name r = r.reg_name

(* Per-domain shard table, name -> t. Each domain only ever touches its
   own table, so the tables need no locking; the handle's shard list is
   the only cross-domain structure and is mutex-guarded on the rare
   first-observe path. *)
let shard_key : (string, t) Hashtbl.t Domain.DLS.key =
  (Domain.DLS.new_key (fun () -> Hashtbl.create 8) [@lint.allow "mutable-global"])

(* why (no-blocking-in-pool): [reg_mutex] is taken once per domain per
   histogram — the first-observe shard link — and guards two cons cells;
   every later observe is lock-free on the domain-local shard.
   why (lock-discipline): [geometry] is immutable after [histogram]
   builds the handle; only its alpha/lo/hi configuration is read here,
   never the mutable counters, so the read needs no lock. *)
let shard_for r =
  let tbl = Domain.DLS.get shard_key in
  match Hashtbl.find_opt tbl r.reg_name with
  | Some s -> s
  | None ->
      let g = (r.geometry [@lint.allow "lock-discipline"]) in
      let s = create ~alpha:g.h_alpha ~lo:g.lo ~hi:g.hi () in
      Hashtbl.add tbl r.reg_name s;
      Mutex.lock r.reg_mutex;
      r.shards <- ((Domain.self () :> int), s) :: r.shards;
      Mutex.unlock r.reg_mutex;
      s
[@@lint.allow "no-blocking-in-pool"]

let observe r v = record (shard_for r) v

(* why ([snapshot]/[snapshots]): rendering metrics *is* the request's
   work; both mutexes are held for list/table reads only (the merge runs
   after unlock), so a worker serving /metrics parks behind O(registry)
   pointer copies, never behind I/O or a solve. *)
let snapshot r =
  Mutex.lock r.reg_mutex;
  let shards = r.shards in
  Mutex.unlock r.reg_mutex;
  let slot_order = List.sort (fun (a, _) (b, _) -> compare (a : int) b) shards in
  (* why: same as [shard_for] — geometry is write-once at registration,
     and only the immutable configuration fields are read. *)
  let g = (r.geometry [@lint.allow "lock-discipline"]) in
  let acc = create ~alpha:g.h_alpha ~lo:g.lo ~hi:g.hi () in
  List.iter (fun (_, s) -> merge_into ~into:acc s) slot_order;
  acc
[@@lint.allow "no-blocking-in-pool"]

let snapshots () =
  Mutex.lock reg_registry_mutex;
  let regs = Hashtbl.fold (fun _ r acc -> r :: acc) reg_registry [] in
  Mutex.unlock reg_registry_mutex;
  regs
  |> List.map (fun r -> (r.reg_name, snapshot r))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
[@@lint.allow "no-blocking-in-pool"]

let reset () =
  Mutex.lock reg_registry_mutex;
  let regs = Hashtbl.fold (fun _ r acc -> r :: acc) reg_registry [] in
  Mutex.unlock reg_registry_mutex;
  List.iter
    (fun r ->
      Mutex.lock r.reg_mutex;
      List.iter (fun (_, s) -> clear s) r.shards;
      Mutex.unlock r.reg_mutex)
    regs
