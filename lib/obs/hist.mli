(** Fixed-memory log-bucketed latency histograms (DDSketch/HDR style).

    A histogram covers [(lo, hi]] seconds with buckets whose bounds grow
    geometrically by [gamma = (1 + alpha) / (1 - alpha)]: bucket [i]
    covers [(lo*gamma^(i-1), lo*gamma^i]], so {!record} is O(1) (one
    [log], one array increment) and the whole structure is a few KB
    regardless of how many samples it absorbs. Values at or below [lo]
    land in an underflow bucket, values above [hi] in an overflow
    bucket; exact [count], [sum], [min] and [max] are kept alongside.

    {b Quantile rank-error bound.} [quantile t q] returns the
    nearest-rank estimate: with [n] recorded samples it locates the
    bucket holding the [max 1 (ceil (q * n))]-th smallest sample [x]
    and returns that bucket's representative, clamped into the observed
    [[min, max]]. The guarantee, property-tested against an exact
    sorted-array oracle in [test/test_hist.ml]:

    - if [lo < x <= hi] then [|quantile t q - x| <= alpha * x]
      (relative error at most [alpha], 1% by default);
    - if [x <= lo] (underflow) the estimate is the exact minimum, so
      the absolute error is at most [lo] (1 ns by default);
    - if [x > hi] (overflow) the estimate is the exact maximum.

    The bound holds because the cumulative bucket walk reproduces the
    sorted order exactly up to intra-bucket permutation: the rank-[k]
    sample provably lies in the bucket where the cumulative count first
    reaches [k], every value in bucket [i] is within a factor
    [1 +- alpha] of the representative [upper_i * (1 - alpha)], and
    clamping to two true samples bracketing [x] can only shrink the
    error.

    {b Merging.} {!merge} adds bucket counts pairwise, so it is exact,
    commutative and (on counts) associative — merging per-worker
    histograms loses nothing. ([sum] is a float total, so its
    {e associativity} is up to rounding; counts, min and max are
    bit-exact under any merge tree.)

    A plain [t] is {b not} domain-safe: fields are unsynchronized.
    Either confine each [t] to one domain or use the registered
    per-domain API below. *)

type t

val create : ?alpha:float -> ?lo:float -> ?hi:float -> unit -> t
(** [create ()] makes an empty histogram. [alpha] is the relative
    accuracy (default [0.01]), [lo] the lowest trackable value in
    seconds (default [1e-9]), [hi] the highest (default [1e4]).
    Raises [Invalid_argument] unless [0 < alpha < 1] and
    [0 < lo < hi]. *)

val record : t -> float -> unit
(** [record t v] adds one sample. Negative and NaN values are clamped
    to [0] (underflow). O(1); not domain-safe (see above and the
    sgr-lint [obs-domain-discipline] rule). *)

val count : t -> int
val sum : t -> float

val min_value : t -> float option
(** Exact smallest recorded sample; [None] when empty. *)

val max_value : t -> float option
(** Exact largest recorded sample; [None] when empty. *)

val alpha : t -> float

val merge : t -> t -> t
(** [merge a b] is a fresh histogram holding both sample sets; [a] and
    [b] are unchanged. Raises [Invalid_argument] if the two geometries
    ([alpha], [lo], [hi]) differ. *)

val quantile : t -> float -> float option
(** [quantile t q] for [0 <= q <= 1]; [None] when empty. Nearest-rank
    estimate with the relative error bound documented above; monotone
    in [q]. Raises [Invalid_argument] if [q] is outside [[0, 1]]. *)

val clear : t -> unit
(** Zero every bucket and statistic (geometry is kept). *)

val nonzero_buckets : t -> (float * int) list
(** Non-empty buckets as [(inclusive_upper_bound, count)] in increasing
    bound order; the underflow bucket reports bound [lo] and the
    overflow bucket [infinity]. For exposition renderers. *)

(** {1 Registered per-domain histograms}

    The registered API mirrors {!Obs.counter}: {!histogram} interns a
    handle by name, and {!observe} records into a {e per-domain shard}
    reached through [Domain.DLS] — the same discipline as the Dijkstra
    workspaces — so the hot path takes no lock and worker domains never
    contend. A shard is created (and registered under the handle's
    mutex) the first time a domain observes a given name; after that,
    recording is a DLS read, a hashtable probe and a plain increment.

    {!snapshot} merges the shards {e deterministically in slot order}
    (increasing domain id), so given the same shard contents it always
    returns the same histogram — including the float [sum], whose
    addition order is fixed. Reading shards while other domains are
    still recording is safe but may observe a torn in-between state;
    snapshots taken after a {!Sgr_par.Pool} barrier (every [Pool.map]
    return) are exact, because the pool join gives the reader a
    happens-before edge over all worker writes. *)

type reg

val histogram : ?alpha:float -> ?lo:float -> ?hi:float -> string -> reg
(** [histogram name] returns the handle registered under [name],
    creating it on first use (idempotent, like {!Obs.counter}). The
    optional geometry applies only on first registration. *)

val reg_name : reg -> string

val observe : reg -> float -> unit
(** Record into the calling domain's shard — lock-free after the
    shard's first use, and safe from [Pool.map] worker closures. *)

val snapshot : reg -> t
(** Merge the handle's shards in slot order into a fresh plain [t]. *)

val snapshots : unit -> (string * t) list
(** Snapshot of every registered histogram, sorted by name. *)

val reset : unit -> unit
(** Clear every shard of every registered histogram (handles stay
    registered). Call at quiescence — e.g. between benchmark passes,
    not while a pool batch is in flight. *)
