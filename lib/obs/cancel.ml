(* Cooperative cancellation for pre-emptive deadlines.

   The armed deadline is per-domain state ([Domain.DLS]): the domain
   that executes a request arms it, and the checkpoints the solvers
   call run on that same domain (nested [Sgr_par.Pool] batches fall
   back to sequential, so a pooled request's inner loops still see the
   token). A disarmed domain pays one DLS load and a float compare per
   checkpoint — no clock read — so the instrumentation is free unless a
   deadline is actually set. *)

exception Deadline_exceeded

type handle = float ref

(* [infinity] = disarmed; otherwise the absolute deadline in seconds on
   the [Obs] clock. The ref inside the DLS slot is domain-local, never
   shared across domains. *)
let key = Domain.DLS.new_key (fun () -> ref infinity)

let handle () = Domain.DLS.get key

let check_handle h = if !h < infinity && Obs.now () > !h then raise Deadline_exceeded
let check () = check_handle (handle ())
let armed () = !(handle ()) < infinity

let with_deadline ~seconds f =
  let h = handle () in
  let saved = !h in
  h := Float.min saved (Obs.now () +. seconds);
  Fun.protect ~finally:(fun () -> h := saved) f
