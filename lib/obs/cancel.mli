(** Cooperative cancellation tokens for pre-emptive deadlines.

    The serving layer arms a deadline around a request's compute
    ({!with_deadline}); the iterative solvers call {!check} (or the
    hoisted {!check_handle}) at their convergence checkpoints — one per
    bisection iteration, Gauss–Seidel sweep, column-generation pricing
    round and MOP commodity — and the first checkpoint past the
    deadline raises {!Deadline_exceeded}. The engine maps the exception
    to the protocol's [error timeout:] reply and, because the exception
    propagates out of the memo's [compute], a cancelled result is never
    memoized.

    {b Scope.} The token is per-domain ([Domain.DLS]). The domain that
    calls {!with_deadline} is the domain whose checkpoints fire; work
    a solver fans out to {!Sgr_par.Pool} workers is not cancelled
    mid-task (pool tasks are short — a single Dijkstra — and the
    spawning loop re-checks when they return). Nested deadlines
    compose: the inner scope's effective deadline is the minimum.

    {b Cost.} With no deadline armed a checkpoint is one DLS load and
    one float compare — the clock is only read while armed — so solver
    hot loops pay nothing in normal (deadline-free) operation. *)

exception Deadline_exceeded

val with_deadline : seconds:float -> (unit -> 'a) -> 'a
(** [with_deadline ~seconds f] runs [f] with the current domain's
    deadline armed at [now () +. seconds] (clamped to any outer
    deadline), restoring the previous state on exit, including on
    exceptions. *)

val check : unit -> unit
(** Checkpoint: raises {!Deadline_exceeded} iff a deadline is armed on
    this domain and the {!Obs.now} clock has passed it. *)

type handle
(** The current domain's token, hoisted out of a hot loop. *)

val handle : unit -> handle
(** Fetch once outside the loop; only valid on the fetching domain. *)

val check_handle : handle -> unit
(** Same as {!check} without the per-call DLS lookup. *)

val armed : unit -> bool
(** Whether this domain currently has a deadline armed. *)
