type event =
  | Span_begin of { name : string; ts : float; depth : int }
  | Span_end of { name : string; ts : float; dur : float; depth : int }
  | Point of {
      solver : string;
      k : int;
      gap : float;
      objective : float;
      step : float;
      ts : float;
    }

(* ---------------- counters ---------------- *)

(* Counters are atomic so hot paths on worker domains (parallel alpha
   sweeps, per-commodity pricing) keep exact counts; kernels batch
   their updates (one [add] per run) so the atomic traffic stays off
   the innermost loops. The registry itself is touched rarely
   ([counter] calls are module-initialization time in practice) but is
   mutex-guarded for safety. *)
type counter = { name : string; count : int Atomic.t }

(* Guarded by [registry_mutex] below on every access. *)
let registry : (string, counter) Hashtbl.t =
  Hashtbl.create 32
[@@lint.allow "mutable-global"] [@@lint.allow "lock-discipline"]

let registry_mutex = Mutex.create ()

(* why: the registry mutex guards an O(1) table hit; [counter] is called
   at module-initialization time in practice and callers keep the handle,
   so a pool worker landing here parks for a lookup, not for I/O. *)
let counter name =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { name; count = Atomic.make 0 } in
        Hashtbl.add registry name c;
        c
  in
  Mutex.unlock registry_mutex;
  c
[@@lint.allow "no-blocking-in-pool"]

let incr c = Atomic.incr c.count
let add c n = ignore (Atomic.fetch_and_add c.count n)
let value c = Atomic.get c.count

(* why: rendering metrics is the request's own work; the lock covers one
   fold over the counter table (atomic loads, no I/O), then is dropped
   before sorting. *)
let counters () =
  Mutex.lock registry_mutex;
  let snapshot = Hashtbl.fold (fun _ c acc -> (c.name, Atomic.get c.count) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) snapshot
[@@lint.allow "no-blocking-in-pool"]

let reset_counters () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.count 0) registry;
  Mutex.unlock registry_mutex

(* ---------------- clock ---------------- *)

let default_clock = Unix.gettimeofday

(* Sink-domain-only state (see the discipline note below): mutated from
   the domain that installs the sink, never from pool workers. *)
let clock = ref default_clock [@@lint.allow "mutable-global"] [@@lint.allow "lock-discipline"]
let set_clock f = clock := f
let now () = !clock ()

(* ---------------- sink, spans, points ---------------- *)

(* The sink, its nesting depth and the recorder/aggregator callbacks
   behind it are single-domain state: events are only emitted from the
   domain that installed the sink (the main domain in every current
   use). Worker domains run spans as plain calls and skip trace points;
   counters (atomic, above) remain exact everywhere. *)
let sink : (event -> unit) option ref =
  ref None
[@@lint.allow "mutable-global"] [@@lint.allow "lock-discipline"]

let sink_domain = ref (-1) [@@lint.allow "mutable-global"] [@@lint.allow "lock-discipline"]
let on_sink_domain () = (Domain.self () :> int) = !sink_domain

let set_sink f =
  sink := f;
  sink_domain := (match f with None -> -1 | Some _ -> (Domain.self () :> int))

let enabled () = Option.is_some !sink && on_sink_domain ()

(* Only touched by [span] after the [on_sink_domain] gate. *)
let depth = ref 0 [@@lint.allow "mutable-global"] [@@lint.allow "lock-discipline"]

let span name f =
  match !sink with
  | None -> f ()
  | Some _ when not (on_sink_domain ()) -> f ()
  | Some emit ->
      let d = !depth in
      depth := d + 1;
      let t0 = now () in
      emit (Span_begin { name; ts = t0; depth = d });
      let close () =
        depth := d;
        let t1 = now () in
        emit (Span_end { name; ts = t1; dur = t1 -. t0; depth = d })
      in
      let v = try f () with e -> close (); raise e in
      close ();
      v

let point ~solver ~k ~gap ~objective ~step =
  match !sink with
  | Some emit when on_sink_domain () ->
      emit (Point { solver; k; gap; objective; step; ts = now () })
  | _ -> ()

(* ---------------- sinks ---------------- *)

module Recorder = struct
  type t = { mutable rev_events : event list }

  let create () = { rev_events = [] }
  let install r = set_sink (Some (fun e -> r.rev_events <- e :: r.rev_events))
  let events r = List.rev r.rev_events
  let clear r = r.rev_events <- []
end

module Agg = struct
  type t = { spans : (string, (int * float) ref) Hashtbl.t; mutable points : int }

  let create () = { spans = Hashtbl.create 16; points = 0 }

  let feed t = function
    | Span_begin _ -> ()
    | Span_end { name; dur; _ } -> (
        match Hashtbl.find_opt t.spans name with
        | Some cell ->
            let count, total = !cell in
            cell := (count + 1, total +. dur)
        | None -> Hashtbl.add t.spans name (ref (1, dur)))
    | Point _ -> t.points <- t.points + 1

  let install t = set_sink (Some (feed t))

  let span_totals t =
    Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) t.spans []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let points t = t.points
end
