type event =
  | Span_begin of { name : string; ts : float; depth : int }
  | Span_end of { name : string; ts : float; dur : float; depth : int }
  | Point of {
      solver : string;
      k : int;
      gap : float;
      objective : float;
      step : float;
      ts : float;
    }

(* ---------------- counters ---------------- *)

type counter = { name : string; mutable count : int }

let registry : (string, counter) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
      let c = { name; count = 0 } in
      Hashtbl.add registry name c;
      c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let value c = c.count

let counters () =
  Hashtbl.fold (fun name c acc -> (name, c.count) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_counters () = Hashtbl.iter (fun _ c -> c.count <- 0) registry

(* ---------------- clock ---------------- *)

let default_clock = Unix.gettimeofday
let clock = ref default_clock
let set_clock f = clock := f
let now () = !clock ()

(* ---------------- sink, spans, points ---------------- *)

let sink : (event -> unit) option ref = ref None
let set_sink f = sink := f
let enabled () = Option.is_some !sink
let depth = ref 0

let span name f =
  match !sink with
  | None -> f ()
  | Some emit ->
      let d = !depth in
      depth := d + 1;
      let t0 = now () in
      emit (Span_begin { name; ts = t0; depth = d });
      let close () =
        depth := d;
        let t1 = now () in
        emit (Span_end { name; ts = t1; dur = t1 -. t0; depth = d })
      in
      let v = try f () with e -> close (); raise e in
      close ();
      v

let point ~solver ~k ~gap ~objective ~step =
  match !sink with
  | None -> ()
  | Some emit -> emit (Point { solver; k; gap; objective; step; ts = now () })

(* ---------------- sinks ---------------- *)

module Recorder = struct
  type t = { mutable rev_events : event list }

  let create () = { rev_events = [] }
  let install r = set_sink (Some (fun e -> r.rev_events <- e :: r.rev_events))
  let events r = List.rev r.rev_events
  let clear r = r.rev_events <- []
end

module Agg = struct
  type t = { spans : (string, (int * float) ref) Hashtbl.t; mutable points : int }

  let create () = { spans = Hashtbl.create 16; points = 0 }

  let feed t = function
    | Span_begin _ -> ()
    | Span_end { name; dur; _ } -> (
        match Hashtbl.find_opt t.spans name with
        | Some cell ->
            let count, total = !cell in
            cell := (count + 1, total +. dur)
        | None -> Hashtbl.add t.spans name (ref (1, dur)))
    | Point _ -> t.points <- t.points + 1

  let install t = set_sink (Some (feed t))

  let span_totals t =
    Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) t.spans []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let points t = t.points
end
