(** Column-generation path equilibration.

    Instead of enumerating every simple path (exponential on grids, and
    hard-capped by {!Sgr_graph.Paths.enumerate}), the solver keeps a
    small {e active} column set per commodity: it equalizes flow on the
    active columns with the pairwise-shift inner loop, then {e prices}
    new columns by running Dijkstra on the current edge values — the
    latencies for a Wardrop equilibrium, the marginals for the system
    optimum — and admits the shortest path whenever it undercuts the
    cheapest active column by more than [tol]. Convergence is declared
    when no commodity prices a new column, at which point every used
    column's cost is within [tol] of a network-wide shortest path, i.e.
    the true Wardrop (resp. optimality) gap is at most [tol].

    This is the default engine behind {!Equilibrate.solve}; the
    enumeration-based oracle remains available through
    {!solve_on_paths} for cross-checking on small instances. *)

type solution = Solver_types.path_solution = {
  edge_flow : float array;
  path_flows : float array array;
  paths : Sgr_graph.Paths.t array array;
  sweeps : int;
  gap : float;
}

val solve :
  ?tol:float ->
  ?max_sweeps:int ->
  ?max_rounds:int ->
  Objective.t ->
  Network.t ->
  solution
(** [solve obj net] runs pricing rounds until no commodity admits a new
    column (or [max_rounds], default [1_000], rounds elapse), keeping
    the total equalization sweeps across all rounds under [max_sweeps]
    (default [200_000]). [gap] in the result is the true residual gap —
    costliest used column against the network-wide Dijkstra shortest
    path — not merely the active-set gap.

    Counters: [column_gen.pricing_rounds], [column_gen.columns], and
    the shared [equilibrate.sweeps]. Span: [column_gen.solve]. Trace
    points are emitted per pricing round under solver ["column_gen"]
    (with [step] = columns admitted that round) and per inner sweep
    under solver ["equilibrate"]. *)

val solve_on_paths :
  ?tol:float ->
  ?max_sweeps:int ->
  Objective.t ->
  Network.t ->
  paths:Sgr_graph.Paths.t array array ->
  solution
(** Equalize on a fixed caller-provided path set — the exhaustive
    oracle when [paths] is the full enumeration. Initialization order,
    sweep counts, and bisections match the historical
    [Equilibrate.solve] exactly. *)

val commodity_gap :
  Objective.t ->
  Network.t ->
  edge_flow:float array ->
  paths:Sgr_graph.Paths.t array ->
  flows:float array ->
  float
(** Gap of a single commodity at the given edge flow, relative to the
    cheapest path in [paths]. *)

val path_value :
  (Sgr_latency.Latency.t -> float -> float) ->
  Network.t ->
  float array ->
  Sgr_graph.Paths.t ->
  float
(** Sum of [value latency flow] along a path at the given edge flow. *)

val diff_edges : int list -> int list -> int list
(** [diff_edges a b] is the edges of [a] not in [b], preserving [a]'s
    order; membership in [b] is a binary search over a sorted copy. *)
