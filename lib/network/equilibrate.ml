module G = Sgr_graph
module L = Sgr_latency.Latency
module Obs = Sgr_obs.Obs

let c_sweeps = Obs.counter "equilibrate.sweeps"

type solution = {
  edge_flow : float array;
  path_flows : float array array;
  paths : G.Paths.t array array;
  sweeps : int;
  gap : float;
}

(* Edges appearing in [a] but not in [b] (as id lists; paths are simple so
   each id appears at most once). *)
let diff_edges a b =
  let in_b = List.sort_uniq compare b in
  List.filter (fun e -> not (List.mem e in_b)) a

let path_value value net edge_flow path =
  List.fold_left (fun acc e -> acc +. value net.Network.latencies.(e) edge_flow.(e)) 0.0 path

let commodity_gap obj net ~edge_flow ~paths ~flows =
  let value = Objective.edge_value obj in
  let costs = Array.map (path_value value net edge_flow) paths in
  let min_cost = Sgr_numerics.Vec.min_elt costs in
  let worst = ref min_cost in
  Array.iteri (fun j f -> if f > 1e-12 then worst := Float.max !worst costs.(j)) flows;
  !worst -. min_cost

let solve ?(tol = 1e-9) ?(max_sweeps = 200_000) obj net =
  Obs.span "equilibrate.solve" @@ fun () ->
  let value = Objective.edge_value obj in
  let paths = Network.paths net in
  let k = Array.length net.Network.commodities in
  let m = G.Digraph.num_edges net.Network.graph in
  let edge_flow = Array.make m 0.0 in
  let add_to_path path amount =
    List.iter (fun e -> edge_flow.(e) <- edge_flow.(e) +. amount) path
  in
  (* Initialize: each commodity's demand on its cheapest free-flow path. *)
  let path_flows =
    Array.mapi
      (fun i c ->
        let ps = paths.(i) in
        if Array.length ps = 0 then invalid_arg "Equilibrate.solve: commodity without paths";
        let costs = Array.map (path_value value net edge_flow) ps in
        let j = Sgr_numerics.Vec.argmin costs in
        let flows = Array.make (Array.length ps) 0.0 in
        flows.(j) <- c.Network.demand;
        add_to_path ps.(j) c.Network.demand;
        flows)
      net.Network.commodities
  in
  let used_eps = 1e-12 in
  (* One pairwise equalization for commodity [i]; returns the commodity's
     gap before the shift. *)
  let equalize_once i =
    let ps = paths.(i) and flows = path_flows.(i) in
    let costs = Array.map (path_value value net edge_flow) ps in
    let lo = Sgr_numerics.Vec.argmin costs in
    let hi = ref (-1) in
    Array.iteri
      (fun j f ->
        if f > used_eps && (!hi < 0 || costs.(j) > costs.(!hi)) then hi := j)
      flows;
    if !hi < 0 then 0.0
    else begin
      let gap = costs.(!hi) -. costs.(lo) in
      if gap > 0.0 && !hi <> lo then begin
        let hi_only = diff_edges ps.(!hi) ps.(lo) in
        let lo_only = diff_edges ps.(lo) ps.(!hi) in
        (* Cost difference (hi minus lo, restricted to the symmetric
           difference) after moving delta; decreasing in delta. *)
        let d delta =
          let a =
            List.fold_left
              (fun acc e -> acc +. value net.Network.latencies.(e) (edge_flow.(e) -. delta))
              0.0 hi_only
          in
          let b =
            List.fold_left
              (fun acc e -> acc +. value net.Network.latencies.(e) (edge_flow.(e) +. delta))
              0.0 lo_only
          in
          a -. b
        in
        let cap = flows.(!hi) in
        let delta =
          if d cap >= 0.0 then cap
          else Sgr_numerics.Bisection.root ~f:(fun x -> -.d x) ~lo:0.0 ~hi:cap ()
        in
        if delta > 0.0 then begin
          flows.(!hi) <- flows.(!hi) -. delta;
          flows.(lo) <- flows.(lo) +. delta;
          List.iter (fun e -> edge_flow.(e) <- edge_flow.(e) -. delta) hi_only;
          List.iter (fun e -> edge_flow.(e) <- edge_flow.(e) +. delta) lo_only
        end
      end;
      gap
    end
  in
  let sweeps = ref 0 in
  let gap = ref Float.infinity in
  let tracing = Obs.enabled () in
  while !gap > tol && !sweeps < max_sweeps do
    incr sweeps;
    Obs.incr c_sweeps;
    let worst = ref 0.0 in
    for i = 0 to k - 1 do
      let g = equalize_once i in
      worst := Float.max !worst g
    done;
    gap := !worst;
    if tracing then
      Obs.point ~solver:"equilibrate" ~k:!sweeps ~gap:!gap
        ~objective:(Objective.objective obj net edge_flow)
        ~step:0.0
  done;
  (* Report the true residual gap at the final flow. *)
  let final_gap =
    let worst = ref 0.0 in
    for i = 0 to k - 1 do
      worst :=
        Float.max !worst (commodity_gap obj net ~edge_flow ~paths:paths.(i) ~flows:path_flows.(i))
    done;
    !worst
  in
  { edge_flow; path_flows; paths; sweeps = !sweeps; gap = final_gap }

let verify ?(eps = Sgr_numerics.Tolerance.check_eps) obj net sol =
  let value = Objective.edge_value obj in
  let ok = ref true in
  Array.iteri
    (fun i ps ->
      let costs = Array.map (path_value value net sol.edge_flow) ps in
      let min_cost = Sgr_numerics.Vec.min_elt costs in
      Array.iteri
        (fun j f ->
          if f > eps && not (Sgr_numerics.Tolerance.approx ~eps costs.(j) min_cost) then
            ok := false)
        sol.path_flows.(i))
    sol.paths;
  !ok
