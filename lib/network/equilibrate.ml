module Obs = Sgr_obs.Obs

type solution = Solver_types.path_solution = {
  edge_flow : float array;
  path_flows : float array array;
  paths : Sgr_graph.Paths.t array array;
  sweeps : int;
  gap : float;
}

type engine = Column_generation | Exhaustive

(* Atomic so a default-engine change is visible to (and well-defined
   under) concurrent solves from pool workers. *)
let engine_ref = Atomic.make Column_generation
let set_default_engine e = Atomic.set engine_ref e
let default_engine () = Atomic.get engine_ref

let solve ?tol ?max_sweeps ?engine obj net =
  Obs.span "equilibrate.solve" @@ fun () ->
  match Option.value engine ~default:(Atomic.get engine_ref) with
  | Column_generation -> Column_gen.solve ?tol ?max_sweeps obj net
  | Exhaustive -> Column_gen.solve_on_paths ?tol ?max_sweeps obj net ~paths:(Network.paths net)

let path_value = Column_gen.path_value
let commodity_gap = Column_gen.commodity_gap

let verify ?(eps = Sgr_numerics.Tolerance.check_eps) obj net sol =
  let value = Objective.edge_value obj in
  let ok = ref true in
  Array.iteri
    (fun i ps ->
      let costs = Array.map (path_value value net sol.edge_flow) ps in
      let min_cost = Sgr_numerics.Vec.min_elt costs in
      Array.iteri
        (fun j f ->
          if f > eps && not (Sgr_numerics.Tolerance.approx ~eps costs.(j) min_cost) then
            ok := false)
        sol.path_flows.(i))
    sol.paths;
  !ok
