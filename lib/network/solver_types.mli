(** Types shared by the link-flow descent solvers.

    {!Frank_wolfe} and {!Msa} historically declared identical [solution]
    records; both now re-export this one, so code consuming either
    solver's result is interchangeable. *)

type trace_point = { k : int; gap : float; objective : float; step : float }
(** One solver iteration: the relative gap and objective {e before} the
    step of size [step] ([0] on the terminating iteration). *)

type solution = {
  edge_flow : float array;  (** Per-edge flow at termination. *)
  iterations : int;
  relative_gap : float;
      (** Frank–Wolfe duality gap [∇φ(f)·(f - y) / |∇φ(f)·f|] at
          termination. *)
  objective : float;  (** Objective value at [edge_flow]. *)
  trace : trace_point list;
      (** Per-iteration convergence trace, oldest first. Empty unless an
          {!Sgr_obs.Obs} sink was installed during the solve. *)
}

type path_solution = {
  edge_flow : float array;  (** Per-edge flow at termination. *)
  path_flows : float array array;
      (** Per-commodity path flows, aligned with [paths]. *)
  paths : Sgr_graph.Paths.t array array;
      (** The path sets the solver worked over: every simple path under
          the exhaustive engine, the priced active columns under column
          generation. *)
  sweeps : int;  (** Number of full commodity equalization sweeps. *)
  gap : float;
      (** Max over commodities of (costliest used path − cheapest path)
          under the objective's edge values at termination. *)
}
