(** Frank–Wolfe (conditional gradient) solver over edge flows.

    The classic traffic-assignment method: linearize the convex objective
    at the current flow, solve the linear subproblem by all-or-nothing
    shortest-path assignment, and move toward the vertex with an exact
    line search (bisection on the directional derivative, which is
    nondecreasing by convexity).

    Scales to networks where path enumeration is infeasible; accuracy is
    O(1/iterations), so use {!Equilibrate} when high precision on a small
    network is required. *)

type solution = Solver_types.solution = {
  edge_flow : float array;
  iterations : int;
  relative_gap : float;
      (** Frank–Wolfe duality gap [∇φ(f)·(f - y) / |∇φ(f)·f|] at
          termination. *)
  objective : float;  (** Objective value at [edge_flow]. *)
  trace : Solver_types.trace_point list;
      (** Per-iteration convergence trace; empty unless an
          {!Sgr_obs.Obs} sink is installed during the solve. *)
}

val all_or_nothing :
  ?workspace:Sgr_graph.Dijkstra.workspace -> Network.t -> weights:float array -> float array
(** Route each commodity's entire demand on one shortest path under the
    given edge weights. [workspace] lets repeated calls on the same
    graph reuse the Dijkstra scratch state. *)

val solve :
  ?tol:float -> ?max_iter:int -> Objective.t -> Network.t -> solution
(** [solve obj net] iterates until [relative_gap <= tol]
    (default [1e-8]) or [max_iter] (default [100_000]) iterations. *)
