type trace_point = { k : int; gap : float; objective : float; step : float }

type solution = {
  edge_flow : float array;
  iterations : int;
  relative_gap : float;
  objective : float;
  trace : trace_point list;
}
