type trace_point = { k : int; gap : float; objective : float; step : float }

type solution = {
  edge_flow : float array;
  iterations : int;
  relative_gap : float;
  objective : float;
  trace : trace_point list;
}

type path_solution = {
  edge_flow : float array;
  path_flows : float array array;
  paths : Sgr_graph.Paths.t array array;
  sweeps : int;
  gap : float;
}
