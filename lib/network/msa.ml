module Vec = Sgr_numerics.Vec
module Obs = Sgr_obs.Obs

type solution = Solver_types.solution = {
  edge_flow : float array;
  iterations : int;
  relative_gap : float;
  objective : float;
  trace : Solver_types.trace_point list;
}

let c_iters = Obs.counter "msa.iterations"

let solve ?(tol = 1e-6) ?(max_iter = 200_000) obj net =
  Obs.span "msa.solve" @@ fun () ->
  let m = Sgr_graph.Digraph.num_edges net.Network.graph in
  let value = Objective.edge_value obj in
  let gradient f = Array.mapi (fun e fe -> value net.Network.latencies.(e) fe) f in
  let zero = Array.make m 0.0 in
  let workspace = Sgr_graph.Dijkstra.workspace () in
  let f = ref (Frank_wolfe.all_or_nothing ~workspace net ~weights:(gradient zero)) in
  let iterations = ref 0 in
  let relgap = ref Float.infinity in
  let continue = ref true in
  let tracing = Obs.enabled () in
  let trace = ref [] in
  while !continue && !iterations < max_iter do
    incr iterations;
    Obs.incr c_iters;
    let grad = gradient !f in
    let y = Frank_wolfe.all_or_nothing ~workspace net ~weights:grad in
    let d = Vec.sub y !f in
    let gap = -.Vec.dot grad d in
    let denom = Float.max 1e-12 (Float.abs (Vec.dot grad !f)) in
    relgap := gap /. denom;
    let obj_now = if tracing then Objective.objective obj net !f else 0.0 in
    let step =
      if !relgap <= tol then begin
        continue := false;
        0.0
      end
      else begin
        let gamma = 1.0 /. float_of_int (!iterations + 1) in
        Vec.axpy gamma d !f;
        for e = 0 to m - 1 do
          if !f.(e) < 0.0 then !f.(e) <- 0.0
        done;
        gamma
      end
    in
    if tracing then begin
      Obs.point ~solver:"msa" ~k:!iterations ~gap:!relgap ~objective:obj_now ~step;
      trace := { Solver_types.k = !iterations; gap = !relgap; objective = obj_now; step } :: !trace
    end
  done;
  {
    edge_flow = !f;
    iterations = !iterations;
    relative_gap = !relgap;
    objective = Objective.objective obj net !f;
    trace = List.rev !trace;
  }
