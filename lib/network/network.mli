(** Multicommodity routing instances [(G, r)] (paper, Section 4).

    A directed graph with a latency function per edge and [k]
    source–destination commodities, each with its own demand. Flows are
    represented both per edge (unique at equilibrium/optimum for strictly
    increasing latencies) and per path (used by the high-accuracy solver
    and by Stackelberg strategies). *)

type commodity = { src : int; dst : int; demand : float }

type t = private {
  graph : Sgr_graph.Digraph.t;
  latencies : Sgr_latency.Latency.t array;  (** Indexed by edge id. *)
  commodities : commodity array;
}

val make :
  Sgr_graph.Digraph.t -> latencies:Sgr_latency.Latency.t array -> commodities:commodity array -> t
(** @raise Invalid_argument on size mismatch, no commodities, negative
    demand, or an unreachable commodity pair. *)

val single : Sgr_graph.Digraph.t -> latencies:Sgr_latency.Latency.t array ->
  src:int -> dst:int -> demand:float -> t
(** Single-commodity convenience wrapper. *)

val total_demand : t -> float

(** {1 Edge-flow functionals} *)

val cost : t -> float array -> float
(** Total cost [C(f) = Σ_e f_e·ℓ_e(f_e)] of an edge flow. *)

val beckmann : t -> float array -> float
(** Beckmann–McGuire–Winsten potential [Σ_e ∫₀^{f_e} ℓ_e], whose minimizers
    are exactly the Wardrop equilibria. *)

val edge_latencies : t -> float array -> float array
(** Per-edge latency at the given edge flow. *)

val edge_marginals : t -> float array -> float array
(** Per-edge marginal cost at the given edge flow. *)

val shift : t -> float array -> t
(** [shift t s] replaces every [ℓ_e] by [x ↦ ℓ_e(s_e + x)] — the network a
    Follower sees once a Leader has fixed edge flows [s]. Demands are
    unchanged; adjust them separately. *)

val with_commodities : t -> commodity array -> t
(** Revalidates through {!make} (including a reachability Dijkstra per
    commodity); use {!with_demands} when only the demands change. *)

val with_demands : t -> float array -> t
(** [with_demands t d] replaces commodity [i]'s demand by [d.(i)].
    Topology and endpoints are untouched, so no revalidation runs — this
    is the cheap constructor for inner loops that resize demands, e.g.
    {!Induced.equilibrium}.
    @raise Invalid_argument on size mismatch or a negative demand. *)

(** {1 Path sets} *)

val paths : t -> Sgr_graph.Paths.t array array
(** [paths t].(i) — every simple path of commodity [i], enumerated once
    and cached. @raise Failure if a commodity has more than 20k paths. *)

val path_flows_to_edges : t -> float array array -> float array
(** Aggregate per-commodity path flows (aligned with {!paths}) into edge
    flows. *)
