(* Column-generation equilibrium solver, and the path-equalization inner
   loop it shares with the exhaustive oracle in [Equilibrate].

   The active path set per commodity starts as one shortest path and
   grows only when pricing (a Dijkstra on the current edge values) finds
   a strictly cheaper column, so the solver never enumerates the
   exponential path set of a grid-like network. *)

module G = Sgr_graph
module Obs = Sgr_obs.Obs

let c_sweeps = Obs.counter "equilibrate.sweeps"
let c_rounds = Obs.counter "column_gen.pricing_rounds"
let c_columns = Obs.counter "column_gen.columns"

(* One Dijkstra workspace per domain: the pricing step may fan its
   per-commodity shortest-path calls over a pool, and each domain reuses
   its own scratch arrays across rounds. *)
let ws_key = Domain.DLS.new_key (fun () -> G.Dijkstra.workspace ())

type solution = Solver_types.path_solution = {
  edge_flow : float array;
  path_flows : float array array;
  paths : G.Paths.t array array;
  sweeps : int;
  gap : float;
}

(* Edges appearing in [a] but not in [b] (as id lists; paths are simple
   so each id appears at most once). Membership is a binary search over
   [b] sorted once — [a]'s order is preserved, so downstream folds see
   the edges in exactly the order the naive quadratic filter produced. *)
let diff_edges a b =
  match b with
  | [] -> a
  | _ ->
      let in_b = Array.of_list (List.sort_uniq Int.compare b) in
      let mem e =
        let lo = ref 0 and hi = ref (Array.length in_b - 1) in
        let found = ref false in
        (* why: binary search — the lo/hi window halves every pass, so
           the loop runs at most log2 |b| times. *)
        (while (not !found) && !lo <= !hi do
           let mid = (!lo + !hi) / 2 in
           if in_b.(mid) = e then found := true
           else if in_b.(mid) < e then lo := mid + 1
           else hi := mid - 1
         done)
        [@lint.allow "cancel-coverage"];
        !found
      in
      List.filter (fun e -> not (mem e)) a

let path_value value net edge_flow path =
  List.fold_left (fun acc e -> acc +. value net.Network.latencies.(e) edge_flow.(e)) 0.0 path

let commodity_gap obj net ~edge_flow ~paths ~flows =
  let value = Objective.edge_value obj in
  let costs = Array.map (path_value value net edge_flow) paths in
  let min_cost = Sgr_numerics.Vec.min_elt costs in
  let worst = ref min_cost in
  Array.iteri (fun j f -> if f > 1e-12 then worst := Float.max !worst costs.(j)) flows;
  !worst -. min_cost

let used_eps = 1e-12

(* One pairwise equalization for one commodity: move flow from the
   costliest used path to the cheapest path, equalizing the pair by
   bisection on the shifted amount (only the symmetric difference of the
   two paths matters). Returns the commodity's gap before the shift. *)
let equalize_once value net ~edge_flow ~ps ~flows =
  let costs = Array.map (path_value value net edge_flow) ps in
  let lo = Sgr_numerics.Vec.argmin costs in
  let hi = ref (-1) in
  Array.iteri
    (fun j f -> if f > used_eps && (!hi < 0 || costs.(j) > costs.(!hi)) then hi := j)
    flows;
  if !hi < 0 then 0.0
  else begin
    let gap = costs.(!hi) -. costs.(lo) in
    if gap > 0.0 && !hi <> lo then begin
      let hi_only = diff_edges ps.(!hi) ps.(lo) in
      let lo_only = diff_edges ps.(lo) ps.(!hi) in
      (* Cost difference (hi minus lo, restricted to the symmetric
         difference) after moving delta; decreasing in delta. *)
      let d delta =
        let a =
          List.fold_left
            (fun acc e -> acc +. value net.Network.latencies.(e) (edge_flow.(e) -. delta))
            0.0 hi_only
        in
        let b =
          List.fold_left
            (fun acc e -> acc +. value net.Network.latencies.(e) (edge_flow.(e) +. delta))
            0.0 lo_only
        in
        a -. b
      in
      let cap = flows.(!hi) in
      let delta =
        if d cap >= 0.0 then cap
        else Sgr_numerics.Bisection.root ~f:(fun x -> -.d x) ~lo:0.0 ~hi:cap ()
      in
      if delta > 0.0 then begin
        flows.(!hi) <- flows.(!hi) -. delta;
        flows.(lo) <- flows.(lo) +. delta;
        List.iter (fun e -> edge_flow.(e) <- edge_flow.(e) -. delta) hi_only;
        List.iter (fun e -> edge_flow.(e) <- edge_flow.(e) +. delta) lo_only
      end
    end;
    gap
  end

(* Gauss–Seidel sweeps over every commodity until the active-set gap
   falls below [tol] or the sweep budget runs out. Mutates [edge_flow]
   and [path_flows]; returns the number of sweeps performed. Trace
   points continue the caller's numbering from [k0]. *)
let equalize ?(k0 = 0) obj net ~edge_flow ~paths ~path_flows ~tol ~max_sweeps =
  let value = Objective.edge_value obj in
  let k = Array.length net.Network.commodities in
  let sweeps = ref 0 in
  let gap = ref Float.infinity in
  let tracing = Obs.enabled () in
  let cancel = Sgr_obs.Cancel.handle () in
  while !gap > tol && !sweeps < max_sweeps do
    Sgr_obs.Cancel.check_handle cancel;
    incr sweeps;
    Obs.incr c_sweeps;
    let worst = ref 0.0 in
    for i = 0 to k - 1 do
      let g = equalize_once value net ~edge_flow ~ps:paths.(i) ~flows:path_flows.(i) in
      worst := Float.max !worst g
    done;
    gap := !worst;
    if tracing then
      Obs.point ~solver:"equilibrate" ~k:(k0 + !sweeps) ~gap:!gap
        ~objective:(Objective.objective obj net edge_flow)
        ~step:0.0
  done;
  !sweeps

(* Equalize on a fixed, caller-provided path set — the exhaustive oracle
   when [paths] is the full enumeration. Behaviour (initialization
   order, sweep counts, bisections) matches the historical
   [Equilibrate.solve] exactly. *)
let solve_on_paths ?(tol = 1e-9) ?(max_sweeps = 200_000) obj net ~paths =
  let value = Objective.edge_value obj in
  let m = G.Digraph.num_edges net.Network.graph in
  let edge_flow = Array.make m 0.0 in
  (* Initialize: each commodity's demand on its cheapest path under the
     flow accumulated by the commodities before it. *)
  let path_flows =
    Array.mapi
      (fun i c ->
        let ps = paths.(i) in
        if Array.length ps = 0 then
          invalid_arg "Column_gen.solve_on_paths: commodity without paths";
        let costs = Array.map (path_value value net edge_flow) ps in
        let j = Sgr_numerics.Vec.argmin costs in
        let flows = Array.make (Array.length ps) 0.0 in
        flows.(j) <- c.Network.demand;
        List.iter (fun e -> edge_flow.(e) <- edge_flow.(e) +. c.Network.demand) ps.(j);
        flows)
      net.Network.commodities
  in
  let sweeps = equalize obj net ~edge_flow ~paths ~path_flows ~tol ~max_sweeps in
  (* Report the true residual gap at the final flow. *)
  let final_gap =
    let worst = ref 0.0 in
    Array.iteri
      (fun i flows ->
        worst := Float.max !worst (commodity_gap obj net ~edge_flow ~paths:paths.(i) ~flows))
      path_flows;
    !worst
  in
  { edge_flow; path_flows; paths; sweeps; gap = final_gap }

let solve ?(tol = 1e-9) ?(max_sweeps = 200_000) ?(max_rounds = 1_000) obj net =
  Obs.span "column_gen.solve" @@ fun () ->
  let value = Objective.edge_value obj in
  let g = net.Network.graph in
  let m = G.Digraph.num_edges g in
  let k = Array.length net.Network.commodities in
  let edge_flow = Array.make m 0.0 in
  (* Edge values as Dijkstra weights; marginals of odd user-supplied
     latencies can dip microscopically below zero, which Dijkstra
     rejects, so clamp. *)
  let weights () =
    Array.init m (fun e -> Float.max 0.0 (value net.Network.latencies.(e) edge_flow.(e)))
  in
  (* Seed: one shortest-path column per commodity, loading commodities
     one after another so later seeds avoid already-congested edges. *)
  let active = Array.make k [||] in
  let flows = Array.make k [||] in
  Array.iteri
    (fun i (c : Network.commodity) ->
      (* One Dijkstra per commodity; check between them so seeding a
         large instance cannot outlive the request deadline. *)
      Sgr_obs.Cancel.check ();
      match
        G.Dijkstra.shortest_path ~workspace:(Domain.DLS.get ws_key) g ~weights:(weights ())
          ~src:c.Network.src ~dst:c.Network.dst
      with
      | None -> invalid_arg "Column_gen.solve: unreachable commodity"
      | Some p ->
          active.(i) <- [| p |];
          flows.(i) <- [| c.Network.demand |];
          Obs.incr c_columns;
          List.iter (fun e -> edge_flow.(e) <- edge_flow.(e) +. c.Network.demand) p)
    net.Network.commodities;
  let sweeps = ref 0 in
  let rounds = ref 0 in
  let final_gap = ref Float.infinity in
  let tracing = Obs.enabled () in
  let converged = ref false in
  while (not !converged) && !rounds < max_rounds && !sweeps < max_sweeps do
    (* Deadline checkpoint per pricing round; the per-sweep checkpoint
       inside [equalize] covers the long Gauss–Seidel stretches. *)
    Sgr_obs.Cancel.check ();
    incr rounds;
    Obs.incr c_rounds;
    (* Equalize the active columns, then price: a Dijkstra per commodity
       on the current edge values; admit the shortest path as a new
       column when it beats the cheapest active column by more than
       [tol] (relative at scale). *)
    sweeps :=
      !sweeps
      + equalize ~k0:!sweeps obj net ~edge_flow ~paths:active ~path_flows:flows ~tol
          ~max_sweeps:(max_sweeps - !sweeps);
    let w = weights () in
    (* Pricing Dijkstras are independent across commodities, so they may
       run on the ambient pool; each returns a fresh path (no workspace
       aliasing). Admission below stays sequential in commodity order,
       so the solve is byte-identical at any job count. *)
    let priced =
      Sgr_par.Pool.map
        (fun (c : Network.commodity) ->
          (* Per-item checkpoint: free on a disarmed worker domain, and
             on the sequential in-batch fallback it keeps the pricing
             sweep pre-emptible between Dijkstras. *)
          Sgr_obs.Cancel.check ();
          G.Dijkstra.shortest_path ~workspace:(Domain.DLS.get ws_key) g ~weights:w
            ~src:c.Network.src ~dst:c.Network.dst)
        net.Network.commodities
    in
    let admitted = ref 0 in
    let round_gap = ref 0.0 in
    Array.iteri
      (fun i (_ : Network.commodity) ->
        match priced.(i) with
        | None -> ()
        | Some p ->
            let new_cost = G.Paths.cost p w in
            let costs = Array.map (fun q -> G.Paths.cost q w) active.(i) in
            let active_min = Sgr_numerics.Vec.min_elt costs in
            (* True Wardrop gap of this commodity: costliest used column
               against the network-wide shortest path. *)
            let worst_used = ref new_cost in
            Array.iteri
              (fun j f -> if f > used_eps then worst_used := Float.max !worst_used costs.(j))
              flows.(i);
            round_gap := Float.max !round_gap (!worst_used -. new_cost);
            if new_cost < active_min -. (tol *. Float.max 1.0 active_min) then begin
              (* Strictly cheaper than every active column, so it cannot
                 already be in the active set. *)
              active.(i) <- Array.append active.(i) [| p |];
              flows.(i) <- Array.append flows.(i) [| 0.0 |];
              incr admitted;
              Obs.incr c_columns
            end)
      net.Network.commodities;
    final_gap := !round_gap;
    if tracing then
      Obs.point ~solver:"column_gen" ~k:!rounds ~gap:!round_gap
        ~objective:(Objective.objective obj net edge_flow)
        ~step:(float_of_int !admitted);
    if !admitted = 0 then converged := true
  done;
  { edge_flow; path_flows = flows; paths = active; sweeps = !sweeps; gap = !final_gap }
