module G = Sgr_graph
module Vec = Sgr_numerics.Vec
module Obs = Sgr_obs.Obs

type solution = Solver_types.solution = {
  edge_flow : float array;
  iterations : int;
  relative_gap : float;
  objective : float;
  trace : Solver_types.trace_point list;
}

let c_aon = Obs.counter "all_or_nothing.calls"
let c_iters = Obs.counter "frank_wolfe.iterations"

let all_or_nothing ?workspace net ~weights =
  Obs.incr c_aon;
  let g = net.Network.graph in
  let flow = Array.make (G.Digraph.num_edges g) 0.0 in
  Array.iter
    (fun c ->
      match G.Dijkstra.shortest_path ?workspace g ~weights ~src:c.Network.src ~dst:c.Network.dst with
      | None -> invalid_arg "Frank_wolfe.all_or_nothing: unreachable commodity"
      | Some path -> List.iter (fun e -> flow.(e) <- flow.(e) +. c.Network.demand) path)
    net.Network.commodities;
  flow

let gradient obj net f =
  let value = Objective.edge_value obj in
  Array.mapi (fun e fe -> value net.Network.latencies.(e) fe) f

let solve ?(tol = 1e-8) ?(max_iter = 100_000) obj net =
  Obs.span "frank_wolfe.solve" @@ fun () ->
  let m = G.Digraph.num_edges net.Network.graph in
  let zero = Array.make m 0.0 in
  (* One Dijkstra workspace for the whole solve: each iteration's
     all-or-nothing step reruns on the same graph allocation-free. *)
  let workspace = G.Dijkstra.workspace () in
  let f = ref (all_or_nothing ~workspace net ~weights:(gradient obj net zero)) in
  let iterations = ref 0 in
  let relgap = ref Float.infinity in
  let continue = ref true in
  let tracing = Obs.enabled () in
  let trace = ref [] in
  while !continue && !iterations < max_iter do
    incr iterations;
    Obs.incr c_iters;
    let grad = gradient obj net !f in
    let y = all_or_nothing ~workspace net ~weights:grad in
    let d = Vec.sub y !f in
    let gap = -.Vec.dot grad d in
    let denom = Float.max 1e-12 (Float.abs (Vec.dot grad !f)) in
    relgap := gap /. denom;
    (* Objective before the step, so each trace point pairs the gap with
       the iterate it was measured at. Only computed when tracing. *)
    let obj_now = if tracing then Objective.objective obj net !f else 0.0 in
    let step =
      if !relgap <= tol then begin
        continue := false;
        0.0
      end
      else begin
        (* Exact line search: the directional derivative of the convex
           objective along d is nondecreasing in gamma. *)
        let value = Objective.edge_value obj in
        let dphi gamma =
          let acc = ref 0.0 in
          for e = 0 to m - 1 do
            (* Exact test by design: d is y - f, so exact zeros mark
               edges outside the direction's support; a tolerance here
               would silently drop genuinely tiny components from the
               line-search derivative. *)
            if (d.(e) <> 0.0) [@lint.allow "float-equality"] then
              acc :=
                !acc +. (d.(e) *. value net.Network.latencies.(e) (!f.(e) +. (gamma *. d.(e))))
          done;
          !acc
        in
        let gamma = Sgr_numerics.Minimize.line_search_convex ~df:dphi ~lo:0.0 ~hi:1.0 () in
        let gamma = if gamma <= 0.0 then 1e-12 else gamma in
        Vec.axpy gamma d !f;
        (* Clip negative rounding noise. *)
        for e = 0 to m - 1 do
          if !f.(e) < 0.0 then !f.(e) <- 0.0
        done;
        gamma
      end
    in
    if tracing then begin
      Obs.point ~solver:"frank_wolfe" ~k:!iterations ~gap:!relgap ~objective:obj_now ~step;
      trace := { Solver_types.k = !iterations; gap = !relgap; objective = obj_now; step } :: !trace
    end
  done;
  {
    edge_flow = !f;
    iterations = !iterations;
    relative_gap = !relgap;
    objective = Objective.objective obj net !f;
    trace = List.rev !trace;
  }
