module L = Sgr_latency.Latency
module G = Sgr_graph
module Tol = Sgr_numerics.Tolerance

type commodity = { src : int; dst : int; demand : float }

type t = {
  graph : G.Digraph.t;
  latencies : L.t array;
  commodities : commodity array;
}

let reachable g ~src ~dst =
  let weights = Array.make (G.Digraph.num_edges g) 0.0 in
  let r = G.Dijkstra.run g ~weights ~source:src in
  r.dist.(dst) < Float.infinity

let make graph ~latencies ~commodities =
  if Array.length latencies <> G.Digraph.num_edges graph then
    invalid_arg "Network.make: one latency per edge required";
  if Array.length commodities = 0 then invalid_arg "Network.make: no commodities";
  Array.iter
    (fun c ->
      (* [reachable] is a full Dijkstra per commodity; check between
         them so validating a large instance respects the deadline. *)
      Sgr_obs.Cancel.check ();
      if c.demand < 0.0 then invalid_arg "Network.make: negative demand";
      if c.src = c.dst then invalid_arg "Network.make: source equals destination";
      if not (reachable graph ~src:c.src ~dst:c.dst) then
        invalid_arg "Network.make: destination unreachable from source")
    commodities;
  { graph; latencies; commodities }

let single graph ~latencies ~src ~dst ~demand =
  make graph ~latencies ~commodities:[| { src; dst; demand } |]

let total_demand t = Array.fold_left (fun acc c -> acc +. c.demand) 0.0 t.commodities

let cost t f =
  let acc = ref 0.0 in
  Array.iteri (fun e fe -> acc := !acc +. L.cost t.latencies.(e) fe) f;
  !acc

let beckmann t f =
  let acc = ref 0.0 in
  Array.iteri (fun e fe -> acc := !acc +. L.primitive t.latencies.(e) fe) f;
  !acc

let edge_latencies t f = Array.mapi (fun e fe -> L.eval t.latencies.(e) fe) f
let edge_marginals t f = Array.mapi (fun e fe -> L.marginal t.latencies.(e) fe) f

let shift t s =
  assert (Array.length s = G.Digraph.num_edges t.graph);
  let latencies = Array.mapi (fun e lat -> L.shift (Tol.clamp_nonneg s.(e)) lat) t.latencies in
  { t with latencies }

let with_commodities t commodities = make t.graph ~latencies:t.latencies ~commodities

(* Demand replacement cannot break the [make] invariants (the topology,
   endpoints, and reachability are untouched), so no revalidation — in
   particular no per-commodity reachability Dijkstra. This sits in the
   innermost loop of [Induced.equilibrium]. *)
let with_demands t demands =
  if Array.length demands <> Array.length t.commodities then
    invalid_arg "Network.with_demands: one demand per commodity required";
  let commodities =
    Array.mapi
      (fun i c ->
        let d = demands.(i) in
        if d < 0.0 then invalid_arg "Network.with_demands: negative demand";
        { c with demand = d })
      t.commodities
  in
  { t with commodities }

let paths t =
  Array.map
    (fun c ->
      (* [Paths.enumerate] is exponential in the graph; at minimum the
         deadline must be honoured between commodities. *)
      Sgr_obs.Cancel.check ();
      Array.of_list (G.Paths.enumerate t.graph ~src:c.src ~dst:c.dst))
    t.commodities

let path_flows_to_edges t per_commodity =
  let all_paths = paths t in
  let flow = Array.make (G.Digraph.num_edges t.graph) 0.0 in
  Array.iteri
    (fun i flows ->
      Array.iteri
        (fun j amount -> List.iter (fun e -> flow.(e) <- flow.(e) +. amount) all_paths.(i).(j))
        flows)
    per_commodity;
  flow
