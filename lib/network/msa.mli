(** Method of Successive Averages.

    The third classic traffic-assignment solver, kept alongside
    {!Frank_wolfe} and {!Equilibrate} as an ablation baseline: identical
    all-or-nothing subproblem to Frank–Wolfe, but with a predetermined
    step [1/k] instead of a line search. Converges for the same convex
    objectives, typically slower than Frank–Wolfe per iteration count but
    with a cheaper iteration — the benchmark harness compares all three. *)

type solution = Solver_types.solution = {
  edge_flow : float array;
  iterations : int;
  relative_gap : float;  (** Frank–Wolfe gap at termination. *)
  objective : float;
  trace : Solver_types.trace_point list;
      (** Per-iteration convergence trace; empty unless an
          {!Sgr_obs.Obs} sink is installed during the solve. *)
}

val solve :
  ?tol:float -> ?max_iter:int -> Objective.t -> Network.t -> solution
(** [solve obj net] iterates with step [1/k] until the relative gap drops
    below [tol] (default [1e-6] — MSA's sublinear tail makes tighter
    defaults impractical) or [max_iter] (default [200_000]). *)
