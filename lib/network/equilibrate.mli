(** Path-equilibration front end.

    Repeatedly moves flow from the costliest {e used} path to the
    cheapest path of each commodity, equalizing the pair by bisection on
    the shifted amount (only the symmetric difference of the two paths
    matters). Each shift strictly decreases the convex objective, so the
    sweep converges; the stopping rule is the Wardrop gap itself.

    Two engines provide the path sets the sweeps work over:

    - {!Column_generation} (the default) prices paths on demand with
      Dijkstra and keeps only a small active column set per commodity,
      so it scales to networks whose simple-path count is exponential
      (e.g. large grids).
    - {!Exhaustive} enumerates every simple path up front via
      {!Network.paths} — the historical behaviour, kept as an oracle
      for cross-checking on small instances. It inherits
      {!Sgr_graph.Paths.enumerate}'s 20,000-path cap. *)

type solution = Solver_types.path_solution = {
  edge_flow : float array;  (** Per-edge flow at termination. *)
  path_flows : float array array;
      (** Per-commodity path flows, aligned with [paths]. *)
  paths : Sgr_graph.Paths.t array array;
      (** The path sets the solver worked over: the priced active
          columns under column generation, every simple path under the
          exhaustive engine. *)
  sweeps : int;  (** Number of full commodity sweeps performed. *)
  gap : float;
      (** Max over commodities of (costliest used path − cheapest path)
          under the objective's edge values at termination. *)
}

type engine =
  | Column_generation  (** Price columns on demand ({!Column_gen}). *)
  | Exhaustive  (** Enumerate all simple paths up front. *)

val set_default_engine : engine -> unit
(** Set the ambient engine used when {!solve} is called without
    [?engine]. Initially {!Column_generation}. *)

val default_engine : unit -> engine

val solve :
  ?tol:float -> ?max_sweeps:int -> ?engine:engine -> Objective.t -> Network.t -> solution
(** [solve obj net] runs until [gap <= tol] (default [1e-9]) or
    [max_sweeps] (default [200_000]) sweeps, using [engine] (default:
    the ambient {!default_engine}). *)

val verify :
  ?eps:float -> Objective.t -> Network.t -> solution -> bool
(** Post-hoc Wardrop/optimality check: every used path's cost is within
    [eps] of its commodity's minimum path cost {e over the solution's
    path set}. *)

val commodity_gap :
  Objective.t -> Network.t -> edge_flow:float array ->
  paths:Sgr_graph.Paths.t array -> flows:float array -> float
(** Gap of a single commodity at the given edge flow. *)
