let inv_phi = 0.5 *. (Float.sqrt 5.0 -. 1.0)

let golden ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  if not (lo <= hi) then invalid_arg "Minimize.golden: lo > hi";
  let a = ref lo and b = ref hi in
  let x1 = ref (!b -. (inv_phi *. (!b -. !a))) in
  let x2 = ref (!a +. (inv_phi *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  let iter = ref 0 in
  while !b -. !a > tol *. Float.max 1.0 (hi -. lo) && !iter < max_iter do
    (* [f] is caller-supplied and can hide a full equilibrium solve per
       probe; check the deadline between probes like Bisection does. *)
    Sgr_obs.Cancel.check ();
    if !f1 <= !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (inv_phi *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (inv_phi *. (!b -. !a));
      f2 := f !x2
    end;
    incr iter
  done;
  let x = 0.5 *. (!a +. !b) in
  (x, f x)

let line_search_convex ?tol ~df ~lo ~hi () = Bisection.root ?tol ~f:df ~lo ~hi ()
