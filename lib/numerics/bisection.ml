module Obs = Sgr_obs.Obs

let c_calls = Obs.counter "bisection.calls"
let c_iters = Obs.counter "bisection.iterations"
let c_expansions = Obs.counter "bisection.expansions"

let bisect ~tol ~max_iter ~f ~lo ~hi =
  let lo = ref lo and hi = ref hi in
  let iter = ref 0 in
  (* Pre-emptive deadline checkpoint, hoisted so a disarmed domain pays
     one float compare per iteration (see Sgr_obs.Cancel). *)
  let cancel = Sgr_obs.Cancel.handle () in
  let width_ok () =
    !hi -. !lo <= tol *. Float.max 1.0 (Float.max (Float.abs !lo) (Float.abs !hi))
  in
  while (not (width_ok ())) && !iter < max_iter do
    Sgr_obs.Cancel.check_handle cancel;
    let mid = 0.5 *. (!lo +. !hi) in
    if f mid <= 0.0 then lo := mid else hi := mid;
    incr iter
  done;
  Obs.add c_iters !iter;
  if not (width_ok ()) then
    (* Each iteration halves the interval, so with the default budget the
       width shrinks by 2^200: exhausting [max_iter] means the caller asked
       for a tolerance the bracket cannot reach, not slow convergence. *)
    (* [Failure] is this module's documented non-convergence contract
       (PR 2); callers such as Partition_heuristic pattern-match on it. *)
    (failwith
       (Printf.sprintf "Bisection.root: no convergence after %d iterations (width %g > tol %g)"
          max_iter (!hi -. !lo) tol))
    [@lint.allow "no-untyped-failure"];
  0.5 *. (!lo +. !hi)

let root ?(tol = Tolerance.solver_eps) ?(max_iter = 200) ~f ~lo ~hi () =
  if not (lo <= hi) then invalid_arg "Bisection.root: lo > hi";
  Obs.incr c_calls;
  if f lo > 0.0 then lo
  else if f hi < 0.0 then hi
  else bisect ~tol ~max_iter ~f ~lo ~hi

let root_bracketed ?(tol = Tolerance.solver_eps) ?(max_iter = 200) ~f ~lo ~hi () =
  if not (lo <= hi) then invalid_arg "Bisection.root_bracketed: lo > hi";
  Obs.incr c_calls;
  if f lo > 0.0 || f hi < 0.0 then
    invalid_arg
      (Printf.sprintf "Bisection.root_bracketed: root not bracketed (f(%g) = %g, f(%g) = %g)" lo
         (f lo) hi (f hi));
  bisect ~tol ~max_iter ~f ~lo ~hi

let expand_upper ?(start = 1.0) ?(limit = 1e18) ~f ~target () =
  let hi = ref (Float.max start 1e-12) in
  while f !hi < target && !hi < limit do
    Sgr_obs.Cancel.check ();
    Obs.incr c_expansions;
    hi := !hi *. 2.0
  done;
  if f !hi < target then
    (* Same [Failure] contract as [root] above. *)
    (failwith "Bisection.expand_upper: function never reaches target")
    [@lint.allow "no-untyped-failure"];
  !hi

let solve_increasing ?tol ~f ~y ~lo ~hi () = root ?tol ~f:(fun x -> f x -. y) ~lo ~hi ()
