(** Root finding on monotone functions by bisection.

    The equilibrium solvers reduce everything to inverting nondecreasing
    functions (latency levels, marginal costs, aggregate link demand), so a
    robust monotone bisection is the workhorse of the whole library. *)

val root :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  float
(** [root ~f ~lo ~hi ()] finds [x] in [[lo, hi]] with [f x ≈ 0] for a
    nondecreasing [f] with [f lo <= 0 <= f hi].

    {b Clamp semantics}: when the root is not bracketed the endpoint
    nearest the (out-of-interval) root is returned — [f lo > 0] returns
    [lo], [f hi < 0] returns [hi]. These are the saturated boundary
    solutions the flow solvers need for links that are unloaded or
    capacity-bound; note this silently assumes [f] is nondecreasing. Use
    {!root_bracketed} when a missing sign change indicates a caller bug
    rather than saturation.

    [tol] bounds the final interval width relative to the interval scale;
    default [Tolerance.solver_eps].

    @raise Failure if the interval is still wider than [tol] after
    [max_iter] (default [200]) halvings — i.e. the requested tolerance is
    unreachable from the given bracket, not merely slow convergence.
    @raise Invalid_argument if [lo > hi]. *)

val root_bracketed :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  float
(** Like {!root} but {e strict}: the root must be bracketed.

    @raise Invalid_argument if [f lo > 0] or [f hi < 0] (no sign change
    over the interval) or [lo > hi].
    @raise Failure on non-convergence, as {!root}. *)

val expand_upper :
  ?start:float -> ?limit:float -> f:(float -> float) -> target:float -> unit -> float
(** [expand_upper ~f ~target ()] returns some [hi > 0] with
    [f hi >= target], doubling from [start] (default [1.0]).

    @raise Failure if [limit] (default [1e18]) is exceeded — which signals a
    function that never reaches [target], e.g. a bounded latency. *)

val solve_increasing :
  ?tol:float -> f:(float -> float) -> y:float -> lo:float -> hi:float -> unit -> float
(** [solve_increasing ~f ~y ~lo ~hi ()] finds [x] with [f x ≈ y]
    for nondecreasing [f]; boundary-saturating like {!root}. *)
