(** Scheduling instances [(M, r)] on parallel links (paper, Section 4).

    [m] parallel links connect a source to a sink; an infinite population of
    selfish users routes a total flow [r > 0]. The two canonical flows are
    the Nash/Wardrop equilibrium [N] (all loaded links share a common
    latency [L_N]; unloaded links have latency [>= L_N], Remark 4.1) and the
    Optimum [O] (same condition on *marginal costs*, by convexity of
    [x·ℓ(x)]). Both are computed by water-filling: bisect on the common
    level and invert each link's level function. *)

type t = private {
  latencies : Sgr_latency.Latency.t array;  (** One latency per link. *)
  demand : float;  (** Total flow [r > 0]. *)
}

val make : Sgr_latency.Latency.t array -> demand:float -> t
(** @raise Invalid_argument if no links or [demand < 0]. (Zero demand is
    allowed so that recursive algorithms can reach the empty game; its Nash
    and optimum are the all-zero assignment.) *)

val num_links : t -> int

val with_demand : t -> float -> t
(** Same links, different total flow. *)

val sub : t -> keep:bool array -> demand:float -> t * int array
(** [sub t ~keep ~demand] restricts to the links with [keep.(i)] true;
    also returns the map from new indices to original ones. Used by
    OpTop's recursive simplification. *)

(** {1 Flows and costs} *)

val cost : t -> float array -> float
(** [C(X) = Σ xᵢ·ℓᵢ(xᵢ)]. *)

val is_feasible : ?eps:float -> t -> float array -> bool
(** Nonnegative and sums to the demand. *)

val latencies_at : t -> float array -> float array
(** Per-link latency at the given assignment. *)

val beckmann : t -> float array -> float
(** The Beckmann potential [Σᵢ ∫₀^{xᵢ} ℓᵢ(u) du], whose minimizer over
    feasible assignments is exactly the Nash equilibrium. *)

(** {1 Equilibrium and optimum} *)

type solution = {
  assignment : float array;
  level : float;
      (** Common latency of loaded links (Nash) or common marginal cost
          (optimum). *)
}

module Closed_form = Closed_form
(** The O(m log m) affine fast engine; see {!Closed_form}. *)

type engine = [ `Auto | `Closed_form | `Bisection ]
(** Which water-filling engine {!nash}/{!opt} run. [`Auto] (the default)
    dispatches to {!Closed_form} exactly when every link latency is
    affine-reducible and bisects otherwise; [`Closed_form] and
    [`Bisection] force one side ([`Closed_form] still falls back — and
    counts [links.closed_form.fallbacks] — when a link does not
    reduce). *)

val set_default_engine : engine -> unit
(** Set the ambient engine used when no [?engine] is passed. *)

val default_engine : unit -> engine

val nash : ?engine:engine -> t -> solution
(** The Wardrop equilibrium of [(M, r)]. Unique for strictly increasing
    latencies; with constant-latency links, ties at the level are split
    evenly (the cost is invariant to the split). *)

val opt : ?engine:engine -> t -> solution
(** The optimum assignment of [(M, r)]. *)

val price_of_anarchy : t -> float
(** [C(N)/C(O)]. *)

val verify_nash : ?eps:float -> t -> float array -> bool
(** Post-hoc Wardrop check: loaded links share the minimum latency;
    unloaded links are no faster. *)

val verify_opt : ?eps:float -> t -> float array -> bool
(** Post-hoc optimality check on marginal costs. *)

(** {1 Stackelberg induced equilibria} *)

val induced : t -> strategy:float array -> solution
(** [induced t ~strategy:s] is the Followers' equilibrium [T] of the
    remaining flow [r - Σs] under a-posteriori latencies
    [x ↦ ℓᵢ(sᵢ + x)] (Remark 4.2). [assignment] holds only the induced
    part [T].
    @raise Invalid_argument if [s] is infeasible (negative entries or
    [Σs > r + eps]). *)

val stackelberg_cost : t -> strategy:float array -> float
(** [C(S + T)] where [T] is the induced equilibrium of [strategy]. *)

val pp : Format.formatter -> t -> unit
