(** Closed-form affine water-filling (the fast engine behind
    {!Links.nash} / {!Links.opt}).

    When every link latency is affine — including constants, degree-[<= 1]
    polynomials, [Shifted]-of-affine a-posteriori latencies and
    toll-shifted affines — the common level of the Wardrop equilibrium
    (and, on doubled-slope marginals, of the optimum) solves a linear
    equation once the active set is known. Sorting links by intercept
    makes the active set a prefix, so one O(m log m) sort plus an O(m)
    prefix scan replace the bisection of [Links.water_fill]; links whose
    flow would be negative at the candidate level are pruned by
    active-set restriction ([links.closed_form.prunes] counts them, and
    [links.closed_form.calls] the solves). *)

val reduce : Sgr_latency.Latency.t -> (float * float) option
(** [reduce ℓ] is [Some (a, b)] when [ℓ(x) = a·x + b] exactly on
    [x >= 0] ([a = 0] for constants; [Shifted] offsets fold into the
    intercept as [b + a·s]), [None] when the latency has no affine
    reduction (M/M/1, BPR, higher-degree polynomials, custom). *)

val reducible : Sgr_latency.Latency.t array -> bool
(** Every link reduces — the dispatch condition for this engine. *)

val solve_lines :
  slopes:float array ->
  intercepts:float array ->
  demand:float ->
  float array * float
(** [solve_lines ~slopes ~intercepts ~demand] water-fills the criterion
    lines [yᵢ(x) = slopesᵢ·x + interceptsᵢ] directly: [(assignment,
    level)] with the assignment summing exactly to the demand. Zero-slope
    entries get the bisection engine's constant-link treatment (infinite
    reservoir at their intercept, even tie-splitting). Used by the
    pricing scenario to probe toll deviations without rebuilding latency
    values. *)

val solve :
  [ `Nash | `Opt ] ->
  Sgr_latency.Latency.t array ->
  demand:float ->
  (float array * float) option
(** [solve criterion latencies ~demand] reduces every latency and
    water-fills in closed form — on the latency lines for [`Nash], on the
    doubled-slope marginal lines for [`Opt]. [None] when some link does
    not reduce (the caller falls back to bisection). *)
