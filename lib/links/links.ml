module L = Sgr_latency.Latency
module Bisection = Sgr_numerics.Bisection
module Vec = Sgr_numerics.Vec
module Tol = Sgr_numerics.Tolerance

type t = { latencies : L.t array; demand : float }

let make latencies ~demand =
  if Array.length latencies = 0 then invalid_arg "Links.make: no links";
  if demand < 0.0 then invalid_arg "Links.make: negative demand";
  { latencies; demand }

let num_links t = Array.length t.latencies
let with_demand t demand = make t.latencies ~demand

let sub t ~keep ~demand =
  assert (Array.length keep = num_links t);
  let kept = ref [] in
  Array.iteri (fun i k -> if k then kept := i :: !kept) keep;
  let index_map = Array.of_list (List.rev !kept) in
  let latencies = Array.map (fun i -> t.latencies.(i)) index_map in
  (make latencies ~demand, index_map)

let cost t x =
  assert (Array.length x = num_links t);
  let n = num_links t in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. L.cost t.latencies.(i) x.(i)
  done;
  !acc

let is_feasible ?(eps = Tol.check_eps) t x =
  Array.length x = num_links t
  && Vec.all_nonneg ~eps x
  && Tol.approx ~eps (Vec.sum x) t.demand

let latencies_at t x = Array.mapi (fun i xi -> L.eval t.latencies.(i) xi) x

let beckmann t x =
  assert (Array.length x = num_links t);
  let acc = ref 0.0 in
  Array.iteri (fun i xi -> acc := !acc +. L.primitive t.latencies.(i) xi) x;
  !acc

type solution = { assignment : float array; level : float }

(* Water-filling: find the minimal level [l] at which the links can absorb
   the whole demand, where a strictly-increasing link absorbs
   [inverse ℓ l] and a constant link of value [c] absorbs nothing below
   its level and arbitrarily much at it. [value]/[inverse] select the
   criterion: latency for Nash, marginal cost for the optimum. *)
let water_fill ~value ~inverse t =
  let n = num_links t and r = t.demand in
  let lats = t.latencies in
  let consts = Array.map L.constant_value lats in
  let rigid i = Option.is_none consts.(i) in
  let c_min =
    Array.fold_left
      (fun acc c -> match c with Some c -> Float.min acc c | None -> acc)
      Float.infinity consts
  in
  (* Aggregate demand the strictly-increasing links absorb at level l. *)
  let absorbed l =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      if rigid i then acc := !acc +. inverse lats.(i) l
    done;
    !acc
  in
  let base_level =
    Array.to_list lats
    |> List.mapi (fun i lat -> if rigid i then value lat 0.0 else Option.get consts.(i))
    |> List.fold_left Float.min Float.infinity
  in
  if r <= 0.0 then { assignment = Array.make n 0.0; level = base_level }
  else begin
    let level, flexible_share =
      if c_min < Float.infinity && absorbed c_min < r then begin
        (* The constant links act as an infinite reservoir at [c_min]:
           they soak up whatever the rigid links do not take. *)
        let remainder = r -. absorbed c_min in
        (c_min, remainder)
      end
      else begin
        let hi =
          if c_min < Float.infinity then c_min
          else
            Bisection.expand_upper
              ~start:(Float.max 1.0 (2.0 *. Float.abs base_level))
              ~f:absorbed ~target:r ()
        in
        let level =
          Bisection.solve_increasing ~f:absorbed ~y:r ~lo:base_level ~hi ()
        in
        (level, 0.0)
      end
    in
    let assignment = Array.make n 0.0 in
    for i = 0 to n - 1 do
      if rigid i then assignment.(i) <- Tol.clamp_nonneg (inverse lats.(i) level)
    done;
    if flexible_share > 0.0 then begin
      (* Split evenly among the constant links sitting exactly at the level. *)
      let at_level =
        Array.to_list consts
        |> List.mapi (fun i c -> (i, c))
        |> List.filter_map (fun (i, c) ->
               match c with
               | Some c when Tol.approx ~eps:1e-9 c level -> Some i
               | _ -> None)
      in
      let k = List.length at_level in
      assert (k > 0);
      List.iter (fun i -> assignment.(i) <- flexible_share /. float_of_int k) at_level
    end;
    (* Absorb residual bisection noise so the assignment is exactly feasible:
       spread the (tiny) difference over the loaded links proportionally. *)
    let total = Vec.sum assignment in
    if total > 0.0 then begin
      let correction = r /. total in
      for i = 0 to n - 1 do
        assignment.(i) <- assignment.(i) *. correction
      done
    end;
    { assignment; level }
  end

module Closed_form = Closed_form

type engine = [ `Auto | `Closed_form | `Bisection ]

(* The ambient engine, mirroring [Equilibrate]'s dispatch: [`Auto] takes
   the closed-form path exactly when every link is affine-reducible, so
   results are a function of the instance alone. Atomic because solves
   run on pool worker domains. *)
let engine_ref : engine Atomic.t = Atomic.make `Auto

let set_default_engine e = Atomic.set engine_ref e
let default_engine () = Atomic.get engine_ref

let c_fallbacks = Sgr_obs.Obs.counter "links.closed_form.fallbacks"

let solve_with ~criterion ~value ~inverse ?engine t =
  let engine = match engine with Some e -> e | None -> default_engine () in
  match engine with
  | `Bisection -> water_fill ~value ~inverse t
  | `Auto | `Closed_form ->
      (match Closed_form.solve criterion t.latencies ~demand:t.demand with
      | Some (assignment, level) -> { assignment; level }
      | None ->
          Sgr_obs.Obs.incr c_fallbacks;
          water_fill ~value ~inverse t)

let nash ?engine t = solve_with ~criterion:`Nash ~value:L.eval ~inverse:L.inverse ?engine t

let opt ?engine t =
  solve_with ~criterion:`Opt ~value:L.marginal ~inverse:L.inverse_marginal ?engine t

let price_of_anarchy t =
  let n = nash t and o = opt t in
  let co = cost t o.assignment in
  let cn = cost t n.assignment in
  (* Same semantics as [Alpha_sweep.ratio_of]: a zero-cost optimum under
     a positive Nash cost is an unbounded PoA, and the guard is a sign
     test rather than an exact float [=] so denormal optima don't slip
     through into the division. *)
  if co > 0.0 then cn /. co else if Float.abs cn <= 1e-12 then 1.0 else Float.infinity

let verify_level ?(eps = Tol.check_eps) ~value t x =
  let n = num_links t in
  let loaded_eps = eps *. Float.max 1.0 t.demand in
  let common = ref Float.neg_infinity in
  (* The common level is the largest criterion value among loaded links. *)
  for i = 0 to n - 1 do
    if x.(i) > loaded_eps then common := Float.max !common (value t.latencies.(i) x.(i))
  done;
  let ok = ref true in
  for i = 0 to n - 1 do
    let v = value t.latencies.(i) x.(i) in
    if x.(i) > loaded_eps then begin
      if not (Tol.approx ~eps v !common) then ok := false
    end
    else if not (Tol.approx_ge ~eps v !common) then ok := false
  done;
  !ok

let verify_nash ?eps t x = verify_level ?eps ~value:L.eval t x
let verify_opt ?eps t x = verify_level ?eps ~value:L.marginal t x

let induced t ~strategy =
  if Array.length strategy <> num_links t then
    invalid_arg "Links.induced: strategy size mismatch";
  if not (Vec.all_nonneg ~eps:1e-9 strategy) then
    invalid_arg "Links.induced: negative leader flow";
  let used = Vec.sum strategy in
  if used > t.demand +. (Tol.check_eps *. Float.max 1.0 t.demand) then
    invalid_arg "Links.induced: strategy exceeds total demand";
  let remaining = Tol.clamp_nonneg (t.demand -. used) in
  let shifted =
    Array.mapi (fun i lat -> L.shift (Tol.clamp_nonneg strategy.(i)) lat) t.latencies
  in
  nash (make shifted ~demand:remaining)

let stackelberg_cost t ~strategy =
  let induced_eq = induced t ~strategy in
  let combined = Vec.add strategy induced_eq.assignment in
  cost t combined

let pp ppf t =
  Format.fprintf ppf "@[<v>%d parallel links, r = %.6g" (num_links t) t.demand;
  Array.iteri (fun i lat -> Format.fprintf ppf "@,  M%d: ℓ(x) = %a" (i + 1) L.pp lat) t.latencies;
  Format.fprintf ppf "@]"
