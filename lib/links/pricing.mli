(** Best-response toll pricing on parallel affine links.

    The pricing-game counterpart of Stackelberg flow control (the
    Goldberg–Polpinit parallel-link pricing equilibrium, PAPERS.md):
    each link belongs to a profit-maximizing owner charging a toll
    [τᵢ >= 0]; users split the demand selfishly under the tolled
    latencies [ℓᵢ(x) + τᵢ]; owner [i] collects [τᵢ·xᵢ]. Tolled affine
    latencies stay affine, so every payoff probe is one closed-form
    water-fill ({!Closed_form.solve_lines}) — this module is the
    engine's first workload beyond the benchmarks. *)

type result = {
  tolls : float array;  (** One toll per link at the fixed point. *)
  flow : float array;  (** User equilibrium under the final tolls. *)
  level : float;  (** Common tolled latency of the loaded links. *)
  revenues : float array;  (** [τᵢ·xᵢ]. *)
  user_cost : float;
      (** Latency cost [Σ xᵢ·ℓᵢ(xᵢ)] of the tolled equilibrium, priced by
          the original latencies (tolls are transfers, not social cost). *)
  rounds : int;
  converged : bool;  (** False when the round budget ran out first. *)
}

val best_response : ?max_rounds:int -> ?tol:float -> Links.t -> result
(** Cyclic best-response dynamics: each owner in turn maximizes revenue
    against the others' current tolls (grid scan + golden-section over
    [0, τᵢᵐᵃˣ]), until a full round moves no toll by more than [tol]
    (relative; default [1e-9]) or [max_rounds] (default 64) rounds pass.
    A converged point is a pure Nash equilibrium of the pricing game up
    to the search resolution. Deterministic.
    @raise Invalid_argument on fewer than two links (a monopolist prices
    unboundedly), on constant-latency links, or on non-affine
    latencies. *)

val price_of_pricing : Links.t -> result -> float
(** Tolled user cost over the untolled optimum cost [C(O)] — how much
    decentralized profit-seeking owners cost the users, the pricing
    analogue of the price of optimum. *)

val pp : Format.formatter -> result -> unit
