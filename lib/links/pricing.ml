(* Best-response toll pricing on parallel affine links (the
   Goldberg–Polpinit parallel-link pricing game).

   Each link is owned by a distinct profit-maximizing firm that charges a
   toll τᵢ >= 0; the infinite population of users then splits the demand
   selfishly under the tolled latencies ℓᵢ(x) + τᵢ, which stay affine, so
   every probe is one closed-form water-fill. Owner i's payoff is the
   revenue τᵢ·xᵢ(τ). The solver runs cyclic best-response dynamics: each
   owner in turn maximizes its revenue against the others' current tolls
   (coarse grid scan + golden-section refinement over [0, τᵢᵐᵃˣ], where
   τᵢᵐᵃˣ prices the link out of the market), until a full round moves no
   toll by more than the tolerance. A fixed point is a pure Nash
   equilibrium of the pricing game up to the search resolution. *)

module Tol = Sgr_numerics.Tolerance
module Vec = Sgr_numerics.Vec
module Obs = Sgr_obs.Obs

type result = {
  tolls : float array;
  flow : float array;
  level : float;
  revenues : float array;
  user_cost : float;
  rounds : int;
  converged : bool;
}

let c_rounds = Obs.counter "links.pricing.rounds"
let c_probes = Obs.counter "links.pricing.probes"

let golden = 0.5 *. (Float.sqrt 5.0 -. 1.0)

let best_response ?(max_rounds = 64) ?(tol = 1e-9) (t : Links.t) =
  let n = Links.num_links t in
  if n < 2 then
    invalid_arg "Pricing.best_response: a monopolist prices unboundedly; need >= 2 links";
  let slopes = Array.make n 0.0 and intercepts = Array.make n 0.0 in
  Array.iteri
    (fun i lat ->
      match Closed_form.reduce lat with
      | Some (a, b) when a > 0.0 ->
          slopes.(i) <- a;
          intercepts.(i) <- b
      | Some _ ->
          invalid_arg
            "Pricing.best_response: a constant-latency link has no best response (drop it)"
      | None -> invalid_arg "Pricing.best_response: latencies must be affine")
    t.Links.latencies;
  let r = t.Links.demand in
  let tolls = Array.make n 0.0 in
  let equilibrium () =
    Closed_form.solve_lines ~slopes
      ~intercepts:(Array.mapi (fun i b -> b +. tolls.(i)) intercepts)
      ~demand:r
  in
  if r <= 0.0 then begin
    let flow, level = equilibrium () in
    {
      tolls;
      flow;
      level;
      revenues = Array.make n 0.0;
      user_cost = 0.0;
      rounds = 0;
      converged = true;
    }
  end
  else begin
    let revenue i tau =
      Obs.incr c_probes;
      let b = Array.mapi (fun j bj -> bj +. if j = i then tau else tolls.(j)) intercepts in
      let x, _ = Closed_form.solve_lines ~slopes ~intercepts:b ~demand:r in
      tau *. x.(i)
    in
    (* The level of the market without link i (under the others' current
       tolls): any toll pushing bᵢ + τ to that level prices the link out,
       so it brackets the best response. *)
    let toll_ceiling i =
      let ss = Array.make (n - 1) 0.0 and bs = Array.make (n - 1) 0.0 in
      let k = ref 0 in
      for j = 0 to n - 1 do
        if j <> i then begin
          ss.(!k) <- slopes.(j);
          bs.(!k) <- intercepts.(j) +. tolls.(j);
          incr k
        end
      done;
      let _, level_rest = Closed_form.solve_lines ~slopes:ss ~intercepts:bs ~demand:r in
      Tol.clamp_nonneg (level_rest -. intercepts.(i))
    in
    let best_toll i =
      let hi = toll_ceiling i in
      if hi <= 0.0 then 0.0
      else begin
        let f = revenue i in
        (* Coarse scan first: the revenue curve is piecewise quadratic
           (kinks where the user equilibrium's active set changes), so a
           grid locates the right piece before golden-section polishes
           within it. *)
        let grid = 32 in
        let at k = hi *. float_of_int k /. float_of_int grid in
        let best_k = ref 0 and best_v = ref Float.neg_infinity in
        for k = 0 to grid do
          let v = f (at k) in
          if v > !best_v then begin
            best_v := v;
            best_k := k
          end
        done;
        let a = ref (at (Int.max 0 (!best_k - 1))) in
        let b = ref (at (Int.min grid (!best_k + 1))) in
        let x1 = ref (!b -. (golden *. (!b -. !a)))
        and x2 = ref (!a +. (golden *. (!b -. !a))) in
        let f1 = ref (f !x1) and f2 = ref (f !x2) in
        for _ = 1 to 48 do
          if !f1 < !f2 then begin
            a := !x1;
            x1 := !x2;
            f1 := !f2;
            x2 := !a +. (golden *. (!b -. !a));
            f2 := f !x2
          end
          else begin
            b := !x2;
            x2 := !x1;
            f2 := !f1;
            x1 := !b -. (golden *. (!b -. !a));
            f1 := f !x1
          end
        done;
        let refined = 0.5 *. (!a +. !b) in
        if f refined >= !best_v then refined else at !best_k
      end
    in
    let rounds = ref 0 and converged = ref false in
    while (not !converged) && !rounds < max_rounds do
      incr rounds;
      Obs.incr c_rounds;
      let moved = ref 0.0 in
      for i = 0 to n - 1 do
        let next = best_toll i in
        moved := Float.max !moved (Float.abs (next -. tolls.(i)));
        tolls.(i) <- next
      done;
      let scale = Array.fold_left Float.max 1.0 tolls in
      if !moved <= tol *. scale then converged := true
    done;
    let flow, level = equilibrium () in
    let revenues = Array.mapi (fun i x -> tolls.(i) *. x) flow in
    { tolls; flow; level; revenues; user_cost = Links.cost t flow; rounds = !rounds; converged = !converged }
  end

(* Price of leadership-by-pricing: tolled user cost against the
   untolled optimum (both priced by the original latencies; tolls are
   transfers). *)
let price_of_pricing t result =
  let opt_cost = Links.cost t (Links.opt t).assignment in
  if opt_cost > 0.0 then result.user_cost /. opt_cost
  else if Float.abs result.user_cost <= 1e-12 then 1.0
  else Float.infinity

let pp ppf r =
  Format.fprintf ppf
    "@[<v>tolls     = %a@,flow      = %a@,revenues  = %a@,level     = %.6g@,user cost = \
     %.6g@,rounds    = %d (%s)@]"
    Vec.pp r.tolls Vec.pp r.flow Vec.pp r.revenues r.level r.user_cost r.rounds
    (if r.converged then "converged" else "round budget exhausted")
