(* Closed-form water-filling on parallel links whose latencies are all
   affine (or constant). The common level of a Wardrop equilibrium —
   and, on the doubled-slope marginals, of the optimum — solves a linear
   equation once the set of loaded links is known: with the active set
   [A], Σ_{i∈A} (L - bᵢ)/sᵢ = r, so L = (r + Σ bᵢ/sᵢ) / Σ 1/sᵢ.
   Instead of bisecting as [Links.water_fill] does, the active set is
   found by fixed-point restriction: start from every link, compute the
   candidate level, and drop the links whose intercept it does not
   reach (they would carry negative flow). The level only falls as
   links drop, so the sets are nested and the iteration terminates at
   the first pass that keeps its set. Random instances settle in three
   or four O(|active|) passes after one O(m) restriction; the
   adversarial intercept ladder degrades gracefully to O(m + |active|²),
   within the advertised O(m log m) for the active sets that arise from
   bounded-ratio slopes. *)

module L = Sgr_latency.Latency
module Tol = Sgr_numerics.Tolerance
module Obs = Sgr_obs.Obs

let c_calls = Obs.counter "links.closed_form.calls"
let c_prunes = Obs.counter "links.closed_form.prunes"

(* Allocation-free reduction for the dispatch hot path: writes the line
   coefficients of [kind] into slot [i] of the coefficient arrays and
   reports reducibility by return value (an [Option] tuple per link
   costs more than the whole prefix scan at m = 100). A latency reduces
   when it behaves exactly as ℓ(x) = a·x + b on x >= 0 (a = 0 for
   constants); [Shifted] composes: base(s + x) = a·x + (a·s + b). The
   [Polynomial] case is a structural degree test, like
   [Latency.kind_constant_value]: any nonzero stored coefficient past
   the linear term, however small, disqualifies the reduction. *)
let rec reduce_into kind (slopes : float array) (intercepts : float array) i =
  match kind with
  | L.Constant c ->
      slopes.(i) <- 0.0;
      intercepts.(i) <- c;
      true
  | L.Affine { slope; intercept } ->
      slopes.(i) <- slope;
      intercepts.(i) <- intercept;
      true
  | L.Polynomial coeffs ->
      let higher = ref false in
      for j = 2 to Array.length coeffs - 1 do
        if (coeffs.(j) <> 0.0) [@lint.allow "float-equality"] then higher := true
      done;
      if !higher then false
      else begin
        let m = Array.length coeffs in
        slopes.(i) <- (if m > 1 then coeffs.(1) else 0.0);
        intercepts.(i) <- (if m > 0 then coeffs.(0) else 0.0);
        true
      end
  | L.Shifted { offset; base } ->
      reduce_into base slopes intercepts i
      && begin
           intercepts.(i) <- intercepts.(i) +. (slopes.(i) *. offset);
           true
         end
  | L.Mm1 _ | L.Bpr _ | L.Custom _ -> false
(* why: structural recursion on the [Shifted] nesting of one latency
   kind — depth is fixed by the instance description, not the demand,
   so the recursion terminates in a handful of frames. *)
[@@lint.allow "cancel-coverage"]

(* [reduce_kind k] is [Some (a, b)] when [k] reduces to the line
   a·x + b, [None] otherwise. *)
let reduce_kind kind =
  let a = Array.make 1 0.0 and b = Array.make 1 0.0 in
  if reduce_into kind a b 0 then Some (a.(0), b.(0)) else None

let reduce lat = reduce_kind (L.kind lat)
let reducible lats = Array.for_all (fun lat -> Option.is_some (reduce lat)) lats

(* Kahan sum, inlined from [Vec.sum] so the compensation order — and
   therefore the rescale divisor — matches the bisection engine bit for
   bit without paying its per-element closure. *)
let kahan_sum (v : float array) =
  let s = ref 0.0 and c = ref 0.0 in
  for i = 0 to Array.length v - 1 do
    let y = v.(i) -. !c in
    let t = !s +. y in
    c := t -. !s -. y;
    s := t
  done;
  !s

(* Direct water-filling on criterion lines yᵢ(x) = sᵢ·x + bᵢ. Mirrors
   [Links.water_fill] exactly, including the constant-link semantics: a
   zero-slope link is an infinite reservoir at its intercept, ties at the
   level split evenly, and the final assignment is rescaled to sum to the
   demand. Returns [(assignment, level)]. *)
let solve_lines ~slopes ~intercepts ~demand:r =
  let n = Array.length slopes in
  assert (n > 0 && Array.length intercepts = n);
  let rigid i = slopes.(i) > 0.0 in
  if r <= 0.0 then begin
    let base_level = ref Float.infinity in
    for i = 0 to n - 1 do
      base_level := Float.min !base_level intercepts.(i)
    done;
    (Array.make n 0.0, !base_level)
  end
  else begin
    Obs.incr c_calls;
    (* One combined pass: the constant reservoir's level, the rigid-link
       count, the cached reciprocal slopes the fixed-point sums multiply
       by (a division per link per pass would dominate), and the
       all-rigid sums that seed the first candidate level. *)
    let inv_s = Array.make n 0.0 in
    let nr = ref 0 in
    let c_min = ref Float.infinity in
    let inv_sum0 = ref 0.0 and weighted_sum0 = ref 0.0 in
    for i = 0 to n - 1 do
      if slopes.(i) > 0.0 then begin
        let w = 1.0 /. slopes.(i) in
        inv_s.(i) <- w;
        inv_sum0 := !inv_sum0 +. w;
        weighted_sum0 := !weighted_sum0 +. (intercepts.(i) *. w);
        incr nr
      end
      else c_min := Float.min !c_min intercepts.(i)
    done;
    let nr = !nr in
    let c_min = !c_min in
    (* Flow the rigid links absorb at the constant reservoir's level. *)
    let absorbed_at_c_min =
      if c_min < Float.infinity then begin
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          if rigid i then
            acc := !acc +. Tol.clamp_nonneg ((c_min -. intercepts.(i)) /. slopes.(i))
        done;
        !acc
      end
      else Float.infinity
    in
    let assignment = Array.make n 0.0 in
    let level =
      if absorbed_at_c_min < r then begin
        (* Reservoir case: the level is pinned at [c_min]; the constant
           links sitting (approximately) at it share the remainder
           evenly, as in the bisection engine. *)
        for i = 0 to n - 1 do
          if rigid i then
            assignment.(i) <- Tol.clamp_nonneg ((c_min -. intercepts.(i)) /. slopes.(i))
        done;
        let at_level = ref [] in
        for i = n - 1 downto 0 do
          if (not (rigid i)) && Tol.approx ~eps:1e-9 intercepts.(i) c_min then
            at_level := i :: !at_level
        done;
        let k = List.length !at_level in
        assert (k > 0);
        let share = (r -. absorbed_at_c_min) /. float_of_int k in
        List.iter (fun i -> assignment.(i) <- share) !at_level;
        (* Exact-feasibility normalization, as the bisection engine. *)
        let total = kahan_sum assignment in
        if total > 0.0 then begin
          let correction = r /. total in
          for i = 0 to n - 1 do
            assignment.(i) <- assignment.(i) *. correction
          done
        end;
        c_min
      end
      else begin
        (* Rigid case: the level lies strictly among the increasing
           links. Active-set restriction by fixed-point iteration: start
           from every rigid link, compute the common level, and restrict
           to the links whose intercept the level still reaches. The
           level falls monotonically as negative-flow links drop out, so
           membership is just [bᵢ < level] against the latest candidate
           — no sorting, no bookkeeping — and the set can only shrink;
           when a pass keeps the set (sizes match on nested sets), the
           candidate is the fixed point. The survivors of the first
           restriction are compacted into [idxs] so every later pass —
           and the final fill — touches only them, not all m links.
           Random instances settle in three or four passes; the
           adversarial ladder costs O(m + |active|²). *)
        assert (nr > 0);
        let level1 = (r +. !weighted_sum0) /. !inv_sum0 in
        let idxs = Array.make nr 0 in
        let nc = ref 0 and inv_sum = ref 0.0 and weighted_sum = ref 0.0 in
        for i = 0 to n - 1 do
          if slopes.(i) > 0.0 && intercepts.(i) < level1 then begin
            idxs.(!nc) <- i;
            inv_sum := !inv_sum +. inv_s.(i);
            weighted_sum := !weighted_sum +. (intercepts.(i) *. inv_s.(i));
            incr nc
          end
        done;
        (* [nc >= 1]: with r > 0 the candidate strictly exceeds the
           smallest intercept in the set it was computed over, so the
           minimum-intercept link always survives the restriction. *)
        let active = ref !nc in
        let candidate = ref ((r +. !weighted_sum) /. !inv_sum) in
        let settled = ref (!nc = nr) in
        while not !settled do
          (* Each restriction pass is O(n) and the active set only
             shrinks, but n passes over 10^5 links is real time — let an
             armed deadline pre-empt the active-set iteration. *)
          Sgr_obs.Cancel.check ();
          let nc2 = ref 0 and inv2 = ref 0.0 and w2 = ref 0.0 in
          for k = 0 to !active - 1 do
            let i = idxs.(k) in
            if intercepts.(i) < !candidate then begin
              idxs.(!nc2) <- i;
              inv2 := !inv2 +. inv_s.(i);
              w2 := !w2 +. (intercepts.(i) *. inv_s.(i));
              incr nc2
            end
          done;
          if !nc2 = !active then settled := true
          else begin
            active := !nc2;
            candidate := (r +. !w2) /. !inv2
          end
        done;
        Obs.add c_prunes (nr - !active);
        let level = !candidate in
        for k = 0 to !active - 1 do
          let i = idxs.(k) in
          assignment.(i) <- Tol.clamp_nonneg ((level -. intercepts.(i)) /. slopes.(i))
        done;
        (* Exact-feasibility normalization over the loaded prefix (the
           rest of the assignment is exact zeros): spread the (tiny)
           closed-form rounding over the active links, as the bisection
           engine does over all of them. *)
        let total =
          let s = ref 0.0 and c = ref 0.0 in
          for k = 0 to !active - 1 do
            let y = assignment.(idxs.(k)) -. !c in
            let t = !s +. y in
            c := t -. !s -. y;
            s := t
          done;
          !s
        in
        if total > 0.0 then begin
          let correction = r /. total in
          for k = 0 to !active - 1 do
            let i = idxs.(k) in
            assignment.(i) <- assignment.(i) *. correction
          done
        end;
        level
      end
    in
    (assignment, level)
  end

let solve criterion lats ~demand =
  let n = Array.length lats in
  let slopes = Array.make n 0.0 and intercepts = Array.make n 0.0 in
  let ok = ref true in
  let i = ref 0 in
  (* why: one early-exiting pass over the n links, constant work per
     link — bounded by the instance size before any solving starts. *)
  (while !ok && !i < n do
     ok := reduce_into (L.kind lats.(!i)) slopes intercepts !i;
     incr i
   done)
  [@lint.allow "cancel-coverage"];
  if not !ok then None
  else begin
    (* The optimum equalizes marginal costs: d(x·(a·x+b))/dx = 2a·x + b —
       the same intercepts on doubled slopes. *)
    (match criterion with
    | `Nash -> ()
    | `Opt ->
        for i = 0 to n - 1 do
          slopes.(i) <- 2.0 *. slopes.(i)
        done);
    Some (solve_lines ~slopes ~intercepts ~demand)
  end
