module G = Sgr_graph
module Network = Sgr_network.Network
module Objective = Sgr_network.Objective
module Obs = Sgr_obs.Obs

type method_ = Frank_wolfe | Msa

let method_name = function Frank_wolfe -> "frank-wolfe" | Msa -> "msa"

type solution = Sgr_network.Solver_types.solution = {
  edge_flow : float array;
  iterations : int;
  relative_gap : float;
  objective : float;
  trace : Sgr_network.Solver_types.trace_point list;
}

let c_iters = Obs.counter "assign.iterations"
let c_line_search = Obs.counter "assign.line_searches"

let solve_gen ?(tol = 1e-4) ?(max_iter = 10_000) ?(method_ = Frank_wolfe) ?jobs ~flows obj net
    =
  Obs.span "assign.solve" @@ fun () ->
  let m = G.Digraph.num_edges net.Network.graph in
  let value = Objective.edge_value obj in
  let lats = net.Network.latencies in
  let ks = net.Network.commodities in
  let plan = Aon.plan net in
  let grad = Array.make m 0.0 in
  let y = Array.make m 0.0 in
  (* Per-commodity flow tracking (only when the caller wants a
     decomposable answer): every AON routes each commodity down one tree
     path, so the commodity split evolves by the same convex steps as
     the aggregate — x_i <- (1-γ)·x_i + γ·d_i·path_i. Recording never
     touches the aggregate iterates, so [solve] and [solve_flows]
     produce byte-identical [edge_flow]. *)
  let paths = Array.map (fun _ -> []) ks in
  let record =
    match flows with
    | None -> None
    | Some _ -> Some (fun ~commodity ~path -> paths.(commodity) <- path)
  in
  let update_flows gamma =
    match flows with
    | None -> ()
    | Some xs ->
        let scale = 1.0 -. gamma in
        Array.iteri
          (fun i x ->
            for e = 0 to m - 1 do
              x.(e) <- x.(e) *. scale
            done;
            let d = gamma *. ks.(i).Network.demand in
            List.iter (fun e -> x.(e) <- x.(e) +. d) paths.(i))
          xs
  in
  (* Dijkstra rejects negative weights; marginals of odd user latencies
     can dip microscopically below zero, so clamp. *)
  let fill_grad f =
    for e = 0 to m - 1 do
      grad.(e) <- Float.max 0.0 (value lats.(e) f.(e))
    done
  in
  let f = Array.make m 0.0 in
  fill_grad f;
  Aon.assign ?jobs ?record plan net ~weights:grad ~into:f;
  update_flows 1.0;
  let iterations = ref 0 in
  let relgap = ref Float.infinity in
  let continue = ref true in
  let tracing = Obs.enabled () in
  let trace = ref [] in
  let cancel = Sgr_obs.Cancel.handle () in
  while !continue && !iterations < max_iter do
    Sgr_obs.Cancel.check_handle cancel;
    incr iterations;
    Obs.incr c_iters;
    fill_grad f;
    Aon.assign ?jobs ?record plan net ~weights:grad ~into:y;
    (* Relative duality gap of the linearized subproblem: the direction
       is d = y - f, kept implicit — both dot products stream over the
       two flow arrays. *)
    let gap = ref 0.0 and denom = ref 0.0 in
    for e = 0 to m - 1 do
      gap := !gap -. (grad.(e) *. (y.(e) -. f.(e)));
      denom := !denom +. (grad.(e) *. f.(e))
    done;
    relgap := !gap /. Float.max 1e-12 (Float.abs !denom);
    let obj_now = if tracing then Objective.objective obj net f else 0.0 in
    let step =
      if !relgap <= tol then begin
        continue := false;
        0.0
      end
      else begin
        let gamma =
          match method_ with
          | Msa -> 1.0 /. float_of_int (!iterations + 1)
          | Frank_wolfe ->
              Obs.incr c_line_search;
              (* Exact line search: the directional derivative of the
                 convex objective along d is nondecreasing in gamma. *)
              let dphi gamma =
                Sgr_obs.Cancel.check_handle cancel;
                let acc = ref 0.0 in
                for e = 0 to m - 1 do
                  let de = y.(e) -. f.(e) in
                  (* Exact test by design: exact zeros mark edges outside
                     the direction's support; a tolerance would silently
                     drop genuinely tiny components. *)
                  if (de <> 0.0) [@lint.allow "float-equality"] then
                    acc := !acc +. (de *. value lats.(e) (f.(e) +. (gamma *. de)))
                done;
                !acc
              in
              let gamma = Sgr_numerics.Minimize.line_search_convex ~df:dphi ~lo:0.0 ~hi:1.0 () in
              if gamma <= 0.0 then 1e-12 else gamma
        in
        for e = 0 to m - 1 do
          f.(e) <- f.(e) +. (gamma *. (y.(e) -. f.(e)));
          (* Clip negative rounding noise. *)
          if f.(e) < 0.0 then f.(e) <- 0.0
        done;
        update_flows gamma;
        gamma
      end
    in
    if tracing then begin
      let solver = "assign." ^ method_name method_ in
      Obs.point ~solver ~k:!iterations ~gap:!relgap ~objective:obj_now ~step;
      trace := { Sgr_network.Solver_types.k = !iterations; gap = !relgap; objective = obj_now; step } :: !trace
    end
  done;
  {
    edge_flow = f;
    iterations = !iterations;
    relative_gap = !relgap;
    objective = Objective.objective obj net f;
    trace = List.rev !trace;
  }

let solve ?tol ?max_iter ?method_ ?jobs obj net =
  solve_gen ?tol ?max_iter ?method_ ?jobs ~flows:None obj net

let solve_flows ?tol ?max_iter ?method_ ?jobs obj net =
  let m = G.Digraph.num_edges net.Network.graph in
  let xs = Array.map (fun _ -> Array.make m 0.0) net.Network.commodities in
  let sol = solve_gen ?tol ?max_iter ?method_ ?jobs ~flows:(Some xs) obj net in
  (sol, xs)
