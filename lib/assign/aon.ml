module G = Sgr_graph
module Network = Sgr_network.Network
module Obs = Sgr_obs.Obs

let c_calls = Obs.counter "assign.aon_calls"
let c_trees = Obs.counter "assign.dijkstra_trees"

(* One Dijkstra workspace per domain: tree builds fan over the pool and
   each worker reuses its own scratch arrays across iterations. Results
   alias the workspace, so every tree copies its predecessor array out
   before the workspace is reused. *)
let ws_key = Domain.DLS.new_key (fun () -> G.Dijkstra.workspace ())

type plan = {
  sources : int array;  (* distinct commodity sources, ascending *)
  tree_of : int array;  (* commodity index -> index into [sources] *)
}

let plan (net : Network.t) =
  let ks = net.Network.commodities in
  let srcs = Array.map (fun c -> c.Network.src) ks in
  let sorted = Array.copy srcs in
  Array.sort Int.compare sorted;
  let distinct = ref [] in
  Array.iteri
    (fun i s -> if i = 0 || sorted.(i - 1) <> s then distinct := s :: !distinct)
    sorted;
  let sources = Array.of_list (List.rev !distinct) in
  let index_of s =
    (* why: binary search for the first index with sources.(i) >= s —
       the window halves every pass, so the loop is log-bounded. *)
    let lo = ref 0 and hi = ref (Array.length sources - 1) in
    (while !lo < !hi do
       let mid = (!lo + !hi) / 2 in
       if sources.(mid) < s then lo := mid + 1 else hi := mid
     done)
    [@lint.allow "cancel-coverage"];
    !lo
  in
  { sources; tree_of = Array.map index_of srcs }

let num_trees p = Array.length p.sources

let assign ?jobs ?record p (net : Network.t) ~weights ~into =
  Obs.incr c_calls;
  let g = net.Network.graph in
  let m = G.Digraph.num_edges g in
  if Array.length into <> m then invalid_arg "Aon.assign: flow array has the wrong length";
  Array.fill into 0 m 0.0;
  let edge_src = G.Digraph.edge_sources g in
  (* Phase 1 — trees on the pool: deterministic per source, written into
     index slots, so the set of predecessor arrays is independent of the
     job count. *)
  let preds =
    Sgr_par.Pool.map ?jobs
      (fun s ->
        (* Per-tree checkpoint: free on a disarmed domain; on the
           sequential fallback it keeps a large batch pre-emptible
           between Dijkstras. *)
        Sgr_obs.Cancel.check ();
        Obs.incr c_trees;
        let r = G.Dijkstra.run ~workspace:(Domain.DLS.get ws_key) g ~weights ~source:s in
        Array.copy r.G.Dijkstra.pred)
      p.sources
  in
  (* Phase 2 — sequential accumulation in commodity order: walk the
     predecessor chain from sink to source adding the demand. *)
  let cancel = Sgr_obs.Cancel.handle () in
  Array.iteri
    (fun i (c : Network.commodity) ->
      let pred = preds.(p.tree_of.(i)) in
      let v = ref c.Network.dst in
      let edges = ref [] in
      while !v <> c.Network.src do
        Sgr_obs.Cancel.check_handle cancel;
        let e = pred.(!v) in
        if e < 0 then
          invalid_arg
            (Printf.sprintf "Aon.assign: commodity %d cannot reach node %d from node %d" i
               c.Network.dst c.Network.src);
        into.(e) <- into.(e) +. c.Network.demand;
        (* The walk runs sink to source, so consing yields the path in
           source-to-sink edge order. Only collected when asked for. *)
        if record <> None then edges := e :: !edges;
        v := edge_src.(e)
      done;
      match record with None -> () | Some f -> f ~commodity:i ~path:!edges)
    net.Network.commodities
