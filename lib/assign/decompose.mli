(** On-demand flow decomposition: materialize a path-flow view of an
    edge flow produced by the edge-based solver.

    Paths are recovered by repeated Dijkstra-tree walks restricted to
    the positive-remainder subgraph: for each commodity in order, peel
    bottleneck-bounded amounts along shortest remaining paths until the
    commodity's demand is exhausted. Each commodity peels from its own
    flow split (an aggregate multi-commodity flow does not determine
    one — see {!run}). The decomposition is conservation-checked
    against the commodities' demands before peeling.

    Bitwise recomposition contract: [recompose] replays the peeled
    amounts in peel order into a fresh array and then adds the stored
    per-edge [residual]. The residual is computed as the floating-point
    difference between the input flow and the replayed sum — by
    Sterbenz's lemma this difference is exact whenever the replayed sum
    is within a factor of two of the input (always the case after a
    conservation-checked peel), so [recompose d] reproduces the input
    edge flow bit for bit. [run] verifies the identity and refuses the
    decomposition otherwise. *)

type path_flow = {
  commodity : int;
  path : Sgr_graph.Paths.t;
  amount : float;  (** strictly positive *)
}

type t = {
  path_flows : path_flow list;  (** in peel order *)
  residual : float array;  (** per-edge peeling dust; tiny after a clean peel *)
}

val run :
  ?eps:float ->
  ?flows:float array array ->
  Sgr_network.Network.t ->
  edge_flow:float array ->
  t
(** Decompose [edge_flow]. [eps] (default [1e-9], relative to each
    commodity's demand) bounds the undecomposed demand per commodity.
    [flows] is the per-commodity split of [edge_flow]
    ({!Solver.solve_flows} tracks it); it is required for
    multi-commodity networks — greedy peeling from the aggregate can
    strand a later commodity behind an earlier one's peel — and
    defaults to [[| edge_flow |]] on single-commodity ones.
    @raise Invalid_argument when a commodity's flow does not conserve
    its demand (relative tolerance [1e-6]), when a commodity cannot be
    routed through its positive-remainder subgraph, when [flows] is
    missing on a multi-commodity network, or when the bitwise
    recomposition identity cannot be established. *)

val recompose : Sgr_network.Network.t -> t -> float array
(** Replay: sum of [amount] over each path's edges in peel order, plus
    [residual]. Equals the [edge_flow] passed to {!run}, bitwise. *)

val max_residual : t -> float
(** Largest [|residual|] entry — the decomposition's peeling dust. *)

val demand_error : Sgr_network.Network.t -> t -> float
(** Largest absolute gap between a commodity's demand and the sum of its
    peeled amounts. *)
