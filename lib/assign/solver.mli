(** Edge-flow traffic assignment: Frank–Wolfe and MSA over flat
    per-edge [float array]s, with the all-or-nothing subproblem batched
    into pool-parallel Dijkstra trees ({!Aon}).

    Unlike [Sgr_network.Frank_wolfe]/[Msa], which walk one shortest path
    per commodity per iteration, this solver scales to networks with
    10^4–10^5 edges: no path is ever enumerated, and the per-iteration
    cost is a handful of Dijkstra trees plus O(m) vector work. Results
    are byte-identical at any [--jobs]. Inner loops checkpoint the
    per-domain deadline ([Sgr_obs.Cancel]), so serving-side requests
    stay pre-emptible. *)

type method_ = Frank_wolfe | Msa

val method_name : method_ -> string
(** ["frank-wolfe"] / ["msa"] — stable labels for CLI and protocol. *)

type solution = Sgr_network.Solver_types.solution = {
  edge_flow : float array;
  iterations : int;
  relative_gap : float;
  objective : float;
  trace : Sgr_network.Solver_types.trace_point list;
}

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?method_:method_ ->
  ?jobs:int ->
  Sgr_network.Objective.t ->
  Sgr_network.Network.t ->
  solution
(** [solve obj net] minimizes the Beckmann potential ([Wardrop]) or the
    total cost ([System_optimum]) to relative duality gap [tol] (default
    [1e-4]) within [max_iter] iterations (default [10_000]).
    [Frank_wolfe] (default) takes an exact convex line-search step; [Msa]
    uses the 1/(k+1) schedule. [jobs] bounds the Dijkstra-tree fan-out
    (default: ambient pool width). *)

val solve_flows :
  ?tol:float ->
  ?max_iter:int ->
  ?method_:method_ ->
  ?jobs:int ->
  Sgr_network.Objective.t ->
  Sgr_network.Network.t ->
  solution * float array array
(** Like {!solve}, additionally returning the per-commodity split of
    [edge_flow] that {!Decompose.run} needs on multi-commodity
    networks: every AON step routes a commodity down one tree path, so
    the split evolves by the same convex combinations as the aggregate
    (x_i sums to [edge_flow] up to rounding). The [solution] — and in
    particular its [edge_flow] — is byte-identical to {!solve}'s. *)
