(** Batched all-or-nothing assignment on the CSR graph.

    One Dijkstra tree per *distinct* commodity source (commodities
    sharing a source share a tree), fanned over the ambient worker pool;
    demand accumulation walks each commodity's predecessor chain
    sequentially in commodity order, so the resulting edge flow is
    byte-identical at any [--jobs]. Paths are never materialized: the
    whole assignment lives in the predecessor arrays. *)

type plan
(** Source-grouping of a network's commodities, computed once per solve
    and reused every iteration. *)

val plan : Sgr_network.Network.t -> plan

val num_trees : plan -> int
(** Number of distinct source nodes, i.e. Dijkstra trees per call. *)

val assign :
  ?jobs:int ->
  ?record:(commodity:int -> path:Sgr_graph.Paths.t -> unit) ->
  plan ->
  Sgr_network.Network.t ->
  weights:float array ->
  into:float array ->
  unit
(** [assign plan net ~weights ~into] zeroes [into] and adds, for every
    commodity, its full demand along a shortest [src]–[dst] path under
    [weights] (ties broken by the deterministic Dijkstra tree). The
    shortest-path trees run on the pool ([jobs] defaults to the ambient
    pool width); accumulation is sequential in commodity order.
    [record], when given, receives each commodity's routed path (edge
    ids, source to sink) — the only way paths ever materialize here,
    and only for callers that ask. Checkpoints the per-domain deadline
    between trees and commodities.
    @raise Invalid_argument when a commodity's sink is unreachable. *)
