module G = Sgr_graph
module Network = Sgr_network.Network
module Obs = Sgr_obs.Obs

let c_paths = Obs.counter "decompose.paths"
let c_walks = Obs.counter "decompose.dijkstra_walks"

type path_flow = { commodity : int; path : G.Paths.t; amount : float }
type t = { path_flows : path_flow list; residual : float array }

(* Divergence of [flow] at every node: out minus in. *)
let divergence g flow =
  let div = Array.make (G.Digraph.num_nodes g) 0.0 in
  let src = G.Digraph.edge_sources g and dst = G.Digraph.edge_targets g in
  Array.iteri
    (fun e fe ->
      div.(src.(e)) <- div.(src.(e)) +. fe;
      div.(dst.(e)) <- div.(dst.(e)) -. fe)
    flow;
  div

(* Per-commodity conservation: commodity [i]'s split must carry exactly
   its own demand from its source to its sink. *)
let check_conservation (net : Network.t) i flow =
  let g = net.Network.graph in
  let div = divergence g flow in
  let c = net.Network.commodities.(i) in
  div.(c.Network.src) <- div.(c.Network.src) -. c.Network.demand;
  div.(c.Network.dst) <- div.(c.Network.dst) +. c.Network.demand;
  let scale = Float.max 1.0 (Network.total_demand net) in
  Array.iteri
    (fun v d ->
      if Float.abs d > 1e-6 *. scale then
        invalid_arg
          (Printf.sprintf
             "Decompose.run: commodity %d's flow does not conserve its demand at node %d \
              (imbalance %.3g)" i v d))
    div

let run ?(eps = 1e-9) ?flows (net : Network.t) ~edge_flow =
  Obs.span "assign.decompose" @@ fun () ->
  let g = net.Network.graph in
  let m = G.Digraph.num_edges g in
  let k = Array.length net.Network.commodities in
  if Array.length edge_flow <> m then
    invalid_arg "Decompose.run: flow array has the wrong length";
  Array.iter
    (fun fe ->
      if fe < 0.0 || not (Float.is_finite fe) then
        invalid_arg "Decompose.run: flow entries must be finite and nonnegative")
    edge_flow;
  (* An aggregate multi-commodity flow does not determine its commodity
     split — greedy peeling from the aggregate can strand a later
     commodity behind an earlier one's peel. The split must come from
     the caller ([Solver.solve_flows] tracks it); a single commodity
     owns the whole aggregate. *)
  let flows =
    match flows with
    | Some xs ->
        if Array.length xs <> k then
          invalid_arg "Decompose.run: flows must have one array per commodity";
        Array.iter
          (fun x ->
            if Array.length x <> m then
              invalid_arg "Decompose.run: per-commodity flow array has the wrong length")
          xs;
        xs
    | None ->
        if k = 1 then [| edge_flow |]
        else
          invalid_arg
            "Decompose.run: a multi-commodity edge flow needs its per-commodity split \
             (~flows, from Solver.solve_flows)"
  in
  Array.iteri (fun i x -> check_conservation net i x) flows;
  let workspace = G.Dijkstra.workspace () in
  (* Unit weight on edges that still carry the commodity's flow,
     unreachable otherwise: the Dijkstra tree walk below then recovers a
     fewest-edges path through the positive-remainder subgraph. *)
  let weights = Array.make m 0.0 in
  let floor = 1e-12 *. Float.max 1.0 (Network.total_demand net) in
  let acc = ref [] in
  let cancel = Sgr_obs.Cancel.handle () in
  Array.iteri
    (fun i (c : Network.commodity) ->
      let remaining = Array.copy flows.(i) in
      let refresh_weights () =
        for e = 0 to m - 1 do
          weights.(e) <- (if remaining.(e) > floor then 1.0 else Float.infinity)
        done
      in
      let left = ref c.Network.demand in
      let lo = eps *. Float.max 1.0 c.Network.demand in
      while !left > lo do
        Sgr_obs.Cancel.check_handle cancel;
        Obs.incr c_walks;
        refresh_weights ();
        match
          G.Dijkstra.shortest_path ~workspace g ~weights ~src:c.Network.src ~dst:c.Network.dst
        with
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Decompose.run: commodity %d has %.3g undecomposed demand but no remaining \
                  path" i !left)
        | Some path ->
            let bottleneck =
              List.fold_left (fun b e -> Float.min b remaining.(e)) Float.infinity path
            in
            let amount = Float.min bottleneck !left in
            if amount <= 0.0 then
              invalid_arg
                (Printf.sprintf "Decompose.run: empty bottleneck for commodity %d" i);
            List.iter (fun e -> remaining.(e) <- remaining.(e) -. amount) path;
            left := !left -. amount;
            Obs.incr c_paths;
            acc := { commodity = i; path; amount } :: !acc
      done)
    net.Network.commodities;
  let path_flows = List.rev !acc in
  (* Residual: the exact gap between the input flow and the replayed
     sum. Replay here must match [recompose] operation for operation so
     the identity below transfers. *)
  let replayed = Array.make m 0.0 in
  List.iter
    (fun pf -> List.iter (fun e -> replayed.(e) <- replayed.(e) +. pf.amount) pf.path)
    path_flows;
  let residual = Array.make m 0.0 in
  for e = 0 to m - 1 do
    let s = replayed.(e) and f = edge_flow.(e) in
    (* Sterbenz: s is within 2x of f after a clean peel, so f -. s is
       exact and s +. (f -. s) == f bitwise. Guard the measure-zero
       escape hatch with one-ulp nudges before giving up. *)
    let r = ref (f -. s) in
    if (s +. !r <> f) [@lint.allow "float-equality"] then begin
      let candidates = [ Float.succ !r; Float.pred !r ] in
      match List.find_opt (fun r' -> (s +. r' = f) [@lint.allow "float-equality"]) candidates with
      | Some r' -> r := r'
      | None ->
          invalid_arg
            (Printf.sprintf
               "Decompose.run: cannot establish bitwise recomposition on edge %d \
                (flow %h, replayed %h)" e f s)
    end;
    residual.(e) <- !r
  done;
  { path_flows; residual }

let recompose (net : Network.t) d =
  let m = G.Digraph.num_edges net.Network.graph in
  let out = Array.make m 0.0 in
  List.iter
    (fun pf -> List.iter (fun e -> out.(e) <- out.(e) +. pf.amount) pf.path)
    d.path_flows;
  for e = 0 to m - 1 do
    out.(e) <- out.(e) +. d.residual.(e)
  done;
  out

let max_residual d = Array.fold_left (fun acc r -> Float.max acc (Float.abs r)) 0.0 d.residual

let demand_error (net : Network.t) d =
  let sums = Array.make (Array.length net.Network.commodities) 0.0 in
  List.iter (fun pf -> sums.(pf.commodity) <- sums.(pf.commodity) +. pf.amount) d.path_flows;
  let worst = ref 0.0 in
  Array.iteri
    (fun i (c : Network.commodity) ->
      worst := Float.max !worst (Float.abs (c.Network.demand -. sums.(i))))
    net.Network.commodities;
  !worst
