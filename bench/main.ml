(* Benchmark & reproduction harness.

   `dune exec bench/main.exe` runs, in order:
   1. the reproduction experiments E1-E13 (paper-vs-measured tables for
      every figure and quantitative claim; see DESIGN.md / EXPERIMENTS.md);
   2. the timing suite T1-T10 (bechamel groups plus the custom-measured
      T9 determinism and T10 serving-cache groups).

   `dune exec bench/main.exe -- --experiments` or `-- --timings` runs only
   one half; `-- --quick` runs only the T9 determinism smoke and the T10
   serving-cache smoke (seconds, suitable for CI). Exit status is nonzero
   if any reproduction, determinism, or cache-speedup check fails. *)

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "--quick" args then begin
    if not (Timings.run_quick ()) then exit 1
  end
  else begin
    let experiments = List.mem "--experiments" args || not (List.mem "--timings" args) in
    let timings = List.mem "--timings" args || not (List.mem "--experiments" args) in
    if experiments then Experiments.run_all ();
    let ok = if experiments then Report.summary () else true in
    if timings then Timings.run_all ();
    if not ok then exit 1
  end
