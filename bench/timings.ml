(* Bechamel timing suite (T1-T6): exercises the paper's polynomial-time
   claims. One Test.make per measured configuration, all collected into a
   single run; results are printed as one OLS-estimated time per test. *)

open Bechamel
module Links = Sgr_links.Links
module W = Sgr_workloads.Workloads
module Eq = Sgr_network.Equilibrate
module FW = Sgr_network.Frank_wolfe
module Obj = Sgr_network.Objective
module Prng = Sgr_numerics.Prng

let links_instance m = W.random_affine_links (Prng.create (1000 + m)) ~m ~demand:1.0 ()
let mixed_instance m = W.random_polynomial_links (Prng.create (2000 + m)) ~m ~demand:1.0 ()

let layered seed ~layers ~width =
  W.random_layered_network (Prng.create seed) ~layers ~width ~extra_edges:width ()

(* T1: water-filling solvers vs system size. *)
let t1 =
  let make name solve =
    List.map
      (fun m ->
        let t = links_instance m in
        Test.make ~name:(Printf.sprintf "%s/m=%d" name m) (Staged.stage (fun () -> solve t)))
      [ 10; 100; 1000 ]
  in
  Test.make_grouped ~name:"T1 water-filling"
    (make "nash" (fun t -> ignore (Links.nash t)) @ make "opt" (fun t -> ignore (Links.opt t)))

(* T2: OpTop vs system size (the paper's headline polynomial algorithm). *)
let t2 =
  Test.make_grouped ~name:"T2 optop"
    (List.map
       (fun m ->
         let t = mixed_instance m in
         Test.make ~name:(Printf.sprintf "optop/m=%d" m)
           (Staged.stage (fun () -> ignore (Stackelberg.Optop.run t))))
       [ 10; 100; 500 ])

(* T3: Theorem 2.4's exact solver vs size. *)
let t3 =
  Test.make_grouped ~name:"T3 linear-exact"
    (List.map
       (fun m ->
         let t = W.random_common_slope_links (Prng.create (3000 + m)) ~m ~demand:1.0 () in
         let beta = Stackelberg.Optop.beta t in
         let alpha = 0.7 *. Float.max 0.05 beta in
         Test.make ~name:(Printf.sprintf "thm2.4/m=%d" m)
           (Staged.stage (fun () -> ignore (Stackelberg.Linear_exact.solve t ~alpha))))
       [ 4; 8; 16 ])

(* T4: network equilibrium solvers on layered DAGs. *)
let t4 =
  let nets = [ (1, 2); (2, 3); (3, 3) ] in
  Test.make_grouped ~name:"T4 network solvers"
    (List.concat_map
       (fun (layers, width) ->
         let net = layered (4000 + (10 * layers) + width) ~layers ~width in
         [
           Test.make ~name:(Printf.sprintf "equilibrate/l%dw%d" layers width)
             (Staged.stage (fun () -> ignore (Eq.solve Obj.Wardrop net)));
           Test.make ~name:(Printf.sprintf "frank-wolfe/l%dw%d" layers width)
             (Staged.stage (fun () -> ignore (FW.solve ~tol:1e-6 Obj.Wardrop net)));
           Test.make ~name:(Printf.sprintf "msa/l%dw%d" layers width)
             (Staged.stage (fun () ->
                  ignore (Sgr_network.Msa.solve ~tol:1e-4 Obj.Wardrop net)));
         ])
       nets)

(* T5: MOP end to end on the paper's graphs and a grid. *)
let t5 =
  let fig7 = W.fig7 () in
  let braess = W.braess_classic () in
  let grid = W.grid_network (Prng.create 5001) ~rows:3 ~cols:3 ~demand:2.0 () in
  let two = W.two_commodity () in
  Test.make_grouped ~name:"T5 mop"
    [
      Test.make ~name:"mop/fig7" (Staged.stage (fun () -> ignore (Stackelberg.Mop.run fig7)));
      Test.make ~name:"mop/braess" (Staged.stage (fun () -> ignore (Stackelberg.Mop.run braess)));
      Test.make ~name:"mop/grid3x3" (Staged.stage (fun () -> ignore (Stackelberg.Mop.run grid)));
      Test.make ~name:"mop/2-commodity"
        (Staged.stage (fun () -> ignore (Stackelberg.Mop.run two)));
    ]

(* T6: substrate microbenchmarks. *)
let t6 =
  let g = (W.grid_network (Prng.create 6001) ~rows:6 ~cols:6 ()).Sgr_network.Network.graph in
  let m = Sgr_graph.Digraph.num_edges g in
  let weights = Array.init m (fun i -> 0.1 +. (0.01 *. float_of_int i)) in
  let caps = Array.make m 1.0 in
  Test.make_grouped ~name:"T6 substrates"
    [
      Test.make ~name:"dijkstra/grid6x6"
        (Staged.stage (fun () -> ignore (Sgr_graph.Dijkstra.run g ~weights ~source:0)));
      Test.make ~name:"maxflow/grid6x6"
        (Staged.stage (fun () -> ignore (Sgr_graph.Maxflow.solve g ~capacities:caps ~src:0 ~dst:35)));
      Test.make ~name:"paths/grid6x6"
        (Staged.stage (fun () -> ignore (Sgr_graph.Paths.enumerate g ~src:0 ~dst:35)));
    ]

(* T7: the extension modules. *)
let t7 =
  let module A = Sgr_atomic.Atomic_links in
  let pigou_lats = W.pigou.Sgr_links.Links.latencies in
  let mono = Sgr_latency.Latency.monomial ~coeff:1.0 ~degree:4 in
  Test.make_grouped ~name:"T7 extensions"
    [
      Test.make ~name:"atomic-links/pigou-n8"
        (Staged.stage (fun () ->
             ignore (A.equilibrium (A.split_evenly pigou_lats ~total:1.0 ~players:8))));
      Test.make ~name:"tolls/fig456"
        (Staged.stage (fun () -> ignore (Stackelberg.Tolls.links_outcome W.fig456)));
      Test.make ~name:"pigou-bound/x^4"
        (Staged.stage (fun () -> ignore (Stackelberg.Bounds.pigou_bound mono)));
      Test.make ~name:"alpha-sweep/pigou-11"
        (Staged.stage (fun () ->
             ignore (Stackelberg.Alpha_sweep.run ~samples:11 ~grid_resolution:16 W.pigou)));
    ]

(* T8: column generation vs exhaustive enumeration. The 5x5 grid (70
   s-t paths) is the largest the oracle still handles comfortably; the
   8x8 (3432 paths) and 10x10 (48620 paths, past the old 20,000-path
   enumeration cap that used to be a hard failure) run column-gen only.
   The induced-equilibrium entry exercises the [Network.with_demands]
   fast path that skips revalidation. *)
let t8 =
  let grid n = W.grid_network (Prng.create (8000 + n)) ~rows:n ~cols:n () in
  let g5 = grid 5 and g8 = grid 8 and g10 = grid 10 in
  let fig7 = W.fig7 () in
  let m7 = Sgr_graph.Digraph.num_edges fig7.Sgr_network.Network.graph in
  let leader = Array.make m7 0.0 in
  let follower_demands =
    Array.map (fun c -> c.Sgr_network.Network.demand) fig7.Sgr_network.Network.commodities
  in
  Test.make_grouped ~name:"T8 column generation"
    [
      Test.make ~name:"column-gen/grid5x5"
        (Staged.stage (fun () ->
             ignore (Eq.solve ~engine:Eq.Column_generation Obj.Wardrop g5)));
      Test.make ~name:"exhaustive/grid5x5"
        (Staged.stage (fun () -> ignore (Eq.solve ~engine:Eq.Exhaustive Obj.Wardrop g5)));
      Test.make ~name:"column-gen/grid8x8"
        (Staged.stage (fun () ->
             ignore (Eq.solve ~engine:Eq.Column_generation Obj.Wardrop g8)));
      Test.make ~name:"column-gen/grid10x10"
        (Staged.stage (fun () ->
             ignore (Eq.solve ~engine:Eq.Column_generation Obj.Wardrop g10)));
      Test.make ~name:"mop/grid10x10"
        (Staged.stage (fun () -> ignore (Stackelberg.Mop.run g10)));
      Test.make ~name:"induced/fig7-no-revalidation"
        (Staged.stage (fun () ->
             ignore
               (Stackelberg.Induced.equilibrium fig7 ~leader_edge_flow:leader ~follower_demands)));
    ]

module Obs = Sgr_obs.Obs

(* Per-group observability record for BENCH_obs.json: wall-clock
   seconds, counter deltas, and span totals collected by a
   constant-memory aggregating sink (recording every event of a
   benchmark loop would not fit in memory). *)
type obs_entry = {
  group : string;
  wall_s : float;
  counters : (string * int) list;
  spans : (string * (int * float)) list;
}

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let write_obs_json path entries =
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc "{\"experiments\":[";
      List.iteri
        (fun i e ->
          if i > 0 then Printf.fprintf oc ",";
          Printf.fprintf oc "\n{\"name\":\"%s\",\"wall_s\":%.6f,\"counters\":{"
            (json_escape e.group) e.wall_s;
          List.iteri
            (fun j (name, v) ->
              Printf.fprintf oc "%s\"%s\":%d" (if j > 0 then "," else "") (json_escape name) v)
            e.counters;
          Printf.fprintf oc "},\"spans\":{";
          List.iteri
            (fun j (name, (count, total)) ->
              Printf.fprintf oc "%s\"%s\":{\"count\":%d,\"total_s\":%.6f}"
                (if j > 0 then "," else "")
                (json_escape name) count total)
            e.spans;
          Printf.fprintf oc "}}")
        entries;
      Printf.fprintf oc "\n]}\n")

let counter_delta before after =
  List.filter_map
    (fun (name, v) ->
      let v0 = match List.assoc_opt name before with Some v0 -> v0 | None -> 0 in
      if v - v0 > 0 then Some (name, v - v0) else None)
    after

(* ---------------- T9: CSR kernels and the multicore sweep ----------------

   Unlike T1-T8 this group is custom-measured: the interesting outputs
   are *deltas* — list kernel vs CSR vs CSR + reused workspace on the
   10x10-grid pricing workload, and the wall clock of the same alpha
   sweep at jobs=1 vs jobs=N together with a byte-identity check — and
   those land as counters in BENCH_obs.json. *)

(* The retired list-based Dijkstra, kept as the baseline under
   measurement (the library kernel now iterates CSR). *)
let list_dijkstra g ~weights ~source =
  let n = Sgr_graph.Digraph.num_nodes g in
  let dist = Array.make n Float.infinity in
  let settled = Array.make n false in
  let heap = Sgr_graph.Heap.create () in
  dist.(source) <- 0.0;
  Sgr_graph.Heap.insert heap 0.0 source;
  let continue = ref true in
  while !continue do
    match Sgr_graph.Heap.pop_min heap with
    | None -> continue := false
    | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          List.iter
            (fun (e : Sgr_graph.Digraph.edge) ->
              let nd = d +. weights.(e.id) in
              if nd < dist.(e.dst) then begin
                dist.(e.dst) <- nd;
                Sgr_graph.Heap.insert heap nd e.dst
              end)
            (Sgr_graph.Digraph.out_edges g u)
        end
  done;
  dist

(* Median ns per call for each kernel, with the kernels' timed samples
   interleaved round-robin so clock drift and GC state hit all of them
   equally (Obs.now is gettimeofday — µs resolution — so each sample
   runs [batch] calls). *)
let median_ns_interleaved ~repeats ~batch kernels =
  let sample f =
    let t0 = Obs.now () in
    for _ = 1 to batch do
      f ()
    done;
    (Obs.now () -. t0) *. 1e9 /. float_of_int batch
  in
  let k = Array.length kernels in
  Array.iter (fun f -> ignore (sample f)) kernels;
  (* warm-up *)
  let samples = Array.make_matrix k repeats 0.0 in
  for r = 0 to repeats - 1 do
    Array.iteri (fun i f -> samples.(i).(r) <- sample f) kernels
  done;
  Array.map
    (fun s ->
      Array.sort compare s;
      int_of_float s.(repeats / 2))
    samples

let curve_identical (a : Stackelberg.Alpha_sweep.curve) (b : Stackelberg.Alpha_sweep.curve) =
  a.beta = b.beta
  && List.length a.points = List.length b.points
  && List.for_all2
       (fun (p : Stackelberg.Alpha_sweep.point) (q : Stackelberg.Alpha_sweep.point) ->
         p.alpha = q.alpha && p.ratio = q.ratio && p.method_used = q.method_used)
       a.points b.points

type t9_result = { entry : obs_entry; sweep_identical : bool }

let run_t9 ~grid_n ~repeats ~sweep_samples ~jobs () =
  let t0 = Obs.now () in
  (* Pricing workload: free-flow edge latencies on an n x n grid — what
     column generation's pricing Dijkstras see on their first round. *)
  let net = W.grid_network (Prng.create 9001) ~rows:grid_n ~cols:grid_n () in
  let g = net.Sgr_network.Network.graph in
  let m = Sgr_graph.Digraph.num_edges g in
  let weights = Sgr_network.Network.edge_latencies net (Array.make m 0.0) in
  let ws = Sgr_graph.Dijkstra.workspace () in
  let medians =
    median_ns_interleaved ~repeats ~batch:50
      [|
        (fun () -> ignore (list_dijkstra g ~weights ~source:0));
        (fun () -> ignore (Sgr_graph.Dijkstra.run g ~weights ~source:0));
        (fun () -> ignore (Sgr_graph.Dijkstra.run ~workspace:ws g ~weights ~source:0));
      |]
  in
  let list_ns = medians.(0) and csr_ns = medians.(1) and csr_ws_ns = medians.(2) in
  (* The same alpha sweep sequentially and on the pool; identity of the
     two curves is part of the result. *)
  let sweep = W.random_affine_links (Prng.create 9002) ~m:4 ~demand:1.0 () in
  let time_sweep jobs =
    let t0 = Obs.now () in
    let curve = Stackelberg.Alpha_sweep.run ~jobs ~samples:sweep_samples ~grid_resolution:12 sweep in
    (curve, Obs.now () -. t0)
  in
  let seq_curve, seq_s = time_sweep 1 in
  let par_curve, par_s = time_sweep jobs in
  let identical = curve_identical seq_curve par_curve in
  let ratio i j = if j > 0 then Printf.sprintf "%.2fx" (float_of_int i /. float_of_int j) else "-" in
  Format.printf "  %-28s %8.3f µs@." (Printf.sprintf "dijkstra-list/grid%dx%d" grid_n grid_n)
    (float_of_int list_ns /. 1e3);
  Format.printf "  %-28s %8.3f µs  (%s vs list)@."
    (Printf.sprintf "dijkstra-csr/grid%dx%d" grid_n grid_n)
    (float_of_int csr_ns /. 1e3) (ratio list_ns csr_ns);
  Format.printf "  %-28s %8.3f µs  (%s vs list)@."
    (Printf.sprintf "dijkstra-csr-ws/grid%dx%d" grid_n grid_n)
    (float_of_int csr_ws_ns /. 1e3) (ratio list_ns csr_ws_ns);
  Format.printf "  %-28s %8.3f ms@."
    (Printf.sprintf "alpha-sweep-%d/jobs=1" sweep_samples)
    (seq_s *. 1e3);
  Format.printf "  %-28s %8.3f ms  (%s, identical=%b)@."
    (Printf.sprintf "alpha-sweep-%d/jobs=%d" sweep_samples jobs)
    (par_s *. 1e3)
    (Printf.sprintf "%.2fx" (seq_s /. Float.max 1e-9 par_s))
    identical;
  let entry =
    {
      group = "T9 csr + multicore";
      wall_s = Obs.now () -. t0;
      counters =
        [
          ("t9.dijkstra_list_ns", list_ns);
          ("t9.dijkstra_csr_ns", csr_ns);
          ("t9.dijkstra_csr_workspace_ns", csr_ws_ns);
          ("t9.sweep_samples", sweep_samples);
          ("t9.sweep_jobs", jobs);
          ("t9.sweep_seq_us", int_of_float (seq_s *. 1e6));
          ("t9.sweep_par_us", int_of_float (par_s *. 1e6));
          ("t9.sweep_identical", if identical then 1 else 0);
        ];
      spans = [];
    }
  in
  { entry; sweep_identical = identical }

(* ---------------- T10: serving cache, cold vs warm ----------------

   Batch throughput of the query engine on a grid network: a cold pass
   (every request solved and memoized) against a warm pass of the same
   requests on the same cache (every request a memo hit). The headline
   numbers are requests/sec for both passes, the memo hit ratio, and
   the cold/warm speedup — the quick gate requires warm >= 5x cold. *)

type t10_result = { entry : obs_entry; speedup : float }

let run_t10 ~grid_n ~reqs () =
  let t0 = Obs.now () in
  let net = W.grid_network (Prng.create 9003) ~rows:grid_n ~cols:grid_n () in
  let path = Filename.temp_file "sgr_bench_t10" ".inst" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Sgr_io.Instance_file.print_network net));
  let kinds = [| "solve g nash"; "solve g opt"; "mop g" |] in
  let lines =
    Printf.sprintf "load g %s" path :: List.init reqs (fun i -> kinds.(i mod Array.length kinds))
  in
  let cache = Sgr_serve.Cache.create ~capacity:8 in
  let pass () =
    let t = Obs.now () in
    ignore (Sgr_serve.Engine.run_batch ~jobs:1 cache lines);
    Obs.now () -. t
  in
  let cold_s = pass () in
  let warm_s = pass () in
  let stats = Sgr_serve.Cache.stats cache in
  let hit_ratio =
    float_of_int stats.Sgr_serve.Cache.memo_hits
    /. float_of_int (Int.max 1 (stats.memo_hits + stats.memo_misses))
  in
  let rps s = float_of_int (reqs + 1) /. Float.max 1e-9 s in
  let speedup = cold_s /. Float.max 1e-9 warm_s in
  Format.printf "  %-28s %8.1f req/s  (%.3f ms total)@."
    (Printf.sprintf "batch-cold/grid%dx%d" grid_n grid_n)
    (rps cold_s) (cold_s *. 1e3);
  Format.printf "  %-28s %8.1f req/s  (%.3f ms total, %.2fx cold, hit ratio %.2f)@."
    (Printf.sprintf "batch-warm/grid%dx%d" grid_n grid_n)
    (rps warm_s) (warm_s *. 1e3) speedup hit_ratio;
  let entry =
    {
      group = "T10 serving cache";
      wall_s = Obs.now () -. t0;
      counters =
        [
          ("t10.requests", reqs + 1);
          ("t10.cold_us", int_of_float (cold_s *. 1e6));
          ("t10.warm_us", int_of_float (warm_s *. 1e6));
          ("t10.cold_rps", int_of_float (rps cold_s));
          ("t10.warm_rps", int_of_float (rps warm_s));
          ("t10.warm_speedup_x", int_of_float speedup);
          ("t10.memo_hit_ratio_pct", int_of_float (hit_ratio *. 100.0));
        ];
      spans = [];
    }
  in
  { entry; speedup }

(* ---------------- T11: serving latency under synthetic load ----------------

   The Loadgen harness replays a deterministic mixed-verb request
   stream (instance reuse 60%) through the in-process engine and
   reports the distribution-level numbers the serving tier is judged
   by: p50/p95/p99 latency from the per-verb histograms, throughput,
   and the memo hit rate. The quick gate enforces the same thresholds
   as `sgr bench serve --quick`. *)

type t11_result = { entry : obs_entry; gate_failures : string list }

let run_t11 ~requests ~instances ~reuse () =
  let t0 = Obs.now () in
  let dir = Filename.temp_dir "sgr_bench_t11" "" in
  Fun.protect
    ~finally:(fun () ->
      (try Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let lines = Sgr_serve.Loadgen.generate ~dir ~seed:9011 ~instances ~requests ~reuse in
  let cache = Sgr_serve.Cache.create ~capacity:32 in
  let r = Sgr_serve.Loadgen.run (Sgr_serve.Loadgen.In_process { cache; jobs = Some 1 }) [| lines |] in
  Format.printf "  %-28s %8.1f req/s  (p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, hit rate %.2f)@."
    (Printf.sprintf "loadgen/%dreq-%dinst" requests instances)
    r.Sgr_serve.Loadgen.rps (1e3 *. r.p50_s) (1e3 *. r.p95_s) (1e3 *. r.p99_s) r.memo_hit_rate;
  let gate_failures =
    Sgr_serve.Loadgen.gate r ~p99_max_s:0.25 ~rps_min:20.0 ~hit_rate_min:0.2
  in
  let entry =
    {
      group = "T11 serving latency";
      wall_s = Obs.now () -. t0;
      counters =
        [
          ("t11.requests", r.Sgr_serve.Loadgen.requests);
          ("t11.errors", r.errors);
          ("t11.rps", int_of_float r.rps);
          ("t11.p50_us", int_of_float (1e6 *. r.p50_s));
          ("t11.p95_us", int_of_float (1e6 *. r.p95_s));
          ("t11.p99_us", int_of_float (1e6 *. r.p99_s));
          ("t11.memo_hit_ratio_pct", int_of_float (r.memo_hit_rate *. 100.0));
        ];
      spans = [];
    }
  in
  { entry; gate_failures }

(* ---------------- T12: closed-form vs bisection water-filling ----------------

   The closed-form affine engine against the bisection oracle on the
   same instances: plain random affine games at each size plus
   toll-shifted variants (marginal-cost tolls bump the intercepts and a
   leader-flow [Latency.shift] wraps every latency in a Shifted kind,
   which the engine reduces without leaving closed form). The headline
   numbers are median ns per nash+opt solve pair for both engines and
   the speedup, plus the [bisection.iterations] spent by the T1/T3-style
   workloads under auto dispatch vs forced bisection — the quick gate
   requires >= 10x on the mid size and a >= 90% iteration drop. *)

type t12_result = {
  entry : obs_entry;
  min_speedup : float;
  auto_iters : int;
  bisect_iters : int;
}

(* [bisection.iterations] burned by a miniature T1 + T3 workload when the
   ambient default engine is [engine] — the zero-call-site-change
   inheritance the dispatch promises. *)
let t12_iterations_with engine =
  let prev = Links.default_engine () in
  Links.set_default_engine engine;
  Fun.protect ~finally:(fun () -> Links.set_default_engine prev) @@ fun () ->
  let before = Obs.counters () in
  List.iter
    (fun m ->
      let t = links_instance m in
      ignore (Links.nash t);
      ignore (Links.opt t))
    [ 10; 100 ];
  let t3 = W.random_common_slope_links (Prng.create 3008) ~m:8 ~demand:1.0 () in
  let alpha = 0.7 *. Float.max 0.05 (Stackelberg.Optop.beta t3) in
  ignore (Stackelberg.Linear_exact.solve t3 ~alpha);
  match List.assoc_opt "bisection.iterations" (counter_delta before (Obs.counters ())) with
  | Some v -> v
  | None -> 0

let run_t12 ~sizes ~repeats () =
  let t0 = Obs.now () in
  let counters = ref [] in
  let min_speedup = ref Float.infinity in
  let tolled_instance m =
    let tolled = Stackelberg.Tolls.tolled_links (links_instance m) in
    Links.make
      (Array.map (Sgr_latency.Latency.shift 0.125) tolled.Links.latencies)
      ~demand:tolled.Links.demand
  in
  let bench tag t =
    let batch = Int.max 4 (1000 / Links.num_links t) in
    let medians =
      median_ns_interleaved ~repeats ~batch
        [|
          (fun () ->
            ignore (Links.nash ~engine:`Closed_form t);
            ignore (Links.opt ~engine:`Closed_form t));
          (fun () ->
            ignore (Links.nash ~engine:`Bisection t);
            ignore (Links.opt ~engine:`Bisection t));
        |]
    in
    let cf = medians.(0) and bi = medians.(1) in
    let speedup = float_of_int bi /. float_of_int (Int.max 1 cf) in
    min_speedup := Float.min !min_speedup speedup;
    Format.printf "  %-28s %8.3f µs@."
      (tag ^ "/closed-form")
      (float_of_int cf /. 1e3);
    Format.printf "  %-28s %8.3f µs  (%.1fx closed-form)@." (tag ^ "/bisection")
      (float_of_int bi /. 1e3) speedup;
    counters :=
      (Printf.sprintf "t12.%s.bisection_ns" tag, bi)
      :: (Printf.sprintf "t12.%s.closed_form_ns" tag, cf)
      :: (Printf.sprintf "t12.%s.speedup_x10" tag, int_of_float (10.0 *. speedup))
      :: !counters
  in
  List.iter
    (fun m ->
      bench (Printf.sprintf "affine/m=%d" m) (links_instance m);
      bench (Printf.sprintf "tolled/m=%d" m) (tolled_instance m))
    sizes;
  let auto_iters = t12_iterations_with `Auto in
  let bisect_iters = t12_iterations_with `Bisection in
  Format.printf "  %-28s %8d  (auto dispatch, vs %d forced bisection)@."
    "bisection.iterations" auto_iters bisect_iters;
  counters :=
    ("t12.auto.bisection_iterations", auto_iters)
    :: ("t12.bisection.bisection_iterations", bisect_iters)
    :: !counters;
  let entry =
    {
      group = "T12 closed-form water-filling";
      wall_s = Obs.now () -. t0;
      counters = List.rev !counters;
      spans = [];
    }
  in
  { entry; min_speedup = !min_speedup; auto_iters; bisect_iters }

(* ---------------- T13: city-scale edge-flow assignment ----------------

   The edge-flow Frank–Wolfe core (lib/assign) on synthetic ring+radial
   cities at the 10^3 / 10^4 / 10^5-edge tiers: convergence wall-clock,
   iteration count and final gap per tier, plus the determinism check —
   the jobs=1 and jobs=4 solves must agree bitwise. The quick gate runs
   the 10^4-edge tier and fails unless it converges to gap <= 1e-4 with
   byte-identical flows (docs/assignment.md). *)

type t13_result = { entry : obs_entry; gate_failures : string list }

let t13_flows_identical a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i x ->
      if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i))) then ok := false)
    a;
  !ok

let run_t13 ~tiers () =
  let t0 = Obs.now () in
  let counters = ref [] in
  let failures = ref [] in
  List.iter
    (fun (tag, rings, radials) ->
      let net =
        W.synthetic_city (Prng.create (13_000 + rings)) ~rings ~radials ~commodities:32 ()
      in
      let m = Sgr_graph.Digraph.num_edges net.Sgr_network.Network.graph in
      let solve jobs = Sgr_assign.Solver.solve ~tol:1e-4 ~jobs Obj.Wardrop net in
      let t_solve = Obs.now () in
      let s1 = solve 1 in
      let wall_s = Obs.now () -. t_solve in
      let s4 = solve 4 in
      let identical =
        t13_flows_identical s1.Sgr_assign.Solver.edge_flow s4.Sgr_assign.Solver.edge_flow
      in
      Format.printf "  %-28s %8.3f ms  (%d edges, %d iters, gap %.3g, jobs 1=4: %b)@."
        (tag ^ "/frank-wolfe")
        (wall_s *. 1e3) m s1.Sgr_assign.Solver.iterations s1.Sgr_assign.Solver.relative_gap
        identical;
      if s1.Sgr_assign.Solver.relative_gap > 1e-4 then
        failures :=
          Printf.sprintf "%s: gap %.3g did not reach 1e-4" tag
            s1.Sgr_assign.Solver.relative_gap
          :: !failures;
      if not identical then
        failures := Printf.sprintf "%s: jobs=1 and jobs=4 flows differ" tag :: !failures;
      counters :=
        (Printf.sprintf "t13.%s.gap_x1e9" tag,
         int_of_float (s1.Sgr_assign.Solver.relative_gap *. 1e9))
        :: (Printf.sprintf "t13.%s.jobs_identical" tag, if identical then 1 else 0)
        :: (Printf.sprintf "t13.%s.iterations" tag, s1.Sgr_assign.Solver.iterations)
        :: (Printf.sprintf "t13.%s.wall_us" tag, int_of_float (wall_s *. 1e6))
        :: (Printf.sprintf "t13.%s.edges" tag, m)
        :: !counters)
    tiers;
  let entry =
    {
      group = "T13 edge-flow assignment";
      wall_s = Obs.now () -. t0;
      counters = List.rev !counters;
      spans = [];
    }
  in
  { entry; gate_failures = List.rev !failures }

let run_all () =
  Format.printf "@.=== Timing suite (bechamel, monotonic clock, OLS ns/run) ===@.";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let entries = ref [] in
  List.iter
    (fun (group, test) ->
      let agg = Obs.Agg.create () in
      let before = Obs.counters () in
      let t0 = Obs.now () in
      Obs.Agg.install agg;
      let raw = Benchmark.all cfg [ instance ] test in
      Obs.set_sink None;
      let wall_s = Obs.now () -. t0 in
      let results = Analyze.all ols instance raw in
      let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
      List.iter
        (fun (name, est) ->
          let ns = match Analyze.OLS.estimates est with Some (t :: _) -> t | _ -> Float.nan in
          let pretty =
            if ns >= 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
            else if ns >= 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
            else if ns >= 1e3 then Printf.sprintf "%8.3f µs" (ns /. 1e3)
            else Printf.sprintf "%8.1f ns" ns
          in
          Format.printf "  %-28s %s@." name pretty)
        (List.sort compare rows);
      entries :=
        {
          group;
          wall_s;
          counters = counter_delta before (Obs.counters ());
          spans = Obs.Agg.span_totals agg;
        }
        :: !entries)
    [
      ("T1 water-filling", t1);
      ("T2 optop", t2);
      ("T3 linear-exact", t3);
      ("T4 network solvers", t4);
      ("T5 mop", t5);
      ("T6 substrates", t6);
      ("T7 extensions", t7);
      ("T8 column generation", t8);
    ];
  Format.printf "@.=== T9 csr + multicore (median custom timings, deltas as counters) ===@.";
  let t9 = run_t9 ~grid_n:10 ~repeats:21 ~sweep_samples:41 ~jobs:4 () in
  entries := t9.entry :: !entries;
  Format.printf "@.=== T10 serving cache (cold vs warm batch) ===@.";
  let t10 = run_t10 ~grid_n:10 ~reqs:60 () in
  entries := t10.entry :: !entries;
  Format.printf "@.=== T11 serving latency (synthetic load) ===@.";
  let t11 = run_t11 ~requests:2000 ~instances:12 ~reuse:0.6 () in
  entries := t11.entry :: !entries;
  Format.printf "@.=== T12 closed-form water-filling (vs bisection oracle) ===@.";
  let t12 = run_t12 ~sizes:[ 10; 100; 1000 ] ~repeats:9 () in
  entries := t12.entry :: !entries;
  Format.printf "@.=== T13 edge-flow assignment (synthetic cities) ===@.";
  let t13 =
    run_t13 ~tiers:[ ("city/1e3", 8, 32); ("city/1e4", 25, 100); ("city/1e5", 100, 250) ] ()
  in
  List.iter (fun m -> Format.printf "WARN: T13 %s@." m) t13.gate_failures;
  entries := t13.entry :: !entries;
  write_obs_json "BENCH_obs.json" (List.rev !entries);
  Format.printf "@.wrote BENCH_obs.json (per-experiment span totals + counter snapshots)@."

(* CI smoke: a scaled-down T9 at jobs=1 (trivially identical) and
   jobs=2, plus scaled-down T10, T11, T12 and the T13 10^4-edge tier.
   Returns false — a nonzero exit for the workflow — when the pooled
   sweep is not byte-identical to the sequential one, the warm serving
   cache is not at least 5x faster than the cold pass, the T11
   latency/throughput/hit-rate gate fails, the closed-form engine loses
   its T12 speedup, or the T13 city assignment misses gap <= 1e-4 /
   jobs-identity. *)
let run_quick () =
  Format.printf "@.=== T9 quick smoke (jobs=1 and jobs=2) ===@.";
  let r1 = run_t9 ~grid_n:6 ~repeats:5 ~sweep_samples:9 ~jobs:1 () in
  let r2 = run_t9 ~grid_n:6 ~repeats:5 ~sweep_samples:9 ~jobs:2 () in
  Format.printf "@.=== T10 quick smoke (serving cache cold vs warm) ===@.";
  let r10 = run_t10 ~grid_n:6 ~reqs:30 () in
  Format.printf "@.=== T11 quick smoke (serving latency gate) ===@.";
  let r11 = run_t11 ~requests:300 ~instances:6 ~reuse:0.6 () in
  Format.printf "@.=== T12 quick smoke (closed-form vs bisection) ===@.";
  let r12 = run_t12 ~sizes:[ 100 ] ~repeats:5 () in
  Format.printf "@.=== T13 quick smoke (10^4-edge city assignment gate) ===@.";
  let r13 = run_t13 ~tiers:[ ("city/1e4", 25, 100) ] () in
  let sweep_ok = r1.sweep_identical && r2.sweep_identical in
  let cache_ok = r10.speedup >= 5.0 in
  let latency_ok = r11.gate_failures = [] in
  let closed_form_ok = r12.min_speedup >= 10.0 in
  let iters_ok = r12.auto_iters * 10 <= r12.bisect_iters in
  if not sweep_ok then
    Format.printf "FAIL: pooled alpha sweep diverged from the sequential curve@.";
  if not cache_ok then
    Format.printf "FAIL: warm serving-cache pass only %.2fx faster than cold (need 5x)@."
      r10.speedup;
  List.iter (fun m -> Format.printf "FAIL: T11 %s@." m) r11.gate_failures;
  if not closed_form_ok then
    Format.printf "FAIL: closed-form engine only %.2fx faster than bisection (need 10x)@."
      r12.min_speedup;
  if not iters_ok then
    Format.printf
      "FAIL: auto dispatch still burned %d bisection iterations (forced bisection: %d; need >= 90%% drop)@."
      r12.auto_iters r12.bisect_iters;
  let assign_ok = r13.gate_failures = [] in
  List.iter (fun m -> Format.printf "FAIL: T13 %s@." m) r13.gate_failures;
  sweep_ok && cache_ok && latency_ok && closed_form_ok && iters_ok && assign_ok
